// Benchmarks: one per table and figure of the paper (see DESIGN.md's
// per-experiment index), plus the ablations the design discussion calls
// for and throughput benches for the main substrates.
//
// The figure benches regenerate each artifact at a reduced Monte Carlo
// scale per iteration (the cmd tools regenerate them at full scale);
// custom metrics report the headline normalized-performance numbers so
// `go test -bench` output doubles as a results table.
package vccmin

import (
	"testing"

	"vccmin/internal/cache"
	"vccmin/internal/experiments"
	"vccmin/internal/faults"
	"vccmin/internal/geom"
	"vccmin/internal/pipeline"
	"vccmin/internal/power"
	"vccmin/internal/prob"
	"vccmin/internal/sim"
	"vccmin/internal/trace"
	"vccmin/internal/workload"
)

// benchSimParams is the reduced per-iteration scale for simulation
// figures. Full scale is DefaultSimParams (26 benchmarks, 50 pairs).
func benchSimParams() experiments.SimParams {
	return experiments.SimParams{
		Benchmarks:   []string{"crafty", "gzip", "swim"},
		FaultPairs:   4,
		Pfail:        0.001,
		Instructions: 30_000,
		BaseSeed:     1,
	}
}

// ---- Fig. 1 ----

func BenchmarkFig1VoltageScaling(b *testing.B) {
	m := power.Default()
	for i := 0; i < b.N; i++ {
		classic := m.CurveClassic(200)
		below := m.CurveBelowVccMin(200)
		if len(classic) == 0 || len(below) == 0 {
			b.Fatal("empty curves")
		}
	}
}

// ---- Table I ----

func BenchmarkTable1Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.TableI()
		if rows[3].Total != 81920 {
			b.Fatal("block-disable overhead drifted")
		}
	}
}

// ---- Figs. 3-7 (analytic) ----

func BenchmarkFig3FaultyBlocks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig3(100)
	}
}

func BenchmarkFig4CapacityDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig4()
	}
}

func BenchmarkFig5WholeCacheFailure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig5(100)
	}
}

func BenchmarkFig6BlockSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig6(100)
	}
}

func BenchmarkFig7IncrementalWordDisable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig7(100)
	}
}

// ---- Figs. 8-10 (low-voltage Monte Carlo) ----

func BenchmarkFig8LowVoltage(b *testing.B) {
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLowVoltage(benchSimParams())
		if err != nil {
			b.Fatal(err)
		}
		fig = res.Fig8()
	}
	b.ReportMetric(fig.Averages[0], "wordDis-norm")
	b.ReportMetric(fig.Averages[1], "blockDis-norm")
	b.ReportMetric(fig.Averages[2], "blockDisVC-norm")
}

func BenchmarkFig9LowVoltageVC(b *testing.B) {
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLowVoltage(benchSimParams())
		if err != nil {
			b.Fatal(err)
		}
		fig = res.Fig9()
	}
	b.ReportMetric(fig.Averages[0], "wordDis-norm")
	b.ReportMetric(fig.Averages[1], "blockDis-norm")
}

func BenchmarkFig10VictimCell(b *testing.B) {
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLowVoltage(benchSimParams())
		if err != nil {
			b.Fatal(err)
		}
		fig = res.Fig10()
	}
	b.ReportMetric(fig.Averages[1], "vc10T-norm")
	b.ReportMetric(fig.Averages[2], "vc6T-norm")
}

// ---- Figs. 11-12 (high voltage) ----

func BenchmarkFig11HighVoltage(b *testing.B) {
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHighVoltage(benchSimParams())
		if err != nil {
			b.Fatal(err)
		}
		fig = res.Fig11()
	}
	b.ReportMetric(fig.Averages[0], "wordDis-norm")
	b.ReportMetric(fig.Averages[1], "blockDis-norm")
}

func BenchmarkFig12HighVoltageVC(b *testing.B) {
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHighVoltage(benchSimParams())
		if err != nil {
			b.Fatal(err)
		}
		fig = res.Fig12()
	}
	b.ReportMetric(fig.Averages[0], "wordDis-norm")
}

// ---- Ablations ----

// BenchmarkAblationVictimEntries sweeps the victim-cache size for
// block-disabling on a conflict-sensitive benchmark: the knee should sit
// near the paper's 16 entries.
func BenchmarkAblationVictimEntries(b *testing.B) {
	g := geom.MustNew(32*1024, 8, 64)
	pair := faults.GeneratePair(g, g, 32, 0.001, 9)
	for _, entries := range []int{0, 4, 8, 16, 32} {
		b.Run(map[bool]string{true: "entries=0"}[entries == 0]+name(entries), func(b *testing.B) {
			machine := sim.Reference(sim.LowVoltage)
			machine.VictimEntries = entries
			var ipc float64
			for i := 0; i < b.N; i++ {
				victim := sim.Victim10T
				if entries == 0 {
					victim = sim.NoVictim
				}
				r, err := sim.Run(sim.Options{
					Benchmark: "gzip", Mode: sim.LowVoltage, Scheme: sim.BlockDisable,
					Victim: victim, Pair: &pair, Machine: &machine, Instructions: 40_000, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				ipc = r.IPC
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

func name(entries int) string {
	if entries == 0 {
		return ""
	}
	return "entries=" + string(rune('0'+entries/10)) + string(rune('0'+entries%10))
}

// BenchmarkAblationBlockSizePrefetch measures the Fig. 6 trade-off
// end-to-end: 32 B blocks keep more capacity under faults but lose
// spatial locality; next-line prefetching wins part of it back (the
// paper's Section IV.B discussion).
func BenchmarkAblationBlockSizePrefetch(b *testing.B) {
	for _, cfg := range []struct {
		label    string
		block    int
		prefetch bool
	}{
		{"64B", 64, false},
		{"32B", 32, false},
		{"32B-prefetch", 32, true},
	} {
		b.Run(cfg.label, func(b *testing.B) {
			machine := sim.Reference(sim.LowVoltage)
			machine.L1BlockBytes = cfg.block
			g := geom.MustNew(machine.L1Size, machine.L1Ways, cfg.block)
			pair := faults.GeneratePair(g, g, 32, 0.001, 11)
			var ipc, cap float64
			for i := 0; i < b.N; i++ {
				r, err := sim.Run(sim.Options{
					Benchmark: "swim", Mode: sim.LowVoltage, Scheme: sim.BlockDisable,
					Pair: &pair, Machine: &machine, Instructions: 40_000, Seed: 1,
					PrefetchNextLine: cfg.prefetch,
				})
				if err != nil {
					b.Fatal(err)
				}
				ipc, cap = r.IPC, r.DCapacity
			}
			b.ReportMetric(ipc, "IPC")
			b.ReportMetric(cap, "capacity")
		})
	}
}

// BenchmarkAblationL2BlockDisable extends block-disabling to the L2
// (the paper's future work): the L2's much larger block population keeps
// its capacity loss mild at pfail=0.001.
func BenchmarkAblationL2BlockDisable(b *testing.B) {
	g1 := geom.MustNew(32*1024, 8, 64)
	g2 := geom.MustNew(2*1024*1024, 8, 64)
	pair := faults.GeneratePair(g1, g1, 32, 0.001, 13)
	l2map := faults.GeneratePair(g2, g2, 32, 0.001, 13).I
	for _, cfg := range []struct {
		label string
		l2    *faults.Map
	}{
		{"L1-only", nil},
		{"L1+L2", l2map},
	} {
		b.Run(cfg.label, func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				r, err := sim.Run(sim.Options{
					Benchmark: "mcf", Mode: sim.LowVoltage, Scheme: sim.BlockDisable,
					Pair: &pair, L2Map: cfg.l2, Instructions: 40_000, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				ipc = r.IPC
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// BenchmarkAblationClusteredFaults compares block-disable capacity under
// the uniform and clustered fault models at matched fault rates.
func BenchmarkAblationClusteredFaults(b *testing.B) {
	g := geom.MustNew(32*1024, 8, 64)
	for i := 0; i < b.N; i++ {
		u := NewFaultMap(g, 0.002, int64(i))
		c := NewClusteredFaultMap(g, 0.002, 8, int64(i))
		if u.CapacityFraction() > c.CapacityFraction() {
			continue // clustered keeps more capacity virtually always
		}
	}
}

// ---- Substrate throughput ----

func BenchmarkCacheAccess(b *testing.B) {
	mem := &cache.Memory{Latency: 51}
	l2 := cache.MustNew("L2", geom.MustNew(2*1024*1024, 8, 64), 20, mem)
	l1 := cache.MustNew("L1", geom.MustNew(32*1024, 8, 64), 3, l2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l1.Access(geom.Addr(uint64(i)*64)&(1<<22-1), cache.Read)
	}
}

func BenchmarkFaultMapGeneration(b *testing.B) {
	g := geom.MustNew(32*1024, 8, 64)
	for i := 0; i < b.N; i++ {
		NewFaultMap(g, 0.001, int64(i))
	}
}

// ---- Monte Carlo capacity estimation (the sparse fast path end to end) ----

// benchCapacityTrials sizes the estimator benches: enough draws to
// amortize pool start-up, small enough for a smoke-scale gate run.
const benchCapacityTrials = 32

// BenchmarkMeasuredCapacityDenseSerial is the dense-stream serial
// estimator: one fault map per trial on the committed math/rand value
// stream, drawn through a reused DenseSampler buffer and reduced over
// the word-packed faulty-block bitset. Per-trial maps (and the capacity
// estimate) are byte-identical to the historical per-seed GenerateMap +
// BuildBlockDisable loop this bench used to spell out.
func BenchmarkMeasuredCapacityDenseSerial(b *testing.B) {
	g := geom.MustNew(32*1024, 8, 64)
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = MeasuredBlockDisableCapacityDenseSerial(g, 0.001, benchCapacityTrials, 1)
	}
	b.ReportMetric(sink, "capacity")
}

// BenchmarkMeasuredCapacitySparseParallel is the shipped estimator:
// sparse sampling, per-worker map reuse, all CPUs.
func BenchmarkMeasuredCapacitySparseParallel(b *testing.B) {
	g := geom.MustNew(32*1024, 8, 64)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = MeasuredBlockDisableCapacity(g, 0.001, benchCapacityTrials, 1)
	}
	b.ReportMetric(sink, "capacity")
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	prof, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, 1)
	if err != nil {
		b.Fatal(err)
	}
	var ins trace.Instr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next(&ins)
	}
}

// BenchmarkPipelineThroughput reports simulated instructions per second —
// the cost of one out-of-order core cycle model step.
func BenchmarkPipelineThroughput(b *testing.B) {
	prof, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, 1)
	if err != nil {
		b.Fatal(err)
	}
	mem := &cache.Memory{Latency: 51}
	l2 := cache.MustNew("L2", geom.MustNew(2*1024*1024, 8, 64), 20, mem)
	ic := cache.MustNew("IL1", geom.MustNew(32*1024, 8, 64), 3, l2)
	dc := cache.MustNew("DL1", geom.MustNew(32*1024, 8, 64), 3, l2)
	cpu := pipeline.MustNew(pipeline.TableII(), ic, dc)
	b.ResetTimer()
	cpu.Run(gen, b.N)
}

// BenchmarkEq1UrnModel measures the exact Eq. 1 evaluation.
func BenchmarkEq1UrnModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prob.MeanFaultyBlocksExact(512, 537, 275)
	}
}

// BenchmarkExtensionBitFix regenerates the bit-fix vs word-disable
// whole-cache-failure comparison (extension figure).
func BenchmarkExtensionBitFix(b *testing.B) {
	var series []prob.Series
	for i := 0; i < b.N; i++ {
		series = experiments.FigBitFix(100)
	}
	_ = series
}

// BenchmarkExtensionGranularity regenerates the block/set/way disabling
// capacity comparison (extension figure).
func BenchmarkExtensionGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.FigGranularity(100)
	}
}

// Package vccmin reproduces "Performance-Effective Operation below
// Vcc-min" (Ladas, Sazeides, Desmet — ISPASS 2010): probability analysis
// of random SRAM cell faults in caches, the block-disabling scheme it
// motivates, the word-disabling scheme it compares against, victim
// caching, and the full simulation apparatus (out-of-order core, cache
// hierarchy, synthetic SPEC CPU 2000 workloads) needed to regenerate every
// figure and table of the paper's evaluation.
//
// The package is a facade: it re-exports the library's stable surface from
// the internal packages. Three layers are exposed:
//
//   - Analysis: the closed-form fault-distribution mathematics of Section
//     IV (Eqs. 1-6) — capacity of block-disabling, whole-cache-failure of
//     word-disabling, incremental word-disabling, block-size sensitivity —
//     plus the Table I transistor-overhead accounting and the Fig. 1
//     voltage/power/performance model.
//
//   - Mechanism: fault-map generation (uniform and clustered), the
//     disabling schemes applied to concrete maps, and the cache/victim
//     cache structures that honor them.
//
//   - Evaluation: Table II/III machine assembly, per-benchmark synthetic
//     workloads, single simulation runs, and the Monte Carlo experiment
//     drivers that regenerate Figs. 8-12.
//
// Quick start:
//
//	g := vccmin.ReferenceGeometry()
//	cap := vccmin.ExpectedBlockDisableCapacity(g, 0.001) // ≈ 0.58
//
//	res, err := vccmin.RunSim(vccmin.SimOptions{
//	    Benchmark: "crafty",
//	    Mode:      vccmin.LowVoltage,
//	    Scheme:    vccmin.BlockDisable,
//	    Victim:    vccmin.Victim10T,
//	    Pair:      vccmin.NewFaultPair(g, g, 0.001, 42),
//	})
//
// See README.md for the quickstart, the CLI inventory (vccmin-analysis,
// vccmin-faultmap, vccmin-sim, vccmin-sweep, vccmin-serve) and the
// build/test entry points.
package vccmin

import (
	"context"
	"io"
	"math/rand"

	"vccmin/internal/colstore"
	"vccmin/internal/core"
	"vccmin/internal/dvfs"
	"vccmin/internal/engine"
	"vccmin/internal/experiments"
	"vccmin/internal/faults"
	"vccmin/internal/geom"
	"vccmin/internal/limit"
	"vccmin/internal/loadgen"
	"vccmin/internal/overhead"
	"vccmin/internal/population"
	"vccmin/internal/power"
	"vccmin/internal/prob"
	"vccmin/internal/service"
	"vccmin/internal/sim"
	"vccmin/internal/sweep"
	"vccmin/internal/tasks"
	"vccmin/internal/workload"
)

// ---- Geometry ----

// Geometry describes a set-associative cache array (size, ways, block).
type Geometry = geom.Geometry

// NewGeometry returns a validated cache geometry with the paper's defaults
// (36-bit addresses, one valid bit).
func NewGeometry(sizeBytes, ways, blockBytes int) (Geometry, error) {
	return geom.New(sizeBytes, ways, blockBytes)
}

// ReferenceGeometry returns the paper's 32 KB, 8-way, 64 B/block L1.
func ReferenceGeometry() Geometry { return experiments.ReferenceGeometry() }

// ---- Section IV analysis ----

// MeanFaultyBlocks implements Eq. 1 (urn model): the expected number of
// distinct blocks hit by n random faults in a cache of g.Blocks() blocks
// with g.CellsPerBlock() cells each.
func MeanFaultyBlocks(g Geometry, n int) float64 {
	return prob.MeanFaultyBlocksExact(g.Blocks(), g.CellsPerBlock(), n)
}

// ExpectedBlockDisableCapacity implements Eq. 2: the expected fraction of
// fault-free blocks at per-cell failure probability pfail.
func ExpectedBlockDisableCapacity(g Geometry, pfail float64) float64 {
	return prob.ExpectedCapacity(g.CellsPerBlock(), pfail)
}

// BlockDisableCapacityDistribution implements Eq. 3: element x is the
// probability that exactly x blocks are fault free.
func BlockDisableCapacityDistribution(g Geometry, pfail float64) []float64 {
	return prob.CapacityPMF(g.Blocks(), g.CellsPerBlock(), pfail)
}

// CapacityAtLeast returns P[capacity >= frac] for a block-disabled cache.
func CapacityAtLeast(g Geometry, pfail, frac float64) float64 {
	return prob.CapacityAtLeast(g.Blocks(), g.CellsPerBlock(), pfail, frac)
}

// WordDisableWholeCacheFailure implements Eqs. 4-5: the probability that a
// word-disabled cache (32-bit words, 8-word subblocks) is unfit for
// low-voltage operation at the given pfail.
func WordDisableWholeCacheFailure(g Geometry, pfail float64) float64 {
	return prob.WordDisableWholeCacheFailProb(g.Blocks(), g.BlockBytes, 32, 8, pfail)
}

// IncrementalWordDisableCapacity implements Eq. 6 for the given geometry.
func IncrementalWordDisableCapacity(g Geometry, pfail float64) float64 {
	return prob.IncrementalWDCapacity(g.DataBits(), 8, 32, pfail)
}

// ---- Fault maps and schemes ----

// FaultMap records which cells of a cache array fail at low voltage.
type FaultMap = faults.Map

// FaultPair bundles the I-cache and D-cache maps drawn together for one
// experiment trial.
type FaultPair = faults.Pair

// NewFaultMap draws a uniform random fault map over g at pfail, seeded,
// on the sparse fast path (cost proportional to the fault count, not the
// cell count). The map equals the I side of NewFaultPair at the same
// seed.
func NewFaultMap(g Geometry, pfail float64, seed int64) *FaultMap {
	return faults.GenerateMapSparse(g, 32, pfail, seed)
}

// NewFaultPair draws an I/D fault-map pair from one seed (Section V) on
// the sparse fast path.
func NewFaultPair(ig, dg Geometry, pfail float64, seed int64) *FaultPair {
	p := faults.GeneratePairSparse(ig, dg, 32, pfail, seed)
	return &p
}

// FaultSampler draws fault maps on the sparse fast path while reusing one
// map buffer across draws, so Monte Carlo loops pay no per-trial
// allocation. The zero value is ready to use; each concurrent worker
// needs its own sampler, and a drawn map is valid until the next Draw.
type FaultSampler = faults.Sampler

// NewClusteredFaultMap draws a fault map under the clustered (non-uniform)
// fault model — the paper's future-work extension. clusterSize cells fail
// together; the expected fault rate still equals pfail.
func NewClusteredFaultMap(g Geometry, pfail float64, clusterSize int, seed int64) *FaultMap {
	rng := rand.New(rand.NewSource(seed))
	return faults.GenerateClustered(g, 32, faults.ClusterParams{Pfail: pfail, Size: clusterSize}, rng)
}

// BlockDisableMap is the per-set way-enable state derived from a fault map.
type BlockDisableMap = core.BlockDisableMap

// BuildBlockDisable classifies every block of m: any faulty cell (tag,
// valid or data) disables the block for low-voltage operation.
func BuildBlockDisable(m *FaultMap) *BlockDisableMap { return core.BuildBlockDisable(m) }

// WordDisableFit reports whether a word-disabled cache with m's faults is
// usable below Vcc-min (no 8-word subblock with more than 4 faulty words).
func WordDisableFit(m *FaultMap) bool {
	return core.EvaluateWordDisable(m, core.ReferenceWordDisable()).Fit
}

// ---- Overhead (Table I) ----

// OverheadRow is one row of Table I.
type OverheadRow = overhead.Row

// TableI computes the transistor-overhead comparison for the reference
// configuration.
func TableI() []OverheadRow { return experiments.TableI() }

// ---- DVFS model (Fig. 1) ----

// PowerModel is the normalized voltage/frequency/power/performance model.
type PowerModel = power.Model

// DefaultPowerModel returns the Fig. 1 model calibrated so pfail reaches
// 1e-3 at the low-voltage floor.
func DefaultPowerModel() PowerModel { return power.Default() }

// ---- Simulation ----

// Mode is the operating voltage domain.
type Mode = sim.Mode

// Operating modes.
const (
	HighVoltage = sim.HighVoltage
	LowVoltage  = sim.LowVoltage
)

// Scheme selects the cache fault-tolerance mechanism.
type Scheme = sim.Scheme

// Schemes.
const (
	Baseline               = sim.Baseline
	WordDisable            = sim.WordDisable
	BlockDisable           = sim.BlockDisable
	IncrementalWordDisable = sim.IncrementalWordDisable
)

// VictimKind selects the victim-cache option.
type VictimKind = sim.VictimKind

// Victim-cache options.
const (
	NoVictim  = sim.NoVictim
	Victim10T = sim.Victim10T
	Victim6T  = sim.Victim6T
)

// SimOptions configures a single simulation run.
type SimOptions = sim.Options

// SimResult reports a single simulation run.
type SimResult = sim.Result

// RunSim simulates one benchmark on one Table III configuration.
func RunSim(opts SimOptions) (SimResult, error) { return sim.Run(opts) }

// ---- Workloads ----

// Benchmark is a synthetic SPEC CPU 2000 profile.
type Benchmark = workload.Profile

// Benchmarks returns the 26 profiles in the paper's figure order.
func Benchmarks() []Benchmark { return workload.Profiles() }

// BenchmarkNames returns the 26 benchmark names in figure order.
func BenchmarkNames() []string { return workload.Names() }

// MultiPhaseWorkload is a piecewise workload: a named sequence of
// benchmark phases with per-phase instruction budgets — the input of the
// phase-aware DVFS scheduler.
type MultiPhaseWorkload = workload.MultiPhase

// WorkloadPhase is one segment of a MultiPhaseWorkload.
type WorkloadPhase = workload.Phase

// MultiPhaseWorkloads returns the builtin multi-phase workloads
// (compute/memory swings, bursty server rhythms, cache-pressure ramps).
func MultiPhaseWorkloads() []MultiPhaseWorkload { return workload.MultiPhaseProfiles() }

// MultiPhaseWorkloadNames returns the builtin workload names in
// definition order.
func MultiPhaseWorkloadNames() []string { return workload.MultiPhaseNames() }

// MultiPhaseWorkloadByName returns the builtin workload with the given
// name.
func MultiPhaseWorkloadByName(name string) (MultiPhaseWorkload, error) {
	return workload.MultiPhaseByName(name)
}

// ---- Phase-aware DVFS scheduling ----

// DVFSPolicy selects the dual-mode scheduling policy.
type DVFSPolicy = dvfs.PolicyKind

// Scheduling policies.
const (
	DVFSStaticHigh = dvfs.PolicyStaticHigh
	DVFSStaticLow  = dvfs.PolicyStaticLow
	DVFSOracle     = dvfs.PolicyOracle
	DVFSReactive   = dvfs.PolicyReactive
	DVFSInterval   = dvfs.PolicyInterval
)

// DVFSPolicies returns the schedulable policies in presentation order.
func DVFSPolicies() []DVFSPolicy { return dvfs.Policies() }

// ParseDVFSPolicy converts a CLI-style policy name to a DVFSPolicy.
func ParseDVFSPolicy(s string) (DVFSPolicy, error) { return dvfs.ParsePolicy(s) }

// DVFSConfig describes one scheduled dual-mode run: the multi-phase
// workload, the low-voltage mitigation scheme, the policy and the switch
// economics.
type DVFSConfig = dvfs.Config

// DVFSResult is one scheduled run's accounting: per-phase time/energy,
// switch counts and the (performance, energy) point the run landed on.
type DVFSResult = dvfs.Result

// RunDVFS executes one scheduled dual-mode run. The result is a pure
// function of the config: byte-identical across runs and machines.
func RunDVFS(cfg DVFSConfig) (DVFSResult, error) { return dvfs.Run(cfg) }

// DVFSPoint is one explored (workload, scheme, policy) operating point,
// with Pareto-frontier membership marked.
type DVFSPoint = dvfs.Point

// DVFSExploreSpec is a (workload × scheme × policy) grid for the Pareto
// explorer.
type DVFSExploreSpec = dvfs.ExploreSpec

// DVFSExploreResult carries every explored point plus the runs behind
// them.
type DVFSExploreResult = dvfs.ExploreResult

// ExploreDVFS runs the explorer grid and marks each workload's Pareto
// frontier over (performance, energy per instruction). Deterministic at
// every worker count.
func ExploreDVFS(spec DVFSExploreSpec) (*DVFSExploreResult, error) { return dvfs.Explore(spec) }

// DVFSFrontier returns the Pareto-optimal subset of points (per
// workload, maximizing performance and minimizing energy per
// instruction).
func DVFSFrontier(points []DVFSPoint) []DVFSPoint { return dvfs.Frontier(points) }

// ---- Experiment drivers (Figs. 8-12) ----

// SimParams configures the Monte Carlo experiments.
type SimParams = experiments.SimParams

// DefaultSimParams returns the paper's setup (26 benchmarks, 50 fault-map
// pairs, pfail 0.001) with a reproduction-scale instruction budget.
func DefaultSimParams() SimParams { return experiments.DefaultSimParams() }

// LowVoltageResults carries the Fig. 8/9/10 measurements.
type LowVoltageResults = experiments.LowVoltageResults

// HighVoltageResults carries the Fig. 11/12 measurements.
type HighVoltageResults = experiments.HighVoltageResults

// Figure is a rendered paper figure.
type Figure = experiments.Figure

// RunLowVoltage executes the below-Vcc-min experiments (Figs. 8-10).
func RunLowVoltage(p SimParams) (*LowVoltageResults, error) {
	return experiments.RunLowVoltage(p)
}

// RunHighVoltage executes the at-or-above-Vcc-min experiments (Figs. 11-12).
func RunHighVoltage(p SimParams) (*HighVoltageResults, error) {
	return experiments.RunHighVoltage(p)
}

// ---- Parameter sweeps ----

// SweepSpec configures a deterministic, shardable sweep over the
// (pfail × geometry × scheme × victim × granularity) grid.
type SweepSpec = sweep.Spec

// SweepRow is one grid cell's result (one JSON line of the output).
type SweepRow = sweep.Row

// SweepResult summarizes one sweep execution.
type SweepResult = sweep.Result

// SweepAxisSummary is the per-axis marginal aggregate of a sweep.
type SweepAxisSummary = sweep.AxisSummary

// SweepRunOptions configures one sweep execution: the output stream, the
// resume set, cancellation, progress observation and the worker bound for
// concurrent cell evaluations (which never changes results, only
// scheduling).
type SweepRunOptions = sweep.RunOptions

// RunSweep evaluates the spec's grid (or this shard's slice of it),
// streaming JSON-line rows to out (nil discards them). Every cell seeds
// from the hash of its coordinates plus the base seed, so results are
// identical under any shard layout.
func RunSweep(spec SweepSpec, out io.Writer) (*SweepResult, error) {
	return sweep.Run(spec, sweep.RunOptions{Out: out})
}

// RunSweepWith is RunSweep with full execution options — checkpoint
// resume via Completed, cancellation via Context, progress callbacks and
// a per-run Workers bound.
func RunSweepWith(spec SweepSpec, opt SweepRunOptions) (*SweepResult, error) {
	return sweep.Run(spec, opt)
}

// ResumeSweep is RunSweep skipping the cells already present in the
// prior output read from prev; pass the same spec. The result's
// ResumeValidBytes and ResumeTornBytes report how much of the prior
// checkpoint was a usable row prefix and how many trailing bytes of a
// line torn by a kill mid-write were excluded, so callers can log what
// was lost. ResumeSweep only reads prev: when appending the new rows to
// the same file, first truncate it to ResumeValidBytes so a torn tail
// cannot fuse with the first appended row (sweep.ResumeFile, used by
// vccmin-sweep -resume and the serve job runner, does both).
func ResumeSweep(spec SweepSpec, prev io.Reader, out io.Writer) (*SweepResult, error) {
	return sweep.Resume(spec, prev, sweep.RunOptions{Out: out})
}

// SummarizeSweep aggregates rows (e.g. re-read from a finished sweep
// file via ReadSweepRows) into per-axis marginal summaries.
func SummarizeSweep(rows []SweepRow) []SweepAxisSummary { return sweep.Summarize(rows) }

// ReadSweepRows parses a JSON-lines sweep output stream.
func ReadSweepRows(r io.Reader) ([]SweepRow, error) { return sweep.ReadRows(r) }

// ---- Content-addressed compute engine ----

// Engine is the unified content-addressed compute layer every
// entrypoint (HTTP handlers, CLIs, batch) executes its tasks through:
// singleflight in-flight deduplication, an in-memory LRU fronting an
// optional on-disk result store keyed <kind>/<hash>.json, and per-kind
// hit/miss statistics. Results are pure functions of their canonical
// parameters, so stored bytes never go stale.
type Engine = engine.Engine

// EngineOptions sizes an Engine: the in-memory entry bound and the
// optional persistent store directory.
type EngineOptions = engine.Options

// EngineTask is one deterministic unit of compute: a kind, a canonical
// parameter hash, and a Run producing a JSON-marshallable result.
type EngineTask = engine.Task

// EngineResult is one engine execution's outcome: the stored bytes and
// the tier that served them ("miss" = computed, "hit" = memory, "disk",
// "inflight").
type EngineResult = engine.Result

// BatchItem is one request of a heterogeneous batch: a registered task
// kind plus raw JSON parameters.
type BatchItem = engine.BatchItem

// BatchResult is one batch item's outcome, in request order.
type BatchResult = engine.BatchResult

// Registered task kinds for BatchItem.Kind (the same spellings POST
// /v1/batch accepts).
const (
	TaskKindCapacity       = tasks.KindCapacity
	TaskKindOperatingPoint = tasks.KindOperatingPoint
	TaskKindOverhead       = tasks.KindOverhead
	TaskKindSim            = tasks.KindSim
	TaskKindSweep          = tasks.KindSweep
	TaskKindSweepCell      = tasks.KindSweepCell
	TaskKindDVFSRun        = tasks.KindDVFSRun
	TaskKindDVFSExplore    = tasks.KindDVFSExplore
	TaskKindFleetSweep     = tasks.KindFleetSweep
	TaskKindVccminPredict  = tasks.KindVccminPredict
	TaskKindQuery          = tasks.KindQuery
)

// NewEngine builds a compute engine; pass a Dir to persist results
// across processes (the same store layout vccmin-serve keeps under its
// data directory).
func NewEngine(opts EngineOptions) (*Engine, error) { return engine.New(opts) }

// BatchRun executes a heterogeneous list of task requests through the
// engine — every kind the service registers — answering in request
// order with shared deduplication. Per-item failures land in that
// item's Error and never fail the batch.
func BatchRun(ctx context.Context, e *Engine, items []BatchItem) []BatchResult {
	return engine.RunBatch(ctx, e, items, 0)
}

// ---- Serving ----

// ServeConfig sizes the HTTP service (address, data directory, worker
// pool, response cache, grid limit, drain budget).
type ServeConfig = service.Config

// Server is the routed HTTP service over the analysis, simulation and
// sweep layers; obtain one with NewServer and mount Handler().
type Server = service.Server

// SweepJob is a point-in-time view of an async sweep job.
type SweepJob = service.JobSnapshot

// Sweep job lifecycle states.
const (
	SweepJobQueued  = service.JobQueued
	SweepJobRunning = service.JobRunning
	SweepJobDone    = service.JobDone
	SweepJobFailed  = service.JobFailed
)

// NewServer builds the HTTP service, recovering any sweep jobs
// checkpointed in the configured data directory.
func NewServer(cfg ServeConfig) (*Server, error) { return service.New(cfg) }

// Serve runs the HTTP service at cfg.Addr until ctx is cancelled, then
// shuts down gracefully: the listener stops, in-flight sweep jobs drain up
// to the configured timeout, and anything still running is checkpointed
// for the next start.
func Serve(ctx context.Context, cfg ServeConfig) error { return service.Serve(ctx, cfg) }

// ---- Traffic (rate limiting, load generation) ----

// RateLimiter is the per-client token-bucket limiter the service mounts
// in front of every endpoint except /v1/healthz; usable standalone for
// any keyed admission decision.
type RateLimiter = limit.Limiter

// NewRateLimiter builds a limiter refilling rate tokens per second per
// key with the given bucket capacity (burst <= 0 defaults to 2*rate).
func NewRateLimiter(rate, burst float64) *RateLimiter { return limit.New(rate, burst) }

// LoadgenConfig configures a mixed-traffic open-loop replay against a
// running service (see cmd/vccmin-loadgen for the CLI form).
type LoadgenConfig = loadgen.Config

// LoadgenEndpoint is one weighted entry of a loadgen traffic mix.
type LoadgenEndpoint = loadgen.Endpoint

// LoadgenReport is the replay digest: per-endpoint latency quantiles,
// achieved throughput, and 429/503 accounting.
type LoadgenReport = loadgen.Report

// DefaultLoadgenMix is the standard six-endpoint traffic mix
// (capacity, operating-point, overhead, sim, sweep, stats).
func DefaultLoadgenMix() []LoadgenEndpoint { return loadgen.DefaultMix() }

// RunLoadgen replays cfg's traffic mix at the configured open-loop rate
// until the request budget is spent, then reports.
func RunLoadgen(ctx context.Context, cfg LoadgenConfig) (*LoadgenReport, error) {
	return loadgen.Run(ctx, cfg)
}

// MeasuredBlockDisableCapacity estimates Eq. 2 by Monte Carlo: the mean
// fault-free-block fraction over trials maps drawn at pfail — the
// empirical counterpart of ExpectedBlockDisableCapacity. Trials draw on
// the sparse fast path and run on all CPUs; the estimate is a pure
// function of the arguments (worker scheduling never changes it).
func MeasuredBlockDisableCapacity(g Geometry, pfail float64, trials int, seed int64) float64 {
	return experiments.MeasuredBlockDisableCapacity(g, pfail, trials, seed)
}

// MeasuredBlockDisableCapacityWorkers is MeasuredBlockDisableCapacity
// with the Monte Carlo worker pool bounded to workers goroutines (0 =
// GOMAXPROCS); the estimate is identical at every setting.
func MeasuredBlockDisableCapacityWorkers(g Geometry, pfail float64, trials int, seed int64, workers int) float64 {
	return experiments.MeasuredBlockDisableCapacityWorkers(g, pfail, trials, seed, workers)
}

// MeasuredBlockDisableCapacityDenseSerial is the dense-stream, serial
// analogue of MeasuredBlockDisableCapacity: per-trial maps are
// byte-identical to GenerateFaultMap at the derived trial seeds, drawn
// through one reused buffer so steady-state trials allocate nothing.
func MeasuredBlockDisableCapacityDenseSerial(g Geometry, pfail float64, trials int, seed int64) float64 {
	return experiments.MeasuredBlockDisableCapacityDenseSerial(g, pfail, trials, seed)
}

// ---- Fleet-scale population modeling ----

// FleetVariation parameterizes the die-to-die pfail multiplier model:
// inter-wafer lognormal mean, intra-wafer radial gradient, per-die
// noise.
type FleetVariation = population.Variation

// FleetSpec configures one fleet measurement: the die population, the
// variation model, the certification schemes and the voltage grid.
// Zero fields take the population defaults.
type FleetSpec = population.FleetSpec

// FleetDieResult is one die's fleet row: wafer position, drawn
// multiplier, per-scheme Vcc-min grid step.
type FleetDieResult = population.DieResult

// FleetSchemeYield is one scheme's fleet-level Vcc-min distribution:
// histogram, yield-versus-voltage curve, quantiles and per-wafer
// summaries.
type FleetSchemeYield = population.SchemeYield

// FleetResult is one fleet measurement's full answer.
type FleetResult = population.FleetResult

// RunFleet measures every die of a simulated fleet: per-die pfail
// drawn from the wafer-level variation model, Vcc-min bisected under
// each scheme. Deterministic per-die seeding makes the result
// bit-identical at every worker count.
func RunFleet(spec FleetSpec) (*FleetResult, error) { return population.RunFleet(spec) }

// VccminPredictSpec configures a data-efficient Vcc-min prediction
// study: estimate sampled dies' minimum operating voltages from K
// adaptive pass/fail measurements each.
type VccminPredictSpec = population.PredictSpec

// VccminPredictResult reports the study's |estimate - truth| error
// distribution in volts, with the analytic bisection bracket bound.
type VccminPredictResult = population.PredictResult

// RunVccminPredict runs the prediction study over a strided sample of
// the fleet.
func RunVccminPredict(spec VccminPredictSpec) (*VccminPredictResult, error) {
	return population.RunPredict(spec)
}

// ---- Columnar result queries ----

// QueryRequest is the aggregation-query task's request (the POST
// /v1/query body): a sweep grid naming the result set plus the
// question — group-by axes, metrics, equality filters and a pfail
// range.
type QueryRequest = tasks.QueryRequest

// QueryResponse is the query task's answer: the resolved question and
// the aggregated groups.
type QueryResponse = tasks.QueryResponse

// QuerySpec is the bare aggregation question, for querying rows already
// in hand (see QuerySweepRows).
type QuerySpec = colstore.Spec

// QueryResult is a bare query's answer: row/match counts and groups.
type QueryResult = colstore.Result

// QueryGroup is one group of a query answer.
type QueryGroup = colstore.Group

// QueryAggregate is one metric's aggregates within a group.
type QueryAggregate = colstore.Aggregate

// QuerySweepRows aggregates finished sweep rows (e.g. re-read from a
// checkpoint via ReadSweepRows) through the columnar query layer. The
// answer is independent of row order, so a resumed checkpoint and a
// fresh run agree exactly.
func QuerySweepRows(rows []SweepRow, q QuerySpec) (*QueryResult, error) {
	src, err := colstore.ShardsOf(rows, colstore.DefaultShardRows)
	if err != nil {
		return nil, err
	}
	return colstore.Query(src, q)
}

// EncodeSweepShard packs finished sweep rows into one colstore shard's
// canonical colv1 bytes; DecodeSweepShard reverses it, rejecting any
// malformed or non-canonical input.
func EncodeSweepShard(rows []SweepRow) ([]byte, error) {
	s, err := colstore.NewShard(rows)
	if err != nil {
		return nil, err
	}
	return s.EncodeBytes(), nil
}

// DecodeSweepShard parses canonical colv1 shard bytes back into rows.
func DecodeSweepShard(data []byte) ([]SweepRow, error) {
	s, err := colstore.Decode(data)
	if err != nil {
		return nil, err
	}
	return s.Rows(), nil
}

// ---- Extensions: bit-fix and disabling granularity ----

// BitFixResult classifies a fault map for the bit-fix scheme (the other
// mechanism of Wilkerson et al. reviewed in Section II).
type BitFixResult = core.BitFixResult

// EvaluateBitFix checks a fault map against the reference bit-fix design
// (one repair per 16-bit group, 75% capacity, +2 cycles).
func EvaluateBitFix(m *FaultMap) BitFixResult {
	return core.EvaluateBitFix(m, core.ReferenceBitFix())
}

// BitFixWholeCacheFailure returns the analytic probability that bit-fix
// cannot certify the cache at the given pfail.
func BitFixWholeCacheFailure(g Geometry, pfail float64) float64 {
	return prob.BitFixWholeCacheFailProb(g.Blocks(), g.DataBits(), 8, 1, pfail)
}

// DisablingGranularity names a disabling unit (block, set or way).
type DisablingGranularity = prob.Granularity

// Disabling granularities.
const (
	GranularityBlock = prob.GranularityBlock
	GranularitySet   = prob.GranularitySet
	GranularityWay   = prob.GranularityWay
)

// GranularityCapacity returns the expected surviving capacity when
// disabling at the given granularity (Eq. 2 applied per unit).
func GranularityCapacity(g Geometry, gran DisablingGranularity, pfail float64) float64 {
	return prob.GranularityCapacity(g, gran, pfail)
}

// MostEfficientOperatingPoint returns the minimum-energy operating point
// of the below-Vcc-min DVFS model that still delivers minPerformance
// (normalized); ok is false if the constraint cannot be met.
func MostEfficientOperatingPoint(m PowerModel, minPerformance float64) (power.OperatingPointChoice, bool) {
	return m.MostEfficientPoint(minPerformance, 400)
}

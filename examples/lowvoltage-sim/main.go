// Low-voltage simulation walkthrough: run one benchmark through every
// Table III configuration at both voltages and print the normalized
// performance — a single-benchmark slice of Figs. 8 through 12.
//
//	go run ./examples/lowvoltage-sim            # defaults to crafty
//	go run ./examples/lowvoltage-sim gcc
package main

import (
	"fmt"
	"log"
	"os"

	"vccmin"
)

func main() {
	bench := "crafty"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	const instructions = 200_000
	g := vccmin.ReferenceGeometry()
	pair := vccmin.NewFaultPair(g, g, 0.001, 7)
	fmt.Printf("benchmark %s, fault pair seed 7: I$ %.1f%%, D$ %.1f%% capacity at low voltage\n\n",
		bench,
		100*vccmin.BuildBlockDisable(pair.I).CapacityFraction(),
		100*vccmin.BuildBlockDisable(pair.D).CapacityFraction())

	for _, mode := range []vccmin.Mode{vccmin.LowVoltage, vccmin.HighVoltage} {
		fmt.Printf("---- %s ----\n", mode)
		base := run(vccmin.SimOptions{Benchmark: bench, Mode: mode, Instructions: instructions})
		fmt.Printf("%-28s IPC %.3f (baseline)\n", "baseline", base.IPC)
		configs := []struct {
			name   string
			scheme vccmin.Scheme
			victim vccmin.VictimKind
		}{
			{"word-disable", vccmin.WordDisable, vccmin.NoVictim},
			{"block-disable", vccmin.BlockDisable, vccmin.NoVictim},
			{"block-disable + V$ (10T)", vccmin.BlockDisable, vccmin.Victim10T},
			{"block-disable + V$ (6T)", vccmin.BlockDisable, vccmin.Victim6T},
			{"incremental word-disable", vccmin.IncrementalWordDisable, vccmin.NoVictim},
		}
		for _, c := range configs {
			opts := vccmin.SimOptions{
				Benchmark: bench, Mode: mode, Scheme: c.scheme, Victim: c.victim,
				Instructions: instructions,
			}
			if mode == vccmin.LowVoltage && c.scheme != vccmin.WordDisable {
				opts.Pair = pair
			}
			r := run(opts)
			fmt.Printf("%-28s IPC %.3f (%.1f%% of baseline)\n", c.name, r.IPC, 100*r.IPC/base.IPC)
		}
		fmt.Println()
	}
	fmt.Println("At high voltage the disable bits are ignored: block-disabling matches the")
	fmt.Println("baseline exactly, while word-disabling still pays its alignment network.")
}

func run(opts vccmin.SimOptions) vccmin.SimResult {
	r, err := vccmin.RunSim(opts)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

// Victim-cache study: why a 16-entry victim cache makes block-disabling's
// performance deterministic. Runs one conflict-sensitive benchmark over
// many fault maps and shows the spread (average vs worst map) with and
// without the victim cache — the mechanism behind Figs. 8-10.
//
//	go run ./examples/victim-cache
package main

import (
	"fmt"
	"log"

	"vccmin"
)

func main() {
	const (
		bench        = "gzip" // conflict-prone hot sets; a Fig. 8 min-case
		trials       = 12
		instructions = 120_000
	)
	g := vccmin.ReferenceGeometry()
	base := run(vccmin.SimOptions{Benchmark: bench, Mode: vccmin.LowVoltage, Instructions: instructions})

	fmt.Printf("%s below Vcc-min, %d random fault maps, normalized to baseline IPC %.3f\n\n",
		bench, trials, base.IPC)
	fmt.Printf("%-6s %10s %12s %14s %12s\n", "map", "capacity", "plain BD", "BD + V$ 10T", "V$ hit rate")

	var sumP, sumV, minP, minV float64
	minP, minV = 1, 1
	for seed := int64(0); seed < trials; seed++ {
		pair := vccmin.NewFaultPair(g, g, 0.001, 100+seed)
		plain := run(vccmin.SimOptions{
			Benchmark: bench, Mode: vccmin.LowVoltage, Scheme: vccmin.BlockDisable,
			Pair: pair, Instructions: instructions,
		})
		withVC := run(vccmin.SimOptions{
			Benchmark: bench, Mode: vccmin.LowVoltage, Scheme: vccmin.BlockDisable,
			Victim: vccmin.Victim10T, Pair: pair, Instructions: instructions,
		})
		np, nv := plain.IPC/base.IPC, withVC.IPC/base.IPC
		sumP += np
		sumV += nv
		if np < minP {
			minP = np
		}
		if nv < minV {
			minV = nv
		}
		fmt.Printf("%-6d %9.1f%% %11.1f%% %13.1f%% %11.1f%%\n",
			seed, 100*plain.DCapacity, 100*np, 100*nv, 100*withVC.VictimHitRate)
	}
	fmt.Printf("\n%-6s %10s %11.1f%% %13.1f%%\n", "avg", "", 100*sumP/trials, 100*sumV/trials)
	fmt.Printf("%-6s %10s %11.1f%% %13.1f%%\n", "min", "", 100*minP, 100*minV)
	fmt.Printf("\nspread (avg - min): plain %.1fpp, with V$ %.1fpp\n",
		100*(sumP/trials-minP), 100*(sumV/trials-minV))
	fmt.Println("\nThe victim cache absorbs the overflow of sets that lost many ways to")
	fmt.Println("faults, so the worst fault map performs nearly as well as the average —")
	fmt.Println("the paper's 'higher and more deterministic performance'.")
}

func run(opts vccmin.SimOptions) vccmin.SimResult {
	r, err := vccmin.RunSim(opts)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

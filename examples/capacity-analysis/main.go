// Capacity analysis: explore how cache geometry and fault clustering
// change the capacity a block-disabled cache keeps below Vcc-min, and
// validate the closed-form analysis (Eqs. 1-3) against Monte Carlo fault
// maps — the Section IV methodology applied as a design-space tool.
//
//	go run ./examples/capacity-analysis
package main

import (
	"fmt"
	"math"

	"vccmin"
)

func main() {
	fmt.Println("Block-disable capacity (Eq. 2) across geometries and pfail:")
	fmt.Printf("%-38s %8s %8s %8s %8s\n", "geometry", "5e-4", "1e-3", "2e-3", "5e-3")
	for _, cfg := range []struct{ size, ways, block int }{
		{32 * 1024, 8, 32},
		{32 * 1024, 8, 64},
		{32 * 1024, 8, 128},
		{16 * 1024, 4, 64},
		{64 * 1024, 8, 64},
	} {
		g, err := vccmin.NewGeometry(cfg.size, cfg.ways, cfg.block)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-38s", g.String())
		for _, pf := range []float64{5e-4, 1e-3, 2e-3, 5e-3} {
			fmt.Printf("  %6.1f%%", 100*vccmin.ExpectedBlockDisableCapacity(g, pf))
		}
		fmt.Println()
	}

	// Monte Carlo versus the analysis, for the reference cache.
	g := vccmin.ReferenceGeometry()
	const pfail, trials = 0.001, 400
	var sum, sumSq, min float64
	min = 1
	for i := 0; i < trials; i++ {
		c := vccmin.NewFaultMap(g, pfail, int64(i)).CapacityFraction()
		sum += c
		sumSq += c * c
		if c < min {
			min = c
		}
	}
	mean := sum / trials
	sd := math.Sqrt(sumSq/trials - mean*mean)
	fmt.Printf("\nMonte Carlo (%d maps at pfail=%g): capacity mean %.1f%% sd %.2fpp min %.1f%%\n",
		trials, pfail, 100*mean, 100*sd, 100*min)
	fmt.Printf("Analytic (Eqs. 2-3):                 capacity mean %.1f%%\n",
		100*vccmin.ExpectedBlockDisableCapacity(g, pfail))

	// Clustered faults (the paper's future work): same fault budget,
	// spatially correlated.
	fmt.Println("\nUniform vs clustered faults (cluster = 8 cells), block-disable capacity:")
	for _, pf := range []float64{1e-3, 2e-3, 5e-3} {
		var u, c float64
		const n = 100
		for i := 0; i < n; i++ {
			u += vccmin.NewFaultMap(g, pf, int64(1000+i)).CapacityFraction()
			c += vccmin.NewClusteredFaultMap(g, pf, 8, int64(1000+i)).CapacityFraction()
		}
		fmt.Printf("  pfail=%-6g uniform %.1f%%  clustered %.1f%%\n", pf, 100*u/n, 100*c/n)
	}
	fmt.Println("\nClustering concentrates damage into fewer blocks, so block-disabling")
	fmt.Println("keeps more capacity than the uniform-fault analysis predicts.")
}

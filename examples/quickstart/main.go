// Quickstart: the paper's analysis and one simulation in ~40 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vccmin"
)

func main() {
	g := vccmin.ReferenceGeometry()
	fmt.Println("cache:", g)

	// Section IV analysis: what does pfail = 0.001 do to this cache?
	const pfail = 0.001
	fmt.Printf("expected faults:          %.0f cells\n", pfail*float64(g.TotalCells()))
	fmt.Printf("expected faulty blocks:   %.0f of %d (Eq. 1)\n",
		vccmin.MeanFaultyBlocks(g, int(pfail*float64(g.TotalCells()))), g.Blocks())
	fmt.Printf("block-disable capacity:   %.1f%% (Eq. 2)\n",
		100*vccmin.ExpectedBlockDisableCapacity(g, pfail))
	fmt.Printf("P[capacity > 50%%]:        %.4f (Eq. 3)\n",
		vccmin.CapacityAtLeast(g, pfail, 0.5))
	fmt.Printf("word-disable cache death: %.2e (Eqs. 4-5)\n",
		vccmin.WordDisableWholeCacheFailure(g, pfail))

	// One concrete fault map and what each scheme makes of it.
	pair := vccmin.NewFaultPair(g, g, pfail, 42)
	bd := vccmin.BuildBlockDisable(pair.D)
	fmt.Printf("\nfault map seed 42: D-cache keeps %d/%d blocks (%.1f%%), word-disable fit: %v\n",
		bd.EnabledBlocks(), g.Blocks(), 100*bd.CapacityFraction(), vccmin.WordDisableFit(pair.D))

	// Simulate crafty below Vcc-min under three schemes.
	fmt.Println("\ncrafty below Vcc-min (200k instructions):")
	base := run(vccmin.SimOptions{Benchmark: "crafty", Mode: vccmin.LowVoltage})
	wd := run(vccmin.SimOptions{Benchmark: "crafty", Mode: vccmin.LowVoltage, Scheme: vccmin.WordDisable})
	bdr := run(vccmin.SimOptions{Benchmark: "crafty", Mode: vccmin.LowVoltage, Scheme: vccmin.BlockDisable, Victim: vccmin.Victim10T, Pair: pair})
	fmt.Printf("  baseline:            IPC %.3f\n", base.IPC)
	fmt.Printf("  word-disable:        IPC %.3f (%.1f%% of baseline)\n", wd.IPC, 100*wd.IPC/base.IPC)
	fmt.Printf("  block-disable + V$:  IPC %.3f (%.1f%% of baseline)\n", bdr.IPC, 100*bdr.IPC/base.IPC)
}

func run(opts vccmin.SimOptions) vccmin.SimResult {
	r, err := vccmin.RunSim(opts)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

// DVFS explorer: walk the Fig. 1 voltage-scaling model from full speed
// down into the below-Vcc-min region, then hand a multi-phase workload
// to the phase-aware scheduler and compare its policies — static bounds,
// oracle, reactive — on the (performance, energy) plane.
//
// The heavy-duty version of the second half is cmd/vccmin-dvfs, which
// explores the whole (workload × scheme × policy) grid and emits the
// Pareto frontier as JSON; this example keeps one workload and prints a
// readable table.
//
//	go run ./examples/dvfs-explorer
package main

import (
	"fmt"

	"vccmin"
)

func main() {
	m := vccmin.DefaultPowerModel()
	g := vccmin.ReferenceGeometry()

	fmt.Println("Operating points from full frequency down (normalized units):")
	fmt.Printf("%6s %8s %8s %10s %10s %8s %12s\n",
		"freq", "voltage", "power", "pfail", "capacity", "perf", "zone")
	for _, p := range m.CurveBelowVccMin(20) {
		if p.Freq == 0 {
			continue
		}
		pf := m.Pfail(p.Voltage)
		fmt.Printf("%6.2f %8.3f %8.3f %10.2e %9.1f%% %8.3f %12s\n",
			p.Freq, p.Voltage, p.Power, pf,
			100*vccmin.ExpectedBlockDisableCapacity(g, pf),
			p.Performance, p.Zone)
	}

	fmt.Println("\nHow deep can the cache go?")
	for _, pf := range []float64{1e-4, 1e-3, 2e-3, 5e-3} {
		v := m.VoltageForPfail(pf)
		fmt.Printf("  pfail %.0e tolerated -> V = %.3f, block-disable capacity %.1f%%, "+
			"word-disable whole-cache failure %.1e\n",
			pf, v, 100*vccmin.ExpectedBlockDisableCapacity(g, pf),
			vccmin.WordDisableWholeCacheFailure(g, pf))
	}

	fmt.Println("\nThe low-voltage zone trades a sub-linear performance loss (disabled")
	fmt.Println("cache blocks) for cubic power reduction — the paper's Fig. 1b.")

	// Now schedule across the two domains: a compute/memory-swinging
	// workload under each policy, block-disabling at pfail 1e-3.
	fmt.Println("\nPhase-aware scheduling of compute-memory-swing (block-disable, pfail 1e-3):")
	fmt.Printf("%-12s %8s %10s %8s %9s\n", "policy", "perf", "E/instr", "switches", "low share")
	mp, err := vccmin.MultiPhaseWorkloadByName("compute-memory-swing")
	if err != nil {
		panic(err)
	}
	for _, policy := range vccmin.DVFSPolicies() {
		res, err := vccmin.RunDVFS(vccmin.DVFSConfig{
			Workload: mp.Scaled(30_000),
			Scheme:   vccmin.BlockDisable,
			Pfail:    1e-3,
			Policy:   policy,
			Seed:     1,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-12s %8.4f %10.3f %8d %8.0f%%\n",
			res.Policy, res.Performance, res.EnergyPerInstruction, res.Switches,
			100*float64(res.LowInstructions)/float64(res.TotalInstructions))
	}
	fmt.Println("\nThe oracle harvests low-voltage energy in the memory phases and")
	fmt.Println("spends the 3 GHz clock where it buys IPC — performance-effective")
	fmt.Println("operation below Vcc-min, the paper's thesis as a scheduler.")
}

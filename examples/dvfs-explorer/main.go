// DVFS explorer: walk the Fig. 1 voltage-scaling model from full speed
// down into the below-Vcc-min region, showing at each operating point the
// supply voltage, dynamic power, cell failure probability, expected cache
// capacity under block-disabling, and the resulting performance estimate —
// the paper's Figure 1(b) as a table.
//
//	go run ./examples/dvfs-explorer
package main

import (
	"fmt"

	"vccmin"
)

func main() {
	m := vccmin.DefaultPowerModel()
	g := vccmin.ReferenceGeometry()

	fmt.Println("Operating points from full frequency down (normalized units):")
	fmt.Printf("%6s %8s %8s %10s %10s %8s %12s\n",
		"freq", "voltage", "power", "pfail", "capacity", "perf", "zone")
	for _, p := range m.CurveBelowVccMin(20) {
		if p.Freq == 0 {
			continue
		}
		pf := m.Pfail(p.Voltage)
		fmt.Printf("%6.2f %8.3f %8.3f %10.2e %9.1f%% %8.3f %12s\n",
			p.Freq, p.Voltage, p.Power, pf,
			100*vccmin.ExpectedBlockDisableCapacity(g, pf),
			p.Performance, p.Zone)
	}

	fmt.Println("\nHow deep can the cache go?")
	for _, pf := range []float64{1e-4, 1e-3, 2e-3, 5e-3} {
		v := m.VoltageForPfail(pf)
		fmt.Printf("  pfail %.0e tolerated -> V = %.3f, block-disable capacity %.1f%%, "+
			"word-disable whole-cache failure %.1e\n",
			pf, v, 100*vccmin.ExpectedBlockDisableCapacity(g, pf),
			vccmin.WordDisableWholeCacheFailure(g, pf))
	}

	fmt.Println("\nThe low-voltage zone trades a sub-linear performance loss (disabled")
	fmt.Println("cache blocks) for cubic power reduction — the paper's Fig. 1b.")
}

// Package lfrand is a drop-in replica of math/rand's default source
// (the additive lagged-Fibonacci generator with tap 273 and lag 607)
// exposing the exact draw methods the hot paths use — Int63, Float64,
// Intn — as concrete, inlinable calls on a value type.
//
// Why it exists: the dense fault-map generators and the workload
// generator pin byte-identical random streams (golden fixtures, sweep
// row hashes and the dvfs frontier all depend on them), so they cannot
// switch to a cheaper generator family. What they CAN shed is
// math/rand's fixed overhead: the Source interface dispatch on every
// draw, the heap allocation per rand.New, and most of the seeding cost
// (Seed reduces 48271·x mod 2³¹−1 with two integer divisions per step,
// 1841 steps per seed; the Mersenne-prime shift-add reduction below is
// ~3× cheaper and exactly equal).
//
// Exactness contract: for every seed, a Source produces the identical
// value stream to rand.New(rand.NewSource(seed)) for the replicated
// methods. The additive constants math/rand folds into its seeded state
// (its unexported rngCooked table) are recovered once at init from a
// throwaway rand.NewSource via reflection and verified against live
// math/rand streams across several seeds; if the verification fails on
// some future Go runtime, every Source transparently falls back to
// delegating to a *rand.Rand, trading speed for unconditional
// equality. TestSourceMatchesMathRand holds the replica to the
// contract.
package lfrand

import (
	"math/rand"
	"reflect"
)

const (
	rngLen  = 607
	rngTap  = 273
	rngMask = 1<<63 - 1

	int32max = 1<<31 - 1
)

// cooked is math/rand's rngCooked table: the state its Seed XORs into
// the replayable seed chain. Recovered at init; valid only when
// cookedOK is true.
var (
	cooked   [rngLen]uint64
	cookedOK bool
)

func init() {
	cookedOK = recoverCooked() && verify()
}

// recoverCooked extracts the cooked table from a freshly seeded
// rand.NewSource: its state vector is seedChain(seed) XOR cooked, and
// the seed chain is replayable from the documented algorithm, so one
// XOR per word recovers the constants. Reading the unexported vec
// field via reflection only uses Int() on the elements (reading
// unexported fields is allowed; only Interface/Set are not).
func recoverCooked() (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	const probeSeed = 1
	src := rand.NewSource(probeSeed)
	v := reflect.ValueOf(src).Elem().FieldByName("vec")
	if !v.IsValid() || v.Kind() != reflect.Array || v.Len() != rngLen ||
		v.Type().Elem().Kind() != reflect.Int64 {
		return false
	}
	// Replay the documented x-chain: 20 warmup steps, then three steps
	// per state word building u = x₁<<40 ^ x₂<<20 ^ x₃.
	x := seedInit(probeSeed)
	for i := -20; i < rngLen; i++ {
		x = seedrand(x)
		if i >= 0 {
			u := uint64(x) << 40
			x = seedrand(x)
			u ^= uint64(x) << 20
			x = seedrand(x)
			u ^= uint64(x)
			cooked[i] = uint64(v.Index(i).Int()) ^ u
		}
	}
	return true
}

// verify checks the replica against live math/rand streams: several
// seeds, enough draws to wrap the lag window, and every replicated
// method including Intn's power-of-two and rejection paths.
func verify() bool {
	for _, seed := range []int64{1, 7, -3, 424242, 1 << 40} {
		ref := rand.New(rand.NewSource(seed))
		var s Source
		s.seedDirect(seed)
		for i := 0; i < 2*rngLen; i++ {
			if s.Int63() != ref.Int63() {
				return false
			}
		}
		for i := 0; i < 64; i++ {
			if s.Float64() != ref.Float64() {
				return false
			}
			if s.Intn(64) != ref.Intn(64) { // power-of-two path
				return false
			}
			if s.Intn(1000) != ref.Intn(1000) { // rejection path
				return false
			}
			if s.Int63n(3e18) != ref.Int63n(3e18) { // 64-bit path
				return false
			}
		}
	}
	return true
}

// seedInit reduces a 64-bit seed to the chain's starting value exactly
// as rngSource.Seed does.
func seedInit(seed int64) int32 {
	seed = seed % int32max
	if seed < 0 {
		seed += int32max
	}
	if seed == 0 {
		seed = 89482311
	}
	return int32(seed)
}

// seedrand advances the seed chain: x ← 48271·x mod 2³¹−1, computed
// with the Mersenne-prime reduction (2³¹ ≡ 1 mod 2³¹−1, so a 47-bit
// product folds with one shift-add and at most one subtract) instead
// of math/rand's two-division Schrage split. Both compute the exact
// residue, so the chains are identical.
func seedrand(x int32) int32 {
	p := uint64(48271) * uint64(uint32(x))
	y := (p & int32max) + (p >> 31)
	if y >= int32max {
		y -= int32max
	}
	return int32(y)
}

// Source is one deterministic stream. The zero value is not seeded;
// call Seed (or construct with New) before drawing. Not safe for
// concurrent use. Copying a seeded Source forks the stream.
type Source struct {
	vec       [rngLen]uint64
	tap, feed int32

	// fb delegates every draw to math/rand when the init-time
	// verification failed; nil on the fast path.
	fb *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	var s Source
	s.Seed(seed)
	return &s
}

// Seed resets the stream to the deterministic state for seed —
// equivalent to replacing the source with rand.NewSource(seed).
// It allocates nothing on the fast path.
func (s *Source) Seed(seed int64) {
	if !cookedOK {
		s.fb = rand.New(rand.NewSource(seed))
		return
	}
	s.seedDirect(seed)
}

// seedDirect is the pure-Go replica of rngSource.Seed over the
// recovered cooked table.
func (s *Source) seedDirect(seed int64) {
	s.tap = 0
	s.feed = rngLen - rngTap
	x := seedInit(seed)
	for i := -20; i < rngLen; i++ {
		x = seedrand(x)
		if i >= 0 {
			u := uint64(x) << 40
			x = seedrand(x)
			u ^= uint64(x) << 20
			x = seedrand(x)
			u ^= uint64(x)
			s.vec[i] = u ^ cooked[i]
		}
	}
}

// Uint64 returns the next 64 uniform bits.
func (s *Source) Uint64() uint64 {
	if s.fb != nil {
		return s.fb.Uint64()
	}
	s.tap--
	if s.tap < 0 {
		s.tap += rngLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += rngLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return x
}

// Int63 returns a non-negative 63-bit draw.
func (s *Source) Int63() int64 {
	if s.fb != nil {
		return s.fb.Int63()
	}
	return int64(s.Uint64() & rngMask)
}

// Int31 returns a non-negative 31-bit draw.
func (s *Source) Int31() int32 { return int32(s.Int63() >> 32) }

// Float64 returns a uniform draw in [0, 1), replicating rand.Rand's
// resample-on-1.0 value stream.
func (s *Source) Float64() float64 {
	if s.fb != nil {
		return s.fb.Float64()
	}
again:
	f := float64(s.Int63()) / (1 << 63)
	if f == 1 {
		goto again
	}
	return f
}

// Int31n returns a uniform draw in [0, n), replicating rand.Rand's
// power-of-two mask and modulo-rejection paths. n must be positive.
func (s *Source) Int31n(n int32) int32 {
	if s.fb != nil {
		return s.fb.Int31n(n)
	}
	if n&(n-1) == 0 {
		return s.Int31() & (n - 1)
	}
	max := int32((1 << 31) - 1 - (1<<31)%uint32(n))
	v := s.Int31()
	for v > max {
		v = s.Int31()
	}
	return v % n
}

// Int63n returns a uniform draw in [0, n). n must be positive.
func (s *Source) Int63n(n int64) int64 {
	if s.fb != nil {
		return s.fb.Int63n(n)
	}
	if n&(n-1) == 0 {
		return s.Int63() & (n - 1)
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := s.Int63()
	for v > max {
		v = s.Int63()
	}
	return v % n
}

// Intn returns a uniform draw in [0, n). n must be positive.
func (s *Source) Intn(n int) int {
	if s.fb != nil {
		return s.fb.Intn(n)
	}
	if n <= 1<<31-1 {
		return int(s.Int31n(int32(n)))
	}
	return int(s.Int63n(int64(n)))
}

// Replicated reports whether the fast pure-Go replica is active (true
// on every supported runtime; false means draws delegate to math/rand).
func Replicated() bool { return cookedOK }

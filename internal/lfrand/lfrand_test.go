package lfrand

import (
	"math/rand"
	"testing"
)

// TestReplicated pins the fast path: on every supported Go runtime the
// cooked-table recovery and stream verification must succeed. If this
// fails after a toolchain upgrade the package still behaves correctly
// (every Source delegates to math/rand), but the hot paths lose their
// speedup — which should be a loud, investigated event, not a silent
// one.
func TestReplicated(t *testing.T) {
	if !Replicated() {
		t.Fatal("lfrand: cooked-table recovery or verification failed; sources are falling back to math/rand")
	}
}

// TestSourceMatchesMathRand is the contract: identical value streams to
// rand.New(rand.NewSource(seed)) for every replicated method, across
// seeds (including the negative and zero seeds Seed canonicalizes) and
// past the lag-607 window where the generator starts feeding back on
// its own output.
func TestSourceMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{0, 1, -1, 7, 12345, -987654321, 1 << 62} {
		ref := rand.New(rand.NewSource(seed))
		s := New(seed)
		for i := 0; i < 3*607; i++ {
			if got, want := s.Int63(), ref.Int63(); got != want {
				t.Fatalf("seed %d draw %d: Int63 = %d, want %d", seed, i, got, want)
			}
		}
		for i := 0; i < 200; i++ {
			if got, want := s.Float64(), ref.Float64(); got != want {
				t.Fatalf("seed %d draw %d: Float64 = %v, want %v", seed, i, got, want)
			}
			if got, want := s.Intn(2), ref.Intn(2); got != want {
				t.Fatalf("seed %d draw %d: Intn(2) = %d, want %d", seed, i, got, want)
			}
			if got, want := s.Intn(77), ref.Intn(77); got != want {
				t.Fatalf("seed %d draw %d: Intn(77) = %d, want %d", seed, i, got, want)
			}
			if got, want := s.Int31n(1000), ref.Int31n(1000); got != want {
				t.Fatalf("seed %d draw %d: Int31n = %d, want %d", seed, i, got, want)
			}
			if got, want := s.Int63n(3<<60), ref.Int63n(3<<60); got != want {
				t.Fatalf("seed %d draw %d: Int63n = %d, want %d", seed, i, got, want)
			}
		}
	}
}

// TestReseedEqualsFresh proves Seed fully resets the stream: reseeding
// a used Source equals a fresh construction, which is what lets the
// fault-map samplers reuse one Source across Monte Carlo trials.
func TestReseedEqualsFresh(t *testing.T) {
	s := New(11)
	for i := 0; i < 1000; i++ {
		s.Int63()
	}
	s.Seed(99)
	fresh := New(99)
	for i := 0; i < 1000; i++ {
		if got, want := s.Int63(), fresh.Int63(); got != want {
			t.Fatalf("draw %d after reseed: %d != %d", i, got, want)
		}
	}
}

// TestSeedAllocs pins the fast path's zero-allocation Seed — the whole
// point of the package for per-trial reseeding.
func TestSeedAllocs(t *testing.T) {
	if !Replicated() {
		t.Skip("fallback mode allocates by design")
	}
	var s Source
	n := testing.AllocsPerRun(100, func() {
		s.Seed(42)
		_ = s.Int63()
	})
	if n != 0 {
		t.Fatalf("Seed+Int63 allocated %v times per run, want 0", n)
	}
}

func BenchmarkSeed(b *testing.B) {
	var s Source
	for i := 0; i < b.N; i++ {
		s.Seed(int64(i))
	}
}

func BenchmarkSeedMathRand(b *testing.B) {
	src := rand.NewSource(0)
	for i := 0; i < b.N; i++ {
		src.Seed(int64(i))
	}
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Float64()
	}
	_ = sink
}

package trace

import "strconv"

// Segment is one phase of a PhasedGenerator: a generator and the number
// of instructions it supplies before the stream moves on.
type Segment struct {
	Gen          Generator
	Instructions int
}

// PhasedGenerator concatenates per-phase instruction streams and exposes
// phase-boundary markers: consumers that execute the stream in chunks
// (like the dvfs scheduler) can ask which phase the next instruction
// belongs to and how much of it remains, and an optional OnPhase hook
// observes every boundary crossing. After the last segment drains, the
// sequence restarts from the first segment (each segment's generator
// continues from its own internal state), so the stream is unbounded as
// the Generator contract requires.
type PhasedGenerator struct {
	// OnPhase, if set, is called when the stream enters a phase (including
	// phase 0 on the first Next), before that phase's first instruction is
	// drawn.
	OnPhase func(phase int)

	segs    []Segment
	idx     int
	left    int
	started bool
}

// NewPhased builds a phased generator over the segments. Segments with
// non-positive instruction counts are rejected by the callers that build
// them (workload.MultiPhase.Check); here they would make Next spin, so
// they panic.
func NewPhased(segs []Segment) *PhasedGenerator {
	if len(segs) == 0 {
		panic("trace: phased generator needs at least one segment")
	}
	for i, s := range segs {
		if s.Gen == nil || s.Instructions <= 0 {
			panic("trace: phased generator segment " + strconv.Itoa(i) + " is empty")
		}
	}
	return &PhasedGenerator{segs: segs, left: segs[0].Instructions}
}

// Phase returns the index of the segment the next instruction will come
// from. The internal wrap to the next segment happens lazily inside Next,
// so a drained segment (Remaining of the raw state hitting zero) is
// already reported as the next one here.
func (p *PhasedGenerator) Phase() int {
	if p.left == 0 {
		return (p.idx + 1) % len(p.segs)
	}
	return p.idx
}

// Remaining returns how many instructions the phase reported by Phase
// still supplies.
func (p *PhasedGenerator) Remaining() int {
	if p.left == 0 {
		return p.segs[(p.idx+1)%len(p.segs)].Instructions
	}
	return p.left
}

// Phases returns the segment count.
func (p *PhasedGenerator) Phases() int { return len(p.segs) }

// Reset rewinds the phase sequencing to the first segment's start, as if
// no instruction had been drawn. It does NOT touch the segment
// generators' internal state — callers replaying a stream reset those
// too (workload.Generator.Reset), since a segment generator continues
// from wherever its last draw left it.
func (p *PhasedGenerator) Reset() {
	p.idx = 0
	p.left = p.segs[0].Instructions
	p.started = false
}

// Next implements Generator.
func (p *PhasedGenerator) Next(out *Instr) {
	if !p.started {
		p.started = true
		if p.OnPhase != nil {
			p.OnPhase(p.idx)
		}
	}
	if p.left == 0 {
		p.idx = (p.idx + 1) % len(p.segs)
		p.left = p.segs[p.idx].Instructions
		if p.OnPhase != nil {
			p.OnPhase(p.idx)
		}
	}
	p.segs[p.idx].Gen.Next(out)
	p.left--
}

package trace

import (
	"reflect"
	"testing"
)

// constGen emits a fixed PC so segments are distinguishable.
type constGen struct{ pc uint64 }

func (c *constGen) Next(out *Instr) { *out = Instr{PC: c.pc, Class: IntALU} }

func TestPhasedGeneratorBoundaries(t *testing.T) {
	p := NewPhased([]Segment{
		{Gen: &constGen{pc: 1}, Instructions: 3},
		{Gen: &constGen{pc: 2}, Instructions: 2},
	})
	var entered []int
	p.OnPhase = func(phase int) { entered = append(entered, phase) }

	var got []uint64
	var ins Instr
	for i := 0; i < 7; i++ { // one full pass plus wrap into phase 0 again
		if want := []int{0, 0, 0, 1, 1, 0, 0}[i]; p.Phase() != want {
			t.Fatalf("before instr %d: Phase() = %d, want %d", i, p.Phase(), want)
		}
		p.Next(&ins)
		got = append(got, ins.PC)
	}
	if want := []uint64{1, 1, 1, 2, 2, 1, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("stream = %v, want %v", got, want)
	}
	if want := []int{0, 1, 0}; !reflect.DeepEqual(entered, want) {
		t.Fatalf("OnPhase sequence = %v, want %v", entered, want)
	}
}

func TestPhasedGeneratorRemaining(t *testing.T) {
	p := NewPhased([]Segment{
		{Gen: &constGen{pc: 1}, Instructions: 2},
		{Gen: &constGen{pc: 2}, Instructions: 4},
	})
	var ins Instr
	if p.Remaining() != 2 {
		t.Fatalf("Remaining at start = %d, want 2", p.Remaining())
	}
	p.Next(&ins)
	p.Next(&ins)
	// Phase 0 drained: the view already reports phase 1 even though the
	// internal wrap happens on the next draw.
	if p.Phase() != 1 || p.Remaining() != 4 {
		t.Fatalf("after draining phase 0: Phase()=%d Remaining()=%d, want 1 and 4", p.Phase(), p.Remaining())
	}
}

func TestPhasedGeneratorPanics(t *testing.T) {
	for name, segs := range map[string][]Segment{
		"empty":         nil,
		"zero budget":   {{Gen: &constGen{}, Instructions: 0}},
		"nil generator": {{Gen: nil, Instructions: 1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewPhased did not panic", name)
				}
			}()
			NewPhased(segs)
		}()
	}
}

// Package trace defines the instruction-stream representation consumed by
// the out-of-order timing model and produced by the synthetic workload
// generators. Instructions carry everything a trace-driven timing
// simulation needs: class, PC, memory address, branch outcome/target, and
// register dependence distances.
package trace

import "fmt"

// Class is an instruction's functional category; it selects the execution
// latency and functional-unit pool (Table II).
type Class uint8

const (
	IntALU  Class = iota // 1-cycle integer op, 4 units
	IntMult              // 7-cycle integer multiply/divide, 4 units
	FPALU                // 4-cycle FP add/compare, 1 unit
	FPMult               // 4-cycle FP multiply/divide, 1 unit
	Load                 // D-cache access
	Store                // D-cache access, non-blocking
	Branch               // resolves in execute; redirects fetch
)

// NumClasses is the number of instruction classes.
const NumClasses = 7

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case IntALU:
		return "intalu"
	case IntMult:
		return "intmult"
	case FPALU:
		return "fpalu"
	case FPMult:
		return "fpmult"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// IsMem reports whether the class accesses the data cache.
func (c Class) IsMem() bool { return c == Load || c == Store }

// IsFP reports whether the class uses the floating-point issue queue.
func (c Class) IsFP() bool { return c == FPALU || c == FPMult }

// Instr is one dynamic instruction.
type Instr struct {
	PC    uint64
	Class Class

	// Addr is the effective address of a Load or Store.
	Addr uint64

	// Branch fields.
	Taken  bool
	Target uint64

	// Dep1 and Dep2 are register dependence distances: this instruction's
	// sources were produced by the instructions Dep1 and Dep2 positions
	// earlier in the dynamic stream. Zero means no dependence.
	Dep1, Dep2 int32
}

// Generator produces a dynamic instruction stream. Next fills in
// the provided Instr (avoiding per-instruction allocation) and is expected
// to produce an unbounded stream.
type Generator interface {
	Next(*Instr)
}

// SliceGenerator replays a fixed instruction slice cyclically — useful for
// tests and microbenchmarks.
type SliceGenerator struct {
	Instrs []Instr
	pos    int
}

// Next implements Generator.
func (s *SliceGenerator) Next(out *Instr) {
	*out = s.Instrs[s.pos]
	s.pos++
	if s.pos == len(s.Instrs) {
		s.pos = 0
	}
}

// Collect drains n instructions from g into a slice.
func Collect(g Generator, n int) []Instr {
	out := make([]Instr, n)
	for i := range out {
		g.Next(&out[i])
	}
	return out
}

package trace

import "testing"

func TestClassPredicates(t *testing.T) {
	if !Load.IsMem() || !Store.IsMem() {
		t.Error("loads and stores are memory ops")
	}
	if IntALU.IsMem() || Branch.IsMem() {
		t.Error("ALU/branch are not memory ops")
	}
	if !FPALU.IsFP() || !FPMult.IsFP() {
		t.Error("FP classes must report IsFP")
	}
	if IntALU.IsFP() || Load.IsFP() {
		t.Error("non-FP classes must not report IsFP")
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{
		IntALU: "intalu", IntMult: "intmult", FPALU: "fpalu",
		FPMult: "fpmult", Load: "load", Store: "store", Branch: "branch",
	}
	for c, want := range names {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
	if Class(99).String() != "Class(99)" {
		t.Error("unknown class string wrong")
	}
	if NumClasses != 7 {
		t.Errorf("NumClasses = %d, want 7", NumClasses)
	}
}

func TestSliceGeneratorCycles(t *testing.T) {
	g := &SliceGenerator{Instrs: []Instr{
		{PC: 0x100, Class: IntALU},
		{PC: 0x104, Class: Load, Addr: 0x8000},
	}}
	got := Collect(g, 5)
	if len(got) != 5 {
		t.Fatalf("Collect returned %d instrs", len(got))
	}
	for i, ins := range got {
		want := g.Instrs[i%2]
		if ins != want {
			t.Errorf("instr %d = %+v, want %+v", i, ins, want)
		}
	}
}

package pipeline

import (
	"testing"

	"vccmin/internal/trace"
)

// TestIssueWidthCap: with more parallel single-cycle work than the issue
// width can move, IPC is bound by the commit width, and shrinking the
// issue width below the commit width binds tighter.
func TestIssueWidthCap(t *testing.T) {
	instrs := []trace.Instr{{PC: 0x100, Class: trace.IntALU}}
	runWidth := func(w int) float64 {
		ic, dc := testCaches(3, 51)
		cfg := TableII()
		cfg.IssueWidth = w
		cpu := MustNew(cfg, ic, dc)
		return cpu.Run(&trace.SliceGenerator{Instrs: instrs}, 20000).IPC()
	}
	if ipc := runWidth(2); ipc > 2.05 {
		t.Errorf("issue width 2 should cap IPC at 2, got %v", ipc)
	}
	if ipc := runWidth(6); ipc < 3.5 {
		t.Errorf("issue width 6 should allow commit-width IPC, got %v", ipc)
	}
}

// TestFPIssueQueueBlocksDispatch: two independent FP streams can issue to
// the two FP units in parallel, but a one-entry FP queue serializes their
// dispatch to one per cycle.
func TestFPIssueQueueBlocksDispatch(t *testing.T) {
	instrs := []trace.Instr{
		{PC: 0x100, Class: trace.FPALU},
		{PC: 0x104, Class: trace.FPMult},
	}
	run := func(fpq int) float64 {
		ic, dc := testCaches(3, 51)
		cfg := TableII()
		cfg.FPIQ = fpq
		cpu := MustNew(cfg, ic, dc)
		return cpu.Run(&trace.SliceGenerator{Instrs: instrs}, 20000).IPC()
	}
	small, large := run(1), run(20)
	if large < 1.8 {
		t.Errorf("two FP units should sustain ≈2 FP/cycle, got %v", large)
	}
	if small > 1.1 {
		t.Errorf("one-entry FP queue should serialize dispatch to ≈1/cycle, got %v", small)
	}
}

// TestIntIssueQueueLimit mirrors the FP case on the integer side.
func TestIntIssueQueueLimit(t *testing.T) {
	// Long-latency multiplies occupy the INT queue.
	instrs := []trace.Instr{
		{PC: 0x100, Class: trace.IntMult, Dep1: 1},
		{PC: 0x104, Class: trace.IntALU},
	}
	run := func(iq int) float64 {
		ic, dc := testCaches(3, 51)
		cfg := TableII()
		cfg.IntIQ = iq
		cpu := MustNew(cfg, ic, dc)
		return cpu.Run(&trace.SliceGenerator{Instrs: instrs}, 20000).IPC()
	}
	small, large := run(2), run(40)
	if small >= large {
		t.Errorf("tiny INT queue should throttle: %v vs %v", small, large)
	}
}

// TestFunctionalUnitContention: four independent multiply chains saturate
// the multiplier pool exactly.
func TestFunctionalUnitContention(t *testing.T) {
	instrs := []trace.Instr{{PC: 0x100, Class: trace.IntMult}}
	run := func(units int) float64 {
		ic, dc := testCaches(3, 51)
		cfg := TableII()
		cfg.IntMults = units
		cpu := MustNew(cfg, ic, dc)
		return cpu.Run(&trace.SliceGenerator{Instrs: instrs}, 20000).IPC()
	}
	// Fully pipelined units: throughput = units per cycle up to widths.
	if ipc := run(1); ipc > 1.05 {
		t.Errorf("1 multiplier should cap IPC at 1, got %v", ipc)
	}
	if ipc := run(4); ipc < 3.3 {
		t.Errorf("4 multipliers should reach commit width, got %v", ipc)
	}
}

// TestBTBMissOnTakenBranchCostsFullRedirect: a taken branch whose target
// the BTB has never seen must pay the mispredict-class penalty once, then
// train.
func TestBTBMissOnTakenBranchCostsFullRedirect(t *testing.T) {
	ic, dc := testCaches(3, 51)
	cpu := MustNew(TableII(), ic, dc)
	// Many distinct branch PCs, visited twice each: first visit BTB-cold.
	instrs := make([]trace.Instr, 0, 512)
	for i := 0; i < 256; i++ {
		pc := uint64(0x1000 + i*64)
		instrs = append(instrs, trace.Instr{PC: pc, Class: trace.Branch, Taken: true, Target: pc + 4})
	}
	s := cpu.Run(&trace.SliceGenerator{Instrs: instrs}, 256)
	if s.Mispredicts != 256 {
		t.Errorf("first visits should all misfetch: %d/256", s.Mispredicts)
	}
	// Second pass trains the 2-bit counters from weakly to strongly taken;
	// by the third pass both the BTB and gshare are warm.
	cpu.Run(&trace.SliceGenerator{Instrs: instrs}, 256)
	s3 := cpu.Run(&trace.SliceGenerator{Instrs: instrs}, 256)
	if s3.Mispredicts > 16 {
		t.Errorf("third visits should mostly predict correctly: %d mispredicts", s3.Mispredicts)
	}
}

// TestCommitWidthBound: even with infinite-width everything else, commit
// width caps IPC.
func TestCommitWidthBound(t *testing.T) {
	ic, dc := testCaches(3, 51)
	cfg := TableII()
	cfg.CommitWidth = 2
	cfg.FetchWidth = 8
	cpu := MustNew(cfg, ic, dc)
	s := cpu.Run(&trace.SliceGenerator{Instrs: []trace.Instr{{PC: 0x100, Class: trace.IntALU}}}, 20000)
	if ipc := s.IPC(); ipc > 2.05 {
		t.Errorf("commit width 2 exceeded: IPC %v", ipc)
	}
}

// TestConsecutiveRunsMeasureDeltas: two Run calls on one CPU return
// per-call statistics, not cumulative ones.
func TestConsecutiveRunsMeasureDeltas(t *testing.T) {
	ic, dc := testCaches(3, 51)
	cpu := MustNew(TableII(), ic, dc)
	gen := &trace.SliceGenerator{Instrs: []trace.Instr{{PC: 0x100, Class: trace.IntALU, Dep1: 1}}}
	a := cpu.Run(gen, 5000)
	b := cpu.Run(gen, 5000)
	if a.Instructions != 5000 || b.Instructions != 5000 {
		t.Errorf("per-run instruction counts: %d, %d", a.Instructions, b.Instructions)
	}
	if b.Cycles == 0 || b.Cycles > a.Cycles*2 {
		t.Errorf("second-run cycles implausible: %d vs %d", b.Cycles, a.Cycles)
	}
}

package pipeline

import (
	"math/rand"
	"testing"

	"vccmin/internal/cache"
	"vccmin/internal/geom"
	"vccmin/internal/trace"
)

// testCaches builds a fresh I$/D$ pair over a shared L2 and memory,
// mirroring the paper's hierarchy but with configurable L1 latency.
func testCaches(l1Lat, memLat int) (*cache.Cache, *cache.Cache) {
	mem := &cache.Memory{Latency: memLat}
	l2 := cache.MustNew("L2", geom.MustNew(2*1024*1024, 8, 64), 20, mem)
	ic := cache.MustNew("IL1", geom.MustNew(32*1024, 8, 64), l1Lat, l2)
	dc := cache.MustNew("DL1", geom.MustNew(32*1024, 8, 64), l1Lat, l2)
	return ic, dc
}

func run(t *testing.T, instrs []trace.Instr, n int, l1Lat int) Stats {
	t.Helper()
	ic, dc := testCaches(l1Lat, 51)
	cpu := MustNew(TableII(), ic, dc)
	return cpu.Run(&trace.SliceGenerator{Instrs: instrs}, n)
}

func TestIndependentALUHitsCommitWidth(t *testing.T) {
	// Independent single-cycle ALU ops: commit width (4) bound.
	instrs := []trace.Instr{{PC: 0x100, Class: trace.IntALU}}
	s := run(t, instrs, 40000, 3)
	if ipc := s.IPC(); ipc < 3.5 || ipc > 4.01 {
		t.Errorf("independent ALU IPC = %v, want ≈4 (commit width)", ipc)
	}
}

func TestSerialDependenceChainIPC1(t *testing.T) {
	// Each op depends on the previous: one per cycle at latency 1.
	instrs := []trace.Instr{{PC: 0x100, Class: trace.IntALU, Dep1: 1}}
	s := run(t, instrs, 20000, 3)
	if ipc := s.IPC(); ipc < 0.95 || ipc > 1.05 {
		t.Errorf("serial chain IPC = %v, want ≈1", ipc)
	}
}

func TestMultiplyChainBoundByLatency(t *testing.T) {
	instrs := []trace.Instr{{PC: 0x100, Class: trace.IntMult, Dep1: 1}}
	s := run(t, instrs, 10000, 3)
	want := 1.0 / float64(TableII().IntMultLat)
	if ipc := s.IPC(); ipc < want*0.9 || ipc > want*1.1 {
		t.Errorf("multiply chain IPC = %v, want ≈%v", ipc, want)
	}
}

func TestFPALUThroughputBoundByOneUnit(t *testing.T) {
	// Independent FP adds, but only one FP ALU: IPC ≈ 1.
	instrs := []trace.Instr{{PC: 0x100, Class: trace.FPALU}}
	s := run(t, instrs, 20000, 3)
	if ipc := s.IPC(); ipc < 0.9 || ipc > 1.05 {
		t.Errorf("FP ALU stream IPC = %v, want ≈1 (single unit)", ipc)
	}
}

func TestLoadChainTracksDCacheLatency(t *testing.T) {
	// Pointer-chase: each load depends on the previous one and hits in
	// the D-cache, so IPC ≈ 1/latency. The word-disable +1 cycle must
	// show up directly.
	chase := []trace.Instr{{PC: 0x100, Class: trace.Load, Addr: 0x8000, Dep1: 1}}
	s3 := run(t, chase, 20000, 3)
	s4 := run(t, chase, 20000, 4)
	want3, want4 := 1.0/3, 1.0/4
	if ipc := s3.IPC(); ipc < want3*0.9 || ipc > want3*1.1 {
		t.Errorf("load chain IPC at latency 3 = %v, want ≈%v", ipc, want3)
	}
	if ipc := s4.IPC(); ipc < want4*0.9 || ipc > want4*1.1 {
		t.Errorf("load chain IPC at latency 4 = %v, want ≈%v", ipc, want4)
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	// Independent hitting loads: the model must overlap them (no chain),
	// reaching well above 1/latency.
	instrs := []trace.Instr{{PC: 0x100, Class: trace.Load, Addr: 0x8000}}
	s := run(t, instrs, 20000, 3)
	if ipc := s.IPC(); ipc < 2 {
		t.Errorf("independent hitting loads IPC = %v, want > 2 (overlapped)", ipc)
	}
}

func TestPredictedTakenBranchBubble(t *testing.T) {
	// A self-loop branch, perfectly predictable: costs the redirect
	// bubble every iteration (1 cycle at I$ latency 3), so IPC ≈ 1.
	instrs := []trace.Instr{{PC: 0x100, Class: trace.Branch, Taken: true, Target: 0x100}}
	s := run(t, instrs, 20000, 3)
	if s.Branches != 20000 {
		t.Fatalf("branches = %d", s.Branches)
	}
	if rate := s.MispredictRate(); rate > 0.01 {
		t.Errorf("self-loop mispredict rate = %v, want ≈0", rate)
	}
	if ipc := s.IPC(); ipc < 0.85 || ipc > 1.1 {
		t.Errorf("predictable taken-branch loop IPC = %v, want ≈1", ipc)
	}
	// With a slower I-cache (word-disable), the bubble doubles: IPC ≈ 0.5.
	s4 := run(t, instrs, 20000, 4)
	if ipc := s4.IPC(); ipc < 0.4 || ipc > 0.6 {
		t.Errorf("taken-branch loop IPC at I$ latency 4 = %v, want ≈0.5", ipc)
	}
}

func TestRandomBranchesPayPenalty(t *testing.T) {
	// Alternating taken/not-taken at one PC with a short pattern is
	// learnable; instead use two interleaved branches whose outcomes
	// differ each visit — construct a 4-entry pattern that gshare with
	// global history can learn, versus a pseudo-random stream it cannot.
	predictable := []trace.Instr{
		{PC: 0x100, Class: trace.Branch, Taken: true, Target: 0x200},
		{PC: 0x200, Class: trace.Branch, Taken: false},
		{PC: 0x204, Class: trace.Branch, Taken: true, Target: 0x100},
	}
	sp := run(t, predictable, 30000, 3)
	if rate := sp.MispredictRate(); rate > 0.05 {
		t.Errorf("predictable pattern mispredict rate = %v", rate)
	}

	// Genuinely random outcomes, long enough that the trace never
	// replays: no history-based predictor can learn them.
	rng := rand.New(rand.NewSource(99))
	random := make([]trace.Instr, 0, 30000)
	for i := 0; i < 30000; i++ {
		taken := rng.Intn(2) == 0
		ins := trace.Instr{PC: 0x100, Class: trace.Branch, Taken: taken}
		if taken {
			ins.Target = 0x100
		}
		random = append(random, ins)
	}
	sr := run(t, random, 30000, 3)
	if rate := sr.MispredictRate(); rate < 0.25 {
		t.Errorf("random branch mispredict rate = %v, want high", rate)
	}
	if sr.IPC() >= sp.IPC() {
		t.Errorf("random branches should be slower: %v vs %v", sr.IPC(), sp.IPC())
	}
}

func TestICacheMissesStallFetch(t *testing.T) {
	// A code footprint larger than the I$ forces misses; compare against
	// a tiny loop. Same instruction class mix otherwise.
	big := make([]trace.Instr, 0, 4096)
	for b := 0; b < 2048; b++ { // 2048 blocks * 64B = 128KB of code
		pc := uint64(0x40000 + b*1024) // one instr per block to maximize misses
		big = append(big, trace.Instr{PC: pc, Class: trace.IntALU})
	}
	sBig := run(t, big, 20000, 3)
	small := []trace.Instr{{PC: 0x100, Class: trace.IntALU}}
	sSmall := run(t, small, 20000, 3)
	if sBig.IPC() >= sSmall.IPC()*0.7 {
		t.Errorf("I$-thrashing code should be much slower: %v vs %v", sBig.IPC(), sSmall.IPC())
	}
	if sBig.FetchStalls == 0 {
		t.Error("expected fetch stalls from I$ misses")
	}
}

func TestDCacheMissesHurt(t *testing.T) {
	// Loads over a 1MB working set (L2 resident) vs a 4KB one.
	bigWS := make([]trace.Instr, 0, 16384)
	for i := 0; i < 16384; i++ {
		bigWS = append(bigWS, trace.Instr{PC: 0x100, Class: trace.Load, Addr: uint64(0x100000 + i*64), Dep1: 1})
	}
	sBig := run(t, bigWS, 16384, 3)
	smallWS := make([]trace.Instr, 0, 64)
	for i := 0; i < 64; i++ {
		smallWS = append(smallWS, trace.Instr{PC: 0x100, Class: trace.Load, Addr: uint64(0x100000 + i*64), Dep1: 1})
	}
	sSmall := run(t, smallWS, 16384, 3)
	if sBig.IPC() >= sSmall.IPC()*0.5 {
		t.Errorf("L2-resident chase should be much slower: %v vs %v", sBig.IPC(), sSmall.IPC())
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() Stats {
		ic, dc := testCaches(3, 51)
		cpu := MustNew(TableII(), ic, dc)
		instrs := []trace.Instr{
			{PC: 0x100, Class: trace.Load, Addr: 0x8000, Dep1: 2},
			{PC: 0x104, Class: trace.IntALU, Dep1: 1},
			{PC: 0x108, Class: trace.Branch, Taken: true, Target: 0x100},
		}
		return cpu.Run(&trace.SliceGenerator{Instrs: instrs}, 5000)
	}
	a, b := mk(), mk()
	if a != b {
		t.Errorf("identical runs diverged: %+v vs %+v", a, b)
	}
}

func TestStatsAccounting(t *testing.T) {
	instrs := []trace.Instr{
		{PC: 0x100, Class: trace.Load, Addr: 0x8000},
		{PC: 0x104, Class: trace.Store, Addr: 0x8100},
		{PC: 0x108, Class: trace.IntALU},
		{PC: 0x10C, Class: trace.Branch, Taken: false},
	}
	s := run(t, instrs, 4000, 3)
	if s.Instructions != 4000 {
		t.Errorf("instructions = %d, want 4000", s.Instructions)
	}
	if s.Loads != 1000 || s.Stores != 1000 || s.Branches != 1000 {
		t.Errorf("class counts: loads %d stores %d branches %d, want 1000 each", s.Loads, s.Stores, s.Branches)
	}
	if s.Cycles == 0 {
		t.Error("zero cycles")
	}
	if s.IPC() <= 0 || s.IPC() > float64(TableII().CommitWidth) {
		t.Errorf("IPC %v out of (0, commit width]", s.IPC())
	}
}

func TestConfigValidation(t *testing.T) {
	ic, dc := testCaches(3, 51)
	bad := TableII()
	bad.ROBSize = 0
	if _, err := New(bad, ic, dc); err == nil {
		t.Error("accepted zero ROB")
	}
	bad = TableII()
	bad.ROBSize = robRing + 1
	if _, err := New(bad, ic, dc); err == nil {
		t.Error("accepted oversized ROB")
	}
	bad = TableII()
	bad.IntALUs = 0
	if _, err := New(bad, ic, dc); err == nil {
		t.Error("accepted zero ALUs")
	}
	bad = TableII()
	bad.FPIQ = iqRing + 1
	if _, err := New(bad, ic, dc); err == nil {
		t.Error("accepted oversized IQ")
	}
	if _, err := New(TableII(), nil, dc); err == nil {
		t.Error("accepted nil icache")
	}
	if err := TableII().Check(); err != nil {
		t.Errorf("TableII config invalid: %v", err)
	}
}

func TestZeroInstructionRun(t *testing.T) {
	ic, dc := testCaches(3, 51)
	cpu := MustNew(TableII(), ic, dc)
	s := cpu.Run(&trace.SliceGenerator{Instrs: []trace.Instr{{PC: 0x100}}}, 0)
	if s.Instructions != 0 || s.Cycles != 0 {
		t.Errorf("zero-instruction run produced %+v", s)
	}
	if s.IPC() != 0 {
		t.Error("IPC of empty run should be 0")
	}
}

func TestROBLimitsRunahead(t *testing.T) {
	// One very long load miss followed by independent ALU work: the ROB
	// (128) caps how much work proceeds behind the miss. With a larger
	// ROB the same stream finishes faster.
	instrs := make([]trace.Instr, 0, 256)
	for i := 0; i < 255; i++ {
		if i%128 == 0 {
			instrs = append(instrs, trace.Instr{PC: 0x100, Class: trace.Load, Addr: uint64(0x40000000 + i*1024*1024), Dep1: 1})
		} else {
			instrs = append(instrs, trace.Instr{PC: 0x104, Class: trace.IntALU})
		}
	}
	runWith := func(rob int) Stats {
		ic, dc := testCaches(3, 255)
		cfg := TableII()
		cfg.ROBSize = rob
		cpu := MustNew(cfg, ic, dc)
		return cpu.Run(&trace.SliceGenerator{Instrs: instrs}, 20000)
	}
	small, large := runWith(32), runWith(256)
	if large.IPC() <= small.IPC() {
		t.Errorf("larger ROB should help hide misses: %v vs %v", large.IPC(), small.IPC())
	}
}

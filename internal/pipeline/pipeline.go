// Package pipeline is the trace-driven timing model of the out-of-order
// superscalar core of Table II (sim-alpha's Alpha-21264-like machine; see
// DESIGN.md for the substitution rationale).
//
// The model is event-based and O(1) per instruction: instead of walking
// cycle by cycle, it computes for every dynamic instruction the cycle at
// which each pipeline event happens, with ring buffers carrying the
// constraints that couple instructions:
//
//	fetch    — fetch-width instructions per cycle; stalls on I-cache
//	           misses; taken branches cost a redirect bubble that grows
//	           with the I-cache hit latency (the word-disable +1 cycle);
//	           mispredictions restart fetch after branch resolution plus
//	           the front-end refill penalty.
//	dispatch — blocked by ROB occupancy (128) and per-side issue-queue
//	           occupancy (40 INT / 20 FP).
//	issue    — waits for register dependences (trace dependence
//	           distances), a free functional unit, and an issue slot
//	           (6 wide).
//	execute  — fixed latencies per class; loads access the D-cache
//	           hierarchy (hit latency through memory latency); stores
//	           retire into a write buffer without blocking dependents.
//	commit   — in order, commit-width per cycle.
//
// Total cycles = commit time of the last instruction.
package pipeline

import (
	"fmt"

	"vccmin/internal/branch"
	"vccmin/internal/cache"
	"vccmin/internal/geom"
	"vccmin/internal/trace"
)

// Config carries the core parameters (Table II defaults via TableII).
type Config struct {
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	ROBSize     int
	IntIQ       int // integer issue-queue entries
	FPIQ        int // floating-point issue-queue entries

	IntALUs  int
	IntMults int
	FPALUs   int
	FPMults  int

	IntALULat  int
	IntMultLat int
	FPALULat   int
	FPMultLat  int

	// MispredictPenalty is the front-end refill depth charged after a
	// resolved misprediction, on top of the I-cache hit latency.
	MispredictPenalty int

	HistoryBits int // gshare history length
	BTBSize     int
	RASEntries  int
}

// TableII returns the paper's fixed core configuration.
func TableII() Config {
	return Config{
		FetchWidth: 4, IssueWidth: 6, CommitWidth: 4,
		ROBSize: 128, IntIQ: 40, FPIQ: 20,
		IntALUs: 4, IntMults: 4, FPALUs: 1, FPMults: 1,
		IntALULat: 1, IntMultLat: 7, FPALULat: 4, FPMultLat: 4,
		MispredictPenalty: 11,
		HistoryBits:       15,
		BTBSize:           4096,
		RASEntries:        16,
	}
}

// Check validates the configuration.
func (c Config) Check() error {
	switch {
	case c.FetchWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0:
		return fmt.Errorf("pipeline: widths must be positive: %+v", c)
	case c.ROBSize <= 0 || c.ROBSize > robRing:
		return fmt.Errorf("pipeline: ROB size %d out of (0, %d]", c.ROBSize, robRing)
	case c.IntIQ <= 0 || c.IntIQ > iqRing || c.FPIQ <= 0 || c.FPIQ > iqRing:
		return fmt.Errorf("pipeline: IQ sizes %d/%d out of (0, %d]", c.IntIQ, c.FPIQ, iqRing)
	case c.IntALUs <= 0 || c.IntALUs > maxFU || c.IntMults <= 0 || c.IntMults > maxFU ||
		c.FPALUs <= 0 || c.FPALUs > maxFU || c.FPMults <= 0 || c.FPMults > maxFU:
		return fmt.Errorf("pipeline: FU counts out of (0, %d]", maxFU)
	case c.IntALULat <= 0 || c.IntMultLat <= 0 || c.FPALULat <= 0 || c.FPMultLat <= 0:
		return fmt.Errorf("pipeline: execution latencies must be positive")
	case c.MispredictPenalty < 0:
		return fmt.Errorf("pipeline: negative mispredict penalty")
	case c.HistoryBits <= 0 || c.BTBSize <= 0 || c.RASEntries <= 0:
		return fmt.Errorf("pipeline: predictor sizes must be positive")
	}
	return nil
}

const (
	robRing   = 256  // ring capacity for complete/commit times (>= ROB and max dep distance)
	iqRing    = 64   // ring capacity for per-side issue times (>= IQ sizes)
	widthRing = 4096 // ring capacity for per-cycle issue-slot accounting
	maxFU     = 8
)

// fuPool tracks when each unit of one functional-unit class is next free.
// Units are fully pipelined (initiation interval one cycle).
type fuPool struct {
	free [maxFU]uint64
	n    int
}

// earliestAt returns the first cycle >= t at which a unit is free and the
// index of that unit.
func (p *fuPool) earliestAt(t uint64) (uint64, int) {
	best, idx := p.free[0], 0
	for i := 1; i < p.n; i++ {
		if p.free[i] < best {
			best, idx = p.free[i], i
		}
	}
	if best < t {
		best = t
	}
	return best, idx
}

// claim occupies unit idx for the cycle t.
func (p *fuPool) claim(idx int, t uint64) { p.free[idx] = t + 1 }

// CPU is one simulated core bound to its caches and predictors.
type CPU struct {
	cfg    Config
	icache *cache.Cache
	dcache *cache.Cache
	gshare *branch.Gshare
	btb    *branch.BTB
	ras    *branch.RAS

	// Per-instruction event times.
	completeAt [robRing]uint64
	commitAt   [robRing]uint64
	seq        uint64

	// Per-side issue-queue occupancy rings.
	intIssueAt [iqRing]uint64
	fpIssueAt  [iqRing]uint64
	intSeq     uint64
	fpSeq      uint64

	// Functional units.
	intALU, intMult, fpALU, fpMult fuPool

	// Issue bandwidth: issued[c & mask] counts issues at cycle c (tagged).
	issuedTag   [widthRing]uint64
	issuedCount [widthRing]uint16

	// Fetch state.
	fetchCycle  uint64
	fetchedNow  int
	curFetchBlk geom.Addr

	stats Stats

	// scratch is Run's decode buffer (see Run for why it is not a local).
	scratch trace.Instr
}

// Stats aggregates the run.
type Stats struct {
	Instructions uint64
	Cycles       uint64
	Branches     uint64
	Mispredicts  uint64
	TakenBubbles uint64 // cycles lost to correctly-predicted taken redirects
	FetchStalls  uint64 // cycles lost to I-cache misses
	Loads        uint64
	Stores       uint64
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// MispredictRate returns mispredictions per branch.
func (s Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// New builds a CPU. icache and dcache must be distinct cache instances.
func New(cfg Config, icache, dcache *cache.Cache) (*CPU, error) {
	if err := cfg.Check(); err != nil {
		return nil, err
	}
	if icache == nil || dcache == nil {
		return nil, fmt.Errorf("pipeline: nil cache")
	}
	c := &CPU{
		cfg:    cfg,
		icache: icache,
		dcache: dcache,
		gshare: branch.MustNewGshare(cfg.HistoryBits),
		btb:    branch.MustNewBTB(cfg.BTBSize),
		ras:    branch.MustNewRAS(cfg.RASEntries),
	}
	c.intALU.n, c.intMult.n = cfg.IntALUs, cfg.IntMults
	c.fpALU.n, c.fpMult.n = cfg.FPALUs, cfg.FPMults
	c.curFetchBlk = ^geom.Addr(0)
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config, icache, dcache *cache.Cache) *CPU {
	c, err := New(cfg, icache, dcache)
	if err != nil {
		panic(err)
	}
	return c
}

// Reset returns the core to its just-built microarchitectural state:
// empty rings, idle functional units, cold predictors, zeroed statistics.
// The configuration and the cache bindings are kept (the caches are NOT
// reset — callers owning the hierarchy reset it themselves, e.g.
// sim.System.Reset). A Run after Reset is bit-identical to a Run on a
// freshly built CPU over the same caches.
func (c *CPU) Reset() {
	c.completeAt = [robRing]uint64{}
	c.commitAt = [robRing]uint64{}
	c.seq = 0
	c.intIssueAt = [iqRing]uint64{}
	c.fpIssueAt = [iqRing]uint64{}
	c.intSeq, c.fpSeq = 0, 0
	c.intALU.free = [maxFU]uint64{}
	c.intMult.free = [maxFU]uint64{}
	c.fpALU.free = [maxFU]uint64{}
	c.fpMult.free = [maxFU]uint64{}
	c.issuedTag = [widthRing]uint64{}
	c.issuedCount = [widthRing]uint16{}
	c.fetchCycle = 0
	c.fetchedNow = 0
	c.curFetchBlk = ^geom.Addr(0)
	c.stats = Stats{}
	c.gshare.Reset()
	c.btb.Reset()
	c.ras.Reset()
}

// Run simulates n instructions from gen and returns statistics for this
// call only. Consecutive calls continue from the warm microarchitectural
// state (predictors, ring history), so callers can warm up with one Run
// and measure with the next — the trace-driven analogue of SimPoint-style
// warmup.
func (c *CPU) Run(gen trace.Generator, n int) Stats {
	startSeq := c.seq
	startCycles := c.lastCommit()
	c.stats = Stats{}
	// The decode scratch lives on the CPU, not the stack: its address
	// passes through the Generator interface, so a local would escape and
	// cost one heap allocation per Run — the difference between an
	// allocation-free and an allocating scheduler chunk loop.
	ins := &c.scratch
	for i := 0; i < n; i++ {
		gen.Next(ins)
		c.step(ins)
	}
	c.stats.Instructions = c.seq - startSeq
	c.stats.Cycles = c.lastCommit() - startCycles
	return c.stats
}

// lastCommit returns the commit cycle of the most recent instruction.
func (c *CPU) lastCommit() uint64 {
	if c.seq == 0 {
		return 0
	}
	return c.commitAt[(c.seq-1)&(robRing-1)]
}

// step advances the model by one dynamic instruction.
func (c *CPU) step(ins *trace.Instr) {
	cfg := &c.cfg
	i := c.seq

	// ---- Fetch ----
	blk := c.icache.Geom.BlockAddr(geom.Addr(ins.PC))
	if blk != c.curFetchBlk {
		lat := c.icache.Access(blk, cache.Fetch)
		if lat > c.icache.HitLatency {
			// Miss: fetch stalls for the portion beyond the pipelined hit
			// (critical-word-first refill; the in-flight window drains
			// behind it).
			stall := uint64(lat - c.icache.HitLatency)
			c.fetchCycle += stall
			c.stats.FetchStalls += stall
			c.fetchedNow = 0
		}
		c.curFetchBlk = blk
	}
	if c.fetchedNow == cfg.FetchWidth {
		c.fetchCycle++
		c.fetchedNow = 0
	}
	fetchT := c.fetchCycle
	c.fetchedNow++

	// ---- Dispatch: ROB and issue-queue occupancy ----
	dispatch := fetchT
	if i >= uint64(cfg.ROBSize) {
		if t := c.commitAt[(i-uint64(cfg.ROBSize))&(robRing-1)] + 1; t > dispatch {
			dispatch = t
		}
	}
	isFP := ins.Class.IsFP()
	if isFP {
		if c.fpSeq >= uint64(cfg.FPIQ) {
			if t := c.fpIssueAt[(c.fpSeq-uint64(cfg.FPIQ))&(iqRing-1)] + 1; t > dispatch {
				dispatch = t
			}
		}
	} else {
		if c.intSeq >= uint64(cfg.IntIQ) {
			if t := c.intIssueAt[(c.intSeq-uint64(cfg.IntIQ))&(iqRing-1)] + 1; t > dispatch {
				dispatch = t
			}
		}
	}

	// ---- Ready: register dependences ----
	ready := dispatch
	if d := uint64(ins.Dep1); d > 0 && d <= i {
		if t := c.completeAt[(i-d)&(robRing-1)]; t > ready {
			ready = t
		}
	}
	if d := uint64(ins.Dep2); d > 0 && d <= i {
		if t := c.completeAt[(i-d)&(robRing-1)]; t > ready {
			ready = t
		}
	}

	// ---- Issue: functional unit + issue bandwidth ----
	pool := c.poolFor(ins.Class)
	issue := ready
	for {
		t, unit := pool.earliestAt(issue)
		t = c.nextIssueSlot(t)
		if t2, _ := pool.earliestAt(t); t2 > t {
			issue = t2
			continue
		}
		pool.claim(unit, t)
		c.claimIssueSlot(t)
		issue = t
		break
	}
	if isFP {
		c.fpIssueAt[c.fpSeq&(iqRing-1)] = issue
		c.fpSeq++
	} else {
		c.intIssueAt[c.intSeq&(iqRing-1)] = issue
		c.intSeq++
	}

	// ---- Execute ----
	var lat int
	switch ins.Class {
	case trace.IntALU:
		lat = cfg.IntALULat
	case trace.IntMult:
		lat = cfg.IntMultLat
	case trace.FPALU:
		lat = cfg.FPALULat
	case trace.FPMult:
		lat = cfg.FPMultLat
	case trace.Load:
		c.stats.Loads++
		lat = c.dcache.Access(geom.Addr(ins.Addr), cache.Read)
	case trace.Store:
		c.stats.Stores++
		c.dcache.Access(geom.Addr(ins.Addr), cache.Write)
		lat = 1 // retires into the write buffer
	case trace.Branch:
		lat = 1
	default:
		lat = 1
	}
	complete := issue + uint64(lat)
	c.completeAt[i&(robRing-1)] = complete

	// ---- Commit: in order, CommitWidth per cycle ----
	ct := complete
	if i > 0 {
		if t := c.commitAt[(i-1)&(robRing-1)]; t > ct {
			ct = t
		}
	}
	if i >= uint64(cfg.CommitWidth) {
		if t := c.commitAt[(i-uint64(cfg.CommitWidth))&(robRing-1)] + 1; t > ct {
			ct = t
		}
	}
	c.commitAt[i&(robRing-1)] = ct

	// ---- Branch resolution and fetch redirect ----
	if ins.Class == trace.Branch {
		c.stats.Branches++
		predTaken := c.gshare.Predict(ins.PC)
		c.gshare.Update(ins.PC, ins.Taken)
		predTarget, btbHit := c.btb.Predict(ins.PC)
		if ins.Taken {
			c.btb.Update(ins.PC, ins.Target)
		}
		mispredicted := predTaken != ins.Taken ||
			(ins.Taken && (!btbHit || predTarget != ins.Target))
		switch {
		case mispredicted:
			c.stats.Mispredicts++
			resume := complete + uint64(cfg.MispredictPenalty+c.icache.HitLatency)
			if resume > c.fetchCycle {
				c.fetchCycle = resume
			}
			c.fetchedNow = 0
			c.curFetchBlk = ^geom.Addr(0) // force an I-cache access at the target
		case ins.Taken:
			// Correctly predicted taken branch: redirect bubble scales
			// with the front-end (I-cache) latency; this is where the
			// word-disable alignment network hurts fetch.
			bubble := uint64(c.icache.HitLatency - 2)
			if bubble > 0 {
				c.fetchCycle = fetchT + bubble
				c.fetchedNow = 0
				c.stats.TakenBubbles += bubble
			}
		}
	}
	c.seq++
}

// poolFor maps a class to its functional-unit pool. Loads, stores and
// branches use the integer ALUs (address generation / condition
// evaluation).
func (c *CPU) poolFor(cl trace.Class) *fuPool {
	switch cl {
	case trace.IntMult:
		return &c.intMult
	case trace.FPALU:
		return &c.fpALU
	case trace.FPMult:
		return &c.fpMult
	default:
		return &c.intALU
	}
}

// nextIssueSlot returns the first cycle >= t with issue bandwidth left.
func (c *CPU) nextIssueSlot(t uint64) uint64 {
	for {
		e := t & (widthRing - 1)
		if c.issuedTag[e] != t {
			return t
		}
		if int(c.issuedCount[e]) < c.cfg.IssueWidth {
			return t
		}
		t++
	}
}

// claimIssueSlot consumes one issue slot at cycle t.
func (c *CPU) claimIssueSlot(t uint64) {
	e := t & (widthRing - 1)
	if c.issuedTag[e] != t {
		c.issuedTag[e] = t
		c.issuedCount[e] = 0
	}
	c.issuedCount[e]++
}

// Gshare exposes the direction predictor (for statistics).
func (c *CPU) Gshare() *branch.Gshare { return c.gshare }

// BTB exposes the target buffer (for statistics).
func (c *CPU) BTB() *branch.BTB { return c.btb }

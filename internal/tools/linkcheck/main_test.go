package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Serving":                                   "serving",
		"RNG-stream versioning (\"sparse-v1\")":     "rng-stream-versioning-sparse-v1",
		"Fast-path fault sampling and worker knobs": "fast-path-fault-sampling-and-worker-knobs",
		"`make check` targets":                      "make-check-targets",
	}
	for heading, want := range cases {
		if got := slugify(heading); got != want {
			t.Errorf("slugify(%q) = %q, want %q", heading, got, want)
		}
	}
}

func TestCheckFile(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	write("docs/target.md", "# Real Heading\n\nbody\n")
	good := write("good.md", "[ok](docs/target.md) [anchor](docs/target.md#real-heading)\n"+
		"[self](#local) [ext](https://example.com/x)\n\n# Local\n")
	if n := checkFile(dir, good); n != 0 {
		t.Fatalf("good file reported %d broken links", n)
	}
	bad := write("bad.md", "[missing](nope.md) [badfrag](docs/target.md#nope) [badself](#nope)\n")
	if n := checkFile(dir, bad); n != 3 {
		t.Fatalf("bad file reported %d broken links, want 3", n)
	}
}

func TestIsExternal(t *testing.T) {
	for target, want := range map[string]bool{
		"https://example.com": true,
		"http://example.com":  true,
		"mailto:a@b.c":        true,
		"docs/x.md":           false,
		"#anchor":             false,
	} {
		if got := isExternal(target); got != want {
			t.Errorf("isExternal(%q) = %v, want %v", target, got, want)
		}
	}
}

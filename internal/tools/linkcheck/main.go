// Command linkcheck verifies the repository's Markdown cross-references:
// every relative link in every *.md file must point at a file that
// exists, and every fragment (`#section`) must match a heading of the
// target document (GitHub-style slugs). External links (http, https,
// mailto) are out of scope — CI must not depend on the network.
//
// Usage:
//
//	go run ./internal/tools/linkcheck        # check the working tree
//	go run ./internal/tools/linkcheck DIR    # check another root
//
// Exit status 1 and one line per broken link on failure.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline Markdown links and images: [text](target) —
// the target taken up to the first whitespace or closing parenthesis.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// headingRe matches ATX headings, whose slugs anchor fragments.
var headingRe = regexp.MustCompile(`(?m)^#{1,6}[ \t]+(.+?)[ \t]*#*$`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	broken := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip VCS internals and anything a build drops in the tree.
			switch d.Name() {
			case ".git", "node_modules", "vendor":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.EqualFold(filepath.Ext(path), ".md") {
			return nil
		}
		broken += checkFile(root, path)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "linkcheck:", err)
		os.Exit(1)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

// checkFile validates every relative link in one Markdown file and
// returns the number of broken ones.
func checkFile(root, path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "linkcheck: %s: %v\n", path, err)
		return 1
	}
	broken := 0
	for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
		target := m[1]
		if isExternal(target) {
			continue
		}
		file, frag, _ := strings.Cut(target, "#")
		resolved := path // self-reference for pure fragments
		if file != "" {
			if strings.HasPrefix(file, "/") {
				resolved = filepath.Join(root, file)
			} else {
				resolved = filepath.Join(filepath.Dir(path), file)
			}
			if _, err := os.Stat(resolved); err != nil {
				fmt.Fprintf(os.Stderr, "linkcheck: %s: broken link %q (no such file)\n", path, target)
				broken++
				continue
			}
		}
		if frag != "" && !hasAnchor(resolved, frag) {
			fmt.Fprintf(os.Stderr, "linkcheck: %s: broken link %q (no heading for #%s)\n", path, target, frag)
			broken++
		}
	}
	return broken
}

// isExternal reports whether the link target leaves the repository.
func isExternal(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:")
}

// hasAnchor reports whether the Markdown file has a heading whose
// GitHub-style slug equals frag. Non-Markdown targets (a fragment into
// a source file) are accepted without inspection.
func hasAnchor(path, frag string) bool {
	if !strings.EqualFold(filepath.Ext(path), ".md") {
		return true
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	for _, h := range headingRe.FindAllStringSubmatch(string(data), -1) {
		if slugify(h[1]) == frag {
			return true
		}
	}
	return false
}

// slugify reduces a heading to its GitHub anchor: lowercase, markup and
// punctuation stripped, spaces to hyphens.
func slugify(heading string) string {
	// Drop inline code/emphasis markers and links' bracket syntax first.
	heading = strings.NewReplacer("`", "", "*", "", "_", "_", "[", "", "]", "").Replace(heading)
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		case r == ' ' || r == '\t':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// Command apicheck keeps docs/openapi.yaml honest: it extracts the
// method+path pairs from the route table in
// internal/service/service.go and from the paths section of the spec,
// and fails if either side lists a route the other does not. Run as
// `make api-check`; CI runs it in the static-check job.
//
// The route table is the single place the service registers endpoints
// (a struct literal per route), and the spec nests `get:`/`post:` under
// `  /v1/...:` path keys — both shapes are stable enough to read with
// line-level scanning, which keeps this tool dependency-free.
//
// Usage:
//
//	go run ./internal/tools/apicheck          # check the working tree
//	go run ./internal/tools/apicheck DIR      # check another root
//
// Exit status 1 and one line per mismatch on failure.
package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// routeRe matches one entry of the service's route table, e.g.
//
//	{"GET", "/v1/sweeps/{id}/stream", s.handleSweepStream},
var routeRe = regexp.MustCompile(`\{"(GET|POST|PUT|PATCH|DELETE)", "(/v1[^"]*)"`)

// pathRe matches an OpenAPI path key at two-space indent.
var pathRe = regexp.MustCompile(`^  (/[^\s:]+):\s*$`)

// methodRe matches an OpenAPI operation key at four-space indent.
var methodRe = regexp.MustCompile(`^    (get|post|put|patch|delete):`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	code, err := codeRoutes(filepath.Join(root, "internal", "service", "service.go"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "apicheck:", err)
		os.Exit(1)
	}
	spec, err := specRoutes(filepath.Join(root, "docs", "openapi.yaml"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "apicheck:", err)
		os.Exit(1)
	}
	if len(code) == 0 {
		fmt.Fprintln(os.Stderr, "apicheck: no routes found in the service route table (did its shape change?)")
		os.Exit(1)
	}

	bad := 0
	for _, r := range sorted(code) {
		if !spec[r] {
			fmt.Printf("apicheck: %s is registered in service.go but missing from docs/openapi.yaml\n", r)
			bad++
		}
	}
	for _, r := range sorted(spec) {
		if !code[r] {
			fmt.Printf("apicheck: %s is documented in docs/openapi.yaml but not registered in service.go\n", r)
			bad++
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
	fmt.Printf("apicheck: %d routes match docs/openapi.yaml\n", len(code))
}

// codeRoutes scans the service source for route-table entries.
func codeRoutes(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		for _, m := range routeRe.FindAllStringSubmatch(sc.Text(), -1) {
			out[m[1]+" "+m[2]] = true
		}
	}
	return out, sc.Err()
}

// specRoutes scans the OpenAPI file's paths section: a path key at
// two-space indent, then its operations at four-space indent.
func specRoutes(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]bool{}
	inPaths := false
	current := ""
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "paths:"):
			inPaths = true
		case inPaths && len(line) > 0 && line[0] != ' ' && line[0] != '#':
			inPaths = false // a new top-level key ends the section
		}
		if !inPaths {
			continue
		}
		if m := pathRe.FindStringSubmatch(line); m != nil {
			current = m[1]
			continue
		}
		if m := methodRe.FindStringSubmatch(line); m != nil && current != "" {
			out[strings.ToUpper(m[1])+" "+current] = true
		}
	}
	return out, sc.Err()
}

func sorted(set map[string]bool) []string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Package power models dynamic voltage scaling around Vcc-min, reproducing
// the illustrative Fig. 1 of the paper: normalized voltage, dynamic power
// (P = C·V²·F) and performance versus normalized frequency, with and
// without operation below Vcc-min, plus an exponential cell-failure model
// pfail(V) in the spirit of Kulkarni et al. that couples low voltage to
// cache capacity loss.
package power

import (
	"fmt"
	"math"

	"vccmin/internal/prob"
)

// Zone classifies a point on the voltage-scaling curve (Fig. 1b).
type Zone int

const (
	// ZoneCubic is at or above Vcc-min with voltage still scaling: power
	// falls cubically with frequency.
	ZoneCubic Zone = iota
	// ZoneLowVoltage is below Vcc-min with voltage still scaling: cubic
	// power reduction but sub-linear performance (cache capacity loss).
	ZoneLowVoltage
	// ZoneLinear is at the voltage floor: only frequency scales, so power
	// falls linearly.
	ZoneLinear
)

// String implements fmt.Stringer.
func (z Zone) String() string {
	switch z {
	case ZoneCubic:
		return "cubic"
	case ZoneLowVoltage:
		return "low-voltage"
	case ZoneLinear:
		return "linear"
	}
	return fmt.Sprintf("Zone(%d)", int(z))
}

// Model holds the normalized DVS parameters. All voltages and frequencies
// are normalized to their maxima.
type Model struct {
	VIdle  float64 // voltage intercept of the linear V(f) relation at f=0
	VccMin float64 // minimum voltage for fully reliable operation
	VFloor float64 // lowest voltage reachable when operating below Vcc-min

	// Cell failure model: Pfail(V) = PfailAtVccMin * exp((VccMin-V)/PfailEFold).
	PfailAtVccMin float64
	PfailEFold    float64 // volts (normalized) per e-fold of pfail growth

	// Cache coupling for the below-Vcc-min performance estimate.
	CellsPerBlock  int     // k of the L1 geometry
	PerfLossFactor float64 // fractional IPC loss per fraction of disabled blocks
}

// Default returns the model used for the Fig. 1 reproduction: Vcc-min at
// 0.7 (normalized), voltage floor 0.5, pfail crossing 1e-3 partway into the
// low-voltage zone, and the IPC sensitivity observed in the paper's own
// results (≈42% capacity loss → ≈8% IPC loss for block disabling).
func Default() Model {
	return Model{
		VIdle:          0.3,
		VccMin:         0.7,
		VFloor:         0.5,
		PfailAtVccMin:  1e-7,
		PfailEFold:     0.0217, // pfail reaches 1e-3 at V ≈ 0.5
		CellsPerBlock:  537,
		PerfLossFactor: 0.2,
	}
}

// Check validates the model.
func (m Model) Check() error {
	switch {
	case !(0 <= m.VIdle && m.VIdle < m.VFloor && m.VFloor < m.VccMin && m.VccMin <= 1):
		return fmt.Errorf("power: need 0 <= VIdle < VFloor < VccMin <= 1, got %v < %v < %v", m.VIdle, m.VFloor, m.VccMin)
	case m.PfailAtVccMin <= 0 || m.PfailAtVccMin >= 1:
		return fmt.Errorf("power: PfailAtVccMin %v out of (0,1)", m.PfailAtVccMin)
	case m.PfailEFold <= 0:
		return fmt.Errorf("power: PfailEFold must be positive, got %v", m.PfailEFold)
	case m.CellsPerBlock <= 0:
		return fmt.Errorf("power: CellsPerBlock must be positive, got %d", m.CellsPerBlock)
	case m.PerfLossFactor < 0 || m.PerfLossFactor > 1:
		return fmt.Errorf("power: PerfLossFactor %v out of [0,1]", m.PerfLossFactor)
	}
	return nil
}

// VoltageForFreq returns the supply voltage the circuit needs to run at
// normalized frequency f: the standard linearized alpha-power relation
// V(f) = VIdle + (1-VIdle)·f.
func (m Model) VoltageForFreq(f float64) float64 {
	return m.VIdle + (1-m.VIdle)*clamp01(f)
}

// FreqForVoltage inverts VoltageForFreq.
func (m Model) FreqForVoltage(v float64) float64 {
	return clamp01((v - m.VIdle) / (1 - m.VIdle))
}

// FreqAtVccMin returns the frequency at which voltage scaling reaches
// Vcc-min — the boundary between the cubic and the lower zones.
func (m Model) FreqAtVccMin() float64 { return m.FreqForVoltage(m.VccMin) }

// FreqAtVFloor returns the frequency at which voltage scaling reaches the
// floor voltage — the boundary between the low-voltage and linear zones.
func (m Model) FreqAtVFloor() float64 { return m.FreqForVoltage(m.VFloor) }

// Pfail returns the per-cell failure probability at voltage v: negligible
// at or above Vcc-min, exponentially growing below it.
func (m Model) Pfail(v float64) float64 {
	if v >= m.VccMin {
		return m.PfailAtVccMin
	}
	p := m.PfailAtVccMin * math.Exp((m.VccMin-v)/m.PfailEFold)
	if p > 1 {
		return 1
	}
	return p
}

// CapacityAt returns the expected block-disable cache capacity fraction at
// voltage v (Eq. 2 applied to Pfail(v)).
func (m Model) CapacityAt(v float64) float64 {
	return prob.ExpectedCapacity(m.CellsPerBlock, m.Pfail(v))
}

// Point is one sample of the normalized scaling curves.
type Point struct {
	Freq        float64
	Voltage     float64
	Power       float64 // normalized dynamic power V²·F
	Performance float64 // normalized performance
	Zone        Zone
}

// CurveClassic samples Fig. 1a: voltage scaling that stops at Vcc-min.
// Below FreqAtVccMin the voltage is pinned and power falls only linearly;
// performance is the paper's illustrative linear-in-frequency assumption.
func (m Model) CurveClassic(n int) []Point {
	pts := make([]Point, 0, n+1)
	fcut := m.FreqAtVccMin()
	for i := 0; i <= n; i++ {
		f := float64(i) / float64(n)
		p := Point{Freq: f, Performance: f}
		if f >= fcut {
			p.Voltage = m.VoltageForFreq(f)
			p.Zone = ZoneCubic
		} else {
			p.Voltage = m.VccMin
			p.Zone = ZoneLinear
		}
		p.Power = p.Voltage * p.Voltage * f
		pts = append(pts, p)
	}
	return pts
}

// CurveBelowVccMin samples Fig. 1b: voltage keeps scaling below Vcc-min
// down to VFloor, opening a low-voltage zone with cubic power reduction but
// sub-linear performance, because growing pfail disables growing fractions
// of the cache (modeled through PerfLossFactor).
func (m Model) CurveBelowVccMin(n int) []Point {
	pts := make([]Point, 0, n+1)
	fcut, ffloor := m.FreqAtVccMin(), m.FreqAtVFloor()
	for i := 0; i <= n; i++ {
		f := float64(i) / float64(n)
		switch {
		case f >= fcut:
			pts = append(pts, m.pointAt(f, m.VoltageForFreq(f), ZoneCubic))
		case f >= ffloor:
			pts = append(pts, m.pointAt(f, m.VoltageForFreq(f), ZoneLowVoltage))
		default:
			pts = append(pts, m.pointAt(f, m.VFloor, ZoneLinear))
		}
	}
	return pts
}

// pointAt builds the Fig. 1b point at frequency f and voltage v: cubic-zone
// points run at full performance (every cell reliable); below Vcc-min the
// growing pfail disables cache capacity, costing performance through
// PerfLossFactor. Shared by the curve sampler and OperatingPointForPfail so
// the two views of the model cannot drift apart.
func (m Model) pointAt(f, v float64, zone Zone) Point {
	p := Point{Freq: f, Voltage: v, Zone: zone}
	if zone == ZoneCubic {
		p.Performance = f
	} else {
		capLoss := 1 - m.CapacityAt(v)
		p.Performance = f * (1 - m.PerfLossFactor*capLoss)
	}
	p.Power = v * v * f
	return p
}

// VoltageForPfail returns the voltage at which the failure model reaches
// the target pfail — how deep below Vcc-min a given fault budget lets the
// cache operate.
func (m Model) VoltageForPfail(target float64) float64 {
	if target <= m.PfailAtVccMin {
		return m.VccMin
	}
	return m.VccMin - m.PfailEFold*math.Log(target/m.PfailAtVccMin)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

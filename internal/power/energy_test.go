package power

import (
	"math"
	"testing"
)

func TestEnergyPerWork(t *testing.T) {
	if e := EnergyPerWork(Point{Power: 0.5, Performance: 0.25}); math.Abs(e-2) > 1e-12 {
		t.Errorf("EnergyPerWork = %v, want 2", e)
	}
	if e := EnergyPerWork(Point{Power: 0.5, Performance: 0}); !math.IsInf(e, 1) {
		t.Errorf("zero performance should give +Inf, got %v", e)
	}
}

func TestMostEfficientPointRespectsConstraint(t *testing.T) {
	m := Default()
	for _, minPerf := range []float64{0.1, 0.3, 0.6, 0.9} {
		c, ok := m.MostEfficientPoint(minPerf, 400)
		if !ok {
			t.Fatalf("no operating point meets performance %v", minPerf)
		}
		if c.Point.Performance < minPerf {
			t.Errorf("chosen point performance %v below constraint %v", c.Point.Performance, minPerf)
		}
	}
	if _, ok := m.MostEfficientPoint(2.0, 100); ok {
		t.Error("impossible constraint should fail")
	}
}

func TestEfficiencyImprovesAsConstraintRelaxes(t *testing.T) {
	m := Default()
	prev := 0.0
	for _, minPerf := range []float64{0.9, 0.6, 0.3, 0.1} {
		c, ok := m.MostEfficientPoint(minPerf, 400)
		if !ok {
			t.Fatal("constraint unmet")
		}
		if prev != 0 && c.EnergyPerWork > prev+1e-12 {
			t.Errorf("relaxing the constraint to %v worsened energy: %v > %v", minPerf, c.EnergyPerWork, prev)
		}
		prev = c.EnergyPerWork
	}
}

func TestBelowVccMinSavesEnergy(t *testing.T) {
	// For performance targets inside the low-voltage zone, operating
	// below Vcc-min must save energy versus classic DVS — the paper's
	// motivation quantified.
	m := Default()
	mid := (m.FreqAtVFloor() + m.FreqAtVccMin()) / 2
	saving, ok := m.EnergySavingVsClassic(mid*0.8, 400)
	if !ok {
		t.Fatal("no feasible points")
	}
	if saving <= 0 {
		t.Errorf("below-Vcc-min saving = %v, want positive", saving)
	}
	// At full performance there is nothing to save.
	savingFull, ok := m.EnergySavingVsClassic(0.999, 400)
	if ok && savingFull > 0.01 {
		t.Errorf("full-speed saving = %v, want ≈0", savingFull)
	}
}

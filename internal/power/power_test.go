package power

import (
	"math"
	"testing"
)

func TestDefaultModelValid(t *testing.T) {
	if err := Default().Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRejectsBadModels(t *testing.T) {
	bad := []Model{
		func() Model { m := Default(); m.VccMin = 0.2; return m }(),       // VccMin below floor
		func() Model { m := Default(); m.VFloor = 0.1; return m }(),       // floor below idle
		func() Model { m := Default(); m.PfailAtVccMin = 0; return m }(),  // degenerate pfail
		func() Model { m := Default(); m.PfailEFold = -1; return m }(),    // negative slope
		func() Model { m := Default(); m.CellsPerBlock = 0; return m }(),  // no cells
		func() Model { m := Default(); m.PerfLossFactor = 2; return m }(), // loss > 1
	}
	for i, m := range bad {
		if err := m.Check(); err == nil {
			t.Errorf("case %d: Check accepted invalid model %+v", i, m)
		}
	}
}

func TestVoltageFreqInverse(t *testing.T) {
	m := Default()
	for f := 0.0; f <= 1.0; f += 0.05 {
		v := m.VoltageForFreq(f)
		if got := m.FreqForVoltage(v); math.Abs(got-f) > 1e-12 {
			t.Errorf("FreqForVoltage(VoltageForFreq(%v)) = %v", f, got)
		}
	}
}

func TestZoneBoundaries(t *testing.T) {
	m := Default()
	fcut, ffloor := m.FreqAtVccMin(), m.FreqAtVFloor()
	if !(0 < ffloor && ffloor < fcut && fcut < 1) {
		t.Fatalf("expected 0 < ffloor (%v) < fcut (%v) < 1", ffloor, fcut)
	}
	pts := m.CurveBelowVccMin(100)
	for _, p := range pts {
		switch {
		case p.Freq > fcut+1e-9:
			if p.Zone != ZoneCubic {
				t.Errorf("f=%v: zone %v, want cubic", p.Freq, p.Zone)
			}
		case p.Freq > ffloor+1e-9 && p.Freq < fcut-1e-9:
			if p.Zone != ZoneLowVoltage {
				t.Errorf("f=%v: zone %v, want low-voltage", p.Freq, p.Zone)
			}
		case p.Freq < ffloor-1e-9:
			if p.Zone != ZoneLinear {
				t.Errorf("f=%v: zone %v, want linear", p.Freq, p.Zone)
			}
		}
	}
}

func TestClassicCurveHasNoLowVoltageZone(t *testing.T) {
	m := Default()
	for _, p := range m.CurveClassic(100) {
		if p.Zone == ZoneLowVoltage {
			t.Fatalf("classic DVS curve must not contain a low-voltage zone (f=%v)", p.Freq)
		}
		if p.Voltage < m.VccMin-1e-12 {
			t.Fatalf("classic DVS curve dipped below Vcc-min: V=%v at f=%v", p.Voltage, p.Freq)
		}
		if math.Abs(p.Performance-p.Freq) > 1e-12 {
			t.Fatalf("classic curve performance should be linear in frequency")
		}
	}
}

func TestBelowVccMinExtendsCubicRegion(t *testing.T) {
	// The whole point of the paper: at the same frequency inside the
	// low-voltage zone, operating below Vcc-min burns less power.
	m := Default()
	classic := m.CurveClassic(200)
	below := m.CurveBelowVccMin(200)
	fcut, ffloor := m.FreqAtVccMin(), m.FreqAtVFloor()
	foundSaving := false
	for i := range classic {
		f := classic[i].Freq
		if f > ffloor && f < fcut {
			if below[i].Power >= classic[i].Power {
				t.Errorf("f=%v: below-Vcc-min power %v >= classic %v", f, below[i].Power, classic[i].Power)
			}
			foundSaving = true
		}
	}
	if !foundSaving {
		t.Error("no samples fell inside the low-voltage zone")
	}
}

func TestPerformanceSubLinearBelowVccMin(t *testing.T) {
	m := Default()
	fcut := m.FreqAtVccMin()
	for _, p := range m.CurveBelowVccMin(100) {
		if p.Freq >= fcut {
			if math.Abs(p.Performance-p.Freq) > 1e-6 {
				t.Errorf("f=%v: cubic-zone performance %v should equal frequency", p.Freq, p.Performance)
			}
		} else if p.Freq > 0 {
			if p.Performance >= p.Freq {
				t.Errorf("f=%v: low-voltage performance %v should be sub-linear (< f)", p.Freq, p.Performance)
			}
			if p.Performance <= 0 {
				t.Errorf("f=%v: performance %v should remain positive", p.Freq, p.Performance)
			}
		}
	}
}

func TestPerformanceDegradationWorsensWithDepth(t *testing.T) {
	// "The performance degradation gets worse as voltage is further
	// reduced": relative performance (perf/f) falls monotonically with f
	// inside the low-voltage zone.
	m := Default()
	fcut, ffloor := m.FreqAtVccMin(), m.FreqAtVFloor()
	prevRel := -1.0
	for _, p := range m.CurveBelowVccMin(400) {
		if p.Freq <= ffloor || p.Freq >= fcut || p.Freq == 0 {
			continue
		}
		rel := p.Performance / p.Freq
		if prevRel >= 0 && rel < prevRel-1e-12 {
			t.Fatalf("relative performance should recover toward Vcc-min: %v then %v at f=%v", prevRel, rel, p.Freq)
		}
		prevRel = rel
	}
}

func TestPfailExponentialGrowth(t *testing.T) {
	m := Default()
	if p := m.Pfail(m.VccMin + 0.1); p != m.PfailAtVccMin {
		t.Errorf("pfail above Vcc-min = %v, want baseline %v", p, m.PfailAtVccMin)
	}
	// Equal voltage steps multiply pfail by a constant factor.
	r1 := m.Pfail(m.VccMin-0.10) / m.Pfail(m.VccMin-0.05)
	r2 := m.Pfail(m.VccMin-0.15) / m.Pfail(m.VccMin-0.10)
	if math.Abs(r1-r2) > 1e-6*r1 {
		t.Errorf("pfail growth not exponential: ratios %v vs %v", r1, r2)
	}
	if m.Pfail(0) > 1 {
		t.Error("pfail must clamp at 1")
	}
}

func TestDefaultCalibration(t *testing.T) {
	// The default model is calibrated so the paper's operating point
	// (pfail = 1e-3) is reached at the voltage floor.
	m := Default()
	v := m.VoltageForPfail(1e-3)
	if math.Abs(v-m.VFloor) > 0.02 {
		t.Errorf("voltage at pfail=1e-3 is %v, want ≈ VFloor %v", v, m.VFloor)
	}
	if got := m.VoltageForPfail(m.PfailAtVccMin / 10); got != m.VccMin {
		t.Errorf("voltage for sub-baseline pfail = %v, want VccMin", got)
	}
}

func TestCapacityAtVoltage(t *testing.T) {
	m := Default()
	if c := m.CapacityAt(m.VccMin); c < 0.999 {
		t.Errorf("capacity at Vcc-min = %v, want ≈1", c)
	}
	cFloor := m.CapacityAt(m.VFloor)
	if cFloor > 0.7 || cFloor < 0.4 {
		t.Errorf("capacity at floor = %v, want ≈0.58 (pfail≈1e-3)", cFloor)
	}
}

func TestZoneString(t *testing.T) {
	if ZoneCubic.String() != "cubic" || ZoneLowVoltage.String() != "low-voltage" || ZoneLinear.String() != "linear" {
		t.Error("zone names wrong")
	}
	if Zone(42).String() != "Zone(42)" {
		t.Error("unknown zone name wrong")
	}
}

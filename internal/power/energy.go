package power

import "math"

// Energy analysis on top of the Fig. 1 model: where below-Vcc-min
// operation actually pays off. Normalized energy per unit of work is
// power/performance; classic DVS minimizes it at the Vcc-min knee, while
// below-Vcc-min operation pushes the optimum deeper until the cache
// capacity loss outweighs the quadratic voltage saving.

// EnergyPerWork returns the normalized energy per unit of computation at
// an operating point: dynamic power divided by delivered performance.
// Points with zero performance return +Inf.
func EnergyPerWork(p Point) float64 {
	if p.Performance <= 0 {
		return math.Inf(1)
	}
	return p.Power / p.Performance
}

// OperatingPointChoice is the result of an energy-optimization query.
type OperatingPointChoice struct {
	Point         Point
	EnergyPerWork float64
}

// MostEfficientPoint returns the operating point with minimal energy per
// work among those delivering at least minPerformance (normalized), using
// n+1 samples of the below-Vcc-min curve. ok is false when no sampled
// point meets the constraint.
func (m Model) MostEfficientPoint(minPerformance float64, n int) (OperatingPointChoice, bool) {
	best := OperatingPointChoice{EnergyPerWork: math.Inf(1)}
	found := false
	for _, p := range m.CurveBelowVccMin(n) {
		if p.Performance < minPerformance {
			continue
		}
		if e := EnergyPerWork(p); e < best.EnergyPerWork {
			best = OperatingPointChoice{Point: p, EnergyPerWork: e}
			found = true
		}
	}
	return best, found
}

// OperatingPointForPfail returns the below-Vcc-min operating point at the
// voltage where the failure model reaches the target pfail, clamped to
// [VFloor, VccMin]. It is the Fig. 1 point a sweep cell at that pfail
// occupies: its EnergyPerWork is the cell's normalized energy per
// instruction.
func (m Model) OperatingPointForPfail(pfail float64) Point {
	v := m.VoltageForPfail(pfail)
	if v < m.VFloor {
		v = m.VFloor
	}
	if v > m.VccMin {
		v = m.VccMin
	}
	zone := ZoneLowVoltage
	if v >= m.VccMin {
		zone = ZoneCubic
	}
	return m.pointAt(m.FreqForVoltage(v), v, zone)
}

// EnergySavingVsClassic returns the fractional energy-per-work saving of
// the most efficient below-Vcc-min point against the most efficient
// classic-DVS point, both meeting minPerformance. ok is false if either
// curve cannot meet the constraint.
func (m Model) EnergySavingVsClassic(minPerformance float64, n int) (float64, bool) {
	below, okB := m.MostEfficientPoint(minPerformance, n)
	if !okB {
		return 0, false
	}
	bestClassic := math.Inf(1)
	foundC := false
	for _, p := range m.CurveClassic(n) {
		if p.Performance < minPerformance {
			continue
		}
		if e := EnergyPerWork(p); e < bestClassic {
			bestClassic = e
			foundC = true
		}
	}
	if !foundC {
		return 0, false
	}
	return 1 - below.EnergyPerWork/bestClassic, true
}

package faults

// Deterministic seed streams for sweep-style experiments: every cell of a
// parameter grid derives its own child seed from the experiment's base seed
// plus the cell's coordinate labels, so any cell is reproducible in
// isolation and shards of a sweep can run in any order without sharing rng
// state.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// DeriveSeed hashes the base seed and the coordinate labels into a child
// seed. The derivation is FNV-1a over the labels (with a separator so
// ("ab","c") and ("a","bc") differ) finished by a splitmix64 mix of the
// base, which decorrelates children of adjacent base seeds.
func DeriveSeed(base int64, labels ...string) int64 {
	h := uint64(fnvOffset)
	for _, l := range labels {
		for i := 0; i < len(l); i++ {
			h ^= uint64(l[i])
			h *= fnvPrime
		}
		h ^= 0xff // label separator
		h *= fnvPrime
	}
	return int64(splitmix64(h ^ splitmix64(uint64(base))))
}

// splitmix64 is the finalizer of Steele et al.'s SplitMix generator — a
// cheap bijective mixer with full avalanche.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

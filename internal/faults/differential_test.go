package faults

// Differential equivalence suite for the dense fault-map fast path.
//
// The dense generators (GenerateMap, GeneratePair) were rewritten from
// math/rand onto internal/lfrand plus the bitset block index, with the
// contract that the rewrite is observationally invisible: every map is
// byte-identical to what the historical implementation drew at the same
// (geometry, wordBits, pfail, seed). The historical implementation is
// frozen below — refDense* is the pre-optimization code, verbatim, on
// math/rand — and the tests hold old and new to identical structs
// (reflect.DeepEqual, which also covers the new bitset via ReindexBlocks)
// and identical serialized JSON bytes across a seed × geometry × pfail
// matrix. CI runs this suite under -race (make diff-race).

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"vccmin/internal/geom"
)

// refDenseInject is the historical Generate body: math/rand geometric
// skipping, one Float64 per fault, math.Log division. Frozen as the
// differential reference — do not "optimize" it.
func refDenseInject(m *Map, pfail float64, rng *rand.Rand) {
	if pfail <= 0 {
		return
	}
	total := m.Geom.TotalCells()
	if pfail >= 1 {
		for i := 0; i < total; i++ {
			m.addFault(i)
		}
		return
	}
	logQ := math.Log1p(-pfail)
	cell := -1
	for {
		u := rng.Float64()
		if u == 0 {
			u = math.SmallestNonzeroFloat64
		}
		cell += 1 + int(math.Log(u)/logQ)
		if cell >= total || cell < 0 {
			return
		}
		m.addFault(cell)
	}
}

// refDenseMap is the historical GenerateMap.
func refDenseMap(g geom.Geometry, wordBits int, pfail float64, seed int64) *Map {
	m := NewEmpty(g, wordBits)
	refDenseInject(m, pfail, rand.New(rand.NewSource(seed)))
	return m
}

// refDensePair is the historical GeneratePair: the I map consumes the
// stream prefix, the D map the suffix of one math/rand stream.
func refDensePair(ig, dg geom.Geometry, wordBits int, pfail float64, seed int64) Pair {
	rng := rand.New(rand.NewSource(seed))
	i := NewEmpty(ig, wordBits)
	refDenseInject(i, pfail, rng)
	d := NewEmpty(dg, wordBits)
	refDenseInject(d, pfail, rng)
	return Pair{I: i, D: d}
}

// diffCases is the geometry/word-size/pfail matrix the differential
// tests sweep: the reference L1 at both word sizes, an L2-shaped array,
// a tiny direct-mapped corner, and pfail from sparse to saturating.
var diffCases = []struct {
	name     string
	g        geom.Geometry
	wordBits int
	pfail    float64
}{
	{"L1-32K/w32/1e-3", geom.MustNew(32<<10, 8, 64), 32, 1e-3},
	{"L1-32K/w64/1e-3", geom.MustNew(32<<10, 8, 64), 64, 1e-3},
	{"L1-32K/w32/1e-4", geom.MustNew(32<<10, 8, 64), 32, 1e-4},
	{"L1-32K/w32/1e-2", geom.MustNew(32<<10, 8, 64), 32, 1e-2},
	{"L2-256K/w32/1e-3", geom.MustNew(256<<10, 16, 64), 32, 1e-3},
	{"tiny-4K/w32/0.2", geom.MustNew(4<<10, 1, 32), 32, 0.2},
	{"L1-32K/w32/0", geom.MustNew(32<<10, 8, 64), 32, 0},
	{"L1-32K/w32/1", geom.MustNew(32<<10, 8, 64), 32, 1},
}

// diffSeeds spans the matrix: 60 seeds including negatives and the
// lagged-Fibonacci seeding edge cases.
func diffSeeds() []int64 {
	seeds := []int64{0, 1, -1, 1 << 40, -(1 << 40), int64(^uint64(0) >> 1)}
	for s := int64(2); len(seeds) < 60; s++ {
		seeds = append(seeds, s*7919+3)
	}
	return seeds
}

// mapJSON serializes the map in its canonical Write form.
func mapJSON(t *testing.T, m *Map) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// requireSameMap holds a new-path map to its reference: identical
// structs (including the block-index bitset) and identical JSON bytes.
func requireSameMap(t *testing.T, label string, got, want *Map) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: new map differs from historical reference (total %d vs %d)",
			label, got.Total, want.Total)
	}
	if g, w := mapJSON(t, got), mapJSON(t, want); !bytes.Equal(g, w) {
		t.Fatalf("%s: serialized JSON differs from historical reference", label)
	}
}

func TestDifferentialDenseGenerateMap(t *testing.T) {
	for _, tc := range diffCases {
		for _, seed := range diffSeeds() {
			got := GenerateMap(tc.g, tc.wordBits, tc.pfail, seed)
			want := refDenseMap(tc.g, tc.wordBits, tc.pfail, seed)
			requireSameMap(t, tc.name, got, want)
		}
	}
}

func TestDifferentialDenseGeneratePair(t *testing.T) {
	// Unequal I/D geometries make the D map consume the exact stream
	// suffix the I map left — the invariant that forbids batching the
	// dense path's draws.
	ig, dg := geom.MustNew(32<<10, 8, 64), geom.MustNew(64<<10, 4, 64)
	for _, tc := range diffCases {
		for _, seed := range diffSeeds()[:20] {
			got := GeneratePair(ig, dg, tc.wordBits, tc.pfail, seed)
			want := refDensePair(ig, dg, tc.wordBits, tc.pfail, seed)
			requireSameMap(t, tc.name+"/I", got.I, want.I)
			requireSameMap(t, tc.name+"/D", got.D, want.D)
		}
	}
}

func TestDifferentialDenseSampler(t *testing.T) {
	// One sampler reused across the whole matrix: every Draw must equal
	// the freshly allocated GenerateMap, including after geometry
	// switches and saturated maps.
	var s DenseSampler
	for _, tc := range diffCases {
		for _, seed := range diffSeeds()[:25] {
			got := s.Draw(tc.g, tc.wordBits, tc.pfail, seed)
			want := refDenseMap(tc.g, tc.wordBits, tc.pfail, seed)
			requireSameMap(t, tc.name, got, want)
		}
	}
}

// refSparseOneAtATime recomputes a sparse map drawing one SplitMix64
// value per geometric gap — no raw-draw batching — with the exact float
// pipeline of injectSparse. FuzzSamplerBatched holds the batched
// production path to this stream.
func refSparseOneAtATime(g geom.Geometry, wordBits int, pfail float64, seed int64) *Map {
	m := NewEmpty(g, wordBits)
	if pfail <= 0 {
		return m
	}
	total := g.TotalCells()
	if pfail >= 1 {
		for i := 0; i < total; i++ {
			m.addFault(i)
		}
		return m
	}
	st := sparseStream{state: uint64(seed)}
	logQ := math.Log1p(-pfail)
	cell := -1
	for {
		u := st.float64()
		if u == 0 {
			u = 0x1p-53
		}
		cell += 1 + int(fastLog(u)/logQ)
		if cell >= total || cell < 0 {
			return m
		}
		m.addFault(cell)
	}
}

func FuzzSamplerBatched(f *testing.F) {
	for _, seed := range []int64{0, 1, -1, 42, 1 << 40} {
		f.Add(seed, uint16(10))
	}
	f.Add(int64(7), uint16(0))
	f.Add(int64(7), uint16(1000))
	g := geom.MustNew(32<<10, 8, 64)
	f.Fuzz(func(t *testing.T, seed int64, pfailMille uint16) {
		pfail := float64(pfailMille%1001) / 1000 // [0, 1]
		var s Sampler
		got := s.Draw(g, 32, pfail, seed)
		want := refSparseOneAtATime(g, 32, pfail, seed)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pfail=%v seed=%d: batched sparse draw differs from one-at-a-time reference", pfail, seed)
		}
	})
}

func TestDenseSamplerDrawAllocs(t *testing.T) {
	// A warm DenseSampler's Draw — the dense capacity trial's inner loop
	// — is allocation-free at steady state.
	g := geom.MustNew(32<<10, 8, 64)
	var s DenseSampler
	s.Draw(g, 32, 1e-3, 1) // warm the buffers
	seed := int64(2)
	allocs := testing.AllocsPerRun(50, func() {
		m := s.Draw(g, 32, 1e-3, seed)
		if m.FaultyBlocks() < 0 {
			t.Fatal("impossible")
		}
		seed++
	})
	if allocs != 0 {
		t.Fatalf("warm DenseSampler.Draw allocates %v objects/op, want 0", allocs)
	}
}

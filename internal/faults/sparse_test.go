package faults

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"

	"vccmin/internal/geom"
)

// ---- Correctness and determinism ----

// TestSparseDeterministicByteIdentical: the sparse stream is a pure
// function of the seed — repeated draws are byte-identical end to end,
// including through serialization.
func TestSparseDeterministicByteIdentical(t *testing.T) {
	g := geom.MustNew(32*1024, 8, 64)
	for _, seed := range []int64{0, 1, -7, 42, 1 << 40} {
		a := GenerateMapSparse(g, 32, 0.001, seed)
		b := GenerateMapSparse(g, 32, 0.001, seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: repeated sparse draws differ structurally", seed)
		}
		var ab, bb bytes.Buffer
		if err := a.Write(&ab); err != nil {
			t.Fatal(err)
		}
		if err := b.Write(&bb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
			t.Fatalf("seed %d: repeated sparse draws serialize differently", seed)
		}
	}
}

// TestSparseSeedsDecorrelate: different seeds give different maps.
func TestSparseSeedsDecorrelate(t *testing.T) {
	g := geom.MustNew(32*1024, 8, 64)
	a := GenerateMapSparse(g, 32, 0.001, 1)
	b := GenerateMapSparse(g, 32, 0.001, 2)
	if reflect.DeepEqual(a, b) {
		t.Fatal("seeds 1 and 2 drew identical maps")
	}
}

// TestSparseMapMatchesPairISide mirrors the dense invariant: the one-map
// generator equals the I side of the pair generator at the same seed.
func TestSparseMapMatchesPairISide(t *testing.T) {
	ig := geom.MustNew(32*1024, 8, 64)
	dg := geom.MustNew(16*1024, 4, 64)
	m := GenerateMapSparse(ig, 32, 0.001, 42)
	p := GeneratePairSparse(ig, dg, 32, 0.001, 42)
	if !reflect.DeepEqual(m, p.I) {
		t.Fatal("GenerateMapSparse diverges from GeneratePairSparse's I side")
	}
	if p.D.Geom != dg {
		t.Fatalf("pair D geometry %v, want %v", p.D.Geom, dg)
	}
}

// TestSparseEdgeProbabilities: pfail <= 0 draws nothing, pfail >= 1
// everything — exactly as the dense generator.
func TestSparseEdgeProbabilities(t *testing.T) {
	g := geom.MustNew(8*1024, 4, 64)
	if m := GenerateMapSparse(g, 32, 0, 1); m.Total != 0 {
		t.Fatalf("pfail=0 drew %d faults", m.Total)
	}
	if m := GenerateMapSparse(g, 32, 1, 1); m.Total != g.TotalCells() {
		t.Fatalf("pfail=1 drew %d faults, want %d", m.Total, g.TotalCells())
	}
}

// TestSamplerReuseEqualsFresh: the reuse path must be observationally
// identical to a fresh allocation, regardless of what the buffer held —
// including after a high-pfail draw that dirtied every block.
func TestSamplerReuseEqualsFresh(t *testing.T) {
	g := geom.MustNew(32*1024, 8, 64)
	var s Sampler
	s.Draw(g, 32, 0.01, 999) // dirty the buffer densely
	for _, seed := range []int64{3, 4, 5} {
		fresh := GenerateMapSparse(g, 32, 0.001, seed)
		got := s.Draw(g, 32, 0.001, seed)
		if !reflect.DeepEqual(fresh, got) {
			t.Fatalf("seed %d: reused sampler draw differs from fresh draw", seed)
		}
	}
	// A pfail=1 draw dirties every block; the next draw must still reset.
	s.Draw(g, 32, 1, 1)
	if got := s.Draw(g, 32, 0.001, 6); !reflect.DeepEqual(got, GenerateMapSparse(g, 32, 0.001, 6)) {
		t.Fatal("sampler draw after a saturated map differs from fresh draw")
	}
	// And so must a pfail=0 draw (nothing to clear, nothing drawn).
	if got := s.Draw(g, 32, 0, 1); got.Total != 0 {
		t.Fatalf("pfail=0 sampler draw has %d faults", got.Total)
	}
}

// TestSamplerMismatchedBufferReallocates: a buffer with a different
// geometry or word size must not be reused in place.
func TestSamplerMismatchedBufferReallocates(t *testing.T) {
	g1 := geom.MustNew(32*1024, 8, 64)
	g2 := geom.MustNew(16*1024, 4, 64)
	var s Sampler
	buf := s.Draw(g1, 32, 0.001, 1)
	got := s.Draw(g2, 32, 0.001, 1)
	if got == buf {
		t.Fatal("reused a buffer with the wrong geometry")
	}
	if !reflect.DeepEqual(got, GenerateMapSparse(g2, 32, 0.001, 1)) {
		t.Fatal("reallocated draw differs from fresh draw")
	}
	buf = got
	if got = s.Draw(g2, 16, 0.001, 1); got == buf {
		t.Fatal("reused a buffer with the wrong word size")
	}
}

// TestFastLogAccuracy: the polynomial log feeding the geometric sampler
// stays within 5e-6 of math.Log across the uniform draw's full range.
func TestFastLogAccuracy(t *testing.T) {
	var st sparseStream
	st.state = 12345
	for i := 0; i < 100_000; i++ {
		u := st.float64()
		if u == 0 {
			u = 0x1p-53
		}
		if diff := math.Abs(fastLog(u) - math.Log(u)); diff > 5e-6 {
			t.Fatalf("fastLog(%g) = %g, math.Log = %g (off by %g)", u, fastLog(u), math.Log(u), diff)
		}
	}
	for _, u := range []float64{0x1p-53, 0.5, 0.9999999, 1 - 0x1p-53} {
		if diff := math.Abs(fastLog(u) - math.Log(u)); diff > 5e-6 {
			t.Fatalf("fastLog(%g) off by %g", u, diff)
		}
	}
}

// ---- Statistical properties ----

// sparseCounts aggregates fault statistics over many seeds.
type sparseCounts struct {
	maps         int
	cells        int64 // total faulty cells
	faultyBlocks int64
	faultyWords  int64
}

func collectSparse(g geom.Geometry, wordBits int, pfail float64, seeds int) sparseCounts {
	var c sparseCounts
	var sampler Sampler
	for s := 0; s < seeds; s++ {
		m := sampler.Draw(g, wordBits, pfail, DeriveSeed(int64(s), "sparse-stat"))
		c.maps++
		c.cells += int64(m.Total)
		for _, b := range m.Blocks {
			if b.Faulty() {
				c.faultyBlocks++
			}
			c.faultyWords += int64(b.FaultyWords())
		}
	}
	return c
}

// checkBinomial verifies an observed count against a Binomial(n, p) total
// within sigmas standard deviations.
func checkBinomial(t *testing.T, label string, observed int64, n int64, p float64, sigmas float64) {
	t.Helper()
	mean := float64(n) * p
	sd := math.Sqrt(float64(n) * p * (1 - p))
	if diff := math.Abs(float64(observed) - mean); diff > sigmas*sd {
		t.Errorf("%s: observed %d, expected %.1f ± %.1f (%.0fσ allowed, off by %.1fσ)",
			label, observed, mean, sigmas*sd, sigmas, diff/sd)
	}
}

// TestSparseMatchesBernoulliStatistics: over many seeds the sparse
// generator's faulty-cell, faulty-word and faulty-block counts match the
// per-cell Bernoulli model's closed forms — the same marginals the dense
// generator samples. Tolerances are 5σ of the corresponding binomial, so
// a correct implementation fails with probability < 1e-6.
func TestSparseMatchesBernoulliStatistics(t *testing.T) {
	g := geom.MustNew(8*1024, 4, 64)
	const (
		wordBits = 32
		pfail    = 0.002
		seeds    = 400
		sigmas   = 5
	)
	c := collectSparse(g, wordBits, pfail, seeds)

	totalCells := int64(g.TotalCells()) * int64(seeds)
	checkBinomial(t, "faulty cells", c.cells, totalCells, pfail, sigmas)

	pBlock := 1 - math.Pow(1-pfail, float64(g.CellsPerBlock()))
	totalBlocks := int64(g.Blocks()) * int64(seeds)
	checkBinomial(t, "faulty blocks", c.faultyBlocks, totalBlocks, pBlock, sigmas)

	pWord := 1 - math.Pow(1-pfail, wordBits)
	totalWords := int64(g.Blocks()) * int64(g.DataBits()/wordBits) * int64(seeds)
	checkBinomial(t, "faulty data words", c.faultyWords, totalWords, pWord, sigmas)
}

// TestSparseAgreesWithDense: the sparse and dense generators estimate the
// same distribution — their mean faulty-cell counts over disjoint seed
// sets agree within joint sampling noise.
func TestSparseAgreesWithDense(t *testing.T) {
	g := geom.MustNew(8*1024, 4, 64)
	const (
		pfail = 0.002
		seeds = 300
	)
	var dense int64
	for s := 0; s < seeds; s++ {
		dense += int64(GenerateMap(g, 32, pfail, DeriveSeed(int64(s), "dense-stat")).Total)
	}
	sparse := collectSparse(g, 32, pfail, seeds).cells
	n := float64(g.TotalCells()) * seeds
	sd := math.Sqrt(2 * n * pfail * (1 - pfail)) // variance of the difference
	if diff := math.Abs(float64(dense - sparse)); diff > 6*sd {
		t.Errorf("dense drew %d faults, sparse %d; |diff| %.0f exceeds 6σ = %.0f",
			dense, sparse, diff, 6*sd)
	}
}

// ---- Benchmarks: the fast path's raison d'être ----

// benchGeoms are the two array scales the Monte Carlo layers draw at: the
// paper's reference L1 and the future-work L2.
var benchGeoms = []struct {
	name string
	g    geom.Geometry
}{
	{"L1-32K", geom.MustNew(32*1024, 8, 64)},
	{"L2-2M", geom.MustNew(2*1024*1024, 8, 64)},
}

func BenchmarkGenerateDense(b *testing.B) {
	for _, bg := range benchGeoms {
		for _, pfail := range []float64{1e-4, 1e-3} {
			b.Run(fmt.Sprintf("%s/pfail=%g", bg.name, pfail), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					GenerateMap(bg.g, 32, pfail, int64(i))
				}
			})
		}
	}
}

func BenchmarkGenerateMapSparse(b *testing.B) {
	for _, bg := range benchGeoms {
		for _, pfail := range []float64{1e-4, 1e-3} {
			b.Run(fmt.Sprintf("%s/pfail=%g", bg.name, pfail), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					GenerateMapSparse(bg.g, 32, pfail, int64(i))
				}
			})
		}
	}
}

func BenchmarkGenerateMapSparseReuse(b *testing.B) {
	for _, bg := range benchGeoms {
		for _, pfail := range []float64{1e-4, 1e-3} {
			b.Run(fmt.Sprintf("%s/pfail=%g", bg.name, pfail), func(b *testing.B) {
				var s Sampler
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s.Draw(bg.g, 32, pfail, int64(i))
				}
			})
		}
	}
}

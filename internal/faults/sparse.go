package faults

// Sparse fault-map sampling — the fast path behind every Monte Carlo layer.
//
// Generate already skips geometrically, so its cost is proportional to the
// number of faults rather than the number of cells; what it still pays per
// fault is math/rand's interface-dispatched draw, math.Log, and two 64-bit
// integer divisions in addFault — and per map, a lagged-Fibonacci Seed that
// touches ~607 words before the first draw plus a fresh Blocks allocation.
// At the paper's regime (pfail 1e-4..1e-3, a few hundred faults per L1
// map) those fixed and per-fault costs dominate end-to-end Monte Carlo
// time.
//
// The sparse path removes each of them:
//
//   - the RNG is a SplitMix64 stream (O(1) seeding, three multiplies per
//     draw — the same mixer DeriveSeed uses);
//   - math.Log is replaced by an atanh-series polynomial accurate to
//     ~2e-6 absolute, far below the one-cell granularity the geometric
//     gap is floored to;
//   - the block index is recovered with one float multiply by the
//     precomputed reciprocal of cells-per-block (plus an exactness
//     correction) instead of div+mod;
//   - Sampler reuses one Map allocation across draws, clearing only the
//     blocks the previous draw marked faulty, so steady-state drawing is
//     allocation-free and clearing is O(faults), not O(blocks).
//
// The sparse generators produce the exact same *Map / BlockFaults shape as
// Generate and the same per-cell Bernoulli(pfail) marginal distribution,
// but a DIFFERENT random stream: a map drawn sparse at some seed is not
// byte-identical to the dense map at that seed. Within the sparse family
// the streams are deterministic, and GenerateMapSparse equals the I side
// of GeneratePairSparse at the same seed, mirroring the dense invariant.

import (
	"math"

	"vccmin/internal/geom"
)

// sparseStream is a SplitMix64 generator (Steele et al.): a Weyl sequence
// finished by the avalanche mixer from seed.go. Seeding is a single store.
type sparseStream struct{ state uint64 }

// next returns the stream's next 64 uniform bits.
func (s *sparseStream) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	x := s.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// float64 returns a uniform draw in [0, 1) with 53 random bits.
func (s *sparseStream) float64() float64 {
	return float64(s.next()>>11) * 0x1p-53
}

const ln2 = 0.6931471805599453

// fastLog returns ln(u) for u in (0, 1) to ~2e-6 absolute accuracy. It is
// the classic exponent-plus-mantissa decomposition with the atanh series
// 2z(1 + z²/3 + z⁴/5 + z⁶/7 + z⁸/9 + z¹⁰/11), z = (m-1)/(m+1); over the
// unreduced mantissa range [1, 2), z ≤ 1/3, so the dropped 2z·z¹²/13 term
// is ~1e-6 — three orders of magnitude below the one-cell granularity the
// geometric gap is floored to (skipping the usual √2 reduction trades two
// series terms for an unpredictable branch). The intermediate conversions
// pin each step to float64, keeping the result bit-identical whether or
// not the platform fuses multiply-adds. injectSparse repeats this body
// inline in its sampling loop (the call is beyond the inliner's budget);
// keep the two in sync — TestFastLogAccuracy and the byte-identity tests
// hold both to the same stream.
func fastLog(u float64) float64 {
	bits := math.Float64bits(u)
	e := float64(int((bits>>52)&0x7ff) - 1023)
	m := math.Float64frombits((bits & 0x000fffffffffffff) | 0x3ff0000000000000)
	z := (m - 1) / (m + 1)
	z2 := float64(z * z)
	s := float64(1.0/9 + z2*(1.0/11))
	s = float64(1.0/7 + z2*s)
	s = float64(1.0/5 + z2*s)
	s = float64(1.0/3 + z2*s)
	s = float64(1 + z2*s)
	return float64(e*ln2) + float64(2*z*s)
}

// injectSparse injects Bernoulli(pfail) faults into the empty (or reset)
// map m by geometric gap sampling on the stream; with track set it
// appends one dirty record per fault — block<<3 | pair-mask word — so
// Sampler can undo exactly the stores each fault made. It is addFault
// with the per-map constants hoisted and the divisions replaced by a
// reciprocal multiply (exactness restored by a ±1 correction).
func injectSparse(m *Map, pfail float64, st *sparseStream, dirty []int32, track bool) []int32 {
	if pfail <= 0 {
		return dirty
	}
	total := m.Geom.TotalCells()
	if pfail >= 1 {
		for i := 0; i < total; i++ {
			m.addFault(i)
		}
		if track {
			// Saturated maps dirty every pair-mask word of every block.
			for b := range m.Blocks {
				for w := int32(0); w < 8; w++ {
					dirty = append(dirty, int32(b)<<3|w)
				}
			}
		}
		return dirty
	}
	var (
		k        = m.Geom.CellsPerBlock()
		invK     = 1 / float64(k)
		dataBits = m.Geom.DataBits()
		wordBits = m.WordBits
		invLogQ  = 1 / math.Log1p(-pfail)
		cell     = -1
		raws     [32]uint64
		gaps     [32]int
	)
	// Gaps are drawn in batches, and the raw SplitMix64 draws are batched
	// ahead of the float math: the integer-only fill loop is a pure
	// three-multiply recurrence the CPU pipelines back to back, and the
	// float loop then runs its log chains with no generator state updates
	// interleaved — together ~35% faster than fusing sampling and map
	// updates in one loop. The stream cost of a batch's unused tail draws
	// at map end is noise, and determinism is unaffected — the draw count
	// is a pure function of the seed (FuzzSamplerBatched pins the batched
	// stream to the one-at-a-time reference).
	for {
		for j := range raws {
			raws[j] = st.next()
		}
		for j := range gaps {
			u := float64(raws[j]>>11) * 0x1p-53
			if u == 0 {
				u = 0x1p-53
			}
			// fastLog(u), manually inlined — see fastLog's comment.
			ubits := math.Float64bits(u)
			e := float64(int((ubits>>52)&0x7ff) - 1023)
			mant := math.Float64frombits((ubits & 0x000fffffffffffff) | 0x3ff0000000000000)
			z := (mant - 1) / (mant + 1)
			z2 := float64(z * z)
			p := float64(1.0/9 + z2*(1.0/11))
			p = float64(1.0/7 + z2*p)
			p = float64(1.0/5 + z2*p)
			p = float64(1.0/3 + z2*p)
			p = float64(1 + z2*p)
			logU := float64(e*ln2) + float64(2*z*p)
			gaps[j] = 1 + int(logU*invLogQ)
		}
		for _, g := range gaps {
			cell += g
			if cell >= total || cell < 0 { // < 0 guards int overflow on absurd skips
				return dirty
			}
			block := int(float64(cell) * invK)
			if block*k > cell {
				block--
			} else if (block+1)*k <= cell {
				block++
			}
			bf := &m.Blocks[block]
			pairWord := 0
			if offset := cell - block*k; offset < dataBits {
				bf.WordMask |= 1 << uint(offset/wordBits)
				pair := offset >> 1
				pairWord = pair >> 6
				bf.PairMask[pairWord] |= 1 << uint(pair&63)
			} else {
				bf.TagFaulty = true
			}
			bf.Cells++
			m.Total++
			m.faulty[block>>6] |= 1 << uint(block&63)
			if track {
				// Appending without deduplicating keeps this branch
				// perfectly predicted; Sampler's clear is idempotent per
				// record.
				dirty = append(dirty, int32(block<<3|pairWord))
			}
		}
	}
}

// GenerateMapSparse draws a uniform fault map from one seed on the sparse
// fast path. Same output shape and marginal distribution as GenerateMap,
// different (sparse-family) random stream; the map equals the I side of
// GeneratePairSparse at the same seed.
func GenerateMapSparse(g geom.Geometry, wordBits int, pfail float64, seed int64) *Map {
	m := NewEmpty(g, wordBits)
	st := sparseStream{state: uint64(seed)}
	injectSparse(m, pfail, &st, nil, false)
	return m
}

// GeneratePairSparse draws an I/D map pair from a single seed on the
// sparse fast path — the sparse analogue of GeneratePair (the I map
// consumes the stream prefix, the D map the suffix).
func GeneratePairSparse(ig, dg geom.Geometry, wordBits int, pfail float64, seed int64) Pair {
	st := sparseStream{state: uint64(seed)}
	i := NewEmpty(ig, wordBits)
	injectSparse(i, pfail, &st, nil, false)
	d := NewEmpty(dg, wordBits)
	injectSparse(d, pfail, &st, nil, false)
	return Pair{I: i, D: d}
}

// Sampler amortizes fault-map allocations across Monte Carlo draws: it
// owns one Map buffer and one dirty record per fault of the previous
// draw, so a steady-state Draw allocates nothing and resets in time
// proportional to the previous draw's fault count. A Sampler is not safe
// for concurrent use; give each worker goroutine its own.
type Sampler struct {
	m     *Map
	dirty []int32 // block<<3 | pair-mask word, one per fault of the last draw
}

// Draw returns the fault map for (g, wordBits, pfail, seed), reusing the
// sampler's buffer when the geometry and word size match the previous
// draw. The returned map is byte-identical to GenerateMapSparse at the
// same parameters, and ALIASES the sampler: it is valid until the next
// Draw.
func (s *Sampler) Draw(g geom.Geometry, wordBits int, pfail float64, seed int64) *Map {
	if s.m == nil || s.m.Geom != g || s.m.WordBits != wordBits || len(s.m.Blocks) != g.Blocks() {
		s.m = NewEmpty(g, wordBits)
	} else if s.m.Total != 0 {
		for _, e := range s.dirty {
			block := e >> 3
			bf := &s.m.Blocks[block]
			bf.WordMask = 0
			bf.TagFaulty = false
			bf.Cells = 0
			bf.PairMask[e&7] = 0
			s.m.faulty[block>>6] &^= 1 << uint(block&63)
		}
		s.m.Total = 0
	}
	st := sparseStream{state: uint64(seed)}
	s.dirty = injectSparse(s.m, pfail, &st, s.dirty[:0], true)
	return s.m
}

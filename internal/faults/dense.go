package faults

// Dense fault-map sampling on the math/rand value stream — the committed
// stream behind every dense seed (golden fixtures, the dvfs pair maps,
// the seeded simulation tests). Unlike the sparse family, which was free
// to pick a cheaper generator, the dense path must reproduce
// rand.New(rand.NewSource(seed)) draw for draw, so the only admissible
// optimizations are ones that leave the value stream untouched:
//
//   - the rng is lfrand.Source, an exact replica of math/rand's
//     lagged-Fibonacci source with ~2× cheaper seeding, no per-map heap
//     allocation, and devirtualized draw calls;
//   - the per-fault marking hoists the geometry constants out of the
//     loop and recovers the block index with a reciprocal multiply
//     (exactness restored by a ±1 correction) instead of div+mod;
//   - DenseSampler reuses one Map buffer across Monte Carlo trials,
//     clearing only the blocks the previous draw dirtied, so a
//     steady-state draw allocates nothing.
//
// What the dense kernel must NOT do is batch its uniform draws the way
// injectSparse does: GeneratePair runs the D map on the stream suffix
// the I map leaves behind, so drawing even one speculative tail gap past
// the end of the I array would shift every D fault. The kernel therefore
// draws exactly as many uniforms as Generate does — one per fault plus
// the terminating overshoot — and keeps math.Log and the logQ division
// (not a reciprocal multiply) because the float results feed int() and a
// one-ulp difference can move a fault by one cell.

import (
	"math"

	"vccmin/internal/geom"
	"vccmin/internal/lfrand"
)

// denseInject injects Bernoulli(pfail) faults into the empty (or reset)
// map m by geometric gap sampling on rng, reproducing Generate's value
// stream exactly; with track set it appends one dirty record per fault —
// block<<3 | pair-mask word — so DenseSampler can undo exactly the
// stores each fault made.
func denseInject(m *Map, pfail float64, rng *lfrand.Source, dirty []int32, track bool) []int32 {
	if pfail <= 0 {
		return dirty
	}
	total := m.Geom.TotalCells()
	if pfail >= 1 {
		for i := 0; i < total; i++ {
			m.addFault(i)
		}
		if track {
			// Saturated maps dirty every pair-mask word of every block.
			for b := range m.Blocks {
				for w := int32(0); w < 8; w++ {
					dirty = append(dirty, int32(b)<<3|w)
				}
			}
		}
		return dirty
	}
	var (
		k        = m.Geom.CellsPerBlock()
		invK     = 1 / float64(k)
		dataBits = m.Geom.DataBits()
		wordBits = m.WordBits
		logQ     = math.Log1p(-pfail)
		cell     = -1
	)
	for {
		u := rng.Float64()
		if u == 0 {
			u = math.SmallestNonzeroFloat64
		}
		cell += 1 + int(math.Log(u)/logQ)
		if cell >= total || cell < 0 { // < 0 guards int overflow on absurd skips
			return dirty
		}
		block := int(float64(cell) * invK)
		if block*k > cell {
			block--
		} else if (block+1)*k <= cell {
			block++
		}
		bf := &m.Blocks[block]
		pairWord := 0
		if offset := cell - block*k; offset < dataBits {
			bf.WordMask |= 1 << uint(offset/wordBits)
			pair := offset >> 1
			pairWord = pair >> 6
			bf.PairMask[pairWord] |= 1 << uint(pair&63)
		} else {
			bf.TagFaulty = true
		}
		bf.Cells++
		m.Total++
		m.faulty[block>>6] |= 1 << uint(block&63)
		if track {
			dirty = append(dirty, int32(block<<3|pairWord))
		}
	}
}

// DenseSampler amortizes dense fault-map allocations across Monte Carlo
// draws, exactly as Sampler does for the sparse family: one Map buffer,
// one dirty record per fault of the previous draw, allocation-free
// steady state. Not safe for concurrent use; give each worker its own.
type DenseSampler struct {
	m     *Map
	rng   lfrand.Source
	dirty []int32 // block<<3 | pair-mask word, one per fault of the last draw
}

// Draw returns the fault map for (g, wordBits, pfail, seed), reusing the
// sampler's buffer when the geometry and word size match the previous
// draw. The returned map is byte-identical to GenerateMap at the same
// parameters, and ALIASES the sampler: it is valid until the next Draw.
func (s *DenseSampler) Draw(g geom.Geometry, wordBits int, pfail float64, seed int64) *Map {
	if s.m == nil || s.m.Geom != g || s.m.WordBits != wordBits || len(s.m.Blocks) != g.Blocks() {
		s.m = NewEmpty(g, wordBits)
	} else if s.m.Total != 0 {
		for _, e := range s.dirty {
			block := e >> 3
			bf := &s.m.Blocks[block]
			bf.WordMask = 0
			bf.TagFaulty = false
			bf.Cells = 0
			bf.PairMask[e&7] = 0
			s.m.faulty[block>>6] &^= 1 << uint(block&63)
		}
		s.m.Total = 0
	}
	s.rng.Seed(seed)
	s.dirty = denseInject(s.m, pfail, &s.rng, s.dirty[:0], true)
	return s.m
}

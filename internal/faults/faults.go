// Package faults models the low-voltage cell failures of an SRAM cache
// array. Following the paper (and Wilkerson et al.), faults strike
// individual cells independently and uniformly at random with probability
// pfail; a fault map records, per block, which words and whether the tag
// region contain faulty cells.
//
// Cell layout within a block follows the array organization used by the
// analysis: the first DataBits cells are the data (grouped into words of
// WordBits), followed by the tag and valid cells. Word-disabling protects
// its tag array with 10T cells, so its fitness checks ignore tag faults;
// block-disabling counts a block faulty if any of its cells — data, tag or
// valid — fails.
package faults

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"vccmin/internal/geom"
	"vccmin/internal/lfrand"
)

// BlockFaults records the faulty cells of one block frame.
type BlockFaults struct {
	WordMask  uint64 // bit w set: word w contains at least one faulty data cell
	TagFaulty bool   // any faulty cell among tag+valid bits
	Cells     int    // total faulty cells in this block

	// PairMask records faulty 2-bit pairs of the data array (bit i set:
	// pair i, i.e. data cells 2i and 2i+1, contains a faulty cell).
	// Sized for up to 128-byte blocks (512 pairs). This is the
	// granularity the bit-fix scheme of Wilkerson et al. repairs at.
	PairMask [8]uint64
}

// Faulty reports whether the block contains any faulty cell.
func (b BlockFaults) Faulty() bool { return b.Cells > 0 }

// FaultyWords returns the number of words with at least one faulty cell.
func (b BlockFaults) FaultyWords() int {
	n := 0
	for m := b.WordMask; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// FaultyPairsIn counts the faulty 2-bit pairs among pairs
// [start, start+count) of the block's data array.
func (b BlockFaults) FaultyPairsIn(start, count int) int {
	n := 0
	for p := start; p < start+count; p++ {
		if b.PairMask[p/64]>>uint(p%64)&1 == 1 {
			n++
		}
	}
	return n
}

// Map is a fault map for one cache array.
type Map struct {
	Geom     geom.Geometry
	WordBits int
	Blocks   []BlockFaults
	Total    int // total faulty cells

	// faulty is a word-packed bitset with bit b set iff Blocks[b] contains
	// at least one faulty cell. It is the dense-path index: FaultyBlocks is
	// a popcount over it and core.BuildBlockDisable reads whole sets from
	// it 64 blocks at a time, instead of either walking the ~80-byte
	// BlockFaults records block by block. Every in-package generator keeps
	// it in sync (addFault, the sparse and dense inject kernels, the
	// sampler clears, serialization); code that mutates Blocks directly
	// must call ReindexBlocks afterwards. It is nil only for a Map literal
	// assembled outside the package, for which the accessors fall back to
	// scanning Blocks.
	faulty []uint64
}

// NewEmpty returns an all-good fault map for the geometry.
func NewEmpty(g geom.Geometry, wordBits int) *Map {
	return &Map{
		Geom:     g,
		WordBits: wordBits,
		Blocks:   make([]BlockFaults, g.Blocks()),
		faulty:   make([]uint64, (g.Blocks()+63)/64),
	}
}

// Generate draws a fault map with each of the array's d*k cells faulty
// independently with probability pfail. It uses geometric skipping, so cost
// is proportional to the number of faults, not the number of cells.
func Generate(g geom.Geometry, wordBits int, pfail float64, rng *rand.Rand) *Map {
	m := NewEmpty(g, wordBits)
	if pfail <= 0 {
		return m
	}
	total := g.TotalCells()
	if pfail >= 1 {
		for i := 0; i < total; i++ {
			m.addFault(i)
		}
		return m
	}
	logQ := math.Log1p(-pfail)
	// Geometric skipping: the gap to the next faulty cell is geometric.
	cell := -1
	for {
		u := rng.Float64()
		if u == 0 {
			u = math.SmallestNonzeroFloat64
		}
		cell += 1 + int(math.Log(u)/logQ)
		if cell >= total || cell < 0 { // < 0 guards int overflow on absurd skips
			return m
		}
		m.addFault(cell)
	}
}

// InjectExact places exactly n faults in distinct cells chosen uniformly
// at random without replacement — the urn experiment behind Eq. 1.
func InjectExact(g geom.Geometry, wordBits, n int, rng *rand.Rand) *Map {
	m := NewEmpty(g, wordBits)
	total := g.TotalCells()
	if n >= total {
		for i := 0; i < total; i++ {
			m.addFault(i)
		}
		return m
	}
	// Floyd's algorithm for a uniform n-subset of [0, total).
	chosen := make(map[int]bool, n)
	for j := total - n; j < total; j++ {
		t := rng.Intn(j + 1)
		if chosen[t] {
			t = j
		}
		chosen[t] = true
		m.addFault(t)
	}
	return m
}

// ClusterParams configures the clustered (non-uniform) fault model — the
// paper's future-work extension. Faults arrive as clusters whose centers
// are uniform; each cluster marks Size consecutive cells faulty.
type ClusterParams struct {
	Pfail float64 // overall expected fraction of faulty cells
	Size  int     // cells per cluster (1 = the uniform model)
}

// GenerateClustered draws a fault map under the clustered model. The
// expected number of faulty cells matches Generate at the same pfail, but
// the faults are spatially correlated.
func GenerateClustered(g geom.Geometry, wordBits int, p ClusterParams, rng *rand.Rand) *Map {
	if p.Size <= 1 {
		return Generate(g, wordBits, p.Pfail, rng)
	}
	m := NewEmpty(g, wordBits)
	if p.Pfail <= 0 {
		return m
	}
	total := g.TotalCells()
	centerRate := p.Pfail / float64(p.Size)
	if centerRate >= 1 {
		centerRate = 1
	}
	logQ := math.Log1p(-centerRate)
	cell := -1
	for {
		u := rng.Float64()
		if u == 0 {
			u = math.SmallestNonzeroFloat64
		}
		cell += 1 + int(math.Log(u)/logQ)
		if cell >= total || cell < 0 {
			return m
		}
		for i := 0; i < p.Size && cell+i < total; i++ {
			m.addFault(cell + i)
		}
	}
}

// addFault marks linear cell index faulty. Duplicate additions are
// harmless for the word/tag masks but would double-count Cells, so callers
// must pass distinct cells (all generators above do).
func (m *Map) addFault(cell int) {
	k := m.Geom.CellsPerBlock()
	block := cell / k
	offset := cell % k
	bf := &m.Blocks[block]
	if offset < m.Geom.DataBits() {
		bf.WordMask |= 1 << uint(offset/m.WordBits)
		pair := offset / 2
		bf.PairMask[pair/64] |= 1 << uint(pair%64)
	} else {
		bf.TagFaulty = true
	}
	bf.Cells++
	m.Total++
	if m.faulty != nil {
		m.faulty[block>>6] |= 1 << uint(block&63)
	}
}

// AddFault marks linear cell index faulty. Exported for builders that
// assemble maps from externally drawn fault populations (e.g.
// internal/population's per-die severity draws); like the in-package
// generators, callers must pass distinct cells.
func (m *Map) AddFault(cell int) { m.addFault(cell) }

// At returns the fault record for a (set, way) block frame.
func (m *Map) At(set, way int) BlockFaults {
	return m.Blocks[m.Geom.BlockIndex(set, way)]
}

// BlockFaulty reports whether the (set, way) frame has any faulty cell.
func (m *Map) BlockFaulty(set, way int) bool { return m.At(set, way).Faulty() }

// FaultyBlocks returns the number of blocks containing at least one faulty
// cell — the realization of the paper's u.
func (m *Map) FaultyBlocks() int {
	if m.faulty != nil {
		n := 0
		for _, w := range m.faulty {
			n += bits.OnesCount64(w)
		}
		return n
	}
	n := 0
	for _, b := range m.Blocks {
		if b.Faulty() {
			n++
		}
	}
	return n
}

// ReindexBlocks rebuilds the faulty-block bitset from the Blocks slice.
// The generators maintain the bitset incrementally; call this only after
// editing Blocks records by hand (tests building pathological maps do).
func (m *Map) ReindexBlocks() {
	if m.faulty == nil {
		m.faulty = make([]uint64, (len(m.Blocks)+63)/64)
	}
	for i := range m.faulty {
		m.faulty[i] = 0
	}
	for i := range m.Blocks {
		if m.Blocks[i].Cells > 0 {
			m.faulty[i>>6] |= 1 << uint(i&63)
		}
	}
}

// FaultyWays returns a bitmask with bit w set iff block (set, way w) has
// any faulty cell — the per-set slice of the faulty-block bitset that
// block-disabling inverts into a way-enable mask. Block indices of one
// set are contiguous (BlockIndex = set·Ways + way), so the mask is at
// most two bitset words re-aligned; the fallback for externally
// assembled maps scans the set's BlockFaults.
func (m *Map) FaultyWays(set int) uint64 {
	ways := m.Geom.Ways
	if m.faulty == nil {
		var mask uint64
		base := set * ways
		for w := 0; w < ways; w++ {
			if m.Blocks[base+w].Faulty() {
				mask |= 1 << uint(w)
			}
		}
		return mask
	}
	bit := uint(set * ways)
	off := bit & 63
	v := m.faulty[bit>>6] >> off
	if off+uint(ways) > 64 {
		v |= m.faulty[bit>>6+1] << (64 - off)
	}
	if ways < 64 {
		v &= 1<<uint(ways) - 1
	}
	return v
}

// CapacityFraction returns the fraction of fault-free blocks, the capacity
// available to block-disabling.
func (m *Map) CapacityFraction() float64 {
	return 1 - float64(m.FaultyBlocks())/float64(len(m.Blocks))
}

// WordsPerBlock returns the number of words in a block's data array.
func (m *Map) WordsPerBlock() int { return m.Geom.DataBits() / m.WordBits }

// SubblockFaultyWords returns the number of faulty words in the subblock
// of wordsPerSubblock words starting at word index start of block (set,
// way).
func (m *Map) SubblockFaultyWords(set, way, start, wordsPerSubblock int) int {
	mask := (uint64(1)<<uint(wordsPerSubblock) - 1) << uint(start)
	b := m.At(set, way)
	n := 0
	for w := b.WordMask & mask; w != 0; w &= w - 1 {
		n++
	}
	return n
}

// String summarizes the map.
func (m *Map) String() string {
	return fmt.Sprintf("fault map %s: %d faulty cells in %d/%d blocks",
		m.Geom, m.Total, m.FaultyBlocks(), len(m.Blocks))
}

// Pair bundles the instruction- and data-cache maps the simulation
// experiments draw together (Section V: "Each pair consists of two maps,
// one for the instruction cache and another for the data cache").
type Pair struct {
	I, D *Map
}

// GeneratePair draws an I/D map pair from a single seed. The draw runs on
// the dense fast path (see dense.go) and is byte-identical to seeding a
// math/rand source and calling Generate for I then D.
func GeneratePair(ig, dg geom.Geometry, wordBits int, pfail float64, seed int64) Pair {
	var rng lfrand.Source
	rng.Seed(seed)
	i := NewEmpty(ig, wordBits)
	denseInject(i, pfail, &rng, nil, false)
	d := NewEmpty(dg, wordBits)
	denseInject(d, pfail, &rng, nil, false)
	return Pair{I: i, D: d}
}

// GenerateMap draws a single uniform fault map from one seed — the
// one-array analogue of GeneratePair. The map equals the I side of
// GeneratePair at the same seed (both consume the same rng prefix), so
// existing seeded results are unchanged.
func GenerateMap(g geom.Geometry, wordBits int, pfail float64, seed int64) *Map {
	m := NewEmpty(g, wordBits)
	var rng lfrand.Source
	rng.Seed(seed)
	denseInject(m, pfail, &rng, nil, false)
	return m
}

package faults

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vccmin/internal/geom"
	"vccmin/internal/prob"
)

var refGeom = geom.MustNew(32*1024, 8, 64)

func TestEmptyMap(t *testing.T) {
	m := NewEmpty(refGeom, 32)
	if m.Total != 0 || m.FaultyBlocks() != 0 {
		t.Errorf("empty map has faults: %s", m)
	}
	if m.CapacityFraction() != 1 {
		t.Errorf("empty map capacity = %v, want 1", m.CapacityFraction())
	}
}

func TestGenerateExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if m := Generate(refGeom, 32, 0, rng); m.Total != 0 {
		t.Errorf("pfail=0 produced %d faults", m.Total)
	}
	m := Generate(refGeom, 32, 1, rng)
	if m.Total != refGeom.TotalCells() {
		t.Errorf("pfail=1 produced %d faults, want %d", m.Total, refGeom.TotalCells())
	}
	if m.CapacityFraction() != 0 {
		t.Errorf("pfail=1 capacity = %v, want 0", m.CapacityFraction())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(refGeom, 32, 0.001, rand.New(rand.NewSource(42)))
	b := Generate(refGeom, 32, 0.001, rand.New(rand.NewSource(42)))
	if a.Total != b.Total {
		t.Fatalf("same seed, different fault counts: %d vs %d", a.Total, b.Total)
	}
	for i := range a.Blocks {
		if a.Blocks[i] != b.Blocks[i] {
			t.Fatalf("same seed, block %d differs", i)
		}
	}
	c := Generate(refGeom, 32, 0.001, rand.New(rand.NewSource(43)))
	same := true
	for i := range a.Blocks {
		if a.Blocks[i] != c.Blocks[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical maps")
	}
}

func TestGenerateMatchesBernoulliRate(t *testing.T) {
	// Total faults across many maps should match pfail * cells.
	const pfail = 0.001
	const trials = 60
	rng := rand.New(rand.NewSource(7))
	total := 0
	for i := 0; i < trials; i++ {
		total += Generate(refGeom, 32, pfail, rng).Total
	}
	want := pfail * float64(refGeom.TotalCells()) * trials
	sd := math.Sqrt(want) // Poisson-ish
	if math.Abs(float64(total)-want) > 5*sd {
		t.Errorf("total faults = %d, want %v ± %v", total, want, 5*sd)
	}
}

func TestMonteCarloMatchesEq2(t *testing.T) {
	// Mean fraction of faulty blocks over many maps ≈ Eq. 2.
	const pfail = 0.001
	const trials = 80
	rng := rand.New(rand.NewSource(11))
	sum := 0.0
	for i := 0; i < trials; i++ {
		m := Generate(refGeom, 32, pfail, rng)
		sum += float64(m.FaultyBlocks()) / float64(len(m.Blocks))
	}
	got := sum / trials
	want := prob.MeanFaultyBlockFraction(refGeom.CellsPerBlock(), pfail)
	// σ of the per-map fraction ≈ 2.2pp; 80 trials → s.e. ≈ 0.25pp.
	if math.Abs(got-want) > 0.01 {
		t.Errorf("Monte Carlo faulty fraction = %v, Eq.2 predicts %v", got, want)
	}
}

func TestInjectExactMatchesEq1(t *testing.T) {
	// Paper's running example: 275 faults land in ≈213 distinct blocks.
	const n = 275
	const trials = 60
	rng := rand.New(rand.NewSource(3))
	sum := 0.0
	for i := 0; i < trials; i++ {
		m := InjectExact(refGeom, 32, n, rng)
		if m.Total != n {
			t.Fatalf("InjectExact placed %d faults, want %d", m.Total, n)
		}
		sum += float64(m.FaultyBlocks())
	}
	got := sum / trials
	want := prob.MeanFaultyBlocksExact(refGeom.Blocks(), refGeom.CellsPerBlock(), n)
	if math.Abs(got-want) > 3 {
		t.Errorf("mean distinct faulty blocks = %v, Eq.1 predicts %v", got, want)
	}
}

func TestInjectExactAllCells(t *testing.T) {
	m := InjectExact(refGeom, 32, refGeom.TotalCells()+5, rand.New(rand.NewSource(1)))
	if m.Total != refGeom.TotalCells() {
		t.Errorf("overfull injection placed %d faults, want %d", m.Total, refGeom.TotalCells())
	}
}

func TestCellAccounting(t *testing.T) {
	// Faulty cells counted per block must sum to the map total, and word
	// masks must stay within the block's word count.
	m := Generate(refGeom, 32, 0.005, rand.New(rand.NewSource(5)))
	sum := 0
	wordsPerBlock := m.WordsPerBlock()
	for _, b := range m.Blocks {
		sum += b.Cells
		if b.WordMask>>uint(wordsPerBlock) != 0 {
			t.Fatalf("word mask %#x exceeds %d words", b.WordMask, wordsPerBlock)
		}
		if b.Cells == 0 && (b.WordMask != 0 || b.TagFaulty) {
			t.Fatal("block with zero cells has fault marks")
		}
		if b.Cells > 0 && b.WordMask == 0 && !b.TagFaulty {
			t.Fatal("block with faults has no marks")
		}
	}
	if sum != m.Total {
		t.Errorf("per-block cells sum %d != total %d", sum, m.Total)
	}
}

func TestTagRegionFaults(t *testing.T) {
	// Inject every cell of block 0 one at a time and verify the data/tag
	// split: cells [0, DataBits) set word bits, the rest set TagFaulty.
	g := refGeom
	for _, cell := range []int{0, 31, 32, g.DataBits() - 1, g.DataBits(), g.CellsPerBlock() - 1} {
		m := NewEmpty(g, 32)
		m.addFault(cell)
		b := m.Blocks[0]
		if cell < g.DataBits() {
			wantWord := cell / 32
			if b.WordMask != 1<<uint(wantWord) || b.TagFaulty {
				t.Errorf("cell %d: mask %#x tag %v, want word %d only", cell, b.WordMask, b.TagFaulty, wantWord)
			}
		} else if !b.TagFaulty || b.WordMask != 0 {
			t.Errorf("cell %d: mask %#x tag %v, want tag fault only", cell, b.WordMask, b.TagFaulty)
		}
	}
}

func TestSubblockFaultyWords(t *testing.T) {
	m := NewEmpty(refGeom, 32)
	// Make words 0, 3, 9 faulty in block 0 (set 0, way 0).
	for _, w := range []int{0, 3, 9} {
		m.addFault(w * 32)
	}
	if got := m.SubblockFaultyWords(0, 0, 0, 8); got != 2 {
		t.Errorf("subblock 0 faulty words = %d, want 2", got)
	}
	if got := m.SubblockFaultyWords(0, 0, 8, 8); got != 1 {
		t.Errorf("subblock 1 faulty words = %d, want 1", got)
	}
	if got := m.At(0, 0).FaultyWords(); got != 3 {
		t.Errorf("FaultyWords = %d, want 3", got)
	}
}

func TestGeneratePairDeterministic(t *testing.T) {
	ig := geom.MustNew(32*1024, 8, 64)
	a := GeneratePair(ig, refGeom, 32, 0.001, 99)
	b := GeneratePair(ig, refGeom, 32, 0.001, 99)
	if a.I.Total != b.I.Total || a.D.Total != b.D.Total {
		t.Error("same seed produced different pairs")
	}
	if a.I.Total == 0 && a.D.Total == 0 {
		t.Error("pair has no faults at pfail=0.001 (suspicious)")
	}
}

func TestClusteredMatchesRate(t *testing.T) {
	const pfail = 0.002
	rng := rand.New(rand.NewSource(21))
	totalU, totalC := 0, 0
	const trials = 40
	for i := 0; i < trials; i++ {
		totalU += Generate(refGeom, 32, pfail, rng).Total
		totalC += GenerateClustered(refGeom, 32, ClusterParams{Pfail: pfail, Size: 8}, rng).Total
	}
	// Clustered model should deliver roughly the same fault rate.
	ratio := float64(totalC) / float64(totalU)
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("clustered/uniform fault ratio = %v, want ≈1", ratio)
	}
}

func TestClusteredConcentratesFaults(t *testing.T) {
	// Same fault budget in clusters of 8 must hit fewer distinct blocks —
	// the mechanism that makes clustering *better* for block-disabling.
	const pfail = 0.002
	rngU := rand.New(rand.NewSource(31))
	rngC := rand.New(rand.NewSource(31))
	blocksU, blocksC := 0, 0
	for i := 0; i < 40; i++ {
		blocksU += Generate(refGeom, 32, pfail, rngU).FaultyBlocks()
		blocksC += GenerateClustered(refGeom, 32, ClusterParams{Pfail: pfail, Size: 8}, rngC).FaultyBlocks()
	}
	if blocksC >= blocksU {
		t.Errorf("clustered faults hit %d blocks vs uniform %d; clustering should concentrate", blocksC, blocksU)
	}
}

func TestClusterSizeOneIsUniform(t *testing.T) {
	a := GenerateClustered(refGeom, 32, ClusterParams{Pfail: 0.001, Size: 1}, rand.New(rand.NewSource(8)))
	b := Generate(refGeom, 32, 0.001, rand.New(rand.NewSource(8)))
	for i := range a.Blocks {
		if a.Blocks[i] != b.Blocks[i] {
			t.Fatal("cluster size 1 should match the uniform generator exactly")
		}
	}
}

func TestCapacityFractionInRange(t *testing.T) {
	f := func(seed int64, rawP float64) bool {
		p := math.Abs(math.Mod(rawP, 0.01))
		m := Generate(refGeom, 32, p, rand.New(rand.NewSource(seed)))
		c := m.CapacityFraction()
		return c >= 0 && c <= 1
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

package faults

import (
	"encoding/json"
	"fmt"
	"io"

	"vccmin/internal/geom"
)

// Serialization: fault maps are boot-time artifacts in the paper (built
// by the low-voltage memory test), so the tools can persist and reload
// them. The format is plain JSON of the exported structure plus a version
// tag for forward compatibility.

// fileFormat is the on-disk envelope.
type fileFormat struct {
	Version  int           `json:"version"`
	Geometry geom.Geometry `json:"geometry"`
	WordBits int           `json:"wordBits"`
	Blocks   []BlockFaults `json:"blocks"`
	Total    int           `json:"total"`
}

const formatVersion = 1

// Write serializes the map as JSON.
func (m *Map) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(fileFormat{
		Version:  formatVersion,
		Geometry: m.Geom,
		WordBits: m.WordBits,
		Blocks:   m.Blocks,
		Total:    m.Total,
	})
}

// Read deserializes a map written by Write, validating the envelope.
func Read(r io.Reader) (*Map, error) {
	var f fileFormat
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("faults: decode: %w", err)
	}
	if f.Version != formatVersion {
		return nil, fmt.Errorf("faults: unsupported format version %d", f.Version)
	}
	if err := f.Geometry.Check(); err != nil {
		return nil, fmt.Errorf("faults: bad geometry in file: %w", err)
	}
	if f.WordBits <= 0 || f.Geometry.DataBits()%f.WordBits != 0 {
		return nil, fmt.Errorf("faults: bad word size %d", f.WordBits)
	}
	if len(f.Blocks) != f.Geometry.Blocks() {
		return nil, fmt.Errorf("faults: %d block records for a %d-block geometry",
			len(f.Blocks), f.Geometry.Blocks())
	}
	m := &Map{
		Geom:     f.Geometry,
		WordBits: f.WordBits,
		Blocks:   f.Blocks,
		Total:    f.Total,
		faulty:   make([]uint64, (len(f.Blocks)+63)/64),
	}
	sum := 0
	for i, b := range m.Blocks {
		if b.Cells < 0 {
			return nil, fmt.Errorf("faults: block %d has negative cell count", i)
		}
		if b.Cells > 0 {
			m.faulty[i>>6] |= 1 << uint(i&63)
		}
		sum += b.Cells
	}
	if sum != m.Total {
		return nil, fmt.Errorf("faults: total %d does not match per-block sum %d", m.Total, sum)
	}
	return m, nil
}

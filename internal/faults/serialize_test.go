package faults

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	orig := Generate(refGeom, 32, 0.001, rand.New(rand.NewSource(77)))
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != orig.Total || got.Geom != orig.Geom || got.WordBits != orig.WordBits {
		t.Fatalf("header mismatch: %+v vs %+v", got, orig)
	}
	for i := range orig.Blocks {
		if got.Blocks[i] != orig.Blocks[i] {
			t.Fatalf("block %d differs after round trip", i)
		}
	}
}

func TestReadRejectsCorruptInputs(t *testing.T) {
	orig := Generate(refGeom, 32, 0.001, rand.New(rand.NewSource(78)))
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.String()

	cases := map[string]string{
		"garbage":       "not json",
		"wrong version": strings.Replace(valid, `"version":1`, `"version":9`, 1),
		"bad wordbits":  strings.Replace(valid, `"wordBits":32`, `"wordBits":7`, 1),
		"bad total":     strings.Replace(valid, `"total":`, `"total":9`, 1),
	}
	for name, body := range cases {
		if _, err := Read(strings.NewReader(body)); err == nil {
			t.Errorf("%s: Read accepted corrupt input", name)
		}
	}
	// Truncated block list.
	short := strings.Replace(valid, `"total"`, `"totalx"`, 1) // unknown key, total=0 then
	if _, err := Read(strings.NewReader(short)); err == nil && orig.Total != 0 {
		t.Error("missing total should fail the consistency check")
	}
}

func TestRoundTripPreservesSchemeDecisions(t *testing.T) {
	orig := Generate(refGeom, 32, 0.002, rand.New(rand.NewSource(79)))
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.FaultyBlocks() != orig.FaultyBlocks() {
		t.Error("faulty block count changed across serialization")
	}
	if got.CapacityFraction() != orig.CapacityFraction() {
		t.Error("capacity changed across serialization")
	}
}

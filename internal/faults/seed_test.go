package faults

import (
	"testing"

	"vccmin/internal/geom"
)

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(1, "pfail=0.001", "trial=3")
	b := DeriveSeed(1, "pfail=0.001", "trial=3")
	if a != b {
		t.Fatalf("DeriveSeed not deterministic: %d vs %d", a, b)
	}
}

func TestDeriveSeedSeparatesLabels(t *testing.T) {
	if DeriveSeed(1, "ab", "c") == DeriveSeed(1, "a", "bc") {
		t.Error("label boundaries not separated")
	}
	if DeriveSeed(1, "x") == DeriveSeed(2, "x") {
		t.Error("base seed ignored")
	}
	if DeriveSeed(1, "x") == DeriveSeed(1, "y") {
		t.Error("labels ignored")
	}
}

func TestDeriveSeedSpreads(t *testing.T) {
	// Children of consecutive bases and trial indices must not collide in
	// a small sample (they feed rand.NewSource directly).
	seen := map[int64]bool{}
	for base := int64(0); base < 32; base++ {
		for trial := 0; trial < 32; trial++ {
			s := DeriveSeed(base, "trial", string(rune('a'+trial)))
			if seen[s] {
				t.Fatalf("collision at base=%d trial=%d", base, trial)
			}
			seen[s] = true
		}
	}
}

func TestGenerateMapMatchesPairISide(t *testing.T) {
	g := geom.MustNew(32*1024, 8, 64)
	m := GenerateMap(g, 32, 0.001, 42)
	p := GeneratePair(g, g, 32, 0.001, 42)
	if m.Total != p.I.Total {
		t.Fatalf("GenerateMap diverges from pair I side: %d vs %d faults", m.Total, p.I.Total)
	}
	for i := range m.Blocks {
		if m.Blocks[i] != p.I.Blocks[i] {
			t.Fatalf("block %d differs", i)
		}
	}
}

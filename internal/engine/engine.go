// Package engine is the unified content-addressed compute layer behind
// every entrypoint of the repository. Each compute kind (capacity
// analysis, operating points, overhead, simulations, sweep runs and
// cells, DVFS runs and explorations) is expressed as a Task — a
// deterministic unit of work identified by its kind and the canonical
// hash of its result-defining parameters — and executed through one
// Engine that provides, once, what the HTTP handlers, job manager and
// CLIs used to half-implement each:
//
//   - singleflight in-flight deduplication: two concurrent identical
//     tasks execute the underlying computation exactly once;
//   - a two-tier result store: an in-memory LRU of marshalled response
//     bytes fronting a content-addressed on-disk store keyed
//     <kind>/<hash>.json, so computed results survive restarts;
//   - per-kind hit/miss/inflight statistics;
//   - a bounded worker Pool (folded in from the service's job manager)
//     for async execution.
//
// Determinism is what makes the engine simple: every task's result is a
// pure function of its canonical parameters (seeds derive from them), so
// neither tier ever needs invalidation and cached bytes can be replayed
// to any caller — HTTP, CLI or batch — bit for bit.
package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
)

// Task is one deterministic unit of compute. Implementations must be
// pure functions of their parameters: two tasks with equal Kind and
// CanonicalHash must produce byte-identical marshalled results.
type Task interface {
	// Kind names the compute family ("capacity", "sim", "sweep", ...).
	// It namespaces the hash in both store tiers and in the stats.
	Kind() string

	// CanonicalHash digests the task's result-defining parameters.
	// Scheduling knobs (worker counts) must be excluded.
	CanonicalHash() string

	// Run computes the result. The returned value must marshal to JSON;
	// its bytes become the stored, replayable representation.
	Run(ctx context.Context) (any, error)
}

// Source reports which tier satisfied a Do call.
type Source string

// Do sources, in lookup order.
const (
	// SourceCompute: no tier had the result; this call ran the task.
	SourceCompute Source = "miss"
	// SourceMemory: the in-memory LRU replayed the bytes.
	SourceMemory Source = "hit"
	// SourceDisk: the on-disk store replayed the bytes (e.g. after a
	// restart); the entry was promoted into the memory tier.
	SourceDisk Source = "disk"
	// SourceInflight: an identical task was already running; this call
	// waited for it instead of recomputing.
	SourceInflight Source = "inflight"
)

// Options sizes an Engine.
type Options struct {
	// MemEntries bounds the in-memory LRU; default 512.
	MemEntries int

	// Dir roots the on-disk result store (<Dir>/<kind>/<hash>.json).
	// Empty disables the disk tier: results then live only in memory.
	Dir string
}

// Result is one Do outcome: the marshalled result bytes (no trailing
// newline) and the tier that produced them.
type Result struct {
	Bytes  []byte
	Source Source
}

// Decode unmarshals the result bytes into v.
func (r Result) Decode(v any) error { return json.Unmarshal(r.Bytes, v) }

// call is one in-flight task execution other callers can wait on.
type call struct {
	done  chan struct{}
	bytes []byte
	err   error
}

// Engine executes tasks through the two-tier store with singleflight
// deduplication. It is safe for concurrent use.
type Engine struct {
	mem  *memLRU
	disk *diskStore

	mu       sync.Mutex
	inflight map[string]*call

	stats statsTable
}

// New builds an engine, creating the disk-store root if configured.
func New(opts Options) (*Engine, error) {
	if opts.MemEntries <= 0 {
		opts.MemEntries = 512
	}
	e := &Engine{
		mem:      newMemLRU(opts.MemEntries),
		inflight: make(map[string]*call),
	}
	if opts.Dir != "" {
		d, err := newDiskStore(opts.Dir)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		e.disk = d
	}
	return e, nil
}

// Do executes the task through the store: memory tier, then disk tier,
// then compute — with concurrent identical tasks deduplicated onto one
// execution. Errors are never cached. The returned bytes are shared; do
// not mutate them.
//
// A follower deduplicated onto another caller's execution does not
// share that caller's fate: if the leader's context is cancelled (its
// client disconnected), followers whose own context is still alive
// retry — one of them becomes the next leader.
func (e *Engine) Do(ctx context.Context, t Task) (Result, error) {
	kind := t.Kind()
	key := kind + "/" + t.CanonicalHash()

	for {
		if b, ok := e.mem.get(key); ok {
			e.stats.bump(kind, func(k *KindStats) { k.Hits++ })
			return Result{Bytes: b, Source: SourceMemory}, nil
		}
		if e.disk != nil {
			if b, ok := e.disk.get(kind, t.CanonicalHash()); ok {
				e.mem.put(key, b)
				e.stats.bump(kind, func(k *KindStats) { k.DiskHits++ })
				return Result{Bytes: b, Source: SourceDisk}, nil
			}
		}

		e.mu.Lock()
		if c, ok := e.inflight[key]; ok {
			e.mu.Unlock()
			e.stats.bump(kind, func(k *KindStats) { k.InflightWaits++ })
			select {
			case <-c.done:
				if c.err != nil {
					// The leader's cancellation is not ours; go around
					// (tiers first — the leader may have partially
					// succeeded) unless our own context is also done.
					if isContextErr(c.err) && ctx.Err() == nil {
						continue
					}
					return Result{}, c.err
				}
				return Result{Bytes: c.bytes, Source: SourceInflight}, nil
			case <-ctx.Done():
				return Result{}, ctx.Err()
			}
		}
		// Double-check the memory tier under the lock: a leader that
		// finished between our miss above and here has already stored the
		// bytes and retired its call entry.
		if b, ok := e.mem.get(key); ok {
			e.mu.Unlock()
			e.stats.bump(kind, func(k *KindStats) { k.Hits++ })
			return Result{Bytes: b, Source: SourceMemory}, nil
		}
		c := &call{done: make(chan struct{})}
		e.inflight[key] = c
		e.mu.Unlock()

		c.bytes, c.err = e.compute(ctx, t, key)

		e.mu.Lock()
		delete(e.inflight, key)
		e.mu.Unlock()
		close(c.done)

		if c.err != nil {
			e.stats.bump(kind, func(k *KindStats) { k.Errors++ })
			return Result{}, c.err
		}
		e.stats.bump(kind, func(k *KindStats) { k.Misses++ })
		return Result{Bytes: c.bytes, Source: SourceCompute}, nil
	}
}

// isContextErr reports whether err stems from a cancelled or expired
// context.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ErrEncoding wraps a result that failed to marshal — a programming
// error in the task's response type, not a bad request. Callers mapping
// engine errors onto status codes should treat it as internal.
var ErrEncoding = errors.New("engine: encoding result")

// compute runs the task and stores the marshalled result in both tiers.
func (e *Engine) compute(ctx context.Context, t Task, key string) ([]byte, error) {
	v, err := t.Run(ctx)
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrEncoding, t.Kind(), err)
	}
	e.mem.put(key, b)
	if e.disk != nil {
		if err := e.disk.put(t.Kind(), t.CanonicalHash(), b); err != nil {
			// The computation succeeded; a disk-tier write failure only
			// costs durability, so surface it without failing the call.
			e.stats.bump(t.Kind(), func(k *KindStats) { k.DiskErrors++ })
		}
	}
	return b, nil
}

// MemStats reports the memory tier's aggregate counters (the shape the
// service's /v1/stats "cache" section has always had).
func (e *Engine) MemStats() CacheStats { return e.mem.stats() }

// KindStats counts one task kind's outcomes.
type KindStats struct {
	Hits          uint64 `json:"hits"`           // memory-tier replays
	DiskHits      uint64 `json:"disk_hits"`      // disk-tier replays
	Misses        uint64 `json:"misses"`         // computed by this process
	InflightWaits uint64 `json:"inflight_waits"` // deduplicated onto a concurrent run
	Errors        uint64 `json:"errors"`         // failed computations (never cached)
	DiskErrors    uint64 `json:"disk_write_errors,omitempty"`
}

// Stats returns a snapshot of the per-kind counters.
func (e *Engine) Stats() map[string]KindStats { return e.stats.snapshot() }

// statsTable is the per-kind counter map.
type statsTable struct {
	mu sync.Mutex
	m  map[string]*KindStats
}

func (s *statsTable) bump(kind string, f func(*KindStats)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]*KindStats)
	}
	k, ok := s.m[kind]
	if !ok {
		k = &KindStats{}
		s.m[kind] = k
	}
	f(k)
}

func (s *statsTable) snapshot() map[string]KindStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]KindStats, len(s.m))
	for kind, k := range s.m {
		out[kind] = *k
	}
	return out
}

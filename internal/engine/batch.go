package engine

import (
	"context"
	"encoding/json"
	"runtime"
	"sync"
)

// BatchItem is one request of a heterogeneous batch: a registered task
// kind plus its raw JSON parameters.
type BatchItem struct {
	Kind   string          `json:"kind"`
	Params json.RawMessage `json:"params,omitempty"`
}

// BatchResult is one batch item's outcome, in request order. Exactly
// one of Value and Error is set.
type BatchResult struct {
	Kind   string          `json:"kind"`
	Hash   string          `json:"hash,omitempty"`
	Source string          `json:"source,omitempty"`
	Value  json.RawMessage `json:"value,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// RunBatch executes a heterogeneous list of task requests through the
// engine with up to workers concurrent computations (0 = GOMAXPROCS)
// and answers in request order. Items sharing a canonical identity —
// with each other or with anything the engine has already seen —
// deduplicate onto one execution through the engine's store and
// singleflight. Per-item failures (unknown kind, bad parameters, task
// errors) land in that item's Error; they never fail the batch.
func RunBatch(ctx context.Context, e *Engine, items []BatchItem, workers int) []BatchResult {
	return RunBatchFiltered(ctx, e, items, workers, nil)
}

// RunBatchFiltered is RunBatch with a per-item admission gate, called
// after decoding and before execution: a non-nil error rejects that
// item (its message lands in the item's Error) without touching its
// siblings. Callers use it to apply surface-specific limits, e.g. the
// service's grid-size caps.
func RunBatchFiltered(ctx context.Context, e *Engine, items []BatchItem, workers int, gate func(Task) error) []BatchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	out := make([]BatchResult, len(items))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, item := range items {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, item BatchItem) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = runOne(ctx, e, item, gate)
		}(i, item)
	}
	wg.Wait()
	return out
}

func runOne(ctx context.Context, e *Engine, item BatchItem, gate func(Task) error) BatchResult {
	res := BatchResult{Kind: item.Kind}
	t, err := DecodeTask(item.Kind, item.Params)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.Hash = t.CanonicalHash()
	if gate != nil {
		if err := gate(t); err != nil {
			res.Error = err.Error()
			return res
		}
	}
	r, err := e.Do(ctx, t)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.Source = string(r.Source)
	res.Value = json.RawMessage(r.Bytes)
	return res
}

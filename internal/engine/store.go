package engine

import (
	"container/list"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// memLRU is the in-memory tier: a thread-safe LRU of marshalled result
// bytes keyed by <kind>/<hash>. Every stored result is deterministic, so
// entries never go stale — the LRU only bounds memory.
type memLRU struct {
	mu      sync.Mutex
	max     int
	ll      *list.List
	items   map[string]*list.Element
	hits    uint64
	misses  uint64
	evicted uint64
}

type lruEntry struct {
	key string
	val []byte
}

func newMemLRU(max int) *memLRU {
	if max <= 0 {
		max = 1
	}
	return &memLRU{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached bytes for key and records a hit or miss.
func (c *memLRU) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*lruEntry).val, true
	}
	c.misses++
	return nil, false
}

// put stores val under key, evicting the least recently used entry when
// the cache is full.
func (c *memLRU) put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*lruEntry).key)
		c.evicted++
	}
}

// CacheStats is the memory tier's aggregate view (the service's
// /v1/stats "cache" section).
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Evicted uint64 `json:"evicted"`
	Entries int    `json:"entries"`
	Max     int    `json:"max"`
}

func (c *memLRU) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evicted: c.evicted, Entries: c.ll.Len(), Max: c.max}
}

// diskStore is the content-addressed on-disk tier: one file per result
// at <dir>/<kind>/<hash>.json, written atomically (temp file + rename)
// so a kill mid-write never leaves a torn entry. Results are pure
// functions of their hash, so files are immutable once written and the
// store needs no locking beyond the filesystem's.
type diskStore struct {
	dir string
}

func newDiskStore(dir string) (*diskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &diskStore{dir: dir}, nil
}

// path maps a (kind, hash) identity to its file. Kinds are lowercase
// slugs and hashes hex by construction; sanitize anyway so a hostile
// kind string can never escape the store root.
func (d *diskStore) path(kind, hash string) string {
	clean := func(s string) string {
		return strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
				return r
			default:
				return '_'
			}
		}, s)
	}
	return filepath.Join(d.dir, clean(kind), clean(hash)+".json")
}

func (d *diskStore) get(kind, hash string) ([]byte, bool) {
	b, err := os.ReadFile(d.path(kind, hash))
	if err != nil {
		return nil, false
	}
	return b, true
}

func (d *diskStore) put(kind, hash string, b []byte) error {
	path := d.path(kind, hash)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	// A unique temp file per writer, not a fixed "<path>.tmp": stores
	// can be shared across processes (a serve instance plus CLIs on one
	// -result-cache), and two concurrent writers of the same result
	// truncating one temp path could publish a torn entry. Distinct
	// temp names make the final rename the only point of contention,
	// and both writers rename identical bytes.
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// CreateTemp opens 0600; match the 0644 the rest of the data dir uses.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is the bounded worker pool the async layers share (folded in
// from the service's job manager): a fixed number of workers draining a
// buffered queue of funcs, with drain/close lifecycle and the counters
// the /v1/stats job section reports.
type Pool struct {
	queue  chan func(context.Context)
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	queued   atomic.Int64
	running  atomic.Int64
	draining atomic.Bool
}

// Pool submission errors.
var (
	// ErrPoolDraining rejects submissions after Drain began.
	ErrPoolDraining = errors.New("engine: pool draining, not accepting work")
	// ErrPoolFull rejects submissions when the backlog is at capacity.
	ErrPoolFull = errors.New("engine: pool queue full")
)

// NewPool starts workers goroutines over a queue of backlog capacity.
func NewPool(workers, backlog int) *Pool {
	if workers <= 0 {
		workers = 2
	}
	if backlog <= 0 {
		backlog = 1024
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{queue: make(chan func(context.Context), backlog), ctx: ctx, cancel: cancel}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.ctx.Done():
			return
		case fn := <-p.queue:
			// running rises before queued falls: Drain polls for both
			// counters at zero, and the opposite order opens a window
			// where a mid-handoff item looks already drained.
			p.running.Add(1)
			p.queued.Add(-1)
			fn(p.ctx)
			p.running.Add(-1)
		}
	}
}

// Submit enqueues fn for execution by a worker. The fn receives the
// pool's context, which Close cancels.
func (p *Pool) Submit(fn func(context.Context)) error {
	if p.draining.Load() {
		return ErrPoolDraining
	}
	select {
	case p.queue <- fn:
		p.queued.Add(1)
		return nil
	default:
		return ErrPoolFull
	}
}

// Draining reports whether Drain has begun (new work is rejected).
func (p *Pool) Draining() bool { return p.draining.Load() }

// Queued returns the number of submitted items not yet picked up.
func (p *Pool) Queued() int64 { return p.queued.Load() }

// Running returns the number of items currently executing.
func (p *Pool) Running() int64 { return p.running.Load() }

// Drain stops accepting new work and waits for the queue to empty and
// the running items to finish, or for ctx to expire — the graceful half
// of shutdown. Call Close afterwards either way.
func (p *Pool) Drain(ctx context.Context) error {
	p.draining.Store(true)
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		if p.queued.Load() == 0 && p.running.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Close cancels the pool context (running items observe it and exit)
// and waits for the workers to return.
func (p *Pool) Close() {
	p.cancel()
	p.wg.Wait()
}

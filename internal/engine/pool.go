package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Tier classifies pool work for scheduling. The pool serves two queues:
// interactive work (a user is waiting on the response) and batch work
// (sweep jobs, bulk requests — throughput matters, latency does not).
// Batch execution is capped at the pool's batch worker count while
// interactive work may run on every worker, so a saturated batch
// backlog can never starve interactive requests — the serving-layer
// version of the paper's thesis: keep delivering useful work at a
// degraded operating point instead of stalling.
type Tier int

// The two scheduling tiers.
const (
	// TierInteractive work may run on every worker and is preferred
	// when a dual worker has a choice.
	TierInteractive Tier = iota
	// TierBatch work runs only on the batch workers; it queues (and is
	// eventually shed by the admission layer) rather than crowd out
	// interactive traffic.
	TierBatch
)

// String names the tier for stats and logs.
func (t Tier) String() string {
	if t == TierBatch {
		return "batch"
	}
	return "interactive"
}

// Pool is the bounded two-tier worker pool the async layers share: a
// fixed number of workers draining two buffered queues, with
// drain/close lifecycle and per-tier counters for /v1/stats and the
// admission watermarks.
//
// Worker layout: batchWorkers "dual" workers take work from both
// queues; interactiveWorkers additional workers serve only the
// interactive queue. Batch concurrency is therefore capped at
// batchWorkers, while interactive work can use every worker.
type Pool struct {
	interactive chan func(context.Context)
	batch       chan func(context.Context)
	ctx         context.Context
	cancel      context.CancelFunc
	wg          sync.WaitGroup

	queued   [2]atomic.Int64 // by Tier
	running  [2]atomic.Int64 // by Tier
	draining atomic.Bool
}

// Pool submission errors.
var (
	// ErrPoolDraining rejects submissions after Drain began.
	ErrPoolDraining = errors.New("engine: pool draining, not accepting work")
	// ErrPoolFull rejects submissions when the tier's backlog is at
	// capacity — the signal the service's admission layer turns into a
	// 503 with Retry-After.
	ErrPoolFull = errors.New("engine: pool queue full")
)

// NewPool starts a single-tier pool: workers dual workers over a batch
// queue of backlog capacity (Submit feeds the batch tier). It is the
// pre-tier constructor, kept for callers that do not serve interactive
// traffic.
func NewPool(workers, backlog int) *Pool {
	return NewTieredPool(0, workers, backlog, backlog)
}

// NewTieredPool starts interactiveWorkers workers dedicated to the
// interactive queue plus batchWorkers dual workers serving both queues,
// over per-tier backlogs. batchWorkers <= 0 defaults to 2; backlogs
// <= 0 default to 1024.
func NewTieredPool(interactiveWorkers, batchWorkers, interactiveBacklog, batchBacklog int) *Pool {
	if batchWorkers <= 0 {
		batchWorkers = 2
	}
	if interactiveWorkers < 0 {
		interactiveWorkers = 0
	}
	if interactiveBacklog <= 0 {
		interactiveBacklog = 1024
	}
	if batchBacklog <= 0 {
		batchBacklog = 1024
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		interactive: make(chan func(context.Context), interactiveBacklog),
		batch:       make(chan func(context.Context), batchBacklog),
		ctx:         ctx,
		cancel:      cancel,
	}
	for i := 0; i < batchWorkers; i++ {
		p.wg.Add(1)
		go p.dualWorker()
	}
	for i := 0; i < interactiveWorkers; i++ {
		p.wg.Add(1)
		go p.interactiveWorker()
	}
	return p
}

// run executes one item, keeping the counters in Drain's required
// order: running rises before queued falls, so a mid-handoff item can
// never look already drained.
func (p *Pool) run(tier Tier, fn func(context.Context)) {
	p.running[tier].Add(1)
	p.queued[tier].Add(-1)
	fn(p.ctx)
	p.running[tier].Add(-1)
}

// dualWorker serves both queues. When both have work ready the select
// picks either; the cap guarantees (batch concurrency <= batch worker
// count, interactive never starved) do not depend on the choice.
func (p *Pool) dualWorker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.ctx.Done():
			return
		case fn := <-p.interactive:
			p.run(TierInteractive, fn)
		case fn := <-p.batch:
			p.run(TierBatch, fn)
		}
	}
}

// interactiveWorker serves only the interactive queue; batch work can
// never occupy it.
func (p *Pool) interactiveWorker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.ctx.Done():
			return
		case fn := <-p.interactive:
			p.run(TierInteractive, fn)
		}
	}
}

// Submit enqueues fn on the batch tier (the pre-tier behaviour). The fn
// receives the pool's context, which Close cancels.
func (p *Pool) Submit(fn func(context.Context)) error {
	return p.SubmitTier(TierBatch, fn)
}

// SubmitTier enqueues fn on the given tier, rejecting with ErrPoolFull
// when that tier's backlog is at capacity and ErrPoolDraining after
// Drain began. The fn receives the pool's context, which Close cancels.
func (p *Pool) SubmitTier(tier Tier, fn func(context.Context)) error {
	if p.draining.Load() {
		return ErrPoolDraining
	}
	q := p.batch
	if tier == TierInteractive {
		q = p.interactive
	}
	select {
	case q <- fn:
		p.queued[tier].Add(1)
		return nil
	default:
		return ErrPoolFull
	}
}

// Draining reports whether Drain has begun (new work is rejected).
func (p *Pool) Draining() bool { return p.draining.Load() }

// Queued returns the number of submitted items not yet picked up,
// summed over both tiers.
func (p *Pool) Queued() int64 {
	return p.queued[TierInteractive].Load() + p.queued[TierBatch].Load()
}

// Running returns the number of items currently executing, summed over
// both tiers.
func (p *Pool) Running() int64 {
	return p.running[TierInteractive].Load() + p.running[TierBatch].Load()
}

// QueuedTier returns the tier's backlog depth — the admission layer's
// watermark input.
func (p *Pool) QueuedTier(tier Tier) int64 { return p.queued[tier].Load() }

// RunningTier returns the number of the tier's items currently
// executing.
func (p *Pool) RunningTier(tier Tier) int64 { return p.running[tier].Load() }

// TierStats is one tier's point-in-time counters.
type TierStats struct {
	Queued  int64 `json:"queued"`
	Running int64 `json:"running"`
}

// PoolStats is the pool section of the service's /v1/stats response.
type PoolStats struct {
	Interactive TierStats `json:"interactive"`
	Batch       TierStats `json:"batch"`
}

// Stats snapshots both tiers' counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Interactive: TierStats{Queued: p.queued[TierInteractive].Load(), Running: p.running[TierInteractive].Load()},
		Batch:       TierStats{Queued: p.queued[TierBatch].Load(), Running: p.running[TierBatch].Load()},
	}
}

// Drain stops accepting new work and waits for both queues to empty and
// the running items to finish, or for ctx to expire — the graceful half
// of shutdown. Call Close afterwards either way.
func (p *Pool) Drain(ctx context.Context) error {
	p.draining.Store(true)
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		if p.Queued() == 0 && p.Running() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Close cancels the pool context (running items observe it and exit)
// and waits for the workers to return.
func (p *Pool) Close() {
	p.cancel()
	p.wg.Wait()
}

package engine

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Decoder turns a kind's raw JSON parameters into a runnable Task.
// Implementations should reject unknown fields so batch requests fail
// loudly instead of silently dropping a mistyped parameter.
type Decoder func(params json.RawMessage) (Task, error)

var registry = struct {
	mu sync.RWMutex
	m  map[string]Decoder
}{m: make(map[string]Decoder)}

// RegisterKind installs the decoder for one task kind. Kinds are
// registered once, at init time, by the tasks package; a duplicate
// registration is a programming error and panics.
func RegisterKind(kind string, dec Decoder) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, ok := registry.m[kind]; ok {
		panic(fmt.Sprintf("engine: task kind %q registered twice", kind))
	}
	registry.m[kind] = dec
}

// DecodeTask builds a Task for a registered kind from raw parameters.
func DecodeTask(kind string, params json.RawMessage) (Task, error) {
	registry.mu.RLock()
	dec, ok := registry.m[kind]
	registry.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown task kind %q (known: %v)", kind, Kinds())
	}
	if len(params) == 0 {
		params = json.RawMessage("{}")
	}
	return dec(params)
}

// Kinds lists the registered task kinds, sorted.
func Kinds() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]string, 0, len(registry.m))
	for k := range registry.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package engine

import (
	"context"
	"fmt"
	"testing"
)

// benchValue is a result payload sized like a typical sync-endpoint
// response, so marshal/store costs are representative.
type benchValue struct {
	Pfail    float64   `json:"pfail"`
	Name     string    `json:"name"`
	Series   []float64 `json:"series"`
	Frontier []int     `json:"frontier"`
}

type benchTask struct {
	hash string
}

func (t benchTask) Kind() string          { return "bench" }
func (t benchTask) CanonicalHash() string { return t.hash }
func (t benchTask) Run(context.Context) (any, error) {
	v := benchValue{Pfail: 0.001, Name: t.hash, Series: make([]float64, 32), Frontier: []int{1, 2, 3}}
	for i := range v.Series {
		v.Series[i] = float64(i) * 0.25
	}
	return v, nil
}

// BenchmarkEngineColdCompute measures a store miss: every iteration is
// a fresh identity, so the engine computes, marshals and stores.
func BenchmarkEngineColdCompute(b *testing.B) {
	e, err := New(Options{MemEntries: 4096})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Do(ctx, benchTask{hash: fmt.Sprintf("cold-%d", i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineWarmMemory measures the repeated-query fast path: the
// same identity every iteration, replayed from the memory tier.
func BenchmarkEngineWarmMemory(b *testing.B) {
	e, err := New(Options{MemEntries: 16})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	task := benchTask{hash: "warm"}
	if _, err := e.Do(ctx, task); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := e.Do(ctx, task)
		if err != nil {
			b.Fatal(err)
		}
		if r.Source != SourceMemory {
			b.Fatalf("source %q, want memory hit", r.Source)
		}
	}
}

// BenchmarkEngineDiskHit measures the restart path: a one-entry memory
// tier and two alternating identities force every Do through the
// content-addressed disk store.
func BenchmarkEngineDiskHit(b *testing.B) {
	e, err := New(Options{MemEntries: 1, Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	tasks := []benchTask{{hash: "disk-a"}, {hash: "disk-b"}}
	for _, t := range tasks {
		if _, err := e.Do(ctx, t); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := e.Do(ctx, tasks[i%2])
		if err != nil {
			b.Fatal(err)
		}
		if r.Source == SourceCompute {
			b.Fatal("disk-hit bench recomputed")
		}
	}
}

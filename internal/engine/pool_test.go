package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for " + what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTieredPoolInteractiveNeverStarved saturates the batch tier (its
// one worker busy, its backlog full) and checks interactive work still
// runs — the scheduling property the service's latency guarantees rest
// on.
func TestTieredPoolInteractiveNeverStarved(t *testing.T) {
	p := NewTieredPool(1, 1, 4, 4)
	defer p.Close()

	gate := make(chan struct{})
	defer close(gate)
	if err := p.SubmitTier(TierBatch, func(context.Context) { <-gate }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "batch worker busy", func() bool { return p.RunningTier(TierBatch) == 1 })
	for i := 0; i < 4; i++ {
		if err := p.SubmitTier(TierBatch, func(context.Context) {}); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan struct{})
	if err := p.SubmitTier(TierInteractive, func(context.Context) { close(done) }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("interactive work starved behind a saturated batch tier")
	}
}

// TestTieredPoolBatchConcurrencyCap verifies batch work never runs on
// more than batchWorkers workers even while interactive workers idle.
func TestTieredPoolBatchConcurrencyCap(t *testing.T) {
	p := NewTieredPool(3, 1, 8, 8)
	defer p.Close()

	gate := make(chan struct{})
	defer close(gate)
	var peak atomic.Int64
	for i := 0; i < 5; i++ {
		err := p.SubmitTier(TierBatch, func(context.Context) {
			if n := p.RunningTier(TierBatch); n > peak.Load() {
				peak.Store(n)
			}
			<-gate
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "one batch item running", func() bool { return p.RunningTier(TierBatch) == 1 })
	// Give the (should-be-idle) interactive workers a chance to misbehave.
	time.Sleep(50 * time.Millisecond)
	if n := peak.Load(); n > 1 {
		t.Fatalf("batch concurrency peaked at %d, cap is 1", n)
	}
	if q := p.QueuedTier(TierBatch); q != 4 {
		t.Fatalf("batch backlog %d, want 4", q)
	}
}

// TestSubmitTierFullPerTier verifies the tiers reject independently: a
// full batch backlog must not refuse interactive submissions.
func TestSubmitTierFullPerTier(t *testing.T) {
	p := NewTieredPool(1, 1, 4, 1)
	defer p.Close()

	gate := make(chan struct{})
	defer close(gate)
	if err := p.SubmitTier(TierBatch, func(context.Context) { <-gate }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "batch worker busy", func() bool { return p.RunningTier(TierBatch) == 1 })
	if err := p.SubmitTier(TierBatch, func(context.Context) {}); err != nil {
		t.Fatal(err)
	}
	if err := p.SubmitTier(TierBatch, func(context.Context) {}); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("overfull batch submit: %v, want ErrPoolFull", err)
	}
	if err := p.SubmitTier(TierInteractive, func(context.Context) {}); err != nil {
		t.Fatalf("interactive submit with full batch backlog: %v", err)
	}
}

func TestPoolStatsAndTierNames(t *testing.T) {
	p := NewTieredPool(1, 1, 4, 4)
	defer p.Close()
	gate := make(chan struct{})
	defer close(gate)
	p.SubmitTier(TierBatch, func(context.Context) { <-gate })
	waitFor(t, "batch running", func() bool { return p.Stats().Batch.Running == 1 })
	p.SubmitTier(TierBatch, func(context.Context) { <-gate })
	st := p.Stats()
	if st.Batch.Queued != 1 || st.Batch.Running != 1 {
		t.Fatalf("batch stats %+v, want queued 1 running 1", st.Batch)
	}
	if TierInteractive.String() != "interactive" || TierBatch.String() != "batch" {
		t.Fatal("tier names drifted")
	}
}

// TestTieredPoolDrain covers Drain across both tiers.
func TestTieredPoolDrain(t *testing.T) {
	p := NewTieredPool(1, 1, 8, 8)
	var done atomic.Int64
	for i := 0; i < 3; i++ {
		if err := p.SubmitTier(TierBatch, func(context.Context) { done.Add(1) }); err != nil {
			t.Fatal(err)
		}
		if err := p.SubmitTier(TierInteractive, func(context.Context) { done.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if n := done.Load(); n != 6 {
		t.Fatalf("drained with %d/6 items done", n)
	}
	if err := p.SubmitTier(TierInteractive, func(context.Context) {}); !errors.Is(err, ErrPoolDraining) {
		t.Fatalf("submit while draining: %v, want ErrPoolDraining", err)
	}
	p.Close()
}

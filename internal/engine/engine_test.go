package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testTask is a configurable task for the engine tests: its identity is
// (kind, hash) and its Run reports into runs and can block on gate.
type testTask struct {
	kind string
	hash string
	runs *atomic.Int64
	gate chan struct{} // if non-nil, Run blocks until closed
	err  error
	val  any
}

func (t testTask) Kind() string          { return t.kind }
func (t testTask) CanonicalHash() string { return t.hash }
func (t testTask) Run(ctx context.Context) (any, error) {
	if t.runs != nil {
		t.runs.Add(1)
	}
	if t.gate != nil {
		<-t.gate
	}
	if t.err != nil {
		return nil, t.err
	}
	if t.val != nil {
		return t.val, nil
	}
	return map[string]string{"kind": t.kind, "hash": t.hash}, nil
}

func newTestEngine(t *testing.T, dir string) *Engine {
	t.Helper()
	e, err := New(Options{MemEntries: 16, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestDoTiersAndStats(t *testing.T) {
	e := newTestEngine(t, "")
	var runs atomic.Int64
	task := testTask{kind: "demo", hash: "abc", runs: &runs}

	r1, err := e.Do(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Source != SourceCompute {
		t.Fatalf("first Do source %q, want %q", r1.Source, SourceCompute)
	}
	r2, err := e.Do(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Source != SourceMemory {
		t.Fatalf("second Do source %q, want %q", r2.Source, SourceMemory)
	}
	if string(r1.Bytes) != string(r2.Bytes) {
		t.Fatal("memory tier replayed different bytes")
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("task ran %d times, want 1", n)
	}
	st := e.Stats()["demo"]
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats %+v, want 1 miss + 1 hit", st)
	}
	var v map[string]string
	if err := r2.Decode(&v); err != nil || v["hash"] != "abc" {
		t.Fatalf("Decode: %v %v", v, err)
	}
}

// TestSingleflight is the acceptance test: N concurrent identical tasks
// must execute the underlying computation exactly once. Run under -race
// in CI.
func TestSingleflight(t *testing.T) {
	e := newTestEngine(t, t.TempDir())
	var runs atomic.Int64
	gate := make(chan struct{})
	task := testTask{kind: "sf", hash: "one", runs: &runs, gate: gate}

	const callers = 16
	var wg sync.WaitGroup
	results := make([]Result, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = e.Do(context.Background(), task)
		}(i)
	}
	// Let every caller reach the engine while the leader blocks, then
	// release the computation.
	deadline := time.Now().Add(5 * time.Second)
	for runs.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never started")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()

	if n := runs.Load(); n != 1 {
		t.Fatalf("concurrent identical tasks ran the computation %d times, want exactly 1", n)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if string(results[i].Bytes) != string(results[0].Bytes) {
			t.Fatalf("caller %d got different bytes", i)
		}
	}
	st := e.Stats()["sf"]
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (stats %+v)", st.Misses, st)
	}
	if st.InflightWaits == 0 {
		t.Fatalf("no inflight waits recorded (stats %+v)", st)
	}
}

// TestDiskTierSurvivesRestart: a second engine over the same directory
// must serve previously computed results from the disk tier without
// recomputing, and promote them into its memory tier.
func TestDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	task := testTask{kind: "persist", hash: "deadbeef", runs: &runs, val: []int{1, 2, 3}}

	e1 := newTestEngine(t, dir)
	r1, err := e1.Do(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Source != SourceCompute {
		t.Fatalf("source %q, want compute", r1.Source)
	}
	if _, err := os.Stat(filepath.Join(dir, "persist", "deadbeef.json")); err != nil {
		t.Fatalf("disk entry not written: %v", err)
	}

	e2 := newTestEngine(t, dir) // "restart"
	r2, err := e2.Do(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Source != SourceDisk {
		t.Fatalf("post-restart source %q, want %q", r2.Source, SourceDisk)
	}
	if string(r2.Bytes) != string(r1.Bytes) {
		t.Fatal("disk tier replayed different bytes")
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("task recomputed after restart (%d runs)", n)
	}
	r3, _ := e2.Do(context.Background(), task)
	if r3.Source != SourceMemory {
		t.Fatalf("disk hit not promoted to memory (source %q)", r3.Source)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	e := newTestEngine(t, t.TempDir())
	var runs atomic.Int64
	bad := testTask{kind: "err", hash: "x", runs: &runs, err: errors.New("boom")}
	for i := 0; i < 2; i++ {
		if _, err := e.Do(context.Background(), bad); err == nil {
			t.Fatal("want error")
		}
	}
	if n := runs.Load(); n != 2 {
		t.Fatalf("failed task ran %d times, want 2 (errors must not be cached)", n)
	}
	if st := e.Stats()["err"]; st.Errors != 2 {
		t.Fatalf("stats %+v, want 2 errors", st)
	}
	if _, err := os.Stat(filepath.Join(e.disk.dir, "err")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("error result reached the disk tier: %v", err)
	}
}

func TestMemLRUEviction(t *testing.T) {
	c := newMemLRU(2)
	c.put("a", []byte("1"))
	c.put("b", []byte("2"))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	c.put("c", []byte("3")) // evicts b (a was just used)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived")
	}
	st := c.stats()
	if st.Evicted != 1 || st.Entries != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPoolLifecycle(t *testing.T) {
	p := NewPool(2, 8)
	var done atomic.Int64
	for i := 0; i < 5; i++ {
		if err := p.Submit(func(context.Context) { done.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if n := done.Load(); n != 5 {
		t.Fatalf("drained with %d/5 items done", n)
	}
	if err := p.Submit(func(context.Context) {}); !errors.Is(err, ErrPoolDraining) {
		t.Fatalf("submit while draining: %v, want ErrPoolDraining", err)
	}
	p.Close()
}

func TestPoolQueueFull(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	gate := make(chan struct{})
	defer close(gate)
	// Occupy the worker, then fill the one-slot backlog.
	if err := p.Submit(func(context.Context) { <-gate }); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Running() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started")
		}
		time.Sleep(time.Millisecond)
	}
	if err := p.Submit(func(context.Context) {}); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(func(context.Context) {}); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("overfull submit: %v, want ErrPoolFull", err)
	}
}

func TestRegistryAndBatch(t *testing.T) {
	kind := fmt.Sprintf("test-batch-%d", os.Getpid())
	RegisterKind(kind, func(params json.RawMessage) (Task, error) {
		var p struct {
			Hash string `json:"hash"`
		}
		dec := json.NewDecoder(bytes.NewReader(params))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&p); err != nil {
			return nil, err
		}
		if p.Hash == "" {
			p.Hash = "default"
		}
		return testTask{kind: kind, hash: p.Hash}, nil
	})

	if _, err := DecodeTask("no-such-kind", nil); err == nil {
		t.Fatal("unknown kind must error")
	}

	e := newTestEngine(t, "")
	items := []BatchItem{
		{Kind: kind, Params: json.RawMessage(`{"hash":"a"}`)},
		{Kind: kind, Params: json.RawMessage(`{"hash":"a"}`)}, // dedups onto the first
		{Kind: kind}, // empty params -> defaults
		{Kind: "no-such-kind"},
		{Kind: kind, Params: json.RawMessage(`{"bogus":1}`)}, // unknown field
	}
	out := RunBatch(context.Background(), e, items, 2)
	if len(out) != len(items) {
		t.Fatalf("got %d results, want %d", len(out), len(items))
	}
	if out[0].Error != "" || out[1].Error != "" || out[2].Error != "" {
		t.Fatalf("unexpected errors: %+v", out[:3])
	}
	if out[0].Hash != out[1].Hash || string(out[0].Value) != string(out[1].Value) {
		t.Fatal("identical batch items must share hash and bytes")
	}
	if out[3].Error == "" || out[4].Error == "" {
		t.Fatalf("bad items must carry per-item errors: %+v", out[3:])
	}
	st := e.Stats()[kind]
	if st.Misses != 2 { // "a" once, "default" once
		t.Fatalf("batch stats %+v, want 2 misses", st)
	}
}

package population

// Edge cases the incremental grid walk must preserve from the frozen
// prober: saturated pfail (full-population draw), vanishing pfail
// (empty draw), populations whose severities only activate at the very
// bottom of the grid, and independence of the per-die steps from the
// scheme evaluation order.

import (
	"testing"

	"vccmin/internal/sim"
)

// saturatedSpec drives the floor pfail to its clamp at 1 for wafer
// corner dies: a huge nominal pfail, negligible random variation, and
// a radial gradient that pushes corner multipliers above 1, so the
// draw must take the full-population path.
func saturatedSpec() FleetSpec {
	spec := FleetSpec{Seed: 11}.WithDefaults()
	spec.Model.PfailAtVccMin = 0.99
	spec.Variation = Variation{WaferSigma: 1e-12, Gradient: 1, DieSigma: 1e-12}
	return spec
}

func TestWalkSaturatedPfailFullDraw(t *testing.T) {
	spec := saturatedSpec()
	grid := spec.Grid()
	p := newProber(spec)
	steps := make([]int, len(spec.Schemes))
	for _, d := range []int{0, spec.DiesPerWafer - 1} { // wafer corners
		p.draw(d)
		if p.pflr < 1 {
			t.Fatalf("die %d: floor pfail %v, want saturated (>= 1)", d, p.pflr)
		}
		if got, want := len(p.flt), spec.Geom.TotalCells(); got != want {
			t.Fatalf("die %d: drew %d faults, want the full population %d", d, got, want)
		}
		p.gridSteps(grid, steps)
		for k, scheme := range spec.Schemes {
			if steps[k] != -1 {
				t.Fatalf("die %d scheme %v: step %d, want -1 (every cell faulty near nominal)", d, scheme, steps[k])
			}
		}
	}
}

func TestWalkZeroPfailEmptyDraw(t *testing.T) {
	spec := FleetSpec{Seed: 3, Schemes: allSchemes}.WithDefaults()
	grid := spec.Grid()
	p := newProber(spec)
	p.draw(0)
	// Force the degenerate multiplier-underflow case: an effective
	// floor pfail of zero means draw leaves the population empty and
	// every voltage sees the fault-free cache.
	p.mult = 0
	p.pflr = 0
	p.flt = p.flt[:0]
	steps := make([]int, len(spec.Schemes))
	p.gridSteps(grid, steps)
	last := len(grid) - 1
	for k, scheme := range spec.Schemes {
		if steps[k] != last {
			t.Fatalf("scheme %v: step %d, want %d (fault-free die reaches the floor)", scheme, steps[k], last)
		}
		if c := p.criticalCount(scheme); c != 0 {
			t.Fatalf("scheme %v: critical count %d, want 0 on an empty population", scheme, c)
		}
		if est, truth := p.estimateAndTruth(scheme, 4); est != spec.Model.VFloor || truth != spec.Model.VFloor {
			t.Fatalf("scheme %v: estimate (%v,%v), want the floor voltage", scheme, est, truth)
		}
	}
}

func TestWalkSeveritiesActivateOnlyAtFloor(t *testing.T) {
	spec := FleetSpec{Seed: 5, Schemes: []sim.Scheme{sim.Baseline, sim.BlockDisable}}.WithDefaults()
	grid := spec.Grid()
	p := newProber(spec)
	p.draw(0)
	// A multiplier so low that every grid ratio except the floor's own
	// (which is exactly 1 by construction) stays below the minimum
	// severity: the whole population activates only at the last grid
	// index. pfail decays by e^(span/efold) ≈ e^9.2 per full grid, so
	// with all severities near 1 even the second-to-last ratio is
	// orders of magnitude too small.
	p.flt = append(p.flt[:0],
		latentFault{sev: 0.999, cell: 1},
		latentFault{sev: 0.9995, cell: 7},
	)
	steps := make([]int, len(spec.Schemes))
	p.gridSteps(grid, steps)
	last := len(grid) - 1
	// Baseline tolerates no fault: it passes every step except the
	// floor, where both faults finally activate.
	if steps[0] != last-1 {
		t.Fatalf("baseline: step %d, want %d (faults activate only at the floor)", steps[0], last-1)
	}
	// Two faulty cells cannot breach the block-disable capacity floor.
	if steps[1] != last {
		t.Fatalf("block-disable: step %d, want %d", steps[1], last)
	}
}

// TestWalkStepsIndependentOfSchemeOrder re-runs the walk under
// permuted scheme lists: a die's step under a scheme must not depend
// on which other schemes share the walk or their order.
func TestWalkStepsIndependentOfSchemeOrder(t *testing.T) {
	orders := [][]sim.Scheme{
		{sim.Baseline, sim.BlockDisable, sim.WordDisable, sim.IncrementalWordDisable, sim.BitFix},
		{sim.BitFix, sim.IncrementalWordDisable, sim.WordDisable, sim.BlockDisable, sim.Baseline},
		{sim.WordDisable},
		{sim.IncrementalWordDisable, sim.Baseline},
	}
	spec := FleetSpec{Seed: 9, Dies: 48, Variation: Variation{WaferSigma: 2, Gradient: 0.5, DieSigma: 1}}.WithDefaults()
	grid := spec.Grid()
	// Reference: each scheme measured alone.
	want := map[sim.Scheme][]int{}
	for _, scheme := range allSchemes {
		solo := spec
		solo.Schemes = []sim.Scheme{scheme}
		p := newProber(solo)
		steps := make([]int, 1)
		for d := 0; d < spec.Dies; d++ {
			p.draw(d)
			p.gridSteps(grid, steps)
			want[scheme] = append(want[scheme], steps[0])
		}
	}
	for _, order := range orders {
		mixed := spec
		mixed.Schemes = order
		p := newProber(mixed)
		steps := make([]int, len(order))
		for d := 0; d < spec.Dies; d++ {
			p.draw(d)
			p.gridSteps(grid, steps)
			for k, scheme := range order {
				if steps[k] != want[scheme][d] {
					t.Fatalf("die %d scheme %v in order %v: step %d, want %d",
						d, scheme, order, steps[k], want[scheme][d])
				}
			}
		}
	}
}

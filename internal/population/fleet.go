package population

import (
	"math"
	"sync"
	"sync/atomic"
)

// DieResult is one die's fleet row: identity, wafer position, the
// drawn multiplier and the per-scheme Vcc-min grid step. Rows are
// die-indexed, so a fleet's row slice is bit-identical at every worker
// count.
type DieResult struct {
	Die   int `json:"die"`
	Wafer int `json:"wafer"`
	X     int `json:"x"`
	Y     int `json:"y"`
	// Multiplier is the die's pfail multiplier (1 = the nominal model).
	Multiplier float64 `json:"multiplier"`
	// Steps[k] is the deepest passing grid index under spec scheme k:
	// -1 = fails at the nominal Vcc-min, len(grid)-1 = reaches the
	// voltage floor. The die's Vcc-min under scheme k is grid[Steps[k]].
	Steps []int `json:"steps"`
}

// WaferSummary aggregates one wafer under one scheme.
type WaferSummary struct {
	Wafer int `json:"wafer"`
	Dies  int `json:"dies"`
	// MeanMultiplier is the wafer's mean pfail multiplier.
	MeanMultiplier float64 `json:"mean_multiplier"`
	// MeanVccMin averages Vcc-min over the wafer's dies that pass at
	// nominal (0 when none do).
	MeanVccMin float64 `json:"mean_vccmin"`
	// YieldAtFloor is the fraction of the wafer's dies that operate
	// all the way down at the voltage floor.
	YieldAtFloor float64 `json:"yield_at_floor"`
}

// SchemeYield is one scheme's fleet-level distribution: the Vcc-min
// histogram over the voltage grid, the yield-versus-voltage curve,
// distribution quantiles and per-wafer summaries.
type SchemeYield struct {
	Scheme string `json:"scheme"`
	// Hist[i] counts dies whose Vcc-min is exactly grid voltage i.
	Hist []int `json:"hist"`
	// FailedAtNominal counts dies unusable even at the nominal
	// Vcc-min (grid index 0) — yield loss before any undervolting.
	FailedAtNominal int `json:"failed_at_nominal"`
	// ReachFloor counts dies that operate at the voltage floor.
	ReachFloor int `json:"reach_floor"`
	// Yield[i] is the fraction of the fleet operable at grid voltage
	// i — the yield-versus-voltage curve.
	Yield []float64 `json:"yield"`
	// P50/P90/P99 are Vcc-min distribution quantiles over the dies
	// that pass at nominal: the grid voltage below which the given
	// fraction of passing dies still operates.
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	// Wafers summarizes each wafer under this scheme.
	Wafers []WaferSummary `json:"wafers"`
}

// FleetResult is one fleet measurement: the voltage grid, the
// die-indexed rows and the per-scheme distributions.
type FleetResult struct {
	Spec FleetSpec `json:"-"`
	// Grid is the descending voltage grid the steps index into.
	Grid []float64 `json:"grid"`
	// Dies holds one row per die, in die order.
	Dies []DieResult `json:"dies"`
	// Schemes holds one distribution per spec scheme, in spec order.
	Schemes []SchemeYield `json:"schemes"`
}

// fleetChunk sizes the unit of work the fan-out hands to a worker; big
// enough to amortize the atomic counter, small enough to balance tail
// latency.
const fleetChunk = 64

// RunFleet measures every die of the fleet: each die draws its latent
// fault population from its own derived seed and resolves its Vcc-min
// grid step under every spec scheme in one incremental grid walk. Dies fan out over spec.Workers
// goroutines into die-indexed slots and are reduced serially, so the
// result is bit-identical at every worker count (the PR 3 Monte Carlo
// executor's contract). The spec is defaulted and validated here, so
// callers may pass a sparse one.
func RunFleet(spec FleetSpec) (*FleetResult, error) {
	spec = spec.WithDefaults()
	if err := spec.Check(); err != nil {
		return nil, err
	}
	grid := spec.Grid()
	dies := make([]DieResult, spec.Dies)
	// One backing array for every die's Steps slice: slot d owns
	// [d*nS, (d+1)*nS), disjoint across workers, so the fan-out stays
	// race-free and the per-die allocation disappears.
	nS := len(spec.Schemes)
	stepsBacking := make([]int, spec.Dies*nS)
	workers := defaultWorkers(spec.Workers)
	if workers > spec.Dies {
		workers = spec.Dies
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := newProber(spec)
			for {
				start := int(next.Add(fleetChunk)) - fleetChunk
				if start >= spec.Dies {
					return
				}
				end := start + fleetChunk
				if end > spec.Dies {
					end = spec.Dies
				}
				for d := start; d < end; d++ {
					p.draw(d)
					x, y := spec.DiePosition(d % spec.DiesPerWafer)
					steps := stepsBacking[d*nS : (d+1)*nS : (d+1)*nS]
					p.gridSteps(grid, steps)
					dies[d] = DieResult{
						Die:        d,
						Wafer:      d / spec.DiesPerWafer,
						X:          x,
						Y:          y,
						Multiplier: p.mult,
						Steps:      steps,
					}
				}
			}
		}()
	}
	wg.Wait()

	res := &FleetResult{Spec: spec, Grid: grid, Dies: dies}
	for k, scheme := range spec.Schemes {
		res.Schemes = append(res.Schemes, summarizeScheme(spec, grid, dies, k, scheme.String()))
	}
	return res, nil
}

// summarizeScheme reduces the die rows into one scheme's distribution.
// The reduction is serial and in die order, so it inherits the rows'
// bit-identity.
func summarizeScheme(spec FleetSpec, grid []float64, dies []DieResult, k int, name string) SchemeYield {
	y := SchemeYield{
		Scheme: name,
		Hist:   make([]int, len(grid)),
		Yield:  make([]float64, len(grid)),
	}
	wafers := spec.Wafers()
	type wacc struct {
		dies, pass, floor int
		multSum, vSum     float64
	}
	acc := make([]wacc, wafers)
	for _, d := range dies {
		a := &acc[d.Wafer]
		a.dies++
		a.multSum += d.Multiplier
		step := d.Steps[k]
		if step < 0 {
			y.FailedAtNominal++
			continue
		}
		y.Hist[step]++
		a.pass++
		a.vSum += grid[step]
		if step == len(grid)-1 {
			y.ReachFloor++
			a.floor++
		}
	}
	// Yield at grid voltage i = dies whose deepest passing step is at
	// least i — a suffix sum of the histogram.
	operable := 0
	for i := len(grid) - 1; i >= 0; i-- {
		operable += y.Hist[i]
		y.Yield[i] = float64(operable) / float64(len(dies))
	}
	passing := len(dies) - y.FailedAtNominal
	y.P50 = quantileVoltage(grid, y.Hist, passing, 0.50)
	y.P90 = quantileVoltage(grid, y.Hist, passing, 0.90)
	y.P99 = quantileVoltage(grid, y.Hist, passing, 0.99)
	for w := range acc {
		ws := WaferSummary{Wafer: w, Dies: acc[w].dies}
		if acc[w].dies > 0 {
			ws.MeanMultiplier = acc[w].multSum / float64(acc[w].dies)
			ws.YieldAtFloor = float64(acc[w].floor) / float64(acc[w].dies)
		}
		if acc[w].pass > 0 {
			ws.MeanVccMin = acc[w].vSum / float64(acc[w].pass)
		}
		y.Wafers = append(y.Wafers, ws)
	}
	return y
}

// quantileVoltage returns the lowest grid voltage V such that at least
// fraction q of the passing dies have Vcc-min at or below V — reading
// the distribution from its deep (low-voltage) end upward.
func quantileVoltage(grid []float64, hist []int, passing int, q float64) float64 {
	if passing <= 0 {
		return math.NaN()
	}
	need := q * float64(passing)
	cum := 0
	for i := len(grid) - 1; i >= 0; i-- {
		cum += hist[i]
		if float64(cum) >= need {
			return grid[i]
		}
	}
	return grid[0]
}

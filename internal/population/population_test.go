package population

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"vccmin/internal/sim"
)

// TestFleetWorkerInvariance is the determinism contract: the same spec
// and seed produce byte-identical fleet rows and summaries at workers=1
// and workers=8.
func TestFleetWorkerInvariance(t *testing.T) {
	base := FleetSpec{Dies: 500, Seed: 42}

	one := base
	one.Workers = 1
	eight := base
	eight.Workers = 8

	a, err := RunFleet(one)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleet(eight)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("fleet result differs between workers=1 and workers=8:\n%s\nvs\n%s", aj, bj)
	}
}

func TestFleetSpecValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*FleetSpec)
	}{
		{"negative dies", func(s *FleetSpec) { s.Dies = -5; s.DiesPerWafer = 4 }},
		{"vsteps below 2", func(s *FleetSpec) { s.VSteps = 1 }},
		{"capacity floor above 1", func(s *FleetSpec) { s.CapacityFloor = 1.5 }},
		{"negative wafer sigma", func(s *FleetSpec) { s.Variation.WaferSigma = -0.1 }},
		{"negative gradient", func(s *FleetSpec) { s.Variation.Gradient = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := FleetSpec{Dies: 10}.WithDefaults()
			tc.mutate(&spec)
			if err := spec.Check(); err == nil {
				t.Fatalf("Check accepted invalid spec %+v", spec)
			}
			if _, err := RunFleet(spec); err == nil {
				t.Fatal("RunFleet accepted invalid spec")
			}
		})
	}
}

// TestFleetSummaryConsistency cross-checks the reduction: histogram
// mass, yield-curve endpoints and wafer partitions must all agree with
// the die rows.
func TestFleetSummaryConsistency(t *testing.T) {
	spec := FleetSpec{Dies: 300, DiesPerWafer: 49, Seed: 9,
		Schemes: []sim.Scheme{sim.BlockDisable, sim.WordDisable, sim.Baseline}}
	res, err := RunFleet(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dies) != 300 {
		t.Fatalf("want 300 die rows, got %d", len(res.Dies))
	}
	if got := res.Spec.Wafers(); got != 7 {
		t.Fatalf("300 dies at 49/wafer should span 7 wafers, got %d", got)
	}
	for k, sy := range res.Schemes {
		mass := 0
		for _, h := range sy.Hist {
			mass += h
		}
		if mass+sy.FailedAtNominal != len(res.Dies) {
			t.Errorf("scheme %s: hist mass %d + failed %d != %d dies",
				sy.Scheme, mass, sy.FailedAtNominal, len(res.Dies))
		}
		wantYield0 := float64(len(res.Dies)-sy.FailedAtNominal) / float64(len(res.Dies))
		if math.Abs(sy.Yield[0]-wantYield0) > 1e-12 {
			t.Errorf("scheme %s: yield at nominal %v, want %v", sy.Scheme, sy.Yield[0], wantYield0)
		}
		last := len(sy.Yield) - 1
		if got := float64(sy.ReachFloor) / float64(len(res.Dies)); math.Abs(sy.Yield[last]-got) > 1e-12 {
			t.Errorf("scheme %s: yield at floor %v, want %v", sy.Scheme, sy.Yield[last], got)
		}
		for i := 1; i < len(sy.Yield); i++ {
			if sy.Yield[i] > sy.Yield[i-1]+1e-12 {
				t.Errorf("scheme %s: yield curve rises at step %d (%v -> %v)",
					sy.Scheme, i, sy.Yield[i-1], sy.Yield[i])
			}
		}
		waferDies := 0
		for _, ws := range sy.Wafers {
			waferDies += ws.Dies
		}
		if waferDies != len(res.Dies) {
			t.Errorf("scheme %s: wafer summaries cover %d dies, want %d", sy.Scheme, waferDies, len(res.Dies))
		}
		// Baseline can never out-survive a repair scheme on the same die.
		if sy.Scheme == "baseline" {
			for _, d := range res.Dies {
				if d.Steps[k] > d.Steps[0] {
					t.Fatalf("die %d: baseline step %d deeper than block-disable %d",
						d.Die, d.Steps[k], d.Steps[0])
				}
			}
		}
	}
}

// TestDieMultiplierDeterministic pins that a die's multiplier depends
// only on (seed, die index), not on how much of the fleet is measured.
func TestDieMultiplierDeterministic(t *testing.T) {
	a := FleetSpec{Dies: 10, Seed: 7}.WithDefaults()
	b := FleetSpec{Dies: 100000, Seed: 7}.WithDefaults()
	for d := 0; d < 10; d++ {
		if ma, mb := a.DieMultiplier(d), b.DieMultiplier(d); ma != mb {
			t.Fatalf("die %d multiplier changed with fleet size: %v vs %v", d, ma, mb)
		}
	}
	if m0, m1 := a.DieMultiplier(0), a.DieMultiplier(1); m0 == m1 {
		t.Fatal("distinct dies drew identical multipliers")
	}
	if a.DieMultiplier(3) == (FleetSpec{Dies: 10, Seed: 8}).WithDefaults().DieMultiplier(3) {
		t.Fatal("changing the seed did not change the multiplier")
	}
}

// TestFleetGrid pins the grid endpoints and monotonicity.
func TestFleetGrid(t *testing.T) {
	spec := FleetSpec{}.WithDefaults()
	g := spec.Grid()
	if g[0] != spec.Model.VccMin {
		t.Fatalf("grid[0] = %v, want VccMin %v", g[0], spec.Model.VccMin)
	}
	if g[len(g)-1] != spec.Model.VFloor {
		t.Fatalf("grid end = %v, want VFloor %v", g[len(g)-1], spec.Model.VFloor)
	}
	for i := 1; i < len(g); i++ {
		if g[i] >= g[i-1] {
			t.Fatalf("grid not strictly descending at %d", i)
		}
	}
}

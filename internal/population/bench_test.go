package population

import (
	"testing"

	"vccmin/internal/sim"
)

// BenchmarkFleetDieVccmin measures one die end to end: multiplier +
// fault-population draw, then resolving the Vcc-min grid step under
// the two default schemes in one incremental grid walk. This is the
// fleet sweep's unit of work.
func BenchmarkFleetDieVccmin(b *testing.B) {
	spec := FleetSpec{Seed: 7}.WithDefaults()
	grid := spec.Grid()
	p := newProber(spec)
	steps := make([]int, len(spec.Schemes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := i % 1024
		p.draw(d)
		p.gridSteps(grid, steps)
	}
}

// BenchmarkFleetSweepSmall measures a 512-die fleet sweep single
// threaded, including the per-scheme reductions — the stable (no
// scheduler noise) smoke number for the bench-regression gate.
func BenchmarkFleetSweepSmall(b *testing.B) {
	spec := FleetSpec{Dies: 512, Seed: 7, Workers: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunFleet(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictDie measures one die's prediction: bracket checks
// plus a shared 40-deep bisection yielding the K-budget estimate and
// the ground truth.
func BenchmarkPredictDie(b *testing.B) {
	spec := FleetSpec{Seed: 7}.WithDefaults()
	p := newProber(spec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.draw(i % 1024)
		_, _ = p.estimateAndTruth(sim.BlockDisable, 6)
	}
}

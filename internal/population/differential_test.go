package population

// The frozen pre-campaign prober, kept verbatim as the differential
// oracle for the incremental grid walk (the PR 7 / PR 9 pattern, run
// under `make diff-race`): a full O(F) fault-map rebuild at every
// probed voltage, bisected independently per scheme, with the
// per-scheme predicates evaluated by the core package's whole-cache
// walks. The optimized prober must match it decision-for-decision —
// same steps, same thresholds, same estimates — over randomized fleet
// specs covering every scheme, odd-way geometries, degenerate
// multipliers and saturated pfail.

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"vccmin/internal/core"
	"vccmin/internal/faults"
	"vccmin/internal/geom"
	"vccmin/internal/sim"
)

// oracleProber is the frozen prober: one die at a time, rebuilding the
// active fault set from scratch at every probed voltage.
type oracleProber struct {
	spec FleetSpec

	cells []int32
	sev   []float64
	mult  float64
	pflr  float64

	m     *faults.Map
	dirty []int32
}

func newOracleProber(spec FleetSpec) *oracleProber {
	return &oracleProber{
		spec: spec,
		m: &faults.Map{
			Geom:     spec.Geom,
			WordBits: 32,
			Blocks:   make([]faults.BlockFaults, spec.Geom.Blocks()),
		},
	}
}

func (p *oracleProber) draw(d int) {
	p.mult = p.spec.DieMultiplier(d)
	p.pflr = p.spec.pfailAt(p.mult, p.spec.Model.VFloor)
	p.cells = p.cells[:0]
	p.sev = p.sev[:0]
	rng := rand.New(rand.NewSource(faults.DeriveSeed(p.spec.Seed, "fleet-die", strconv.Itoa(d))))
	rng.NormFloat64() // the die-noise draw consumed by DieMultiplier
	if p.pflr <= 0 {
		return
	}
	total := p.spec.Geom.TotalCells()
	if p.pflr >= 1 {
		for c := 0; c < total; c++ {
			p.cells = append(p.cells, int32(c))
			p.sev = append(p.sev, rng.Float64())
		}
		return
	}
	logQ := math.Log1p(-p.pflr)
	cell := -1
	for {
		u := rng.Float64()
		if u == 0 {
			u = math.SmallestNonzeroFloat64
		}
		cell += 1 + int(math.Log(u)/logQ)
		if cell >= total || cell < 0 {
			return
		}
		p.cells = append(p.cells, int32(cell))
		p.sev = append(p.sev, rng.Float64())
	}
}

func (p *oracleProber) build(v float64) {
	for _, b := range p.dirty {
		p.m.Blocks[b] = faults.BlockFaults{}
	}
	p.dirty = p.dirty[:0]
	p.m.Total = 0
	if p.pflr <= 0 {
		return
	}
	ratio := p.spec.pfailAt(p.mult, v) / p.pflr
	k := p.spec.Geom.CellsPerBlock()
	for i, c := range p.cells {
		if p.sev[i] <= ratio {
			p.m.AddFault(int(c))
			b := c / int32(k)
			if n := len(p.dirty); n == 0 || p.dirty[n-1] != b {
				p.dirty = append(p.dirty, b)
			}
		}
	}
}

func (p *oracleProber) passAt(scheme sim.Scheme, v float64) bool {
	p.build(v)
	switch scheme {
	case sim.Baseline:
		return p.m.Total == 0
	case sim.WordDisable:
		return core.EvaluateWordDisable(p.m, core.ReferenceWordDisable()).Fit
	case sim.BlockDisable:
		return p.m.CapacityFraction() >= p.spec.CapacityFloor
	case sim.IncrementalWordDisable:
		return core.EvaluateIncrementalWD(p.m, core.ReferenceWordDisable()).CapacityFraction() >= p.spec.CapacityFloor
	case sim.BitFix:
		return core.EvaluateBitFix(p.m, core.ReferenceBitFix()).Fit
	}
	return false
}

func (p *oracleProber) stepAt(scheme sim.Scheme, grid []float64) int {
	if !p.passAt(scheme, grid[0]) {
		return -1
	}
	last := len(grid) - 1
	if p.passAt(scheme, grid[last]) {
		return last
	}
	lo, hi := 0, last // pass at lo, fail at hi
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if p.passAt(scheme, grid[mid]) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

func (p *oracleProber) thresholdVoltage(scheme sim.Scheme, iters int) float64 {
	lo, hi := p.spec.Model.VFloor, p.spec.Model.VccMin
	if !p.passAt(scheme, hi) {
		return hi
	}
	if p.passAt(scheme, lo) {
		return lo
	}
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		if p.passAt(scheme, mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}

func (p *oracleProber) estimateAndTruth(scheme sim.Scheme, k int) (est, truth float64) {
	lo, hi := p.spec.Model.VFloor, p.spec.Model.VccMin
	if !p.passAt(scheme, hi) {
		return hi, hi
	}
	if p.passAt(scheme, lo) {
		return lo, lo
	}
	est = math.NaN()
	for i := 0; i < truthIters; i++ {
		if i == k {
			est = (lo + hi) / 2
		}
		mid := (lo + hi) / 2
		if p.passAt(scheme, mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	truth = (lo + hi) / 2
	if math.IsNaN(est) {
		est = truth
	}
	return est, truth
}

// allSchemes exercises every predicate the walk maintains.
var allSchemes = []sim.Scheme{
	sim.Baseline, sim.BlockDisable, sim.WordDisable,
	sim.IncrementalWordDisable, sim.BitFix,
}

// diffSpecs is the randomized fleet-spec battery both differential
// tests share: every scheme, several geometries (including odd ways,
// which leave the last way unpaired under incremental word-disable),
// wafer sigmas wide enough to reach pfail saturation, multipliers
// small enough to activate nothing, and varying grids and floors.
func diffSpecs(t *testing.T) []FleetSpec {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	var specs []FleetSpec
	geoms := []geom.Geometry{
		geom.MustNew(32*1024, 8, 64),
		geom.MustNew(16*1024, 4, 32),
		geom.MustNew(4*1024, 8, 128),
		geom.MustNew(3*1024, 3, 64), // odd ways: unpaired last way
		geom.MustNew(2*1024, 1, 64), // no pairs at all
	}
	for trial := 0; trial < 12; trial++ {
		spec := FleetSpec{
			Dies:          8 + rng.Intn(24),
			DiesPerWafer:  1 + rng.Intn(16),
			Geom:          geoms[trial%len(geoms)],
			Schemes:       allSchemes,
			VSteps:        2 + rng.Intn(40),
			CapacityFloor: 0.4 + 0.55*rng.Float64(),
			Seed:          rng.Int63(),
			Variation: Variation{
				// Wide sigmas push some dies past pfail saturation
				// (the full-population draw) and others to multipliers
				// so low no grid ratio reaches the minimum severity.
				WaferSigma: 0.2 + 4*rng.Float64(),
				Gradient:   0.1 + rng.Float64(),
				DieSigma:   0.1 + 2*rng.Float64(),
			},
		}
		spec = spec.WithDefaults()
		if err := spec.Check(); err != nil {
			t.Fatalf("trial %d: invalid spec: %v", trial, err)
		}
		specs = append(specs, spec)
	}
	return specs
}

// TestDifferentialProberWalk holds the incremental grid walk
// bit-identical to the frozen per-scheme bisection prober over the
// randomized spec battery.
func TestDifferentialProberWalk(t *testing.T) {
	for ti, spec := range diffSpecs(t) {
		grid := spec.Grid()
		p := newProber(spec)
		o := newOracleProber(spec)
		steps := make([]int, len(spec.Schemes))
		for d := 0; d < spec.Dies; d++ {
			p.draw(d)
			o.draw(d)
			if p.mult != o.mult || p.pflr != o.pflr {
				t.Fatalf("trial %d die %d: draw mismatch: mult %v vs %v, pflr %v vs %v",
					ti, d, p.mult, o.mult, p.pflr, o.pflr)
			}
			if len(p.flt) != len(o.cells) {
				t.Fatalf("trial %d die %d: population size %d vs %d", ti, d, len(p.flt), len(o.cells))
			}
			p.gridSteps(grid, steps)
			for k, scheme := range spec.Schemes {
				if want := o.stepAt(scheme, grid); steps[k] != want {
					t.Fatalf("trial %d die %d scheme %v: step %d, oracle %d (mult %v, faults %d)",
						ti, d, scheme, steps[k], want, p.mult, len(p.flt))
				}
			}
		}
	}
}

// TestDifferentialProberPredict holds the critical-count predictor —
// thresholdVoltage and the K-measurement estimate — bit-identical to
// the frozen rebuild-per-probe bisection.
func TestDifferentialProberPredict(t *testing.T) {
	for ti, spec := range diffSpecs(t) {
		p := newProber(spec)
		o := newOracleProber(spec)
		for d := 0; d < spec.Dies; d += 3 {
			p.draw(d)
			o.draw(d)
			for _, scheme := range spec.Schemes {
				k := 1 + (d+ti)%8
				est, truth := p.estimateAndTruth(scheme, k)
				oEst, oTruth := o.estimateAndTruth(scheme, k)
				if est != oEst || truth != oTruth {
					t.Fatalf("trial %d die %d scheme %v k %d: estimate (%v,%v), oracle (%v,%v)",
						ti, d, scheme, k, est, truth, oEst, oTruth)
				}
				if tv, want := p.thresholdVoltage(scheme, 17), o.thresholdVoltage(scheme, 17); tv != want {
					t.Fatalf("trial %d die %d scheme %v: threshold %v, oracle %v", ti, d, scheme, tv, want)
				}
			}
		}
	}
}

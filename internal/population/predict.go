package population

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"vccmin/internal/sim"
	"vccmin/internal/stats"
)

// PredictSpec configures a data-efficient Vcc-min prediction study: for
// Sample dies drawn evenly across the fleet, estimate each die's
// minimum operating voltage from K adaptive (voltage, pass/fail)
// measurements and compare against the die's bisected ground truth.
type PredictSpec struct {
	// Fleet is the die population the study samples; its Schemes field
	// is ignored in favor of Scheme below.
	Fleet FleetSpec
	// Scheme is the fault-tolerance scheme the die is certified under.
	// The zero value is sim.Baseline; the task layer defaults its
	// string form to block-disable before building a spec.
	Scheme sim.Scheme
	// K is the number of adaptive bisection measurements the predictor
	// may spend per die (after the two bracket checks at the nominal
	// Vcc-min and the floor). Default 6.
	K int
	// Sample is the number of dies sampled, evenly strided across the
	// fleet. Default 128, capped at the fleet size.
	Sample int
}

// Predictor defaults.
const (
	DefaultPredictK      = 6
	DefaultPredictSample = 128
	// truthIters is the bisection depth of the ground-truth threshold:
	// 40 halvings of the voltage bracket, far below float64 noise.
	truthIters = 40
)

// WithDefaults returns the spec with every zero field defaulted.
func (s PredictSpec) WithDefaults() PredictSpec {
	s.Fleet = s.Fleet.WithDefaults()
	if s.K <= 0 {
		s.K = DefaultPredictK
	}
	if s.Sample <= 0 {
		s.Sample = DefaultPredictSample
	}
	if s.Sample > s.Fleet.Dies {
		s.Sample = s.Fleet.Dies
	}
	return s
}

// Check validates a defaulted spec.
func (s PredictSpec) Check() error {
	if err := s.Fleet.Check(); err != nil {
		return err
	}
	switch {
	case s.K <= 0 || s.K > 60:
		return fmt.Errorf("population: predictor k %d out of [1,60]", s.K)
	case s.Sample <= 0:
		return fmt.Errorf("population: predictor sample must be positive, got %d", s.Sample)
	}
	return nil
}

// PredictResult reports the study's error distribution: how close a
// K-measurement estimate lands to the bisected ground truth, in volts.
type PredictResult struct {
	Spec PredictSpec `json:"-"`
	// Sampled is the number of dies measured.
	Sampled int `json:"sampled"`
	// MeanAbsError is the mean |estimate - truth| over sampled dies.
	MeanAbsError float64 `json:"mean_abs_error"`
	// P50/P90/P99/Max are quantiles of |estimate - truth|.
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
	// BracketBound is the analytic worst case (VccMin-VFloor)/2^(K+1):
	// after K halvings the estimate is the midpoint of a bracket of
	// width span/2^K that still contains the truth.
	BracketBound float64 `json:"bracket_bound"`
}

// RunPredict runs the prediction study. Each sampled die spends two
// bracket measurements (pass at the nominal Vcc-min? pass at the
// floor?) and then K bisection measurements; the estimate is the final
// bracket's midpoint and the truth is the same bisection carried to
// truthIters halvings. Dies fan out over Fleet.Workers goroutines into
// index-ordered slots, bit-identical at every worker count.
func RunPredict(spec PredictSpec) (*PredictResult, error) {
	spec = spec.WithDefaults()
	if err := spec.Check(); err != nil {
		return nil, err
	}
	errs := make([]float64, spec.Sample)
	workers := defaultWorkers(spec.Fleet.Workers)
	if workers > spec.Sample {
		workers = spec.Sample
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := newProber(spec.Fleet)
			for {
				j := int(next.Add(1)) - 1
				if j >= spec.Sample {
					return
				}
				// Evenly strided sample across the fleet, so the study
				// sees every wafer region, not just the first wafer.
				d := j * spec.Fleet.Dies / spec.Sample
				p.draw(d)
				est, truth := p.estimateAndTruth(spec.Scheme, spec.K)
				errs[j] = math.Abs(est - truth)
			}
		}()
	}
	wg.Wait()

	res := &PredictResult{
		Spec:         spec,
		Sampled:      spec.Sample,
		BracketBound: (spec.Fleet.Model.VccMin - spec.Fleet.Model.VFloor) / math.Pow(2, float64(spec.K)+1),
	}
	sum := 0.0
	for _, e := range errs {
		sum += e
	}
	res.MeanAbsError = sum / float64(len(errs))
	sorted := append([]float64(nil), errs...)
	sort.Float64s(sorted)
	res.P50 = stats.QuantileSorted(sorted, 0.50)
	res.P90 = stats.QuantileSorted(sorted, 0.90)
	res.P99 = stats.QuantileSorted(sorted, 0.99)
	res.Max = sorted[len(sorted)-1]
	return res, nil
}

// estimateAndTruth measures the drawn die once: the K-measurement
// estimate and the deep ground truth come from the same bisection
// trajectory, so the estimate's bracket always contains the truth and
// |est - truth| <= span/2^(K+1). One incremental walk resolves the
// scheme's critical fault count, after which every simulated
// measurement is an O(1) severity comparison instead of a fault-map
// rebuild.
func (p *prober) estimateAndTruth(scheme sim.Scheme, k int) (est, truth float64) {
	c := p.criticalCount(scheme)
	lo, hi := p.spec.Model.VFloor, p.spec.Model.VccMin
	if !p.passAtCount(c, hi) {
		// Unusable even at nominal: both report the top of the range.
		return hi, hi
	}
	if p.passAtCount(c, lo) {
		return lo, lo
	}
	est = math.NaN()
	for i := 0; i < truthIters; i++ {
		if i == k {
			est = (lo + hi) / 2
		}
		mid := (lo + hi) / 2
		if p.passAtCount(c, mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	truth = (lo + hi) / 2
	if math.IsNaN(est) { // k >= truthIters: the estimate is the truth
		est = truth
	}
	return est, truth
}

// Package population models fleet-scale process variation on top of
// the paper's single-chip fault model: instead of every simulated chip
// sharing one global pfail, each die of a manufactured fleet carries
// its own failure-probability multiplier drawn from a wafer-level
// lognormal distribution composed with an intra-wafer spatial gradient
// and per-die noise (in the spirit of the inter-/intra-wafer variation
// alignment of arXiv 2408.06254). From that population the package
// measures the fleet's Vcc-min distribution and yield-versus-voltage
// curves under each fault-tolerance scheme, and runs a data-efficient
// predictor that estimates a die's minimum operating voltage from K
// sampled (voltage, pass/fail) measurements.
//
// Determinism contract: every random quantity derives from the fleet
// seed through faults.DeriveSeed — the wafer mean from ("wafer", w),
// the die noise and fault population from ("fleet-die", d) — so any
// die is reproducible in isolation, fleets shard over workers with
// bit-identical results at every worker count, and the whole layer is
// golden-testable.
//
// Physical model: a die's latent fault population is drawn once at the
// voltage floor's effective pfail, with an iid severity attached to
// each faulty cell. The cells active at voltage v are those whose
// severity falls below pfail(v)/pfail(floor), so fault sets are nested
// as voltage falls — exactly the monotone pass/fail structure real
// Vcc-min characterization relies on, and what lets both the fleet
// sweep and the predictor bisect instead of scanning.
package population

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strconv"

	"vccmin/internal/core"
	"vccmin/internal/faults"
	"vccmin/internal/geom"
	"vccmin/internal/power"
	"vccmin/internal/sim"
)

// Variation parameterizes the die-to-die pfail multiplier model. A
// die's multiplier is exp(waferMu + gradient + dieNoise): waferMu ~
// N(0, WaferSigma²) shared by every die of a wafer, gradient a radial
// intra-wafer term growing toward the wafer edge with peak-to-center
// log-range Gradient, and dieNoise ~ N(0, DieSigma²) per die.
type Variation struct {
	// WaferSigma is the lognormal sigma of the per-wafer mean
	// multiplier (inter-wafer variation).
	WaferSigma float64 `json:"wafer_sigma"`
	// Gradient is the intra-wafer radial term's log-multiplier span:
	// center dies see about -Gradient/2, edge dies about +Gradient/2.
	Gradient float64 `json:"gradient"`
	// DieSigma is the lognormal sigma of the per-die noise
	// (intra-wafer, position-independent variation).
	DieSigma float64 `json:"die_sigma"`
}

// FleetSpec configures one fleet measurement: the die population, the
// schemes to certify each die under, and the voltage grid.
type FleetSpec struct {
	// Dies is the fleet size; wafers are filled in die-index order.
	Dies int
	// DiesPerWafer sets the wafer capacity; dies lay out on a
	// near-square grid for the spatial gradient.
	DiesPerWafer int
	// Geom is the L1 array the fault model strikes; default the
	// paper's 32 KB / 8-way / 64 B reference.
	Geom geom.Geometry
	// Model is the voltage/pfail coupling; default power.Default().
	Model power.Model
	// Variation is the multiplier model; zero fields take the
	// defaults (0.25 / 0.4 / 0.15).
	Variation Variation
	// Schemes are the fault-tolerance schemes each die is certified
	// under; default block-disable and word-disable.
	Schemes []sim.Scheme
	// VSteps is the voltage grid resolution between the model's
	// Vcc-min and its floor, inclusive; default 33.
	VSteps int
	// CapacityFloor is the surviving-capacity fraction a capacity
	// scheme (block, inc-word) must retain to pass; default 0.75.
	CapacityFloor float64
	// Seed is the fleet's base seed; every per-wafer and per-die
	// stream derives from it. Default 1.
	Seed int64
	// Workers bounds the fan-out goroutines (0 = GOMAXPROCS). It
	// never changes results, only scheduling.
	Workers int
}

// Default variation and grid parameters.
const (
	DefaultWaferSigma    = 0.25
	DefaultGradient      = 0.4
	DefaultDieSigma      = 0.15
	DefaultVSteps        = 33
	DefaultCapacityFloor = 0.75
	DefaultDiesPerWafer  = 64
)

// WithDefaults returns the spec with every zero field defaulted — the
// form RunFleet evaluates and the canonical task hash digests.
func (s FleetSpec) WithDefaults() FleetSpec {
	if s.Dies == 0 {
		s.Dies = 1000
	}
	if s.DiesPerWafer == 0 {
		s.DiesPerWafer = DefaultDiesPerWafer
	}
	if s.Geom == (geom.Geometry{}) {
		s.Geom = geom.MustNew(32*1024, 8, 64)
	}
	if s.Model == (power.Model{}) {
		s.Model = power.Default()
	}
	if s.Variation.WaferSigma == 0 {
		s.Variation.WaferSigma = DefaultWaferSigma
	}
	if s.Variation.Gradient == 0 {
		s.Variation.Gradient = DefaultGradient
	}
	if s.Variation.DieSigma == 0 {
		s.Variation.DieSigma = DefaultDieSigma
	}
	if len(s.Schemes) == 0 {
		s.Schemes = []sim.Scheme{sim.BlockDisable, sim.WordDisable}
	}
	if s.VSteps == 0 {
		s.VSteps = DefaultVSteps
	}
	if s.CapacityFloor == 0 {
		s.CapacityFloor = DefaultCapacityFloor
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Check validates a defaulted spec.
func (s FleetSpec) Check() error {
	switch {
	case s.Dies <= 0:
		return fmt.Errorf("population: dies must be positive, got %d", s.Dies)
	case s.DiesPerWafer <= 0:
		return fmt.Errorf("population: dies_per_wafer must be positive, got %d", s.DiesPerWafer)
	case s.VSteps < 2:
		return fmt.Errorf("population: vsteps %d below minimum 2", s.VSteps)
	case s.CapacityFloor < 0 || s.CapacityFloor > 1:
		return fmt.Errorf("population: capacity_floor %v out of [0,1]", s.CapacityFloor)
	case s.Variation.WaferSigma < 0 || s.Variation.Gradient < 0 || s.Variation.DieSigma < 0:
		return fmt.Errorf("population: variation parameters must be non-negative, got %+v", s.Variation)
	case s.Geom.BlockBytes > 128:
		return fmt.Errorf("population: block size %d B exceeds the fault model's 128 B bound", s.Geom.BlockBytes)
	case len(s.Schemes) == 0:
		return fmt.Errorf("population: at least one scheme required")
	}
	if err := s.Model.Check(); err != nil {
		return err
	}
	return nil
}

// Grid returns the descending voltage grid: VSteps points from the
// model's Vcc-min (index 0) down to its floor (last index), inclusive.
func (s FleetSpec) Grid() []float64 {
	g := make([]float64, s.VSteps)
	span := s.Model.VccMin - s.Model.VFloor
	for i := range g {
		g[i] = s.Model.VccMin - span*float64(i)/float64(s.VSteps-1)
	}
	return g
}

// Wafers returns the number of wafers the fleet occupies.
func (s FleetSpec) Wafers() int { return (s.Dies + s.DiesPerWafer - 1) / s.DiesPerWafer }

// DiePosition returns the wafer grid coordinates of die-in-wafer index
// j: a near-square cols × rows layout filled row-major.
func (s FleetSpec) DiePosition(j int) (x, y int) {
	cols := waferCols(s.DiesPerWafer)
	return j % cols, j / cols
}

func waferCols(diesPerWafer int) int {
	return int(math.Ceil(math.Sqrt(float64(diesPerWafer))))
}

// DieMultiplier returns die d's pfail multiplier: the wafer mean drawn
// from ("wafer", w), the radial gradient at the die's wafer position,
// and the die noise drawn from the head of the die's own stream.
func (s FleetSpec) DieMultiplier(d int) float64 {
	w := d / s.DiesPerWafer
	j := d % s.DiesPerWafer
	waferRng := rand.New(rand.NewSource(faults.DeriveSeed(s.Seed, "wafer", strconv.Itoa(w))))
	mu := s.Variation.WaferSigma * waferRng.NormFloat64()
	dieRng := rand.New(rand.NewSource(faults.DeriveSeed(s.Seed, "fleet-die", strconv.Itoa(d))))
	noise := s.Variation.DieSigma * dieRng.NormFloat64()
	return math.Exp(mu + s.gradientAt(j) + noise)
}

// gradientAt returns the intra-wafer radial log-multiplier at
// die-in-wafer index j: -Gradient/2 at the wafer center rising to
// about +Gradient/2 at the corners (edge dies run hotter pfail, the
// usual process signature).
func (s FleetSpec) gradientAt(j int) float64 {
	cols := waferCols(s.DiesPerWafer)
	rows := (s.DiesPerWafer + cols - 1) / cols
	x, y := s.DiePosition(j)
	cx := (float64(x)+0.5)/float64(cols) - 0.5
	cy := (float64(y)+0.5)/float64(rows) - 0.5
	r2 := 2 * (cx*cx + cy*cy) // 0 at center, ~1 at the corners
	return s.Variation.Gradient * (r2 - 0.5)
}

// pfailAt returns the die's effective per-cell failure probability at
// voltage v: the model's pfail scaled by the die multiplier, clamped
// into [0,1].
func (s FleetSpec) pfailAt(mult, v float64) float64 {
	p := mult * s.Model.Pfail(v)
	if p > 1 {
		return 1
	}
	return p
}

// prober measures one die at a time, reusing its buffers across dies
// and voltages; each concurrent worker owns one.
type prober struct {
	spec FleetSpec

	// The die's latent fault population at the voltage floor: linear
	// cell indices plus iid severities. A cell is active at voltage v
	// iff its severity is at most pfail(v)/pfail(floor), so the fault
	// set at a lower voltage is a superset of the set at a higher one.
	cells []int32
	sev   []float64
	mult  float64
	pflr  float64 // effective pfail at the voltage floor

	// Reused fault-map buffer. Built without the internal faulty-block
	// bitset (the accessors fall back to scanning Blocks), so clearing
	// is just zeroing the dirty block records.
	m     *faults.Map
	dirty []int32
}

func newProber(spec FleetSpec) *prober {
	return &prober{
		spec: spec,
		m: &faults.Map{
			Geom:     spec.Geom,
			WordBits: 32,
			Blocks:   make([]faults.BlockFaults, spec.Geom.Blocks()),
		},
	}
}

// draw fills the prober with die d's multiplier and latent fault
// population. The stream is the die's own (seed, "fleet-die", d)
// stream: one normal for the die noise, then geometric gap sampling at
// the floor pfail with one severity uniform per fault.
func (p *prober) draw(d int) {
	p.mult = p.spec.DieMultiplier(d)
	p.pflr = p.spec.pfailAt(p.mult, p.spec.Model.VFloor)
	p.cells = p.cells[:0]
	p.sev = p.sev[:0]
	rng := rand.New(rand.NewSource(faults.DeriveSeed(p.spec.Seed, "fleet-die", strconv.Itoa(d))))
	rng.NormFloat64() // the die-noise draw consumed by DieMultiplier
	if p.pflr <= 0 {
		return
	}
	total := p.spec.Geom.TotalCells()
	if p.pflr >= 1 {
		for c := 0; c < total; c++ {
			p.cells = append(p.cells, int32(c))
			p.sev = append(p.sev, rng.Float64())
		}
		return
	}
	logQ := math.Log1p(-p.pflr)
	cell := -1
	for {
		u := rng.Float64()
		if u == 0 {
			u = math.SmallestNonzeroFloat64
		}
		cell += 1 + int(math.Log(u)/logQ)
		if cell >= total || cell < 0 {
			return
		}
		p.cells = append(p.cells, int32(cell))
		p.sev = append(p.sev, rng.Float64())
	}
}

// build materializes the fault set active at voltage v into the reused
// map buffer.
func (p *prober) build(v float64) {
	for _, b := range p.dirty {
		p.m.Blocks[b] = faults.BlockFaults{}
	}
	p.dirty = p.dirty[:0]
	p.m.Total = 0
	if p.pflr <= 0 {
		return
	}
	ratio := p.spec.pfailAt(p.mult, v) / p.pflr
	k := p.spec.Geom.CellsPerBlock()
	for i, c := range p.cells {
		if p.sev[i] <= ratio {
			p.m.AddFault(int(c))
			b := c / int32(k)
			if n := len(p.dirty); n == 0 || p.dirty[n-1] != b {
				p.dirty = append(p.dirty, b)
			}
		}
	}
}

// passAt reports whether the drawn die, operated at voltage v, is
// certified usable under the scheme: baseline tolerates no fault,
// word-disable and bit-fix use their whole-cache fitness checks, and
// the capacity schemes (block, incremental word) must retain at least
// the spec's capacity floor. Every predicate is monotone in the fault
// set, so passAt is monotone in v — the property the bisections rely
// on.
func (p *prober) passAt(scheme sim.Scheme, v float64) bool {
	p.build(v)
	switch scheme {
	case sim.Baseline:
		return p.m.Total == 0
	case sim.WordDisable:
		return core.EvaluateWordDisable(p.m, core.ReferenceWordDisable()).Fit
	case sim.BlockDisable:
		return p.m.CapacityFraction() >= p.spec.CapacityFloor
	case sim.IncrementalWordDisable:
		return core.EvaluateIncrementalWD(p.m, core.ReferenceWordDisable()).CapacityFraction() >= p.spec.CapacityFloor
	case sim.BitFix:
		return core.EvaluateBitFix(p.m, core.ReferenceBitFix()).Fit
	}
	return false
}

// stepAt returns the deepest grid index (lowest voltage) at which the
// drawn die passes under the scheme: -1 when it fails at the nominal
// Vcc-min (grid index 0), len(grid)-1 when it reaches the floor, and
// otherwise the boundary found by bisection over the monotone grid.
func (p *prober) stepAt(scheme sim.Scheme, grid []float64) int {
	if !p.passAt(scheme, grid[0]) {
		return -1
	}
	last := len(grid) - 1
	if p.passAt(scheme, grid[last]) {
		return last
	}
	lo, hi := 0, last // pass at lo, fail at hi
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if p.passAt(scheme, grid[mid]) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// thresholdVoltage bisects the continuous pass/fail boundary of the
// drawn die under the scheme to iters halvings of [VFloor, VccMin] —
// the predictor's ground truth. The boundary exists and is unique
// because passAt is monotone in v.
func (p *prober) thresholdVoltage(scheme sim.Scheme, iters int) float64 {
	lo, hi := p.spec.Model.VFloor, p.spec.Model.VccMin
	if !p.passAt(scheme, hi) {
		return hi
	}
	if p.passAt(scheme, lo) {
		return lo
	}
	// Invariant: pass at hi, fail at lo; the threshold is in (lo, hi].
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		if p.passAt(scheme, mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}

func defaultWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// Package population models fleet-scale process variation on top of
// the paper's single-chip fault model: instead of every simulated chip
// sharing one global pfail, each die of a manufactured fleet carries
// its own failure-probability multiplier drawn from a wafer-level
// lognormal distribution composed with an intra-wafer spatial gradient
// and per-die noise (in the spirit of the inter-/intra-wafer variation
// alignment of arXiv 2408.06254). From that population the package
// measures the fleet's Vcc-min distribution and yield-versus-voltage
// curves under each fault-tolerance scheme, and runs a data-efficient
// predictor that estimates a die's minimum operating voltage from K
// sampled (voltage, pass/fail) measurements.
//
// Determinism contract: every random quantity derives from the fleet
// seed through faults.DeriveSeed — the wafer mean from ("wafer", w),
// the die noise and fault population from ("fleet-die", d) — so any
// die is reproducible in isolation, fleets shard over workers with
// bit-identical results at every worker count, and the whole layer is
// golden-testable.
//
// Physical model: a die's latent fault population is drawn once at the
// voltage floor's effective pfail, with an iid severity attached to
// each faulty cell. The cells active at voltage v are those whose
// severity falls below pfail(v)/pfail(floor), so fault sets are nested
// as voltage falls — exactly the monotone pass/fail structure real
// Vcc-min characterization relies on, and what lets both the fleet
// sweep and the predictor bisect instead of scanning.
package population

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"runtime"
	"slices"
	"strconv"

	"vccmin/internal/faults"
	"vccmin/internal/geom"
	"vccmin/internal/lfrand"
	"vccmin/internal/power"
	"vccmin/internal/sim"
)

// Variation parameterizes the die-to-die pfail multiplier model. A
// die's multiplier is exp(waferMu + gradient + dieNoise): waferMu ~
// N(0, WaferSigma²) shared by every die of a wafer, gradient a radial
// intra-wafer term growing toward the wafer edge with peak-to-center
// log-range Gradient, and dieNoise ~ N(0, DieSigma²) per die.
type Variation struct {
	// WaferSigma is the lognormal sigma of the per-wafer mean
	// multiplier (inter-wafer variation).
	WaferSigma float64 `json:"wafer_sigma"`
	// Gradient is the intra-wafer radial term's log-multiplier span:
	// center dies see about -Gradient/2, edge dies about +Gradient/2.
	Gradient float64 `json:"gradient"`
	// DieSigma is the lognormal sigma of the per-die noise
	// (intra-wafer, position-independent variation).
	DieSigma float64 `json:"die_sigma"`
}

// FleetSpec configures one fleet measurement: the die population, the
// schemes to certify each die under, and the voltage grid.
type FleetSpec struct {
	// Dies is the fleet size; wafers are filled in die-index order.
	Dies int
	// DiesPerWafer sets the wafer capacity; dies lay out on a
	// near-square grid for the spatial gradient.
	DiesPerWafer int
	// Geom is the L1 array the fault model strikes; default the
	// paper's 32 KB / 8-way / 64 B reference.
	Geom geom.Geometry
	// Model is the voltage/pfail coupling; default power.Default().
	Model power.Model
	// Variation is the multiplier model; zero fields take the
	// defaults (0.25 / 0.4 / 0.15).
	Variation Variation
	// Schemes are the fault-tolerance schemes each die is certified
	// under; default block-disable and word-disable.
	Schemes []sim.Scheme
	// VSteps is the voltage grid resolution between the model's
	// Vcc-min and its floor, inclusive; default 33.
	VSteps int
	// CapacityFloor is the surviving-capacity fraction a capacity
	// scheme (block, inc-word) must retain to pass; default 0.75.
	CapacityFloor float64
	// Seed is the fleet's base seed; every per-wafer and per-die
	// stream derives from it. Default 1.
	Seed int64
	// Workers bounds the fan-out goroutines (0 = GOMAXPROCS). It
	// never changes results, only scheduling.
	Workers int
}

// Default variation and grid parameters.
const (
	DefaultWaferSigma    = 0.25
	DefaultGradient      = 0.4
	DefaultDieSigma      = 0.15
	DefaultVSteps        = 33
	DefaultCapacityFloor = 0.75
	DefaultDiesPerWafer  = 64
)

// WithDefaults returns the spec with every zero field defaulted — the
// form RunFleet evaluates and the canonical task hash digests.
func (s FleetSpec) WithDefaults() FleetSpec {
	if s.Dies == 0 {
		s.Dies = 1000
	}
	if s.DiesPerWafer == 0 {
		s.DiesPerWafer = DefaultDiesPerWafer
	}
	if s.Geom == (geom.Geometry{}) {
		s.Geom = geom.MustNew(32*1024, 8, 64)
	}
	if s.Model == (power.Model{}) {
		s.Model = power.Default()
	}
	if s.Variation.WaferSigma == 0 {
		s.Variation.WaferSigma = DefaultWaferSigma
	}
	if s.Variation.Gradient == 0 {
		s.Variation.Gradient = DefaultGradient
	}
	if s.Variation.DieSigma == 0 {
		s.Variation.DieSigma = DefaultDieSigma
	}
	if len(s.Schemes) == 0 {
		s.Schemes = []sim.Scheme{sim.BlockDisable, sim.WordDisable}
	}
	if s.VSteps == 0 {
		s.VSteps = DefaultVSteps
	}
	if s.CapacityFloor == 0 {
		s.CapacityFloor = DefaultCapacityFloor
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Check validates a defaulted spec.
func (s FleetSpec) Check() error {
	switch {
	case s.Dies <= 0:
		return fmt.Errorf("population: dies must be positive, got %d", s.Dies)
	case s.DiesPerWafer <= 0:
		return fmt.Errorf("population: dies_per_wafer must be positive, got %d", s.DiesPerWafer)
	case s.VSteps < 2:
		return fmt.Errorf("population: vsteps %d below minimum 2", s.VSteps)
	case s.CapacityFloor < 0 || s.CapacityFloor > 1:
		return fmt.Errorf("population: capacity_floor %v out of [0,1]", s.CapacityFloor)
	case s.Variation.WaferSigma < 0 || s.Variation.Gradient < 0 || s.Variation.DieSigma < 0:
		return fmt.Errorf("population: variation parameters must be non-negative, got %+v", s.Variation)
	case s.Geom.BlockBytes > 128:
		return fmt.Errorf("population: block size %d B exceeds the fault model's 128 B bound", s.Geom.BlockBytes)
	case len(s.Schemes) == 0:
		return fmt.Errorf("population: at least one scheme required")
	}
	if err := s.Model.Check(); err != nil {
		return err
	}
	return nil
}

// Grid returns the descending voltage grid: VSteps points from the
// model's Vcc-min (index 0) down to its floor (last index), inclusive.
func (s FleetSpec) Grid() []float64 {
	g := make([]float64, s.VSteps)
	span := s.Model.VccMin - s.Model.VFloor
	for i := range g {
		g[i] = s.Model.VccMin - span*float64(i)/float64(s.VSteps-1)
	}
	return g
}

// Wafers returns the number of wafers the fleet occupies.
func (s FleetSpec) Wafers() int { return (s.Dies + s.DiesPerWafer - 1) / s.DiesPerWafer }

// DiePosition returns the wafer grid coordinates of die-in-wafer index
// j: a near-square cols × rows layout filled row-major.
func (s FleetSpec) DiePosition(j int) (x, y int) {
	cols := waferCols(s.DiesPerWafer)
	return j % cols, j / cols
}

func waferCols(diesPerWafer int) int {
	return int(math.Ceil(math.Sqrt(float64(diesPerWafer))))
}

// DieMultiplier returns die d's pfail multiplier: the wafer mean drawn
// from ("wafer", w), the radial gradient at the die's wafer position,
// and the die noise drawn from the head of the die's own stream.
func (s FleetSpec) DieMultiplier(d int) float64 {
	w := d / s.DiesPerWafer
	j := d % s.DiesPerWafer
	waferRng := rand.New(rand.NewSource(faults.DeriveSeed(s.Seed, "wafer", strconv.Itoa(w))))
	mu := s.Variation.WaferSigma * waferRng.NormFloat64()
	dieRng := rand.New(rand.NewSource(faults.DeriveSeed(s.Seed, "fleet-die", strconv.Itoa(d))))
	noise := s.Variation.DieSigma * dieRng.NormFloat64()
	return math.Exp(mu + s.gradientAt(j) + noise)
}

// gradientAt returns the intra-wafer radial log-multiplier at
// die-in-wafer index j: -Gradient/2 at the wafer center rising to
// about +Gradient/2 at the corners (edge dies run hotter pfail, the
// usual process signature).
func (s FleetSpec) gradientAt(j int) float64 {
	cols := waferCols(s.DiesPerWafer)
	rows := (s.DiesPerWafer + cols - 1) / cols
	x, y := s.DiePosition(j)
	cx := (float64(x)+0.5)/float64(cols) - 0.5
	cy := (float64(y)+0.5)/float64(rows) - 0.5
	r2 := 2 * (cx*cx + cy*cy) // 0 at center, ~1 at the corners
	return s.Variation.Gradient * (r2 - 0.5)
}

// pfailAt returns the die's effective per-cell failure probability at
// voltage v: the model's pfail scaled by the die multiplier, clamped
// into [0,1].
func (s FleetSpec) pfailAt(mult, v float64) float64 {
	p := mult * s.Model.Pfail(v)
	if p > 1 {
		return 1
	}
	return p
}

// Scheme parameters the prober hardcodes, matching the reference
// configurations the frozen oracle evaluated with
// (core.ReferenceWordDisable and core.ReferenceBitFix).
const (
	mapWordBits      = 32
	wordsPerSubblock = 8
	pairsPerGroup    = 8
	repairsPerGroup  = 1
)

// Incremental word-disable pair states, ordered so a pair's state only
// ever increases as faults accumulate (core.PairState values).
const (
	pairFullState uint8 = iota
	pairHalfState
	pairDisabledState
)

// prober measures one die at a time, reusing its buffers across dies
// and voltages; each concurrent worker owns one.
//
// The measurement is a single incremental walk: draw sorts the latent
// population ascending by severity, so the fault set active at any
// voltage is a prefix of the sorted order (the nested-severity
// construction above). Walking the descending voltage grid, each fault
// enters the reused map exactly once as the prefix grows, and every
// scheme's pass predicate is maintained incrementally alongside:
// baseline passes while the prefix is empty; block-disable keeps a
// running faulty-block count; incremental word-disable keeps per-pair
// full/half/disabled counts, reclassifying only the pair a fault lands
// in; word-disable and bit-fix fitness are monotone-sticky (once
// unfit, unfit forever), re-checking only the subblock or fix group
// the fault lands in. The frozen pre-walk prober — a full O(F) map
// rebuild at every probed voltage, bisected per scheme — lives in
// differential_test.go as the oracle this walk is held bit-identical
// to.
type prober struct {
	spec FleetSpec

	// The die's latent fault population at the voltage floor: linear
	// cell indices plus iid severities, sorted ascending by severity
	// (ties by cell index) after the draw. A cell is active at voltage
	// v iff its severity is at most pfail(v)/pfail(floor), so the
	// active set is always a prefix of the sorted order.
	flt  []latentFault
	mult float64
	pflr float64 // effective pfail at the voltage floor

	// Reused random stream: one lfrand source reseeded in place per
	// die (no per-die generator allocation or math/rand reseeding
	// cost), wrapped once in a rand.Rand so NormFloat64 and Float64
	// are the stdlib's own code over the replicated stream.
	src lfrand.Source
	rng *rand.Rand

	// The wafer mean is shared by a whole wafer of consecutive dies;
	// caching it skips the per-die wafer-stream reseed.
	cachedWafer int
	waferMu     float64

	// Reused fault-map buffer. Built without the internal faulty-block
	// bitset (the accessors fall back to scanning Blocks), so clearing
	// is just zeroing the dirty block records.
	m     *faults.Map
	dirty []int32

	// Geometry constants hoisted out of the walk.
	cellsPerBlock int
	dataBits      int
	subPerBlock   int // word-disable subblocks per block
	groupsPerLine int // bit-fix fix groups per line
	pairsPerSet   int // incremental-WD pairs per set (Ways/2)
	totalPairs    int // Sets() * pairsPerSet

	// Which schemes the current walk maintains state for.
	needWD, needBF, needIWD bool

	// Incremental per-scheme state, reset by resetWalk.
	faultyBlocks int  // blocks with at least one faulty cell
	wdFit        bool // word-disable fitness (sticky once false)
	bfFit        bool // bit-fix fitness (sticky once false)
	pairFull     int  // incremental-WD pair-state counts
	pairHalf     int
	pairState    []uint8 // lazily allocated, one state per pair
	dirtyPairs   []int32

	alive     []bool // per-scheme liveness during a grid walk
	oneScheme [1]sim.Scheme
}

// latentFault is one cell of the latent population: the linear cell
// index and the iid severity that decides the voltage it activates at.
type latentFault struct {
	sev  float64
	cell int32
}

func newProber(spec FleetSpec) *prober {
	g := spec.Geom
	p := &prober{
		spec: spec,
		m: &faults.Map{
			Geom:     g,
			WordBits: mapWordBits,
			Blocks:   make([]faults.BlockFaults, g.Blocks()),
		},
		cellsPerBlock: g.CellsPerBlock(),
		dataBits:      g.DataBits(),
		subPerBlock:   g.DataBits() / mapWordBits / wordsPerSubblock,
		groupsPerLine: g.DataBits() / 2 / pairsPerGroup,
		pairsPerSet:   g.Ways / 2,
		cachedWafer:   -1,
	}
	p.totalPairs = g.Sets() * p.pairsPerSet
	p.rng = rand.New(&p.src)
	return p
}

// compareFaults orders the latent population ascending by severity,
// ties by cell index. Tie order cannot change any active set
// (membership is a pure severity comparison), but a deterministic
// order keeps walks reproducible.
func compareFaults(a, b latentFault) int {
	switch {
	case a.sev < b.sev:
		return -1
	case a.sev > b.sev:
		return 1
	}
	return int(a.cell) - int(b.cell)
}

// draw fills the prober with die d's multiplier and latent fault
// population, then sorts the population by severity so later walks can
// treat active sets as prefixes. The random streams are exactly
// DieMultiplier's: the wafer mean from ("wafer", w) — cached, since
// consecutive dies share a wafer — and the die's own ("fleet-die", d)
// stream: one normal for the die noise, then geometric gap sampling at
// the floor pfail with one severity uniform per fault.
func (p *prober) draw(d int) {
	w := d / p.spec.DiesPerWafer
	if w != p.cachedWafer {
		p.src.Seed(faults.DeriveSeed(p.spec.Seed, "wafer", strconv.Itoa(w)))
		p.waferMu = p.spec.Variation.WaferSigma * p.rng.NormFloat64()
		p.cachedWafer = w
	}
	p.src.Seed(faults.DeriveSeed(p.spec.Seed, "fleet-die", strconv.Itoa(d)))
	noise := p.spec.Variation.DieSigma * p.rng.NormFloat64()
	p.mult = math.Exp(p.waferMu + p.spec.gradientAt(d%p.spec.DiesPerWafer) + noise)
	p.pflr = p.spec.pfailAt(p.mult, p.spec.Model.VFloor)
	p.flt = p.flt[:0]
	if p.pflr <= 0 {
		return
	}
	total := p.spec.Geom.TotalCells()
	if p.pflr >= 1 {
		for c := 0; c < total; c++ {
			p.flt = append(p.flt, latentFault{sev: p.rng.Float64(), cell: int32(c)})
		}
		p.sortBySeverity()
		return
	}
	logQ := math.Log1p(-p.pflr)
	cell := -1
	for {
		u := p.rng.Float64()
		if u == 0 {
			u = math.SmallestNonzeroFloat64
		}
		cell += 1 + int(math.Log(u)/logQ)
		if cell >= total || cell < 0 {
			p.sortBySeverity()
			return
		}
		p.flt = append(p.flt, latentFault{sev: p.rng.Float64(), cell: int32(cell)})
	}
}

func (p *prober) sortBySeverity() {
	if len(p.flt) > 1 {
		slices.SortFunc(p.flt, compareFaults)
	}
}

// setNeeds prepares a walk over the given schemes: which incremental
// predicates to maintain, plus the lazily sized scratch buffers.
func (p *prober) setNeeds(schemes []sim.Scheme) {
	p.needWD, p.needBF, p.needIWD = false, false, false
	for _, s := range schemes {
		switch s {
		case sim.WordDisable:
			p.needWD = true
		case sim.BitFix:
			p.needBF = true
		case sim.IncrementalWordDisable:
			p.needIWD = true
		}
	}
	if p.needIWD && p.pairState == nil && p.totalPairs > 0 {
		p.pairState = make([]uint8, p.totalPairs)
	}
	if len(p.alive) < len(schemes) {
		p.alive = make([]bool, len(schemes))
	}
}

// resetWalk returns the map and every incremental predicate to the
// fault-free state, touching only the blocks and pairs the previous
// walk dirtied.
func (p *prober) resetWalk() {
	for _, b := range p.dirty {
		p.m.Blocks[b] = faults.BlockFaults{}
	}
	p.dirty = p.dirty[:0]
	p.m.Total = 0
	p.faultyBlocks = 0
	p.wdFit = true
	p.bfFit = true
	for _, q := range p.dirtyPairs {
		p.pairState[q] = pairFullState
	}
	p.dirtyPairs = p.dirtyPairs[:0]
	p.pairFull = p.totalPairs
	p.pairHalf = 0
}

// addNext admits the next fault of the severity prefix into the map
// and updates every maintained predicate. The map mutation mirrors
// faults.Map.AddFault exactly, so the map state at any prefix equals
// the oracle's full rebuild of the same active set.
func (p *prober) addNext(cell int32) {
	c := int(cell)
	b := c / p.cellsPerBlock
	off := c - b*p.cellsPerBlock
	bf := &p.m.Blocks[b]
	if bf.Cells == 0 {
		p.faultyBlocks++
		p.dirty = append(p.dirty, int32(b))
	}
	if off < p.dataBits {
		w := off / mapWordBits
		bf.WordMask |= 1 << uint(w)
		pair := off / 2
		bf.PairMask[pair/64] |= 1 << uint(pair%64)
		if p.needWD && p.wdFit {
			// Only the subblock this fault lands in can newly exceed
			// the faulty-word budget.
			if s := w / wordsPerSubblock; s < p.subPerBlock {
				mask := (uint64(1)<<wordsPerSubblock - 1) << uint(s*wordsPerSubblock)
				if bits.OnesCount64(bf.WordMask&mask) > wordsPerSubblock/2 {
					p.wdFit = false
				}
			}
		}
		if p.needBF && p.bfFit {
			// Fix groups are 8 pairs, so a group never straddles a
			// PairMask word; only the landed group can newly overflow.
			if grp := pair / pairsPerGroup; grp < p.groupsPerLine {
				start := grp * pairsPerGroup
				n := bits.OnesCount64(bf.PairMask[start/64] >> uint(start%64) & (1<<pairsPerGroup - 1))
				if n > repairsPerGroup {
					p.bfFit = false
				}
			}
		}
		if p.needIWD {
			way := b % p.spec.Geom.Ways
			if way/2 < p.pairsPerSet { // odd-way geometries leave the last way unpaired
				set := b / p.spec.Geom.Ways
				q := set*p.pairsPerSet + way/2
				if st := p.classifyPair(set, way/2); st != p.pairState[q] {
					switch p.pairState[q] {
					case pairFullState:
						p.pairFull--
						p.dirtyPairs = append(p.dirtyPairs, int32(q))
					case pairHalfState:
						p.pairHalf--
					}
					if st == pairHalfState {
						p.pairHalf++
					}
					p.pairState[q] = st
				}
			}
		}
	} else {
		bf.TagFaulty = true
	}
	bf.Cells++
	p.m.Total++
}

// classifyPair mirrors core's incremental word-disable pair
// classification (tag faults ignored): fault-free pairs run at full
// capacity, pairs whose subblocks are all repairable merge to half,
// the rest are disabled.
func (p *prober) classifyPair(set, pairInSet int) uint8 {
	b0 := set*p.spec.Geom.Ways + 2*pairInSet
	w0 := p.m.Blocks[b0].WordMask
	w1 := p.m.Blocks[b0+1].WordMask
	if w0 == 0 && w1 == 0 {
		return pairFullState
	}
	for s := 0; s < p.subPerBlock; s++ {
		mask := (uint64(1)<<wordsPerSubblock - 1) << uint(s*wordsPerSubblock)
		if bits.OnesCount64(w0&mask) > wordsPerSubblock/2 ||
			bits.OnesCount64(w1&mask) > wordsPerSubblock/2 {
			return pairDisabledState
		}
	}
	return pairHalfState
}

// passIncr evaluates a scheme's pass predicate from the incremental
// state — O(1), and float-for-float the expression the oracle's full
// evaluation computes on the same fault set.
func (p *prober) passIncr(scheme sim.Scheme) bool {
	switch scheme {
	case sim.Baseline:
		return p.m.Total == 0
	case sim.WordDisable:
		return p.wdFit
	case sim.BlockDisable:
		return 1-float64(p.faultyBlocks)/float64(len(p.m.Blocks)) >= p.spec.CapacityFloor
	case sim.IncrementalWordDisable:
		if p.totalPairs == 0 {
			return 0 >= p.spec.CapacityFloor
		}
		return (float64(p.pairFull)+0.5*float64(p.pairHalf))/float64(p.totalPairs) >= p.spec.CapacityFloor
	case sim.BitFix:
		return p.bfFit
	}
	return false
}

// gridSteps computes every spec scheme's deepest passing grid index —
// -1 when the die fails at the nominal Vcc-min (grid index 0),
// len(grid)-1 when it reaches the floor — in one walk down the grid:
// the severity prefix grows monotonically with the grid index, each
// fault is admitted exactly once, and a scheme that fails is dead for
// the rest of the walk (every predicate is monotone in the fault set).
// The walk exits early once every scheme has failed. steps must have
// length len(spec.Schemes).
func (p *prober) gridSteps(grid []float64, steps []int) {
	schemes := p.spec.Schemes
	p.setNeeds(schemes)
	p.resetWalk()
	for k := range steps {
		steps[k] = -1
	}
	if p.pflr <= 0 || len(p.flt) == 0 {
		// No latent fault is active at any voltage: each scheme holds
		// its fault-free verdict across the whole grid.
		last := len(grid) - 1
		for k, scheme := range schemes {
			if p.passIncr(scheme) {
				steps[k] = last
			}
		}
		return
	}
	alive := p.alive
	remaining := len(schemes)
	for k := range schemes {
		alive[k] = true
	}
	idx := 0
	for i, v := range grid {
		ratio := p.spec.pfailAt(p.mult, v) / p.pflr
		for idx < len(p.flt) && p.flt[idx].sev <= ratio {
			p.addNext(p.flt[idx].cell)
			idx++
		}
		for k, scheme := range schemes {
			if !alive[k] {
				continue
			}
			if p.passIncr(scheme) {
				steps[k] = i
			} else {
				alive[k] = false
				remaining--
			}
		}
		if remaining == 0 {
			return
		}
	}
}

// criticalCount returns the largest sorted-prefix length n such that
// the scheme still passes with the first n faults present: len(cells)
// when it never fails, -1 when it fails even fault-free (degenerate
// specs). Because every predicate is monotone in the fault set and the
// active set at any voltage is a severity prefix, pass-at-voltage
// reduces to comparing the prefix length at that voltage against this
// single count — see passAtCount.
func (p *prober) criticalCount(scheme sim.Scheme) int {
	p.oneScheme[0] = scheme
	p.setNeeds(p.oneScheme[:])
	p.resetWalk()
	if !p.passIncr(scheme) {
		return -1
	}
	if p.pflr <= 0 {
		return len(p.flt)
	}
	for i, f := range p.flt {
		p.addNext(f.cell)
		if !p.passIncr(scheme) {
			return i
		}
	}
	return len(p.flt)
}

// passAtCount reports whether the die passes at voltage v given the
// scheme's critical count c: the active prefix at v stays within the
// passing region iff the (c+1)-th sorted severity (if any) is not yet
// active. Boolean-identical to the oracle's rebuild-and-evaluate
// passAt, at O(1) per probe.
func (p *prober) passAtCount(c int, v float64) bool {
	if c < 0 {
		return false
	}
	if p.pflr <= 0 || c >= len(p.flt) {
		return true
	}
	ratio := p.spec.pfailAt(p.mult, v) / p.pflr
	return !(p.flt[c].sev <= ratio)
}

// thresholdVoltage bisects the continuous pass/fail boundary of the
// drawn die under the scheme to iters halvings of [VFloor, VccMin] —
// the predictor's ground truth. The boundary exists and is unique
// because pass-at-voltage is monotone; after one incremental walk for
// the critical count, each probe is an O(1) severity comparison.
func (p *prober) thresholdVoltage(scheme sim.Scheme, iters int) float64 {
	c := p.criticalCount(scheme)
	lo, hi := p.spec.Model.VFloor, p.spec.Model.VccMin
	if !p.passAtCount(c, hi) {
		return hi
	}
	if p.passAtCount(c, lo) {
		return lo
	}
	// Invariant: pass at hi, fail at lo; the threshold is in (lo, hi].
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		if p.passAtCount(c, mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}

func defaultWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

package population

import (
	"testing"

	"vccmin/internal/sim"
)

// TestPredictConvergence is the property test from the issue: as the
// measurement budget K grows, the predictor's error against ground
// truth shrinks, and at every K the worst-case error respects the
// analytic bisection bracket bound.
func TestPredictConvergence(t *testing.T) {
	base := PredictSpec{
		Fleet:  FleetSpec{Dies: 400, Seed: 11},
		Scheme: sim.BlockDisable,
		Sample: 60,
	}
	prevBound := 0.0
	var errAtK = map[int]float64{}
	for _, k := range []int{1, 3, 6, 10} {
		spec := base
		spec.K = k
		res, err := RunPredict(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sampled != 60 {
			t.Fatalf("k=%d: sampled %d, want 60", k, res.Sampled)
		}
		if res.Max > res.BracketBound+1e-12 {
			t.Fatalf("k=%d: max error %v exceeds bracket bound %v", k, res.Max, res.BracketBound)
		}
		if prevBound != 0 && res.BracketBound >= prevBound {
			t.Fatalf("k=%d: bracket bound %v did not shrink from %v", k, res.BracketBound, prevBound)
		}
		prevBound = res.BracketBound
		errAtK[k] = res.MeanAbsError
	}
	if errAtK[10] > errAtK[1] {
		t.Fatalf("mean error grew with budget: k=1 %v vs k=10 %v", errAtK[1], errAtK[10])
	}
}

// TestPredictWorkerInvariance pins the study's error quantiles across
// worker counts.
func TestPredictWorkerInvariance(t *testing.T) {
	spec := PredictSpec{Fleet: FleetSpec{Dies: 200, Seed: 5}, Scheme: sim.WordDisable, K: 4, Sample: 40}
	one := spec
	one.Fleet.Workers = 1
	eight := spec
	eight.Fleet.Workers = 8
	a, err := RunPredict(one)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPredict(eight)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanAbsError != b.MeanAbsError || a.P50 != b.P50 || a.P90 != b.P90 ||
		a.P99 != b.P99 || a.Max != b.Max {
		t.Fatalf("predict results differ across worker counts: %+v vs %+v", a, b)
	}
}

func TestPredictSpecValidation(t *testing.T) {
	spec := PredictSpec{Fleet: FleetSpec{Dies: 10}}.WithDefaults()
	spec.K = 100
	if err := spec.Check(); err == nil {
		t.Fatal("Check accepted k=100")
	}
	if spec.Sample != 10 {
		t.Fatalf("sample should cap at fleet size, got %d", spec.Sample)
	}
	bad := PredictSpec{Fleet: FleetSpec{Dies: 10, VSteps: 1}.WithDefaults()}
	bad.Fleet.VSteps = 1
	bad.K = 4
	bad.Sample = 4
	if err := bad.Check(); err == nil {
		t.Fatal("Check accepted invalid fleet spec")
	}
}

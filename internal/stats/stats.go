// Package stats provides the small set of summary statistics the
// experiment harness reports: mean, min/max, standard deviation,
// percentiles, and fixed-width histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary condenses a sample of float64 values.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Max    float64
	StdDev float64
}

// Summarize computes a Summary of vals. An empty sample yields a zero
// Summary with N=0.
func Summarize(vals []float64) Summary {
	if len(vals) == 0 {
		return Summary{}
	}
	s := Summary{N: len(vals), Min: vals[0], Max: vals[0]}
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, v := range vals {
			d := v - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f min=%.4f max=%.4f sd=%.4f", s.N, s.Mean, s.Min, s.Max, s.StdDev)
}

// Mean returns the arithmetic mean of vals (0 for an empty slice).
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Min returns the minimum of vals (0 for an empty slice).
func Min(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum of vals (0 for an empty slice).
func Max(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// GeoMean returns the geometric mean of vals, the conventional aggregate
// for normalized performance. Values must be positive; non-positive values
// make the result 0.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	logSum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(vals)))
}

// Percentile returns the p-quantile (0 <= p <= 1) of vals using linear
// interpolation between order statistics. It copies and sorts internally.
func Percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// QuantileSorted reads quantile q from an ascending-sorted sample by
// nearest rank. Unlike Percentile it neither copies nor interpolates:
// the result is always an element of the sample, and an empty sample
// yields NaN. The population layer's Vcc-min quantiles and the colstore
// query aggregates both funnel through it, so "p99" means the same
// order statistic everywhere.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Histogram is a fixed-width bucketing of a sample over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // samples below Lo
	Over   int // samples at or above Hi
	Total  int
}

// NewHistogram buckets vals into n equal-width bins spanning [lo, hi).
func NewHistogram(vals []float64, lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bin, got %d", n)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) is empty", lo, hi)
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
	width := (hi - lo) / float64(n)
	for _, v := range vals {
		h.Total++
		switch {
		case v < lo:
			h.Under++
		case v >= hi:
			h.Over++
		default:
			idx := int((v - lo) / width)
			if idx >= n { // guard float rounding at the upper edge
				idx = n - 1
			}
			h.Counts[idx]++
		}
	}
	return h, nil
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + width*(float64(i)+0.5)
}

// Fraction returns bin i's share of the total sample.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d, want 8", s.N)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min,Max = %v,%v want 2,9", s.Min, s.Max)
	}
	want := math.Sqrt(32.0 / 7.0) // sample stddev
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", s.StdDev, want)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Min != 3.5 || s.Max != 3.5 || s.StdDev != 0 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestMinMaxMeanProperties(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, math.Mod(v, 1e6))
			}
		}
		if len(vals) == 0 {
			return Min(vals) == 0 && Max(vals) == 0 && Mean(vals) == 0
		}
		mn, mx, mean := Min(vals), Max(vals), Mean(vals)
		return mn <= mx && mean >= mn-1e-9 && mean <= mx+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %v, want 2", g)
	}
	if g := GeoMean([]float64{0.5, 2}); math.Abs(g-1) > 1e-12 {
		t.Errorf("GeoMean(0.5,2) = %v, want 1", g)
	}
	if g := GeoMean([]float64{1, 0}); g != 0 {
		t.Errorf("GeoMean with zero = %v, want 0", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", g)
	}
}

func TestGeoMeanLeqArithMean(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		vals := make([]float64, 10)
		for i := range vals {
			vals[i] = 0.1 + rng.Float64()
		}
		if GeoMean(vals) > Mean(vals)+1e-12 {
			t.Fatalf("AM-GM violated: geo %v > arith %v", GeoMean(vals), Mean(vals))
		}
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {1, 50}, {0.5, 30}, {0.25, 20}, {0.125, 15},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
	// Must not mutate the input.
	orig := []float64{3, 1, 2}
	Percentile(orig, 0.5)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Errorf("Percentile mutated input: %v", orig)
	}
}

func TestHistogram(t *testing.T) {
	vals := []float64{-1, 0, 0.1, 0.5, 0.5, 0.99, 1.0, 2.0}
	h, err := NewHistogram(vals, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Under != 1 {
		t.Errorf("Under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d, want 2 (1.0 and 2.0)", h.Over)
	}
	wantCounts := []int{2, 1, 2, 1} // [0,.25): 0,0.1; [.25,.5): none... recompute
	// bins: [0,0.25): {0, 0.1} = 2; [0.25,0.5): {} = 0; [0.5,0.75): {0.5,0.5} = 2; [0.75,1): {0.99} = 1
	wantCounts = []int{2, 0, 2, 1}
	for i, w := range wantCounts {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.Total != len(vals) {
		t.Errorf("Total = %d, want %d", h.Total, len(vals))
	}
	if c := h.BinCenter(0); math.Abs(c-0.125) > 1e-12 {
		t.Errorf("BinCenter(0) = %v, want 0.125", c)
	}
	if f := h.Fraction(0); math.Abs(f-0.25) > 1e-12 {
		t.Errorf("Fraction(0) = %v, want 0.25", f)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 1, 0); err == nil {
		t.Error("accepted zero bins")
	}
	if _, err := NewHistogram(nil, 1, 1, 4); err == nil {
		t.Error("accepted empty range")
	}
}

func TestHistogramConservesSamples(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				vals = append(vals, v)
			}
		}
		h, err := NewHistogram(vals, -10, 10, 7)
		if err != nil {
			return false
		}
		inBins := 0
		for _, c := range h.Counts {
			inBins += c
		}
		return inBins+h.Under+h.Over == len(vals) && h.Total == len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package cliflag

import (
	"errors"
	"fmt"
	"reflect"
	"strconv"
	"testing"
)

func TestSplit(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want []string
	}{
		{"empty string", "", nil},
		{"only commas", ",,,", nil},
		{"only whitespace", "  \t ", nil},
		{"whitespace elements", " , \t,  ", nil},
		{"single", "block", []string{"block"}},
		{"plain list", "a,b,c", []string{"a", "b", "c"}},
		{"trims whitespace", " a ,\tb , c\t", []string{"a", "b", "c"}},
		{"skips empty elements", "a,,b,", []string{"a", "b"}},
		{"duplicates preserved", "a,a,b,a", []string{"a", "a", "b", "a"}},
		{"inner spaces kept", "a b,c", []string{"a b", "c"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Split(c.in); !reflect.DeepEqual(got, c.want) {
				t.Errorf("Split(%q) = %#v, want %#v", c.in, got, c.want)
			}
		})
	}
}

func TestParseList(t *testing.T) {
	atoi := func(s string) (int, error) { return strconv.Atoi(s) }
	cases := []struct {
		name    string
		in      string
		want    []int
		wantErr bool
	}{
		{"empty string", "", nil, false},
		{"only separators", ", ,", nil, false},
		{"parses each element", "1, 2,3", []int{1, 2, 3}, false},
		{"duplicates preserved", "7,7", []int{7, 7}, false},
		{"first error wins", "1,x,3", nil, true},
		{"error in last element", "1,2,x", nil, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := ParseList(c.in, atoi)
			if c.wantErr {
				if err == nil {
					t.Fatalf("ParseList(%q) = %v, want error", c.in, got)
				}
				if got != nil {
					t.Fatalf("ParseList(%q) returned %v alongside its error", c.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseList(%q): %v", c.in, err)
			}
			if !reflect.DeepEqual(got, c.want) {
				t.Errorf("ParseList(%q) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}

// TestParseListStopsAtFirstError pins the contract that element parsing
// stops at the first failure: later elements are never parsed.
func TestParseListStopsAtFirstError(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	_, err := ParseList("a,b,c", func(s string) (string, error) {
		calls++
		if s == "b" {
			return "", fmt.Errorf("%s: %w", s, boom)
		}
		return s, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if calls != 2 {
		t.Fatalf("parse called %d times, want 2 (a then failing b)", calls)
	}
}

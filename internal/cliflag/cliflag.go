// Package cliflag holds the comma-separated-list parsing shared by the
// CLIs and the HTTP query layer, so axis syntax cannot drift between
// surfaces: empty elements are skipped, surrounding whitespace is
// trimmed, and element parsing stops at the first error.
package cliflag

import "strings"

// Split breaks a comma-separated list into trimmed, non-empty elements.
func Split(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// ParseList parses each element of a comma-separated list with parse,
// returning the first error.
func ParseList[T any](s string, parse func(string) (T, error)) ([]T, error) {
	var out []T
	for _, v := range Split(s) {
		t, err := parse(v)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Package cliflag holds the comma-separated-list parsing shared by the
// CLIs and the HTTP query layer, so axis syntax cannot drift between
// surfaces: empty elements are skipped, surrounding whitespace is
// trimmed, and element parsing stops at the first error.
package cliflag

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Split breaks a comma-separated list into trimmed, non-empty elements.
func Split(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// ParseList parses each element of a comma-separated list with parse,
// returning the first error.
func ParseList[T any](s string, parse func(string) (T, error)) ([]T, error) {
	var out []T
	for _, v := range Split(s) {
		t, err := parse(v)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// ParsePfails parses the pfail axis syntax shared by vccmin-sweep and
// vccmin-query: a comma list ("1e-4,5e-4") or lo:hi:n for n log-spaced
// points inclusive of both endpoints.
func ParsePfails(s string) ([]float64, error) {
	if lo, hi, n, ok := parseRange(s); ok {
		if lo <= 0 || hi < lo || n < 1 {
			return nil, fmt.Errorf("bad pfail range %q: need 0 < lo <= hi and n >= 1", s)
		}
		if n == 1 {
			return []float64{lo}, nil
		}
		out := make([]float64, n)
		step := math.Log(hi/lo) / float64(n-1)
		for i := range out {
			out[i] = lo * math.Exp(float64(i)*step)
		}
		out[n-1] = hi // exact endpoint despite float rounding
		return out, nil
	}
	return ParseList(s, func(v string) (float64, error) {
		return strconv.ParseFloat(v, 64)
	})
}

// parseRange recognizes lo:hi:n.
func parseRange(s string) (lo, hi float64, n int, ok bool) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, false
	}
	lo, err1 := strconv.ParseFloat(parts[0], 64)
	hi, err2 := strconv.ParseFloat(parts[1], 64)
	n, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return 0, 0, 0, false
	}
	return lo, hi, n, true
}

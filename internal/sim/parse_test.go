package sim

import "testing"

// The parsers accept both short CLI forms and the Stringer names; these
// round-trips close the drift hole where a new enum value gets a
// String() form ParseScheme/ParseVictim do not recognize (a sweep row
// or service response would then name a configuration no request could
// reproduce).

func TestParseSchemeRoundTripsEveryString(t *testing.T) {
	schemes := []Scheme{Baseline, WordDisable, BlockDisable, IncrementalWordDisable, BitFix}
	for _, s := range schemes {
		got, err := ParseScheme(s.String())
		if err != nil {
			t.Errorf("ParseScheme(%q): %v", s.String(), err)
			continue
		}
		if got != s {
			t.Errorf("ParseScheme(%q) = %v, want %v", s.String(), got, s)
		}
	}
}

func TestParseVictimRoundTripsEveryString(t *testing.T) {
	victims := []VictimKind{NoVictim, Victim10T, Victim6T}
	for _, v := range victims {
		got, err := ParseVictim(v.String())
		if err != nil {
			t.Errorf("ParseVictim(%q): %v", v.String(), err)
			continue
		}
		if got != v {
			t.Errorf("ParseVictim(%q) = %v, want %v", v.String(), got, v)
		}
	}
}

func TestParseShortForms(t *testing.T) {
	schemeCases := map[string]Scheme{
		"base": Baseline, "baseline": Baseline,
		"word": WordDisable, "wd": WordDisable,
		"block": BlockDisable, "bd": BlockDisable,
		"inc-word": IncrementalWordDisable, "iwd": IncrementalWordDisable,
		"bitfix": BitFix,
	}
	for in, want := range schemeCases {
		if got, err := ParseScheme(in); err != nil || got != want {
			t.Errorf("ParseScheme(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	victimCases := map[string]VictimKind{
		"none": NoVictim, "no": NoVictim,
		"10t": Victim10T, "10T": Victim10T,
		"6t": Victim6T, "6T": Victim6T,
	}
	for in, want := range victimCases {
		if got, err := ParseVictim(in); err != nil || got != want {
			t.Errorf("ParseVictim(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
}

func TestParseRejectsUnknown(t *testing.T) {
	if _, err := ParseScheme("holographic"); err == nil {
		t.Error("ParseScheme accepted an unknown scheme")
	}
	if _, err := ParseVictim("32t"); err == nil {
		t.Error("ParseVictim accepted an unknown victim kind")
	}
	// The out-of-range Stringer forms ("Scheme(9)") must not parse either.
	if _, err := ParseScheme(Scheme(9).String()); err == nil {
		t.Error("ParseScheme accepted an out-of-range Scheme's String()")
	}
	if _, err := ParseVictim(VictimKind(9).String()); err == nil {
		t.Error("ParseVictim accepted an out-of-range VictimKind's String()")
	}
}

// Package sim assembles complete simulated systems — core, predictors,
// L1 I/D caches, optional victim cache, L2 and memory — for each of the
// paper's Table III configurations, and runs benchmarks on them.
//
// Operating modes (Table III):
//
//	High voltage: 3 GHz, memory 255 cycles, all caches fully reliable.
//	Low voltage:  600 MHz, memory 51 cycles; the L1s keep only what the
//	              active scheme can certify (block-disable way masks, or
//	              word-disabling's halved geometry).
//
// Latencies: L1 3 cycles (4 with word-disabling's alignment network, in
// both modes), L2 20 cycles, victim cache +1.
package sim

import (
	"fmt"

	"vccmin/internal/cache"
	"vccmin/internal/core"
	"vccmin/internal/faults"
	"vccmin/internal/geom"
	"vccmin/internal/pipeline"
	"vccmin/internal/trace"
	"vccmin/internal/workload"
)

// Mode is the operating voltage domain.
type Mode int

const (
	HighVoltage Mode = iota
	LowVoltage
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == HighVoltage {
		return "high-voltage"
	}
	return "low-voltage"
}

// Scheme selects the cache fault-tolerance mechanism.
type Scheme int

const (
	Baseline Scheme = iota
	WordDisable
	BlockDisable
	IncrementalWordDisable // extension: the Section IV.C variant, simulated
	BitFix                 // extension: Wilkerson's bit-pair repair (Section II), simulated
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case Baseline:
		return "baseline"
	case WordDisable:
		return "word-disable"
	case BlockDisable:
		return "block-disable"
	case IncrementalWordDisable:
		return "incremental-word-disable"
	case BitFix:
		return "bit-fix"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// VictimKind selects the victim-cache option of Section III.A.
type VictimKind int

const (
	NoVictim  VictimKind = iota
	Victim10T            // 10T cells: all 16 entries usable at low voltage
	Victim6T             // 6T cells + disable bit: half the entries at low voltage
)

// String implements fmt.Stringer.
func (v VictimKind) String() string {
	switch v {
	case NoVictim:
		return "no-victim"
	case Victim10T:
		return "victim-10T"
	case Victim6T:
		return "victim-6T"
	}
	return fmt.Sprintf("VictimKind(%d)", int(v))
}

// TableIII holds the mode-dependent machine parameters.
type TableIII struct {
	MemLatency     int
	L1Size         int
	L1Ways         int
	L1BlockBytes   int
	L1Latency      int
	L2Size         int
	L2Ways         int
	L2Latency      int
	VictimEntries  int
	VictimLatency  int
	WordDisableLat int // L1 latency under word-disabling (alignment network)
}

// Reference returns the paper's Table III parameters for a mode.
func Reference(m Mode) TableIII {
	t := TableIII{
		MemLatency:     255,
		L1Size:         32 * 1024,
		L1Ways:         8,
		L1BlockBytes:   64,
		L1Latency:      3,
		L2Size:         2 * 1024 * 1024,
		L2Ways:         8,
		L2Latency:      20,
		VictimEntries:  16,
		VictimLatency:  1,
		WordDisableLat: 4,
	}
	if m == LowVoltage {
		t.MemLatency = 51
	}
	return t
}

// Options configures one simulation run.
type Options struct {
	Benchmark string
	Mode      Mode
	Scheme    Scheme
	Victim    VictimKind

	// Pair supplies the I/D fault maps; required for BlockDisable and
	// IncrementalWordDisable at low voltage, ignored otherwise.
	Pair *faults.Pair

	// Instructions to simulate (default 200k).
	Instructions int

	// Warmup instructions executed before measurement begins: caches and
	// predictors run but their statistics (and the cycle count) reset at
	// the measurement boundary. Defaults to Instructions/2. The paper's
	// 100M-instruction runs make warmup negligible; at reproduction scale
	// it must be explicit. Set to -1 to disable.
	Warmup int

	// Seed for the workload generator.
	Seed int64

	// Machine overrides; zero value means Reference(Mode).
	Machine *TableIII

	// Core overrides; zero value means pipeline.TableII().
	Core *pipeline.Config

	// L2Pair applies block-disabling to the L2 as well (extension).
	L2Map *faults.Map

	// PrefetchNextLine enables the L1D next-line prefetcher (extension).
	PrefetchNextLine bool
}

// Result reports one simulation run.
type Result struct {
	Options Options
	Stats   pipeline.Stats
	IPC     float64

	ICache        cache.Stats
	DCache        cache.Stats
	L2            cache.Stats
	VictimHitRate float64

	// Low-voltage capacity actually available to the run.
	ICapacity float64
	DCapacity float64
}

// System is an assembled machine ready to run.
type System struct {
	CPU    *pipeline.CPU
	ICache *cache.Cache
	DCache *cache.Cache
	L2     *cache.Cache
	Mem    *cache.Memory

	iCap, dCap float64
}

// Reset returns the whole machine to its just-built state — cold caches
// and predictors, empty pipeline rings, zeroed statistics — while keeping
// the assembled configuration: geometries, latencies, way-enable maps and
// the victim cache wiring survive. A Run after Reset is bit-identical to
// a Run on a freshly Built system with the same Options, which is what
// lets the dvfs probe reuse one system per mode across phases instead of
// rebuilding the hierarchy for every (mode, phase) cell.
func (s *System) Reset() {
	s.ICache.Reset()
	s.DCache.Reset()
	s.L2.Reset()
	s.Mem.Accesses = 0
	s.CPU.Reset()
}

// Build assembles the system for opts without running it.
func Build(opts Options) (*System, error) {
	machine := Reference(opts.Mode)
	if opts.Machine != nil {
		machine = *opts.Machine
	}
	coreCfg := pipeline.TableII()
	if opts.Core != nil {
		coreCfg = *opts.Core
	}

	mem := &cache.Memory{Latency: machine.MemLatency}
	l2Geom, err := geom.New(machine.L2Size, machine.L2Ways, machine.L1BlockBytes)
	if err != nil {
		return nil, fmt.Errorf("sim: l2 geometry: %w", err)
	}
	l2, err := cache.New("L2", l2Geom, machine.L2Latency, mem)
	if err != nil {
		return nil, err
	}
	if opts.L2Map != nil && opts.Mode == LowVoltage {
		l2.Enable = core.BuildBlockDisable(opts.L2Map)
	}

	l1Size, l1Ways, l1Lat := machine.L1Size, machine.L1Ways, machine.L1Latency
	switch {
	case opts.Scheme == WordDisable:
		l1Lat = machine.WordDisableLat
		if opts.Mode == LowVoltage {
			l1Size /= 2
			l1Ways /= 2
		}
	case opts.Scheme == BitFix && opts.Mode == LowVoltage:
		// A quarter of the ways hold fix bits; the patching network adds
		// two cycles. At high voltage bit-fix is bypassed entirely.
		bf := core.ReferenceBitFix()
		l1Lat += bf.ExtraLatencyCycles
		l1Size = l1Size * 3 / 4
		l1Ways = l1Ways * 3 / 4
	}
	l1Geom, err := geom.New(l1Size, l1Ways, machine.L1BlockBytes)
	if err != nil {
		return nil, fmt.Errorf("sim: l1 geometry: %w", err)
	}

	ic, err := cache.New("IL1", l1Geom, l1Lat, l2)
	if err != nil {
		return nil, err
	}
	dc, err := cache.New("DL1", l1Geom, l1Lat, l2)
	if err != nil {
		return nil, err
	}
	dc.PrefetchNextLine = opts.PrefetchNextLine

	sys := &System{ICache: ic, DCache: dc, L2: l2, Mem: mem, iCap: 1, dCap: 1}

	if opts.Mode == LowVoltage {
		switch opts.Scheme {
		case BlockDisable:
			if opts.Pair == nil {
				return nil, fmt.Errorf("sim: block-disable at low voltage needs a fault-map pair")
			}
			ic.Enable = core.BuildBlockDisable(opts.Pair.I)
			dc.Enable = core.BuildBlockDisable(opts.Pair.D)
			sys.iCap = ic.Enable.CapacityFraction()
			sys.dCap = dc.Enable.CapacityFraction()
		case IncrementalWordDisable:
			if opts.Pair == nil {
				return nil, fmt.Errorf("sim: incremental word-disable at low voltage needs a fault-map pair")
			}
			ic.Enable = buildIncrementalEnable(opts.Pair.I)
			dc.Enable = buildIncrementalEnable(opts.Pair.D)
			// The repairable pairs run merged at the alignment-network
			// latency; we charge it on every access (conservative).
			ic.HitLatency = machine.WordDisableLat
			dc.HitLatency = machine.WordDisableLat
			sys.iCap = ic.Enable.CapacityFraction()
			sys.dCap = dc.Enable.CapacityFraction()
		case WordDisable:
			sys.iCap, sys.dCap = 0.5, 0.5
		case BitFix:
			sys.iCap, sys.dCap = 0.75, 0.75
		}
	}

	if opts.Victim != NoVictim {
		entries := machine.VictimEntries
		if opts.Victim == Victim6T && opts.Mode == LowVoltage {
			entries = core.VictimUsableEntries(entries)
		}
		v, err := cache.NewVictim(entries, machine.VictimLatency, machine.L1BlockBytes)
		if err != nil {
			return nil, err
		}
		dc.Victim = v
	}

	cpu, err := pipeline.New(coreCfg, ic, dc)
	if err != nil {
		return nil, err
	}
	sys.CPU = cpu
	return sys, nil
}

// buildIncrementalEnable derives a way-enable map for the incremental
// word-disable scheme: both ways of a disabled pair are off; repairable
// pairs keep one way (merged half capacity); fault-free pairs keep both.
func buildIncrementalEnable(m *faults.Map) *core.BlockDisableMap {
	g := m.Geom
	cfg := core.ReferenceWordDisable()
	subPerBlock := m.WordsPerBlock() / cfg.WordsPerSubblock
	d := &core.BlockDisableMap{Geom: g, Sets: make([]core.WayMask, g.Sets())}
	for set := 0; set < g.Sets(); set++ {
		var mask core.WayMask
		for p := 0; p < g.Ways/2; p++ {
			w0, w1 := 2*p, 2*p+1
			state := classifyPair(m, cfg, set, w0, w1, subPerBlock)
			switch state {
			case core.PairFullCapacity:
				mask |= 1<<uint(w0) | 1<<uint(w1)
			case core.PairHalfCapacity:
				mask |= 1 << uint(w0)
			}
		}
		d.Sets[set] = mask
	}
	return d
}

// classifyPair mirrors core's pair classification for the enable builder.
func classifyPair(m *faults.Map, cfg core.WordDisableConfig, set, w0, w1, subPerBlock int) core.PairState {
	if m.At(set, w0).WordMask == 0 && m.At(set, w1).WordMask == 0 {
		return core.PairFullCapacity
	}
	for _, way := range []int{w0, w1} {
		for s := 0; s < subPerBlock; s++ {
			if m.SubblockFaultyWords(set, way, s*cfg.WordsPerSubblock, cfg.WordsPerSubblock) > cfg.WordsPerSubblock/2 {
				return core.PairDisabled
			}
		}
	}
	return core.PairHalfCapacity
}

// Run builds the system for opts and simulates the benchmark.
func Run(opts Options) (Result, error) {
	if opts.Instructions <= 0 {
		opts.Instructions = 200_000
	}
	if opts.Warmup == 0 {
		opts.Warmup = opts.Instructions / 2
	}
	if opts.Warmup < 0 {
		opts.Warmup = 0
	}
	prof, err := workload.ByName(opts.Benchmark)
	if err != nil {
		return Result{}, err
	}
	gen, err := workload.NewGenerator(prof, opts.Seed)
	if err != nil {
		return Result{}, err
	}
	sys, err := Build(opts)
	if err != nil {
		return Result{}, err
	}
	return sys.run(opts, gen), nil
}

func (s *System) run(opts Options, gen trace.Generator) Result {
	if opts.Warmup > 0 {
		s.CPU.Run(gen, opts.Warmup)
		s.ICache.ResetStats()
		s.DCache.ResetStats()
		s.L2.ResetStats()
		s.Mem.Accesses = 0
	}
	stats := s.CPU.Run(gen, opts.Instructions)
	res := Result{
		Options:   opts,
		Stats:     stats,
		IPC:       stats.IPC(),
		ICache:    s.ICache.Stats,
		DCache:    s.DCache.Stats,
		L2:        s.L2.Stats,
		ICapacity: s.iCap,
		DCapacity: s.dCap,
	}
	if s.DCache.Victim != nil {
		res.VictimHitRate = s.DCache.Victim.HitRate()
	}
	return res
}

package sim

import (
	"testing"

	"vccmin/internal/faults"
	"vccmin/internal/geom"
)

const testInstrs = 60_000

func refPair(seed int64) *faults.Pair {
	g := geom.MustNew(32*1024, 8, 64)
	p := faults.GeneratePair(g, g, 32, 0.001, seed)
	return &p
}

func mustRun(t *testing.T, opts Options) Result {
	t.Helper()
	if opts.Instructions == 0 {
		opts.Instructions = testInstrs
	}
	r, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestReferenceTableIII(t *testing.T) {
	hv, lv := Reference(HighVoltage), Reference(LowVoltage)
	if hv.MemLatency != 255 || lv.MemLatency != 51 {
		t.Errorf("memory latencies = %d/%d, want 255/51", hv.MemLatency, lv.MemLatency)
	}
	if hv.L1Size != 32*1024 || hv.L1Ways != 8 || hv.L1Latency != 3 || hv.WordDisableLat != 4 {
		t.Errorf("L1 parameters wrong: %+v", hv)
	}
	if hv.L2Size != 2*1024*1024 || hv.L2Latency != 20 {
		t.Errorf("L2 parameters wrong: %+v", hv)
	}
	if hv.VictimEntries != 16 || hv.VictimLatency != 1 {
		t.Errorf("victim parameters wrong: %+v", hv)
	}
}

func TestBaselineRuns(t *testing.T) {
	r := mustRun(t, Options{Benchmark: "gzip", Mode: LowVoltage, Scheme: Baseline, Seed: 1})
	if r.IPC <= 0 || r.IPC > 4 {
		t.Errorf("baseline IPC = %v out of range", r.IPC)
	}
	if r.ICache.Accesses == 0 || r.DCache.Accesses == 0 {
		t.Error("caches unused")
	}
	if r.ICapacity != 1 || r.DCapacity != 1 {
		t.Error("baseline capacity must be 1")
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := Run(Options{Benchmark: "nosuch"}); err == nil {
		t.Error("accepted unknown benchmark")
	}
}

func TestBlockDisableNeedsPair(t *testing.T) {
	if _, err := Run(Options{Benchmark: "gzip", Mode: LowVoltage, Scheme: BlockDisable}); err == nil {
		t.Error("block-disable at low voltage must require a fault pair")
	}
	if _, err := Run(Options{Benchmark: "gzip", Mode: LowVoltage, Scheme: IncrementalWordDisable}); err == nil {
		t.Error("incremental word-disable at low voltage must require a fault pair")
	}
	// At high voltage no pair is needed: the disable bits are ignored.
	if _, err := Run(Options{Benchmark: "gzip", Mode: HighVoltage, Scheme: BlockDisable, Instructions: 10_000}); err != nil {
		t.Errorf("block-disable at high voltage should not need a pair: %v", err)
	}
}

func TestWordDisableGeometryAndLatency(t *testing.T) {
	sysLV, err := Build(Options{Benchmark: "gzip", Mode: LowVoltage, Scheme: WordDisable})
	if err != nil {
		t.Fatal(err)
	}
	if sysLV.DCache.Geom.SizeBytes != 16*1024 || sysLV.DCache.Geom.Ways != 4 {
		t.Errorf("WD low-voltage D$ = %v, want 16KB 4-way", sysLV.DCache.Geom)
	}
	if sysLV.DCache.HitLatency != 4 || sysLV.ICache.HitLatency != 4 {
		t.Error("WD caches must have latency 4")
	}
	sysHV, err := Build(Options{Benchmark: "gzip", Mode: HighVoltage, Scheme: WordDisable})
	if err != nil {
		t.Fatal(err)
	}
	if sysHV.DCache.Geom.SizeBytes != 32*1024 || sysHV.DCache.Geom.Ways != 8 {
		t.Errorf("WD high-voltage D$ = %v, want full 32KB 8-way", sysHV.DCache.Geom)
	}
	if sysHV.DCache.HitLatency != 4 {
		t.Error("WD alignment network must cost +1 cycle at high voltage too")
	}
}

func TestBlockDisableCapacityPlumbed(t *testing.T) {
	r := mustRun(t, Options{Benchmark: "gzip", Mode: LowVoltage, Scheme: BlockDisable, Pair: refPair(3), Seed: 1})
	if r.ICapacity <= 0.4 || r.ICapacity >= 0.8 {
		t.Errorf("I capacity = %v, want ≈0.58", r.ICapacity)
	}
	if r.DCapacity <= 0.4 || r.DCapacity >= 0.8 {
		t.Errorf("D capacity = %v, want ≈0.58", r.DCapacity)
	}
}

func TestVictimKinds(t *testing.T) {
	sys10, err := Build(Options{Benchmark: "gzip", Mode: LowVoltage, Scheme: BlockDisable, Pair: refPair(4), Victim: Victim10T})
	if err != nil {
		t.Fatal(err)
	}
	if sys10.DCache.Victim == nil || sys10.DCache.Victim.Entries != 16 {
		t.Error("10T victim cache should keep 16 entries at low voltage")
	}
	sys6, err := Build(Options{Benchmark: "gzip", Mode: LowVoltage, Scheme: BlockDisable, Pair: refPair(4), Victim: Victim6T})
	if err != nil {
		t.Fatal(err)
	}
	if sys6.DCache.Victim == nil || sys6.DCache.Victim.Entries != 8 {
		t.Error("6T victim cache should keep 8 entries at low voltage")
	}
	sys6hv, err := Build(Options{Benchmark: "gzip", Mode: HighVoltage, Scheme: Baseline, Victim: Victim6T})
	if err != nil {
		t.Fatal(err)
	}
	if sys6hv.DCache.Victim.Entries != 16 {
		t.Error("6T victim cache keeps all entries at high voltage")
	}
	sysNone, err := Build(Options{Benchmark: "gzip", Mode: HighVoltage, Scheme: Baseline})
	if err != nil {
		t.Fatal(err)
	}
	if sysNone.DCache.Victim != nil {
		t.Error("no-victim build has a victim cache")
	}
}

func TestHighVoltageBlockDisableEqualsBaseline(t *testing.T) {
	// At high voltage block-disabling is overhead-free: identical IPC.
	base := mustRun(t, Options{Benchmark: "crafty", Mode: HighVoltage, Scheme: Baseline, Seed: 2})
	bd := mustRun(t, Options{Benchmark: "crafty", Mode: HighVoltage, Scheme: BlockDisable, Pair: refPair(5), Seed: 2})
	if base.IPC != bd.IPC {
		t.Errorf("high-voltage block-disable IPC %v != baseline %v", bd.IPC, base.IPC)
	}
}

func TestHighVoltageWordDisableSlower(t *testing.T) {
	base := mustRun(t, Options{Benchmark: "crafty", Mode: HighVoltage, Scheme: Baseline, Seed: 2})
	wd := mustRun(t, Options{Benchmark: "crafty", Mode: HighVoltage, Scheme: WordDisable, Seed: 2})
	if wd.IPC >= base.IPC {
		t.Errorf("word-disable at high voltage should be slower: %v vs %v", wd.IPC, base.IPC)
	}
}

func TestLowVoltageSchemeOrdering(t *testing.T) {
	// For a capacity-sensitive benchmark: baseline > block-disable > word-disable
	// (on the average fault map; paper Fig. 8).
	base := mustRun(t, Options{Benchmark: "crafty", Mode: LowVoltage, Scheme: Baseline, Seed: 2})
	wd := mustRun(t, Options{Benchmark: "crafty", Mode: LowVoltage, Scheme: WordDisable, Seed: 2})
	bd := mustRun(t, Options{Benchmark: "crafty", Mode: LowVoltage, Scheme: BlockDisable, Pair: refPair(6), Seed: 2})
	if !(base.IPC > bd.IPC) {
		t.Errorf("baseline (%v) should beat block-disable (%v)", base.IPC, bd.IPC)
	}
	if !(bd.IPC > wd.IPC) {
		t.Errorf("block-disable (%v) should beat word-disable (%v) on crafty", bd.IPC, wd.IPC)
	}
}

func TestVictimCacheHelpsBlockDisable(t *testing.T) {
	pair := refPair(7)
	plain := mustRun(t, Options{Benchmark: "gzip", Mode: LowVoltage, Scheme: BlockDisable, Pair: pair, Seed: 3})
	withVC := mustRun(t, Options{Benchmark: "gzip", Mode: LowVoltage, Scheme: BlockDisable, Pair: pair, Victim: Victim10T, Seed: 3})
	if withVC.IPC < plain.IPC {
		t.Errorf("victim cache should not hurt: %v vs %v", withVC.IPC, plain.IPC)
	}
	if withVC.VictimHitRate == 0 {
		t.Error("victim cache never hit")
	}
}

func TestDeterministicRuns(t *testing.T) {
	opts := Options{Benchmark: "vpr", Mode: LowVoltage, Scheme: BlockDisable, Pair: refPair(8), Victim: Victim10T, Seed: 4, Instructions: 30_000}
	a := mustRun(t, opts)
	b := mustRun(t, opts)
	if a.IPC != b.IPC || a.Stats != b.Stats {
		t.Error("same options produced different results")
	}
}

func TestIncrementalWordDisableRuns(t *testing.T) {
	r := mustRun(t, Options{Benchmark: "gzip", Mode: LowVoltage, Scheme: IncrementalWordDisable, Pair: refPair(9), Seed: 5})
	if r.IPC <= 0 {
		t.Fatal("incremental WD produced zero IPC")
	}
	// Capacity should be >= 0.5-ish at pfail 1e-3 (most pairs fault-free).
	if r.DCapacity < 0.5 || r.DCapacity > 1 {
		t.Errorf("incremental WD capacity = %v, want in [0.5, 1]", r.DCapacity)
	}
}

func TestL2BlockDisableExtension(t *testing.T) {
	g2 := geom.MustNew(2*1024*1024, 8, 64)
	l2map := faults.GeneratePair(g2, g2, 32, 0.001, 11).I
	r := mustRun(t, Options{Benchmark: "mcf", Mode: LowVoltage, Scheme: Baseline, L2Map: l2map, Seed: 6})
	rFull := mustRun(t, Options{Benchmark: "mcf", Mode: LowVoltage, Scheme: Baseline, Seed: 6})
	if r.IPC > rFull.IPC {
		t.Errorf("L2 capacity loss should not speed things up: %v vs %v", r.IPC, rFull.IPC)
	}
}

func TestStringers(t *testing.T) {
	if HighVoltage.String() != "high-voltage" || LowVoltage.String() != "low-voltage" {
		t.Error("mode names wrong")
	}
	if Baseline.String() != "baseline" || WordDisable.String() != "word-disable" ||
		BlockDisable.String() != "block-disable" || IncrementalWordDisable.String() != "incremental-word-disable" {
		t.Error("scheme names wrong")
	}
	if NoVictim.String() != "no-victim" || Victim10T.String() != "victim-10T" || Victim6T.String() != "victim-6T" {
		t.Error("victim names wrong")
	}
	if Scheme(9).String() == "" || VictimKind(9).String() == "" {
		t.Error("unknown enum strings empty")
	}
}

func TestBitFixGeometryAndOrdering(t *testing.T) {
	sys, err := Build(Options{Benchmark: "gzip", Mode: LowVoltage, Scheme: BitFix})
	if err != nil {
		t.Fatal(err)
	}
	if sys.DCache.Geom.SizeBytes != 24*1024 || sys.DCache.Geom.Ways != 6 {
		t.Errorf("bit-fix low-voltage D$ = %v, want 24KB 6-way", sys.DCache.Geom)
	}
	if sys.DCache.HitLatency != 5 {
		t.Errorf("bit-fix latency = %d, want 5 (3 + 2-cycle patching)", sys.DCache.HitLatency)
	}
	// High voltage: bypassed entirely.
	hv, err := Build(Options{Benchmark: "gzip", Mode: HighVoltage, Scheme: BitFix})
	if err != nil {
		t.Fatal(err)
	}
	if hv.DCache.Geom.SizeBytes != 32*1024 || hv.DCache.HitLatency != 3 {
		t.Errorf("bit-fix at high voltage should be the baseline: %v lat %d", hv.DCache.Geom, hv.DCache.HitLatency)
	}
	// Performance: bit-fix keeps more capacity than word-disable but pays
	// two extra cycles; on a latency-sensitive benchmark it lands below
	// the baseline.
	base := mustRun(t, Options{Benchmark: "crafty", Mode: LowVoltage, Seed: 2})
	bf := mustRun(t, Options{Benchmark: "crafty", Mode: LowVoltage, Scheme: BitFix, Seed: 2})
	if bf.IPC >= base.IPC {
		t.Errorf("bit-fix (%v) should lose to the baseline (%v)", bf.IPC, base.IPC)
	}
	if bf.ICapacity != 0.75 || bf.DCapacity != 0.75 {
		t.Errorf("bit-fix capacity = %v/%v, want 0.75", bf.ICapacity, bf.DCapacity)
	}
}

package sim

import "fmt"

// ParseScheme converts a CLI-style scheme name to a Scheme. Both the full
// Stringer names ("block-disable") and the short sweep-flag forms
// ("block") are accepted.
func ParseScheme(s string) (Scheme, error) {
	switch s {
	case "baseline", "base":
		return Baseline, nil
	case "word", "word-disable", "wd":
		return WordDisable, nil
	case "block", "block-disable", "bd":
		return BlockDisable, nil
	case "inc-word", "incremental-word-disable", "iwd":
		return IncrementalWordDisable, nil
	case "bitfix", "bit-fix":
		return BitFix, nil
	}
	return 0, fmt.Errorf("sim: unknown scheme %q (want baseline, word, block, inc-word or bitfix)", s)
}

// ParseVictim converts a CLI-style victim-cache name to a VictimKind.
func ParseVictim(s string) (VictimKind, error) {
	switch s {
	case "none", "no-victim", "no":
		return NoVictim, nil
	case "10t", "10T", "victim-10T":
		return Victim10T, nil
	case "6t", "6T", "victim-6T":
		return Victim6T, nil
	}
	return 0, fmt.Errorf("sim: unknown victim kind %q (want none, 10t or 6t)", s)
}

package loadgen

import (
	"math"
	"time"
)

// Histogram is a log-bucketed latency histogram: bucket boundaries grow
// geometrically from histFloor, so it spans microseconds to minutes in
// a couple hundred counters with a bounded relative error per bucket
// (~7% at the configured growth). Quantiles come from a cumulative walk
// and report the geometric midpoint of the landing bucket.
//
// Not safe for concurrent use; the runner owns one per endpoint on its
// single collector goroutine.
type Histogram struct {
	counts []uint64
	total  uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

const (
	histFloor  = 1000 // ns; everything faster lands in bucket 0
	histGrowth = 1.15 // per-bucket boundary ratio
)

func histBucket(d time.Duration) int {
	if d < histFloor {
		return 0
	}
	return 1 + int(math.Log(float64(d)/histFloor)/math.Log(histGrowth))
}

// histBound returns bucket i's lower boundary in nanoseconds.
func histBound(i int) float64 {
	if i <= 0 {
		return 0
	}
	return histFloor * math.Pow(histGrowth, float64(i-1))
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := histBucket(d)
	if i >= len(h.counts) {
		grown := make([]uint64, i+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i]++
	h.sum += d
	if h.total == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.total++
}

// Count reports how many observations were recorded.
func (h *Histogram) Count() uint64 { return h.total }

// Mean reports the exact arithmetic mean of the observations (tracked
// outside the buckets, so it carries no bucketing error).
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Min reports the smallest observation.
func (h *Histogram) Min() time.Duration { return h.min }

// Max reports the largest observation.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile reports the q-quantile (q in [0,1]) as the geometric
// midpoint of the bucket holding the q·count-th observation, clamped to
// the exact observed min and max so the tails never over-report.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen < rank {
			continue
		}
		lo := histBound(i)
		hi := histBound(i + 1)
		if lo <= 0 {
			lo = 1
		}
		d := time.Duration(math.Sqrt(lo * hi))
		if d < h.min {
			d = h.min
		}
		if d > h.max {
			d = h.max
		}
		return d
	}
	return h.max
}

// Buckets returns the non-empty buckets as (lower bound, count) pairs,
// for report serialization.
func (h *Histogram) Buckets() []HistBucket {
	var out []HistBucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		out = append(out, HistBucket{LowNs: histBound(i), Count: c})
	}
	return out
}

// HistBucket is one non-empty histogram bucket.
type HistBucket struct {
	LowNs float64 `json:"low_ns"` // inclusive lower latency bound
	Count uint64  `json:"count"`
}

// Package loadgen is the mixed-traffic replay engine behind
// cmd/vccmin-loadgen: it fires a weighted endpoint mix at a running
// service at a fixed open-loop arrival rate and reports per-endpoint
// latency histograms plus the traffic-hardening outcomes (how many
// requests were answered, rate-limited with 429, or shed with 503).
//
// Open loop means the i-th request launches at start + i/rate
// regardless of whether earlier requests have finished — the arrival
// process never slows down to match a struggling server, which is
// exactly what makes saturation (and the admission control's response
// to it) visible. A closed-loop client would self-throttle and hide it.
//
// Everything is deterministic given the seed: the endpoint sequence
// comes from a seeded PRNG, so two runs against equally-behaving
// servers replay the same request stream.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Endpoint is one entry of the traffic mix.
type Endpoint struct {
	// Name labels the endpoint in reports and bench output; it must be
	// unique within a mix and look like a path segment (e.g. "capacity").
	Name string `json:"name"`
	// Weight is the endpoint's relative share of the mix; <= 0 removes
	// it from the mix.
	Weight float64 `json:"weight"`
	Method string  `json:"method"`
	// Path is the target path and query, relative to the base URL.
	Path string `json:"path"`
	// Body is the JSON request body for POSTs ("" for none).
	Body string `json:"body,omitempty"`
}

// Config parameterizes one run.
type Config struct {
	// BaseURL roots every request, e.g. "http://127.0.0.1:8780".
	BaseURL string
	// Mix is the weighted endpoint set; DefaultMix() when empty.
	Mix []Endpoint
	// Rate is the open-loop arrival rate in requests per second.
	Rate float64
	// Requests is the total number of requests to launch.
	Requests int
	// Timeout bounds each request; default 30s.
	Timeout time.Duration
	// Seed drives the endpoint-pick PRNG; default 1.
	Seed int64
	// APIKey, when set, is sent as X-API-Key (the rate limiter's
	// per-client key) on every request.
	APIKey string
	// Client overrides the HTTP client (tests); default is a fresh
	// client with the configured timeout.
	Client *http.Client
}

// DefaultMix is a mixed interactive/batch workload over the service's
// endpoints: cache-friendly analytics GETs, a compute POST, a sweep
// enqueue (batch-shaped, sheddable) and a stats probe. Weights sum to
// 10, so a weight of 1 is 10% of traffic.
func DefaultMix() []Endpoint {
	return []Endpoint{
		{Name: "capacity", Weight: 3, Method: "GET", Path: "/v1/capacity?pfail=1e-3"},
		{Name: "operating-point", Weight: 2, Method: "GET", Path: "/v1/operating-point?pfail=1e-3"},
		{Name: "overhead", Weight: 1, Method: "GET", Path: "/v1/overhead"},
		{Name: "sim", Weight: 2, Method: "POST", Path: "/v1/sim",
			Body: `{"benchmark":"crafty","scheme":"block","pfail":0.001,"instructions":3000}`},
		{Name: "sweep", Weight: 1, Method: "POST", Path: "/v1/sweeps",
			Body: `{"pfails":[0.001],"schemes":["block"],"benchmarks":["crafty"],"trials":1,"instructions":3000}`},
		{Name: "stats", Weight: 1, Method: "GET", Path: "/v1/stats"},
	}
}

// ExtendedMix is DefaultMix plus the two newest endpoints: a small
// GET /v1/fleet population sweep (interactive-tier, cache-friendly)
// and a POST /v1/query aggregation whose inline sweep is batch-shaped
// on first sight and cached after. It is a separate constructor, not a
// change to DefaultMix, so existing snapshots replay the exact request
// stream they always did; runs that want the fleet and query latencies
// in the picture opt in via vccmin-loadgen's -mix flag.
func ExtendedMix() []Endpoint {
	return append(DefaultMix(),
		Endpoint{Name: "fleet", Weight: 1, Method: "GET",
			Path: "/v1/fleet?dies=64&schemes=block&seed=1"},
		Endpoint{Name: "query", Weight: 1, Method: "POST", Path: "/v1/query",
			Body: `{"sweep":{"pfails":[0.001],"schemes":["block"],"benchmarks":["crafty"],"trials":1,"instructions":3000},"group_by":["scheme"],"metrics":["expected_capacity","mean_ipc"]}`},
	)
}

// EndpointReport is one endpoint's slice of the run.
type EndpointReport struct {
	Name        string       `json:"name"`
	Sent        int          `json:"sent"`
	OK          int          `json:"ok"`           // 2xx
	RateLimited int          `json:"rate_limited"` // 429
	Shed        int          `json:"shed"`         // 503
	OtherStatus int          `json:"other_status"` // any remaining status
	Errors      int          `json:"errors"`       // transport errors, timeouts
	P50Ns       float64      `json:"p50_ns"`
	P90Ns       float64      `json:"p90_ns"`
	P99Ns       float64      `json:"p99_ns"`
	MaxNs       float64      `json:"max_ns"`
	MeanNs      float64      `json:"mean_ns"`
	Buckets     []HistBucket `json:"buckets,omitempty"`
}

// Report is the run's full result.
type Report struct {
	BaseURL     string           `json:"base_url"`
	Requests    int              `json:"requests"`
	OfferedRate float64          `json:"offered_rate"` // configured arrival rate, req/s
	ElapsedSec  float64          `json:"elapsed_sec"`
	Throughput  float64          `json:"throughput"` // 2xx answered per second
	Seed        int64            `json:"seed"`
	Total       EndpointReport   `json:"total"` // Name "total"; aggregate over the mix
	Endpoints   []EndpointReport `json:"endpoints"`
}

// outcome travels from a request goroutine to the collector.
type outcome struct {
	endpoint int
	status   int // 0 = transport error
	latency  time.Duration
}

// Run replays the configured traffic and collects the report. The
// context cancels the run early (in-flight requests are abandoned);
// whatever completed is still reported.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL required")
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: Rate must be positive, got %g", cfg.Rate)
	}
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("loadgen: Requests must be positive, got %d", cfg.Requests)
	}
	mix := cfg.Mix
	if len(mix) == 0 {
		mix = DefaultMix()
	}
	var totalWeight float64
	for _, e := range mix {
		if e.Weight > 0 {
			totalWeight += e.Weight
		}
	}
	if totalWeight <= 0 {
		return nil, fmt.Errorf("loadgen: mix has no positive weights")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	base := strings.TrimRight(cfg.BaseURL, "/")

	// Cumulative-weight pick table.
	type cum struct {
		upTo float64
		idx  int
	}
	var cums []cum
	var acc float64
	for i, e := range mix {
		if e.Weight <= 0 {
			continue
		}
		acc += e.Weight
		cums = append(cums, cum{upTo: acc, idx: i})
	}
	rng := rand.New(rand.NewSource(seed))
	pick := func() int {
		x := rng.Float64() * totalWeight
		for _, c := range cums {
			if x < c.upTo {
				return c.idx
			}
		}
		return cums[len(cums)-1].idx
	}

	results := make(chan outcome, 256)
	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	start := time.Now()

	// Scheduler: open-loop arrivals at start + i*interval. Endpoint
	// picks happen here (the PRNG is not concurrency-safe), so the
	// request sequence is a pure function of the seed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < cfg.Requests; i++ {
			due := start.Add(time.Duration(i) * interval)
			if d := time.Until(due); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					return
				}
			} else if ctx.Err() != nil {
				return
			}
			ep := pick()
			wg.Add(1)
			go func(ep int) {
				defer wg.Done()
				results <- fire(ctx, client, base, cfg.APIKey, mix[ep], ep)
			}(ep)
		}
	}()
	// Close the results channel once the scheduler and every request
	// goroutine are done; the collector below drains until then.
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collector: single goroutine owns the histograms.
	hists := make([]*Histogram, len(mix))
	reports := make([]EndpointReport, len(mix))
	for i, e := range mix {
		hists[i] = &Histogram{}
		reports[i].Name = e.Name
	}
	totalHist := &Histogram{}
	total := EndpointReport{Name: "total"}
	for o := range results {
		r := &reports[o.endpoint]
		r.Sent++
		total.Sent++
		switch {
		case o.status == 0:
			r.Errors++
			total.Errors++
			continue // no latency for transport failures
		case o.status >= 200 && o.status < 300:
			r.OK++
			total.OK++
		case o.status == http.StatusTooManyRequests:
			r.RateLimited++
			total.RateLimited++
		case o.status == http.StatusServiceUnavailable:
			r.Shed++
			total.Shed++
		default:
			r.OtherStatus++
			total.OtherStatus++
		}
		hists[o.endpoint].Record(o.latency)
		totalHist.Record(o.latency)
	}
	elapsed := time.Since(start)

	fill := func(r *EndpointReport, h *Histogram) {
		r.P50Ns = float64(h.Quantile(0.50))
		r.P90Ns = float64(h.Quantile(0.90))
		r.P99Ns = float64(h.Quantile(0.99))
		r.MaxNs = float64(h.Max())
		r.MeanNs = float64(h.Mean())
		r.Buckets = h.Buckets()
	}
	fill(&total, totalHist)
	var eps []EndpointReport
	for i := range reports {
		if reports[i].Sent == 0 {
			continue
		}
		fill(&reports[i], hists[i])
		eps = append(eps, reports[i])
	}
	sort.Slice(eps, func(i, j int) bool { return eps[i].Name < eps[j].Name })

	rep := &Report{
		BaseURL:     cfg.BaseURL,
		Requests:    total.Sent,
		OfferedRate: cfg.Rate,
		ElapsedSec:  elapsed.Seconds(),
		Seed:        seed,
		Total:       total,
		Endpoints:   eps,
	}
	if elapsed > 0 {
		rep.Throughput = float64(total.OK) / elapsed.Seconds()
	}
	return rep, nil
}

// fire issues one request and classifies its outcome. The body is fully
// drained so the client's connection pool can reuse the socket — at
// open-loop rates, fresh handshakes per request would measure the
// dialer, not the server.
func fire(ctx context.Context, client *http.Client, base, apiKey string, e Endpoint, idx int) outcome {
	var body io.Reader
	if e.Body != "" {
		body = strings.NewReader(e.Body)
	}
	req, err := http.NewRequestWithContext(ctx, e.Method, base+e.Path, body)
	if err != nil {
		return outcome{endpoint: idx}
	}
	if e.Body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return outcome{endpoint: idx}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return outcome{endpoint: idx, status: resp.StatusCode, latency: time.Since(t0)}
}

// WriteBenchFormat renders the report as `go test -bench`-style result
// lines — one per endpoint plus the aggregate — that
// benchreg.ParseBenchOutput accepts, so `vccmin-bench -extra` can merge
// a loadgen run into a BENCH_<n>.json snapshot alongside the micro
// benchmarks. ns/op carries the p50 latency (the primary per-op cost);
// tail latencies and traffic outcomes ride as custom metrics.
func (r *Report) WriteBenchFormat(w io.Writer) error {
	write := func(e *EndpointReport) error {
		if e.Sent == 0 {
			return nil
		}
		_, err := fmt.Fprintf(w, "BenchmarkLoadgen/%s %d %.0f ns/op %.0f p90-ns %.0f p99-ns %.2f req/s %.4f shed-frac %.4f limited-frac\n",
			e.Name, e.Sent, e.P50Ns, e.P90Ns, e.P99Ns,
			float64(e.OK)/r.ElapsedSec,
			frac(e.Shed, e.Sent), frac(e.RateLimited, e.Sent))
		return err
	}
	if err := write(&r.Total); err != nil {
		return err
	}
	for i := range r.Endpoints {
		if err := write(&r.Endpoints[i]); err != nil {
			return err
		}
	}
	return nil
}

func frac(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// Summary renders a terse human-readable digest of the run.
func (r *Report) Summary(w io.Writer) {
	fmt.Fprintf(w, "loadgen: %d requests @ %.0f req/s offered against %s in %.2fs\n",
		r.Requests, r.OfferedRate, r.BaseURL, r.ElapsedSec)
	fmt.Fprintf(w, "  answered 2xx: %d (%.1f req/s)  429: %d  503: %d  other: %d  errors: %d\n",
		r.Total.OK, r.Throughput, r.Total.RateLimited, r.Total.Shed, r.Total.OtherStatus, r.Total.Errors)
	fmt.Fprintf(w, "  latency p50 %s  p90 %s  p99 %s  max %s\n",
		time.Duration(r.Total.P50Ns), time.Duration(r.Total.P90Ns),
		time.Duration(r.Total.P99Ns), time.Duration(r.Total.MaxNs))
	for _, e := range r.Endpoints {
		fmt.Fprintf(w, "  %-16s sent %5d  ok %5d  429 %4d  503 %4d  err %3d  p50 %s  p99 %s\n",
			e.Name, e.Sent, e.OK, e.RateLimited, e.Shed, e.Errors,
			time.Duration(e.P50Ns), time.Duration(e.P99Ns))
	}
}

package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vccmin/internal/benchreg"
)

func TestHistogramBasics(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	durs := []time.Duration{
		100 * time.Microsecond, 200 * time.Microsecond, 300 * time.Microsecond,
		1 * time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
	}
	for _, d := range durs {
		h.Record(d)
	}
	if h.Count() != uint64(len(durs)) {
		t.Fatalf("count %d, want %d", h.Count(), len(durs))
	}
	if h.Min() != durs[0] || h.Max() != durs[len(durs)-1] {
		t.Fatalf("min %v max %v, want %v and %v", h.Min(), h.Max(), durs[0], durs[len(durs)-1])
	}
	// Exact mean, bucketed quantiles: the median must land within one
	// bucket (±15%) of the true middle observations, and quantiles must
	// be monotone in q with clamped tails.
	p50, p99 := h.Quantile(0.5), h.Quantile(0.99)
	if p50 < 250*time.Microsecond || p50 > 350*time.Microsecond {
		t.Fatalf("p50 %v, want ~300µs", p50)
	}
	if p99 != h.Max() {
		t.Fatalf("p99 %v, want clamped to max %v (rank 6 of 6)", p99, h.Max())
	}
	if h.Quantile(0) > p50 || p50 > h.Quantile(0.9) || h.Quantile(0.9) > p99 {
		t.Fatal("quantiles not monotone")
	}
	wantMean := (100 + 200 + 300 + 1000 + 10000 + 100000) * time.Microsecond / 6
	if h.Mean() != wantMean {
		t.Fatalf("mean %v, want %v", h.Mean(), wantMean)
	}
	var total uint64
	for _, b := range h.Buckets() {
		total += b.Count
	}
	if total != h.Count() {
		t.Fatalf("bucket counts sum to %d, want %d", total, h.Count())
	}
}

// TestRunClassifiesOutcomes replays a mix against a stub server whose
// paths answer 200, 429 and 503, and checks the report's accounting
// matches what the server actually saw.
func TestRunClassifiesOutcomes(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		switch r.URL.Path {
		case "/ok":
			w.WriteHeader(200)
		case "/limited":
			w.WriteHeader(http.StatusTooManyRequests)
		case "/shed":
			w.WriteHeader(http.StatusServiceUnavailable)
		default:
			w.WriteHeader(404)
		}
	}))
	defer srv.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL: srv.URL,
		Mix: []Endpoint{
			{Name: "ok", Weight: 2, Method: "GET", Path: "/ok"},
			{Name: "limited", Weight: 1, Method: "GET", Path: "/limited"},
			{Name: "shed", Weight: 1, Method: "GET", Path: "/shed"},
			{Name: "missing", Weight: 1, Method: "GET", Path: "/nope"},
		},
		Rate:     5000,
		Requests: 200,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Sent != 200 || hits.Load() != 200 {
		t.Fatalf("sent %d, server saw %d, want 200/200", rep.Total.Sent, hits.Load())
	}
	if got := rep.Total.OK + rep.Total.RateLimited + rep.Total.Shed + rep.Total.OtherStatus; got != 200 {
		t.Fatalf("classified %d of 200", got)
	}
	byName := map[string]EndpointReport{}
	for _, e := range rep.Endpoints {
		byName[e.Name] = e
	}
	if e := byName["limited"]; e.RateLimited != e.Sent || e.OK != 0 {
		t.Fatalf("limited endpoint: %+v, want all 429", e)
	}
	if e := byName["shed"]; e.Shed != e.Sent {
		t.Fatalf("shed endpoint: %+v, want all 503", e)
	}
	if e := byName["missing"]; e.OtherStatus != e.Sent {
		t.Fatalf("missing endpoint: %+v, want all other_status", e)
	}
	if e := byName["ok"]; e.OK != e.Sent || e.P50Ns <= 0 {
		t.Fatalf("ok endpoint: %+v, want all 2xx with latency", e)
	}
	// The weighted pick is seeded: "ok" (weight 2 of 5) must dominate.
	if byName["ok"].Sent <= byName["limited"].Sent {
		t.Fatal("weight-2 endpoint did not receive the largest share")
	}
}

// TestRunDeterministicSequence pins the seeded pick: same seed, same
// per-endpoint request counts.
func TestRunDeterministicSequence(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	cfg := Config{
		BaseURL: srv.URL,
		Mix: []Endpoint{
			{Name: "a", Weight: 1, Method: "GET", Path: "/a"},
			{Name: "b", Weight: 3, Method: "GET", Path: "/b"},
		},
		Rate: 5000, Requests: 100, Seed: 7,
	}
	counts := func(rep *Report) map[string]int {
		m := map[string]int{}
		for _, e := range rep.Endpoints {
			m[e.Name] = e.Sent
		}
		return m
	}
	r1, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := counts(r1), counts(r2)
	if c1["a"] != c2["a"] || c1["b"] != c2["b"] {
		t.Fatalf("same seed produced different mixes: %v vs %v", c1, c2)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{Rate: 1, Requests: 1}); err == nil {
		t.Fatal("missing BaseURL accepted")
	}
	if _, err := Run(context.Background(), Config{BaseURL: "http://x", Requests: 1}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Run(context.Background(), Config{BaseURL: "http://x", Rate: 1}); err == nil {
		t.Fatal("zero requests accepted")
	}
	if _, err := Run(context.Background(), Config{
		BaseURL: "http://x", Rate: 1, Requests: 1,
		Mix: []Endpoint{{Name: "a", Weight: 0}},
	}); err == nil {
		t.Fatal("weightless mix accepted")
	}
}

// TestBenchFormatRoundTrips guards the contract with vccmin-bench
// -extra: the emitted lines must parse under benchreg with the latency
// and throughput metrics intact.
func TestBenchFormatRoundTrips(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	rep, err := Run(context.Background(), Config{
		BaseURL: srv.URL,
		Mix:     []Endpoint{{Name: "only", Weight: 1, Method: "GET", Path: "/"}},
		Rate:    5000, Requests: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rep.WriteBenchFormat(&sb); err != nil {
		t.Fatal(err)
	}
	benches, err := benchreg.ParseBenchOutput(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("benchreg rejected loadgen output: %v\n%s", err, sb.String())
	}
	if len(benches) != 2 { // total + the one endpoint
		t.Fatalf("parsed %d result lines, want 2:\n%s", len(benches), sb.String())
	}
	for _, b := range benches {
		if !strings.HasPrefix(b.Name, "BenchmarkLoadgen/") {
			t.Fatalf("bench name %q", b.Name)
		}
		if b.Iterations != 50 || b.NsPerOp <= 0 {
			t.Fatalf("bench %q: iters %d ns/op %v", b.Name, b.Iterations, b.NsPerOp)
		}
		for _, unit := range []string{"p90-ns", "p99-ns", "req/s", "shed-frac", "limited-frac"} {
			if _, ok := b.Metrics[unit]; !ok {
				t.Fatalf("bench %q missing metric %s (has %v)", b.Name, unit, b.Metrics)
			}
		}
	}
}

// TestExtendedMixExtendsDefault pins the compatibility contract: the
// extended mix is the default mix verbatim plus the fleet and query
// endpoints — DefaultMix itself never changes shape under it, so
// snapshots recorded against the default replay identical streams.
func TestExtendedMixExtendsDefault(t *testing.T) {
	def, ext := DefaultMix(), ExtendedMix()
	if len(ext) != len(def)+2 {
		t.Fatalf("extended mix has %d endpoints, want default %d + 2", len(ext), len(def))
	}
	for i, e := range def {
		if ext[i] != e {
			t.Fatalf("extended mix entry %d (%s) differs from the default mix", i, e.Name)
		}
	}
	names := map[string]bool{}
	for _, e := range ext {
		if names[e.Name] {
			t.Fatalf("duplicate endpoint name %q", e.Name)
		}
		names[e.Name] = true
		if e.Weight <= 0 || e.Method == "" || !strings.HasPrefix(e.Path, "/v1/") {
			t.Fatalf("malformed endpoint %+v", e)
		}
	}
	if !names["fleet"] || !names["query"] {
		t.Fatal("extended mix must carry the fleet and query endpoints")
	}
}

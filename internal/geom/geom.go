// Package geom provides cache geometry and address arithmetic shared by the
// fault model, the disabling schemes, and the cache hierarchy.
//
// The reference geometry of the paper is a 32 KB, 8-way, 64 B/block cache
// with a 36-bit physical address, giving 64 sets, a 6-bit index, a 6-bit
// offset, a 24-bit tag and one valid bit per block (Table I).
package geom

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is a physical byte address.
type Addr uint64

// Geometry describes a set-associative cache array.
//
// The zero value is not usable; construct with New or validate with Check.
type Geometry struct {
	SizeBytes  int // total data capacity in bytes
	Ways       int // associativity
	BlockBytes int // block (line) size in bytes
	AddrBits   int // physical address width used for tag sizing
	ValidBits  int // valid/state bits per block counted as vulnerable cells
}

// New returns a validated geometry. ValidBits defaults to 1, AddrBits to 36
// (the paper's reference: 24-bit tag + 6-bit index + 6-bit offset).
func New(sizeBytes, ways, blockBytes int) (Geometry, error) {
	g := Geometry{
		SizeBytes:  sizeBytes,
		Ways:       ways,
		BlockBytes: blockBytes,
		AddrBits:   36,
		ValidBits:  1,
	}
	if err := g.Check(); err != nil {
		return Geometry{}, err
	}
	return g, nil
}

// Parse converts the CLI- and API-style "SIZExWAYSxBLOCK" form (e.g.
// "32768x8x64") into a validated geometry.
func Parse(s string) (Geometry, error) {
	parts := strings.Split(s, "x")
	if len(parts) != 3 {
		return Geometry{}, fmt.Errorf("geom: bad geometry %q (want SIZExWAYSxBLOCK)", s)
	}
	size, err1 := strconv.Atoi(parts[0])
	ways, err2 := strconv.Atoi(parts[1])
	block, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return Geometry{}, fmt.Errorf("geom: bad geometry %q (want SIZExWAYSxBLOCK)", s)
	}
	return New(size, ways, block)
}

// MustNew is New but panics on invalid geometry; for tests and constants.
func MustNew(sizeBytes, ways, blockBytes int) Geometry {
	g, err := New(sizeBytes, ways, blockBytes)
	if err != nil {
		panic(err)
	}
	return g
}

// Check validates the geometry.
func (g Geometry) Check() error {
	switch {
	case g.SizeBytes <= 0:
		return fmt.Errorf("geom: size %d must be positive", g.SizeBytes)
	case g.BlockBytes <= 0 || !isPow2(g.BlockBytes):
		return fmt.Errorf("geom: block size %d must be a positive power of two", g.BlockBytes)
	case g.Ways <= 0:
		return fmt.Errorf("geom: associativity %d must be positive", g.Ways)
	case g.SizeBytes%(g.BlockBytes*g.Ways) != 0:
		return fmt.Errorf("geom: size %d not divisible by ways*block (%d*%d)", g.SizeBytes, g.Ways, g.BlockBytes)
	case !isPow2(g.Sets()):
		return fmt.Errorf("geom: sets %d must be a power of two", g.Sets())
	case g.AddrBits <= g.OffsetBits()+g.IndexBits():
		return fmt.Errorf("geom: address width %d leaves no tag bits", g.AddrBits)
	case g.ValidBits < 0:
		return fmt.Errorf("geom: valid bits %d must be non-negative", g.ValidBits)
	}
	return nil
}

// Sets returns the number of sets.
func (g Geometry) Sets() int { return g.SizeBytes / (g.BlockBytes * g.Ways) }

// Blocks returns the total number of blocks (d in the paper's analysis).
func (g Geometry) Blocks() int { return g.SizeBytes / g.BlockBytes }

// OffsetBits returns the number of block-offset address bits.
func (g Geometry) OffsetBits() int { return log2(g.BlockBytes) }

// IndexBits returns the number of set-index address bits.
func (g Geometry) IndexBits() int { return log2(g.Sets()) }

// TagBits returns the number of tag bits per block.
func (g Geometry) TagBits() int { return g.AddrBits - g.IndexBits() - g.OffsetBits() }

// DataBits returns the number of data bits per block.
func (g Geometry) DataBits() int { return g.BlockBytes * 8 }

// CellsPerBlock returns k, the number of vulnerable cells per block:
// data + tag + valid bits. For the reference cache k = 512+24+1 = 537.
func (g Geometry) CellsPerBlock() int { return g.DataBits() + g.TagBits() + g.ValidBits }

// TotalCells returns d*k, the number of vulnerable cells in the array.
func (g Geometry) TotalCells() int { return g.Blocks() * g.CellsPerBlock() }

// SetOf returns the set index selected by addr.
func (g Geometry) SetOf(a Addr) int {
	return int(a>>uint(g.OffsetBits())) & (g.Sets() - 1)
}

// TagOf returns the tag portion of addr.
func (g Geometry) TagOf(a Addr) uint64 {
	return uint64(a) >> uint(g.OffsetBits()+g.IndexBits())
}

// BlockAddr strips the offset bits, returning the block-aligned address.
func (g Geometry) BlockAddr(a Addr) Addr {
	return a &^ Addr(g.BlockBytes-1)
}

// BlockIndex returns the linear block number (set*ways+way layout is the
// caller's concern; this numbers the block frames 0..Blocks()-1 by set).
func (g Geometry) BlockIndex(set, way int) int { return set*g.Ways + way }

// OffsetOf returns the byte offset of addr within its block.
func (g Geometry) OffsetOf(a Addr) int { return int(a) & (g.BlockBytes - 1) }

// String implements fmt.Stringer.
func (g Geometry) String() string {
	return fmt.Sprintf("%dKB %d-way %dB/block (%d sets, %d-bit tag)",
		g.SizeBytes/1024, g.Ways, g.BlockBytes, g.Sets(), g.TagBits())
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func log2(n int) int {
	b := 0
	for v := n; v > 1; v >>= 1 {
		b++
	}
	return b
}

package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReferenceGeometry(t *testing.T) {
	g := MustNew(32*1024, 8, 64)
	if got := g.Sets(); got != 64 {
		t.Errorf("Sets() = %d, want 64", got)
	}
	if got := g.Blocks(); got != 512 {
		t.Errorf("Blocks() = %d, want 512", got)
	}
	if got := g.OffsetBits(); got != 6 {
		t.Errorf("OffsetBits() = %d, want 6", got)
	}
	if got := g.IndexBits(); got != 6 {
		t.Errorf("IndexBits() = %d, want 6", got)
	}
	if got := g.TagBits(); got != 24 {
		t.Errorf("TagBits() = %d, want 24 (paper Table I)", got)
	}
	if got := g.CellsPerBlock(); got != 537 {
		t.Errorf("CellsPerBlock() = %d, want 537 (paper Section IV.A)", got)
	}
	if got := g.TotalCells(); got != 274944 {
		t.Errorf("TotalCells() = %d, want 274944 (paper Section IV.A)", got)
	}
}

func TestBlockSizeVariants(t *testing.T) {
	// Fig. 6 keeps size and associativity constant while varying block size.
	cases := []struct {
		blockBytes, wantSets, wantBlocks int
	}{
		{32, 128, 1024},
		{64, 64, 512},
		{128, 32, 256},
	}
	for _, c := range cases {
		g := MustNew(32*1024, 8, c.blockBytes)
		if g.Sets() != c.wantSets {
			t.Errorf("block %dB: Sets() = %d, want %d", c.blockBytes, g.Sets(), c.wantSets)
		}
		if g.Blocks() != c.wantBlocks {
			t.Errorf("block %dB: Blocks() = %d, want %d", c.blockBytes, g.Blocks(), c.wantBlocks)
		}
	}
}

func TestInvalidGeometries(t *testing.T) {
	bad := []Geometry{
		{SizeBytes: 0, Ways: 8, BlockBytes: 64, AddrBits: 36, ValidBits: 1},
		{SizeBytes: 32768, Ways: 0, BlockBytes: 64, AddrBits: 36, ValidBits: 1},
		{SizeBytes: 32768, Ways: 8, BlockBytes: 60, AddrBits: 36, ValidBits: 1},
		{SizeBytes: 32768, Ways: 7, BlockBytes: 64, AddrBits: 36, ValidBits: 1},
		{SizeBytes: 32768, Ways: 8, BlockBytes: 64, AddrBits: 12, ValidBits: 1},
		{SizeBytes: 32768, Ways: 8, BlockBytes: 64, AddrBits: 36, ValidBits: -1},
	}
	for i, g := range bad {
		if err := g.Check(); err == nil {
			t.Errorf("case %d: Check() accepted invalid geometry %+v", i, g)
		}
	}
}

func TestAddressFieldsRoundTrip(t *testing.T) {
	g := MustNew(32*1024, 8, 64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := Addr(rng.Uint64() & (1<<36 - 1))
		set := g.SetOf(a)
		tag := g.TagOf(a)
		off := g.OffsetOf(a)
		rebuilt := Addr(tag)<<uint(g.IndexBits()+g.OffsetBits()) |
			Addr(set)<<uint(g.OffsetBits()) | Addr(off)
		if rebuilt != a {
			t.Fatalf("round trip failed: addr %#x rebuilt %#x (set %d tag %#x off %d)", a, rebuilt, set, tag, off)
		}
	}
}

func TestBlockAddrAlignment(t *testing.T) {
	g := MustNew(32*1024, 8, 64)
	f := func(raw uint64) bool {
		a := Addr(raw)
		ba := g.BlockAddr(a)
		return ba%Addr(g.BlockBytes) == 0 && // aligned
			ba <= a && a-ba < Addr(g.BlockBytes) && // within same block
			g.SetOf(ba) == g.SetOf(a) && g.TagOf(ba) == g.TagOf(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetOfUniformCoverage(t *testing.T) {
	// Consecutive block addresses should walk all sets round-robin.
	g := MustNew(32*1024, 8, 64)
	seen := make(map[int]bool)
	for i := 0; i < g.Sets(); i++ {
		seen[g.SetOf(Addr(i*g.BlockBytes))] = true
	}
	if len(seen) != g.Sets() {
		t.Errorf("consecutive blocks touched %d distinct sets, want %d", len(seen), g.Sets())
	}
}

func TestBlockIndexBounds(t *testing.T) {
	g := MustNew(32*1024, 8, 64)
	f := func(rawSet, rawWay uint16) bool {
		set := int(rawSet) % g.Sets()
		way := int(rawWay) % g.Ways
		idx := g.BlockIndex(set, way)
		return idx >= 0 && idx < g.Blocks()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringer(t *testing.T) {
	g := MustNew(32*1024, 8, 64)
	want := "32KB 8-way 64B/block (64 sets, 24-bit tag)"
	if got := g.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

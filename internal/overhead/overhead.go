// Package overhead reproduces Table I of the paper: the cell-transistor
// cost of the baseline cache and each disabling scheme, with and without a
// victim cache, for a 32 KB 8-way 64 B/block cache with a 24-bit tag,
// 6-bit index, 6-bit offset and 1 valid bit.
//
// Costs count only the cells the schemes add or harden (tag array, disable
// bits, victim-cache storage), exactly as the paper's table does; the 6T
// data array common to every scheme is omitted. 10T Schmitt-trigger cells
// cost 10 transistors and tolerate low voltage; regular 6T cells cost 6.
package overhead

import (
	"fmt"

	"vccmin/internal/geom"
)

// Transistor counts per SRAM cell type.
const (
	SixT = 6  // regular cell, unreliable below Vcc-min
	TenT = 10 // Schmitt-trigger cell, robust below Vcc-min
)

// Scheme identifies a row of Table I.
type Scheme int

const (
	Baseline Scheme = iota
	BaselineVC
	WordDisable
	BlockDisable
	BlockDisableVC10T
	BlockDisableVC6T
)

var schemeNames = map[Scheme]string{
	Baseline:          "Baseline",
	BaselineVC:        "Baseline+V$",
	WordDisable:       "Word Disabling",
	BlockDisable:      "Block Disabling",
	BlockDisableVC10T: "Block Disabling+V$ 10T",
	BlockDisableVC6T:  "Block Disabling+V$ 6T",
}

// String implements fmt.Stringer.
func (s Scheme) String() string {
	if n, ok := schemeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Schemes lists the Table I rows in paper order.
func Schemes() []Scheme {
	return []Scheme{Baseline, BaselineVC, WordDisable, BlockDisable, BlockDisableVC10T, BlockDisableVC6T}
}

// Row is one line of Table I: the transistor cost of the scheme-specific
// structures.
type Row struct {
	Scheme             Scheme
	TagTransistors     int  // (tag bits + valid) * blocks, in the scheme's cell type
	DisableTransistors int  // fault mask or disable bits
	VictimTransistors  int  // victim cache storage (tag + entries*blockBits per the paper's accounting)
	AlignmentNetwork   bool // word-disable's shift-mux network
	Total              int
}

// Params configures the Table I computation.
type Params struct {
	Geometry      geom.Geometry
	VictimEntries int // 16 in the paper
	WordBits      int // 32 in the paper
}

// ReferenceParams returns the paper's Table I configuration.
func ReferenceParams() Params {
	return Params{
		Geometry:      geom.MustNew(32*1024, 8, 64),
		VictimEntries: 16,
		WordBits:      32,
	}
}

// victimCells reproduces the paper's victim-cache cell accounting:
// (victim tag bits + entries * block data bits). The victim tag covers the
// full block address plus a valid bit (36-6 = 30 tag bits + 1 = 31 for the
// reference geometry). Note the paper's printed formula charges the tag
// once rather than per entry; we reproduce the printed arithmetic so the
// table matches the publication.
func victimCells(p Params) int {
	victimTag := p.Geometry.AddrBits - p.Geometry.OffsetBits() + 1
	return victimTag + p.VictimEntries*p.Geometry.DataBits()
}

// TableI computes every row of Table I for the given parameters.
func TableI(p Params) []Row {
	rows := make([]Row, 0, 6)
	for _, s := range Schemes() {
		rows = append(rows, RowFor(s, p))
	}
	return rows
}

// RowFor computes a single Table I row.
func RowFor(s Scheme, p Params) Row {
	g := p.Geometry
	blocks := g.Blocks()
	tagCells := (g.TagBits() + g.ValidBits) * blocks // 25*512 for the reference
	wordsPerBlock := g.DataBits() / p.WordBits

	r := Row{Scheme: s}
	switch s {
	case Baseline:
		r.TagTransistors = tagCells * SixT
	case BaselineVC:
		r.TagTransistors = tagCells * SixT
		r.VictimTransistors = victimCells(p) * SixT
	case WordDisable:
		// Tag array and per-word fault mask both in 10T cells.
		r.TagTransistors = tagCells * TenT
		r.DisableTransistors = wordsPerBlock * blocks * TenT
		r.AlignmentNetwork = true
	case BlockDisable:
		r.TagTransistors = tagCells * SixT
		r.DisableTransistors = 1 * blocks * TenT
	case BlockDisableVC10T:
		r.TagTransistors = tagCells * SixT
		r.DisableTransistors = 1 * blocks * TenT
		r.VictimTransistors = victimCells(p) * TenT
	case BlockDisableVC6T:
		r.TagTransistors = tagCells * SixT
		r.DisableTransistors = 1 * blocks * TenT
		// 6T victim storage plus one 10T disable bit per victim entry.
		r.VictimTransistors = victimCells(p)*SixT + p.VictimEntries*TenT
	}
	r.Total = r.TagTransistors + r.DisableTransistors + r.VictimTransistors
	return r
}

// RelativeCacheIncrease returns the scheme's storage overhead as a fraction
// of the total cache storage (data + tag cells), the basis of the paper's
// "0.4% vs 10%" comparison between block- and word-disabling.
func RelativeCacheIncrease(s Scheme, p Params) float64 {
	g := p.Geometry
	baseCells := g.Blocks() * g.CellsPerBlock()
	switch s {
	case WordDisable:
		// One 10T mask bit per word (≈2x the area of a 6T cell) plus the
		// tag array upgraded from 6T to 10T (+1x its area). For the
		// reference cache: (2*16 + 25)*512 / 274944 ≈ 10.6%, the paper's
		// "10%".
		wordsPerBlock := g.DataBits() / p.WordBits
		mask := 2 * wordsPerBlock * g.Blocks()
		tagExtra := (g.TagBits() + g.ValidBits) * g.Blocks()
		return float64(mask+tagExtra) / float64(baseCells)
	case BlockDisable:
		// One 10T bit per block ≈ two 6T-cell equivalents of area.
		return float64(2*g.Blocks()) / float64(baseCells)
	default:
		return 0
	}
}

package overhead

import "testing"

// TestTableITotals pins every Total in Table I of the paper.
func TestTableITotals(t *testing.T) {
	want := map[Scheme]int{
		Baseline:          76800,
		BaselineVC:        126138,
		WordDisable:       209920,
		BlockDisable:      81920,
		BlockDisableVC10T: 164150,
		BlockDisableVC6T:  131418,
	}
	p := ReferenceParams()
	for _, row := range TableI(p) {
		if got := row.Total; got != want[row.Scheme] {
			t.Errorf("%s: total = %d transistors, want %d", row.Scheme, got, want[row.Scheme])
		}
	}
}

func TestTableIStructure(t *testing.T) {
	p := ReferenceParams()
	rows := TableI(p)
	if len(rows) != 6 {
		t.Fatalf("TableI has %d rows, want 6", len(rows))
	}
	for _, row := range rows {
		if row.Total != row.TagTransistors+row.DisableTransistors+row.VictimTransistors {
			t.Errorf("%s: total %d != sum of parts", row.Scheme, row.Total)
		}
		if row.AlignmentNetwork != (row.Scheme == WordDisable) {
			t.Errorf("%s: alignment network flag wrong", row.Scheme)
		}
	}
}

func TestBlockDisableCheapestLowVoltageScheme(t *testing.T) {
	// "It is evident that in all cases block-disabling has lower overhead."
	p := ReferenceParams()
	bd := RowFor(BlockDisable, p).Total
	wd := RowFor(WordDisable, p).Total
	if bd >= wd {
		t.Errorf("block disable (%d) should cost less than word disable (%d)", bd, wd)
	}
	bdVC := RowFor(BlockDisableVC10T, p).Total
	if bdVC >= wd {
		t.Errorf("block disable + 10T V$ (%d) should still cost less than word disable (%d)", bdVC, wd)
	}
}

func TestRelativeIncrease(t *testing.T) {
	// "an overall cache increase of 0.4% ... smaller by more than an order
	// of magnitude than what is required by word-disabling (0.4% vs 10%)."
	p := ReferenceParams()
	bd := RelativeCacheIncrease(BlockDisable, p)
	wd := RelativeCacheIncrease(WordDisable, p)
	if bd < 0.002 || bd > 0.006 {
		t.Errorf("block disable relative increase = %v, want ≈0.004", bd)
	}
	if wd < 0.08 || wd > 0.16 {
		t.Errorf("word disable relative increase = %v, want ≈0.10", wd)
	}
	if wd/bd < 10 {
		t.Errorf("word/block overhead ratio = %v, want > 10x", wd/bd)
	}
	if got := RelativeCacheIncrease(Baseline, p); got != 0 {
		t.Errorf("baseline relative increase = %v, want 0", got)
	}
}

func TestSchemeString(t *testing.T) {
	if Baseline.String() != "Baseline" {
		t.Errorf("Baseline.String() = %q", Baseline.String())
	}
	if Scheme(99).String() != "Scheme(99)" {
		t.Errorf("unknown scheme String() = %q", Scheme(99).String())
	}
	if len(Schemes()) != 6 {
		t.Errorf("Schemes() returned %d entries, want 6", len(Schemes()))
	}
}

// Package textplot renders series and bar charts as plain text so the cmd
// tools can show the paper's figures directly in a terminal.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Options configures a plot's canvas.
type Options struct {
	Width  int // plot columns (default 72)
	Height int // plot rows (default 20)
	YLabel string
	XLabel string
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 72
	}
	if o.Height <= 0 {
		o.Height = 20
	}
	return o
}

// Line renders one or more (x, y) series on a shared canvas. Each series is
// drawn with its own glyph and listed in a legend. Series with mismatched
// x/y lengths are skipped.
func Line(opt Options, series ...XY) string {
	opt = opt.withDefaults()
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		if len(s.X) != len(s.Y) || len(s.X) == 0 {
			continue
		}
		any = true
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if !any {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	canvas := make([][]byte, opt.Height)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(" ", opt.Width))
	}
	for si, s := range series {
		if len(s.X) != len(s.Y) || len(s.X) == 0 {
			continue
		}
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			c := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(opt.Width-1)))
			r := opt.Height - 1 - int(math.Round((s.Y[i]-minY)/(maxY-minY)*float64(opt.Height-1)))
			if r >= 0 && r < opt.Height && c >= 0 && c < opt.Width {
				canvas[r][c] = g
			}
		}
	}

	var b strings.Builder
	if opt.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", opt.YLabel)
	}
	for r, row := range canvas {
		yVal := maxY - (maxY-minY)*float64(r)/float64(opt.Height-1)
		fmt.Fprintf(&b, "%10.4g |%s\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", opt.Width))
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g\n", "", opt.Width/2, minX, opt.Width-opt.Width/2, maxX)
	if opt.XLabel != "" {
		fmt.Fprintf(&b, "%10s  %s\n", "", center(opt.XLabel, opt.Width))
	}
	for si, s := range series {
		if len(s.X) != len(s.Y) || len(s.X) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %c %s\n", glyphs[si%len(glyphs)], s.Label)
	}
	return b.String()
}

// XY is a labelled series for Line.
type XY struct {
	Label string
	X, Y  []float64
}

// Bar renders labelled horizontal bars scaled to the maximum value.
// Values must be non-negative; negative values are clamped to zero.
func Bar(opt Options, labels []string, values []float64) string {
	opt = opt.withDefaults()
	if len(labels) != len(values) || len(labels) == 0 {
		return "(no data)\n"
	}
	maxV := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	var b strings.Builder
	for i, v := range values {
		if v < 0 {
			v = 0
		}
		n := int(math.Round(v / maxV * float64(opt.Width)))
		fmt.Fprintf(&b, "%-*s |%s %.4g\n", maxLabel, labels[i], strings.Repeat("=", n), values[i])
	}
	return b.String()
}

// GroupedBar renders one row per label with several named series, the shape
// of the paper's per-benchmark figures (Figs. 8-12). Values are expected in
// [0, ~1.1] (normalized performance); the scale covers [lo, hi].
func GroupedBar(opt Options, rowLabels []string, seriesNames []string, values [][]float64, lo, hi float64) string {
	opt = opt.withDefaults()
	if len(rowLabels) != len(values) || len(rowLabels) == 0 || hi <= lo {
		return "(no data)\n"
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}
	maxLabel := 0
	for _, l := range rowLabels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
	}
	var b strings.Builder
	for r, row := range values {
		line := []byte(strings.Repeat(".", opt.Width))
		for s, v := range row {
			if s >= len(seriesNames) {
				break
			}
			pos := int(math.Round((v - lo) / (hi - lo) * float64(opt.Width-1)))
			if pos < 0 {
				pos = 0
			}
			if pos >= opt.Width {
				pos = opt.Width - 1
			}
			line[pos] = glyphs[s%len(glyphs)]
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", maxLabel, rowLabels[r], string(line))
	}
	fmt.Fprintf(&b, "%-*s  %-*.2f%*.2f\n", maxLabel, "", opt.Width/2, lo, opt.Width-opt.Width/2, hi)
	for s, name := range seriesNames {
		fmt.Fprintf(&b, "  %c %s\n", glyphs[s%len(glyphs)], name)
	}
	return b.String()
}

func center(s string, width int) string {
	if len(s) >= width {
		return s
	}
	pad := (width - len(s)) / 2
	return strings.Repeat(" ", pad) + s
}

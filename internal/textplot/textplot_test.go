package textplot

import (
	"strings"
	"testing"
)

func TestLineBasic(t *testing.T) {
	s := XY{Label: "ramp", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}}
	out := Line(Options{Width: 40, Height: 10, XLabel: "x", YLabel: "y"}, s)
	if !strings.Contains(out, "*") {
		t.Error("plot missing data glyphs")
	}
	if !strings.Contains(out, "ramp") {
		t.Error("plot missing legend")
	}
	if !strings.Contains(out, "y") || !strings.Contains(out, "x") {
		t.Error("plot missing axis labels")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 10 {
		t.Errorf("plot has %d lines, want >= height", len(lines))
	}
}

func TestLineMultipleSeries(t *testing.T) {
	a := XY{Label: "a", X: []float64{0, 1}, Y: []float64{0, 1}}
	b := XY{Label: "b", X: []float64{0, 1}, Y: []float64{1, 0}}
	out := Line(Options{}, a, b)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("expected two distinct glyphs")
	}
}

func TestLineDegenerate(t *testing.T) {
	if out := Line(Options{}); !strings.Contains(out, "no data") {
		t.Errorf("empty plot = %q", out)
	}
	// Mismatched series skipped, not crashed.
	bad := XY{Label: "bad", X: []float64{1, 2}, Y: []float64{1}}
	if out := Line(Options{}, bad); !strings.Contains(out, "no data") {
		t.Errorf("bad series plot = %q", out)
	}
	// Constant series should not divide by zero.
	flat := XY{Label: "flat", X: []float64{1, 1}, Y: []float64{2, 2}}
	out := Line(Options{}, flat)
	if !strings.Contains(out, "*") {
		t.Error("flat series should still render")
	}
}

func TestBar(t *testing.T) {
	out := Bar(Options{Width: 20}, []string{"aa", "b"}, []float64{2, 1})
	if !strings.Contains(out, "aa") || !strings.Contains(out, "====") {
		t.Errorf("bar output = %q", out)
	}
	longer := strings.Index(out, "\n")
	first, second := out[:longer], out[longer+1:]
	if strings.Count(first, "=") <= strings.Count(second, "=") {
		t.Error("larger value should render a longer bar")
	}
	if out := Bar(Options{}, []string{"x"}, nil); !strings.Contains(out, "no data") {
		t.Error("mismatched bars should report no data")
	}
	// All-zero values must not divide by zero.
	if out := Bar(Options{}, []string{"z"}, []float64{0}); !strings.Contains(out, "z") {
		t.Error("zero bar should render label")
	}
}

func TestGroupedBar(t *testing.T) {
	out := GroupedBar(Options{Width: 30},
		[]string{"bzip", "crafty"},
		[]string{"word", "block"},
		[][]float64{{0.9, 0.95}, {0.7, 0.99}}, 0.4, 1.1)
	if !strings.Contains(out, "bzip") || !strings.Contains(out, "crafty") {
		t.Error("missing row labels")
	}
	if !strings.Contains(out, "word") || !strings.Contains(out, "block") {
		t.Error("missing legend")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing glyphs")
	}
	if out := GroupedBar(Options{}, []string{"x"}, nil, nil, 0, 1); !strings.Contains(out, "no data") {
		t.Error("mismatched input should report no data")
	}
	// Out-of-range values clamp instead of panicking.
	out = GroupedBar(Options{Width: 10}, []string{"r"}, []string{"s"}, [][]float64{{99}}, 0, 1)
	if !strings.Contains(out, "*") {
		t.Error("clamped value should still render")
	}
}

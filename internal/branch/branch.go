// Package branch implements the front-end predictors of the simulated
// core (Table II): an 8 KB gshare direction predictor with 15 bits of
// global history, a branch target buffer standing in for the line
// predictor, and a 16-entry return address stack.
package branch

import "fmt"

// Gshare is a global-history XOR-indexed table of 2-bit saturating
// counters. An 8 KB budget at 2 bits per counter gives 32768 counters,
// indexed by 15 bits — the paper's configuration.
type Gshare struct {
	historyBits int
	history     uint64
	counters    []uint8

	Predictions uint64
	Mispredicts uint64
}

// NewGshare builds a gshare predictor with historyBits of global history
// and 2^historyBits counters.
func NewGshare(historyBits int) (*Gshare, error) {
	if historyBits <= 0 || historyBits > 30 {
		return nil, fmt.Errorf("branch: history bits %d out of range (1..30)", historyBits)
	}
	return &Gshare{
		historyBits: historyBits,
		counters:    make([]uint8, 1<<uint(historyBits)),
	}, nil
}

// MustNewGshare is NewGshare but panics on error.
func MustNewGshare(historyBits int) *Gshare {
	g, err := NewGshare(historyBits)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *Gshare) index(pc uint64) int {
	mask := uint64(1)<<uint(g.historyBits) - 1
	return int(((pc >> 2) ^ g.history) & mask)
}

// Predict returns the predicted direction for the branch at pc.
func (g *Gshare) Predict(pc uint64) bool {
	return g.counters[g.index(pc)] >= 2
}

// Update trains the predictor with the actual outcome and records whether
// the prediction made at the same history state was correct. Call once per
// executed branch, after Predict.
func (g *Gshare) Update(pc uint64, taken bool) {
	idx := g.index(pc)
	predicted := g.counters[idx] >= 2
	g.Predictions++
	if predicted != taken {
		g.Mispredicts++
	}
	if taken {
		if g.counters[idx] < 3 {
			g.counters[idx]++
		}
	} else if g.counters[idx] > 0 {
		g.counters[idx]--
	}
	g.history = (g.history<<1 | b2u(taken)) & (1<<uint(g.historyBits) - 1)
}

// MispredictRate returns mispredictions/predictions.
func (g *Gshare) MispredictRate() float64 {
	if g.Predictions == 0 {
		return 0
	}
	return float64(g.Mispredicts) / float64(g.Predictions)
}

// Reset clears all state.
func (g *Gshare) Reset() {
	for i := range g.counters {
		g.counters[i] = 0
	}
	g.history, g.Predictions, g.Mispredicts = 0, 0, 0
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BTB is a direct-mapped branch target buffer; it stands in for the
// Alpha-style line predictor: a hit steers fetch to the predicted target
// with only the usual taken-branch bubble, a miss costs a full redirect.
type BTB struct {
	entries []btbEntry
	mask    uint64

	Lookups uint64
	Hits    uint64
}

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
}

// NewBTB builds a BTB with size entries (power of two).
func NewBTB(size int) (*BTB, error) {
	if size <= 0 || size&(size-1) != 0 {
		return nil, fmt.Errorf("branch: BTB size %d must be a positive power of two", size)
	}
	return &BTB{entries: make([]btbEntry, size), mask: uint64(size - 1)}, nil
}

// MustNewBTB is NewBTB but panics on error.
func MustNewBTB(size int) *BTB {
	b, err := NewBTB(size)
	if err != nil {
		panic(err)
	}
	return b
}

// Predict returns the cached target for pc, if any.
func (b *BTB) Predict(pc uint64) (uint64, bool) {
	b.Lookups++
	e := &b.entries[(pc>>2)&b.mask]
	if e.valid && e.tag == pc {
		b.Hits++
		return e.target, true
	}
	return 0, false
}

// Update installs the observed target for pc.
func (b *BTB) Update(pc, target uint64) {
	b.entries[(pc>>2)&b.mask] = btbEntry{tag: pc, target: target, valid: true}
}

// Reset clears all state.
func (b *BTB) Reset() {
	for i := range b.entries {
		b.entries[i] = btbEntry{}
	}
	b.Lookups, b.Hits = 0, 0
}

// RAS is the return address stack. Overflow wraps (overwriting the oldest
// entry) and underflow returns no prediction, matching hardware behavior.
type RAS struct {
	stack []uint64
	top   int // next push slot
	depth int // valid entries, capped at len(stack)
}

// NewRAS builds a return address stack with n entries.
func NewRAS(n int) (*RAS, error) {
	if n <= 0 {
		return nil, fmt.Errorf("branch: RAS size %d must be positive", n)
	}
	return &RAS{stack: make([]uint64, n)}, nil
}

// MustNewRAS is NewRAS but panics on error.
func MustNewRAS(n int) *RAS {
	r, err := NewRAS(n)
	if err != nil {
		panic(err)
	}
	return r
}

// Push records a return address (on a call).
func (r *RAS) Push(addr uint64) {
	r.stack[r.top] = addr
	r.top = (r.top + 1) % len(r.stack)
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts the return address (on a return). ok is false on underflow.
func (r *RAS) Pop() (addr uint64, ok bool) {
	if r.depth == 0 {
		return 0, false
	}
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	return r.stack[r.top], true
}

// Depth returns the number of valid entries.
func (r *RAS) Depth() int { return r.depth }

// Reset clears the stack.
func (r *RAS) Reset() { r.top, r.depth = 0, 0 }

package branch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGshareLearnsBias(t *testing.T) {
	g := MustNewGshare(15)
	const pc = 0x400100
	// Always-taken branch: after warmup (long enough for the history
	// register to saturate and the final counter to train), predictions
	// must be correct.
	for i := 0; i < 32; i++ {
		g.Predict(pc)
		g.Update(pc, true)
	}
	correct := 0
	for i := 0; i < 100; i++ {
		if g.Predict(pc) {
			correct++
		}
		g.Update(pc, true)
	}
	if correct != 100 {
		t.Errorf("trained always-taken branch predicted correctly %d/100", correct)
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	// A short repeating pattern is exactly what global history captures.
	g := MustNewGshare(15)
	pattern := []bool{true, true, false, true, false, false}
	for i := 0; i < 600; i++ {
		g.Update(0x1000, pattern[i%len(pattern)])
	}
	start := g.Mispredicts
	for i := 0; i < 600; i++ {
		g.Update(0x1000, pattern[i%len(pattern)])
	}
	rate := float64(g.Mispredicts-start) / 600
	if rate > 0.05 {
		t.Errorf("pattern mispredict rate after training = %v, want < 5%%", rate)
	}
}

func TestGshareRandomBranchNearChance(t *testing.T) {
	g := MustNewGshare(15)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50000; i++ {
		g.Update(uint64(0x2000+(i%7)*4), rng.Intn(2) == 0)
	}
	rate := g.MispredictRate()
	if rate < 0.35 || rate > 0.65 {
		t.Errorf("random branches mispredict rate = %v, want ≈0.5", rate)
	}
}

func TestGshareAliasingDistinctBranches(t *testing.T) {
	// Two branches with opposite bias and different PCs should both be
	// predictable (the index mixes PC bits).
	g := MustNewGshare(15)
	for i := 0; i < 2000; i++ {
		g.Update(0x4000, true)
		g.Update(0x8888, false)
	}
	start := g.Mispredicts
	for i := 0; i < 1000; i++ {
		g.Update(0x4000, true)
		g.Update(0x8888, false)
	}
	rate := float64(g.Mispredicts-start) / 2000
	if rate > 0.2 {
		t.Errorf("two biased branches mispredict rate = %v, want low", rate)
	}
}

func TestGshareValidation(t *testing.T) {
	if _, err := NewGshare(0); err == nil {
		t.Error("accepted zero history bits")
	}
	if _, err := NewGshare(31); err == nil {
		t.Error("accepted oversized history")
	}
	g := MustNewGshare(4)
	if len(g.counters) != 16 {
		t.Errorf("counter table = %d entries, want 16", len(g.counters))
	}
}

func TestGshareReset(t *testing.T) {
	g := MustNewGshare(8)
	g.Update(0x100, true)
	g.Reset()
	if g.Predictions != 0 || g.Mispredicts != 0 || g.history != 0 {
		t.Error("reset incomplete")
	}
	if g.MispredictRate() != 0 {
		t.Error("rate after reset should be 0")
	}
}

func TestBTB(t *testing.T) {
	b := MustNewBTB(256)
	if _, ok := b.Predict(0x400); ok {
		t.Error("cold BTB predicted")
	}
	b.Update(0x400, 0x1234)
	tgt, ok := b.Predict(0x400)
	if !ok || tgt != 0x1234 {
		t.Errorf("Predict = %#x,%v want 0x1234,true", tgt, ok)
	}
	// Conflicting PC (same index, different tag) misses rather than
	// returning a wrong-tagged entry.
	conflict := uint64(0x400 + 256*4)
	if _, ok := b.Predict(conflict); ok {
		t.Error("conflicting PC should miss")
	}
	b.Update(conflict, 0x5678)
	if _, ok := b.Predict(0x400); ok {
		t.Error("displaced entry should miss")
	}
	if b.Lookups != 4 || b.Hits != 1 {
		t.Errorf("stats = %d lookups %d hits, want 4/1", b.Lookups, b.Hits)
	}
}

func TestBTBValidation(t *testing.T) {
	if _, err := NewBTB(0); err == nil {
		t.Error("accepted zero size")
	}
	if _, err := NewBTB(100); err == nil {
		t.Error("accepted non-power-of-two size")
	}
}

func TestRASLIFO(t *testing.T) {
	r := MustNewRAS(16)
	r.Push(1)
	r.Push(2)
	r.Push(3)
	for want := uint64(3); want >= 1; want-- {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Errorf("Pop = %d,%v want %d,true", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS should underflow")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := MustNewRAS(4)
	for i := uint64(1); i <= 6; i++ {
		r.Push(i)
	}
	if r.Depth() != 4 {
		t.Errorf("depth = %d, want 4", r.Depth())
	}
	// Oldest two (1, 2) were overwritten; pops yield 6,5,4,3.
	for want := uint64(6); want >= 3; want-- {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Errorf("Pop = %d,%v want %d,true", got, ok, want)
		}
	}
}

func TestRASValidation(t *testing.T) {
	if _, err := NewRAS(0); err == nil {
		t.Error("accepted zero-size RAS")
	}
}

func TestRASPushPopProperty(t *testing.T) {
	// Pushing n <= capacity addresses then popping returns them reversed.
	f := func(addrs []uint64) bool {
		if len(addrs) > 16 {
			addrs = addrs[:16]
		}
		r := MustNewRAS(16)
		for _, a := range addrs {
			r.Push(a)
		}
		for i := len(addrs) - 1; i >= 0; i-- {
			got, ok := r.Pop()
			if !ok || got != addrs[i] {
				return false
			}
		}
		_, ok := r.Pop()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package experiments

import (
	"math"
	"testing"
)

func smallParams() SimParams {
	return SimParams{
		Benchmarks:   []string{"crafty", "gzip", "swim", "mcf"},
		FaultPairs:   6,
		Pfail:        0.001,
		Instructions: 40_000,
		BaseSeed:     1,
	}
}

func TestFig1Curves(t *testing.T) {
	classic, below := Fig1(100)
	if len(classic) != 101 || len(below) != 101 {
		t.Fatalf("curve lengths %d/%d, want 101", len(classic), len(below))
	}
	// At full frequency both agree; inside the low-voltage zone the
	// below-Vcc-min curve burns less power.
	last := len(classic) - 1
	if classic[last].Power != below[last].Power {
		t.Error("curves must agree at full frequency")
	}
	savings := false
	for i := range classic {
		if below[i].Power < classic[i].Power-1e-9 {
			savings = true
		}
		if below[i].Power > classic[i].Power+1e-9 {
			t.Fatalf("below-Vcc-min curve must never burn more power (f=%v)", below[i].Freq)
		}
	}
	if !savings {
		t.Error("no power savings found in the low-voltage zone")
	}
}

func TestFig3Fig4Fig5Fig7Anchors(t *testing.T) {
	f3 := Fig3(100)
	if err := f3.Check(); err != nil {
		t.Fatal(err)
	}
	// At pfail=0.001 (x index 10) the faulty fraction is ≈42%.
	if got := f3.Y[10]; math.Abs(got-0.416) > 0.02 {
		t.Errorf("Fig3 at pfail=0.001: %v, want ≈0.42", got)
	}
	f4 := Fig4()
	peakX, peakY := 0.0, 0.0
	for i := range f4.X {
		if f4.Y[i] > peakY {
			peakX, peakY = f4.X[i], f4.Y[i]
		}
	}
	if math.Abs(peakX-0.58) > 0.02 {
		t.Errorf("Fig4 peak at capacity %v, want ≈0.58", peakX)
	}
	if peakY < 0.01 || peakY > 0.05 {
		t.Errorf("Fig4 peak probability %v, want ≈0.035 (paper's 3.5%% bin)", peakY)
	}
	f5 := Fig5(100)
	if got := f5.Y[50]; got < 5e-4 || got > 5e-3 { // pfail = 0.001
		t.Errorf("Fig5 at pfail=0.001: %v, want ≈1e-3", got)
	}
	if got := f5.Y[75]; got < 5e-3 || got > 5e-2 { // pfail = 0.0015
		t.Errorf("Fig5 at pfail=0.0015: %v, want ≈1e-2", got)
	}
	f7 := Fig7(100)
	if f7.Y[0] != 1 {
		t.Errorf("Fig7 at pfail=0: %v, want 1", f7.Y[0])
	}
	if got := f7.Y[40]; math.Abs(got-0.5) > 0.03 { // saturation region
		t.Errorf("Fig7 at pfail=0.004: %v, want ≈0.5", got)
	}
}

func TestFig6Ordering(t *testing.T) {
	series := Fig6(50)
	if len(series) != 3 {
		t.Fatalf("Fig6 has %d series, want 3", len(series))
	}
	// 32-byte blocks keep the most capacity at every nonzero pfail.
	for i := 1; i < 51; i++ {
		if !(series[0].Y[i] > series[1].Y[i] && series[1].Y[i] > series[2].Y[i]) {
			t.Fatalf("Fig6 ordering violated at point %d", i)
		}
	}
}

func TestFigCluster(t *testing.T) {
	series := FigCluster(50, 8)
	if len(series) != 2 {
		t.Fatalf("FigCluster returned %d series", len(series))
	}
	// Clustered faults preserve more capacity.
	for i := 1; i < 51; i++ {
		if series[1].Y[i] < series[0].Y[i] {
			t.Fatalf("clustered capacity below uniform at point %d", i)
		}
	}
}

func TestTableIRows(t *testing.T) {
	rows := TableI()
	if len(rows) != 6 {
		t.Fatalf("TableI has %d rows", len(rows))
	}
	if rows[0].Total != 76800 {
		t.Errorf("baseline total = %d", rows[0].Total)
	}
}

func TestRunLowVoltageShape(t *testing.T) {
	res, err := RunLowVoltage(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Benchmarks) != 4 {
		t.Fatalf("got %d benchmarks", len(res.Benchmarks))
	}
	for _, b := range res.Benchmarks {
		if b.BaselineIPC <= 0 || b.WordDisableIPC <= 0 {
			t.Fatalf("%s: zero IPCs: %+v", b.Name, b)
		}
		if len(b.BlockDisable) != 6 || len(b.BlockDisableVC) != 6 || len(b.BlockDisableVC6T) != 6 {
			t.Fatalf("%s: wrong fault-pair counts", b.Name)
		}
		for i := range b.BlockDisable {
			if b.BlockDisable[i] <= 0 || b.BlockDisableVC[i] <= 0 || b.BlockDisableVC6T[i] <= 0 {
				t.Fatalf("%s pair %d: zero IPC", b.Name, i)
			}
			// A victim cache never hurts block-disabling in this model.
			if b.BlockDisableVC[i] < b.BlockDisable[i]*0.99 {
				t.Errorf("%s pair %d: V$ hurt: %v vs %v", b.Name, i, b.BlockDisableVC[i], b.BlockDisable[i])
			}
		}
	}

	fig8 := res.Fig8()
	if len(fig8.Rows) != 4 || len(fig8.Averages) != 5 {
		t.Fatalf("Fig8 shape wrong: %d rows %d averages", len(fig8.Rows), len(fig8.Averages))
	}
	// Headline ordering: BD avg beats WD on average; BD+V$ beats both.
	wd, bdAvg, bdVCAvg := fig8.Averages[0], fig8.Averages[1], fig8.Averages[2]
	if !(bdAvg > wd) {
		t.Errorf("Fig8: block-disable avg (%v) should beat word-disable (%v)", bdAvg, wd)
	}
	if !(bdVCAvg > bdAvg) {
		t.Errorf("Fig8: BD+V$ (%v) should beat plain BD (%v)", bdVCAvg, bdAvg)
	}
	// All normalized values in a sane band.
	for _, row := range fig8.Rows {
		for s, v := range row.Values {
			if v <= 0.3 || v > 1.05 {
				t.Errorf("Fig8 %s series %d: normalized %v out of band", row.Benchmark, s, v)
			}
		}
	}
	// Min never exceeds avg.
	for _, row := range fig8.Rows {
		if row.Values[3] > row.Values[1]+1e-12 {
			t.Errorf("Fig8 %s: BD min above avg", row.Benchmark)
		}
		if row.Values[4] > row.Values[2]+1e-12 {
			t.Errorf("Fig8 %s: BD+V$ min above avg", row.Benchmark)
		}
	}

	fig9 := res.Fig9()
	if len(fig9.Series) != 3 {
		t.Fatal("Fig9 series wrong")
	}
	fig10 := res.Fig10()
	// 10T V$ (16 entries) should be at least as good as 6T (8 entries).
	if fig10.Averages[1] < fig10.Averages[2]-0.01 {
		t.Errorf("Fig10: 10T V$ (%v) should be >= 6T V$ (%v)", fig10.Averages[1], fig10.Averages[2])
	}
}

func TestRunHighVoltageShape(t *testing.T) {
	res, err := RunHighVoltage(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	fig11 := res.Fig11()
	for _, row := range fig11.Rows {
		wd, bd := row.Values[0], row.Values[1]
		if bd != 1 {
			t.Errorf("Fig11 %s: block-disable normalized %v, must be exactly 1 (no overhead)", row.Benchmark, bd)
		}
		if wd >= 1 {
			t.Errorf("Fig11 %s: word-disable normalized %v, must be < 1 (alignment network)", row.Benchmark, wd)
		}
	}
	fig12 := res.Fig12()
	for _, row := range fig12.Rows {
		if row.Values[1] != 1 {
			t.Errorf("Fig12 %s: block-disable with V$ vs baseline with V$ should be 1, got %v", row.Benchmark, row.Values[1])
		}
		if row.Values[0] >= 1 {
			t.Errorf("Fig12 %s: word-disable should lose at high voltage", row.Benchmark)
		}
	}
}

func TestRunLowVoltageDeterministic(t *testing.T) {
	p := smallParams()
	p.Benchmarks = []string{"vpr"}
	p.FaultPairs = 3
	p.Instructions = 20_000
	a, err := RunLowVoltage(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLowVoltage(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Benchmarks[0].BaselineIPC != b.Benchmarks[0].BaselineIPC {
		t.Error("baseline IPC not deterministic")
	}
	for i := range a.Benchmarks[0].BlockDisable {
		if a.Benchmarks[0].BlockDisable[i] != b.Benchmarks[0].BlockDisable[i] {
			t.Fatalf("pair %d IPC differs across runs", i)
		}
	}
}

package experiments

import (
	"fmt"
	"sync"

	"vccmin/internal/sim"
)

// RunIPC executes one simulation and returns its IPC, wrapping any error
// with the run's identifying coordinates. This is the single-run helper
// shared by the figure drivers here and by the sweep engine.
func RunIPC(opts sim.Options) (float64, error) {
	r, err := sim.Run(opts)
	if err != nil {
		return 0, fmt.Errorf("%s %s/%s: %w", opts.Benchmark, opts.Scheme, opts.Victim, err)
	}
	return r.IPC, nil
}

// RunJobs executes the closures with bounded parallelism; each closure
// writes to its own result slot, so no synchronization beyond the wait is
// needed. The first error (if any) is returned.
func RunJobs(workers int, jobs []func() error) error {
	if workers <= 0 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	errCh := make(chan error, len(jobs))
	var wg sync.WaitGroup
	for _, run := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(run func() error) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := run(); err != nil {
				errCh <- err
			}
		}(run)
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}

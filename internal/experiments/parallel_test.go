package experiments

import (
	"math"
	"reflect"
	"testing"

	"vccmin/internal/geom"
)

// The Monte Carlo executors must be pure functions of their parameters:
// worker count changes wall-clock time, never results. These tests run
// under -race in CI.

// TestMeasuredCapacityWorkerInvariance: the capacity estimate is
// bit-identical at every worker-pool size, matches the analytic Eq. 2
// closed form at scale, and tolerates workers > trials.
func TestMeasuredCapacityWorkerInvariance(t *testing.T) {
	g := geom.MustNew(8*1024, 4, 64)
	const (
		pfail  = 0.001
		trials = 64
		seed   = 77
	)
	want := MeasuredBlockDisableCapacityWorkers(g, pfail, trials, seed, 1)
	for _, workers := range []int{0, 2, 7, 16, trials + 5} {
		if got := MeasuredBlockDisableCapacityWorkers(g, pfail, trials, seed, workers); got != want {
			t.Errorf("workers=%d: capacity %v differs from serial %v", workers, got, want)
		}
	}
	if got := MeasuredBlockDisableCapacity(g, pfail, trials, seed); got != want {
		t.Errorf("default-worker estimate %v differs from serial %v", got, want)
	}
	if analytic := AnalyticBlockDisableCapacity(g, pfail); math.Abs(want-analytic) > 0.05 {
		t.Errorf("measured capacity %v far from analytic %v", want, analytic)
	}
}

// TestPairsParallelismInvariance: the shared fault-pair sample is
// identical at every parallelism level — each job writes only its own
// slot, and pair seeds do not depend on scheduling.
func TestPairsParallelismInvariance(t *testing.T) {
	base := SimParams{FaultPairs: 12, Pfail: 0.002, BaseSeed: 5}
	serial := base
	serial.Parallelism = 1
	want := serial.withDefaults().pairs()
	for _, par := range []int{2, 8} {
		p := base
		p.Parallelism = par
		if got := p.withDefaults().pairs(); !reflect.DeepEqual(got, want) {
			t.Errorf("parallelism=%d: fault pairs differ from serial draw", par)
		}
	}
}

// Package experiments contains one driver per table and figure of the
// paper's evaluation. The analytic figures (1, 3-7, Table I) come straight
// from the probability and overhead models; the simulation figures (8-12)
// run the full system Monte Carlo over random fault maps.
package experiments

import (
	"vccmin/internal/geom"
	"vccmin/internal/overhead"
	"vccmin/internal/power"
	"vccmin/internal/prob"
)

// ReferenceGeometry is the 32 KB 8-way 64 B/block cache used throughout
// the paper's analysis.
func ReferenceGeometry() geom.Geometry { return geom.MustNew(32*1024, 8, 64) }

// Fig1 samples the two voltage-scaling curves of Fig. 1: (a) classic DVS
// that stops at Vcc-min and (b) DVS extended below Vcc-min.
func Fig1(n int) (classic, below []power.Point) {
	m := power.Default()
	return m.CurveClassic(n), m.CurveBelowVccMin(n)
}

// Fig3 returns the mean fraction of faulty blocks versus pfail (Eq. 2) for
// the reference geometry, over pfail in [0, 0.010] like the paper's x-axis.
func Fig3(points int) prob.Series {
	k := ReferenceGeometry().CellsPerBlock()
	return prob.Sweep("faulty blocks (Eq.2)", 0, 0.010, points, func(pf float64) float64 {
		return prob.MeanFaultyBlockFraction(k, pf)
	})
}

// Fig4 returns the probability distribution of cache capacity at
// pfail = 0.001 (Eq. 3): x values are capacity fractions, y values their
// probabilities.
func Fig4() prob.Series {
	g := ReferenceGeometry()
	pmf := prob.CapacityPMF(g.Blocks(), g.CellsPerBlock(), 0.001)
	s := prob.Series{Label: "capacity distribution (Eq.3, pfail=0.001)"}
	for x, p := range pmf {
		s.X = append(s.X, float64(x)/float64(g.Blocks()))
		s.Y = append(s.Y, p)
	}
	return s
}

// Fig5 returns the word-disable whole-cache-failure probability versus
// pfail (Eqs. 4-5, corrected sign) over [0, 0.002] like the paper.
func Fig5(points int) prob.Series {
	g := ReferenceGeometry()
	return prob.Sweep("whole-cache failure (Eq.4)", 0, 0.002, points, func(pf float64) float64 {
		return prob.WordDisableWholeCacheFailProb(g.Blocks(), g.BlockBytes, 32, 8, pf)
	})
}

// Fig6 returns block-disabling capacity versus pfail for 32, 64 and 128
// byte blocks at constant cache size and associativity.
func Fig6(points int) []prob.Series {
	sizes := []int{32, 64, 128}
	out := make([]prob.Series, 0, len(sizes))
	for _, bs := range sizes {
		g := geom.MustNew(32*1024, 8, bs)
		k := g.CellsPerBlock()
		label := map[int]string{32: "32 byte", 64: "64 byte", 128: "128 byte"}[bs]
		out = append(out, prob.Sweep(label, 0, 0.005, points, func(pf float64) float64 {
			return prob.ExpectedCapacity(k, pf)
		}))
	}
	return out
}

// Fig7 returns the incremental word-disabling capacity versus pfail
// (Eq. 6) over [0, 0.010].
func Fig7(points int) prob.Series {
	g := ReferenceGeometry()
	return prob.Sweep("incremental word-disable capacity (Eq.6)", 0, 0.010, points, func(pf float64) float64 {
		return prob.IncrementalWDCapacity(g.DataBits(), 8, 32, pf)
	})
}

// TableI returns the overhead comparison rows.
func TableI() []overhead.Row {
	return overhead.TableI(overhead.ReferenceParams())
}

// FigGranularity (extension) applies the Section IV methodology to the
// related work's coarser disabling units: expected capacity versus pfail
// when disabling blocks, whole sets, or whole ways.
func FigGranularity(points int) []prob.Series {
	g := ReferenceGeometry()
	out := make([]prob.Series, 0, 3)
	for _, gran := range []prob.Granularity{prob.GranularityBlock, prob.GranularitySet, prob.GranularityWay} {
		gran := gran
		out = append(out, prob.Sweep(gran.String()+" disabling", 0, 0.002, points, func(pf float64) float64 {
			return prob.GranularityCapacity(g, gran, pf)
		}))
	}
	return out
}

// FigBitFix (extension) compares the whole-cache-failure probability of
// word-disabling (Eq. 4) against bit-fix with one repair per 16-bit group,
// quantifying Section II's observation that bit-fix suits lower cache
// levels: at L1-relevant pfail it is orders of magnitude more fragile.
func FigBitFix(points int) []prob.Series {
	g := ReferenceGeometry()
	wd := prob.Sweep("word-disable failure", 0, 0.002, points, func(pf float64) float64 {
		return prob.WordDisableWholeCacheFailProb(g.Blocks(), g.BlockBytes, 32, 8, pf)
	})
	bf := prob.Sweep("bit-fix failure", 0, 0.002, points, func(pf float64) float64 {
		return prob.BitFixWholeCacheFailProb(g.Blocks(), g.DataBits(), 8, 1, pf)
	})
	return []prob.Series{wd, bf}
}

// FigCluster (extension; the paper's future work) compares block-disable
// capacity under uniform and clustered fault placement at equal fault
// rates, analytically for clusters falling entirely within one block:
// clusters of size s reduce the effective number of independent faulty
// units by ~s, so capacity improves. Monte Carlo confirmation lives in the
// faults package tests; this returns the analytic approximation.
func FigCluster(points int, clusterSize int) []prob.Series {
	g := ReferenceGeometry()
	k := g.CellsPerBlock()
	uniform := prob.Sweep("uniform faults", 0, 0.005, points, func(pf float64) float64 {
		return prob.ExpectedCapacity(k, pf)
	})
	clustered := prob.Sweep("clustered faults", 0, 0.005, points, func(pf float64) float64 {
		// Cluster centers arrive at rate pf/s; a block is faulty if any
		// center lands in it or in the s-1 cells before its start.
		return prob.ExpectedCapacity(k, pf/float64(clusterSize))
	})
	return []prob.Series{uniform, clustered}
}

package experiments

import (
	"runtime"

	"vccmin/internal/core"
	"vccmin/internal/faults"
	"vccmin/internal/geom"
	"vccmin/internal/sim"
	"vccmin/internal/stats"
	"vccmin/internal/workload"
)

// SimParams configures the simulation experiments (Section V defaults:
// 26 benchmarks, 50 fault-map pairs, pfail = 0.001).
type SimParams struct {
	Benchmarks   []string
	FaultPairs   int
	Pfail        float64
	Instructions int
	BaseSeed     int64
	Parallelism  int // worker goroutines; 0 = GOMAXPROCS
}

// DefaultSimParams returns the paper's experimental setup with a
// reproduction-friendly instruction budget (the paper runs 100 M per
// benchmark; stationary synthetic workloads converge much sooner).
func DefaultSimParams() SimParams {
	return SimParams{
		Benchmarks:   workload.Names(),
		FaultPairs:   50,
		Pfail:        0.001,
		Instructions: 200_000,
		BaseSeed:     1,
	}
}

func (p SimParams) withDefaults() SimParams {
	if len(p.Benchmarks) == 0 {
		p.Benchmarks = workload.Names()
	}
	if p.FaultPairs <= 0 {
		p.FaultPairs = 50
	}
	if p.Pfail <= 0 {
		p.Pfail = 0.001
	}
	if p.Instructions <= 0 {
		p.Instructions = 200_000
	}
	if p.Parallelism <= 0 {
		p.Parallelism = runtime.GOMAXPROCS(0)
	}
	return p
}

// pairs draws the experiment's fault-map pairs on the sparse fast path,
// one worker job per pair: pair i uses seed BaseSeed+i, shared across
// benchmarks and configurations so comparisons see identical fault
// patterns. Each job writes only its own slot, so the slice is identical
// for every parallelism level.
func (p SimParams) pairs() []faults.Pair {
	g := geom.MustNew(32*1024, 8, 64)
	out := make([]faults.Pair, p.FaultPairs)
	jobs := make([]func() error, len(out))
	for i := range out {
		i := i
		jobs[i] = func() error {
			out[i] = faults.GeneratePairSparse(g, g, 32, p.Pfail, p.BaseSeed+int64(i))
			return nil
		}
	}
	RunJobs(p.Parallelism, jobs)
	return out
}

// BenchLowVoltage holds every low-voltage measurement for one benchmark.
// All values are raw IPCs; the Fig8/Fig9/Fig10 views normalize them.
type BenchLowVoltage struct {
	Name string

	BaselineIPC   float64 // 32KB 8-way, no victim cache
	BaselineVCIPC float64 // with 16-entry 10T victim cache

	WordDisableIPC   float64 // 16KB 4-way latency 4
	WordDisableVCIPC float64

	BlockDisable     []float64 // per fault pair
	BlockDisableVC   []float64 // with 10T victim cache (16 entries)
	BlockDisableVC6T []float64 // with 6T victim cache (8 usable entries)
}

// LowVoltageResults carries the full low-voltage Monte Carlo.
type LowVoltageResults struct {
	Params     SimParams
	Benchmarks []BenchLowVoltage

	// WordDisableUnfit counts fault pairs whose I- or D-map renders a
	// word-disabled cache unusable (whole-cache failure, Fig. 5's event).
	WordDisableUnfit int
}

// RunLowVoltage executes the paper's low-voltage experiments: for every
// benchmark, the baseline (with and without victim cache), word-disabling
// (with and without), and block-disabling under FaultPairs random fault
// maps with each victim-cache option.
func RunLowVoltage(p SimParams) (*LowVoltageResults, error) {
	p = p.withDefaults()
	pairs := p.pairs()

	res := &LowVoltageResults{Params: p, Benchmarks: make([]BenchLowVoltage, len(p.Benchmarks))}
	wdCfg := core.ReferenceWordDisable()
	for _, pr := range pairs {
		if !core.EvaluateWordDisable(pr.I, wdCfg).Fit || !core.EvaluateWordDisable(pr.D, wdCfg).Fit {
			res.WordDisableUnfit++
		}
	}

	var jobs []func() error
	for bi, name := range p.Benchmarks {
		name := name
		b := &res.Benchmarks[bi]
		b.Name = name
		b.BlockDisable = make([]float64, len(pairs))
		b.BlockDisableVC = make([]float64, len(pairs))
		b.BlockDisableVC6T = make([]float64, len(pairs))

		add := func(dst *float64, opts sim.Options) {
			jobs = append(jobs, func() error {
				ipc, err := RunIPC(opts)
				if err != nil {
					return err
				}
				*dst = ipc
				return nil
			})
		}
		base := sim.Options{Benchmark: name, Mode: sim.LowVoltage, Instructions: p.Instructions, Seed: p.BaseSeed}

		o := base
		add(&b.BaselineIPC, o)
		o = base
		o.Victim = sim.Victim10T
		add(&b.BaselineVCIPC, o)
		o = base
		o.Scheme = sim.WordDisable
		add(&b.WordDisableIPC, o)
		o = base
		o.Scheme = sim.WordDisable
		o.Victim = sim.Victim10T
		add(&b.WordDisableVCIPC, o)
		for pi := range pairs {
			pair := pairs[pi]
			o = base
			o.Scheme = sim.BlockDisable
			o.Pair = &pair
			add(&b.BlockDisable[pi], o)
			o.Victim = sim.Victim10T
			add(&b.BlockDisableVC[pi], o)
			o.Victim = sim.Victim6T
			add(&b.BlockDisableVC6T[pi], o)
		}
	}

	if err := RunJobs(p.Parallelism, jobs); err != nil {
		return nil, err
	}
	return res, nil
}

// FigRow is one benchmark's bars in a performance figure; values are
// normalized to the figure's baseline.
type FigRow struct {
	Benchmark string
	Values    []float64
}

// Figure is a rendered paper figure: named series over the benchmarks,
// plus their across-benchmark averages.
type Figure struct {
	Title    string
	Series   []string
	Rows     []FigRow
	Averages []float64
}

// averageColumn computes the arithmetic mean of column s over rows, the
// aggregate the paper quotes ("average 11.2% performance loss").
func (f *Figure) computeAverages() {
	if len(f.Rows) == 0 {
		return
	}
	n := len(f.Series)
	f.Averages = make([]float64, n)
	for s := 0; s < n; s++ {
		col := make([]float64, 0, len(f.Rows))
		for _, r := range f.Rows {
			col = append(col, r.Values[s])
		}
		f.Averages[s] = stats.Mean(col)
	}
}

// Fig8 renders Fig. 8: low-voltage performance normalized to the baseline
// WITHOUT victim cache. Series: word disabling; block disabling avg;
// block disabling avg + V$ 10T; block disabling min; block disabling min +
// V$ 10T.
func (r *LowVoltageResults) Fig8() Figure {
	f := Figure{
		Title: "Fig. 8: below Vcc-min, normalized to baseline without victim cache",
		Series: []string{
			"word disabling",
			"block disabling avg",
			"block disabling avg+V$ 10T",
			"block disabling min",
			"block disabling min+V$ 10T",
		},
	}
	for _, b := range r.Benchmarks {
		base := b.BaselineIPC
		f.Rows = append(f.Rows, FigRow{Benchmark: b.Name, Values: []float64{
			b.WordDisableIPC / base,
			stats.Mean(b.BlockDisable) / base,
			stats.Mean(b.BlockDisableVC) / base,
			stats.Min(b.BlockDisable) / base,
			stats.Min(b.BlockDisableVC) / base,
		}})
	}
	f.computeAverages()
	return f
}

// Fig9 renders Fig. 9: low-voltage performance with every configuration
// (including the baseline) backed by a 10T victim cache. Series: word
// disabling; block disabling avg; block disabling min.
func (r *LowVoltageResults) Fig9() Figure {
	f := Figure{
		Title: "Fig. 9: below Vcc-min, normalized to baseline with victim cache (10T cells)",
		Series: []string{
			"word disabling",
			"block disabling avg",
			"block disabling min",
		},
	}
	for _, b := range r.Benchmarks {
		base := b.BaselineVCIPC
		f.Rows = append(f.Rows, FigRow{Benchmark: b.Name, Values: []float64{
			b.WordDisableVCIPC / base,
			stats.Mean(b.BlockDisableVC) / base,
			stats.Min(b.BlockDisableVC) / base,
		}})
	}
	f.computeAverages()
	return f
}

// Fig10 renders Fig. 10: the 10T versus 6T victim-cache comparison,
// normalized to the baseline without victim cache. Series: word
// disabling; BD avg + V$ 10T; BD avg + V$ 6T; BD min + V$ 10T; BD min +
// V$ 6T.
func (r *LowVoltageResults) Fig10() Figure {
	f := Figure{
		Title: "Fig. 10: 16-entry victim cache, 10T vs 6T cells",
		Series: []string{
			"word disabling",
			"block disabling avg+V$ 10T",
			"block disabling avg+V$ 6T",
			"block disabling min+V$ 10T",
			"block disabling min+V$ 6T",
		},
	}
	for _, b := range r.Benchmarks {
		base := b.BaselineIPC
		f.Rows = append(f.Rows, FigRow{Benchmark: b.Name, Values: []float64{
			b.WordDisableIPC / base,
			stats.Mean(b.BlockDisableVC) / base,
			stats.Mean(b.BlockDisableVC6T) / base,
			stats.Min(b.BlockDisableVC) / base,
			stats.Min(b.BlockDisableVC6T) / base,
		}})
	}
	f.computeAverages()
	return f
}

// BenchHighVoltage holds the high-voltage measurements for one benchmark.
type BenchHighVoltage struct {
	Name string

	BaselineIPC   float64
	BaselineVCIPC float64

	WordDisableIPC   float64
	WordDisableVCIPC float64

	BlockDisableIPC   float64 // disable bits ignored: equals baseline
	BlockDisableVCIPC float64
}

// HighVoltageResults carries the high-voltage experiments.
type HighVoltageResults struct {
	Params     SimParams
	Benchmarks []BenchHighVoltage
}

// RunHighVoltage executes the Fig. 11/12 experiments: at or above Vcc-min
// every cell is reliable, so no fault maps are involved; word-disabling
// still pays its alignment-network cycle.
func RunHighVoltage(p SimParams) (*HighVoltageResults, error) {
	p = p.withDefaults()
	res := &HighVoltageResults{Params: p, Benchmarks: make([]BenchHighVoltage, len(p.Benchmarks))}

	var jobs []func() error
	for bi, name := range p.Benchmarks {
		name := name
		b := &res.Benchmarks[bi]
		b.Name = name
		add := func(dst *float64, opts sim.Options) {
			jobs = append(jobs, func() error {
				ipc, err := RunIPC(opts)
				if err != nil {
					return err
				}
				*dst = ipc
				return nil
			})
		}
		base := sim.Options{Benchmark: name, Mode: sim.HighVoltage, Instructions: p.Instructions, Seed: p.BaseSeed}
		o := base
		add(&b.BaselineIPC, o)
		o = base
		o.Victim = sim.Victim10T
		add(&b.BaselineVCIPC, o)
		o = base
		o.Scheme = sim.WordDisable
		add(&b.WordDisableIPC, o)
		o = base
		o.Scheme = sim.WordDisable
		o.Victim = sim.Victim10T
		add(&b.WordDisableVCIPC, o)
		o = base
		o.Scheme = sim.BlockDisable
		add(&b.BlockDisableIPC, o)
		o = base
		o.Scheme = sim.BlockDisable
		o.Victim = sim.Victim10T
		add(&b.BlockDisableVCIPC, o)
	}
	if err := RunJobs(p.Parallelism, jobs); err != nil {
		return nil, err
	}
	return res, nil
}

// Fig11 renders Fig. 11: high-voltage performance normalized to the
// baseline without victim cache. Series: word disabling; block disabling;
// block disabling + V$ 10T.
func (r *HighVoltageResults) Fig11() Figure {
	f := Figure{
		Title:  "Fig. 11: high voltage, normalized to baseline without victim cache",
		Series: []string{"word disabling", "block disabling", "block disabling+V$ 10T"},
	}
	for _, b := range r.Benchmarks {
		base := b.BaselineIPC
		f.Rows = append(f.Rows, FigRow{Benchmark: b.Name, Values: []float64{
			b.WordDisableIPC / base,
			b.BlockDisableIPC / base,
			b.BlockDisableVCIPC / base,
		}})
	}
	f.computeAverages()
	return f
}

// Fig12 renders Fig. 12: high-voltage performance with victim caches
// everywhere, normalized to the baseline with victim cache. Series: word
// disabling; block disabling.
func (r *HighVoltageResults) Fig12() Figure {
	f := Figure{
		Title:  "Fig. 12: high voltage with victim caches, normalized to baseline with victim cache",
		Series: []string{"word disabling", "block disabling"},
	}
	for _, b := range r.Benchmarks {
		base := b.BaselineVCIPC
		f.Rows = append(f.Rows, FigRow{Benchmark: b.Name, Values: []float64{
			b.WordDisableVCIPC / base,
			b.BlockDisableVCIPC / base,
		}})
	}
	f.computeAverages()
	return f
}

package experiments

import (
	"strconv"

	"vccmin/internal/core"
	"vccmin/internal/faults"
	"vccmin/internal/geom"
	"vccmin/internal/prob"
)

// MeasuredBlockDisableCapacity estimates Eq. 2 by Monte Carlo: the mean
// fraction of fault-free blocks over trials fault maps drawn at pfail.
// Seeds derive per trial from seed, so the estimate is reproducible. This
// is the empirical counterpart the property tests (and the service's
// measured-capacity query) hold against prob.ExpectedCapacity.
func MeasuredBlockDisableCapacity(g geom.Geometry, pfail float64, trials int, seed int64) float64 {
	if trials <= 0 {
		trials = 1
	}
	sum := 0.0
	for t := 0; t < trials; t++ {
		m := faults.GenerateMap(g, 32, pfail, faults.DeriveSeed(seed, "capacity-trial", strconv.Itoa(t)))
		sum += core.BuildBlockDisable(m).CapacityFraction()
	}
	return sum / float64(trials)
}

// AnalyticBlockDisableCapacity is Eq. 2 for g at pfail — the closed form
// MeasuredBlockDisableCapacity converges to.
func AnalyticBlockDisableCapacity(g geom.Geometry, pfail float64) float64 {
	return prob.ExpectedCapacity(g.CellsPerBlock(), pfail)
}

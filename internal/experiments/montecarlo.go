package experiments

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"vccmin/internal/faults"
	"vccmin/internal/geom"
	"vccmin/internal/prob"
)

// MeasuredBlockDisableCapacity estimates Eq. 2 by Monte Carlo: the mean
// fraction of fault-free blocks over trials fault maps drawn at pfail.
// Seeds derive per trial from seed, so the estimate is reproducible. This
// is the empirical counterpart the property tests (and the service's
// measured-capacity query) hold against prob.ExpectedCapacity.
//
// Trials draw on the sparse fast path (one reused map buffer per worker)
// and run on all CPUs; use MeasuredBlockDisableCapacityWorkers to bound
// the worker pool. The result is a pure function of (g, pfail, trials,
// seed) — worker count and scheduling never change it.
func MeasuredBlockDisableCapacity(g geom.Geometry, pfail float64, trials int, seed int64) float64 {
	return MeasuredBlockDisableCapacityWorkers(g, pfail, trials, seed, 0)
}

// MeasuredBlockDisableCapacityWorkers is MeasuredBlockDisableCapacity
// with the worker pool bounded to workers goroutines (0 = GOMAXPROCS).
// Per-trial capacities land in trial-indexed slots and are reduced
// serially, so the estimate is bit-identical for every worker count.
func MeasuredBlockDisableCapacityWorkers(g geom.Geometry, pfail float64, trials int, seed int64, workers int) float64 {
	if trials <= 0 {
		trials = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	caps := make([]float64, trials)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sampler faults.Sampler
			for {
				t := int(next.Add(1)) - 1
				if t >= trials {
					return
				}
				m := sampler.Draw(g, 32, pfail, faults.DeriveSeed(seed, "capacity-trial", strconv.Itoa(t)))
				// Identical to core.BuildBlockDisable(m).CapacityFraction()
				// — enabled blocks over total blocks, the same division —
				// without materializing the per-trial way-mask structure.
				blocks := len(m.Blocks)
				caps[t] = float64(blocks-m.FaultyBlocks()) / float64(blocks)
			}
		}()
	}
	wg.Wait()
	sum := 0.0
	for _, c := range caps {
		sum += c
	}
	return sum / float64(trials)
}

// MeasuredBlockDisableCapacityDenseSerial is the dense-stream analogue of
// MeasuredBlockDisableCapacity: the same per-trial seed derivation and the
// same capacity reduction, but each trial draws on the dense (math/rand
// value stream) path through one reused faults.DenseSampler, serially.
// Trial t's map is byte-identical to
// faults.GenerateMap(g, 32, pfail, faults.DeriveSeed(seed, "capacity-trial", t)),
// so the estimate matches the historical dense per-seed experiment exactly
// while allocating nothing in steady state.
func MeasuredBlockDisableCapacityDenseSerial(g geom.Geometry, pfail float64, trials int, seed int64) float64 {
	if trials <= 0 {
		trials = 1
	}
	var sampler faults.DenseSampler
	sum := 0.0
	for t := 0; t < trials; t++ {
		m := sampler.Draw(g, 32, pfail, faults.DeriveSeed(seed, "capacity-trial", strconv.Itoa(t)))
		blocks := len(m.Blocks)
		sum += float64(blocks-m.FaultyBlocks()) / float64(blocks)
	}
	return sum / float64(trials)
}

// AnalyticBlockDisableCapacity is Eq. 2 for g at pfail — the closed form
// MeasuredBlockDisableCapacity converges to.
func AnalyticBlockDisableCapacity(g geom.Geometry, pfail float64) float64 {
	return prob.ExpectedCapacity(g.CellsPerBlock(), pfail)
}

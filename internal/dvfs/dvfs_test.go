package dvfs

import (
	"reflect"
	"testing"

	"vccmin/internal/sim"
	"vccmin/internal/workload"
)

// testWorkload is a small two-swing compute/memory workload sized for
// unit-test budgets.
func testWorkload(t *testing.T) workload.MultiPhase {
	t.Helper()
	mp, err := workload.MultiPhaseByName("compute-memory-swing")
	if err != nil {
		t.Fatal(err)
	}
	return mp.Scaled(24_000)
}

func runPolicy(t *testing.T, p PolicyKind, scheme sim.Scheme) Result {
	t.Helper()
	res, err := Run(Config{
		Workload: testWorkload(t),
		Scheme:   scheme,
		Pfail:    0.001,
		Policy:   p,
		Seed:     11,
	})
	if err != nil {
		t.Fatalf("policy %s: %v", p, err)
	}
	return res
}

func TestRunDeterministic(t *testing.T) {
	for _, p := range Policies() {
		a := runPolicy(t, p, sim.BlockDisable)
		b := runPolicy(t, p, sim.BlockDisable)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("policy %s: two identical runs differ", p)
		}
	}
}

func TestStaticPoliciesStayPut(t *testing.T) {
	high := runPolicy(t, PolicyStaticHigh, sim.BlockDisable)
	if high.Switches != 0 || high.LowInstructions != 0 {
		t.Fatalf("static-high switched: %d switches, %d low instructions", high.Switches, high.LowInstructions)
	}
	low := runPolicy(t, PolicyStaticLow, sim.BlockDisable)
	if low.Switches != 0 || low.HighInstructions != 0 {
		t.Fatalf("static-low switched: %d switches, %d high instructions", low.Switches, low.HighInstructions)
	}
	if low.Energy >= high.Energy {
		t.Fatalf("static-low energy %.3f not below static-high %.3f", low.Energy, high.Energy)
	}
	if low.Performance >= high.Performance {
		t.Fatalf("static-low performance %.4f not below static-high %.4f", low.Performance, high.Performance)
	}
}

func TestOracleDominatesStaticBounds(t *testing.T) {
	for _, scheme := range []sim.Scheme{sim.BlockDisable, sim.WordDisable} {
		oracle := runPolicy(t, PolicyOracle, scheme)
		high := runPolicy(t, PolicyStaticHigh, scheme)
		low := runPolicy(t, PolicyStaticLow, scheme)
		if oracle.Performance < low.Performance {
			t.Errorf("%s: oracle performance %.4f below static-low %.4f", scheme, oracle.Performance, low.Performance)
		}
		if oracle.EnergyPerInstruction > high.EnergyPerInstruction {
			t.Errorf("%s: oracle energy/instr %.4f above static-high %.4f", scheme, oracle.EnergyPerInstruction, high.EnergyPerInstruction)
		}
	}
}

func TestIntervalAlternates(t *testing.T) {
	res := runPolicy(t, PolicyInterval, sim.BlockDisable)
	if res.Switches == 0 {
		t.Fatal("interval policy never switched")
	}
	if res.HighInstructions == 0 || res.LowInstructions == 0 {
		t.Fatalf("interval policy did not split instructions: high=%d low=%d", res.HighInstructions, res.LowInstructions)
	}
}

func TestSwitchPenaltyCosts(t *testing.T) {
	base := runPolicy(t, PolicyInterval, sim.BlockDisable)
	taxed, err := Run(Config{
		Workload:      testWorkload(t),
		Scheme:        sim.BlockDisable,
		Pfail:         0.001,
		Policy:        PolicyInterval,
		Seed:          11,
		SwitchPenalty: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if taxed.Time <= base.Time || taxed.Energy <= base.Energy {
		t.Fatalf("raising the switch penalty did not cost time/energy: %v vs %v", taxed.Time, base.Time)
	}
}

func TestAccountingInvariants(t *testing.T) {
	res := runPolicy(t, PolicyOracle, sim.BlockDisable)
	if got := res.HighInstructions + res.LowInstructions; got != res.TotalInstructions {
		t.Fatalf("instruction split %d does not sum to total %d", got, res.TotalInstructions)
	}
	var phaseInstr int
	var phaseTime, phaseEnergy float64
	for _, ph := range res.Phases {
		phaseInstr += ph.Instructions
		phaseTime += ph.Time
		phaseEnergy += ph.Energy
	}
	if phaseInstr != res.TotalInstructions {
		t.Fatalf("phase instructions %d do not sum to total %d", phaseInstr, res.TotalInstructions)
	}
	if !closeTo(phaseTime, res.Time) || !closeTo(phaseEnergy, res.Energy) {
		t.Fatalf("phase breakdown (%.4f, %.4f) disagrees with totals (%.4f, %.4f)",
			phaseTime, phaseEnergy, res.Time, res.Energy)
	}
	if res.LowVoltage <= 0 || res.LowVoltage > 1 {
		t.Fatalf("low voltage %v out of (0,1]", res.LowVoltage)
	}
}

func closeTo(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+b)
}

func TestConfigCheckErrors(t *testing.T) {
	good := Config{Workload: workload.MultiPhase{Name: "w", Phases: []workload.Phase{{Benchmark: "eon", Instructions: 10}}}, Policy: PolicyStaticHigh}
	if err := good.Check(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no policy", func(c *Config) { c.Policy = PolicyNone }},
		{"bad pfail", func(c *Config) { c.Pfail = 1 }},
		{"unknown benchmark", func(c *Config) { c.Workload.Phases[0].Benchmark = "nope" }},
		{"no phases", func(c *Config) { c.Workload.Phases = nil }},
	}
	for _, tc := range cases {
		c := good
		c.Workload.Phases = append([]workload.Phase(nil), good.Workload.Phases...)
		tc.mut(&c)
		if err := c.Check(); err == nil {
			t.Errorf("%s: Check accepted an invalid config", tc.name)
		}
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range append([]PolicyKind{PolicyNone}, Policies()...) {
		got, err := ParsePolicy(p.String())
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", p.String(), err)
			continue
		}
		if got != p {
			t.Errorf("ParsePolicy(%q) = %v, want %v", p.String(), got, p)
		}
	}
	if _, err := ParsePolicy("warp-speed"); err == nil {
		t.Error("ParsePolicy accepted an unknown name")
	}
}

func TestPlanOracle(t *testing.T) {
	// Phase 0 cheap in high, phase 1 cheap in low, by a wide margin.
	energy := map[sim.Mode][]float64{
		sim.HighVoltage: {1, 100},
		sim.LowVoltage:  {100, 1},
	}
	time := map[sim.Mode][]float64{
		sim.HighVoltage: {1, 1},
		sim.LowVoltage:  {1, 1},
	}
	plan := planOracle(2, 1,
		func(p int, m sim.Mode) float64 { return energy[m][p] },
		func(p int, m sim.Mode) float64 { return time[m][p] },
		func(sim.Mode) float64 { return 1 },
		func(sim.Mode) float64 { return 0 })
	want := oraclePlan{sim.HighVoltage, sim.LowVoltage}
	if !reflect.DeepEqual(plan, want) {
		t.Fatalf("plan = %v, want %v", plan, want)
	}

	// A switch penalty dwarfing the per-phase gap pins the schedule.
	plan = planOracle(2, 1,
		func(p int, m sim.Mode) float64 {
			if m == sim.LowVoltage {
				return 9 // low is slightly cheaper everywhere
			}
			return 10
		},
		func(int, sim.Mode) float64 { return 1 },
		func(sim.Mode) float64 { return 1000 },
		func(sim.Mode) float64 { return 0 })
	if plan[0] != plan[1] {
		t.Fatalf("huge switch penalty still produced a mode change: %v", plan)
	}
	if plan[0] != sim.LowVoltage {
		t.Fatalf("uniform-cheaper low mode not chosen: %v", plan)
	}
}

// Package dvfs is the phase-aware dual-mode scheduler: it drives the
// Table III machines across the high-voltage (3 GHz, fully reliable) and
// low-voltage (600 MHz, fault-mitigated, below Vcc-min) domains while a
// multi-phase workload executes, deciding at chunk boundaries which mode
// the next slice of the instruction stream should run in.
//
// The paper's thesis is *performance-effective* operation below Vcc-min:
// not "run slow", but switch modes so the energy saving of the
// low-voltage domain is harvested exactly where it costs the least
// performance (memory-bound phases, whose stalls shrink with the clock)
// and the high-voltage domain is spent where it buys the most (compute
// phases). The scheduler executes one shared instruction stream
// (trace.PhasedGenerator over a workload.MultiPhase) on two persistent
// sim.Systems — one per mode, each keeping its own cache and predictor
// state — charging a configurable switch penalty (pipeline drain plus
// low-voltage cache re-certification) on every transition, and accounts
// time and energy per phase with the internal/power Fig. 1 model:
// a mode's cycles cost V²·cycles normalized energy and cycles/f
// normalized time.
//
// Five policies (PolicyKind) decide the schedule: the static-high and
// static-low bounds, an oracle that plans per-phase modes by dynamic
// programming over isolated per-phase probe costs, a reactive
// IPC-threshold policy, and a naive interval alternator. Explore runs a
// (workload × scheme × policy) grid and computes the Pareto frontier
// over (performance, energy), the repo's first cross-mode scenario
// engine.
//
// Everything is seeded: a Config's result is a pure function of its
// fields, byte-identical across runs and machines, which is what lets
// the sweep axis, the /v1/dvfs endpoint and the golden fixtures share
// one deterministic contract.
package dvfs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"vccmin/internal/faults"
	"vccmin/internal/geom"
	"vccmin/internal/power"
	"vccmin/internal/sim"
	"vccmin/internal/trace"
	"vccmin/internal/workload"
)

// Config describes one scheduled run.
type Config struct {
	// Workload is the multi-phase instruction stream to schedule.
	Workload workload.MultiPhase

	// Scheme and Victim configure the low-voltage cache mitigation
	// (high-voltage operation is always fully reliable).
	Scheme sim.Scheme
	Victim sim.VictimKind

	// Geometry is the L1 geometry of both mode machines (and of the
	// drawn fault maps). Zero value means the reference 32 KB, 8-way,
	// 64 B/block L1.
	Geometry geom.Geometry

	// Pfail is the per-cell failure probability at the low-voltage
	// operating point; it sizes both the drawn fault maps and the Fig. 1
	// voltage the energy accounting charges below Vcc-min.
	Pfail float64

	// Policy picks the mode schedule.
	Policy PolicyKind

	// Seed roots every random stream of the run (fault maps, workload
	// generators), via faults.DeriveSeed.
	Seed int64

	// SwitchPenalty is the cycle cost of one mode transition, charged in
	// the destination mode: pipeline drain, PLL relock and re-validating
	// the low-voltage way masks. Default 2000 cycles. Set -1 for zero.
	SwitchPenalty int

	// Interval is the decision-chunk size in instructions: policies are
	// consulted every Interval instructions (and always at phase
	// boundaries — chunks never span phases). It is also the alternation
	// period of PolicyInterval. Default 2000.
	Interval int

	// IPCThreshold drives PolicyReactive: a chunk executed at high
	// voltage observing IPC below it schedules the next chunk at low
	// voltage. Default 0.1 (between the memory-bound and compute-bound
	// bands of the synthetic profiles at reproduction scale).
	IPCThreshold float64

	// LowIPCScale multiplies IPCThreshold while running at low voltage,
	// where memory stalls shrink in cycle terms (51 versus 255 cycles)
	// and every profile's IPC rises: a low-mode chunk must beat
	// IPCThreshold·LowIPCScale to earn the switch back up. Default 2.5.
	LowIPCScale float64

	// PerfWeight is the oracle's λ: the time-versus-energy exchange rate
	// of its DP objective energy + λ·time. 0 (default) auto-calibrates λ
	// to the exchange rate between the two static schedules.
	PerfWeight float64

	// LowFreq is the low-voltage mode's normalized frequency. Default
	// 0.2 (Table III: 600 MHz against the 3 GHz high-voltage clock).
	LowFreq float64

	// Warmup instructions executed on each mode's system before the
	// measured run (drawn from dedicated warmup streams, not the
	// workload's). Default: half the first phase. Set -1 to disable.
	Warmup int

	// Model is the Fig. 1 power model; zero value means power.Default().
	Model *power.Model
}

// Default switch economics, shared by Config.withDefaults and
// ExploreSpec.withDefaults so a spec spelling out the defaults hashes
// identically to one omitting them.
const (
	DefaultSwitchPenalty = 2000
	DefaultInterval      = 2000
	DefaultIPCThreshold  = 0.1
)

func (c Config) withDefaults() Config {
	if c.SwitchPenalty == 0 {
		c.SwitchPenalty = DefaultSwitchPenalty
	}
	if c.SwitchPenalty < 0 {
		c.SwitchPenalty = 0
	}
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.IPCThreshold == 0 {
		c.IPCThreshold = DefaultIPCThreshold
	}
	if c.LowIPCScale == 0 {
		c.LowIPCScale = 2.5
	}
	if c.LowFreq <= 0 {
		c.LowFreq = 0.2
	}
	if c.Warmup == 0 && len(c.Workload.Phases) > 0 {
		c.Warmup = c.Workload.Phases[0].Instructions / 2
	}
	if c.Warmup < 0 {
		c.Warmup = 0
	}
	return c
}

// Check validates the config.
func (c Config) Check() error {
	if err := c.Workload.Check(); err != nil {
		return err
	}
	if c.Pfail < 0 || c.Pfail >= 1 {
		return fmt.Errorf("dvfs: pfail %v out of [0,1)", c.Pfail)
	}
	if c.Policy == PolicyNone {
		return fmt.Errorf("dvfs: config needs a policy")
	}
	return nil
}

// PhaseBreakdown is one phase's share of a scheduled run.
type PhaseBreakdown struct {
	Index        int     `json:"index"`
	Benchmark    string  `json:"benchmark"`
	Instructions int     `json:"instructions"`
	HighCycles   uint64  `json:"high_cycles"`
	LowCycles    uint64  `json:"low_cycles"`
	Time         float64 `json:"time"`   // normalized (high-voltage clock) time
	Energy       float64 `json:"energy"` // normalized energy
}

// Result is one scheduled run's accounting.
type Result struct {
	Workload string  `json:"workload"`
	Scheme   string  `json:"scheme"`
	Victim   string  `json:"victim"`
	Policy   string  `json:"policy"`
	Pfail    float64 `json:"pfail"`
	Seed     int64   `json:"seed"`

	// LowVoltage is the normalized supply of the low mode (the Fig. 1
	// voltage at Pfail, clamped to [VFloor, VccMin]); the high mode runs
	// at 1.0.
	LowVoltage float64 `json:"low_voltage"`

	TotalInstructions int     `json:"total_instructions"`
	Switches          int     `json:"switches"`
	HighInstructions  int     `json:"high_instructions"`
	LowInstructions   int     `json:"low_instructions"`
	Time              float64 `json:"time"`   // normalized time incl. switch penalties
	Energy            float64 `json:"energy"` // normalized energy incl. switch penalties

	// Performance is instructions per normalized time unit — equal to
	// plain IPC when the whole run stays at high voltage.
	Performance          float64 `json:"performance"`
	EnergyPerInstruction float64 `json:"energy_per_instruction"`
	EnergyDelayProduct   float64 `json:"energy_delay_product"`

	Phases []PhaseBreakdown `json:"phases"`
}

// runner bundles the per-mode machines and accounting of one run.
type runner struct {
	cfg   Config
	model power.Model

	systems [2]*sim.System // indexed by sim.Mode
	freq    [2]float64
	volt    [2]float64
}

// geometry returns the config's L1 geometry, defaulting to the
// reference Table III L1.
func (c Config) geometry() geom.Geometry {
	if c.Geometry.SizeBytes != 0 {
		return c.Geometry
	}
	ref := sim.Reference(sim.HighVoltage)
	return geom.MustNew(ref.L1Size, ref.L1Ways, ref.L1BlockBytes)
}

// modeOptions builds the sim.Options for one mode: the config's L1
// geometry applied to that mode's Table III machine, and the fault-map
// pair (drawn over the same geometry from the config's seed) for
// fault-dependent schemes.
func (c Config) modeOptions(m sim.Mode) sim.Options {
	g := c.geometry()
	machine := sim.Reference(m)
	machine.L1Size, machine.L1Ways, machine.L1BlockBytes = g.SizeBytes, g.Ways, g.BlockBytes
	opts := sim.Options{Mode: m, Scheme: c.Scheme, Victim: c.Victim, Machine: &machine}
	if m == sim.LowVoltage &&
		(c.Scheme == sim.BlockDisable || c.Scheme == sim.IncrementalWordDisable) {
		pair := faults.GeneratePairSparse(g, g, 32, c.Pfail,
			faults.DeriveSeed(c.Seed, "dvfs-pair", c.Workload.Name))
		opts.Pair = &pair
	}
	return opts
}

// phaseGenerator builds phase p's workload generator. The probe runs and
// the scheduled run derive identical seeds, so the oracle's isolated
// measurements see exactly the instruction stream the real run executes.
func (c Config) phaseGenerator(p int) (*workload.Generator, error) {
	ph := c.Workload.Phases[p]
	prof, err := workload.ByName(ph.Benchmark)
	if err != nil {
		return nil, err
	}
	return workload.NewGenerator(prof,
		faults.DeriveSeed(c.Seed, "dvfs-phase", strconv.Itoa(p), ph.Benchmark))
}

// Run executes the workload under the config's policy and returns the
// full accounting. The result is a pure function of the config.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Check(); err != nil {
		return Result{}, err
	}
	model := power.Default()
	if cfg.Model != nil {
		model = *cfg.Model
	}
	// The low mode sits at the Fig. 1 operating point for this pfail —
	// the same (clamped) voltage every sweep cell and /v1/operating-point
	// report, so the layers can never disagree on what "low" costs.
	lowV := model.OperatingPointForPfail(cfg.Pfail).Voltage

	r := &runner{cfg: cfg, model: model}
	r.freq[sim.HighVoltage], r.freq[sim.LowVoltage] = 1, cfg.LowFreq
	r.volt[sim.HighVoltage], r.volt[sim.LowVoltage] = 1, lowV

	for _, m := range []sim.Mode{sim.HighVoltage, sim.LowVoltage} {
		sys, err := sim.Build(cfg.modeOptions(m))
		if err != nil {
			return Result{}, fmt.Errorf("dvfs: building %s system: %w", m, err)
		}
		r.systems[m] = sys
	}

	if err := r.warmup(); err != nil {
		return Result{}, err
	}

	decide, err := r.policy()
	if err != nil {
		return Result{}, err
	}
	return r.schedule(decide)
}

// warmup runs each mode's system over a dedicated stream of the first
// phase's profile so neither machine starts with stone-cold caches and
// predictors.
func (r *runner) warmup() error {
	if r.cfg.Warmup <= 0 {
		return nil
	}
	prof, err := workload.ByName(r.cfg.Workload.Phases[0].Benchmark)
	if err != nil {
		return err
	}
	for _, m := range []sim.Mode{sim.HighVoltage, sim.LowVoltage} {
		gen, err := workload.NewGenerator(prof,
			faults.DeriveSeed(r.cfg.Seed, "dvfs-warmup", m.String()))
		if err != nil {
			return err
		}
		r.systems[m].CPU.Run(gen, r.cfg.Warmup)
	}
	return nil
}

// probeKey identifies everything the oracle's probe cycle counts depend
// on: the machine (geometry, scheme, victim), the fault-map pair (pfail,
// seed, workload name — the pair seed derives from them) and the phase
// list (each phase's generator seed derives from the config seed, the
// phase index and the benchmark name). Frequency, voltage, switch
// economics and the power model scale cycles into time and energy AFTER
// the probe, so they are deliberately absent.
type probeKey struct {
	g      geom.Geometry
	scheme sim.Scheme
	victim sim.VictimKind
	pfail  float64
	seed   int64
	name   string
	phases string
}

func (c Config) probeKey() probeKey {
	var b strings.Builder
	for _, ph := range c.Workload.Phases {
		fmt.Fprintf(&b, "%d:%s:%d;", len(ph.Benchmark), ph.Benchmark, ph.Instructions)
	}
	return probeKey{
		g:      c.geometry(),
		scheme: c.Scheme,
		victim: c.Victim,
		pfail:  c.Pfail,
		seed:   c.Seed,
		name:   c.Workload.Name,
		phases: b.String(),
	}
}

// probeCache memoizes probe cycle tables across runs. Probe cycles are a
// pure function of the probeKey, so a hit is observationally identical
// to re-simulating — it just skips the dominant cost of an oracle run
// (two system builds plus every phase in both modes). Explore's parallel
// jobs share it, hence the lock. probeCacheCap bounds growth: at the cap
// the cache drops everything (entries are cheap to recompute and a full
// wipe keeps the policy deterministic).
var probeCache = struct {
	sync.Mutex
	m map[probeKey][2][]uint64
}{m: map[probeKey][2][]uint64{}}

const probeCacheCap = 128

// probeCycles measures every phase in isolation in both modes (the
// oracle's cost table), reusing one system per mode via sim.System.Reset
// — bit-identical to building a fresh system per (mode, phase) cell, at
// a fraction of the cost — and memoizing the result in probeCache.
func (r *runner) probeCycles() ([2][]uint64, error) {
	cfg := r.cfg
	key := cfg.probeKey()
	probeCache.Lock()
	cycles, ok := probeCache.m[key]
	probeCache.Unlock()
	if ok {
		return cycles, nil
	}
	for _, m := range []sim.Mode{sim.HighVoltage, sim.LowVoltage} {
		cycles[m] = make([]uint64, len(cfg.Workload.Phases))
		sys, err := sim.Build(cfg.modeOptions(m))
		if err != nil {
			return cycles, err
		}
		for p, ph := range cfg.Workload.Phases {
			if p > 0 {
				sys.Reset()
			}
			gen, err := cfg.phaseGenerator(p)
			if err != nil {
				return cycles, err
			}
			cycles[m][p] = sys.CPU.Run(gen, ph.Instructions).Cycles
		}
	}
	probeCache.Lock()
	if len(probeCache.m) >= probeCacheCap {
		probeCache.m = map[probeKey][2][]uint64{}
	}
	probeCache.m[key] = cycles
	probeCache.Unlock()
	return cycles, nil
}

// probe scales the (possibly cached) probe cycle table into the oracle's
// normalized time and energy costs at this run's operating points.
func (r *runner) probe() (energy, time [2][]float64, err error) {
	cycles, err := r.probeCycles()
	if err != nil {
		return energy, time, err
	}
	for _, m := range []sim.Mode{sim.HighVoltage, sim.LowVoltage} {
		energy[m] = make([]float64, len(cycles[m]))
		time[m] = make([]float64, len(cycles[m]))
		for p, cy := range cycles[m] {
			c := float64(cy)
			energy[m][p] = r.volt[m] * r.volt[m] * c
			time[m][p] = c / r.freq[m]
		}
	}
	return energy, time, nil
}

// policy materializes the config's PolicyKind as a decision function.
func (r *runner) policy() (policyFunc, error) {
	cfg := r.cfg
	switch cfg.Policy {
	case PolicyStaticHigh:
		return func(decisionContext) sim.Mode { return sim.HighVoltage }, nil
	case PolicyStaticLow:
		return func(decisionContext) sim.Mode { return sim.LowVoltage }, nil
	case PolicyInterval:
		return func(d decisionContext) sim.Mode {
			if d.Chunk%2 == 0 {
				return sim.HighVoltage
			}
			return sim.LowVoltage
		}, nil
	case PolicyReactive:
		return func(d decisionContext) sim.Mode {
			if !d.HaveSample {
				return sim.HighVoltage
			}
			// The bar rises at low voltage: shrunken memory stalls lift
			// every profile's IPC, so earning the switch back up takes
			// LowIPCScale times the high-mode threshold.
			threshold := cfg.IPCThreshold
			if d.Mode == sim.LowVoltage {
				threshold *= cfg.LowIPCScale
			}
			if d.LastIPC < threshold {
				return sim.LowVoltage
			}
			return sim.HighVoltage
		}, nil
	case PolicyOracle:
		energy, time, err := r.probe()
		if err != nil {
			return nil, err
		}
		lambda := cfg.PerfWeight
		if lambda <= 0 {
			// Exchange rate between the static schedules: the energy a
			// joule-per-second the all-low schedule trades against the
			// all-high one. Degenerate gaps fall back to 1.
			var eH, eL, tH, tL float64
			for p := range cfg.Workload.Phases {
				eH += energy[sim.HighVoltage][p]
				eL += energy[sim.LowVoltage][p]
				tH += time[sim.HighVoltage][p]
				tL += time[sim.LowVoltage][p]
			}
			if tL > tH && eH > eL {
				lambda = (eH - eL) / (tL - tH)
			} else {
				lambda = 1
			}
		}
		pen := float64(cfg.SwitchPenalty)
		plan := planOracle(len(cfg.Workload.Phases), lambda,
			func(p int, m sim.Mode) float64 { return energy[m][p] },
			func(p int, m sim.Mode) float64 { return time[m][p] },
			func(to sim.Mode) float64 { return r.volt[to] * r.volt[to] * pen },
			func(to sim.Mode) float64 { return pen / r.freq[to] })
		return func(d decisionContext) sim.Mode { return plan[d.Phase] }, nil
	}
	return nil, fmt.Errorf("dvfs: policy %s is not schedulable", cfg.Policy)
}

// schedule executes the shared phased stream chunk by chunk, consulting
// the policy at every chunk boundary and charging switch penalties on
// mode transitions.
func (r *runner) schedule(decide policyFunc) (Result, error) {
	cfg := r.cfg
	res := Result{
		Workload:          cfg.Workload.Name,
		Scheme:            cfg.Scheme.String(),
		Victim:            cfg.Victim.String(),
		Policy:            cfg.Policy.String(),
		Pfail:             cfg.Pfail,
		Seed:              cfg.Seed,
		LowVoltage:        r.volt[sim.LowVoltage],
		TotalInstructions: cfg.Workload.TotalInstructions(),
		Phases:            make([]PhaseBreakdown, len(cfg.Workload.Phases)),
	}
	for p, ph := range cfg.Workload.Phases {
		res.Phases[p] = PhaseBreakdown{Index: p, Benchmark: ph.Benchmark, Instructions: ph.Instructions}
	}

	segs := make([]trace.Segment, len(cfg.Workload.Phases))
	for p, ph := range cfg.Workload.Phases {
		gen, err := cfg.phaseGenerator(p)
		if err != nil {
			return Result{}, err
		}
		segs[p] = trace.Segment{Gen: gen, Instructions: ph.Instructions}
	}
	stream := trace.NewPhased(segs)

	r.runChunks(decide, &res, stream)

	if res.Time > 0 {
		res.Performance = float64(res.TotalInstructions) / res.Time
	}
	res.EnergyPerInstruction = res.Energy / float64(res.TotalInstructions)
	res.EnergyDelayProduct = res.Energy * res.Time
	return res, nil
}

// runChunks is the scheduler's hot loop: execute the phased stream chunk
// by chunk, consulting the policy at every boundary and charging switch
// penalties on transitions, accumulating into res (whose Phases slice
// the caller pre-sized). Everything it needs — the DP plan behind an
// oracle decide, the per-mode systems, the phase accounting slots — is
// materialized before the first chunk, so the loop itself allocates
// nothing (TestOracleChunkLoopAllocs pins this).
func (r *runner) runChunks(decide policyFunc, res *Result, stream *trace.PhasedGenerator) {
	cfg := r.cfg
	mode := sim.HighVoltage
	d := decisionContext{Mode: mode}
	left := res.TotalInstructions
	for chunk := 0; left > 0; chunk++ {
		d.Phase, d.Chunk = stream.Phase(), chunk
		next := decide(d)
		if d.HaveSample && next != mode {
			// Transition: penalty cycles charged in the destination mode.
			pen := float64(cfg.SwitchPenalty)
			res.Switches++
			res.Time += pen / r.freq[next]
			res.Energy += r.volt[next] * r.volt[next] * pen
			res.Phases[d.Phase].Time += pen / r.freq[next]
			res.Phases[d.Phase].Energy += r.volt[next] * r.volt[next] * pen
		}
		mode = next

		n := cfg.Interval
		if rem := stream.Remaining(); n > rem {
			n = rem
		}
		if n > left {
			n = left
		}
		stats := r.systems[mode].CPU.Run(stream, n)
		left -= n

		c := float64(stats.Cycles)
		t, e := c/r.freq[mode], r.volt[mode]*r.volt[mode]*c
		res.Time += t
		res.Energy += e
		pb := &res.Phases[d.Phase]
		pb.Time += t
		pb.Energy += e
		if mode == sim.HighVoltage {
			pb.HighCycles += stats.Cycles
			res.HighInstructions += n
		} else {
			pb.LowCycles += stats.Cycles
			res.LowInstructions += n
		}

		d.Mode = mode
		d.LastIPC = stats.IPC()
		d.HaveSample = true
	}
}

package dvfs

// Differential equivalence suite for the oracle hot path.
//
// The oracle scheduler was rewritten in three observationally invisible
// steps — flat-array DP in planOracle, probe-system reuse via
// sim.System.Reset in probeCycles, and the allocation-free runChunks
// loop — each promising byte-identical results to the code it replaced.
// The historical implementations are frozen here (refPlanOracle is the
// map-per-phase DP verbatim; refProbeCycles builds a fresh system per
// (mode, phase) cell exactly as probe() used to) and held to the
// production path across randomized cost tables and real workloads.
// TestOracleChunkLoopAllocs pins the extracted chunk loop to zero
// allocations at steady state. CI runs this suite under -race
// (make diff-race).

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"vccmin/internal/faults"
	"vccmin/internal/power"
	"vccmin/internal/sim"
	"vccmin/internal/trace"
	"vccmin/internal/workload"
)

// refPlanOracle is the historical map-based DP, frozen as the
// differential reference — do not "optimize" it. Tie semantics: modes
// are evaluated high-voltage first with a strict < comparison.
func refPlanOracle(phases int, lambda float64,
	energyOf, timeOf func(phase int, m sim.Mode) float64,
	switchEnergy, switchTime func(to sim.Mode) float64) oraclePlan {

	modes := []sim.Mode{sim.HighVoltage, sim.LowVoltage}
	cost := func(p int, m sim.Mode) float64 { return energyOf(p, m) + lambda*timeOf(p, m) }
	swCost := func(to sim.Mode) float64 { return switchEnergy(to) + lambda*switchTime(to) }

	best := map[sim.Mode]float64{}
	from := make([]map[sim.Mode]sim.Mode, phases)
	for _, m := range modes {
		best[m] = cost(0, m)
	}
	for p := 1; p < phases; p++ {
		next := map[sim.Mode]float64{}
		from[p] = map[sim.Mode]sim.Mode{}
		for _, m := range modes {
			bestPrev, bestVal := modes[0], 0.0
			for i, prev := range modes {
				v := best[prev]
				if prev != m {
					v += swCost(m)
				}
				if i == 0 || v < bestVal {
					bestPrev, bestVal = prev, v
				}
			}
			next[m] = bestVal + cost(p, m)
			from[p][m] = bestPrev
		}
		best = next
	}

	plan := make(oraclePlan, phases)
	last := modes[0]
	if best[modes[1]] < best[modes[0]] {
		last = modes[1]
	}
	plan[phases-1] = last
	for p := phases - 1; p > 0; p-- {
		last = from[p][last]
		plan[p-1] = last
	}
	return plan
}

func TestDifferentialOraclePlan(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 400; trial++ {
		phases := 1 + rng.Intn(12)
		// Half the trials draw continuous costs; the other half draw from
		// a 4-value grid so equal-cost ties are common and the strict-<
		// tie-breaking of both implementations is actually exercised.
		draw := rng.Float64
		if trial%2 == 1 {
			draw = func() float64 { return float64(1 + rng.Intn(4)) }
		}
		energy := [2][]float64{make([]float64, phases), make([]float64, phases)}
		time := [2][]float64{make([]float64, phases), make([]float64, phases)}
		for p := 0; p < phases; p++ {
			for m := 0; m < 2; m++ {
				energy[m][p] = draw() * 100
				time[m][p] = draw() * 10
			}
		}
		lambda := draw()
		swE := [2]float64{draw() * float64(rng.Intn(2)), draw() * float64(rng.Intn(2))}
		swT := [2]float64{draw(), draw()}

		energyOf := func(p int, m sim.Mode) float64 { return energy[m][p] }
		timeOf := func(p int, m sim.Mode) float64 { return time[m][p] }
		switchEnergy := func(to sim.Mode) float64 { return swE[to] }
		switchTime := func(to sim.Mode) float64 { return swT[to] }

		got := planOracle(phases, lambda, energyOf, timeOf, switchEnergy, switchTime)
		want := refPlanOracle(phases, lambda, energyOf, timeOf, switchEnergy, switchTime)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (phases=%d): flat DP plan %v differs from map-based reference %v",
				trial, phases, got, want)
		}
	}
}

// refProbeCycles is the historical probe measurement: a fresh sim.Build
// for every (mode, phase) cell, no reuse, no cache.
func refProbeCycles(t *testing.T, cfg Config) [2][]uint64 {
	t.Helper()
	var cycles [2][]uint64
	for _, m := range []sim.Mode{sim.HighVoltage, sim.LowVoltage} {
		cycles[m] = make([]uint64, len(cfg.Workload.Phases))
		for p, ph := range cfg.Workload.Phases {
			sys, err := sim.Build(cfg.modeOptions(m))
			if err != nil {
				t.Fatal(err)
			}
			gen, err := cfg.phaseGenerator(p)
			if err != nil {
				t.Fatal(err)
			}
			cycles[m][p] = sys.CPU.Run(gen, ph.Instructions).Cycles
		}
	}
	return cycles
}

func TestDifferentialProbeCycles(t *testing.T) {
	for _, name := range workload.MultiPhaseNames() {
		mp, err := workload.MultiPhaseByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, scheme := range []sim.Scheme{sim.BlockDisable, sim.WordDisable} {
			cfg := Config{
				Workload: mp.Scaled(12_000),
				Scheme:   scheme,
				Pfail:    0.001,
				Policy:   PolicyOracle,
				Seed:     424243, // unique: the first probeCycles call must compute, not hit the cache
			}.withDefaults()
			r := &runner{cfg: cfg}
			got, err := r.probeCycles()
			if err != nil {
				t.Fatal(err)
			}
			want := refProbeCycles(t, cfg)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s/%s: Reset-reuse probe cycles %v differ from fresh-build reference %v",
					name, scheme, got, want)
			}
		}
	}
}

func TestProbeCacheHitIsIdentical(t *testing.T) {
	cfg := Config{
		Workload: testWorkload(t),
		Scheme:   sim.BlockDisable,
		Pfail:    0.001,
		Policy:   PolicyOracle,
		Seed:     424244,
	}.withDefaults()
	first, err := (&runner{cfg: cfg}).probeCycles()
	if err != nil {
		t.Fatal(err)
	}
	second, err := (&runner{cfg: cfg}).probeCycles()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("probe cache hit returned different cycles than the computing call")
	}
}

// TestOracleChunkLoopAllocs pins the scheduler's steady-state chunk loop
// — everything schedule() runs after setup — to zero heap allocations.
// It rebuilds exactly the state Run materializes before runChunks, then
// replays the loop with the generators, stream, systems and result
// buffer reset in place between iterations.
func TestOracleChunkLoopAllocs(t *testing.T) {
	cfg := Config{
		Workload: testWorkload(t),
		Scheme:   sim.BlockDisable,
		Pfail:    0.001,
		Policy:   PolicyOracle,
		Seed:     11,
	}.withDefaults()
	model := power.Default()
	r := &runner{cfg: cfg, model: model}
	r.freq[sim.HighVoltage], r.freq[sim.LowVoltage] = 1, cfg.LowFreq
	r.volt[sim.HighVoltage], r.volt[sim.LowVoltage] = 1, model.OperatingPointForPfail(cfg.Pfail).Voltage
	for _, m := range []sim.Mode{sim.HighVoltage, sim.LowVoltage} {
		sys, err := sim.Build(cfg.modeOptions(m))
		if err != nil {
			t.Fatal(err)
		}
		r.systems[m] = sys
	}
	decide, err := r.policy()
	if err != nil {
		t.Fatal(err)
	}

	gens := make([]*workload.Generator, len(cfg.Workload.Phases))
	seeds := make([]int64, len(cfg.Workload.Phases))
	segs := make([]trace.Segment, len(cfg.Workload.Phases))
	for p, ph := range cfg.Workload.Phases {
		gen, err := cfg.phaseGenerator(p)
		if err != nil {
			t.Fatal(err)
		}
		gens[p] = gen
		seeds[p] = faults.DeriveSeed(cfg.Seed, "dvfs-phase", strconv.Itoa(p), ph.Benchmark)
		segs[p] = trace.Segment{Gen: gen, Instructions: ph.Instructions}
	}
	stream := trace.NewPhased(segs)

	res := Result{
		TotalInstructions: cfg.Workload.TotalInstructions(),
		Phases:            make([]PhaseBreakdown, len(cfg.Workload.Phases)),
	}

	allocs := testing.AllocsPerRun(5, func() {
		for p := range gens {
			gens[p].Reset(seeds[p])
		}
		stream.Reset()
		for _, m := range []sim.Mode{sim.HighVoltage, sim.LowVoltage} {
			r.systems[m].Reset()
		}
		res.Switches, res.HighInstructions, res.LowInstructions = 0, 0, 0
		res.Time, res.Energy = 0, 0
		for i := range res.Phases {
			res.Phases[i] = PhaseBreakdown{}
		}
		r.runChunks(decide, &res, stream)
	})
	if allocs != 0 {
		t.Fatalf("oracle chunk loop allocates %v objects per run, want 0", allocs)
	}
	if res.HighInstructions+res.LowInstructions != res.TotalInstructions {
		t.Fatalf("replayed loop lost instructions: %d+%d != %d",
			res.HighInstructions, res.LowInstructions, res.TotalInstructions)
	}
}

// refMarkFrontier is the historical all-pairs frontier marking, frozen
// as the reference for the incremental FrontierSet rewrite.
func refMarkFrontier(points []Point) {
	for i := range points {
		points[i].Pareto = true
		for j := range points {
			if i != j && points[i].Workload == points[j].Workload && dominates(points[j], points[i]) {
				points[i].Pareto = false
				break
			}
		}
	}
}

func TestMarkFrontierMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	workloads := []string{"a", "b", "c"}
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(60)
		points := make([]Point, n)
		for i := range points {
			// A coarse value grid makes exact duplicates and single-axis
			// ties common — the cases where frontier semantics are subtle.
			points[i] = Point{
				Workload:             workloads[rng.Intn(len(workloads))],
				Performance:          float64(rng.Intn(8)) / 4,
				EnergyPerInstruction: float64(rng.Intn(8)) / 4,
			}
			if trial%3 == 0 { // continuous trials too
				points[i].Performance = rng.Float64()
				points[i].EnergyPerInstruction = rng.Float64()
			}
		}
		got := append([]Point(nil), points...)
		want := append([]Point(nil), points...)
		MarkFrontier(got)
		refMarkFrontier(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: incremental frontier differs from all-pairs reference\n got %+v\nwant %+v",
				trial, got, want)
		}
	}
}

func TestFrontierSetStaircaseInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var fs FrontierSet
	for i := 0; i < 500; i++ {
		fs.Insert(Point{
			Performance:          float64(rng.Intn(30)) / 8,
			EnergyPerInstruction: float64(rng.Intn(30)) / 8,
		})
		for j := 1; j < fs.Len(); j++ {
			if fs.perf[j] >= fs.perf[j-1] || fs.epi[j] >= fs.epi[j-1] {
				t.Fatalf("after %d inserts the staircase is broken at %d: perf %v epi %v",
					i+1, j, fs.perf, fs.epi)
			}
		}
	}
}

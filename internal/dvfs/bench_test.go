package dvfs

import (
	"testing"

	"vccmin/internal/sim"
	"vccmin/internal/workload"
)

// benchWorkload returns the swing workload at a fixed small scale so the
// benchmark measures scheduling overhead, not simulation volume drift.
func benchWorkload(b *testing.B) workload.MultiPhase {
	b.Helper()
	mp, err := workload.MultiPhaseByName("compute-memory-swing")
	if err != nil {
		b.Fatal(err)
	}
	return mp.Scaled(12_000)
}

// BenchmarkDVFSOracleSchedule times one full oracle run: per-phase probe
// table, DP plan and the scheduled dual-mode execution.
func BenchmarkDVFSOracleSchedule(b *testing.B) {
	mp := benchWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{
			Workload: mp,
			Scheme:   sim.BlockDisable,
			Pfail:    0.001,
			Policy:   PolicyOracle,
			Seed:     1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Performance, "perf-norm")
			b.ReportMetric(res.EnergyPerInstruction, "epi-norm")
		}
	}
}

// BenchmarkDVFSReactiveSchedule times the online policy: no probe runs,
// just chunked execution with per-chunk decisions.
func BenchmarkDVFSReactiveSchedule(b *testing.B) {
	mp := benchWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{
			Workload: mp,
			Scheme:   sim.BlockDisable,
			Pfail:    0.001,
			Policy:   PolicyReactive,
			Seed:     1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

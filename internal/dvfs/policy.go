package dvfs

import (
	"fmt"

	"vccmin/internal/sim"
)

// PolicyKind names a mode-scheduling policy.
type PolicyKind int

const (
	// PolicyNone is the zero value: no dvfs evaluation. It exists so the
	// sweep engine's policy axis can default to "absent" without changing
	// the meaning (or cell keys) of existing sweeps.
	PolicyNone PolicyKind = iota

	// PolicyStaticHigh pins the run to the high-voltage mode (3 GHz,
	// fully reliable caches) — the performance bound.
	PolicyStaticHigh

	// PolicyStaticLow pins the run to the low-voltage mode (600 MHz,
	// fault-mitigated caches) — the classic energy bound.
	PolicyStaticLow

	// PolicyOracle knows every phase's cost in both modes (from isolated
	// per-phase probe runs) and picks the per-phase mode sequence that
	// minimizes energy + λ·time including switch penalties, by dynamic
	// programming. λ defaults to the energy/time exchange rate between
	// the two static schedules, so the oracle prices a saved joule
	// against a lost second the way the static extremes do.
	PolicyOracle

	// PolicyReactive observes each executed chunk's IPC and switches to
	// low voltage when it falls below the threshold (a stalling,
	// memory-bound region gains little from the fast clock), back to
	// high when it rises above the mode-scaled threshold — a realizable
	// online policy. See Config.IPCThreshold and Config.LowIPCScale.
	PolicyReactive

	// PolicyInterval alternates modes at a fixed instruction interval
	// regardless of phase structure — the naive duty-cycling baseline a
	// phase-aware policy must beat.
	PolicyInterval
)

// String implements fmt.Stringer; the forms are accepted by ParsePolicy.
func (p PolicyKind) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyStaticHigh:
		return "static-high"
	case PolicyStaticLow:
		return "static-low"
	case PolicyOracle:
		return "oracle"
	case PolicyReactive:
		return "reactive"
	case PolicyInterval:
		return "interval"
	}
	return fmt.Sprintf("PolicyKind(%d)", int(p))
}

// ParsePolicy converts a CLI-style policy name to a PolicyKind. Both the
// Stringer names and short forms ("high", "low") are accepted.
func ParsePolicy(s string) (PolicyKind, error) {
	switch s {
	case "none":
		return PolicyNone, nil
	case "static-high", "high":
		return PolicyStaticHigh, nil
	case "static-low", "low":
		return PolicyStaticLow, nil
	case "oracle":
		return PolicyOracle, nil
	case "reactive":
		return PolicyReactive, nil
	case "interval":
		return PolicyInterval, nil
	}
	return 0, fmt.Errorf("dvfs: unknown policy %q (want static-high, static-low, oracle, reactive or interval)", s)
}

// Policies returns the schedulable policies (everything but PolicyNone)
// in presentation order.
func Policies() []PolicyKind {
	return []PolicyKind{PolicyStaticHigh, PolicyStaticLow, PolicyOracle, PolicyReactive, PolicyInterval}
}

// decisionContext is what a policy sees at a chunk boundary.
type decisionContext struct {
	Phase      int      // phase the next chunk belongs to
	Chunk      int      // 0-based index of the next chunk
	Mode       sim.Mode // mode the previous chunk ran in
	LastIPC    float64  // previous chunk's IPC (0 before the first chunk)
	HaveSample bool     // a previous chunk has been observed
}

// policyFunc returns the mode for the next chunk.
type policyFunc func(decisionContext) sim.Mode

// oraclePlan is the DP mode schedule; phase i runs in plan[i].
type oraclePlan []sim.Mode

// planOracle solves the per-phase mode assignment minimizing
// Σ(energy + λ·time) with switch penalties, by dynamic programming over
// (phase, mode) states. energyOf/timeOf give a phase's isolated-probe cost
// in a mode; switchEnergy/switchTime price one mode transition charged in
// the destination mode.
//
// The DP state is two flat arrays — best-cost per ending mode and a
// packed predecessor table — allocated once up front (the map-per-phase
// formulation this replaces allocated two maps per phase; the _test.go
// reference keeps it, and TestDifferentialOraclePlan holds the two to
// identical plans). The float arithmetic and the comparison order are
// exactly the reference's: candidates are evaluated high-voltage first
// with a strict < comparison, so ties prefer high voltage everywhere.
func planOracle(phases int, lambda float64,
	energyOf, timeOf func(phase int, m sim.Mode) float64,
	switchEnergy, switchTime func(to sim.Mode) float64) oraclePlan {

	modes := [2]sim.Mode{sim.HighVoltage, sim.LowVoltage}
	cost := func(p int, m sim.Mode) float64 { return energyOf(p, m) + lambda*timeOf(p, m) }
	swCost := func(to sim.Mode) float64 { return switchEnergy(to) + lambda*switchTime(to) }

	// best[i] is the minimal cost of scheduling phases [0..p] ending in
	// modes[i]; from[2p+i] the index of the predecessor mode achieving it.
	var best, next [2]float64
	from := make([]uint8, 2*phases)
	best[0] = cost(0, modes[0])
	best[1] = cost(0, modes[1])
	for p := 1; p < phases; p++ {
		for i, m := range modes {
			sw := swCost(m)
			v0 := best[0]
			if modes[0] != m {
				v0 += sw
			}
			v1 := best[1]
			if modes[1] != m {
				v1 += sw
			}
			bestPrev, bestVal := uint8(0), v0
			if v1 < bestVal {
				bestPrev, bestVal = 1, v1
			}
			next[i] = bestVal + cost(p, m)
			from[2*p+i] = bestPrev
		}
		best = next
	}

	plan := make(oraclePlan, phases)
	last := uint8(0)
	if best[1] < best[0] {
		last = 1
	}
	plan[phases-1] = modes[last]
	for p := phases - 1; p > 0; p-- {
		last = from[2*p+int(last)]
		plan[p-1] = modes[last]
	}
	return plan
}

package dvfs

import (
	"reflect"
	"testing"

	"vccmin/internal/sim"
)

func TestMarkFrontier(t *testing.T) {
	pts := []Point{
		{Workload: "w", Policy: "a", Performance: 1.0, EnergyPerInstruction: 1.0},
		{Workload: "w", Policy: "b", Performance: 0.5, EnergyPerInstruction: 0.5},
		{Workload: "w", Policy: "c", Performance: 0.5, EnergyPerInstruction: 2.0}, // dominated by a
		{Workload: "w", Policy: "d", Performance: 0.4, EnergyPerInstruction: 0.6}, // dominated by b
		// Same coordinates as a dominated point, but another workload:
		// never compared, stays on its own frontier.
		{Workload: "x", Policy: "c", Performance: 0.5, EnergyPerInstruction: 2.0},
	}
	MarkFrontier(pts)
	want := []bool{true, true, false, false, true}
	for i, p := range pts {
		if p.Pareto != want[i] {
			t.Errorf("point %d (%s/%s): pareto = %v, want %v", i, p.Workload, p.Policy, p.Pareto, want[i])
		}
	}
	fr := Frontier(pts)
	if len(fr) != 3 {
		t.Fatalf("Frontier returned %d points, want 3", len(fr))
	}
}

func TestDominatesTiesAreNotDomination(t *testing.T) {
	a := Point{Performance: 1, EnergyPerInstruction: 1}
	if dominates(a, a) {
		t.Fatal("a point dominates itself")
	}
	b := Point{Performance: 1, EnergyPerInstruction: 0.9}
	if !dominates(b, a) || dominates(a, b) {
		t.Fatal("strict improvement on one axis with a tie on the other must dominate")
	}
}

func TestExploreDeterministicAcrossWorkers(t *testing.T) {
	spec := ExploreSpec{
		Workloads: []string{"compute-memory-swing"},
		Schemes:   []sim.Scheme{sim.BlockDisable},
		Policies:  []PolicyKind{PolicyStaticHigh, PolicyStaticLow, PolicyOracle},
		Scale:     12_000,
	}
	serial := spec
	serial.Workers = 1
	parallel := spec
	parallel.Workers = 4
	a, err := Explore(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("explore results differ across worker counts")
	}
	if len(a.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(a.Points))
	}
	if len(a.ParetoPoints()) == 0 {
		t.Fatal("no pareto points")
	}
}

func TestExploreRejectsUnknownWorkload(t *testing.T) {
	_, err := Explore(ExploreSpec{Workloads: []string{"nope"}})
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestCanonicalHashSensitivity(t *testing.T) {
	base := ExploreSpec{Workloads: []string{"bursty-server"}, Policies: []PolicyKind{PolicyOracle}}
	h := base.CanonicalHash()
	if h != base.CanonicalHash() {
		t.Fatal("hash is not stable")
	}
	for name, mut := range map[string]func(*ExploreSpec){
		"seed":     func(s *ExploreSpec) { s.Seed = 2 },
		"pfail":    func(s *ExploreSpec) { s.Pfail = 0.002 },
		"workload": func(s *ExploreSpec) { s.Workloads = []string{"steady-compute"} },
		"policy":   func(s *ExploreSpec) { s.Policies = []PolicyKind{PolicyReactive} },
		"scheme":   func(s *ExploreSpec) { s.Schemes = []sim.Scheme{sim.WordDisable} },
		"scale":    func(s *ExploreSpec) { s.Scale = 5000 },
		"victim":   func(s *ExploreSpec) { s.Victim = sim.Victim10T },
		"penalty":  func(s *ExploreSpec) { s.SwitchPenalty = 9000 },
		"interval": func(s *ExploreSpec) { s.Interval = 500 },
		"ipc":      func(s *ExploreSpec) { s.IPCThreshold = 0.3 },
	} {
		s := base
		mut(&s)
		if s.CanonicalHash() == h {
			t.Errorf("changing %s did not change the canonical hash", name)
		}
	}
	// Workers is scheduling-only and must not affect the hash.
	s := base
	s.Workers = 7
	if s.CanonicalHash() != h {
		t.Error("changing workers changed the canonical hash")
	}

	// Spelling out the default switch economics must hash identically to
	// omitting them — both forms run the same simulation.
	explicit := base
	explicit.SwitchPenalty = DefaultSwitchPenalty
	explicit.Interval = DefaultInterval
	explicit.IPCThreshold = DefaultIPCThreshold
	if explicit.CanonicalHash() != h {
		t.Error("explicit default switch economics changed the canonical hash")
	}
}

package dvfs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sort"

	"vccmin/internal/experiments"
	"vccmin/internal/sim"
	"vccmin/internal/workload"
)

// Point is one (workload, scheme, policy) operating point of the
// explorer: where the scheduled run landed in (performance, energy)
// space, with the supply voltage its low-mode slices used.
type Point struct {
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	Policy   string `json:"policy"`

	Performance          float64 `json:"performance"`
	Energy               float64 `json:"energy"`
	EnergyPerInstruction float64 `json:"energy_per_instruction"`
	EnergyDelayProduct   float64 `json:"energy_delay_product"`
	LowVoltage           float64 `json:"low_voltage"`
	Switches             int     `json:"switches"`
	LowInstructionShare  float64 `json:"low_instruction_share"`

	// Pareto reports whether the point is on its workload's frontier
	// (no other point of the same workload has both higher performance
	// and lower energy per instruction).
	Pareto bool `json:"pareto"`
}

// dominates reports whether a beats b on the (maximize performance,
// minimize energy-per-instruction) order: at least as good on both and
// strictly better on one.
func dominates(a, b Point) bool {
	if a.Performance < b.Performance || a.EnergyPerInstruction > b.EnergyPerInstruction {
		return false
	}
	return a.Performance > b.Performance || a.EnergyPerInstruction < b.EnergyPerInstruction
}

// FrontierSet maintains a Pareto frontier over (maximize performance,
// minimize energy-per-instruction) incrementally: points are inserted
// one at a time, and at every moment the set holds exactly the
// non-dominated points seen so far, deduplicated, as a staircase sorted
// by strictly decreasing performance — which, on the frontier, forces
// strictly decreasing energy too (a cheaper point at equal-or-higher
// performance would dominate). Insert and Dominated are O(log n) plus
// the amortized O(1) removal of newly dominated members, replacing the
// all-pairs rescan MarkFrontier used to run over the full point set.
type FrontierSet struct {
	perf []float64
	epi  []float64
}

// Len returns the number of distinct frontier members.
func (f *FrontierSet) Len() int { return len(f.perf) }

// lastGE returns the index of the last member with performance >= perf,
// or -1. Members are sorted by strictly decreasing performance.
func (f *FrontierSet) lastGE(perf float64) int {
	return sort.Search(len(f.perf), func(i int) bool { return f.perf[i] < perf }) - 1
}

// Dominated reports whether some inserted point strictly dominates p
// (better or equal on both axes, strictly better on one). A point equal
// to a member on both axes is NOT dominated — equal points share the
// frontier, exactly as under the pairwise dominates relation.
func (f *FrontierSet) Dominated(p Point) bool {
	// Among members at performance >= p's, the last one has the lowest
	// energy (staircase), so it dominates p iff any member does.
	i := f.lastGE(p.Performance)
	if i < 0 || f.epi[i] > p.EnergyPerInstruction {
		return false
	}
	return f.perf[i] > p.Performance || f.epi[i] < p.EnergyPerInstruction
}

// Insert adds p to the set, dropping it if dominated (or an exact
// duplicate) and evicting any members p newly dominates.
func (f *FrontierSet) Insert(p Point) {
	if f.Dominated(p) {
		return
	}
	lo := f.lastGE(p.Performance) + 1 // first member with perf < p's
	if i := lo - 1; i >= 0 && f.perf[i] == p.Performance {
		if f.epi[i] == p.EnergyPerInstruction {
			return // exact duplicate of a member
		}
		// Not dominated and not equal at the same performance: the member
		// pays strictly more energy, so p evicts it too.
		lo = i
	}
	// Members from lo on have performance <= p's; the prefix of them with
	// energy >= p's is dominated by p (energies decrease, so the doomed
	// run is contiguous).
	hi := lo
	for hi < len(f.perf) && f.epi[hi] >= p.EnergyPerInstruction {
		hi++
	}
	f.perf = append(f.perf[:lo], append([]float64{p.Performance}, f.perf[hi:]...)...)
	f.epi = append(f.epi[:lo], append([]float64{p.EnergyPerInstruction}, f.epi[hi:]...)...)
}

// MarkFrontier sets Pareto on every non-dominated point, comparing only
// points of the same workload (cross-workload comparisons mix different
// instruction streams and mean nothing). The slice is modified in place.
// One incremental FrontierSet per workload replaces the historical
// all-pairs scan; TestMarkFrontierMatchesRebuild holds the two to
// identical markings on random point sets.
func MarkFrontier(points []Point) {
	frontiers := make(map[string]*FrontierSet)
	for i := range points {
		fs := frontiers[points[i].Workload]
		if fs == nil {
			fs = &FrontierSet{}
			frontiers[points[i].Workload] = fs
		}
		fs.Insert(points[i])
	}
	for i := range points {
		points[i].Pareto = !frontiers[points[i].Workload].Dominated(points[i])
	}
}

// Frontier returns the Pareto-optimal points (after MarkFrontier
// semantics), in the input order.
func Frontier(points []Point) []Point {
	cp := append([]Point(nil), points...)
	MarkFrontier(cp)
	var out []Point
	for _, p := range cp {
		if p.Pareto {
			out = append(out, p)
		}
	}
	return out
}

// ExploreSpec is a (workload × scheme × policy) grid for the explorer.
// Empty axes take defaults; scalar knobs flow into every run's Config.
type ExploreSpec struct {
	Workloads []string       // multi-phase workload names; default: all builtins
	Schemes   []sim.Scheme   // default: BlockDisable, WordDisable
	Policies  []PolicyKind   // default: Policies()
	Victim    sim.VictimKind // applied to every run
	Pfail     float64        // default 0.001
	Seed      int64          // default 1
	Scale     int            // if >0, workloads are rescaled to ~Scale total instructions
	Workers   int            // bounds concurrent runs; 0 = GOMAXPROCS

	// Switch economics applied to every run (zero = the Config
	// defaults). Unlike the Config hook these are result-defining fields
	// CanonicalHash digests.
	SwitchPenalty int
	Interval      int
	IPCThreshold  float64

	Config func(*Config) // optional per-run Config hook; NOT hashed — callers using it must extend the cache key themselves
}

// WithDefaults returns the spec with every zero-valued axis and scalar
// replaced by its reference default — the form Explore evaluates and
// CanonicalHash digests. Callers sizing or echoing a grid before
// running (e.g. the service's request gate) apply it first.
func (s ExploreSpec) WithDefaults() ExploreSpec { return s.withDefaults() }

func (s ExploreSpec) withDefaults() ExploreSpec {
	if len(s.Workloads) == 0 {
		s.Workloads = workload.MultiPhaseNames()
	}
	if len(s.Schemes) == 0 {
		s.Schemes = []sim.Scheme{sim.BlockDisable, sim.WordDisable}
	}
	if len(s.Policies) == 0 {
		s.Policies = Policies()
	}
	if s.Pfail == 0 {
		s.Pfail = 0.001
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Workers <= 0 {
		s.Workers = runtime.GOMAXPROCS(0)
	}
	// Resolve the switch economics to the Config defaults here, so a
	// spec spelling them out hashes (and caches) identically to one
	// leaving them zero.
	if s.SwitchPenalty == 0 {
		s.SwitchPenalty = DefaultSwitchPenalty
	}
	if s.Interval <= 0 {
		s.Interval = DefaultInterval
	}
	if s.IPCThreshold == 0 {
		s.IPCThreshold = DefaultIPCThreshold
	}
	return s
}

// CanonicalHash digests the spec's result-defining fields — the explorer
// analogue of sweep.Spec.CanonicalHash, and the /v1/dvfs response-cache
// key. Workers is excluded (scheduling only); the Config hook is the
// caller's responsibility to reflect in the key if it uses one.
func (s ExploreSpec) CanonicalHash() string {
	s = s.withDefaults()
	h := sha256.New()
	fmt.Fprintf(h, "dvfs-v1|pfail=%g|seed=%d|victim=%s|scale=%d|penalty=%d|interval=%d|ipc=%g\n",
		s.Pfail, s.Seed, s.Victim, s.Scale, s.SwitchPenalty, s.Interval, s.IPCThreshold)
	for _, w := range s.Workloads {
		fmt.Fprintf(h, "workload=%d:%s\n", len(w), w)
	}
	for _, sc := range s.Schemes {
		fmt.Fprintf(h, "scheme=%s\n", sc)
	}
	for _, p := range s.Policies {
		fmt.Fprintf(h, "policy=%s\n", p)
	}
	return hex.EncodeToString(h.Sum(nil)[:12])
}

// ExploreResult is the explorer's output: every grid point (frontier
// membership marked) plus the runs behind them, in grid order.
type ExploreResult struct {
	Points []Point  `json:"points"`
	Runs   []Result `json:"runs"`
}

// ParetoPoints returns just the frontier points, in grid order.
func (r ExploreResult) ParetoPoints() []Point {
	var out []Point
	for _, p := range r.Points {
		if p.Pareto {
			out = append(out, p)
		}
	}
	return out
}

// Explore evaluates the grid: one scheduled run per (workload, scheme,
// policy) cell, in parallel up to Workers, then marks each workload's
// Pareto frontier. Results land in grid order regardless of scheduling,
// so the output is deterministic at every worker count.
func Explore(spec ExploreSpec) (*ExploreResult, error) {
	spec = spec.withDefaults()
	type cell struct {
		workload string
		scheme   sim.Scheme
		policy   PolicyKind
	}
	var cells []cell
	for _, w := range spec.Workloads {
		for _, sc := range spec.Schemes {
			for _, p := range spec.Policies {
				cells = append(cells, cell{w, sc, p})
			}
		}
	}

	runs := make([]Result, len(cells))
	jobs := make([]func() error, len(cells))
	for i, c := range cells {
		i, c := i, c
		jobs[i] = func() error {
			mp, err := workload.MultiPhaseByName(c.workload)
			if err != nil {
				return err
			}
			if spec.Scale > 0 {
				mp = mp.Scaled(spec.Scale)
			}
			cfg := Config{
				Workload:      mp,
				Scheme:        c.scheme,
				Victim:        spec.Victim,
				Pfail:         spec.Pfail,
				Policy:        c.policy,
				Seed:          spec.Seed,
				SwitchPenalty: spec.SwitchPenalty,
				Interval:      spec.Interval,
				IPCThreshold:  spec.IPCThreshold,
			}
			if spec.Config != nil {
				spec.Config(&cfg)
			}
			r, err := Run(cfg)
			if err != nil {
				return fmt.Errorf("dvfs: %s/%s/%s: %w", c.workload, c.scheme, c.policy, err)
			}
			runs[i] = r
			return nil
		}
	}
	if err := experiments.RunJobs(spec.Workers, jobs); err != nil {
		return nil, err
	}

	points := make([]Point, len(runs))
	for i, r := range runs {
		share := 0.0
		if r.TotalInstructions > 0 {
			share = float64(r.LowInstructions) / float64(r.TotalInstructions)
		}
		points[i] = Point{
			Workload:             r.Workload,
			Scheme:               r.Scheme,
			Policy:               r.Policy,
			Performance:          r.Performance,
			Energy:               r.Energy,
			EnergyPerInstruction: r.EnergyPerInstruction,
			EnergyDelayProduct:   r.EnergyDelayProduct,
			LowVoltage:           r.LowVoltage,
			Switches:             r.Switches,
			LowInstructionShare:  share,
		}
	}
	MarkFrontier(points)
	return &ExploreResult{Points: points, Runs: runs}, nil
}

// SortByPerformance orders points by descending performance (stable on
// the original order for ties) — the presentation order of the frontier.
func SortByPerformance(points []Point) {
	sort.SliceStable(points, func(i, j int) bool {
		return points[i].Performance > points[j].Performance
	})
}

package prob

import "math"

// Bit-fix (Wilkerson et al., reviewed in Section II of the paper) repairs
// faults at bit-pair granularity: a quarter of the cache's ways store
// repair pointers and patch bits for the rest, so the scheme runs at 75%
// capacity, and its merging logic adds access latency. Each data line is
// divided into fix groups of pairsPerGroup 2-bit pairs; a group can
// repair at most repairsPerGroup defective pairs, so any group with more
// renders the whole cache unfit — the same whole-cache-failure structure
// as word-disabling (Eq. 4), one level finer.
//
// These functions extend the paper's Section IV methodology to bit-fix,
// quantifying why the ISPASS paper compares against word-disabling at the
// L1: at pfail = 1e-3 a one-repair-per-group bit-fix design is almost
// certainly unfit, so bit-fix needs either lower pfail or L2-scale
// latency slack.

// PairFaultProb returns the probability that a 2-bit pair contains at
// least one faulty cell: 1-(1-pfail)^2.
func PairFaultProb(pfail float64) float64 {
	return BlockFaultProb(2, pfail)
}

// BitFixGroupFailProb returns the probability that a fix group of
// pairsPerGroup pairs has more than repairsPerGroup faulty pairs.
func BitFixGroupFailProb(pairsPerGroup, repairsPerGroup int, pfail float64) float64 {
	return BinomTailAtLeast(pairsPerGroup, repairsPerGroup+1, PairFaultProb(pfail))
}

// BitFixLineFailProb returns the probability that any fix group of a line
// with dataBits of storage is unrepairable.
func BitFixLineFailProb(dataBits, pairsPerGroup, repairsPerGroup int, pfail float64) float64 {
	groups := dataBits / 2 / pairsPerGroup
	pgf := BitFixGroupFailProb(pairsPerGroup, repairsPerGroup, pfail)
	if pgf <= 0 {
		return 0
	}
	return clamp01(-math.Expm1(float64(groups) * math.Log1p(-pgf)))
}

// BitFixWholeCacheFailProb returns the probability that a d-line cache is
// unfit for low-voltage operation under bit-fix.
func BitFixWholeCacheFailProb(d, dataBits, pairsPerGroup, repairsPerGroup int, pfail float64) float64 {
	plf := BitFixLineFailProb(dataBits, pairsPerGroup, repairsPerGroup, pfail)
	if plf <= 0 {
		return 0
	}
	return clamp01(-math.Expm1(float64(d) * math.Log1p(-plf)))
}

// BitFixCapacity is the scheme's fixed low-voltage capacity: a quarter of
// the ways hold fix bits.
const BitFixCapacity = 0.75

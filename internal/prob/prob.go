// Package prob implements the probability analysis of Section IV of the
// paper: the distribution of uniformly random cell faults over the blocks of
// a cache array, the resulting capacity of the block-disabling scheme, the
// whole-cache-failure probability of the word-disabling scheme, and the
// capacity of the incremental word-disabling variant.
//
// All binomial computation is done in log space (math.Lgamma) so that the
// large array sizes of real caches (d*k ≈ 275k cells) stay numerically
// stable.
package prob

import (
	"fmt"
	"math"
)

// LogChoose returns ln C(n, k). It returns -Inf when the coefficient is
// zero (k < 0 or k > n).
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	ln, _ := math.Lgamma(float64(n) + 1)
	lk, _ := math.Lgamma(float64(k) + 1)
	lnk, _ := math.Lgamma(float64(n-k) + 1)
	return ln - lk - lnk
}

// BinomPMF returns P[X = k] for X ~ Binomial(n, p).
func BinomPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	switch p {
	case 0:
		if k == 0 {
			return 1
		}
		return 0
	case 1:
		if k == n {
			return 1
		}
		return 0
	}
	lp := LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(lp)
}

// BinomTailAtLeast returns P[X >= kMin] for X ~ Binomial(n, p).
func BinomTailAtLeast(n, kMin int, p float64) float64 {
	if kMin <= 0 {
		return 1
	}
	if kMin > n {
		return 0
	}
	// Sum the shorter tail for accuracy.
	if float64(kMin) > float64(n)*p {
		s := 0.0
		for k := n; k >= kMin; k-- {
			s += BinomPMF(n, k, p)
		}
		return clamp01(s)
	}
	s := 0.0
	for k := 0; k < kMin; k++ {
		s += BinomPMF(n, k, p)
	}
	return clamp01(1 - s)
}

// MeanFaultyBlocksExact implements Eq. 1 of the paper (Yao's formula): the
// mean number of distinct blocks containing at least one of n faulty cells
// drawn without replacement from an array of d blocks of k cells each:
//
//	u = d - d * Π_{i=0}^{k-1} (1 - n/(dk-i))
//
// For the paper's running example (d=512, k=537, n=275) u ≈ 213.
func MeanFaultyBlocksExact(d, k, n int) float64 {
	if d <= 0 || k <= 0 {
		return 0
	}
	total := d * k
	if n >= total {
		return float64(d)
	}
	if n <= 0 {
		return 0
	}
	// Π (1 - n/(dk-i)) = Π (dk-i-n)/(dk-i). Work in log space: the product
	// underflows double precision for large n.
	logProd := 0.0
	for i := 0; i < k; i++ {
		num := float64(total - i - n)
		den := float64(total - i)
		if num <= 0 {
			return float64(d) // every block certainly hit
		}
		logProd += math.Log(num / den)
	}
	return float64(d) * (1 - math.Exp(logProd))
}

// BlockFaultProb returns pbf = 1-(1-pfail)^k, the probability that a block
// of k cells contains at least one faulty cell.
func BlockFaultProb(k int, pfail float64) float64 {
	if pfail <= 0 {
		return 0
	}
	if pfail >= 1 {
		return 1
	}
	// 1-(1-p)^k = -expm1(k*log1p(-p)), stable for tiny p.
	return clamp01(-math.Expm1(float64(k) * math.Log1p(-pfail)))
}

// MeanFaultyBlockFraction implements Eq. 2: the expected fraction of faulty
// blocks for a fixed per-cell failure probability, u/d = 1-(1-pfail)^k.
// This is the fixed-pfail approximation of Eq. 1 and drives Fig. 3.
func MeanFaultyBlockFraction(k int, pfail float64) float64 {
	return BlockFaultProb(k, pfail)
}

// ExpectedCapacity returns the mean fraction of fault-free blocks,
// 1 - MeanFaultyBlockFraction. This is the block-disabling capacity curve
// of Fig. 6.
func ExpectedCapacity(k int, pfail float64) float64 {
	return 1 - MeanFaultyBlockFraction(k, pfail)
}

// CapacityPMF implements Eq. 3: the probability distribution of the number
// of fault-free blocks x in a d-block array where each block independently
// is faulty with probability pbf = BlockFaultProb(k, pfail):
//
//	P[x] = C(d, x) * pbf^(d-x) * (1-pbf)^x
//
// The returned slice has d+1 entries; index x is the probability of exactly
// x fault-free blocks. This drives Fig. 4.
func CapacityPMF(d, k int, pfail float64) []float64 {
	pbf := BlockFaultProb(k, pfail)
	pmf := make([]float64, d+1)
	for x := 0; x <= d; x++ {
		pmf[x] = BinomPMF(d, x, 1-pbf)
	}
	return pmf
}

// CapacityMeanStd returns the mean and standard deviation of the capacity
// fraction (fault-free blocks / d). For the reference cache at pfail=0.001
// the paper quotes mean 58% and σ ≈ 2 percentage points.
func CapacityMeanStd(d, k int, pfail float64) (mean, std float64) {
	pok := 1 - BlockFaultProb(k, pfail)
	mean = pok
	std = math.Sqrt(float64(d)*pok*(1-pok)) / float64(d)
	return mean, std
}

// CapacityAtLeast returns P[capacity >= frac] for a block-disabled cache:
// the probability that at least ceil(frac*d) blocks are fault free. The
// paper quotes 99.9% for frac=0.5 at the reference configuration.
func CapacityAtLeast(d, k int, pfail float64, frac float64) float64 {
	need := int(math.Ceil(frac * float64(d)))
	return BinomTailAtLeast(d, need, 1-BlockFaultProb(k, pfail))
}

// WordFaultProb returns pwf = 1-(1-pfail)^wordBits, the probability that a
// word is faulty (Eq. 5 uses 32-bit words).
func WordFaultProb(wordBits int, pfail float64) float64 {
	return BlockFaultProb(wordBits, pfail)
}

// HalfBlockFailProb implements Eq. 5: the probability that a half-block of
// a words contains more than a/2 faulty words:
//
//	phbf = Σ_{i=a/2+1}^{a} C(a, i) pwf^i (1-pwf)^(a-i)
//
// For the paper's configuration a=8 (8-word subblocks), so failure means
// more than 4 faulty words. Tag bits are excluded: the word-disable scheme
// stores them in robust 10T cells.
func HalfBlockFailProb(wordsPerHalfBlock, wordBits int, pfail float64) float64 {
	pwf := WordFaultProb(wordBits, pfail)
	return BinomTailAtLeast(wordsPerHalfBlock, wordsPerHalfBlock/2+1, pwf)
}

// WholeCacheFailProb implements Eq. 4 with the sign corrected (the printed
// equation 1-phbf^(2d) is a typo; it would evaluate to ~1 everywhere):
//
//	pwcf = 1 - (1 - phbf)^(d * halfBlocksPerBlock)
//
// the probability that any half-block in the array is unrepairable, which
// renders a word-disabled cache unfit for low-voltage operation (Fig. 5).
func WholeCacheFailProb(d, halfBlocksPerBlock int, phbf float64) float64 {
	if phbf <= 0 {
		return 0
	}
	if phbf >= 1 {
		return 1
	}
	n := float64(d * halfBlocksPerBlock)
	return clamp01(-math.Expm1(n * math.Log1p(-phbf)))
}

// WordDisableWholeCacheFailProb composes Eqs. 4 and 5 for a cache of d
// blocks with the given block geometry. blockBytes/4 gives 32-bit words per
// block; half-blocks are 8-word subblocks in the paper's configuration.
func WordDisableWholeCacheFailProb(d, blockBytes, wordBits, wordsPerHalfBlock int, pfail float64) float64 {
	wordsPerBlock := blockBytes * 8 / wordBits
	halfBlocksPerBlock := wordsPerBlock / wordsPerHalfBlock
	phbf := HalfBlockFailProb(wordsPerHalfBlock, wordBits, pfail)
	return WholeCacheFailProb(d, halfBlocksPerBlock, phbf)
}

// IncrementalWDCapacity implements Eq. 6, the expected capacity of the
// incremental word-disabling scheme:
//
//	capacity = pbpff + (1 - pbpff - pbpd)/2
//
// where pbpff = (1-pfail)^(2k) is the probability a block pair is fault
// free (k = data bits per block), and pbpd = 1-(1-phbf)^4 is the
// probability the pair must be disabled (any of its four 8-word subblocks
// has more than 4 faulty words). Drives Fig. 7.
func IncrementalWDCapacity(dataBitsPerBlock, wordsPerHalfBlock, wordBits int, pfail float64) float64 {
	pbpff := math.Exp(2 * float64(dataBitsPerBlock) * math.Log1p(-pfail))
	phbf := HalfBlockFailProb(wordsPerHalfBlock, wordBits, pfail)
	halfBlocksPerPair := 2 * dataBitsPerBlock / (wordsPerHalfBlock * wordBits)
	pbpd := clamp01(-math.Expm1(float64(halfBlocksPerPair) * math.Log1p(-phbf)))
	return clamp01(pbpff + (1-pbpff-pbpd)/2)
}

// Series is a sampled curve: X[i] maps to Y[i]. The experiment drivers
// produce Series for each paper figure.
type Series struct {
	Label string
	X, Y  []float64
}

// Len returns the number of points.
func (s Series) Len() int { return len(s.X) }

// Check validates the series shape.
func (s Series) Check() error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("prob: series %q has %d x values but %d y values", s.Label, len(s.X), len(s.Y))
	}
	return nil
}

// Sweep samples f over n+1 evenly spaced points in [lo, hi].
func Sweep(label string, lo, hi float64, n int, f func(float64) float64) Series {
	s := Series{Label: label, X: make([]float64, n+1), Y: make([]float64, n+1)}
	for i := 0; i <= n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n)
		s.X[i] = x
		s.Y[i] = f(x)
	}
	return s
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

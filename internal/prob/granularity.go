package prob

import (
	"fmt"

	"vccmin/internal/geom"
)

// Disabling-granularity analysis: the related work the paper builds on
// (Sohi; Lee, Cho, Childers) disables caches at coarser granularities —
// whole sets or whole ways — for yield. Applying Eq. 2 at each
// granularity shows why block-level disabling is the sweet spot below
// Vcc-min: the expected surviving capacity is (1-pfail)^cells-per-unit,
// and coarser units collapse exponentially faster.

// Granularity names a disabling unit.
type Granularity int

const (
	GranularityBlock Granularity = iota
	GranularitySet
	GranularityWay
)

// String implements fmt.Stringer.
func (g Granularity) String() string {
	switch g {
	case GranularityBlock:
		return "block"
	case GranularitySet:
		return "set"
	case GranularityWay:
		return "way"
	}
	return "unknown"
}

// ParseGranularity converts a CLI-style granularity name.
func ParseGranularity(s string) (Granularity, error) {
	switch s {
	case "block":
		return GranularityBlock, nil
	case "set":
		return GranularitySet, nil
	case "way":
		return GranularityWay, nil
	}
	return 0, fmt.Errorf("prob: unknown granularity %q (want block, set or way)", s)
}

// CellsPerUnit returns the number of vulnerable cells in one disabling
// unit of the given granularity.
func CellsPerUnit(g geom.Geometry, gran Granularity) int {
	switch gran {
	case GranularitySet:
		return g.CellsPerBlock() * g.Ways
	case GranularityWay:
		return g.CellsPerBlock() * g.Sets()
	default:
		return g.CellsPerBlock()
	}
}

// GranularityCapacity returns the expected fraction of capacity surviving
// at low voltage when disabling at the given granularity (Eq. 2 with the
// unit's cell count).
func GranularityCapacity(g geom.Geometry, gran Granularity, pfail float64) float64 {
	return ExpectedCapacity(CellsPerUnit(g, gran), pfail)
}

package prob

import (
	"math"
	"testing"
	"testing/quick"
)

const (
	refBlocks        = 512 // d for the 32KB 64B/block reference cache
	refCellsPerBlock = 537 // k = 512 data + 24 tag + 1 valid
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestLogChoose(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{8, 0, 1}, {8, 8, 1}, {8, 1, 8}, {8, 4, 70}, {8, 5, 56},
		{10, 3, 120}, {52, 5, 2598960},
	}
	for _, c := range cases {
		got := math.Exp(LogChoose(c.n, c.k))
		if math.Abs(got-c.want) > c.want*1e-9 {
			t.Errorf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	if !math.IsInf(LogChoose(5, 6), -1) || !math.IsInf(LogChoose(5, -1), -1) {
		t.Error("LogChoose out of range should be -Inf")
	}
}

func TestBinomPMFSumsToOne(t *testing.T) {
	for _, p := range []float64{0, 1e-4, 0.03, 0.5, 0.97, 1} {
		for _, n := range []int{1, 8, 64, 512} {
			sum := 0.0
			for k := 0; k <= n; k++ {
				sum += BinomPMF(n, k, p)
			}
			approx(t, "sum of PMF", sum, 1, 1e-9)
		}
	}
}

func TestBinomTailMatchesDirectSum(t *testing.T) {
	f := func(rawN, rawK uint8, rawP float64) bool {
		n := int(rawN)%100 + 1
		kMin := int(rawK) % (n + 2)
		p := math.Abs(math.Mod(rawP, 1))
		direct := 0.0
		for k := kMin; k <= n; k++ {
			direct += BinomPMF(n, k, p)
		}
		return math.Abs(BinomTailAtLeast(n, kMin, p)-direct) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEq1PaperExample(t *testing.T) {
	// "If 1 out of 1000 cells are faulty, there will be 275 faulty cells
	// that, according to Eq. 1, are expected to occur in 213 distinct
	// blocks."
	u := MeanFaultyBlocksExact(refBlocks, refCellsPerBlock, 275)
	approx(t, "Eq.1 u(275)", u, 213, 1.0)
}

func TestEq1Extremes(t *testing.T) {
	if got := MeanFaultyBlocksExact(refBlocks, refCellsPerBlock, 0); got != 0 {
		t.Errorf("u(0) = %v, want 0", got)
	}
	total := refBlocks * refCellsPerBlock
	if got := MeanFaultyBlocksExact(refBlocks, refCellsPerBlock, total); got != refBlocks {
		t.Errorf("u(all) = %v, want %d", got, refBlocks)
	}
	// One fault lands in exactly one block.
	approx(t, "u(1)", MeanFaultyBlocksExact(refBlocks, refCellsPerBlock, 1), 1, 1e-9)
}

func TestEq1Monotone(t *testing.T) {
	prev := 0.0
	for n := 0; n <= 4000; n += 50 {
		u := MeanFaultyBlocksExact(refBlocks, refCellsPerBlock, n)
		if u < prev-1e-9 {
			t.Fatalf("Eq.1 not monotone at n=%d: %v < %v", n, u, prev)
		}
		if u > refBlocks {
			t.Fatalf("Eq.1 exceeded d at n=%d: %v", n, u)
		}
		prev = u
	}
}

func TestEq2ApproximatesEq1(t *testing.T) {
	// "We found this to be an accurate approximation for all cache
	// configurations we examined."
	for _, pfail := range []float64{1e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2} {
		n := int(math.Round(pfail * float64(refBlocks*refCellsPerBlock)))
		exact := MeanFaultyBlocksExact(refBlocks, refCellsPerBlock, n) / refBlocks
		appr := MeanFaultyBlockFraction(refCellsPerBlock, pfail)
		if math.Abs(exact-appr) > 0.01 {
			t.Errorf("pfail=%v: Eq.1 %v vs Eq.2 %v differ by more than 1pp", pfail, exact, appr)
		}
	}
}

func TestFaultsIncreasinglyLandInFaultyBlocks(t *testing.T) {
	// The key lesson of the paper: the marginal number of newly-faulty
	// blocks per added fault decreases as faults accumulate.
	prevDelta := math.Inf(1)
	for n := 100; n <= 3200; n *= 2 {
		delta := MeanFaultyBlocksExact(refBlocks, refCellsPerBlock, n+100) -
			MeanFaultyBlocksExact(refBlocks, refCellsPerBlock, n)
		if delta > prevDelta+1e-9 {
			t.Fatalf("marginal faulty blocks grew at n=%d: %v > %v", n, delta, prevDelta)
		}
		prevDelta = delta
	}
}

func TestBlockDisableCapacityAtReferencePoint(t *testing.T) {
	// Paper: mean 58% capacity at pfail = 0.001, σ ≈ 2pp.
	mean, std := CapacityMeanStd(refBlocks, refCellsPerBlock, 0.001)
	approx(t, "capacity mean", mean, 0.58, 0.01)
	approx(t, "capacity std", std, 0.02, 0.005)
}

func TestCapacityMoreThanHalfVirtuallyAlways(t *testing.T) {
	// Paper: "there is a 99.9% probability for a block-disable cache to
	// have more than 50% capacity" at pfail=0.001.
	p := CapacityAtLeast(refBlocks, refCellsPerBlock, 0.001, 0.5)
	if p < 0.999 {
		t.Errorf("P[capacity >= 50%%] = %v, want >= 0.999", p)
	}
}

func TestBreakEvenPfail(t *testing.T) {
	// Paper: "block-disabling offers more than half cache capacity when
	// pfail is less than 0.0013".
	if c := ExpectedCapacity(refCellsPerBlock, 0.0012); c <= 0.5 {
		t.Errorf("capacity(0.0012) = %v, want > 0.5", c)
	}
	if c := ExpectedCapacity(refCellsPerBlock, 0.0014); c >= 0.5 {
		t.Errorf("capacity(0.0014) = %v, want < 0.5", c)
	}
}

func TestCapacityPMFShape(t *testing.T) {
	pmf := CapacityPMF(refBlocks, refCellsPerBlock, 0.001)
	if len(pmf) != refBlocks+1 {
		t.Fatalf("PMF has %d entries, want %d", len(pmf), refBlocks+1)
	}
	sum, mean := 0.0, 0.0
	for x, p := range pmf {
		if p < 0 {
			t.Fatalf("negative probability at x=%d: %v", x, p)
		}
		sum += p
		mean += float64(x) * p
	}
	approx(t, "PMF total", sum, 1, 1e-9)
	wantMean, _ := CapacityMeanStd(refBlocks, refCellsPerBlock, 0.001)
	approx(t, "PMF mean", mean/refBlocks, wantMean, 1e-9)
}

func TestWholeCacheFailureFig5Anchors(t *testing.T) {
	// Paper: "when pfail is 0.001 the probability is small, almost 1 in
	// 1000 caches are unfit. But, when pfail grows to 0.0015 the cache
	// failure probability increases by a factor of 10 to 1 out of 100."
	p1 := WordDisableWholeCacheFailProb(refBlocks, 64, 32, 8, 0.001)
	p2 := WordDisableWholeCacheFailProb(refBlocks, 64, 32, 8, 0.0015)
	if p1 < 5e-4 || p1 > 5e-3 {
		t.Errorf("pwcf(0.001) = %v, want ≈1e-3", p1)
	}
	if p2 < 5e-3 || p2 > 5e-2 {
		t.Errorf("pwcf(0.0015) = %v, want ≈1e-2", p2)
	}
	if ratio := p2 / p1; ratio < 4 || ratio > 25 {
		t.Errorf("pwcf ratio = %v, want roughly 10x growth", ratio)
	}
}

func TestWholeCacheFailureMonotone(t *testing.T) {
	prev := -1.0
	for pf := 0.0; pf <= 0.002; pf += 0.00005 {
		p := WordDisableWholeCacheFailProb(refBlocks, 64, 32, 8, pf)
		if p < prev-1e-12 {
			t.Fatalf("pwcf not monotone at pfail=%v", pf)
		}
		if p < 0 || p > 1 {
			t.Fatalf("pwcf out of range at pfail=%v: %v", pf, p)
		}
		prev = p
	}
}

func TestFig6BlockSizeOrdering(t *testing.T) {
	// Smaller blocks mean higher capacity at any pfail > 0.
	for _, pf := range []float64{5e-4, 1e-3, 2e-3, 5e-3} {
		k32 := 32*8 + 25 + 1 // 32B block in a 32KB cache: 7-bit index => 25-bit tag... tag depends on geometry
		k64 := 64*8 + 24 + 1 // reference
		k128 := 128*8 + 23 + 1
		c32 := ExpectedCapacity(k32, pf)
		c64 := ExpectedCapacity(k64, pf)
		c128 := ExpectedCapacity(k128, pf)
		if !(c32 > c64 && c64 > c128) {
			t.Errorf("pfail=%v: capacity ordering violated: 32B=%v 64B=%v 128B=%v", pf, c32, c64, c128)
		}
	}
}

func TestIncrementalWDShape(t *testing.T) {
	// Fig. 7: starts above 50% (fault-free pairs run at full capacity),
	// saturates toward 50% as pairs accumulate faults, then dips below 50%
	// at high pfail as pairs get disabled. Never exhibits whole-cache
	// failure.
	c0 := IncrementalWDCapacity(512, 8, 32, 0)
	approx(t, "incWD capacity at pfail=0", c0, 1, 1e-12)

	cLow := IncrementalWDCapacity(512, 8, 32, 0.0005)
	if cLow <= 0.5 || cLow >= 1 {
		t.Errorf("incWD capacity(0.0005) = %v, want in (0.5, 1)", cLow)
	}
	cMid := IncrementalWDCapacity(512, 8, 32, 0.004)
	approx(t, "incWD capacity saturates near 0.5", cMid, 0.5, 0.02)
	cHigh := IncrementalWDCapacity(512, 8, 32, 0.02)
	if cHigh >= cMid {
		t.Errorf("incWD capacity should fall below saturation at high pfail: %v >= %v", cHigh, cMid)
	}
}

func TestIncrementalWDMonotoneDecreasing(t *testing.T) {
	prev := 1.1
	for pf := 0.0; pf <= 0.01; pf += 0.00025 {
		c := IncrementalWDCapacity(512, 8, 32, pf)
		if c > prev+1e-9 {
			t.Fatalf("incremental WD capacity increased at pfail=%v: %v > %v", pf, c, prev)
		}
		prev = c
	}
}

func TestBlockFaultProbProperties(t *testing.T) {
	f := func(rawK uint8, rawP float64) bool {
		k := int(rawK)%1000 + 1
		p := math.Abs(math.Mod(rawP, 1))
		pbf := BlockFaultProb(k, p)
		if pbf < 0 || pbf > 1 {
			return false
		}
		// More cells, more likely faulty.
		return BlockFaultProb(k+100, p) >= pbf-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSweep(t *testing.T) {
	s := Sweep("x^2", 0, 2, 4, func(x float64) float64 { return x * x })
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	approx(t, "mid sample", s.Y[2], 1, 1e-12)
	approx(t, "end sample", s.Y[4], 4, 1e-12)
	bad := Series{Label: "bad", X: []float64{1}, Y: nil}
	if bad.Check() == nil {
		t.Error("Check accepted mismatched series")
	}
}

package prob

import (
	"math"
	"testing"

	"vccmin/internal/geom"
)

func TestPairFaultProb(t *testing.T) {
	if got := PairFaultProb(0); got != 0 {
		t.Errorf("PairFaultProb(0) = %v", got)
	}
	// Small p: ≈ 2p.
	if got := PairFaultProb(1e-4); math.Abs(got-2e-4) > 1e-8 {
		t.Errorf("PairFaultProb(1e-4) = %v, want ≈2e-4", got)
	}
}

func TestBitFixGroupFail(t *testing.T) {
	// One repair per 8-pair group: failure needs >= 2 faulty pairs.
	p := BitFixGroupFailProb(8, 1, 1e-3)
	// ppair ≈ 2e-3; C(8,2)(2e-3)^2 ≈ 1.1e-4.
	if p < 5e-5 || p > 3e-4 {
		t.Errorf("group fail = %v, want ≈1.1e-4", p)
	}
	if BitFixGroupFailProb(8, 8, 0.5) != 0 {
		t.Error("more repairs than pairs can never fail")
	}
}

func TestBitFixWholeCacheFailureScale(t *testing.T) {
	// The extension's headline: at pfail = 1e-3 a one-repair bit-fix L1
	// is almost certainly unfit, while word-disabling fails ~1e-3 —
	// quantifying why the paper compares against word-disabling.
	g := geom.MustNew(32*1024, 8, 64)
	bf := BitFixWholeCacheFailProb(g.Blocks(), g.DataBits(), 8, 1, 1e-3)
	wd := WordDisableWholeCacheFailProb(g.Blocks(), g.BlockBytes, 32, 8, 1e-3)
	if bf < 0.5 {
		t.Errorf("bit-fix whole-cache failure at pfail=1e-3 = %v, want large", bf)
	}
	if bf <= wd*10 {
		t.Errorf("bit-fix (%v) should fail orders of magnitude more often than word-disable (%v)", bf, wd)
	}
	// At pfail = 1e-4 bit-fix becomes viable.
	bfLow := BitFixWholeCacheFailProb(g.Blocks(), g.DataBits(), 8, 1, 1e-4)
	if bfLow > 0.05 {
		t.Errorf("bit-fix at pfail=1e-4 = %v, want small", bfLow)
	}
}

func TestBitFixMonotoneInRepairs(t *testing.T) {
	g := geom.MustNew(32*1024, 8, 64)
	prev := 1.1
	for repairs := 1; repairs <= 4; repairs++ {
		p := BitFixWholeCacheFailProb(g.Blocks(), g.DataBits(), 8, repairs, 1e-3)
		if p > prev {
			t.Fatalf("more repairs should not fail more often: %v at %d repairs", p, repairs)
		}
		prev = p
	}
}

func TestGranularityOrdering(t *testing.T) {
	// Finer disabling units keep more capacity at every pfail > 0 — the
	// insight motivating block (not set/way) disabling.
	g := geom.MustNew(32*1024, 8, 64)
	for _, pf := range []float64{1e-4, 1e-3, 2e-3} {
		b := GranularityCapacity(g, GranularityBlock, pf)
		s := GranularityCapacity(g, GranularitySet, pf)
		w := GranularityCapacity(g, GranularityWay, pf)
		if !(b > s && s > w) {
			t.Errorf("pfail=%v: want block (%v) > set (%v) > way (%v)", pf, b, s, w)
		}
	}
	// Concrete anchor: at pfail=1e-3, sets (4296 cells) are ~1.4% alive,
	// ways (34368 cells) essentially dead.
	if s := GranularityCapacity(g, GranularitySet, 1e-3); s > 0.05 {
		t.Errorf("set-disable capacity = %v, want ~0.014", s)
	}
	if w := GranularityCapacity(g, GranularityWay, 1e-3); w > 1e-10 {
		t.Errorf("way-disable capacity = %v, want ≈0", w)
	}
}

func TestGranularityStrings(t *testing.T) {
	if GranularityBlock.String() != "block" || GranularitySet.String() != "set" ||
		GranularityWay.String() != "way" || Granularity(9).String() != "unknown" {
		t.Error("granularity names wrong")
	}
	g := geom.MustNew(32*1024, 8, 64)
	if CellsPerUnit(g, GranularitySet) != 537*8 {
		t.Error("set cells wrong")
	}
	if CellsPerUnit(g, GranularityWay) != 537*64 {
		t.Error("way cells wrong")
	}
	if CellsPerUnit(g, GranularityBlock) != 537 {
		t.Error("block cells wrong")
	}
}

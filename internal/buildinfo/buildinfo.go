// Package buildinfo reports what build of the module is running: the
// module version and the VCS stamp Go embeds via
// runtime/debug.ReadBuildInfo. The seven CLIs print it under -version
// and the service reports it in /v1/stats, so an operator can always
// tell which build produced a result or is serving traffic.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// read is swapped in tests; it defaults to debug.ReadBuildInfo.
var read = debug.ReadBuildInfo

// Version returns the module version ("(devel)" for a source build
// without a tagged module version, "unknown" without build info).
func Version() string {
	bi, ok := read()
	if !ok || bi.Main.Version == "" {
		return "unknown"
	}
	return bi.Main.Version
}

// Revision returns the VCS revision the binary was built from and
// whether the working tree was modified; ok is false when no VCS stamp
// was embedded (e.g. `go run` outside a repository, or tests).
func Revision() (rev string, modified bool, ok bool) {
	bi, biOK := read()
	if !biOK {
		return "", false, false
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
			ok = true
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	return rev, modified, ok
}

// String renders the one-line form the CLIs print and /v1/stats
// reports: "vccmin <version> (<rev12>[+dirty]) <go version>".
func String() string {
	out := "vccmin " + Version()
	if rev, modified, ok := Revision(); ok {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if modified {
			rev += "+dirty"
		}
		out += fmt.Sprintf(" (%s)", rev)
	}
	return out + " " + runtime.Version()
}

package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

// stub installs a fake build-info reader for the duration of the test.
func stub(t *testing.T, bi *debug.BuildInfo, ok bool) {
	t.Helper()
	orig := read
	read = func() (*debug.BuildInfo, bool) { return bi, ok }
	t.Cleanup(func() { read = orig })
}

func TestStringWithVCSStamp(t *testing.T) {
	stub(t, &debug.BuildInfo{
		Main: debug.Module{Version: "v1.2.3"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "0123456789abcdef0123"},
			{Key: "vcs.modified", Value: "true"},
		},
	}, true)
	s := String()
	for _, want := range []string{"vccmin v1.2.3", "0123456789ab+dirty", "go1."} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	if strings.Contains(s, "0123456789abc") {
		t.Errorf("revision not truncated to 12 chars: %q", s)
	}
}

func TestWithoutBuildInfo(t *testing.T) {
	stub(t, nil, false)
	if v := Version(); v != "unknown" {
		t.Errorf("Version() = %q, want unknown", v)
	}
	if _, _, ok := Revision(); ok {
		t.Error("Revision() ok without build info")
	}
	if s := String(); !strings.HasPrefix(s, "vccmin unknown") {
		t.Errorf("String() = %q", s)
	}
}

func TestRealBuildInfo(t *testing.T) {
	// Under `go test` a build info always exists; the exact values vary,
	// so just require the composed line to be well-formed.
	if !strings.HasPrefix(String(), "vccmin ") {
		t.Errorf("String() = %q", String())
	}
	if Version() == "" {
		t.Error("empty version")
	}
}

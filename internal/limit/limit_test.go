package limit

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBurstThenReject(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := NewWithClock(1, 2, clk.now)

	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("a"); !ok {
			t.Fatalf("request %d within burst rejected", i+1)
		}
	}
	ok, retry := l.Allow("a")
	if ok {
		t.Fatal("third request with empty bucket allowed")
	}
	// The bucket is exactly empty, so the next token is one full period
	// away at 1 req/s.
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter %v, want (0, 1s]", retry)
	}

	clk.advance(time.Second)
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("request after a full refill period rejected")
	}
}

func TestKeysAreIndependent(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := NewWithClock(1, 1, clk.now)
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("first request for key a rejected")
	}
	if ok, _ := l.Allow("b"); !ok {
		t.Fatal("first request for key b rejected (keys must not share buckets)")
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("second request for drained key a allowed")
	}
}

func TestRefillIsContinuous(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := NewWithClock(2, 1, clk.now) // 2 tokens/s, capacity 1
	l.Allow("a")
	clk.advance(250 * time.Millisecond) // half a token accrued
	if ok, retry := l.Allow("a"); ok {
		t.Fatal("allowed with only half a token")
	} else if retry <= 0 || retry > 250*time.Millisecond {
		t.Fatalf("retryAfter %v, want (0, 250ms]", retry)
	}
	clk.advance(250 * time.Millisecond)
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("rejected after the full token accrued")
	}
}

func TestBurstDefaults(t *testing.T) {
	if b := New(10, 0).Burst(); b != 20 {
		t.Fatalf("default burst %v, want 2x rate = 20", b)
	}
	// A sub-1 computed burst rounds up so a conforming client's first
	// request is never rejected.
	if b := New(0.1, 0).Burst(); b != 1 {
		t.Fatalf("tiny-rate burst %v, want 1", b)
	}
}

func TestIdleEviction(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := NewWithClock(100, 1, clk.now)
	for i := 0; i < l.maxKeys; i++ {
		l.Allow(fmt.Sprintf("k%d", i))
	}
	if got := l.Stats().Keys; got != l.maxKeys {
		t.Fatalf("table holds %d keys, want %d", got, l.maxKeys)
	}
	// Everything has been idle long past a full refill; the next new key
	// triggers eviction and the table collapses to just it.
	clk.advance(time.Minute)
	l.Allow("fresh")
	if got := l.Stats().Keys; got != 1 {
		t.Fatalf("after idle eviction table holds %d keys, want 1", got)
	}
}

func TestStatsCounters(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := NewWithClock(1, 1, clk.now)
	l.Allow("a")
	l.Allow("a")
	l.Allow("a")
	st := l.Stats()
	if st.Allowed != 1 || st.Rejected != 2 {
		t.Fatalf("allowed %d rejected %d, want 1 and 2", st.Allowed, st.Rejected)
	}
}

func TestConcurrentAllow(t *testing.T) {
	l := New(1e9, 1e9) // effectively unlimited; exercises locking only
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Allow(fmt.Sprintf("k%d", (g+i)%16))
			}
		}(g)
	}
	wg.Wait()
	if st := l.Stats(); st.Allowed != 8*200 {
		t.Fatalf("allowed %d, want %d", st.Allowed, 8*200)
	}
}

// Package limit implements the per-client token-bucket rate limiter
// behind the service's traffic hardening. Each client key (an API key
// header, or the remote IP when no key is sent) owns one bucket that
// refills continuously at a configured rate up to a burst ceiling; a
// request spends one token or is rejected with the wait until a token
// will be available — the number the HTTP layer surfaces as a 429 with
// Retry-After. Buckets are created lazily and evicted once idle long
// enough to have refilled completely, so the key table stays bounded
// under address-churn traffic without ever evicting state that still
// constrains a client.
package limit

import (
	"sync"
	"time"
)

// Limiter is a keyed token-bucket rate limiter. The zero value is not
// usable; construct with New. Safe for concurrent use.
type Limiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
	maxKeys int

	allowed  uint64
	rejected uint64
}

type bucket struct {
	tokens float64
	last   time.Time
}

// New builds a limiter granting rate requests per second per key with
// bursts up to burst. rate must be positive; burst <= 0 defaults to
// 2*rate (and at least 1 token, so a conforming client is never
// rejected on its first request).
func New(rate, burst float64) *Limiter {
	if burst <= 0 {
		burst = 2 * rate
	}
	if burst < 1 {
		burst = 1
	}
	return &Limiter{
		rate:    rate,
		burst:   burst,
		now:     time.Now,
		buckets: make(map[string]*bucket),
		maxKeys: 8192,
	}
}

// NewWithClock is New with an injectable clock, for deterministic
// tests.
func NewWithClock(rate, burst float64, now func() time.Time) *Limiter {
	l := New(rate, burst)
	l.now = now
	return l
}

// Rate returns the per-key refill rate (requests per second).
func (l *Limiter) Rate() float64 { return l.rate }

// Burst returns the bucket capacity.
func (l *Limiter) Burst() float64 { return l.burst }

// Allow spends one token from key's bucket. When the bucket is empty it
// reports ok=false and how long the client must wait for the next token
// to accrue — the Retry-After the HTTP layer sends with its 429.
func (l *Limiter) Allow(key string) (ok bool, retryAfter time.Duration) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()

	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= l.maxKeys {
			l.evictIdle(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens += elapsed * l.rate
			if b.tokens > l.burst {
				b.tokens = l.burst
			}
		}
		b.last = now
	}

	if b.tokens >= 1 {
		b.tokens--
		l.allowed++
		return true, 0
	}
	l.rejected++
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// evictIdle drops every bucket idle long enough to have refilled
// completely — evicting it loses no constraint, because a fresh bucket
// starts full anyway. Called under l.mu when the table is at capacity;
// worst case (every key still active) the table grows past maxKeys
// until clients go idle, which only costs memory, never correctness.
func (l *Limiter) evictIdle(now time.Time) {
	full := time.Duration(l.burst / l.rate * float64(time.Second))
	for k, b := range l.buckets {
		if now.Sub(b.last) >= full {
			delete(l.buckets, k)
		}
	}
}

// Stats is a point-in-time view of the limiter's counters.
type Stats struct {
	RatePerSec float64 `json:"rate_per_sec"`
	Burst      float64 `json:"burst"`
	Keys       int     `json:"keys"`
	Allowed    uint64  `json:"allowed"`
	Rejected   uint64  `json:"rejected"`
}

// Stats snapshots the limiter.
func (l *Limiter) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		RatePerSec: l.rate,
		Burst:      l.burst,
		Keys:       len(l.buckets),
		Allowed:    l.allowed,
		Rejected:   l.rejected,
	}
}

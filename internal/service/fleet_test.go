package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"vccmin/internal/tasks"
)

// TestFleetEndpoint runs a small fleet through GET and POST and checks
// the two surfaces agree byte-for-byte (same canonical task, same
// stored bytes).
func TestFleetEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	var got tasks.FleetResponse
	resp := getJSON(t, ts.URL+"/v1/fleet?dies=64&schemes=block,word&seed=7&workers=2", &got)
	if resp.StatusCode != 200 {
		t.Fatalf("fleet: status %d", resp.StatusCode)
	}
	if got.Dies != 64 || got.Wafers != 1 || len(got.Schemes) != 2 {
		t.Fatalf("fleet response shape: %+v", got)
	}
	if len(got.Grid) != 33 {
		t.Fatalf("default grid should have 33 steps, got %d", len(got.Grid))
	}
	if got.DieRows != nil {
		t.Fatal("die rows present without include_dies")
	}
	for _, sy := range got.Schemes {
		if sy.Yield[0] < 0 || sy.Yield[0] > 1 {
			t.Fatalf("yield out of range: %+v", sy)
		}
	}

	var viaPost tasks.FleetResponse
	body := map[string]any{"sweep": map[string]any{"dies": 64, "schemes": []string{"block", "word"}, "seed": 7}}
	resp = postJSON(t, ts.URL+"/v1/fleet", body, &viaPost)
	if resp.StatusCode != 200 {
		t.Fatalf("fleet POST: status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("POST of the identical fleet should hit the GET's cache entry, got %q", resp.Header.Get("X-Cache"))
	}
	a, _ := json.Marshal(got)
	b, _ := json.Marshal(viaPost)
	if string(a) != string(b) {
		t.Fatal("GET and POST fleet responses differ")
	}

	var rows tasks.FleetResponse
	getJSON(t, ts.URL+"/v1/fleet?dies=64&schemes=block,word&seed=7&include_dies=1", &rows)
	if len(rows.DieRows) != 64 {
		t.Fatalf("include_dies=1 should return 64 rows, got %d", len(rows.DieRows))
	}

	var pred tasks.PredictResponse
	resp = postJSON(t, ts.URL+"/v1/fleet",
		map[string]any{"predict": map[string]any{"dies": 64, "scheme": "block", "k": 4, "sample": 8, "seed": 7}}, &pred)
	if resp.StatusCode != 200 {
		t.Fatalf("predict POST: status %d", resp.StatusCode)
	}
	if pred.Max > pred.BracketBound {
		t.Fatalf("predict max error %v above bracket bound %v", pred.Max, pred.BracketBound)
	}
}

// TestQueryParamValidation is the table-driven bad-input sweep from the
// issue: every integer query parameter on the sync endpoints rejects
// malformed and negative values with a 400, and full-range int64 seeds
// are accepted (the former queryInt path rejected anything past 2^31-1
// on 32-bit builds' strconv.Atoi).
func TestQueryParamValidation(t *testing.T) {
	_, ts := newTestServer(t)

	bad := []struct {
		name string
		path string
	}{
		{"capacity negative trials", "/v1/capacity?trials=-1"},
		{"capacity negative seed", "/v1/capacity?seed=-4"},
		{"capacity negative workers", "/v1/capacity?workers=-2"},
		{"capacity malformed trials", "/v1/capacity?trials=x"},
		{"dvfs negative seed", "/v1/dvfs?policies=oracle&seed=-1"},
		{"dvfs negative runs", "/v1/dvfs?policies=oracle&runs=-1"},
		{"dvfs negative scale", "/v1/dvfs?policies=oracle&scale=-5"},
		{"dvfs malformed seed", "/v1/dvfs?seed=nope"},
		{"fleet negative dies", "/v1/fleet?dies=-10"},
		{"fleet negative seed", "/v1/fleet?seed=-10"},
		{"fleet negative vsteps", "/v1/fleet?vsteps=-3"},
		{"fleet negative workers", "/v1/fleet?workers=-1"},
		{"fleet negative include_dies", "/v1/fleet?include_dies=-1"},
		{"fleet malformed sigma", "/v1/fleet?wafer_sigma=abc"},
		{"fleet negative sigma", "/v1/fleet?dies=10&wafer_sigma=-0.5"},
		{"fleet oversized", "/v1/fleet?dies=300000"},
		{"fleet rows oversized", "/v1/fleet?dies=20000&include_dies=1"},
		{"fleet bad scheme", "/v1/fleet?schemes=bogus"},
		{"sweeps negative offset", "/v1/sweeps?offset=-1"},
		{"sweeps negative limit", "/v1/sweeps?limit=-1"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Get(ts.URL + tc.path)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("GET %s = %d, want 400 (body %s)", tc.path, resp.StatusCode, b)
			}
			var env struct {
				Error struct {
					Code string `json:"code"`
				} `json:"error"`
			}
			if err := json.Unmarshal(b, &env); err != nil || env.Error.Code == "" {
				t.Fatalf("GET %s: not an error envelope: %s", tc.path, b)
			}
		})
	}

	// A seed beyond 32 bits must round-trip, not truncate: the response
	// echoes the exact value.
	bigSeed := "8589934593" // 2^33 + 1
	var fleet tasks.FleetResponse
	resp := getJSON(t, ts.URL+"/v1/fleet?dies=16&seed="+bigSeed, &fleet)
	if resp.StatusCode != 200 {
		t.Fatalf("big seed rejected: %d", resp.StatusCode)
	}
	if fleet.Seed != 8589934593 {
		t.Fatalf("seed truncated: got %d", fleet.Seed)
	}
	var cap CapacityResponse
	resp = getJSON(t, ts.URL+"/v1/capacity?seed="+bigSeed+"&trials=5", &cap)
	if resp.StatusCode != 200 {
		t.Fatalf("capacity big seed rejected: %d", resp.StatusCode)
	}
}

// TestFleetPostValidation pins the POST envelope rules.
func TestFleetPostValidation(t *testing.T) {
	_, ts := newTestServer(t)
	for name, body := range map[string]string{
		"empty":      `{}`,
		"both":       `{"sweep":{"dies":8},"predict":{"dies":8}}`,
		"unknown":    `{"swep":{"dies":8}}`,
		"bad scheme": `{"predict":{"dies":8,"scheme":"nope"}}`,
		"big sample": `{"predict":{"dies":100000,"sample":50000}}`,
	} {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/fleet", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("POST %s = %d, want 400", body, resp.StatusCode)
			}
		})
	}
}

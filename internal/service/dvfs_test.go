package service

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func dvfsGet(t *testing.T, s *Server, url string) (*httptest.ResponseRecorder, DVFSResponse) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	var resp DVFSResponse
	if rec.Code == 200 {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad /v1/dvfs body: %v", err)
		}
	}
	return rec, resp
}

const dvfsQuery = "/v1/dvfs?workloads=compute-memory-swing&schemes=block&policies=static-high,static-low,oracle&scale=8000&seed=5"

func TestDVFSEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	rec, resp := dvfsGet(t, s, dvfsQuery)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Cache") != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", rec.Header().Get("X-Cache"))
	}
	if len(resp.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(resp.Points))
	}
	if len(resp.Frontier) == 0 || resp.Hash == "" {
		t.Fatalf("missing frontier or hash: %+v", resp)
	}
	byPolicy := map[string]float64{}
	epi := map[string]float64{}
	for _, p := range resp.Points {
		byPolicy[p.Policy] = p.Performance
		epi[p.Policy] = p.EnergyPerInstruction
	}
	if byPolicy["oracle"] < byPolicy["static-low"] {
		t.Errorf("oracle performance %v below static-low %v", byPolicy["oracle"], byPolicy["static-low"])
	}
	if epi["oracle"] > epi["static-high"] {
		t.Errorf("oracle energy %v above static-high %v", epi["oracle"], epi["static-high"])
	}

	// The repeated query must replay identical bytes from the cache.
	again, _ := dvfsGet(t, s, dvfsQuery)
	if again.Header().Get("X-Cache") != "hit" {
		t.Fatalf("second request X-Cache = %q, want hit", again.Header().Get("X-Cache"))
	}
	if again.Body.String() != rec.Body.String() {
		t.Fatal("cache hit served different bytes")
	}
}

func TestDVFSEndpointValidation(t *testing.T) {
	s, _ := newTestServer(t)
	for name, url := range map[string]string{
		"unknown workload": "/v1/dvfs?workloads=nope",
		"unknown scheme":   "/v1/dvfs?schemes=nope",
		"unknown policy":   "/v1/dvfs?policies=warp",
		"none policy":      "/v1/dvfs?policies=none",
		"bad pfail":        "/v1/dvfs?pfail=1.5",
		"bad scale":        "/v1/dvfs?scale=99999999",
		"bad seed":         "/v1/dvfs?seed=abc",
	} {
		rec, _ := dvfsGet(t, s, url)
		if rec.Code != 400 {
			t.Errorf("%s: status %d, want 400", name, rec.Code)
		}
	}
}

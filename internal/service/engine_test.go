package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"vccmin/internal/engine"
	"vccmin/internal/tasks"
)

// TestMethodNotAllowed: every /v1 route must answer a wrong-method
// request with 405, an Allow header and the JSON error envelope —
// not the stdlib's bare text error and not a 404.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		method, path, wantAllow string
	}{
		{"POST", "/v1/healthz", "GET"},
		{"DELETE", "/v1/stats", "GET"},
		{"POST", "/v1/capacity", "GET"},
		{"PUT", "/v1/operating-point", "GET"},
		{"POST", "/v1/overhead", "GET"},
		{"POST", "/v1/dvfs", "GET"},
		{"GET", "/v1/sim", "POST"},
		{"GET", "/v1/batch", "POST"},
		{"DELETE", "/v1/sweeps", "POST, GET"},
		{"POST", "/v1/sweeps/some-id", "GET"},
		{"POST", "/v1/sweeps/some-id/rows", "GET"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", c.method, c.path, resp.StatusCode)
			continue
		}
		if allow := resp.Header.Get("Allow"); allow != c.wantAllow {
			t.Errorf("%s %s: Allow %q, want %q", c.method, c.path, allow, c.wantAllow)
		}
		var env errorEnvelope
		if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != ErrCodeMethodNotAllowed {
			t.Errorf("%s %s: body %q is not the 405 envelope", c.method, c.path, body)
		}
	}
}

func TestStatsVersionAndEngineCounters(t *testing.T) {
	_, ts := newTestServer(t)
	// One computed capacity query, one replay.
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/v1/capacity?pfail=0.002")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	var st Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Version == "" || !strings.HasPrefix(st.Version, "vccmin ") {
		t.Fatalf("stats version %q", st.Version)
	}
	ks, ok := st.Engine[tasks.KindCapacity]
	if !ok {
		t.Fatalf("no engine stats for %q: %+v", tasks.KindCapacity, st.Engine)
	}
	if ks.Misses != 1 || ks.Hits != 1 {
		t.Fatalf("capacity kind stats %+v, want 1 miss + 1 hit", ks)
	}
	if st.Cache.Max == 0 {
		t.Fatalf("cache section missing: %+v", st.Cache)
	}
}

// TestBatchEndpoint: heterogeneous kinds answered in order, intra-batch
// deduplication, per-item errors, and the grid gate.
func TestBatchEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	body := map[string]any{
		"requests": []map[string]any{
			{"kind": "capacity", "params": map[string]any{"pfail": 0.001}},
			{"kind": "operating-point", "params": map[string]any{"min_performance": 0.5}},
			{"kind": "overhead"},
			{"kind": "capacity", "params": map[string]any{"pfail": 0.001}}, // duplicate of [0]
			{"kind": "no-such-kind"},
			{"kind": "sim", "params": map[string]any{"benchmark": "nope", "instructions": 100}},
		},
	}
	var resp BatchResponse
	hr := postJSON(t, ts.URL+"/v1/batch", body, &resp)
	if hr.StatusCode != 200 || len(resp.Results) != 6 {
		t.Fatalf("batch: status %d, %d results", hr.StatusCode, len(resp.Results))
	}
	for i := 0; i < 4; i++ {
		if resp.Results[i].Error != "" {
			t.Fatalf("item %d failed: %s", i, resp.Results[i].Error)
		}
	}
	if resp.Results[0].Kind != "capacity" || resp.Results[1].Kind != "operating-point" {
		t.Fatalf("results out of order: %+v", resp.Results[:2])
	}
	if resp.Results[0].Hash != resp.Results[3].Hash ||
		string(resp.Results[0].Value) != string(resp.Results[3].Value) {
		t.Fatal("duplicate batch items must share hash and bytes")
	}
	if resp.Results[4].Error == "" || resp.Results[5].Error == "" {
		t.Fatalf("bad items must carry errors: %+v", resp.Results[4:])
	}

	// The capacity value must be byte-identical to the sync endpoint's.
	syncResp, err := http.Get(ts.URL + "/v1/capacity?pfail=0.001")
	if err != nil {
		t.Fatal(err)
	}
	syncBytes, _ := io.ReadAll(syncResp.Body)
	syncResp.Body.Close()
	if got := string(resp.Results[0].Value) + "\n"; got != string(syncBytes) {
		t.Fatalf("batch value differs from sync endpoint:\n%s\nvs\n%s", got, syncBytes)
	}
	if syncResp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("sync endpoint should replay the batch's stored result, X-Cache %q",
			syncResp.Header.Get("X-Cache"))
	}

	// Oversized batches and oversized grids are rejected.
	var env errorEnvelope
	many := make([]map[string]any, s.cfg.MaxBatchItems+1)
	for i := range many {
		many[i] = map[string]any{"kind": "overhead"}
	}
	if hr := postJSON(t, ts.URL+"/v1/batch", map[string]any{"requests": many}, &env); hr.StatusCode != 400 {
		t.Fatalf("oversized batch: status %d", hr.StatusCode)
	}
	var gridResp BatchResponse
	postJSON(t, ts.URL+"/v1/batch", map[string]any{
		"requests": []map[string]any{
			{"kind": "sweep", "params": map[string]any{"pfails": manyPfails(s.cfg.MaxGridCells + 1)}},
			{"kind": "dvfs-explore", "params": map[string]any{"workloads": []string{"bursty-server"},
				"schemes": []string{"block"}, "policies": []string{"oracle"}, "scale": maxDVFSScale + 1}},
			{"kind": "dvfs-run", "params": map[string]any{"workload": "bursty-server",
				"policy": "oracle", "scale": maxDVFSScale + 1}},
		},
	}, &gridResp)
	for i, r := range gridResp.Results {
		if r.Error == "" || (!strings.Contains(r.Error, "limit") && !strings.Contains(r.Error, "scale")) {
			t.Fatalf("oversized item %d not gated: %+v", i, r)
		}
	}
}

// TestBatchSweepCellMatchesJobRows: a sweep-cell batch result must be
// byte-identical to the corresponding row of the async job's JSONL
// checkpoint — one compute engine, two surfaces.
func TestBatchSweepCellMatchesJobRows(t *testing.T) {
	_, ts := newTestServer(t)
	req := tinySpec()

	var acc SweepAccepted
	postJSON(t, ts.URL+"/v1/sweeps", req, &acc)
	snap := waitDone(t, ts.URL, acc.Job.ID)
	if snap.Status != JobDone {
		t.Fatalf("job failed: %+v", snap)
	}
	rowsResp, err := http.Get(ts.URL + "/v1/sweeps/" + acc.Job.ID + "/rows")
	if err != nil {
		t.Fatal(err)
	}
	rowsRaw, _ := io.ReadAll(rowsResp.Body)
	rowsResp.Body.Close()
	lines := bytes.Split(bytes.TrimSpace(rowsRaw), []byte("\n"))
	if len(lines) != 4 {
		t.Fatalf("%d row lines, want 4", len(lines))
	}

	params, _ := json.Marshal(req)
	var cellParams map[string]any
	json.Unmarshal(params, &cellParams)
	cellParams["index"] = 2
	var batch BatchResponse
	postJSON(t, ts.URL+"/v1/batch", map[string]any{
		"requests": []map[string]any{{"kind": "sweep-cell", "params": cellParams}},
	}, &batch)
	if batch.Results[0].Error != "" {
		t.Fatalf("sweep-cell: %s", batch.Results[0].Error)
	}
	if string(batch.Results[0].Value) != string(lines[2]) {
		t.Fatalf("sweep-cell bytes differ from the job row:\n%s\nvs\n%s",
			batch.Results[0].Value, lines[2])
	}
}

// TestDiskTierAcrossRestart is the acceptance path: a fresh server over
// the same data directory must serve previously computed sync results
// from the content-addressed disk store without recomputing.
func TestDiskTierAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	const query = "/v1/dvfs?workloads=compute-memory-swing&schemes=block&policies=static-high&scale=4000"

	s1, err := New(Config{DataDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	resp1, err := http.Get(ts1.URL + query)
	if err != nil {
		t.Fatal(err)
	}
	body1, _ := io.ReadAll(resp1.Body)
	resp1.Body.Close()
	if resp1.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first compute X-Cache %q", resp1.Header.Get("X-Cache"))
	}
	ts1.Close()
	s1.Close()

	s2, err := New(Config{DataDir: dir, Workers: 1}) // restart
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp2, err := http.Get(ts2.URL + query)
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.Header.Get("X-Cache") != string(engine.SourceDisk) {
		t.Fatalf("post-restart X-Cache %q, want %q", resp2.Header.Get("X-Cache"), engine.SourceDisk)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("disk tier replayed different bytes after restart")
	}
	if ks := s2.Engine().Stats()[tasks.KindDVFSExplore]; ks.Misses != 0 || ks.DiskHits != 1 {
		t.Fatalf("restart recomputed: %+v", ks)
	}
}

// TestConcurrentIdenticalRequestsSingleflight: concurrent identical HTTP
// requests must execute the underlying task exactly once (run under
// -race in CI).
func TestConcurrentIdenticalRequestsSingleflight(t *testing.T) {
	s, ts := newTestServer(t)
	const callers = 8
	var wg sync.WaitGroup
	bodies := make([]string, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/dvfs?workloads=bursty-server&schemes=block&policies=oracle&scale=4000")
			if err != nil {
				t.Error(err)
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			bodies[i] = string(b)
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("caller %d got different bytes", i)
		}
	}
	if ks := s.Engine().Stats()[tasks.KindDVFSExplore]; ks.Misses != 1 {
		t.Fatalf("underlying task ran %d times for %d concurrent identical requests (stats %+v)",
			ks.Misses, callers, ks)
	}
}

package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vccmin/internal/colstore"
	"vccmin/internal/sweep"
)

// tinyQuery asks the tiny corpus sweep a scheme-grouped question.
func tinyQuery() QueryRequest {
	return QueryRequest{
		Sweep:   tinySpec(),
		GroupBy: []string{"scheme"},
		Metrics: []string{"expected_capacity", "mean_ipc"},
	}
}

// postRaw POSTs JSON and returns the raw response body — the tests
// below compare serving paths byte for byte, so no re-decoding.
func postRaw(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestQueryComputePath: with no finished job to fold, POST /v1/query
// computes the sweep inline, answers with groups, and serves the repeat
// from the engine cache.
func TestQueryComputePath(t *testing.T) {
	_, ts := newTestServer(t)

	var qr QueryResponse
	resp := postJSON(t, ts.URL+"/v1/query", tinyQuery(), &qr)
	if resp.StatusCode != 200 || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first query: status %d cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if qr.Rows != 4 || qr.Matched != 4 {
		t.Fatalf("rows/matched = %d/%d, want 4/4", qr.Rows, qr.Matched)
	}
	if len(qr.Groups) != 2 {
		t.Fatalf("%d groups for 2 schemes: %+v", len(qr.Groups), qr.Groups)
	}
	if qr.Groups[0].Key != "scheme=baseline" || qr.Groups[1].Key != "scheme=block-disable" {
		t.Fatalf("group keys %q, %q", qr.Groups[0].Key, qr.Groups[1].Key)
	}
	if qr.Hash == "" || qr.SweepHash == "" || qr.Stream != sweep.StreamVersion {
		t.Fatalf("identity fields missing: %+v", qr)
	}

	var again QueryResponse
	resp = postJSON(t, ts.URL+"/v1/query", tinyQuery(), &again)
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("identical query not cached (X-Cache %q)", resp.Header.Get("X-Cache"))
	}
}

// TestQueryJobAndComputePathsAgree is the one-identity acceptance
// check: the same question answered from a finished job's folded
// shards (server A, interactive tier) and computed inline (server B,
// batch tier) must return byte-identical bodies.
func TestQueryJobAndComputePathsAgree(t *testing.T) {
	sA, tsA := newTestServer(t)
	_, tsB := newTestServer(t)

	// Server A runs the sweep as a job first.
	var acc SweepAccepted
	if resp := postJSON(t, tsA.URL+"/v1/sweeps", tinySpec(), &acc); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep POST: status %d", resp.StatusCode)
	}
	if snap := waitDone(t, tsA.URL, acc.Job.ID); snap.Status != JobDone {
		t.Fatalf("job: %+v", snap)
	}

	respA, bodyA := postRaw(t, tsA.URL+"/v1/query", tinyQuery())
	if respA.StatusCode != 200 {
		t.Fatalf("checkpoint-backed query: status %d: %s", respA.StatusCode, bodyA)
	}
	// The interactive path folds the checkpoint on first use.
	shardDir := sA.colstoreDir(acc.Job.ID)
	if _, err := os.Stat(shardDir); err != nil {
		t.Fatalf("query did not fold the finished checkpoint: %v", err)
	}
	files, err := filepath.Glob(filepath.Join(shardDir, "*.colv1"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no shard files under %s (%v)", shardDir, err)
	}

	respB, bodyB := postRaw(t, tsB.URL+"/v1/query", tinyQuery())
	if respB.StatusCode != 200 {
		t.Fatalf("computed query: status %d: %s", respB.StatusCode, bodyB)
	}
	if !bytes.Equal(bodyA, bodyB) {
		t.Fatalf("folded and computed answers differ:\nfolded:   %s\ncomputed: %s", bodyA, bodyB)
	}
}

// TestQueryBadRequests pins the 400 surface: malformed body, unknown
// axis/metric, unknown where axis, inverted range, oversized grid —
// all as invalid_request envelopes.
func TestQueryBadRequests(t *testing.T) {
	s, err := New(Config{DataDir: t.TempDir(), Workers: 1, MaxGridCells: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	lo, hi := 0.01, 0.001
	small := tinySpec()
	small.Pfails = []float64{0.001} // 2 cells, under the limit
	bad := []QueryRequest{
		{Sweep: small, GroupBy: []string{"no_such_axis"}, Metrics: []string{"mean_ipc"}},
		{Sweep: small, Metrics: []string{"no_such_metric"}},
		{Sweep: small, Metrics: []string{"mean_ipc"}, Where: map[string]string{"bogus": "x"}},
		{Sweep: small, Metrics: []string{"mean_ipc"}, PfailMin: &lo, PfailMax: &hi},
		tinyQuery(), // 4 cells > MaxGridCells 3
	}
	for i, req := range bad {
		var env errorEnvelope
		resp := postJSON(t, ts.URL+"/v1/query", req, &env)
		if resp.StatusCode != http.StatusBadRequest || env.Error.Code != ErrCodeInvalidRequest {
			t.Errorf("request %d: status %d code %q, want 400 invalid_request", i, resp.StatusCode, env.Error.Code)
		}
	}

	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader([]byte(`{"sweep": {"unknown_field": 1}}`)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

// TestQueryShedWithoutCheckpoint: a query whose sweep has no finished
// checkpoint is batch-shaped work and must be shed past the admission
// watermark — while the same question over a folded checkpoint keeps
// serving on the interactive tier.
func TestQueryShedWithoutCheckpoint(t *testing.T) {
	s, ts := newTrafficServer(t, Config{Workers: 1, ShedWatermark: 1})

	// Fill the lone batch worker and the queue.
	if resp := postJSON(t, ts.URL+"/v1/sweeps", slowSpec(), &SweepAccepted{}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("slow sweep POST: status %d", resp.StatusCode)
	}
	second := tinySpec()
	second.BaseSeed = 2001
	if resp := postJSON(t, ts.URL+"/v1/sweeps", second, &SweepAccepted{}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second sweep POST: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.jobs.BatchBacklog() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second job never queued")
		}
		time.Sleep(time.Millisecond)
	}

	q := tinyQuery()
	q.Sweep.BaseSeed = 2002 // no job for this grid → compute path
	var env errorEnvelope
	resp := postJSON(t, ts.URL+"/v1/query", q, &env)
	if resp.StatusCode != http.StatusServiceUnavailable || env.Error.Code != ErrCodeOverloaded {
		t.Fatalf("uncheckpointed query under load: status %d code %q, want 503 overloaded", resp.StatusCode, env.Error.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed 503 without Retry-After")
	}
}

// TestQueryRowsOrderCrossCheck pins the ordering contract between the
// two row-serving surfaces: GET /v1/sweeps/{id}/rows pages the JSONL
// checkpoint in file order, and the colstore fold must preserve exactly
// that order — including for a resumed job whose checkpoint is NOT in
// cell-index order. Checkpoint order is the source of truth.
func TestQueryRowsOrderCrossCheck(t *testing.T) {
	dir := t.TempDir()

	req := tinySpec()
	spec, err := req.Spec()
	if err != nil {
		t.Fatal(err)
	}
	spec = spec.WithDefaults()
	id := spec.CanonicalHash()

	res, err := sweep.Run(spec, sweep.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// A resume-shaped checkpoint: rotate the rows out of cell order.
	rows := append(append([]sweep.Row{}, res.Rows[2:]...), res.Rows[:2]...)
	var buf bytes.Buffer
	for _, r := range rows {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(dir, id+".rows.jsonl"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writeJSONFile(filepath.Join(dir, id+".spec.json"), spec); err != nil {
		t.Fatal(err)
	}
	now := time.Now().UTC()
	if err := writeJSONFile(filepath.Join(dir, id+".done.json"), JobSnapshot{
		ID: id, Status: JobDone, TotalCells: 4, ShardCells: 4, Computed: 4, CreatedAt: now,
	}); err != nil {
		t.Fatal(err)
	}

	// A recovered server serves the checkpoint as a done job.
	s, err := New(Config{DataDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	// Surface 1: the paged rows endpoint, read one row per page.
	var paged []sweep.Row
	for off := 0; off < len(rows); off++ {
		resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/rows?offset=" + itoa(off) + "&limit=1")
		if err != nil {
			t.Fatal(err)
		}
		page, err := sweep.ReadRows(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(page) != 1 {
			t.Fatalf("page at offset %d holds %d rows", off, len(page))
		}
		paged = append(paged, page[0])
	}

	// Surface 2: a query folds the checkpoint; read the shards back.
	if resp, body := postRaw(t, ts.URL+"/v1/query", QueryRequest{Sweep: req, Metrics: []string{"mean_ipc"}}); resp.StatusCode != 200 {
		t.Fatalf("query: status %d: %s", resp.StatusCode, body)
	}
	d, err := colstore.OpenDir(s.colstoreDir(id))
	if err != nil {
		t.Fatal(err)
	}
	folded, err := colstore.Rows(d)
	if err != nil {
		t.Fatal(err)
	}

	for i := range rows {
		if paged[i].Key != rows[i].Key {
			t.Fatalf("rows endpoint reordered the checkpoint at %d: %q vs %q", i, paged[i].Key, rows[i].Key)
		}
		if folded[i].Key != rows[i].Key {
			t.Fatalf("colstore fold reordered the checkpoint at %d: %q vs %q", i, folded[i].Key, rows[i].Key)
		}
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

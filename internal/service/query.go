package service

import (
	"net/http"
	"os"
	"path/filepath"

	"vccmin/internal/colstore"
	"vccmin/internal/engine"
	"vccmin/internal/tasks"
)

// handleQuery answers POST /v1/query: a colstore aggregation over a
// sweep's result set. Two serving shapes share one response identity:
//
//   - The sweep already ran as a job: its checkpoint is folded (once)
//     into colstore shards next to the engine's result blobs, and the
//     query scans them on the interactive tier — this is the cheap,
//     fleet-scale path.
//   - No finished checkpoint: the query computes the sweep inline.
//     That is batch-shaped work, so it runs on the batch tier and is
//     shed past the admission watermark like POST /v1/batch.
//
// Both paths store byte-identical bytes under the task's canonical
// hash (colstore.Query is row-order independent), so whichever ran
// first serves every later repeat from the engine store.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	t, err := tasks.NewQueryTask(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	if n := t.GridCells(); n > s.cfg.MaxGridCells {
		writeErr(w, http.StatusBadRequest, "grid has %d cells, limit %d", n, s.cfg.MaxGridCells)
		return
	}
	if src, ok := s.colstoreSource(t.SweepHash()); ok {
		s.runTaskTier(w, r, t.WithSource(src), engine.TierInteractive)
		return
	}
	if backlog := s.jobs.BatchBacklog(); backlog >= int64(s.cfg.ShedWatermark) {
		s.shed503(w, ErrCodeOverloaded, map[string]any{
			"batch_backlog": backlog, "watermark": s.cfg.ShedWatermark,
		}, "batch tier saturated (%d queued >= watermark %d); retry later", backlog, s.cfg.ShedWatermark)
		return
	}
	s.runTaskTier(w, r, t, engine.TierBatch)
}

// colstoreDir is where a finished sweep's folded shards live: under the
// engine's result store, keyed by the sweep's canonical hash — the same
// identity its job and checkpoint carry.
func (s *Server) colstoreDir(sweepHash string) string {
	return filepath.Join(s.cfg.DataDir, "results", "colstore", sweepHash)
}

// colstoreSource returns a shard source for the sweep's finished
// checkpoint, folding it on first use. A sweep without a done job (or
// whose fold fails) reports ok=false and the caller falls back to
// computing — the fold is an accelerator, never a correctness
// dependency.
func (s *Server) colstoreSource(sweepHash string) (colstore.Source, bool) {
	snap, ok := s.jobs.Get(sweepHash)
	if !ok || snap.Status != JobDone {
		return nil, false
	}
	dir := s.colstoreDir(sweepHash)
	if _, err := os.Stat(dir); err != nil {
		if _, err := colstore.FoldJSONL(s.jobs.RowsPath(sweepHash), dir, colstore.DefaultShardRows); err != nil {
			return nil, false
		}
	}
	d, err := colstore.OpenDir(dir)
	if err != nil {
		return nil, false
	}
	return d, true
}

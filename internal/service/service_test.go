package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vccmin/internal/sim"
	"vccmin/internal/sweep"
)

// tinySpec is the request used across the e2e tests: 4 cells (2 pfails ×
// 2 schemes), one benchmark, small instruction budget.
func tinySpec() SweepRequest {
	return SweepRequest{
		Pfails:       []float64{0.001, 0.002},
		Schemes:      []string{"baseline", "block"},
		Benchmarks:   []string{"crafty"},
		Trials:       1,
		Instructions: 3000,
		BaseSeed:     7,
		Workers:      2,
	}
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{DataDir: t.TempDir(), Workers: 1, CacheEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
	return resp
}

func postJSON(t *testing.T, url string, body, v any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("POST %s: decoding: %v", url, err)
	}
	return resp
}

func TestSyncEndpointsAndCache(t *testing.T) {
	_, ts := newTestServer(t)

	var health map[string]string
	if resp := getJSON(t, ts.URL+"/v1/healthz", &health); resp.StatusCode != 200 || health["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, health)
	}

	var cap1 CapacityResponse
	resp := getJSON(t, ts.URL+"/v1/capacity?pfail=0.001&trials=20", &cap1)
	if resp.StatusCode != 200 || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("capacity: status %d cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if cap1.ExpectedCapacity <= 0 || cap1.ExpectedCapacity >= 1 {
		t.Fatalf("expected_capacity = %v, want in (0,1)", cap1.ExpectedCapacity)
	}
	if cap1.MeasuredCapacity == nil {
		t.Fatal("trials=20 should add measured_capacity")
	}
	if diff := *cap1.MeasuredCapacity - cap1.ExpectedCapacity; diff > 0.05 || diff < -0.05 {
		t.Fatalf("measured %v far from analytic %v", *cap1.MeasuredCapacity, cap1.ExpectedCapacity)
	}

	var cap2 CapacityResponse
	resp = getJSON(t, ts.URL+"/v1/capacity?pfail=0.001&trials=20", &cap2)
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second identical GET not served from cache (X-Cache %q)", resp.Header.Get("X-Cache"))
	}
	if cap2.ExpectedCapacity != cap1.ExpectedCapacity || *cap2.MeasuredCapacity != *cap1.MeasuredCapacity {
		t.Fatalf("cached response differs: %+v vs %+v", cap2, cap1)
	}

	var op OperatingPointResponse
	getJSON(t, ts.URL+"/v1/operating-point?pfail=0.001", &op)
	if op.Voltage <= 0 || op.Voltage >= 0.7 {
		t.Fatalf("operating point at pfail 1e-3 should sit below Vcc-min 0.7, got voltage %v", op.Voltage)
	}
	var opPerf OperatingPointResponse
	getJSON(t, ts.URL+"/v1/operating-point?min_performance=0.5", &opPerf)
	if opPerf.Performance < 0.5 {
		t.Fatalf("min_performance=0.5 returned performance %v", opPerf.Performance)
	}

	var over struct {
		Rows []OverheadRow `json:"rows"`
	}
	getJSON(t, ts.URL+"/v1/overhead", &over)
	if len(over.Rows) != 6 {
		t.Fatalf("overhead rows = %d, want 6 (Table I)", len(over.Rows))
	}
	if over.Rows[0].Scheme != "Baseline" || over.Rows[0].Total <= 0 {
		t.Fatalf("unexpected first overhead row %+v", over.Rows[0])
	}

	var simResp SimResponse
	resp = postJSON(t, ts.URL+"/v1/sim", SimRequest{
		Benchmark: "crafty", Scheme: "block", Pfail: 0.001, Instructions: 3000,
	}, &simResp)
	if resp.StatusCode != 200 || simResp.IPC <= 0 {
		t.Fatalf("sim: status %d ipc %v", resp.StatusCode, simResp.IPC)
	}
	if simResp.ICapacity >= 1 {
		t.Fatalf("block-disable at pfail 1e-3 should lose capacity, got %v", simResp.ICapacity)
	}
	var simResp2 SimResponse
	resp = postJSON(t, ts.URL+"/v1/sim", SimRequest{
		Benchmark: "crafty", Scheme: "block", Pfail: 0.001, Instructions: 3000,
	}, &simResp2)
	if resp.Header.Get("X-Cache") != "hit" || simResp2.IPC != simResp.IPC {
		t.Fatalf("identical sim not cached (X-Cache %q, ipc %v vs %v)",
			resp.Header.Get("X-Cache"), simResp2.IPC, simResp.IPC)
	}
}

func TestErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t)
	for _, url := range []string{
		ts.URL + "/v1/capacity?pfail=2",
		ts.URL + "/v1/capacity?geom=banana",
		ts.URL + "/v1/operating-point?pfail=0",
	} {
		var env errorEnvelope
		resp := getJSON(t, url, &env)
		if resp.StatusCode != http.StatusBadRequest || env.Error.Message == "" || env.Error.Code != ErrCodeInvalidRequest {
			t.Errorf("GET %s: status %d, envelope %+v", url, resp.StatusCode, env)
		}
	}
	var env errorEnvelope
	resp := postJSON(t, ts.URL+"/v1/sweeps", map[string]any{"schemes": []string{"nope"}}, &env)
	if resp.StatusCode != http.StatusBadRequest || env.Error.Message == "" {
		t.Errorf("bad sweep POST: status %d, envelope %+v", resp.StatusCode, env)
	}
	resp = getJSON(t, ts.URL+"/v1/sweeps/zzz", &env)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// waitDone polls the job endpoint until the job leaves the queue/run
// states or the deadline passes.
func waitDone(t *testing.T, base, id string) JobSnapshot {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var snap JobSnapshot
		getJSON(t, base+"/v1/sweeps/"+id, &snap)
		switch snap.Status {
		case JobDone, JobFailed:
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, snap.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSweepE2EAndDedup(t *testing.T) {
	s, ts := newTestServer(t)

	var acc SweepAccepted
	resp := postJSON(t, ts.URL+"/v1/sweeps", tinySpec(), &acc)
	if resp.StatusCode != http.StatusAccepted || acc.Cached {
		t.Fatalf("first POST: status %d cached %v", resp.StatusCode, acc.Cached)
	}
	id := acc.Job.ID
	if id == "" {
		t.Fatal("no job id")
	}

	snap := waitDone(t, ts.URL, id)
	if snap.Status != JobDone {
		t.Fatalf("job failed: %+v", snap)
	}
	if snap.Computed != 4 || snap.TotalCells != 4 || snap.Skipped != 0 {
		t.Fatalf("job counters %+v, want 4 computed of 4", snap)
	}

	rowsResp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/rows")
	if err != nil {
		t.Fatal(err)
	}
	defer rowsResp.Body.Close()
	if ct := rowsResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("rows content type %q", ct)
	}
	rows, err := sweep.ReadRows(rowsResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("streamed %d rows, want 4", len(rows))
	}
	schemes := map[string]int{}
	for _, r := range rows {
		schemes[r.Scheme]++
	}
	if schemes["baseline"] != 2 || schemes["block-disable"] != 2 {
		t.Fatalf("row schemes %v", schemes)
	}

	// A second identical POST must be served from cache: same job id, no
	// new work, dedup counter bumped.
	var acc2 SweepAccepted
	resp = postJSON(t, ts.URL+"/v1/sweeps", tinySpec(), &acc2)
	if resp.StatusCode != http.StatusOK || !acc2.Cached || acc2.Job.ID != id {
		t.Fatalf("identical POST: status %d cached %v id %s (want %s)",
			resp.StatusCode, acc2.Cached, acc2.Job.ID, id)
	}
	var stats Stats
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Jobs.DedupHits < 1 {
		t.Fatalf("dedup hits %d, want >= 1", stats.Jobs.DedupHits)
	}
	if stats.Jobs.Done < 1 {
		t.Fatalf("stats report no done jobs: %+v", stats.Jobs)
	}

	// The listing shows the job too.
	var list struct {
		Jobs []JobSnapshot `json:"jobs"`
	}
	getJSON(t, ts.URL+"/v1/sweeps", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != id {
		t.Fatalf("job list %+v", list.Jobs)
	}
	_ = s
}

// TestRestartResume is the kill/restart acceptance path: a sweep
// interrupted mid-run (deterministically, via context cancellation after
// two flushed rows) leaves a checkpoint; a fresh server over the same data
// directory must finish the job without recomputing the finished cells,
// and the resumed output must be byte-identical to an uninterrupted run.
func TestRestartResume(t *testing.T) {
	dir := t.TempDir()

	req := tinySpec()
	spec, err := req.Spec()
	if err != nil {
		t.Fatal(err)
	}
	spec = spec.WithDefaults()
	spec.Workers = 1 // serialize cells so the cut point is exact
	id := spec.CanonicalHash()

	// Simulate the killed first run: cancel after two flushed rows.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rowsPath := filepath.Join(dir, id+".rows.jsonl")
	_, err = sweep.ResumeFile(spec, rowsPath, sweep.RunOptions{
		Context: ctx,
		OnProgress: func(p sweep.Progress) {
			if p.Flushed == 2 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("interrupted run should report its cancellation")
	}
	partial, err := os.ReadFile(rowsPath)
	if err != nil {
		t.Fatal(err)
	}
	preRows, err := sweep.ReadRows(bytes.NewReader(partial))
	if err != nil {
		t.Fatal(err)
	}
	if len(preRows) != 2 {
		t.Fatalf("checkpoint holds %d rows, want exactly 2", len(preRows))
	}

	// Persist the spec as the manager would have, then "restart".
	if err := writeJSONFile(filepath.Join(dir, id+".spec.json"), spec); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{DataDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	snap := waitDone(t, ts.URL, id)
	if snap.Status != JobDone {
		t.Fatalf("resumed job failed: %+v", snap)
	}
	if !snap.Resumed {
		t.Fatalf("job not marked resumed: %+v", snap)
	}
	if snap.Skipped != 2 {
		t.Fatalf("resume skipped %d cells, want exactly the 2 checkpointed (no recompute)", snap.Skipped)
	}
	if snap.Computed != 2 {
		t.Fatalf("resume computed %d cells, want the remaining 2", snap.Computed)
	}

	// The stitched output must equal an uninterrupted run byte-for-byte.
	var clean bytes.Buffer
	if _, err := sweep.Run(spec, sweep.RunOptions{Out: &clean}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(rowsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, clean.Bytes()) {
		t.Fatalf("resumed output differs from clean run (%d vs %d bytes)", len(got), clean.Len())
	}

	// And the finished job must survive yet another restart as done.
	s.Close()
	ts.Close()
	s2, err := New(Config{DataDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap2, ok := s2.Jobs().Get(id)
	if !ok || snap2.Status != JobDone {
		t.Fatalf("done job lost across restart: ok=%v %+v", ok, snap2)
	}
}

// TestFailedJobSurvivesRestart: a deterministically failing job must stay
// failed — with its error — across a restart instead of being resurrected
// and re-run forever.
func TestFailedJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	req := tinySpec()
	req.Benchmarks = []string{"no-such-benchmark"}
	spec, err := req.Spec()
	if err != nil {
		t.Fatal(err)
	}
	snap, cached, err := m.Enqueue(spec)
	if err != nil || cached {
		t.Fatalf("enqueue: cached=%v err=%v", cached, err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		snap, _ = m.Get(snap.ID)
		if snap.Status == JobFailed {
			break
		}
		if snap.Status == JobDone || time.Now().After(deadline) {
			t.Fatalf("job should have failed, got %+v", snap)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if snap.Error == "" {
		t.Fatal("failed job lost its error")
	}
	m.Close()

	m2, err := NewManager(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	snap2, ok := m2.Get(snap.ID)
	if !ok || snap2.Status != JobFailed || snap2.Error == "" {
		t.Fatalf("failure not persisted across restart: ok=%v %+v", ok, snap2)
	}
}

func TestDrainRejectsNewJobs(t *testing.T) {
	s, ts := newTestServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	var env errorEnvelope
	resp := postJSON(t, ts.URL+"/v1/sweeps", tinySpec(), &env)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining: status %d, want 503", resp.StatusCode)
	}
}

// TestServeGracefulShutdown exercises the full Serve lifecycle on a real
// listener: start, answer a request, cancel the context, exit cleanly.
func TestServeGracefulShutdown(t *testing.T) {
	ln := freeAddr(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- Serve(ctx, Config{Addr: ln, DataDir: t.TempDir(), DrainTimeout: 5 * time.Second})
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get("http://" + ln + "/v1/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not shut down")
	}
}

// freeAddr grabs an unused localhost port.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func TestSweepRequestValidation(t *testing.T) {
	s, err := New(Config{DataDir: t.TempDir(), Workers: 1, MaxGridCells: 100})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()
	var env errorEnvelope
	resp := postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
		Pfails: manyPfails(100), Schemes: []string{"baseline", "block", "word"},
		Geometries: []string{"32768x8x64", "16384x4x64"},
	}, &env)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized grid accepted: status %d", resp.StatusCode)
	}
}

func manyPfails(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 0.0001 + float64(i)*0.00001
	}
	return out
}

func TestManagerQueueFullAndSpecRoundTrip(t *testing.T) {
	// Spec JSON round-trip: what the manager persists must rehash to the
	// same id after a restart, or recovery would duplicate jobs.
	spec := sweep.Spec{
		Pfails:  []float64{0.001},
		Schemes: []sim.Scheme{sim.BlockDisable},
		Trials:  1, Instructions: 1000, BaseSeed: 3,
	}.WithDefaults()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back sweep.Spec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.CanonicalHash() != spec.CanonicalHash() {
		t.Fatalf("spec hash changed across JSON round-trip: %s vs %s",
			back.CanonicalHash(), spec.CanonicalHash())
	}
}

func TestCanonicalHashProperties(t *testing.T) {
	base := tinySpec()
	spec1, _ := base.Spec()
	spec2, _ := base.Spec()
	if spec1.CanonicalHash() != spec2.CanonicalHash() {
		t.Fatal("equal specs must hash equal")
	}
	spec2.Workers = 16
	if spec1.CanonicalHash() != spec2.CanonicalHash() {
		t.Fatal("Workers must not affect the hash (scheduling, not results)")
	}
	spec2.BaseSeed = 99
	if spec1.CanonicalHash() == spec2.CanonicalHash() {
		t.Fatal("BaseSeed must affect the hash")
	}
	spec3, _ := base.Spec()
	spec3.Pfails = []float64{0.002, 0.001} // same values, different order
	if spec1.CanonicalHash() == spec3.CanonicalHash() {
		t.Fatal("axis order must affect the hash (it changes cell indices)")
	}
	joined, _ := base.Spec()
	joined.Benchmarks = []string{"a,b"}
	split, _ := base.Spec()
	split.Benchmarks = []string{"a", "b"}
	if joined.CanonicalHash() == split.CanonicalHash() {
		t.Fatal(`benchmarks ["a,b"] and ["a","b"] must not collide`)
	}
	if fmt.Sprintf("%s", spec1.CanonicalHash()) == "" {
		t.Fatal("empty hash")
	}
}

package service

import (
	"fmt"
	"net/http"

	"vccmin/internal/cliflag"
	"vccmin/internal/tasks"
)

// maxDVFSCells bounds the (workload × scheme × policy) grid a single
// /v1/dvfs or batch request may ask for; each cell is a full scheduled
// run.
const maxDVFSCells = 64

// maxDVFSScale bounds the per-workload instruction budget a request may
// demand.
const maxDVFSScale = 500_000

// parseDVFSRequest builds the explorer task request from query
// parameters. All axes are comma-separated lists; empty values take the
// explorer defaults. Axis values are validated by the task constructor.
func parseDVFSRequest(r *http.Request) (tasks.DVFSExploreRequest, error) {
	var req tasks.DVFSExploreRequest
	q := r.URL.Query()
	req.Workloads = cliflag.Split(q.Get("workloads"))
	req.Schemes = cliflag.Split(q.Get("schemes"))
	req.Policies = cliflag.Split(q.Get("policies"))
	req.Victim = q.Get("victim")
	pfail, err := queryFloat(r, "pfail", 0.001)
	if err != nil {
		return req, err
	}
	req.Pfail = &pfail
	seed, err := queryInt64(r, "seed", 1)
	if err != nil {
		return req, err
	}
	if seed < 0 {
		return req, fmt.Errorf("seed %d negative", seed)
	}
	req.Seed = seed
	if req.Scale, err = queryInt(r, "scale", 20_000); err != nil {
		return req, err
	}
	runs, err := queryInt(r, "runs", 0)
	if err != nil {
		return req, err
	}
	if runs < 0 {
		return req, fmt.Errorf("runs %d negative", runs)
	}
	req.IncludeRuns = runs != 0
	return req, nil
}

// handleDVFS explores the requested (workload × scheme × policy) grid
// through the engine and serves the Pareto view. Like every sync
// endpoint, the response is a pure function of the request, keyed by
// the explorer spec's canonical hash — a repeated query replays
// identical bytes (X-Cache: hit, or disk after a restart) instead of
// re-simulating.
func (s *Server) handleDVFS(w http.ResponseWriter, r *http.Request) {
	req, err := parseDVFSRequest(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	if req.Scale < 0 || req.Scale > maxDVFSScale {
		writeErr(w, http.StatusBadRequest, "scale %d out of [0,%d]", req.Scale, maxDVFSScale)
		return
	}
	t, err := tasks.NewDVFSExploreTask(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	// Gate the grid before any simulation runs; the task defaults its
	// spec on construction, so the cell arithmetic can never drift from
	// what Explore actually evaluates.
	if cells := t.GridCells(); cells > maxDVFSCells {
		writeErr(w, http.StatusBadRequest, "grid has %d cells, limit %d", cells, maxDVFSCells)
		return
	}
	s.runTask(w, r, t)
}

package service

import (
	"fmt"
	"net/http"

	"vccmin/internal/cliflag"
	"vccmin/internal/dvfs"
	"vccmin/internal/sim"
	"vccmin/internal/workload"
)

// maxDVFSCells bounds the (workload × scheme × policy) grid a single
// /v1/dvfs request may ask for; each cell is a full scheduled run.
const maxDVFSCells = 64

// maxDVFSScale bounds the per-workload instruction budget a request may
// demand.
const maxDVFSScale = 500_000

// DVFSResponse is the GET /v1/dvfs payload: every explored operating
// point (frontier membership marked) plus the frontier subset, in grid
// order.
type DVFSResponse struct {
	Hash      string       `json:"hash"` // ExploreSpec.CanonicalHash — the cache identity
	Pfail     float64      `json:"pfail"`
	Seed      int64        `json:"seed"`
	Scale     int          `json:"scale,omitempty"`
	Workloads []string     `json:"workloads"`
	Points    []dvfs.Point `json:"points"`
	Frontier  []dvfs.Point `json:"frontier"`
}

// parseDVFSSpec builds the explorer spec from query parameters. All axes
// are comma-separated lists; empty values take the explorer defaults.
func parseDVFSSpec(r *http.Request) (dvfs.ExploreSpec, error) {
	var spec dvfs.ExploreSpec
	q := r.URL.Query()
	var err error
	if v := q.Get("workloads"); v != "" {
		spec.Workloads, err = cliflag.ParseList(v, func(w string) (string, error) {
			_, err := workload.MultiPhaseByName(w)
			return w, err
		})
		if err != nil {
			return spec, err
		}
	}
	if v := q.Get("schemes"); v != "" {
		if spec.Schemes, err = cliflag.ParseList(v, sim.ParseScheme); err != nil {
			return spec, err
		}
	}
	if v := q.Get("policies"); v != "" {
		spec.Policies, err = cliflag.ParseList(v, func(s string) (dvfs.PolicyKind, error) {
			p, err := dvfs.ParsePolicy(s)
			if err == nil && p == dvfs.PolicyNone {
				return 0, fmt.Errorf("policy %q is not schedulable", s)
			}
			return p, err
		})
		if err != nil {
			return spec, err
		}
	}
	if v := q.Get("victim"); v != "" {
		if spec.Victim, err = sim.ParseVictim(v); err != nil {
			return spec, err
		}
	}
	pfail, err := queryFloat(r, "pfail", 0.001)
	if err != nil {
		return spec, err
	}
	if pfail < 0 || pfail >= 1 {
		return spec, fmt.Errorf("pfail %v out of [0,1)", pfail)
	}
	spec.Pfail = pfail
	seed, err := queryInt(r, "seed", 1)
	if err != nil {
		return spec, err
	}
	spec.Seed = int64(seed)
	scale, err := queryInt(r, "scale", 20_000)
	if err != nil {
		return spec, err
	}
	if scale < 0 || scale > maxDVFSScale {
		return spec, fmt.Errorf("scale %d out of [0,%d]", scale, maxDVFSScale)
	}
	spec.Scale = scale
	return spec, nil
}

// handleDVFS explores the requested (workload × scheme × policy) grid
// and serves the Pareto view. Like the sweeps, the response is a pure
// function of the request, keyed in the LRU by the explorer spec's
// canonical hash — a repeated query replays identical bytes (X-Cache:
// hit) instead of re-simulating.
func (s *Server) handleDVFS(w http.ResponseWriter, r *http.Request) {
	spec, err := parseDVFSSpec(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	// Gate the grid before any simulation runs: defaulting the spec
	// first means the cell arithmetic can never drift from what Explore
	// actually evaluates.
	spec = spec.WithDefaults()
	if cells := len(spec.Workloads) * len(spec.Schemes) * len(spec.Policies); cells > maxDVFSCells {
		writeErr(w, http.StatusBadRequest, "grid has %d cells, limit %d", cells, maxDVFSCells)
		return
	}
	hash := spec.CanonicalHash()
	s.cached(w, "dvfs?"+hash, func() (any, error) {
		res, err := dvfs.Explore(spec)
		if err != nil {
			return nil, err
		}
		return DVFSResponse{
			Hash:      hash,
			Pfail:     spec.Pfail,
			Seed:      spec.Seed,
			Scale:     spec.Scale,
			Workloads: spec.Workloads,
			Points:    res.Points,
			Frontier:  res.ParetoPoints(),
		}, nil
	})
}

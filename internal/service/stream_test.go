package service

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	id    string
	event string
	data  string
}

// readSSE parses the next event off the stream, skipping keep-alive
// comments. io.EOF surfaces when the server closed the stream.
func readSSE(br *bufio.Reader) (sseEvent, error) {
	var ev sseEvent
	seen := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if seen {
				return ev, nil
			}
		case strings.HasPrefix(line, ":"): // comment / keep-alive
		case strings.HasPrefix(line, "id: "):
			ev.id, seen = strings.TrimPrefix(line, "id: "), true
		case strings.HasPrefix(line, "event: "):
			ev.event, seen = strings.TrimPrefix(line, "event: "), true
		case strings.HasPrefix(line, "data: "):
			ev.data, seen = strings.TrimPrefix(line, "data: "), true
		}
	}
}

// slowSpec is a sweep big enough (6 cells, two benchmarks each, heavy
// instruction budget, one worker) that the stream test reliably
// observes rows before the job finishes.
func slowSpec() SweepRequest {
	return SweepRequest{
		Pfails:       []float64{0.0005, 0.001, 0.002},
		Schemes:      []string{"baseline", "block"},
		Benchmarks:   []string{"crafty", "mcf"},
		Trials:       1,
		Instructions: 300000,
		BaseSeed:     11,
		Workers:      1,
	}
}

// splitLines splits a JSONL body into lines that each keep their
// trailing newline.
func splitLines(b []byte) []string {
	parts := strings.SplitAfter(string(b), "\n")
	if n := len(parts); n > 0 && parts[n-1] == "" {
		parts = parts[:n-1]
	}
	return parts
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestStreamLiveDelivery is the acceptance path: rows of an in-flight
// job arrive over /stream before the job completes, every row exactly
// once in order, then a final done event carrying the job snapshot.
func TestStreamLiveDelivery(t *testing.T) {
	_, ts := newTestServer(t)

	var acc SweepAccepted
	if resp := postJSON(t, ts.URL+"/v1/sweeps", slowSpec(), &acc); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
	id := acc.Job.ID

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	br := bufio.NewReader(resp.Body)

	first, err := readSSE(br)
	if err != nil {
		t.Fatal(err)
	}
	if first.id != "0" || first.data == "" {
		t.Fatalf("first event id %q data %q, want id 0 with a row", first.id, first.data)
	}
	// The job must still be in flight when its first row arrives — live
	// delivery, not an after-the-fact replay.
	var snap JobSnapshot
	getJSON(t, ts.URL+"/v1/sweeps/"+id, &snap)
	if snap.Status != JobRunning && snap.Status != JobQueued {
		t.Fatalf("job already %s when the first streamed row arrived", snap.Status)
	}

	var rows []string
	rows = append(rows, first.data)
	var done sseEvent
	for {
		ev, err := readSSE(br)
		if err != nil {
			t.Fatalf("stream ended without a done event: %v", err)
		}
		if ev.event != "" {
			done = ev
			break
		}
		if want := strconv.Itoa(len(rows)); ev.id != want {
			t.Fatalf("event id %q, want %q (in-order, exactly-once)", ev.id, want)
		}
		rows = append(rows, ev.data)
	}
	if done.event != "done" {
		t.Fatalf("final event %q, want done", done.event)
	}
	var final JobSnapshot
	if err := json.Unmarshal([]byte(done.data), &final); err != nil {
		t.Fatalf("done payload: %v", err)
	}
	if final.Status != JobDone || final.TotalCells != 6 || len(rows) != 6 {
		t.Fatalf("done snapshot %+v with %d rows, want done/6/6", final, len(rows))
	}
	if done.id != "5" {
		t.Fatalf("done event id %q, want 5 (the last row)", done.id)
	}

	// The streamed bytes are exactly what /rows serves after the fact.
	_, polled := getBody(t, ts.URL+"/v1/sweeps/"+id+"/rows")
	if got := strings.Join(rows, "\n") + "\n"; got != string(polled) {
		t.Fatalf("streamed rows differ from polled rows:\n%q\nvs\n%q", got, polled)
	}
}

// TestStreamResume is the Last-Event-ID acceptance path: a client that
// reconnects mid-job with the standard SSE resume header receives
// exactly the rows it missed, byte-identical to the polled ones.
func TestStreamResume(t *testing.T) {
	_, ts := newTestServer(t)

	var acc SweepAccepted
	postJSON(t, ts.URL+"/v1/sweeps", tinySpec(), &acc)
	id := acc.Job.ID
	waitDone(t, ts.URL, id)

	_, polled := getBody(t, ts.URL+"/v1/sweeps/"+id+"/rows")
	lines := splitLines(polled)
	if len(lines) != 4 {
		t.Fatalf("%d polled rows, want 4", len(lines))
	}

	req, _ := http.NewRequest("GET", ts.URL+"/v1/sweeps/"+id+"/stream", nil)
	req.Header.Set("Last-Event-ID", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)

	var got []string
	for i := 2; ; i++ {
		ev, err := readSSE(br)
		if err != nil {
			t.Fatal(err)
		}
		if ev.event == "done" {
			break
		}
		if ev.id != strconv.Itoa(i) {
			t.Fatalf("resumed event id %q, want %d", ev.id, i)
		}
		got = append(got, ev.data+"\n")
	}
	if len(got) != 2 || got[0] != lines[2] || got[1] != lines[3] {
		t.Fatalf("resume from id 1 delivered %q, want rows 2..3 %q", got, lines[2:])
	}

	// Resuming from the final id replays nothing but the terminal event —
	// the idempotent-close contract.
	req, _ = http.NewRequest("GET", ts.URL+"/v1/sweeps/"+id+"/stream", nil)
	req.Header.Set("Last-Event-ID", "3")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	ev, err := readSSE(bufio.NewReader(resp2.Body))
	if err != nil || ev.event != "done" {
		t.Fatalf("resume past the end: event %+v err %v, want an immediate done", ev, err)
	}
}

// TestStreamJSONL covers the chunked fallback: the body is the rows
// file verbatim (from ?offset), closing when the job is over.
func TestStreamJSONL(t *testing.T) {
	_, ts := newTestServer(t)

	var acc SweepAccepted
	postJSON(t, ts.URL+"/v1/sweeps", tinySpec(), &acc)
	id := acc.Job.ID
	waitDone(t, ts.URL, id)
	_, polled := getBody(t, ts.URL+"/v1/sweeps/"+id+"/rows")

	resp, body := getBody(t, ts.URL+"/v1/sweeps/"+id+"/stream?format=jsonl")
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	if string(body) != string(polled) {
		t.Fatalf("jsonl stream %q differs from polled rows %q", body, polled)
	}

	lines := splitLines(polled)
	_, tail := getBody(t, ts.URL+"/v1/sweeps/"+id+"/stream?format=jsonl&offset=3")
	if string(tail) != lines[3] {
		t.Fatalf("offset=3 stream %q, want %q", tail, lines[3])
	}
}

func TestStreamValidation(t *testing.T) {
	_, ts := newTestServer(t)
	var acc SweepAccepted
	postJSON(t, ts.URL+"/v1/sweeps", tinySpec(), &acc)
	id := acc.Job.ID
	waitDone(t, ts.URL, id)

	cases := []struct {
		url    string
		header string
		status int
	}{
		{url: "/v1/sweeps/nope/stream", status: http.StatusNotFound},
		{url: "/v1/sweeps/" + id + "/stream?format=csv", status: http.StatusBadRequest},
		{url: "/v1/sweeps/" + id + "/stream?offset=-2", status: http.StatusBadRequest},
		{url: "/v1/sweeps/" + id + "/stream", header: "banana", status: http.StatusBadRequest},
	}
	for _, c := range cases {
		req, _ := http.NewRequest("GET", ts.URL+c.url, nil)
		if c.header != "" {
			req.Header.Set("Last-Event-ID", c.header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("GET %s (Last-Event-ID %q): status %d, want %d", c.url, c.header, resp.StatusCode, c.status)
		}
	}
}

// TestStreamKeepAliveAndDisconnect pins down that an idle stream stays
// open (receiving keep-alives) and a client disconnect releases the
// handler rather than leaking it.
func TestStreamKeepAliveAndDisconnect(t *testing.T) {
	s, ts := newTestServer(t)

	// A queued job that never starts: occupy the lone batch worker first.
	var first SweepAccepted
	postJSON(t, ts.URL+"/v1/sweeps", slowSpec(), &first)
	var queued SweepAccepted
	spec := tinySpec()
	spec.BaseSeed = 999
	postJSON(t, ts.URL+"/v1/sweeps", spec, &queued)

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + queued.Job.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	// The stream produces no rows yet; closing the body must unblock the
	// handler via the request context. If it leaked, Close below would
	// hang on the active handler. (The httptest server tracks conns.)
	time.Sleep(50 * time.Millisecond)
	resp.Body.Close()
	_ = s
}

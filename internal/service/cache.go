package service

import (
	"container/list"
	"sync"
)

// lruCache is a thread-safe LRU of marshalled responses keyed by canonical
// request strings. Every result the service computes is deterministic
// (seeds derive from request parameters), so cached bytes never go stale —
// the cache only bounds memory, it never needs invalidation.
type lruCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List
	items   map[string]*list.Element
	hits    uint64
	misses  uint64
	evicted uint64
}

type lruEntry struct {
	key string
	val []byte
}

func newLRU(max int) *lruCache {
	if max <= 0 {
		max = 1
	}
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached bytes for key and records a hit or miss.
func (c *lruCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*lruEntry).val, true
	}
	c.misses++
	return nil, false
}

// put stores val under key, evicting the least recently used entry when
// the cache is full.
func (c *lruCache) put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*lruEntry).key)
		c.evicted++
	}
}

// CacheStats is the cache section of the /v1/stats response.
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Evicted uint64 `json:"evicted"`
	Entries int    `json:"entries"`
	Max     int    `json:"max"`
}

func (c *lruCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evicted: c.evicted, Entries: c.ll.Len(), Max: c.max}
}

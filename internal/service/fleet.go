package service

import (
	"fmt"
	"net/http"

	"vccmin/internal/cliflag"
	"vccmin/internal/tasks"
)

// maxFleetDies bounds the fleet size a single /v1/fleet or batch
// request may simulate; each die is a multi-voltage certification.
const maxFleetDies = 200_000

// maxFleetDieRows bounds the fleets that may ask for per-die rows in
// the response; distributions stay cheap at any size, row dumps do not.
const maxFleetDieRows = 10_000

// maxPredictSample bounds the dies a prediction study may measure.
const maxPredictSample = 2_000

// parseFleetRequest builds the fleet-sweep task request from query
// parameters. Scheme lists are comma-separated; omitted values take the
// population defaults.
func parseFleetRequest(r *http.Request) (tasks.FleetRequest, error) {
	var req tasks.FleetRequest
	var err error
	if req.Dies, err = queryInt(r, "dies", 0); err != nil {
		return req, err
	}
	if req.DiesPerWafer, err = queryInt(r, "dies_per_wafer", 0); err != nil {
		return req, err
	}
	req.Schemes = cliflag.Split(r.URL.Query().Get("schemes"))
	if req.WaferSigma, err = queryFloatPtr(r, "wafer_sigma"); err != nil {
		return req, err
	}
	if req.Gradient, err = queryFloatPtr(r, "gradient"); err != nil {
		return req, err
	}
	if req.DieSigma, err = queryFloatPtr(r, "die_sigma"); err != nil {
		return req, err
	}
	if req.CapacityFloor, err = queryFloatPtr(r, "capacity_floor"); err != nil {
		return req, err
	}
	if req.VSteps, err = queryInt(r, "vsteps", 0); err != nil {
		return req, err
	}
	req.Geometry = r.URL.Query().Get("geom")
	if req.Seed, err = queryInt64(r, "seed", 1); err != nil {
		return req, err
	}
	rows, err := queryInt(r, "include_dies", 0)
	if err != nil {
		return req, err
	}
	req.IncludeDies = rows != 0
	if req.Workers, err = queryInt(r, "workers", 0); err != nil {
		return req, err
	}
	for name, v := range map[string]int64{
		"dies": int64(req.Dies), "dies_per_wafer": int64(req.DiesPerWafer),
		"vsteps": int64(req.VSteps), "seed": req.Seed,
		"include_dies": int64(rows), "workers": int64(req.Workers),
	} {
		if v < 0 {
			return req, fmt.Errorf("%s %d negative", name, v)
		}
	}
	return req, nil
}

// queryFloatPtr parses an optional float parameter, distinguishing
// "omitted" (nil: take the default) from an explicit value.
func queryFloatPtr(r *http.Request, name string) (*float64, error) {
	if r.URL.Query().Get(name) == "" {
		return nil, nil
	}
	f, err := queryFloat(r, name, 0)
	if err != nil {
		return nil, err
	}
	return &f, nil
}

// gateFleet applies the service-side size limits to a validated fleet
// task.
func gateFleet(t tasks.FleetTask) error {
	if dies := t.DieCount(); dies > maxFleetDies {
		return fmt.Errorf("fleet has %d dies, limit %d", dies, maxFleetDies)
	}
	if t.Req.IncludeDies && t.DieCount() > maxFleetDieRows {
		return fmt.Errorf("include_dies limited to %d dies, fleet has %d", maxFleetDieRows, t.DieCount())
	}
	return nil
}

// handleFleet sweeps a simulated die population and serves its Vcc-min
// distribution, yield-versus-voltage curves and per-wafer summaries.
// Like every sync endpoint the response is a pure function of the
// request, keyed by the canonical hash, so a repeated fleet replays
// stored bytes at any worker count.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	req, err := parseFleetRequest(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	t, err := tasks.NewFleetTask(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	if err := gateFleet(t); err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	s.runTask(w, r, t)
}

// fleetPostBody is the POST /v1/fleet envelope: exactly one of a fleet
// sweep or a Vcc-min prediction study.
type fleetPostBody struct {
	Sweep   *tasks.FleetRequest   `json:"sweep,omitempty"`
	Predict *tasks.PredictRequest `json:"predict,omitempty"`
}

// handleFleetPost accepts the JSON forms of both population kinds:
// {"sweep": {...}} runs a fleet sweep, {"predict": {...}} a
// data-efficient Vcc-min prediction study.
func (s *Server) handleFleetPost(w http.ResponseWriter, r *http.Request) {
	var body fleetPostBody
	if err := decodeBody(w, r, &body); err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	switch {
	case body.Sweep != nil && body.Predict != nil:
		writeErr(w, http.StatusBadRequest, "body must contain exactly one of sweep or predict, got both")
	case body.Sweep != nil:
		t, err := tasks.NewFleetTask(*body.Sweep)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%s", err)
			return
		}
		if err := gateFleet(t); err != nil {
			writeErr(w, http.StatusBadRequest, "%s", err)
			return
		}
		s.runTask(w, r, t)
	case body.Predict != nil:
		t, err := tasks.NewPredictTask(*body.Predict)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%s", err)
			return
		}
		if t.Spec.Fleet.Dies > maxFleetDies {
			writeErr(w, http.StatusBadRequest, "fleet has %d dies, limit %d", t.Spec.Fleet.Dies, maxFleetDies)
			return
		}
		if t.SampleCount() > maxPredictSample {
			writeErr(w, http.StatusBadRequest, "sample %d exceeds limit %d", t.SampleCount(), maxPredictSample)
			return
		}
		s.runTask(w, r, t)
	default:
		writeErr(w, http.StatusBadRequest, "body must contain one of sweep or predict")
	}
}

// Package service is the long-running HTTP face of the repository: a
// thin adapter layer over the content-addressed compute engine. Every
// handler — the Section IV analysis, the Table I overhead accounting,
// the Fig. 1 operating-point model, single simulations, the DVFS Pareto
// explorer and the heterogeneous batch endpoint — constructs the same
// typed tasks the CLIs construct and executes them through one
// engine.Engine: an in-memory LRU fronting a content-addressed on-disk
// store (surviving restarts alongside the sweep checkpoints), with
// singleflight deduplication of concurrent identical requests. Sweeps
// additionally run as async jobs with checkpoint/resume, and their rows
// stream live over SSE as they flush.
//
// Traffic hardening: every request passes a per-client token-bucket
// rate limiter (X-API-Key header or remote IP; 429 + Retry-After when
// over), synchronous compute runs on the interactive tier of a
// two-tier worker pool so queued batch work can never starve it, and
// batch-shaped work (sweep jobs, POST /v1/batch) is shed with 503 +
// Retry-After once the batch backlog crosses the admission watermark —
// the service keeps delivering useful work at a degraded operating
// point instead of stalling, exactly the paper's thesis applied to
// serving.
//
// Endpoints (all JSON; errors use the versioned
// {"error":{"code","message","details"}} envelope; wrong methods get
// 405 with an Allow header):
//
//	GET  /v1/healthz                 liveness (never rate limited)
//	GET  /v1/stats                   build version, engine/pool/limiter/job counters
//	GET  /v1/capacity                Eq. 1-6 analytics (+ optional Monte Carlo check)
//	GET  /v1/operating-point         Fig. 1 model at a pfail or performance floor
//	GET  /v1/overhead                Table I transistor rows
//	GET  /v1/dvfs                    phase-aware DVFS Pareto explorer
//	POST /v1/sim                     one simulation run, synchronous
//	POST /v1/query                   colstore aggregation over a sweep's result set
//	POST /v1/batch                   heterogeneous task list, batch tier, sheddable
//	POST /v1/sweeps                  enqueue a sweep job (202; idempotent by spec hash)
//	GET  /v1/sweeps                  list jobs (?offset=&limit=, X-Total-Count)
//	GET  /v1/sweeps/{id}             job status and progress
//	GET  /v1/sweeps/{id}/rows        the job's JSONL rows (?offset=&limit=, X-Total-Count)
//	GET  /v1/sweeps/{id}/stream      live rows: SSE with resume, or ?format=jsonl
//
// Determinism is what makes the serving layer simple: every result is a
// pure function of the request (seeds derive from parameters), so
// neither store tier nor the sweep-job deduplication needs invalidation.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"vccmin/internal/buildinfo"
	"vccmin/internal/engine"
	"vccmin/internal/limit"
	"vccmin/internal/tasks"
)

// Config sizes the service.
type Config struct {
	// Addr is the listen address for Serve; default ":8780".
	Addr string

	// DataDir holds sweep-job specs, row checkpoints and the engine's
	// content-addressed result store (under results/). Jobs found there
	// resume on startup; results found there serve without recompute.
	// Default "vccmin-serve-data".
	DataDir string

	// Workers bounds concurrently running sweep jobs (the pool's batch
	// tier); default 2. Cell parallelism inside a job is the spec's own
	// Workers field.
	Workers int

	// InteractiveWorkers are additional pool workers reserved for the
	// synchronous endpoints' compute, so sweep saturation never starves
	// them; default GOMAXPROCS (at least 2).
	InteractiveWorkers int

	// InteractiveBacklog bounds queued synchronous compute; submissions
	// beyond it are shed with 503. Default 256.
	InteractiveBacklog int

	// ShedWatermark is the admission threshold: once this many batch
	// items (sweep jobs, batch requests) are queued and not yet running,
	// new batch-shaped work is shed with 503 + Retry-After while
	// interactive endpoints keep flowing. Default 64.
	ShedWatermark int

	// RateLimit is the per-client request budget in requests per second
	// (clients are keyed by X-API-Key, falling back to remote IP).
	// Zero disables rate limiting.
	RateLimit float64

	// RateBurst is the token-bucket depth; default 2×RateLimit.
	RateBurst float64

	// CacheEntries bounds the engine's in-memory result tier; default 512.
	CacheEntries int

	// MaxGridCells rejects sweep specs whose grids exceed it; default 4096.
	MaxGridCells int

	// MaxBatchItems bounds one POST /v1/batch request; default 64.
	MaxBatchItems int

	// DrainTimeout bounds the graceful half of shutdown; default 30s.
	DrainTimeout time.Duration

	// ReadHeaderTimeout bounds how long a connection may dribble its
	// request header (slowloris hardening); default 10s.
	ReadHeaderTimeout time.Duration

	// MaxHeaderBytes bounds a request's header block; default 1 MiB.
	MaxHeaderBytes int
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8780"
	}
	if c.DataDir == "" {
		c.DataDir = "vccmin-serve-data"
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.InteractiveWorkers <= 0 {
		c.InteractiveWorkers = runtime.GOMAXPROCS(0)
		if c.InteractiveWorkers < 2 {
			c.InteractiveWorkers = 2
		}
	}
	if c.InteractiveBacklog <= 0 {
		c.InteractiveBacklog = 256
	}
	if c.ShedWatermark <= 0 {
		c.ShedWatermark = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 512
	}
	if c.MaxGridCells <= 0 {
		c.MaxGridCells = 4096
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 64
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.ReadHeaderTimeout <= 0 {
		c.ReadHeaderTimeout = 10 * time.Second
	}
	if c.MaxHeaderBytes <= 0 {
		c.MaxHeaderBytes = 1 << 20
	}
	return c
}

// Re-exported task shapes, so the HTTP surface and the task layer are
// visibly the same types.
type (
	// CapacityResponse is the GET /v1/capacity payload.
	CapacityResponse = tasks.CapacityResponse
	// OperatingPointResponse is the GET /v1/operating-point payload.
	OperatingPointResponse = tasks.OperatingPointResponse
	// OverheadRow is one Table I row of the GET /v1/overhead payload.
	OverheadRow = tasks.OverheadRow
	// SimRequest is the POST /v1/sim body.
	SimRequest = tasks.SimRequest
	// SimResponse is the POST /v1/sim payload.
	SimResponse = tasks.SimResponse
	// SweepRequest is the POST /v1/sweeps body.
	SweepRequest = tasks.SweepRequest
	// QueryRequest is the POST /v1/query body.
	QueryRequest = tasks.QueryRequest
	// QueryResponse is the POST /v1/query payload.
	QueryResponse = tasks.QueryResponse
	// DVFSResponse is the GET /v1/dvfs payload.
	DVFSResponse = tasks.DVFSResponse
)

// Server routes the API over the compute engine, the sweep-job manager
// and the traffic-hardening layers (rate limiter, admission control).
type Server struct {
	cfg     Config
	jobs    *Manager
	eng     *engine.Engine
	mux     *http.ServeMux
	handler http.Handler
	limiter *limit.Limiter // nil when rate limiting is disabled

	rateLimited atomic.Uint64 // requests answered 429
	shed        atomic.Uint64 // requests answered 503 by admission control
}

// New builds a server: the compute engine over <DataDir>/results (so
// previously computed results replay across restarts), the job manager
// and two-tier pool over the sweep checkpoints in DataDir, and the
// per-client rate limiter when cfg.RateLimit is set.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	eng, err := engine.New(engine.Options{
		MemEntries: cfg.CacheEntries,
		Dir:        filepath.Join(cfg.DataDir, "results"),
	})
	if err != nil {
		return nil, err
	}
	jobs, err := NewManagerTiered(cfg.DataDir, cfg.Workers, cfg.InteractiveWorkers, cfg.InteractiveBacklog)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, jobs: jobs, eng: eng, mux: http.NewServeMux()}
	if cfg.RateLimit > 0 {
		s.limiter = limit.New(cfg.RateLimit, cfg.RateBurst)
	}
	s.routes()
	s.handler = s.withTraffic(s.mux)
	return s, nil
}

// routes registers every endpoint plus, per path, a method-less
// fallback that answers any other verb with 405 and an Allow header
// (the stdlib mux would otherwise reply with a bare text error).
func (s *Server) routes() {
	type route struct {
		method, path string
		h            http.HandlerFunc
	}
	table := []route{
		{"GET", "/v1/healthz", s.handleHealthz},
		{"GET", "/v1/stats", s.handleStats},
		{"GET", "/v1/capacity", s.handleCapacity},
		{"GET", "/v1/operating-point", s.handleOperatingPoint},
		{"GET", "/v1/overhead", s.handleOverhead},
		{"GET", "/v1/dvfs", s.handleDVFS},
		{"GET", "/v1/fleet", s.handleFleet},
		{"POST", "/v1/fleet", s.handleFleetPost},
		{"POST", "/v1/sim", s.handleSim},
		{"POST", "/v1/query", s.handleQuery},
		{"POST", "/v1/batch", s.handleBatch},
		{"POST", "/v1/sweeps", s.handleSweepPost},
		{"GET", "/v1/sweeps", s.handleSweepList},
		{"GET", "/v1/sweeps/{id}", s.handleSweepGet},
		{"GET", "/v1/sweeps/{id}/rows", s.handleSweepRows},
		{"GET", "/v1/sweeps/{id}/stream", s.handleSweepStream},
	}
	allowed := map[string][]string{}
	for _, r := range table {
		s.mux.HandleFunc(r.method+" "+r.path, r.h)
		allowed[r.path] = append(allowed[r.path], r.method)
	}
	for path, methods := range allowed {
		allow := strings.Join(methods, ", ")
		s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Allow", allow)
			writeErr(w, http.StatusMethodNotAllowed, "method %s not allowed on %s (allow: %s)",
				r.Method, r.URL.Path, allow)
		})
	}
}

// withTraffic wraps the router with the per-client rate limiter.
// Liveness probes are exempt — an orchestrator must always be able to
// ask "are you up" — and everything else spends one token per request,
// streaming connections included.
func (s *Server) withTraffic(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.limiter != nil && r.URL.Path != "/v1/healthz" {
			if ok, retryAfter := s.limiter.Allow(clientKey(r)); !ok {
				s.rateLimited.Add(1)
				secs := retryAfterSeconds(retryAfter)
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				writeError(w, http.StatusTooManyRequests, "rate_limited", map[string]any{
					"retry_after_seconds": secs,
					"limit_per_second":    s.limiter.Rate(),
					"burst":               s.limiter.Burst(),
				}, "rate limit exceeded: %g requests/s per client (burst %g)", s.limiter.Rate(), s.limiter.Burst())
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// clientKey identifies the requester for rate limiting: the X-API-Key
// header when present (so keyed clients are limited per key wherever
// they connect from), else the remote IP.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return "key:" + k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return "ip:" + r.RemoteAddr
	}
	return "ip:" + host
}

// retryAfterSeconds rounds a wait up to whole seconds, at least 1 —
// the granularity the Retry-After header speaks.
func retryAfterSeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// Handler returns the routed HTTP handler, wrapped with the traffic
// layers (for httptest and embedding).
func (s *Server) Handler() http.Handler { return s.handler }

// Jobs exposes the job manager (for embedding and tests).
func (s *Server) Jobs() *Manager { return s.jobs }

// Engine exposes the compute engine (for embedding and tests).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Drain stops accepting jobs and waits for in-flight ones, bounded by the
// configured drain timeout.
func (s *Server) Drain(ctx context.Context) error { return s.jobs.Drain(ctx) }

// Close cancels whatever is still running; checkpoints keep it resumable.
func (s *Server) Close() { s.jobs.Close() }

// Serve runs the service at cfg.Addr until ctx is cancelled, then shuts
// down gracefully: stop listening, drain in-flight jobs up to
// cfg.DrainTimeout, cancel the rest (their checkpoints keep them
// resumable).
func Serve(ctx context.Context, cfg Config) error {
	cfg = cfg.withDefaults()
	s, err := New(cfg)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Addr:              cfg.Addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: cfg.ReadHeaderTimeout,
		MaxHeaderBytes:    cfg.MaxHeaderBytes,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		s.Close()
		return err
	case <-ctx.Done():
	}
	shCtx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
	defer cancel()
	err = srv.Shutdown(shCtx)
	if derr := s.Drain(shCtx); derr != nil && err == nil {
		err = derr
	}
	s.Close()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ---- Error envelope and JSON helpers ----

// apiError is the one versioned error shape every /v1 route emits:
// a stable machine-readable code, a human message, and optional
// structured details (e.g. the retry budget on 429/503).
type apiError struct {
	Code    string         `json:"code"`
	Message string         `json:"message"`
	Details map[string]any `json:"details,omitempty"`
}

type errorEnvelope struct {
	Error apiError `json:"error"`
}

// Stable error codes. Every handler reports failures through these —
// clients branch on the code, never on message text.
const (
	ErrCodeInvalidRequest   = "invalid_request"
	ErrCodeNotFound         = "not_found"
	ErrCodeMethodNotAllowed = "method_not_allowed"
	ErrCodeRateLimited      = "rate_limited"
	ErrCodeOverloaded       = "overloaded" // shed by admission control; retry later
	ErrCodeDraining         = "draining"   // shutting down; retry against a peer
	ErrCodeUnavailable      = "unavailable"
	ErrCodeInternal         = "internal"
)

// writeError is the single emitter of the error envelope: every error
// response on every /v1 route funnels through it, so the shape can
// never drift per handler.
func writeError(w http.ResponseWriter, status int, code string, details map[string]any, format string, args ...any) {
	var env errorEnvelope
	env.Error.Code = code
	env.Error.Message = fmt.Sprintf(format, args...)
	env.Error.Details = details
	writeJSON(w, status, env)
}

// writeErr is writeError with the code derived from the status — the
// common case for handlers without structured details.
func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeError(w, status, codeForStatus(status), nil, format, args...)
}

// codeForStatus maps an HTTP status onto its default envelope code.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return ErrCodeInvalidRequest
	case http.StatusNotFound:
		return ErrCodeNotFound
	case http.StatusMethodNotAllowed:
		return ErrCodeMethodNotAllowed
	case http.StatusTooManyRequests:
		return ErrCodeRateLimited
	case http.StatusServiceUnavailable:
		return ErrCodeUnavailable
	default:
		return ErrCodeInternal
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":{"code":"internal","message":"encoding response"}}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

// ---- Pool-routed execution ----

// shed503 answers a request rejected by admission control: 503 with a
// Retry-After hint and the overloaded/draining code, so well-behaved
// clients back off instead of hammering a saturated pool.
func (s *Server) shed503(w http.ResponseWriter, code string, details map[string]any, format string, args ...any) {
	s.shed.Add(1)
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, code, details, format, args...)
}

// submitWait runs work on the pool's given tier and waits for it — or
// for the request context. The work's context is the request context
// capped by the pool's lifetime, so a disconnected client cancels its
// compute and a closing pool cancels every request.
func (s *Server) submitWait(ctx context.Context, tier engine.Tier, work func(context.Context)) error {
	done := make(chan struct{})
	err := s.jobs.Pool().SubmitTier(tier, func(poolCtx context.Context) {
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		stop := context.AfterFunc(poolCtx, cancel)
		defer stop()
		work(runCtx)
		close(done)
	})
	if err != nil {
		return err
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// runTask executes one task on the pool's interactive tier through the
// engine and writes its stored bytes, with X-Cache reporting which tier
// answered ("miss" = computed now, "hit" = memory, "disk" = the on-disk
// store, e.g. after a restart, "inflight" = deduplicated onto a
// concurrent identical request). Task errors are never cached;
// bad-input errors answer 400, internal encode failures 500, the
// requester's own cancellation 503, and a full interactive queue is
// shed with 503 + Retry-After.
func (s *Server) runTask(w http.ResponseWriter, r *http.Request, t engine.Task) {
	s.runTaskTier(w, r, t, engine.TierInteractive)
}

// runTaskTier is runTask on an explicit pool tier: the query endpoint
// routes checkpoint-backed (cheap) queries interactively and
// sweep-computing ones onto the batch tier behind the sweep jobs.
func (s *Server) runTaskTier(w http.ResponseWriter, r *http.Request, t engine.Task, tier engine.Tier) {
	queue := "interactive"
	if tier == engine.TierBatch {
		queue = "batch"
	}
	var (
		res engine.Result
		err error
	)
	serr := s.submitWait(r.Context(), tier, func(ctx context.Context) {
		res, err = s.eng.Do(ctx, t)
	})
	switch {
	case errors.Is(serr, engine.ErrPoolFull):
		s.shed503(w, ErrCodeOverloaded, map[string]any{"queue": queue},
			"%s queue full; retry shortly", queue)
		return
	case errors.Is(serr, engine.ErrPoolDraining):
		s.shed503(w, ErrCodeDraining, nil, "shutting down; retry against another node")
		return
	case serr != nil:
		writeErr(w, http.StatusServiceUnavailable, "%s", serr)
		return
	}
	switch {
	case errors.Is(err, engine.ErrEncoding):
		writeErr(w, http.StatusInternalServerError, "%s", err)
		return
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeErr(w, http.StatusServiceUnavailable, "%s", err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	w.Header().Set("X-Cache", string(res.Source))
	w.Header().Set("Content-Type", "application/json")
	// Two writes, not an append: the stored bytes are shared across
	// concurrent requests and appending could scribble a newline into
	// another handler's in-flight response.
	w.Write(res.Bytes)
	w.Write([]byte{'\n'})
}

// ---- Query parsing helpers ----

func queryFloat(r *http.Request, name string, def float64) (float64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, v)
	}
	return f, nil
}

func queryInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, v)
	}
	return n, nil
}

// queryInt64 parses a full-range int64 parameter. Seeds go through
// this, never queryInt: Atoi is platform-int sized, so a 64-bit seed
// would silently truncate on a 32-bit build and be rejected on any
// build past math.MaxInt.
func queryInt64(r *http.Request, name string, def int64) (int64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, v)
	}
	return n, nil
}

// ---- Sync endpoints ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Stats is the /v1/stats response: the running build, the engine's
// per-kind counters, the memory tier's aggregate view, the pool and
// traffic-hardening counters and the job counters.
type Stats struct {
	Version string                      `json:"version"`
	Cache   CacheStats                  `json:"cache"`
	Engine  map[string]engine.KindStats `json:"engine"`
	Pool    engine.PoolStats            `json:"pool"`
	Traffic TrafficStats                `json:"traffic"`
	Limit   *limit.Stats                `json:"rate_limit,omitempty"`
	Jobs    JobStats                    `json:"jobs"`
}

// TrafficStats counts requests rejected by the hardening layers.
type TrafficStats struct {
	RateLimited uint64 `json:"rate_limited"` // answered 429
	Shed        uint64 `json:"shed"`         // answered 503 by admission control
}

// CacheStats is the memory tier's aggregate counters.
type CacheStats = engine.CacheStats

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := Stats{
		Version: buildinfo.String(),
		Cache:   s.eng.MemStats(),
		Engine:  s.eng.Stats(),
		Pool:    s.jobs.Pool().Stats(),
		Traffic: TrafficStats{RateLimited: s.rateLimited.Load(), Shed: s.shed.Load()},
		Jobs:    s.jobs.stats(),
	}
	if s.limiter != nil {
		ls := s.limiter.Stats()
		st.Limit = &ls
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCapacity(w http.ResponseWriter, r *http.Request) {
	var req tasks.CapacityRequest
	pfail, err := queryFloat(r, "pfail", 0.001)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	req.Pfail = &pfail
	req.Geometry = r.URL.Query().Get("geom")
	req.Granularity = r.URL.Query().Get("gran")
	if req.Trials, err = queryInt(r, "trials", 0); err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	if req.Trials < 0 {
		writeErr(w, http.StatusBadRequest, "trials %d negative", req.Trials)
		return
	}
	if req.Seed, err = queryInt64(r, "seed", 1); err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	if req.Seed < 0 {
		writeErr(w, http.StatusBadRequest, "seed %d negative", req.Seed)
		return
	}
	// workers only changes Monte Carlo scheduling, never the estimate;
	// the task excludes it from the canonical hash, so the same query at
	// a different worker count replays the stored bytes. It is still
	// validated here so a malformed value is a 400 regardless of cache
	// state.
	if req.Workers, err = queryInt(r, "workers", 0); err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	if req.Workers < 0 {
		writeErr(w, http.StatusBadRequest, "workers %d negative", req.Workers)
		return
	}
	t, err := tasks.NewCapacityTask(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	s.runTask(w, r, t)
}

func (s *Server) handleOperatingPoint(w http.ResponseWriter, r *http.Request) {
	var req tasks.OperatingPointRequest
	if v := r.URL.Query().Get("min_performance"); v != "" {
		minPerf, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad min_performance %q", v)
			return
		}
		req.MinPerformance = &minPerf
	} else {
		pfail, err := queryFloat(r, "pfail", 0.001)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%s", err)
			return
		}
		req.Pfail = &pfail
	}
	t, err := tasks.NewOperatingPointTask(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	s.runTask(w, r, t)
}

func (s *Server) handleOverhead(w http.ResponseWriter, r *http.Request) {
	s.runTask(w, r, tasks.OverheadTask{})
}

func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	var req SimRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	t, err := tasks.NewSimTask(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	s.runTask(w, r, t)
}

// ---- Batch endpoint ----

// BatchRequest is the POST /v1/batch body: a heterogeneous list of task
// requests executed through the engine with shared deduplication.
type BatchRequest struct {
	Requests []engine.BatchItem `json:"requests"`
}

// BatchResponse answers the items in request order; per-item failures
// carry an error string instead of a value and never fail the batch.
type BatchResponse struct {
	Results []engine.BatchResult `json:"results"`
}

// handleBatch runs the request on the pool's batch tier: it queues
// behind sweep jobs rather than crowd out interactive endpoints, and
// admission control sheds it outright once the batch backlog crosses
// the watermark.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	if len(req.Requests) == 0 {
		writeErr(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Requests) > s.cfg.MaxBatchItems {
		writeErr(w, http.StatusBadRequest, "batch has %d requests, limit %d",
			len(req.Requests), s.cfg.MaxBatchItems)
		return
	}
	if backlog := s.jobs.BatchBacklog(); backlog >= int64(s.cfg.ShedWatermark) {
		s.shed503(w, ErrCodeOverloaded, map[string]any{
			"batch_backlog": backlog, "watermark": s.cfg.ShedWatermark,
		}, "batch tier saturated (%d queued >= watermark %d); retry later", backlog, s.cfg.ShedWatermark)
		return
	}
	// Gate grid- and scale-shaped tasks before any simulation runs,
	// mirroring the sync endpoints' limits; a rejected item's error
	// lands in its own slot, so one oversized request cannot fail its
	// siblings.
	var results []engine.BatchResult
	serr := s.submitWait(r.Context(), engine.TierBatch, func(ctx context.Context) {
		results = engine.RunBatchFiltered(ctx, s.eng, req.Requests, 0, func(t engine.Task) error {
			switch tt := t.(type) {
			case tasks.DVFSExploreTask:
				if n := tt.GridCells(); n > maxDVFSCells {
					return fmt.Errorf("grid has %d cells, limit %d", n, maxDVFSCells)
				}
				if tt.Spec.Scale > maxDVFSScale {
					return fmt.Errorf("scale %d out of [0,%d]", tt.Spec.Scale, maxDVFSScale)
				}
			case tasks.DVFSRunTask:
				if tt.Req.Scale > maxDVFSScale {
					return fmt.Errorf("scale %d out of [0,%d]", tt.Req.Scale, maxDVFSScale)
				}
			default:
				if g, ok := t.(interface{ GridCells() int }); ok {
					if n := g.GridCells(); n > s.cfg.MaxGridCells {
						return fmt.Errorf("grid has %d cells, limit %d", n, s.cfg.MaxGridCells)
					}
				}
			}
			return nil
		})
	})
	switch {
	case errors.Is(serr, engine.ErrPoolFull):
		s.shed503(w, ErrCodeOverloaded, map[string]any{"queue": "batch"}, "batch queue full; retry later")
		return
	case errors.Is(serr, engine.ErrPoolDraining):
		s.shed503(w, ErrCodeDraining, nil, "shutting down; retry against another node")
		return
	case serr != nil:
		writeErr(w, http.StatusServiceUnavailable, "%s", serr)
		return
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: results})
}

// ---- Async sweep endpoints ----

// SweepAccepted is the POST /v1/sweeps response.
type SweepAccepted struct {
	Job    JobSnapshot `json:"job"`
	Cached bool        `json:"cached"` // an identical spec was already known
}

func (s *Server) handleSweepPost(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	spec, err := req.Spec()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	spec = spec.WithDefaults()
	if err := spec.Check(); err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	if n := len(spec.Cells()); n > s.cfg.MaxGridCells {
		writeErr(w, http.StatusBadRequest, "grid has %d cells, limit %d", n, s.cfg.MaxGridCells)
		return
	}
	// Admission control: shed NEW work once the batch backlog crosses
	// the watermark. A spec the manager already knows still answers —
	// the dedup hit costs nothing and may well be the client retrying
	// exactly as the earlier 503 told it to.
	if _, known := s.jobs.Get(spec.CanonicalHash()); !known {
		if backlog := s.jobs.BatchBacklog(); backlog >= int64(s.cfg.ShedWatermark) {
			s.shed503(w, ErrCodeOverloaded, map[string]any{
				"batch_backlog": backlog, "watermark": s.cfg.ShedWatermark,
			}, "sweep queue saturated (%d queued >= watermark %d); retry later", backlog, s.cfg.ShedWatermark)
			return
		}
	}
	snap, cached, err := s.jobs.Enqueue(spec)
	switch {
	case errors.Is(err, errDraining):
		s.shed503(w, ErrCodeDraining, nil, "%s", err)
		return
	case errors.Is(err, errQueueFull):
		s.shed503(w, ErrCodeOverloaded, nil, "%s", err)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, "%s", err)
		return
	}
	status := http.StatusAccepted
	if cached {
		status = http.StatusOK
	}
	writeJSON(w, status, SweepAccepted{Job: snap, Cached: cached})
}

// SweepList is the GET /v1/sweeps payload: one page of the job table,
// newest first, with the paging echoed back.
type SweepList struct {
	Jobs   []JobSnapshot `json:"jobs"`
	Total  int           `json:"total"`
	Offset int           `json:"offset"`
	Limit  int           `json:"limit,omitempty"` // 0 = unlimited
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	offset, err := queryInt(r, "offset", 0)
	if err != nil || offset < 0 {
		writeErr(w, http.StatusBadRequest, "bad offset")
		return
	}
	limit, err := queryInt(r, "limit", 0)
	if err != nil || limit < 0 {
		writeErr(w, http.StatusBadRequest, "bad limit (0 = unlimited)")
		return
	}
	all := s.jobs.List()
	total := len(all)
	page := all
	if offset >= len(page) {
		page = nil
	} else {
		page = page[offset:]
	}
	if limit > 0 && len(page) > limit {
		page = page[:limit]
	}
	if page == nil {
		page = []JobSnapshot{} // an empty page is [], never null
	}
	w.Header().Set("X-Total-Count", strconv.Itoa(total))
	writeJSON(w, http.StatusOK, SweepList{Jobs: page, Total: total, Offset: offset, Limit: limit})
}

func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// maxBodyBytes bounds every JSON request body (the header limits from
// Config do not cover bodies): generous for real sweep specs and
// batches, small enough that an unauthenticated POST cannot buffer
// arbitrary memory before validation rejects it.
const maxBodyBytes = 8 << 20

// decodeBody strictly parses a size-capped JSON request body.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// Package service is the long-running HTTP face of the repository: the
// closed-form Section IV analysis, the Table I overhead accounting, the
// Fig. 1 operating-point model and single simulations as cheap synchronous
// endpoints, and the PR-1 parameter-sweep engine behind an async job
// subsystem with checkpoint/resume and result deduplication.
//
// Endpoints (all JSON; errors use the {"error":{"status","message"}}
// envelope):
//
//	GET  /v1/healthz                 liveness
//	GET  /v1/stats                   cache and job counters
//	GET  /v1/capacity                Eq. 1-6 analytics (+ optional Monte Carlo check)
//	GET  /v1/operating-point         Fig. 1 model at a pfail or performance floor
//	GET  /v1/overhead                Table I transistor rows
//	GET  /v1/dvfs                    phase-aware DVFS Pareto explorer (cached by canonical hash)
//	POST /v1/sim                     one simulation run, synchronous
//	POST /v1/sweeps                  enqueue a sweep job (202; idempotent by spec hash)
//	GET  /v1/sweeps                  list jobs
//	GET  /v1/sweeps/{id}             job status and progress
//	GET  /v1/sweeps/{id}/rows        the job's JSONL rows, streamed
//
// Determinism is what makes the serving layer simple: every result is a
// pure function of the request (seeds derive from parameters), so the LRU
// response cache and the sweep-job deduplication need no invalidation.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"time"

	"vccmin/internal/dvfs"
	"vccmin/internal/experiments"
	"vccmin/internal/faults"
	"vccmin/internal/geom"
	"vccmin/internal/power"
	"vccmin/internal/prob"
	"vccmin/internal/sim"
	"vccmin/internal/sweep"
)

// Config sizes the service.
type Config struct {
	// Addr is the listen address for Serve; default ":8780".
	Addr string

	// DataDir holds sweep-job specs and row checkpoints; jobs found there
	// resume on startup. Default "vccmin-serve-data".
	DataDir string

	// Workers bounds concurrently running sweep jobs; default 2. Cell
	// parallelism inside a job is the spec's own Workers field.
	Workers int

	// CacheEntries bounds the synchronous-endpoint LRU; default 512.
	CacheEntries int

	// MaxGridCells rejects sweep specs whose grids exceed it; default 4096.
	MaxGridCells int

	// DrainTimeout bounds the graceful half of shutdown; default 30s.
	DrainTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8780"
	}
	if c.DataDir == "" {
		c.DataDir = "vccmin-serve-data"
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 512
	}
	if c.MaxGridCells <= 0 {
		c.MaxGridCells = 4096
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	return c
}

// Server routes the API over a job manager and a response cache.
type Server struct {
	cfg   Config
	jobs  *Manager
	cache *lruCache
	mux   *http.ServeMux
}

// New builds a server, recovering any jobs checkpointed in the data
// directory.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	jobs, err := NewManager(cfg.DataDir, cfg.Workers)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, jobs: jobs, cache: newLRU(cfg.CacheEntries), mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/capacity", s.handleCapacity)
	s.mux.HandleFunc("GET /v1/operating-point", s.handleOperatingPoint)
	s.mux.HandleFunc("GET /v1/overhead", s.handleOverhead)
	s.mux.HandleFunc("GET /v1/dvfs", s.handleDVFS)
	s.mux.HandleFunc("POST /v1/sim", s.handleSim)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweepPost)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepGet)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/rows", s.handleSweepRows)
	return s, nil
}

// Handler returns the routed HTTP handler (for httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Jobs exposes the job manager (for embedding and tests).
func (s *Server) Jobs() *Manager { return s.jobs }

// Drain stops accepting jobs and waits for in-flight ones, bounded by the
// configured drain timeout.
func (s *Server) Drain(ctx context.Context) error { return s.jobs.Drain(ctx) }

// Close cancels whatever is still running; checkpoints keep it resumable.
func (s *Server) Close() { s.jobs.Close() }

// Serve runs the service at cfg.Addr until ctx is cancelled, then shuts
// down gracefully: stop listening, drain in-flight jobs up to
// cfg.DrainTimeout, cancel the rest (their checkpoints keep them
// resumable).
func Serve(ctx context.Context, cfg Config) error {
	cfg = cfg.withDefaults()
	s, err := New(cfg)
	if err != nil {
		return err
	}
	srv := &http.Server{Addr: cfg.Addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		s.Close()
		return err
	case <-ctx.Done():
	}
	shCtx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
	defer cancel()
	err = srv.Shutdown(shCtx)
	if derr := s.Drain(shCtx); derr != nil && err == nil {
		err = derr
	}
	s.Close()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ---- Error envelope and JSON helpers ----

type errorEnvelope struct {
	Error struct {
		Status  int    `json:"status"`
		Message string `json:"message"`
	} `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	var env errorEnvelope
	env.Error.Status = status
	env.Error.Message = fmt.Sprintf(format, args...)
	writeJSON(w, status, env)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":{"status":500,"message":"encoding response"}}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

// cached serves the computation identified by key through the LRU: a hit
// replays the stored bytes (X-Cache: hit), a miss computes, stores and
// serves them. compute errors are not cached.
func (s *Server) cached(w http.ResponseWriter, key string, compute func() (any, error)) {
	if b, ok := s.cache.get(key); ok {
		w.Header().Set("X-Cache", "hit")
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
		return
	}
	v, err := compute()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "encoding response: %s", err)
		return
	}
	b = append(b, '\n')
	s.cache.put(key, b)
	w.Header().Set("X-Cache", "miss")
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// ---- Query parsing helpers ----

func queryFloat(r *http.Request, name string, def float64) (float64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, v)
	}
	return f, nil
}

func queryInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, v)
	}
	return n, nil
}

func queryGeom(r *http.Request) (geom.Geometry, error) {
	v := r.URL.Query().Get("geom")
	if v == "" {
		return experiments.ReferenceGeometry(), nil
	}
	return geom.Parse(v)
}

// ---- Sync endpoints ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Stats is the /v1/stats response.
type Stats struct {
	Cache CacheStats `json:"cache"`
	Jobs  JobStats   `json:"jobs"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Stats{Cache: s.cache.stats(), Jobs: s.jobs.stats()})
}

// CapacityResponse carries the Section IV closed forms at one (geometry,
// pfail, granularity) point, plus an optional Monte Carlo cross-check.
type CapacityResponse struct {
	Pfail       float64 `json:"pfail"`
	Geometry    string  `json:"geometry"`
	Granularity string  `json:"granularity"`

	ExpectedCapacity        float64 `json:"expected_capacity"`          // Eq. 2 at the granularity
	MeanFaultyBlockFraction float64 `json:"mean_faulty_block_fraction"` // 1 - Eq. 2 per block
	WordDisableFailProb     float64 `json:"word_disable_fail_prob"`     // Eqs. 4-5
	IncrementalWDCapacity   float64 `json:"incremental_wd_capacity"`    // Eq. 6
	BitFixFailProb          float64 `json:"bitfix_fail_prob"`           // extension

	// Monte Carlo cross-check, present when trials > 0 is requested.
	MeasuredCapacity *float64 `json:"measured_capacity,omitempty"`
	Trials           int      `json:"trials,omitempty"`
}

func (s *Server) handleCapacity(w http.ResponseWriter, r *http.Request) {
	// workers only changes Monte Carlo scheduling, never the estimate, so
	// it is dropped from the cache key: the same query at a different
	// worker count replays the cached bytes instead of recomputing.
	// (Values.Encode sorts keys, which also canonicalizes param order.)
	// It is validated HERE, before the cache is consulted, so a malformed
	// value is a 400 regardless of cache state, and clamped to the CPU
	// count — beyond that extra workers only cost goroutines and sampler
	// buffers (each owns a full fault map), which an unauthenticated
	// request must not be able to multiply.
	workers, err := queryInt(r, "workers", 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	q := r.URL.Query()
	q.Del("workers")
	s.cached(w, "capacity?"+q.Encode(), func() (any, error) {
		pfail, err := queryFloat(r, "pfail", 0.001)
		if err != nil {
			return nil, err
		}
		if pfail < 0 || pfail >= 1 {
			return nil, fmt.Errorf("pfail %v out of [0,1)", pfail)
		}
		g, err := queryGeom(r)
		if err != nil {
			return nil, err
		}
		granName := r.URL.Query().Get("gran")
		if granName == "" {
			granName = "block"
		}
		gran, err := prob.ParseGranularity(granName)
		if err != nil {
			return nil, err
		}
		trials, err := queryInt(r, "trials", 0)
		if err != nil {
			return nil, err
		}
		seed, err := queryInt(r, "seed", 1)
		if err != nil {
			return nil, err
		}
		resp := CapacityResponse{
			Pfail:                   pfail,
			Geometry:                fmt.Sprintf("%dx%dx%d", g.SizeBytes, g.Ways, g.BlockBytes),
			Granularity:             gran.String(),
			ExpectedCapacity:        prob.GranularityCapacity(g, gran, pfail),
			MeanFaultyBlockFraction: prob.MeanFaultyBlockFraction(g.CellsPerBlock(), pfail),
			WordDisableFailProb:     prob.WordDisableWholeCacheFailProb(g.Blocks(), g.BlockBytes, 32, 8, pfail),
			IncrementalWDCapacity:   prob.IncrementalWDCapacity(g.DataBits(), 8, 32, pfail),
			BitFixFailProb:          prob.BitFixWholeCacheFailProb(g.Blocks(), g.DataBits(), 8, 1, pfail),
		}
		if trials > 0 {
			if trials > 10_000 {
				return nil, fmt.Errorf("trials %d too large (max 10000)", trials)
			}
			// workers bounds the Monte Carlo pool (0 = all CPUs); the
			// estimate itself is identical for every worker count.
			mc := experiments.MeasuredBlockDisableCapacityWorkers(g, pfail, trials, int64(seed), workers)
			resp.MeasuredCapacity = &mc
			resp.Trials = trials
		}
		return resp, nil
	})
}

// OperatingPointResponse is the Fig. 1 model's answer at one query point.
type OperatingPointResponse struct {
	Pfail          float64 `json:"pfail,omitempty"`
	MinPerformance float64 `json:"min_performance,omitempty"`

	Voltage              float64 `json:"voltage"`
	Frequency            float64 `json:"frequency"`
	Power                float64 `json:"power"`
	Performance          float64 `json:"performance"`
	Zone                 string  `json:"zone"`
	EnergyPerInstruction float64 `json:"energy_per_instruction"`
}

func (s *Server) handleOperatingPoint(w http.ResponseWriter, r *http.Request) {
	s.cached(w, "operating-point?"+r.URL.RawQuery, func() (any, error) {
		m := power.Default()
		if v := r.URL.Query().Get("min_performance"); v != "" {
			minPerf, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("bad min_performance %q", v)
			}
			choice, ok := m.MostEfficientPoint(minPerf, 400)
			if !ok {
				return nil, fmt.Errorf("no operating point delivers performance >= %v", minPerf)
			}
			return OperatingPointResponse{
				MinPerformance:       minPerf,
				Voltage:              choice.Point.Voltage,
				Frequency:            choice.Point.Freq,
				Power:                choice.Point.Power,
				Performance:          choice.Point.Performance,
				Zone:                 choice.Point.Zone.String(),
				EnergyPerInstruction: choice.EnergyPerWork,
			}, nil
		}
		pfail, err := queryFloat(r, "pfail", 0.001)
		if err != nil {
			return nil, err
		}
		if pfail <= 0 || pfail >= 1 {
			return nil, fmt.Errorf("pfail %v out of (0,1)", pfail)
		}
		p := m.OperatingPointForPfail(pfail)
		return OperatingPointResponse{
			Pfail:                pfail,
			Voltage:              p.Voltage,
			Frequency:            p.Freq,
			Power:                p.Power,
			Performance:          p.Performance,
			Zone:                 p.Zone.String(),
			EnergyPerInstruction: power.EnergyPerWork(p),
		}, nil
	})
}

// OverheadRow is one Table I row with the scheme spelled out.
type OverheadRow struct {
	Scheme             string `json:"scheme"`
	TagTransistors     int    `json:"tag_transistors"`
	DisableTransistors int    `json:"disable_transistors"`
	VictimTransistors  int    `json:"victim_transistors"`
	AlignmentNetwork   bool   `json:"alignment_network"`
	Total              int    `json:"total"`
}

func (s *Server) handleOverhead(w http.ResponseWriter, r *http.Request) {
	s.cached(w, "overhead", func() (any, error) {
		rows := experiments.TableI()
		out := make([]OverheadRow, 0, len(rows))
		for _, row := range rows {
			out = append(out, OverheadRow{
				Scheme:             row.Scheme.String(),
				TagTransistors:     row.TagTransistors,
				DisableTransistors: row.DisableTransistors,
				VictimTransistors:  row.VictimTransistors,
				AlignmentNetwork:   row.AlignmentNetwork,
				Total:              row.Total,
			})
		}
		return map[string]any{"rows": out}, nil
	})
}

// SimRequest is the POST /v1/sim body. String fields use the CLI forms
// (scheme "block", victim "10t", mode "low"); zero values take the
// reference defaults.
type SimRequest struct {
	Benchmark    string  `json:"benchmark"`
	Mode         string  `json:"mode"`
	Scheme       string  `json:"scheme"`
	Victim       string  `json:"victim"`
	Geometry     string  `json:"geometry"`
	Pfail        float64 `json:"pfail"`
	Seed         int64   `json:"seed"`
	Instructions int     `json:"instructions"`
}

// SimResponse summarizes one simulation run.
type SimResponse struct {
	Benchmark     string  `json:"benchmark"`
	Mode          string  `json:"mode"`
	Scheme        string  `json:"scheme"`
	Victim        string  `json:"victim"`
	Pfail         float64 `json:"pfail"`
	Seed          int64   `json:"seed"`
	Instructions  int     `json:"instructions"`
	IPC           float64 `json:"ipc"`
	ICapacity     float64 `json:"i_capacity"`
	DCapacity     float64 `json:"d_capacity"`
	VictimHitRate float64 `json:"victim_hit_rate"`
}

func (req SimRequest) options() (sim.Options, error) {
	opts := sim.Options{Benchmark: req.Benchmark, Seed: req.Seed, Instructions: req.Instructions}
	if opts.Benchmark == "" {
		return opts, fmt.Errorf("benchmark is required")
	}
	switch req.Mode {
	case "", "low", "low-voltage":
		opts.Mode = sim.LowVoltage
	case "high", "high-voltage":
		opts.Mode = sim.HighVoltage
	default:
		return opts, fmt.Errorf("bad mode %q (want low or high)", req.Mode)
	}
	var err error
	if req.Scheme != "" {
		if opts.Scheme, err = sim.ParseScheme(req.Scheme); err != nil {
			return opts, err
		}
	}
	if req.Victim != "" {
		if opts.Victim, err = sim.ParseVictim(req.Victim); err != nil {
			return opts, err
		}
	}
	g := experiments.ReferenceGeometry()
	if req.Geometry != "" {
		if g, err = geom.Parse(req.Geometry); err != nil {
			return opts, err
		}
		machine := sim.Reference(opts.Mode)
		machine.L1Size, machine.L1Ways, machine.L1BlockBytes = g.SizeBytes, g.Ways, g.BlockBytes
		opts.Machine = &machine
	}
	if req.Pfail < 0 || req.Pfail >= 1 {
		return opts, fmt.Errorf("pfail %v out of [0,1)", req.Pfail)
	}
	// Fault-dependent schemes at low voltage need a fault-map pair; draw
	// it deterministically from the request's pfail and seed on the
	// sparse fast path.
	if opts.Mode == sim.LowVoltage && (opts.Scheme == sim.BlockDisable ||
		opts.Scheme == sim.IncrementalWordDisable || opts.Scheme == sim.BitFix) {
		pair := faults.GeneratePairSparse(g, g, 32, req.Pfail, faults.DeriveSeed(req.Seed, "serve-sim-pair"))
		opts.Pair = &pair
	}
	return opts, nil
}

func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	var req SimRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	key, err := json.Marshal(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	s.cached(w, "sim?"+string(key), func() (any, error) {
		opts, err := req.options()
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(opts)
		if err != nil {
			return nil, err
		}
		return SimResponse{
			Benchmark:     req.Benchmark,
			Mode:          opts.Mode.String(),
			Scheme:        opts.Scheme.String(),
			Victim:        opts.Victim.String(),
			Pfail:         req.Pfail,
			Seed:          req.Seed,
			Instructions:  opts.Instructions,
			IPC:           res.IPC,
			ICapacity:     res.ICapacity,
			DCapacity:     res.DCapacity,
			VictimHitRate: res.VictimHitRate,
		}, nil
	})
}

// ---- Async sweep endpoints ----

// SweepRequest is the POST /v1/sweeps body: the sweep.Spec grid with the
// enum axes spelled as CLI-style strings. Empty axes take the engine's
// reference defaults.
type SweepRequest struct {
	Pfails        []float64 `json:"pfails"`
	Geometries    []string  `json:"geometries"`
	Schemes       []string  `json:"schemes"`
	Victims       []string  `json:"victims"`
	Granularities []string  `json:"granularities"`
	Policies      []string  `json:"policies"`
	DVFSWorkloads []string  `json:"dvfs_workloads"`
	Benchmarks    []string  `json:"benchmarks"`
	Trials        int       `json:"trials"`
	Instructions  int       `json:"instructions"`
	BaseSeed      int64     `json:"base_seed"`
	Workers       int       `json:"workers"`
}

// Spec converts the request into the engine's spec form.
func (r SweepRequest) Spec() (sweep.Spec, error) {
	spec := sweep.Spec{
		Pfails:        r.Pfails,
		DVFSWorkloads: r.DVFSWorkloads,
		Benchmarks:    r.Benchmarks,
		Trials:        r.Trials,
		Instructions:  r.Instructions,
		BaseSeed:      r.BaseSeed,
		Workers:       r.Workers,
	}
	var err error
	for _, g := range r.Geometries {
		gg, err := geom.Parse(g)
		if err != nil {
			return spec, err
		}
		spec.Geometries = append(spec.Geometries, gg)
	}
	for _, v := range r.Schemes {
		sc, err := sim.ParseScheme(v)
		if err != nil {
			return spec, err
		}
		spec.Schemes = append(spec.Schemes, sc)
	}
	for _, v := range r.Victims {
		vk, err := sim.ParseVictim(v)
		if err != nil {
			return spec, err
		}
		spec.Victims = append(spec.Victims, vk)
	}
	for _, v := range r.Granularities {
		gr, err := prob.ParseGranularity(v)
		if err != nil {
			return spec, err
		}
		spec.Granularities = append(spec.Granularities, gr)
	}
	for _, v := range r.Policies {
		p, err := dvfs.ParsePolicy(v)
		if err != nil {
			return spec, err
		}
		spec.Policies = append(spec.Policies, p)
	}
	return spec, err
}

// SweepAccepted is the POST /v1/sweeps response.
type SweepAccepted struct {
	Job    JobSnapshot `json:"job"`
	Cached bool        `json:"cached"` // an identical spec was already known
}

func (s *Server) handleSweepPost(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	spec, err := req.Spec()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	spec = spec.WithDefaults()
	if err := spec.Check(); err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	if n := len(spec.Cells()); n > s.cfg.MaxGridCells {
		writeErr(w, http.StatusBadRequest, "grid has %d cells, limit %d", n, s.cfg.MaxGridCells)
		return
	}
	snap, cached, err := s.jobs.Enqueue(spec)
	switch {
	case errors.Is(err, errDraining):
		writeErr(w, http.StatusServiceUnavailable, "%s", err)
		return
	case errors.Is(err, errQueueFull):
		writeErr(w, http.StatusServiceUnavailable, "%s", err)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, "%s", err)
		return
	}
	status := http.StatusAccepted
	if cached {
		status = http.StatusOK
	}
	writeJSON(w, status, SweepAccepted{Job: snap, Cached: cached})
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.List()})
}

func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleSweepRows streams the job's checkpoint as JSONL. For a running job
// this is the flushed in-order prefix — a live progress feed.
func (s *Server) handleSweepRows(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.jobs.Get(id); !ok {
		writeErr(w, http.StatusNotFound, "no job %q", id)
		return
	}
	f, err := os.Open(s.jobs.RowsPath(id))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			// Queued job that has not flushed a row yet: an empty stream.
			w.Header().Set("Content-Type", "application/x-ndjson")
			return
		}
		writeErr(w, http.StatusInternalServerError, "%s", err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	io.Copy(w, f)
}

// decodeBody strictly parses a JSON request body.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// Package service is the long-running HTTP face of the repository: a
// thin adapter layer over the content-addressed compute engine. Every
// handler — the Section IV analysis, the Table I overhead accounting,
// the Fig. 1 operating-point model, single simulations, the DVFS Pareto
// explorer and the heterogeneous batch endpoint — constructs the same
// typed tasks the CLIs construct and executes them through one
// engine.Engine: an in-memory LRU fronting a content-addressed on-disk
// store (surviving restarts alongside the sweep checkpoints), with
// singleflight deduplication of concurrent identical requests. Sweeps
// additionally run as async jobs with checkpoint/resume.
//
// Endpoints (all JSON; errors use the {"error":{"status","message"}}
// envelope; wrong methods get 405 with an Allow header):
//
//	GET  /v1/healthz                 liveness
//	GET  /v1/stats                   build version, per-kind engine stats, cache and job counters
//	GET  /v1/capacity                Eq. 1-6 analytics (+ optional Monte Carlo check)
//	GET  /v1/operating-point         Fig. 1 model at a pfail or performance floor
//	GET  /v1/overhead                Table I transistor rows
//	GET  /v1/dvfs                    phase-aware DVFS Pareto explorer
//	POST /v1/sim                     one simulation run, synchronous
//	POST /v1/batch                   heterogeneous task list, shared dedup, answered in order
//	POST /v1/sweeps                  enqueue a sweep job (202; idempotent by spec hash)
//	GET  /v1/sweeps                  list jobs
//	GET  /v1/sweeps/{id}             job status and progress
//	GET  /v1/sweeps/{id}/rows        the job's JSONL rows, streamed
//
// Determinism is what makes the serving layer simple: every result is a
// pure function of the request (seeds derive from parameters), so
// neither store tier nor the sweep-job deduplication needs invalidation.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"vccmin/internal/buildinfo"
	"vccmin/internal/engine"
	"vccmin/internal/tasks"
)

// Config sizes the service.
type Config struct {
	// Addr is the listen address for Serve; default ":8780".
	Addr string

	// DataDir holds sweep-job specs, row checkpoints and the engine's
	// content-addressed result store (under results/). Jobs found there
	// resume on startup; results found there serve without recompute.
	// Default "vccmin-serve-data".
	DataDir string

	// Workers bounds concurrently running sweep jobs; default 2. Cell
	// parallelism inside a job is the spec's own Workers field.
	Workers int

	// CacheEntries bounds the engine's in-memory result tier; default 512.
	CacheEntries int

	// MaxGridCells rejects sweep specs whose grids exceed it; default 4096.
	MaxGridCells int

	// MaxBatchItems bounds one POST /v1/batch request; default 64.
	MaxBatchItems int

	// DrainTimeout bounds the graceful half of shutdown; default 30s.
	DrainTimeout time.Duration

	// ReadHeaderTimeout bounds how long a connection may dribble its
	// request header (slowloris hardening); default 10s.
	ReadHeaderTimeout time.Duration

	// MaxHeaderBytes bounds a request's header block; default 1 MiB.
	MaxHeaderBytes int
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8780"
	}
	if c.DataDir == "" {
		c.DataDir = "vccmin-serve-data"
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 512
	}
	if c.MaxGridCells <= 0 {
		c.MaxGridCells = 4096
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 64
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.ReadHeaderTimeout <= 0 {
		c.ReadHeaderTimeout = 10 * time.Second
	}
	if c.MaxHeaderBytes <= 0 {
		c.MaxHeaderBytes = 1 << 20
	}
	return c
}

// Re-exported task shapes, so the HTTP surface and the task layer are
// visibly the same types.
type (
	// CapacityResponse is the GET /v1/capacity payload.
	CapacityResponse = tasks.CapacityResponse
	// OperatingPointResponse is the GET /v1/operating-point payload.
	OperatingPointResponse = tasks.OperatingPointResponse
	// OverheadRow is one Table I row of the GET /v1/overhead payload.
	OverheadRow = tasks.OverheadRow
	// SimRequest is the POST /v1/sim body.
	SimRequest = tasks.SimRequest
	// SimResponse is the POST /v1/sim payload.
	SimResponse = tasks.SimResponse
	// SweepRequest is the POST /v1/sweeps body.
	SweepRequest = tasks.SweepRequest
	// DVFSResponse is the GET /v1/dvfs payload.
	DVFSResponse = tasks.DVFSResponse
)

// Server routes the API over the compute engine and the sweep-job
// manager.
type Server struct {
	cfg  Config
	jobs *Manager
	eng  *engine.Engine
	mux  *http.ServeMux
}

// New builds a server: the compute engine over <DataDir>/results (so
// previously computed results replay across restarts) and the job
// manager over the sweep checkpoints in DataDir.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	eng, err := engine.New(engine.Options{
		MemEntries: cfg.CacheEntries,
		Dir:        filepath.Join(cfg.DataDir, "results"),
	})
	if err != nil {
		return nil, err
	}
	jobs, err := NewManager(cfg.DataDir, cfg.Workers)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, jobs: jobs, eng: eng, mux: http.NewServeMux()}
	s.routes()
	return s, nil
}

// routes registers every endpoint plus, per path, a method-less
// fallback that answers any other verb with 405 and an Allow header
// (the stdlib mux would otherwise reply with a bare text error).
func (s *Server) routes() {
	type route struct {
		method, path string
		h            http.HandlerFunc
	}
	table := []route{
		{"GET", "/v1/healthz", s.handleHealthz},
		{"GET", "/v1/stats", s.handleStats},
		{"GET", "/v1/capacity", s.handleCapacity},
		{"GET", "/v1/operating-point", s.handleOperatingPoint},
		{"GET", "/v1/overhead", s.handleOverhead},
		{"GET", "/v1/dvfs", s.handleDVFS},
		{"POST", "/v1/sim", s.handleSim},
		{"POST", "/v1/batch", s.handleBatch},
		{"POST", "/v1/sweeps", s.handleSweepPost},
		{"GET", "/v1/sweeps", s.handleSweepList},
		{"GET", "/v1/sweeps/{id}", s.handleSweepGet},
		{"GET", "/v1/sweeps/{id}/rows", s.handleSweepRows},
	}
	allowed := map[string][]string{}
	for _, r := range table {
		s.mux.HandleFunc(r.method+" "+r.path, r.h)
		allowed[r.path] = append(allowed[r.path], r.method)
	}
	for path, methods := range allowed {
		allow := strings.Join(methods, ", ")
		s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Allow", allow)
			writeErr(w, http.StatusMethodNotAllowed, "method %s not allowed on %s (allow: %s)",
				r.Method, r.URL.Path, allow)
		})
	}
}

// Handler returns the routed HTTP handler (for httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Jobs exposes the job manager (for embedding and tests).
func (s *Server) Jobs() *Manager { return s.jobs }

// Engine exposes the compute engine (for embedding and tests).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Drain stops accepting jobs and waits for in-flight ones, bounded by the
// configured drain timeout.
func (s *Server) Drain(ctx context.Context) error { return s.jobs.Drain(ctx) }

// Close cancels whatever is still running; checkpoints keep it resumable.
func (s *Server) Close() { s.jobs.Close() }

// Serve runs the service at cfg.Addr until ctx is cancelled, then shuts
// down gracefully: stop listening, drain in-flight jobs up to
// cfg.DrainTimeout, cancel the rest (their checkpoints keep them
// resumable).
func Serve(ctx context.Context, cfg Config) error {
	cfg = cfg.withDefaults()
	s, err := New(cfg)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Addr:              cfg.Addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: cfg.ReadHeaderTimeout,
		MaxHeaderBytes:    cfg.MaxHeaderBytes,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		s.Close()
		return err
	case <-ctx.Done():
	}
	shCtx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
	defer cancel()
	err = srv.Shutdown(shCtx)
	if derr := s.Drain(shCtx); derr != nil && err == nil {
		err = derr
	}
	s.Close()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ---- Error envelope and JSON helpers ----

type errorEnvelope struct {
	Error struct {
		Status  int    `json:"status"`
		Message string `json:"message"`
	} `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	var env errorEnvelope
	env.Error.Status = status
	env.Error.Message = fmt.Sprintf(format, args...)
	writeJSON(w, status, env)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":{"status":500,"message":"encoding response"}}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

// runTask executes one task through the engine and writes its stored
// bytes, with X-Cache reporting which tier answered ("miss" = computed
// now, "hit" = memory, "disk" = the on-disk store, e.g. after a
// restart, "inflight" = deduplicated onto a concurrent identical
// request). Task errors are never cached; bad-input errors answer 400,
// while internal encode failures are 500 and the requester's own
// cancellation 503 (retryable, not a client mistake).
func (s *Server) runTask(w http.ResponseWriter, r *http.Request, t engine.Task) {
	res, err := s.eng.Do(r.Context(), t)
	switch {
	case errors.Is(err, engine.ErrEncoding):
		writeErr(w, http.StatusInternalServerError, "%s", err)
		return
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeErr(w, http.StatusServiceUnavailable, "%s", err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	w.Header().Set("X-Cache", string(res.Source))
	w.Header().Set("Content-Type", "application/json")
	// Two writes, not an append: the stored bytes are shared across
	// concurrent requests and appending could scribble a newline into
	// another handler's in-flight response.
	w.Write(res.Bytes)
	w.Write([]byte{'\n'})
}

// ---- Query parsing helpers ----

func queryFloat(r *http.Request, name string, def float64) (float64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, v)
	}
	return f, nil
}

func queryInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, v)
	}
	return n, nil
}

// ---- Sync endpoints ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Stats is the /v1/stats response: the running build, the engine's
// per-kind counters, the memory tier's aggregate view and the job
// counters.
type Stats struct {
	Version string                      `json:"version"`
	Cache   CacheStats                  `json:"cache"`
	Engine  map[string]engine.KindStats `json:"engine"`
	Jobs    JobStats                    `json:"jobs"`
}

// CacheStats is the memory tier's aggregate counters.
type CacheStats = engine.CacheStats

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Stats{
		Version: buildinfo.String(),
		Cache:   s.eng.MemStats(),
		Engine:  s.eng.Stats(),
		Jobs:    s.jobs.stats(),
	})
}

func (s *Server) handleCapacity(w http.ResponseWriter, r *http.Request) {
	var req tasks.CapacityRequest
	pfail, err := queryFloat(r, "pfail", 0.001)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	req.Pfail = &pfail
	req.Geometry = r.URL.Query().Get("geom")
	req.Granularity = r.URL.Query().Get("gran")
	if req.Trials, err = queryInt(r, "trials", 0); err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	if req.Seed, err = queryInt(r, "seed", 1); err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	// workers only changes Monte Carlo scheduling, never the estimate;
	// the task excludes it from the canonical hash, so the same query at
	// a different worker count replays the stored bytes. It is still
	// validated here so a malformed value is a 400 regardless of cache
	// state.
	if req.Workers, err = queryInt(r, "workers", 0); err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	t, err := tasks.NewCapacityTask(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	s.runTask(w, r, t)
}

func (s *Server) handleOperatingPoint(w http.ResponseWriter, r *http.Request) {
	var req tasks.OperatingPointRequest
	if v := r.URL.Query().Get("min_performance"); v != "" {
		minPerf, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad min_performance %q", v)
			return
		}
		req.MinPerformance = &minPerf
	} else {
		pfail, err := queryFloat(r, "pfail", 0.001)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%s", err)
			return
		}
		req.Pfail = &pfail
	}
	t, err := tasks.NewOperatingPointTask(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	s.runTask(w, r, t)
}

func (s *Server) handleOverhead(w http.ResponseWriter, r *http.Request) {
	s.runTask(w, r, tasks.OverheadTask{})
}

func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	var req SimRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	t, err := tasks.NewSimTask(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	s.runTask(w, r, t)
}

// ---- Batch endpoint ----

// BatchRequest is the POST /v1/batch body: a heterogeneous list of task
// requests executed through the engine with shared deduplication.
type BatchRequest struct {
	Requests []engine.BatchItem `json:"requests"`
}

// BatchResponse answers the items in request order; per-item failures
// carry an error string instead of a value and never fail the batch.
type BatchResponse struct {
	Results []engine.BatchResult `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	if len(req.Requests) == 0 {
		writeErr(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Requests) > s.cfg.MaxBatchItems {
		writeErr(w, http.StatusBadRequest, "batch has %d requests, limit %d",
			len(req.Requests), s.cfg.MaxBatchItems)
		return
	}
	// Gate grid- and scale-shaped tasks before any simulation runs,
	// mirroring the sync endpoints' limits; a rejected item's error
	// lands in its own slot, so one oversized request cannot fail its
	// siblings.
	results := engine.RunBatchFiltered(r.Context(), s.eng, req.Requests, 0, func(t engine.Task) error {
		switch tt := t.(type) {
		case tasks.DVFSExploreTask:
			if n := tt.GridCells(); n > maxDVFSCells {
				return fmt.Errorf("grid has %d cells, limit %d", n, maxDVFSCells)
			}
			if tt.Spec.Scale > maxDVFSScale {
				return fmt.Errorf("scale %d out of [0,%d]", tt.Spec.Scale, maxDVFSScale)
			}
		case tasks.DVFSRunTask:
			if tt.Req.Scale > maxDVFSScale {
				return fmt.Errorf("scale %d out of [0,%d]", tt.Req.Scale, maxDVFSScale)
			}
		default:
			if g, ok := t.(interface{ GridCells() int }); ok {
				if n := g.GridCells(); n > s.cfg.MaxGridCells {
					return fmt.Errorf("grid has %d cells, limit %d", n, s.cfg.MaxGridCells)
				}
			}
		}
		return nil
	})
	writeJSON(w, http.StatusOK, BatchResponse{Results: results})
}

// ---- Async sweep endpoints ----

// SweepAccepted is the POST /v1/sweeps response.
type SweepAccepted struct {
	Job    JobSnapshot `json:"job"`
	Cached bool        `json:"cached"` // an identical spec was already known
}

func (s *Server) handleSweepPost(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	spec, err := req.Spec()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	spec = spec.WithDefaults()
	if err := spec.Check(); err != nil {
		writeErr(w, http.StatusBadRequest, "%s", err)
		return
	}
	if n := len(spec.Cells()); n > s.cfg.MaxGridCells {
		writeErr(w, http.StatusBadRequest, "grid has %d cells, limit %d", n, s.cfg.MaxGridCells)
		return
	}
	snap, cached, err := s.jobs.Enqueue(spec)
	switch {
	case errors.Is(err, errDraining):
		writeErr(w, http.StatusServiceUnavailable, "%s", err)
		return
	case errors.Is(err, errQueueFull):
		writeErr(w, http.StatusServiceUnavailable, "%s", err)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, "%s", err)
		return
	}
	status := http.StatusAccepted
	if cached {
		status = http.StatusOK
	}
	writeJSON(w, status, SweepAccepted{Job: snap, Cached: cached})
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.List()})
}

func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleSweepRows streams the job's checkpoint as JSONL. For a running job
// this is the flushed in-order prefix — a live progress feed.
func (s *Server) handleSweepRows(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.jobs.Get(id); !ok {
		writeErr(w, http.StatusNotFound, "no job %q", id)
		return
	}
	f, err := os.Open(s.jobs.RowsPath(id))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			// Queued job that has not flushed a row yet: an empty stream.
			w.Header().Set("Content-Type", "application/x-ndjson")
			return
		}
		writeErr(w, http.StatusInternalServerError, "%s", err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	io.Copy(w, f)
}

// maxBodyBytes bounds every JSON request body (the header limits from
// Config do not cover bodies): generous for real sweep specs and
// batches, small enough that an unauthenticated POST cannot buffer
// arbitrary memory before validation rejects it.
const maxBodyBytes = 8 << 20

// decodeBody strictly parses a size-capped JSON request body.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

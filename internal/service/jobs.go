package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vccmin/internal/engine"
	"vccmin/internal/sweep"
)

// The async job subsystem. A job is one sweep.Spec execution; its identity
// is the spec's canonical hash, so enqueueing an identical spec twice
// yields the same job — the second POST is a cache hit that costs nothing.
// Execution runs on the engine package's bounded worker Pool (the pool
// this manager used to implement itself, folded into the engine layer).
//
// Jobs survive restarts through two files per job in the data directory:
//
//	<id>.spec.json   the spec, written before the job is first queued
//	<id>.rows.jsonl  the row checkpoint, appended in cell order
//	<id>.done.json   the final snapshot, written only on success
//
// A manager starting over an existing directory re-registers finished
// jobs from their done markers and re-enqueues unfinished ones; the sweep
// engine's ResumeFile path then skips every cell already in the row
// checkpoint, so a kill mid-sweep costs at most one torn line.

// JobStatus is a job's lifecycle state.
type JobStatus string

// Job lifecycle: queued → running → done | failed. A job interrupted by
// shutdown returns to queued (its checkpoint keeps it resumable).
const (
	JobQueued  JobStatus = "queued"
	JobRunning JobStatus = "running"
	JobDone    JobStatus = "done"
	JobFailed  JobStatus = "failed"
)

// JobSnapshot is a point-in-time public view of a job.
type JobSnapshot struct {
	ID     string    `json:"id"`
	Status JobStatus `json:"status"`

	// Resumed reports that the job recovered a prior checkpoint (after a
	// restart or a duplicate enqueue of an interrupted job).
	Resumed bool `json:"resumed,omitempty"`

	TotalCells int `json:"total_cells"`
	ShardCells int `json:"shard_cells"`
	Computed   int `json:"computed"`
	Skipped    int `json:"skipped"` // cells recovered from the checkpoint, not recomputed

	// TornBytes counts checkpoint bytes dropped on resume (a final line
	// torn by a kill mid-write); almost always zero.
	TornBytes int64 `json:"torn_bytes,omitempty"`

	Error string `json:"error,omitempty"`

	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
}

type job struct {
	id   string
	spec sweep.Spec

	mu   sync.Mutex
	snap JobSnapshot
}

func (j *job) snapshot() JobSnapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snap
}

func (j *job) update(f func(*JobSnapshot)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	f(&j.snap)
}

// Manager owns the job table and the on-disk checkpoints; execution
// runs on the batch tier of the engine's two-tier worker pool, and the
// hub broadcasts per-job progress to the streaming endpoint's
// subscribers.
type Manager struct {
	dir  string
	pool *engine.Pool
	hub  *hub
	now  func() time.Time

	mu   sync.RWMutex
	jobs map[string]*job

	dedupHits atomic.Uint64
}

// NewManager starts a batch-only worker pool over the data directory,
// creating it if needed, re-registering finished jobs and re-enqueueing
// unfinished ones found there.
func NewManager(dir string, workers int) (*Manager, error) {
	return NewManagerTiered(dir, workers, 0, 0)
}

// NewManagerTiered is NewManager over a two-tier pool: batchWorkers
// dual workers run sweep jobs (and may serve interactive work when
// idle), while interactiveWorkers additional workers are reserved for
// the interactive tier the service's synchronous endpoints submit to —
// so saturating the sweep queue can never starve a sync request.
func NewManagerTiered(dir string, batchWorkers, interactiveWorkers, interactiveBacklog int) (*Manager, error) {
	if dir == "" {
		return nil, fmt.Errorf("service: job manager needs a data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	specs, err := filepath.Glob(filepath.Join(dir, "*.spec.json"))
	if err != nil {
		return nil, err
	}
	m := &Manager{
		dir: dir,
		// The batch backlog holds every recovered job plus fresh headroom,
		// so recovery can never block on a full queue.
		pool: engine.NewTieredPool(interactiveWorkers, batchWorkers, interactiveBacklog, len(specs)+1024),
		hub:  newHub(),
		now:  time.Now,
		jobs: make(map[string]*job),
	}
	if err := m.recover(specs); err != nil {
		m.pool.Close()
		return nil, err
	}
	return m, nil
}

// Pool exposes the manager's two-tier worker pool; the service submits
// its synchronous compute on the interactive tier.
func (m *Manager) Pool() *engine.Pool { return m.pool }

// BatchBacklog returns the number of queued (not yet running) batch
// items — the admission watermark's input.
func (m *Manager) BatchBacklog() int64 { return m.pool.QueuedTier(engine.TierBatch) }

// recover walks the spec files found in the data directory: jobs with a
// done or failed marker are re-registered in that terminal state, the
// rest are re-enqueued as resumed jobs.
func (m *Manager) recover(specs []string) error {
	for _, path := range specs {
		id := strings.TrimSuffix(filepath.Base(path), ".spec.json")
		var spec sweep.Spec
		if err := readJSONFile(path, &spec); err != nil {
			return fmt.Errorf("service: recovering job %s: %w", id, err)
		}
		j := &job{id: id, spec: spec}
		terminal := false
		for _, marker := range []string{m.donePath(id), m.failedPath(id)} {
			var snap JobSnapshot
			err := readJSONFile(marker, &snap)
			if err == nil {
				j.snap = snap
				terminal = true
				break
			}
			if !errors.Is(err, os.ErrNotExist) {
				return fmt.Errorf("service: recovering job %s: %w", id, err)
			}
		}
		if terminal {
			m.jobs[id] = j
			continue
		}
		j.snap = JobSnapshot{ID: id, Status: JobQueued, Resumed: true, CreatedAt: m.now().UTC()}
		m.jobs[id] = j
		if err := m.pool.Submit(func(ctx context.Context) { m.run(ctx, j) }); err != nil {
			return fmt.Errorf("service: recovering job %s: %w", id, err)
		}
	}
	return nil
}

// Enqueue registers the spec for execution and returns its job. If an
// identical spec (same canonical hash) is already known — queued, running
// or finished — that job is returned with cached=true and nothing new is
// scheduled: deterministic seeds make every sweep result reusable.
func (m *Manager) Enqueue(spec sweep.Spec) (JobSnapshot, bool, error) {
	id := spec.CanonicalHash()

	m.mu.Lock()
	if j, ok := m.jobs[id]; ok {
		m.mu.Unlock()
		m.dedupHits.Add(1)
		return j.snapshot(), true, nil
	}
	if m.pool.Draining() {
		m.mu.Unlock()
		return JobSnapshot{}, false, errDraining
	}
	j := &job{id: id, spec: spec}
	j.snap = JobSnapshot{ID: id, Status: JobQueued, CreatedAt: m.now().UTC()}
	m.jobs[id] = j
	m.mu.Unlock()

	if err := writeJSONFile(m.specPath(id), spec); err != nil {
		m.mu.Lock()
		delete(m.jobs, id)
		m.mu.Unlock()
		return JobSnapshot{}, false, err
	}
	if err := m.pool.Submit(func(ctx context.Context) { m.run(ctx, j) }); err != nil {
		m.mu.Lock()
		delete(m.jobs, id)
		m.mu.Unlock()
		os.Remove(m.specPath(id))
		switch {
		case errors.Is(err, engine.ErrPoolDraining):
			return JobSnapshot{}, false, errDraining
		case errors.Is(err, engine.ErrPoolFull):
			return JobSnapshot{}, false, errQueueFull
		}
		return JobSnapshot{}, false, err
	}
	return j.snapshot(), false, nil
}

var (
	errDraining  = errors.New("service: shutting down, not accepting jobs")
	errQueueFull = errors.New("service: job queue full")
)

// Get returns the job's current snapshot.
func (m *Manager) Get(id string) (JobSnapshot, bool) {
	m.mu.RLock()
	j, ok := m.jobs[id]
	m.mu.RUnlock()
	if !ok {
		return JobSnapshot{}, false
	}
	return j.snapshot(), true
}

// List returns a snapshot of every known job, newest first.
func (m *Manager) List() []JobSnapshot {
	m.mu.RLock()
	jobs := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.RUnlock()
	out := make([]JobSnapshot, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.snapshot())
	}
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].CreatedAt.After(out[k-1].CreatedAt); k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// RowsPath returns the job's JSONL checkpoint file path.
func (m *Manager) RowsPath(id string) string { return filepath.Join(m.dir, id+".rows.jsonl") }

func (m *Manager) specPath(id string) string   { return filepath.Join(m.dir, id+".spec.json") }
func (m *Manager) donePath(id string) string   { return filepath.Join(m.dir, id+".done.json") }
func (m *Manager) failedPath(id string) string { return filepath.Join(m.dir, id+".failed.json") }

// run executes one job through the checkpointed resume path, so an
// interrupted execution is recoverable cell-for-cell. ctx is the worker
// pool's context; Close cancels it. Every flushed row and every status
// change notifies the hub, waking the job's stream subscribers.
func (m *Manager) run(ctx context.Context, j *job) {
	started := m.now().UTC()
	j.update(func(s *JobSnapshot) {
		s.Status = JobRunning
		s.StartedAt = &started
	})
	m.hub.notify(j.id)
	res, err := sweep.ResumeFile(j.spec, m.RowsPath(j.id), sweep.RunOptions{
		Context: ctx,
		OnProgress: func(p sweep.Progress) {
			j.update(func(s *JobSnapshot) {
				s.TotalCells = p.TotalCells
				s.ShardCells = p.ShardCells
				s.Skipped = p.Skipped
				s.Computed = p.Flushed
			})
			m.hub.notify(j.id)
		},
	})
	finished := m.now().UTC()
	switch {
	case err == nil:
		j.update(func(s *JobSnapshot) {
			s.Status = JobDone
			s.TotalCells = res.TotalCells
			s.ShardCells = res.ShardCells
			s.Computed = res.Computed
			s.Skipped = res.Skipped
			s.Resumed = s.Resumed || res.Skipped > 0
			s.TornBytes = res.ResumeTornBytes
			s.FinishedAt = &finished
		})
		if werr := writeJSONFile(m.donePath(j.id), j.snapshot()); werr != nil {
			// The job finished; a missing marker only costs a re-resume
			// (all cells skipped) after the next restart.
			j.update(func(s *JobSnapshot) { s.Error = "done marker: " + werr.Error() })
		}
	case errors.Is(err, context.Canceled):
		// Shutdown, not failure: the checkpoint keeps the job resumable
		// and the next manager over this directory re-enqueues it.
		j.update(func(s *JobSnapshot) { s.Status = JobQueued })
	default:
		j.update(func(s *JobSnapshot) {
			s.Status = JobFailed
			s.Error = err.Error()
			s.FinishedAt = &finished
		})
		// Persist the failure so a restart re-registers it instead of
		// silently resurrecting the job and re-running a deterministic
		// failure after every start.
		if werr := writeJSONFile(m.failedPath(j.id), j.snapshot()); werr != nil {
			j.update(func(s *JobSnapshot) { s.Error += "; failed marker: " + werr.Error() })
		}
	}
	// The final wake-up: subscribers re-read the snapshot, drain the
	// checkpoint's tail and close their streams on the terminal states.
	m.hub.notify(j.id)
}

// Drain stops accepting new jobs and waits for the queue to empty and the
// running jobs to finish, or for ctx to expire — the graceful half of
// shutdown. Call Close afterwards either way.
func (m *Manager) Drain(ctx context.Context) error { return m.pool.Drain(ctx) }

// Close cancels any still-running jobs (their checkpoints keep them
// resumable) and waits for the workers to exit.
func (m *Manager) Close() { m.pool.Close() }

// JobStats is the jobs section of the /v1/stats response.
type JobStats struct {
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
	Done      int    `json:"done"`
	Failed    int    `json:"failed"`
	DedupHits uint64 `json:"dedup_hits"`
}

func (m *Manager) stats() JobStats {
	st := JobStats{DedupHits: m.dedupHits.Load()}
	for _, s := range m.List() {
		switch s.Status {
		case JobQueued:
			st.Queued++
		case JobRunning:
			st.Running++
		case JobDone:
			st.Done++
		case JobFailed:
			st.Failed++
		}
	}
	return st
}

func readJSONFile(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}

// writeJSONFile writes atomically (temp file + rename) so a kill mid-write
// never leaves a half-written spec or done marker.
func writeJSONFile(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

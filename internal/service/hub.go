package service

import "sync"

// hub is the per-job broadcast layer under the streaming endpoint: the
// sweep row writer notifies it after every flushed row (and at every
// job state change), and any number of stream handlers wait on it for
// "something happened to job <id>" wake-ups. It carries no row data —
// the in-order JSONL checkpoint file is the single source of truth the
// readers tail — so a notification can never be lost, reordered or
// partially delivered: waking up and re-reading the file is always
// correct, and a spurious wake-up costs one empty read.
//
// The broadcast primitive is a channel per job that notify closes and
// replaces. A subscriber grabs the current channel BEFORE reading the
// file; any append that happens after its read closes that same
// channel, so the subscriber can never sleep through a row.
type hub struct {
	mu     sync.Mutex
	topics map[string]chan struct{}
}

func newHub() *hub {
	return &hub{topics: make(map[string]chan struct{})}
}

// watch returns the job's current broadcast channel; it is closed at
// the next notify for that job.
func (h *hub) watch(id string) <-chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch, ok := h.topics[id]
	if !ok {
		ch = make(chan struct{})
		h.topics[id] = ch
	}
	return ch
}

// notify wakes every watcher of the job by closing the current channel
// and installing a fresh one. Notifying a job nobody watches only costs
// the map lookup; the table holds at most one small entry per job ever
// watched or notified, the same order as the job table itself.
func (h *hub) notify(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ch, ok := h.topics[id]; ok {
		close(ch)
	}
	h.topics[id] = make(chan struct{})
}

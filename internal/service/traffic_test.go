package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// newTrafficServer builds a server with explicit traffic-hardening
// knobs (the default test server disables them).
func newTrafficServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.DataDir = t.TempDir()
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 16
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func doGet(t *testing.T, url, apiKey string) *http.Response {
	t.Helper()
	req, _ := http.NewRequest("GET", url, nil)
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestRateLimit429 is the acceptance path: past the burst, a client
// gets 429 with a Retry-After header and the rate_limited envelope,
// while other clients and the liveness probe keep flowing.
func TestRateLimit429(t *testing.T) {
	// 1 token per 10s with burst 2: the third request cannot sneak a
	// refilled token even on a slow runner.
	_, ts := newTrafficServer(t, Config{RateLimit: 0.1, RateBurst: 2})

	for i := 0; i < 2; i++ {
		resp := doGet(t, ts.URL+"/v1/overhead", "client-a")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("request %d within burst: status %d", i+1, resp.StatusCode)
		}
	}
	resp := doGet(t, ts.URL+"/v1/overhead", "client-a")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst request: status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want a positive integer of seconds", resp.Header.Get("Retry-After"))
	}
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != ErrCodeRateLimited || env.Error.Details["retry_after_seconds"] == nil {
		t.Fatalf("envelope %+v, want code rate_limited with retry details", env.Error)
	}

	// Another client's bucket is untouched.
	resp2 := doGet(t, ts.URL+"/v1/overhead", "client-b")
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("different client: status %d, want 200", resp2.StatusCode)
	}

	// Liveness is exempt no matter how hot the client is.
	for i := 0; i < 5; i++ {
		resp := doGet(t, ts.URL+"/v1/healthz", "client-a")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("healthz rate limited (status %d)", resp.StatusCode)
		}
	}
}

// TestAdmissionShed is the load-shedding acceptance path: once the
// batch backlog crosses the watermark, new batch-shaped work gets 503 +
// Retry-After while interactive endpoints and dedup hits keep flowing.
func TestAdmissionShed(t *testing.T) {
	s, ts := newTrafficServer(t, Config{Workers: 1, ShedWatermark: 1})

	// Occupy the lone batch worker with a long job...
	var run SweepAccepted
	if resp := postJSON(t, ts.URL+"/v1/sweeps", slowSpec(), &run); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST: status %d", resp.StatusCode)
	}
	// ...and park a second job in the queue to reach the watermark.
	second := tinySpec()
	second.BaseSeed = 1001
	if resp := postJSON(t, ts.URL+"/v1/sweeps", second, &SweepAccepted{}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second POST: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.jobs.BatchBacklog() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second job never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// New sweep work is shed.
	third := tinySpec()
	third.BaseSeed = 1002
	b, _ := json.Marshal(third)
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var env errorEnvelope
	json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || env.Error.Code != ErrCodeOverloaded {
		t.Fatalf("shed POST: status %d code %q, want 503 overloaded", resp.StatusCode, env.Error.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed 503 without Retry-After")
	}

	// Batch requests are shed by the same watermark.
	batchBody := []byte(`{"requests":[{"kind":"overhead"}]}`)
	resp, err = http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(batchBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("batch under saturation: status %d, want 503", resp.StatusCode)
	}

	// A duplicate of a known spec still answers: the dedup hit costs
	// nothing, and is likely the very retry the 503 asked for.
	var dup SweepAccepted
	if resp := postJSON(t, ts.URL+"/v1/sweeps", slowSpec(), &dup); resp.StatusCode != http.StatusOK || !dup.Cached {
		t.Fatalf("dedup POST under saturation: status %d cached %v, want 200 true", resp.StatusCode, dup.Cached)
	}

	// Interactive endpoints keep flowing on their own tier.
	var capResp CapacityResponse
	if resp := getJSON(t, ts.URL+"/v1/capacity?pfail=0.001", &capResp); resp.StatusCode != 200 {
		t.Fatalf("interactive GET under batch saturation: status %d", resp.StatusCode)
	}

	// The shed counter surfaced in /v1/stats.
	var st Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Traffic.Shed < 2 {
		t.Fatalf("stats report %d shed, want >= 2", st.Traffic.Shed)
	}
}

// TestSweepListPagination covers ?offset/?limit and X-Total-Count on
// the job listing.
func TestSweepListPagination(t *testing.T) {
	_, ts := newTestServer(t)

	for seed := int64(1); seed <= 3; seed++ {
		spec := tinySpec()
		spec.BaseSeed = seed
		var acc SweepAccepted
		postJSON(t, ts.URL+"/v1/sweeps", spec, &acc)
		waitDone(t, ts.URL, acc.Job.ID)
	}

	var page SweepList
	resp := getJSON(t, ts.URL+"/v1/sweeps?offset=1&limit=1", &page)
	if resp.Header.Get("X-Total-Count") != "3" {
		t.Fatalf("X-Total-Count %q, want 3", resp.Header.Get("X-Total-Count"))
	}
	if len(page.Jobs) != 1 || page.Total != 3 || page.Offset != 1 {
		t.Fatalf("page %+v, want 1 job of 3 at offset 1", page)
	}

	var all SweepList
	getJSON(t, ts.URL+"/v1/sweeps", &all)
	if len(all.Jobs) != 3 {
		t.Fatalf("unpaginated list has %d jobs, want 3", len(all.Jobs))
	}
	if all.Jobs[1].ID != page.Jobs[0].ID {
		t.Fatal("offset=1 page does not match the full listing's second entry")
	}

	var empty SweepList
	getJSON(t, ts.URL+"/v1/sweeps?offset=10", &empty)
	if len(empty.Jobs) != 0 || empty.Total != 3 {
		t.Fatalf("past-the-end page %+v, want empty with total 3", empty)
	}

	var env errorEnvelope
	if resp := getJSON(t, ts.URL+"/v1/sweeps?offset=-1", &env); resp.StatusCode != 400 {
		t.Fatalf("bad offset: status %d, want 400", resp.StatusCode)
	}
}

// TestRowsPagination covers ?offset/?limit and X-Total-Count on the row
// download.
func TestRowsPagination(t *testing.T) {
	_, ts := newTestServer(t)

	var acc SweepAccepted
	postJSON(t, ts.URL+"/v1/sweeps", tinySpec(), &acc)
	id := acc.Job.ID
	waitDone(t, ts.URL, id)

	resp, full := getBody(t, ts.URL+"/v1/sweeps/"+id+"/rows")
	if resp.Header.Get("X-Total-Count") != "4" {
		t.Fatalf("X-Total-Count %q, want 4", resp.Header.Get("X-Total-Count"))
	}
	lines := splitLines(full)
	if len(lines) != 4 {
		t.Fatalf("%d rows, want 4", len(lines))
	}

	resp, page := getBody(t, ts.URL+"/v1/sweeps/"+id+"/rows?offset=1&limit=2")
	if resp.Header.Get("X-Total-Count") != "4" {
		t.Fatalf("paged X-Total-Count %q, want 4", resp.Header.Get("X-Total-Count"))
	}
	if want := lines[1] + lines[2]; string(page) != want {
		t.Fatalf("offset=1&limit=2 returned %q, want %q", page, want)
	}

	resp, tail := getBody(t, ts.URL+"/v1/sweeps/"+id+"/rows?offset=10")
	if len(tail) != 0 || resp.Header.Get("X-Total-Count") != "4" {
		t.Fatalf("past-the-end rows page: body %q count %q", tail, resp.Header.Get("X-Total-Count"))
	}
}

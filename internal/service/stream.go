package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"
)

// The live-delivery layer: GET /v1/sweeps/{id}/stream pushes a job's
// rows as they flush instead of making clients poll /rows and
// re-download the whole set. The hub wakes the handler after every
// flushed row; the in-order JSONL checkpoint file is the data source,
// so what a subscriber receives is byte-for-byte what /rows would
// serve — streaming is a delivery optimization, never a second format.
//
// Two wire formats:
//
//   - SSE (default): each row is one event whose id is the row's
//     0-based stream index; a reconnecting client sends Last-Event-ID
//     and resumes at the next row. Job completion is a final "done"
//     (or "failed") event carrying the job snapshot.
//   - ?format=jsonl: a chunked application/x-ndjson body that grows
//     until the job finishes — for curl and pipeline consumers; resume
//     via ?offset=N (rows to skip).

// streamPollInterval bounds how stale a stream can get if a wake-up is
// ever missed, and doubles as the SSE keep-alive cadence.
const streamPollInterval = 500 * time.Millisecond

func (s *Server) handleSweepStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.jobs.Get(id); !ok {
		writeErr(w, http.StatusNotFound, "no job %q", id)
		return
	}
	format := r.URL.Query().Get("format")
	if format != "" && format != "sse" && format != "jsonl" {
		writeErr(w, http.StatusBadRequest, "bad format %q (want sse or jsonl)", format)
		return
	}
	jsonl := format == "jsonl"

	// Resume point: ?offset= wins, else the SSE Last-Event-ID header
	// (the id of the last row received, so delivery restarts after it).
	start, err := queryInt(r, "offset", -1)
	if err != nil || (start < 0 && start != -1) {
		writeErr(w, http.StatusBadRequest, "bad offset")
		return
	}
	if start == -1 {
		start = 0
		if lei := r.Header.Get("Last-Event-ID"); lei != "" {
			last, err := strconv.Atoi(lei)
			if err != nil || last < 0 {
				writeErr(w, http.StatusBadRequest, "bad Last-Event-ID %q", lei)
				return
			}
			start = last + 1
		}
	}

	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	if jsonl {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	}
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	tail := &rowTailer{path: s.jobs.RowsPath(id)}
	defer tail.close()

	next := 0 // absolute index of the next row to read from the file
	tick := time.NewTicker(streamPollInterval)
	defer tick.Stop()
	for {
		// Order matters: grab the wake-up channel BEFORE the status and
		// the file reads. A row flushed (or a terminal transition) after
		// our read closes this same channel, so we can never sleep
		// through it.
		wake := s.jobs.hub.watch(id)
		snap, _ := s.jobs.Get(id)
		terminal := snap.Status == JobDone || snap.Status == JobFailed

		for {
			line, err := tail.nextLine()
			if err != nil || line == nil {
				if err != nil {
					// Mid-stream failure: the status line is long gone, so
					// just terminate the body; the client sees a truncated
					// stream and retries with its resume point.
					return
				}
				break
			}
			if next >= start {
				if jsonl {
					_, err = w.Write(line)
				} else {
					_, err = fmt.Fprintf(w, "id: %d\ndata: %s\n\n", next, bytes.TrimRight(line, "\n"))
				}
				if err != nil {
					return
				}
			}
			next++
		}
		fl.Flush()

		// The writer flushes every row before the status turns terminal,
		// and we re-read the file after observing the status — so at this
		// point a terminal job has been drained completely.
		if terminal {
			if !jsonl {
				event := "done"
				if snap.Status == JobFailed {
					event = "failed"
				}
				b, err := json.Marshal(snap)
				if err != nil {
					return
				}
				// The final event repeats the last row id: a client that
				// reconnects from it resumes past every row and receives
				// just the terminal event again — an idempotent close.
				if next > 0 {
					fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", event, next-1, b)
				} else {
					fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
				}
				fl.Flush()
			}
			return
		}

		select {
		case <-wake:
		case <-tick.C:
			if !jsonl {
				// Keep-alive comment so idle connections (queued job, slow
				// cells) are distinguishable from dead ones.
				if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
					return
				}
				fl.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// rowTailer incrementally reads complete JSONL lines from a growing
// checkpoint file. It tolerates the file not existing yet (a queued job
// that has not flushed a row) and a partial final line (a row mid-
// write): both read as "nothing more yet", and the partial line is
// buffered until its newline arrives.
type rowTailer struct {
	path    string
	f       *os.File
	br      *bufio.Reader
	pending []byte
}

// nextLine returns the next complete line (including its newline), nil
// when no complete line is available yet, or a non-nil error for real
// I/O failures. Blank lines are skipped, exactly as sweep.ReadRows
// skips them.
func (t *rowTailer) nextLine() ([]byte, error) {
	if t.f == nil {
		f, err := os.Open(t.path)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return nil, nil
			}
			return nil, err
		}
		t.f = f
		t.br = bufio.NewReader(f)
	}
	for {
		chunk, err := t.br.ReadBytes('\n')
		t.pending = append(t.pending, chunk...)
		if err == io.EOF {
			// A partial tail stays pending; the file will grow under us
			// and the next read continues where this one stopped.
			return nil, nil
		}
		if err != nil {
			return nil, err
		}
		line := t.pending
		t.pending = nil
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		return line, nil
	}
}

func (t *rowTailer) close() {
	if t.f != nil {
		t.f.Close()
	}
}

// ---- Paginated row access ----

// handleSweepRows streams the job's checkpoint as JSONL. For a running
// job this is the flushed in-order prefix — a point-in-time progress
// snapshot (use /stream for live delivery). ?offset= skips rows and
// ?limit= caps them, so a million-row job can be read in pages; the
// X-Total-Count header always carries the current complete-row count.
func (s *Server) handleSweepRows(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.jobs.Get(id); !ok {
		writeErr(w, http.StatusNotFound, "no job %q", id)
		return
	}
	offset, err := queryInt(r, "offset", 0)
	if err != nil || offset < 0 {
		writeErr(w, http.StatusBadRequest, "bad offset")
		return
	}
	limit, err := queryInt(r, "limit", 0)
	if err != nil || limit < 0 {
		writeErr(w, http.StatusBadRequest, "bad limit (0 = unlimited)")
		return
	}

	path := s.jobs.RowsPath(id)
	total, err := countRows(path)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%s", err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Total-Count", strconv.Itoa(total))
	if total == 0 {
		return
	}

	f, err := os.Open(path)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%s", err)
		return
	}
	defer f.Close()
	// Emit at most the rows counted above: rows flushed between the two
	// passes would otherwise make the body disagree with X-Total-Count.
	emit := total - offset
	if emit < 0 {
		emit = 0
	}
	if limit > 0 && emit > limit {
		emit = limit
	}
	br := bufio.NewReader(f)
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	for skipped, emitted := 0, 0; emitted < emit; {
		line, err := br.ReadBytes('\n')
		if err != nil {
			return // torn tail or I/O error: the complete prefix was served
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if skipped < offset {
			skipped++
			continue
		}
		if _, err := bw.Write(line); err != nil {
			return
		}
		emitted++
	}
}

// countRows counts the complete non-blank lines of a checkpoint file; a
// missing file counts zero. The count is what X-Total-Count reports and
// what stream event ids index.
func countRows(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	n := 0
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			// EOF with a partial tail: the incomplete row is not counted,
			// matching the resume logic's torn-line tolerance.
			if err == io.EOF {
				return n, nil
			}
			return 0, err
		}
		if len(bytes.TrimSpace(line)) > 0 {
			n++
		}
	}
}

package core

import (
	"math"
	"math/rand"
	"testing"

	"vccmin/internal/faults"
	"vccmin/internal/prob"
)

func TestBitFixCleanMapFits(t *testing.T) {
	m := faults.NewEmpty(refGeom, 32)
	res := EvaluateBitFix(m, ReferenceBitFix())
	if !res.Fit || res.FailedGroups != 0 {
		t.Errorf("clean map should fit: %+v", res)
	}
	if res.TotalGroups != refGeom.Blocks()*32 {
		t.Errorf("TotalGroups = %d, want %d (32 groups of 8 pairs per 512-bit line)",
			res.TotalGroups, refGeom.Blocks()*32)
	}
	if res.LowVoltageGeom.SizeBytes != 24*1024 || res.LowVoltageGeom.Ways != 6 {
		t.Errorf("low-voltage geometry = %v, want 24KB 6-way", res.LowVoltageGeom)
	}
}

func TestBitFixBoundary(t *testing.T) {
	cfg := ReferenceBitFix()
	m := faults.NewEmpty(refGeom, 32)
	// One faulty pair in group 0 of block 0: repairable.
	m.Blocks[0].PairMask[0] = 0b1
	m.Blocks[0].Cells = 1
	if res := EvaluateBitFix(m, cfg); !res.Fit {
		t.Error("one faulty pair per group must be repairable")
	}
	// Two faulty pairs in the same 8-pair group: whole-cache failure.
	m.Blocks[0].PairMask[0] = 0b11
	m.Blocks[0].Cells = 2
	res := EvaluateBitFix(m, cfg)
	if res.Fit || res.FailedGroups != 1 {
		t.Errorf("two pairs in one group must fail: %+v", res)
	}
	// Two faulty pairs in different groups: repairable again.
	m.Blocks[0].PairMask[0] = 1 | 1<<8
	if res := EvaluateBitFix(m, cfg); !res.Fit {
		t.Error("one pair per group across two groups must be repairable")
	}
}

func TestBitFixIgnoresTagFaults(t *testing.T) {
	m := faults.NewEmpty(refGeom, 32)
	for i := range m.Blocks {
		m.Blocks[i].TagFaulty = true
		m.Blocks[i].Cells = 1
	}
	if res := EvaluateBitFix(m, ReferenceBitFix()); !res.Fit {
		t.Error("bit-fix tag array is robust; tag faults must not fail the cache")
	}
}

func TestBitFixFailureRateMatchesAnalysis(t *testing.T) {
	// At pfail = 2e-4 the analytic whole-cache-failure probability is
	// measurable with modest trials.
	const pfail = 2e-4
	const trials = 200
	cfg := ReferenceBitFix()
	rng := rand.New(rand.NewSource(41))
	failures := 0
	for i := 0; i < trials; i++ {
		m := faults.Generate(refGeom, 32, pfail, rng)
		if !EvaluateBitFix(m, cfg).Fit {
			failures++
		}
	}
	want := prob.BitFixWholeCacheFailProb(refGeom.Blocks(), refGeom.DataBits(), cfg.PairsPerGroup, cfg.RepairsPerGroup, pfail)
	got := float64(failures) / trials
	sd := math.Sqrt(want * (1 - want) / trials)
	if math.Abs(got-want) > 4*sd+0.02 {
		t.Errorf("MC bit-fix failure rate = %v, analysis predicts %v", got, want)
	}
}

func TestBitFixResultString(t *testing.T) {
	m := faults.NewEmpty(refGeom, 32)
	s := EvaluateBitFix(m, ReferenceBitFix()).String()
	if s == "" {
		t.Error("empty String()")
	}
}

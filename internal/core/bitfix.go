package core

import (
	"fmt"

	"vccmin/internal/faults"
	"vccmin/internal/geom"
)

// BitFixConfig fixes the bit-fix scheme's parameters (Section II's other
// mechanism, analyzed here with the paper's Section IV methodology). A
// data line is divided into fix groups of PairsPerGroup 2-bit pairs, each
// repairing at most RepairsPerGroup defective pairs; a quarter of the
// ways store the fix bits, and the merging logic adds latency.
type BitFixConfig struct {
	PairsPerGroup      int
	RepairsPerGroup    int
	ExtraLatencyCycles int
}

// ReferenceBitFix returns a bit-fix configuration in the spirit of
// Wilkerson et al.: one repair per 16-bit group, two extra cycles for the
// patching network.
func ReferenceBitFix() BitFixConfig {
	return BitFixConfig{PairsPerGroup: 8, RepairsPerGroup: 1, ExtraLatencyCycles: 2}
}

// BitFixResult classifies a fault map for the bit-fix scheme.
type BitFixResult struct {
	Fit            bool
	FailedGroups   int
	TotalGroups    int
	LowVoltageWays int           // ways left for data (3/4 of the array)
	LowVoltageGeom geom.Geometry // the 75%-capacity configuration
}

// EvaluateBitFix checks every fix group of every line: more than
// RepairsPerGroup faulty pairs in any group is a whole-cache failure. Tag
// faults are ignored (robust-cell tag array, as for word-disabling).
func EvaluateBitFix(m *faults.Map, cfg BitFixConfig) BitFixResult {
	g := m.Geom
	groupsPerLine := g.DataBits() / 2 / cfg.PairsPerGroup
	res := BitFixResult{Fit: true, TotalGroups: g.Blocks() * groupsPerLine}
	for set := 0; set < g.Sets(); set++ {
		for way := 0; way < g.Ways; way++ {
			b := m.At(set, way)
			for grp := 0; grp < groupsPerLine; grp++ {
				if b.FaultyPairsIn(grp*cfg.PairsPerGroup, cfg.PairsPerGroup) > cfg.RepairsPerGroup {
					res.Fit = false
					res.FailedGroups++
				}
			}
		}
	}
	res.LowVoltageWays = g.Ways * 3 / 4
	lv := g
	lv.SizeBytes = g.SizeBytes * 3 / 4
	lv.Ways = res.LowVoltageWays
	res.LowVoltageGeom = lv
	return res
}

// String summarizes the result.
func (r BitFixResult) String() string {
	return fmt.Sprintf("bit-fix: fit=%v (%d/%d groups failed), low-voltage %v",
		r.Fit, r.FailedGroups, r.TotalGroups, r.LowVoltageGeom)
}

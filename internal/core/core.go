// Package core implements the paper's contribution: the cache-disabling
// schemes that trade capacity for reliable operation below Vcc-min.
//
//   - Block-disabling (Section III): every block containing a faulty cell —
//     in tag, valid or data — is disabled for low-voltage operation,
//     leaving each set with a variable number of enabled ways.
//   - Word-disabling (Section II, Wilkerson et al.): pairs of physical
//     blocks merge into one logical block, halving capacity and
//     associativity and adding one cycle of alignment-network latency;
//     a cache is unfit ("whole cache failure") if any 8-word subblock has
//     more than 4 faulty words.
//   - Incremental word-disabling (Section IV.C): fault-free pairs run at
//     full capacity, repairable pairs at half, unrepairable pairs are
//     disabled.
package core

import (
	"fmt"
	"math/bits"

	"vccmin/internal/faults"
	"vccmin/internal/geom"
)

// WayMask is a per-set bitmask of enabled ways; bit w set means way w may
// be allocated at low voltage.
type WayMask uint64

// Enabled reports whether way w is enabled.
func (m WayMask) Enabled(w int) bool { return m>>uint(w)&1 == 1 }

// Count returns the number of enabled ways.
func (m WayMask) Count() int { return bits.OnesCount64(uint64(m)) }

// AllWays returns the mask with the first n ways enabled.
func AllWays(n int) WayMask { return WayMask(1)<<uint(n) - 1 }

// BlockDisableMap is the per-set way-enable state block-disabling derives
// from a fault map. It is what the cache consults at low voltage.
type BlockDisableMap struct {
	Geom geom.Geometry
	Sets []WayMask
}

// BuildBlockDisable classifies every block of the fault map: a block is
// disabled when any of its cells (tag, valid or data) is faulty. The
// classification reads the map's word-packed faulty-block bitset a whole
// set at a time rather than probing block records individually.
func BuildBlockDisable(m *faults.Map) *BlockDisableMap {
	g := m.Geom
	d := &BlockDisableMap{Geom: g, Sets: make([]WayMask, g.Sets())}
	all := AllWays(g.Ways)
	for set := 0; set < g.Sets(); set++ {
		d.Sets[set] = all &^ WayMask(m.FaultyWays(set))
	}
	return d
}

// FullyEnabled returns a BlockDisableMap with every way of every set
// enabled — the high-voltage (or fault-free) configuration.
func FullyEnabled(g geom.Geometry) *BlockDisableMap {
	d := &BlockDisableMap{Geom: g, Sets: make([]WayMask, g.Sets())}
	all := AllWays(g.Ways)
	for i := range d.Sets {
		d.Sets[i] = all
	}
	return d
}

// Enabled reports whether (set, way) may be allocated.
func (d *BlockDisableMap) Enabled(set, way int) bool { return d.Sets[set].Enabled(way) }

// EnabledBlocks returns the total number of enabled blocks.
func (d *BlockDisableMap) EnabledBlocks() int {
	n := 0
	for _, m := range d.Sets {
		n += m.Count()
	}
	return n
}

// CapacityFraction returns enabled blocks / total blocks.
func (d *BlockDisableMap) CapacityFraction() float64 {
	return float64(d.EnabledBlocks()) / float64(d.Geom.Blocks())
}

// WaysHistogram returns how many sets have exactly w enabled ways, for
// w = 0..Ways. Block-disabling's variable associativity per set is the
// paper's explanation for its occasional worst-case losses.
func (d *BlockDisableMap) WaysHistogram() []int {
	h := make([]int, d.Geom.Ways+1)
	for _, m := range d.Sets {
		h[m.Count()]++
	}
	return h
}

// MinSetWays returns the smallest number of enabled ways in any set.
func (d *BlockDisableMap) MinSetWays() int {
	min := d.Geom.Ways
	for _, m := range d.Sets {
		if c := m.Count(); c < min {
			min = c
		}
	}
	return min
}

// String summarizes the map.
func (d *BlockDisableMap) String() string {
	return fmt.Sprintf("block-disable %s: %d/%d blocks enabled (%.1f%%), min set ways %d",
		d.Geom, d.EnabledBlocks(), d.Geom.Blocks(), 100*d.CapacityFraction(), d.MinSetWays())
}

// WordDisableConfig fixes the word-disable scheme's parameters: the
// paper uses 32-bit words and 8-word subblocks (at most 4 faulty words
// tolerated per subblock).
type WordDisableConfig struct {
	WordBits           int
	WordsPerSubblock   int
	ExtraLatencyCycles int // the alignment network: +1 cycle at both voltages
}

// ReferenceWordDisable returns the paper's word-disable configuration.
func ReferenceWordDisable() WordDisableConfig {
	return WordDisableConfig{WordBits: 32, WordsPerSubblock: 8, ExtraLatencyCycles: 1}
}

// WordDisableResult classifies a fault map for the word-disable scheme.
type WordDisableResult struct {
	Fit             bool // false = whole cache failure: unfit for low voltage
	FailedSubblocks int  // subblocks with more than half their words faulty
	TotalSubblocks  int
	LowVoltageGeom  geom.Geometry // the merged cache: half size, half ways
}

// EvaluateWordDisable checks every subblock of every block: more than
// wordsPerSubblock/2 faulty words in any subblock renders the whole cache
// defective (Section II). Tag faults are ignored: the word-disable tag
// array uses robust 10T cells.
func EvaluateWordDisable(m *faults.Map, cfg WordDisableConfig) WordDisableResult {
	g := m.Geom
	subPerBlock := m.WordsPerBlock() / cfg.WordsPerSubblock
	res := WordDisableResult{
		Fit:            true,
		TotalSubblocks: g.Blocks() * subPerBlock,
	}
	for set := 0; set < g.Sets(); set++ {
		for way := 0; way < g.Ways; way++ {
			for s := 0; s < subPerBlock; s++ {
				n := m.SubblockFaultyWords(set, way, s*cfg.WordsPerSubblock, cfg.WordsPerSubblock)
				if n > cfg.WordsPerSubblock/2 {
					res.Fit = false
					res.FailedSubblocks++
				}
			}
		}
	}
	lv := g
	lv.SizeBytes /= 2
	lv.Ways /= 2
	res.LowVoltageGeom = lv
	return res
}

// PairState classifies a block pair under incremental word-disabling.
type PairState int

const (
	PairFullCapacity PairState = iota // fault-free: full capacity at low voltage
	PairHalfCapacity                  // repairable: operates merged at half capacity
	PairDisabled                      // some subblock unrepairable: pair disabled
)

// String implements fmt.Stringer.
func (s PairState) String() string {
	switch s {
	case PairFullCapacity:
		return "full"
	case PairHalfCapacity:
		return "half"
	case PairDisabled:
		return "disabled"
	}
	return fmt.Sprintf("PairState(%d)", int(s))
}

// IncrementalWDResult summarizes incremental word-disabling over a map.
type IncrementalWDResult struct {
	FullPairs, HalfPairs, DisabledPairs int
}

// EvaluateIncrementalWD classifies every (way 2i, way 2i+1) pair of every
// set (Section IV.C). Pairs with no faulty data cells run at full
// capacity; pairs where every subblock is repairable run at half; the rest
// are disabled. Tag faults are ignored (10T tag array), matching Eq. 6
// which uses only data bits.
func EvaluateIncrementalWD(m *faults.Map, cfg WordDisableConfig) IncrementalWDResult {
	g := m.Geom
	subPerBlock := m.WordsPerBlock() / cfg.WordsPerSubblock
	var res IncrementalWDResult
	for set := 0; set < g.Sets(); set++ {
		for p := 0; p < g.Ways/2; p++ {
			w0, w1 := 2*p, 2*p+1
			state := classifyPair(m, cfg, set, w0, w1, subPerBlock)
			switch state {
			case PairFullCapacity:
				res.FullPairs++
			case PairHalfCapacity:
				res.HalfPairs++
			case PairDisabled:
				res.DisabledPairs++
			}
		}
	}
	return res
}

func classifyPair(m *faults.Map, cfg WordDisableConfig, set, w0, w1, subPerBlock int) PairState {
	faultFree := m.At(set, w0).WordMask == 0 && m.At(set, w1).WordMask == 0
	if faultFree {
		return PairFullCapacity
	}
	for _, way := range []int{w0, w1} {
		for s := 0; s < subPerBlock; s++ {
			n := m.SubblockFaultyWords(set, way, s*cfg.WordsPerSubblock, cfg.WordsPerSubblock)
			if n > cfg.WordsPerSubblock/2 {
				return PairDisabled
			}
		}
	}
	return PairHalfCapacity
}

// CapacityFraction returns the incremental scheme's capacity: full pairs
// contribute their whole two blocks, half pairs one block, disabled pairs
// nothing (Eq. 6 realized on a concrete map).
func (r IncrementalWDResult) CapacityFraction() float64 {
	pairs := r.FullPairs + r.HalfPairs + r.DisabledPairs
	if pairs == 0 {
		return 0
	}
	return (float64(r.FullPairs) + 0.5*float64(r.HalfPairs)) / float64(pairs)
}

// VictimUsableEntries applies the paper's 6T victim-cache policy: a 6T
// victim cache at low voltage keeps only its fault-free entries, and the
// paper conservatively evaluates with half the entries usable (Section V:
// analysis at pfail=0.001 predicts a mean of 6.5 faulty entries out of 16;
// the evaluation assumes 8).
func VictimUsableEntries(entries int) int { return entries / 2 }

package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vccmin/internal/faults"
	"vccmin/internal/geom"
	"vccmin/internal/prob"
)

var refGeom = geom.MustNew(32*1024, 8, 64)

func TestWayMask(t *testing.T) {
	m := AllWays(8)
	if m.Count() != 8 {
		t.Errorf("AllWays(8).Count() = %d", m.Count())
	}
	for w := 0; w < 8; w++ {
		if !m.Enabled(w) {
			t.Errorf("way %d should be enabled", w)
		}
	}
	if m.Enabled(8) {
		t.Error("way 8 should not be enabled in an 8-way mask")
	}
	var none WayMask
	if none.Count() != 0 || none.Enabled(0) {
		t.Error("zero mask misbehaves")
	}
}

func TestFullyEnabled(t *testing.T) {
	d := FullyEnabled(refGeom)
	if d.EnabledBlocks() != refGeom.Blocks() {
		t.Errorf("EnabledBlocks = %d, want %d", d.EnabledBlocks(), refGeom.Blocks())
	}
	if d.CapacityFraction() != 1 {
		t.Errorf("capacity = %v, want 1", d.CapacityFraction())
	}
	if d.MinSetWays() != refGeom.Ways {
		t.Errorf("MinSetWays = %d, want %d", d.MinSetWays(), refGeom.Ways)
	}
}

func TestBlockDisableMatchesFaultMap(t *testing.T) {
	m := faults.Generate(refGeom, 32, 0.002, rand.New(rand.NewSource(2)))
	d := BuildBlockDisable(m)
	for set := 0; set < refGeom.Sets(); set++ {
		for way := 0; way < refGeom.Ways; way++ {
			if d.Enabled(set, way) == m.BlockFaulty(set, way) {
				t.Fatalf("set %d way %d: enabled=%v but faulty=%v", set, way, d.Enabled(set, way), m.BlockFaulty(set, way))
			}
		}
	}
	if got, want := d.EnabledBlocks(), refGeom.Blocks()-m.FaultyBlocks(); got != want {
		t.Errorf("EnabledBlocks = %d, want %d", got, want)
	}
	if math.Abs(d.CapacityFraction()-m.CapacityFraction()) > 1e-12 {
		t.Error("capacity fractions disagree between faults.Map and BlockDisableMap")
	}
}

func TestBlockDisableTagFaultDisables(t *testing.T) {
	// A block with only a tag fault must still be disabled (Section III:
	// "a faulty bit in either or both the tag or data").
	m := faults.NewEmpty(refGeom, 32)
	blockIdx := refGeom.BlockIndex(3, 5)
	m.Blocks[blockIdx].TagFaulty = true
	m.Blocks[blockIdx].Cells = 1
	m.ReindexBlocks()
	d := BuildBlockDisable(m)
	if d.Enabled(3, 5) {
		t.Error("block with tag fault should be disabled")
	}
	if d.EnabledBlocks() != refGeom.Blocks()-1 {
		t.Errorf("EnabledBlocks = %d, want %d", d.EnabledBlocks(), refGeom.Blocks()-1)
	}
}

func TestWaysHistogram(t *testing.T) {
	m := faults.Generate(refGeom, 32, 0.001, rand.New(rand.NewSource(9)))
	d := BuildBlockDisable(m)
	h := d.WaysHistogram()
	if len(h) != refGeom.Ways+1 {
		t.Fatalf("histogram has %d bins, want %d", len(h), refGeom.Ways+1)
	}
	sets, blocks := 0, 0
	for w, n := range h {
		sets += n
		blocks += w * n
	}
	if sets != refGeom.Sets() {
		t.Errorf("histogram covers %d sets, want %d", sets, refGeom.Sets())
	}
	if blocks != d.EnabledBlocks() {
		t.Errorf("histogram blocks %d != EnabledBlocks %d", blocks, d.EnabledBlocks())
	}
}

func TestBlockDisableCapacityMatchesEq3Distribution(t *testing.T) {
	// Monte Carlo mean capacity ≈ analytic mean (58% at pfail=0.001), and
	// >50% capacity virtually always.
	const trials = 60
	rng := rand.New(rand.NewSource(13))
	sum := 0.0
	atLeastHalf := 0
	for i := 0; i < trials; i++ {
		d := BuildBlockDisable(faults.Generate(refGeom, 32, 0.001, rng))
		c := d.CapacityFraction()
		sum += c
		if c > 0.5 {
			atLeastHalf++
		}
	}
	mean, _ := prob.CapacityMeanStd(refGeom.Blocks(), refGeom.CellsPerBlock(), 0.001)
	if math.Abs(sum/trials-mean) > 0.01 {
		t.Errorf("MC capacity mean = %v, analytic %v", sum/trials, mean)
	}
	if atLeastHalf != trials {
		t.Errorf("%d/%d maps had <= 50%% capacity; paper: virtually always above", trials-atLeastHalf, trials)
	}
}

func TestWordDisableCleanMapFits(t *testing.T) {
	m := faults.NewEmpty(refGeom, 32)
	res := EvaluateWordDisable(m, ReferenceWordDisable())
	if !res.Fit || res.FailedSubblocks != 0 {
		t.Errorf("clean map should fit: %+v", res)
	}
	if res.TotalSubblocks != refGeom.Blocks()*2 {
		t.Errorf("TotalSubblocks = %d, want %d (two 8-word subblocks per 16-word block)", res.TotalSubblocks, refGeom.Blocks()*2)
	}
	lv := res.LowVoltageGeom
	if lv.SizeBytes != 16*1024 || lv.Ways != 4 {
		t.Errorf("low-voltage geometry = %v, want 16KB 4-way", lv)
	}
}

func TestWordDisableBoundary(t *testing.T) {
	cfg := ReferenceWordDisable()
	// Exactly 4 faulty words in a subblock is tolerable...
	m := faults.NewEmpty(refGeom, 32)
	for w := 0; w < 4; w++ {
		m.Blocks[0].WordMask |= 1 << uint(w)
	}
	m.Blocks[0].Cells = 4
	if res := EvaluateWordDisable(m, cfg); !res.Fit {
		t.Error("4 faulty words in a subblock must be tolerated")
	}
	// ...but 5 is whole-cache failure.
	m.Blocks[0].WordMask |= 1 << 4
	m.Blocks[0].Cells = 5
	res := EvaluateWordDisable(m, cfg)
	if res.Fit {
		t.Error("5 faulty words in one subblock must fail the cache")
	}
	if res.FailedSubblocks != 1 {
		t.Errorf("FailedSubblocks = %d, want 1", res.FailedSubblocks)
	}
}

func TestWordDisableIgnoresTagFaults(t *testing.T) {
	m := faults.NewEmpty(refGeom, 32)
	for i := range m.Blocks {
		m.Blocks[i].TagFaulty = true
		m.Blocks[i].Cells = 3
	}
	if res := EvaluateWordDisable(m, ReferenceWordDisable()); !res.Fit {
		t.Error("word-disable stores tags in 10T cells; tag faults must not fail the cache")
	}
}

func TestWordDisableFailureRateMatchesEq4(t *testing.T) {
	// At pfail = 0.003 the analytic whole-cache-failure probability is
	// large enough to measure with few trials.
	const pfail = 0.003
	const trials = 300
	rng := rand.New(rand.NewSource(17))
	cfg := ReferenceWordDisable()
	failures := 0
	for i := 0; i < trials; i++ {
		m := faults.Generate(refGeom, 32, pfail, rng)
		if !EvaluateWordDisable(m, cfg).Fit {
			failures++
		}
	}
	want := prob.WordDisableWholeCacheFailProb(refGeom.Blocks(), 64, 32, 8, pfail)
	got := float64(failures) / trials
	sd := math.Sqrt(want * (1 - want) / trials)
	if math.Abs(got-want) > 4*sd+0.01 {
		t.Errorf("MC whole-cache-failure rate = %v, Eq.4 predicts %v (±%v)", got, want, 4*sd)
	}
}

func TestIncrementalWDCleanMap(t *testing.T) {
	m := faults.NewEmpty(refGeom, 32)
	res := EvaluateIncrementalWD(m, ReferenceWordDisable())
	wantPairs := refGeom.Blocks() / 2
	if res.FullPairs != wantPairs || res.HalfPairs != 0 || res.DisabledPairs != 0 {
		t.Errorf("clean map: %+v, want all %d pairs full", res, wantPairs)
	}
	if res.CapacityFraction() != 1 {
		t.Errorf("clean capacity = %v, want 1", res.CapacityFraction())
	}
}

func TestIncrementalWDStates(t *testing.T) {
	cfg := ReferenceWordDisable()
	m := faults.NewEmpty(refGeom, 32)
	// Pair 0 of set 0 (ways 0,1): one faulty word -> half capacity.
	b01 := refGeom.BlockIndex(0, 0)
	m.Blocks[b01].WordMask = 1
	m.Blocks[b01].Cells = 1
	// Pair 1 of set 0 (ways 2,3): 5 faulty words in one subblock -> disabled.
	b23 := refGeom.BlockIndex(0, 2)
	m.Blocks[b23].WordMask = 0x1F
	m.Blocks[b23].Cells = 5
	res := EvaluateIncrementalWD(m, cfg)
	wantPairs := refGeom.Blocks() / 2
	if res.FullPairs != wantPairs-2 {
		t.Errorf("FullPairs = %d, want %d", res.FullPairs, wantPairs-2)
	}
	if res.HalfPairs != 1 {
		t.Errorf("HalfPairs = %d, want 1", res.HalfPairs)
	}
	if res.DisabledPairs != 1 {
		t.Errorf("DisabledPairs = %d, want 1", res.DisabledPairs)
	}
	wantCap := (float64(wantPairs-2) + 0.5) / float64(wantPairs)
	if math.Abs(res.CapacityFraction()-wantCap) > 1e-12 {
		t.Errorf("capacity = %v, want %v", res.CapacityFraction(), wantCap)
	}
}

func TestIncrementalWDMatchesEq6(t *testing.T) {
	// Monte Carlo capacity of the incremental scheme ≈ Eq. 6.
	for _, pfail := range []float64{0.0005, 0.002, 0.005} {
		const trials = 40
		rng := rand.New(rand.NewSource(19))
		cfg := ReferenceWordDisable()
		sum := 0.0
		for i := 0; i < trials; i++ {
			m := faults.Generate(refGeom, 32, pfail, rng)
			sum += EvaluateIncrementalWD(m, cfg).CapacityFraction()
		}
		got := sum / trials
		want := prob.IncrementalWDCapacity(refGeom.DataBits(), cfg.WordsPerSubblock, cfg.WordBits, pfail)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("pfail=%v: MC incremental capacity = %v, Eq.6 predicts %v", pfail, got, want)
		}
	}
}

func TestIncrementalNeverWholeCacheFailure(t *testing.T) {
	// Even at brutal pfail the incremental scheme keeps some capacity
	// accounting (pairs disabled individually, never the whole cache).
	m := faults.Generate(refGeom, 32, 0.02, rand.New(rand.NewSource(23)))
	res := EvaluateIncrementalWD(m, ReferenceWordDisable())
	total := res.FullPairs + res.HalfPairs + res.DisabledPairs
	if total != refGeom.Blocks()/2 {
		t.Errorf("pair accounting lost pairs: %d, want %d", total, refGeom.Blocks()/2)
	}
}

func TestPairStateString(t *testing.T) {
	if PairFullCapacity.String() != "full" || PairHalfCapacity.String() != "half" || PairDisabled.String() != "disabled" {
		t.Error("pair state names wrong")
	}
	if PairState(9).String() != "PairState(9)" {
		t.Error("unknown pair state name wrong")
	}
}

func TestVictimUsableEntries(t *testing.T) {
	if got := VictimUsableEntries(16); got != 8 {
		t.Errorf("VictimUsableEntries(16) = %d, want 8 (paper Section V)", got)
	}
}

func TestCapacityInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := faults.Generate(refGeom, 32, 0.003, rng)
		d := BuildBlockDisable(m)
		cap := d.CapacityFraction()
		inc := EvaluateIncrementalWD(m, ReferenceWordDisable()).CapacityFraction()
		// Block-disable capacity counts tag faults, incremental WD ignores
		// them, so no fixed ordering — but both must be valid fractions
		// and block-disable can never exceed the fault-free block count.
		return cap >= 0 && cap <= 1 && inc >= 0 && inc <= 1 &&
			d.EnabledBlocks()+m.FaultyBlocks() == refGeom.Blocks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

package benchreg

import (
	"fmt"
	"io"
)

// Delta is one benchmark's baseline-to-current comparison, on both the
// ns/op and allocs/op axes (an allocation-count creep is a regression
// the wall-clock axis can hide behind machine noise).
type Delta struct {
	Name      string  `json:"name"`
	BaseNs    float64 `json:"base_ns_per_op"`
	CurNs     float64 `json:"cur_ns_per_op"`
	Ratio     float64 `json:"ratio"` // cur / base; > 1 is slower
	Regressed bool    `json:"regressed"`

	BaseAllocs      float64 `json:"base_allocs_per_op"`
	CurAllocs       float64 `json:"cur_allocs_per_op"`
	AllocsRatio     float64 `json:"allocs_ratio"` // cur / base; > 1 allocates more
	AllocsRegressed bool    `json:"allocs_regressed"`
}

// Report is the outcome of comparing a current snapshot against a
// baseline at a relative ns/op threshold.
type Report struct {
	Threshold     float64  `json:"threshold"` // e.g. 0.25 = fail beyond +25% ns/op
	Deltas        []Delta  `json:"deltas"`    // benchmarks present in both, by name
	Regressions   int      `json:"regressions"`
	OnlyInBase    []string `json:"only_in_base,omitempty"`    // not gated, reported
	OnlyInCurrent []string `json:"only_in_current,omitempty"` // new benches, not gated
}

// Failed reports whether the gate should reject the current run.
func (r Report) Failed() bool { return r.Regressions > 0 }

// Compare matches base and current benchmarks by name (procs-stripped;
// repeated entries averaged) and flags every benchmark whose current
// ns/op exceeds base*(1+threshold), or whose current allocs/op exceeds
// base*(1+threshold)+0.5 — the half-alloc slack absorbs averaging
// artifacts from merged repetitions while still catching any genuine
// extra allocation on a zero- or low-alloc baseline. Benchmarks present
// on only one side are listed but never gate — a filtered smoke run
// against a full baseline gates exactly on the intersection.
func Compare(base, current *Snapshot, threshold float64) Report {
	rep := Report{Threshold: threshold}
	b, c := base.byName(), current.byName()
	for _, name := range sortedNames(b) {
		bb := b[name]
		cb, ok := c[name]
		if !ok {
			rep.OnlyInBase = append(rep.OnlyInBase, name)
			continue
		}
		d := Delta{
			Name:   name,
			BaseNs: bb.NsPerOp, CurNs: cb.NsPerOp,
			BaseAllocs: bb.AllocsPerOp, CurAllocs: cb.AllocsPerOp,
		}
		if bb.NsPerOp > 0 {
			d.Ratio = cb.NsPerOp / bb.NsPerOp
			d.Regressed = d.Ratio > 1+threshold
		}
		if bb.AllocsPerOp > 0 {
			d.AllocsRatio = cb.AllocsPerOp / bb.AllocsPerOp
		}
		d.AllocsRegressed = cb.AllocsPerOp > bb.AllocsPerOp*(1+threshold)+0.5
		if d.Regressed || d.AllocsRegressed {
			rep.Regressions++
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	for _, name := range sortedNames(c) {
		if _, ok := b[name]; !ok {
			rep.OnlyInCurrent = append(rep.OnlyInCurrent, name)
		}
	}
	return rep
}

// Format renders the report as an aligned human-readable table.
func (r Report) Format(w io.Writer) {
	fmt.Fprintf(w, "benchmark comparison (gate: ns/op or allocs/op > baseline +%.0f%%)\n", r.Threshold*100)
	for _, d := range r.Deltas {
		mark := "  "
		if d.Regressed || d.AllocsRegressed {
			mark = "✗ "
		} else if d.Ratio > 0 && d.Ratio < 1 {
			mark = "✓ "
		}
		fmt.Fprintf(w, "%s%-64s %14.1f -> %12.1f ns/op  (%+.1f%%)  %8.1f -> %8.1f allocs/op\n",
			mark, d.Name, d.BaseNs, d.CurNs, (d.Ratio-1)*100, d.BaseAllocs, d.CurAllocs)
	}
	for _, n := range r.OnlyInBase {
		fmt.Fprintf(w, "  %-64s only in baseline (not gated)\n", n)
	}
	for _, n := range r.OnlyInCurrent {
		fmt.Fprintf(w, "  %-64s new (no baseline)\n", n)
	}
	if r.Regressions > 0 {
		fmt.Fprintf(w, "FAIL: %d benchmark(s) regressed beyond +%.0f%%\n", r.Regressions, r.Threshold*100)
	} else {
		fmt.Fprintf(w, "ok: no benchmark regressed beyond +%.0f%%\n", r.Threshold*100)
	}
}

package benchreg

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseBenchOutput extracts benchmark result lines from `go test -bench`
// text output. Result lines have the form
//
//	BenchmarkName[-procs]  iterations  value unit  [value unit ...]
//
// Units ns/op, B/op and allocs/op fill the dedicated fields; any other
// unit (a b.ReportMetric custom metric, e.g. "IPC" or "wordDis-norm")
// lands in Metrics. Package headers, PASS/ok trailers and any other
// chatter are ignored, so the raw output of a multi-package run parses
// directly.
func ParseBenchOutput(r io.Reader) ([]Benchmark, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Benchmark
	for ln := 1; sc.Scan(); ln++ {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line needs at least name, iterations and one
		// value/unit pair; "BenchmarkFoo" alone is the verbose pre-run
		// announcement, not a result.
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark... output:" chatter
		}
		b := Benchmark{Iterations: iters}
		b.Name, b.Procs = splitProcs(fields[0])
		if (len(fields)-2)%2 != 0 {
			return nil, fmt.Errorf("benchreg: line %d: odd value/unit pairing in %q", ln, line)
		}
		for i := 2; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchreg: line %d: bad value %q", ln, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// splitProcs separates the -<GOMAXPROCS> suffix Go appends to benchmark
// names by stripping a purely numeric final dash segment of the last
// slash element. A sub-benchmark label that itself ends in -<digits>
// (e.g. "pfail=1e-3") is indistinguishable from the procs suffix and
// loses its tail too — the same ambiguity benchstat accepts. The strip
// is applied identically to baseline and current snapshots, so gate
// matching still pairs such names up, but two labels differing only in
// a trailing -<digits> run would collide and average; prefer labels
// like "pfail=0.001" (as this repo's benches do).
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i < strings.LastIndexByte(name, '/') {
		return name, 0
	}
	procs, err := strconv.Atoi(name[i+1:])
	if err != nil || procs <= 0 {
		return name, 0
	}
	return name[:i], procs
}

package benchreg

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// sampleOutput is real-shaped `go test -bench -benchmem` output across
// two packages: plain benches, sub-benches with parameter labels, custom
// b.ReportMetric units, and the usual non-result chatter.
const sampleOutput = `goos: linux
goarch: amd64
pkg: vccmin
cpu: Shared vCPU
BenchmarkFig1VoltageScaling-8   	    9086	    131846 ns/op
BenchmarkFig8LowVoltage-8       	       7	 163000000 ns/op	         0.8060 wordDis-norm	         0.9780 blockDis-norm
BenchmarkFaultMapGeneration-8   	  100000	     10500 ns/op	   46208 B/op	       3 allocs/op
PASS
ok  	vccmin	12.3s
goos: linux
goarch: amd64
pkg: vccmin/internal/faults
BenchmarkGenerateMapSparse/L1-32K/pfail=0.001-8 	   58308	     10500 ns/op
BenchmarkGenerateMapSparseReuse/L1-32K/pfail=0.001-8 	   93074	      6613 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	vccmin/internal/faults	5.3s
`

func TestParseBenchOutput(t *testing.T) {
	got, err := ParseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(got))
	}
	first := got[0]
	if first.Name != "BenchmarkFig1VoltageScaling" || first.Procs != 8 ||
		first.Iterations != 9086 || first.NsPerOp != 131846 {
		t.Fatalf("bad first benchmark: %+v", first)
	}
	fig8 := got[1]
	if fig8.Metrics["wordDis-norm"] != 0.8060 || fig8.Metrics["blockDis-norm"] != 0.9780 {
		t.Fatalf("custom metrics not captured: %+v", fig8.Metrics)
	}
	mem := got[2]
	if mem.BytesPerOp != 46208 || mem.AllocsPerOp != 3 {
		t.Fatalf("benchmem columns not captured: %+v", mem)
	}
	sub := got[3]
	if sub.Name != "BenchmarkGenerateMapSparse/L1-32K/pfail=0.001" || sub.Procs != 8 {
		t.Fatalf("sub-benchmark name mangled: %q (procs %d)", sub.Name, sub.Procs)
	}
}

func TestSplitProcs(t *testing.T) {
	for _, tc := range []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkFoo-8", "BenchmarkFoo", 8},
		{"BenchmarkFoo", "BenchmarkFoo", 0},
		{"BenchmarkFoo/pfail=0.001", "BenchmarkFoo/pfail=0.001", 0},
		{"BenchmarkFoo/pfail=1e-3-16", "BenchmarkFoo/pfail=1e-3", 16},
		{"BenchmarkL2-2M/x-4", "BenchmarkL2-2M/x", 4},
		// A label ending in -digits is indistinguishable from the procs
		// suffix; the strip is applied identically to baseline and
		// current snapshots, so gate matching still pairs them up.
		{"BenchmarkFoo/pfail=1e-3", "BenchmarkFoo/pfail=1e", 3},
	} {
		name, procs := splitProcs(tc.in)
		if name != tc.name || procs != tc.procs {
			t.Errorf("splitProcs(%q) = (%q, %d), want (%q, %d)", tc.in, name, procs, tc.name, tc.procs)
		}
	}
}

func testSnapshot() *Snapshot {
	return &Snapshot{
		SchemaVersion: SchemaVersion,
		CreatedAt:     "2026-01-02T03:04:05Z",
		GoVersion:     "go1.24.0",
		GOOS:          "linux",
		GOARCH:        "amd64",
		Command:       "go test -run ^$ -bench . -benchtime 100ms -benchmem .",
		Benchmarks: []Benchmark{
			{Name: "BenchmarkA", Procs: 8, Iterations: 1000, NsPerOp: 50, BytesPerOp: 16, AllocsPerOp: 1},
			{Name: "BenchmarkB", Procs: 8, Iterations: 10, NsPerOp: 9000,
				Metrics: map[string]float64{"IPC": 1.25}},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := testSnapshot()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip changed the snapshot:\n got %+v\nwant %+v", back, s)
	}
	var again bytes.Buffer
	if err := back.Encode(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-encoding is not byte-stable")
	}
}

func TestDecodeRejectsBadSchema(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"schema_version":99,"benchmarks":[]}`)); err == nil {
		t.Error("accepted unknown schema version")
	}
	if _, err := Decode(strings.NewReader(`{"schema_version":1,"benchmarks":[{"name":""}]}`)); err == nil {
		t.Error("accepted unnamed benchmark")
	}
}

func TestFileNumbering(t *testing.T) {
	dir := t.TempDir()
	path, n, err := LatestFile(dir)
	if err != nil || path != "" || n != 0 {
		t.Fatalf("empty dir: got (%q, %d, %v)", path, n, err)
	}
	next, err := NextFile(dir)
	if err != nil || filepath.Base(next) != "BENCH_1.json" {
		t.Fatalf("first snapshot should be BENCH_1.json, got %q (%v)", next, err)
	}
	for _, name := range []string{"BENCH_1.json", "BENCH_3.json", "BENCH_02.json", "BENCH_x.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	path, n, err = LatestFile(dir)
	if err != nil || n != 3 || filepath.Base(path) != "BENCH_3.json" {
		t.Fatalf("latest = (%q, %d, %v), want BENCH_3.json", path, n, err)
	}
	next, err = NextFile(dir)
	if err != nil || filepath.Base(next) != "BENCH_4.json" {
		t.Fatalf("next = %q (%v), want BENCH_4.json", next, err)
	}
}

func snapshotOf(benches ...Benchmark) *Snapshot {
	return &Snapshot{SchemaVersion: SchemaVersion, Benchmarks: benches}
}

func TestCompareGatesOnThreshold(t *testing.T) {
	base := snapshotOf(
		Benchmark{Name: "BenchmarkFast", NsPerOp: 100},
		Benchmark{Name: "BenchmarkSlow", NsPerOp: 1000},
		Benchmark{Name: "BenchmarkGone", NsPerOp: 5},
	)
	cur := snapshotOf(
		Benchmark{Name: "BenchmarkFast", NsPerOp: 124},  // +24%: inside a 25% gate
		Benchmark{Name: "BenchmarkSlow", NsPerOp: 1300}, // +30%: regression
		Benchmark{Name: "BenchmarkNew", NsPerOp: 7},
	)
	rep := Compare(base, cur, 0.25)
	if !rep.Failed() || rep.Regressions != 1 {
		t.Fatalf("want exactly 1 regression, got %d (failed=%v)", rep.Regressions, rep.Failed())
	}
	byName := map[string]Delta{}
	for _, d := range rep.Deltas {
		byName[d.Name] = d
	}
	if byName["BenchmarkFast"].Regressed {
		t.Error("+24% flagged despite 25% threshold")
	}
	if !byName["BenchmarkSlow"].Regressed {
		t.Error("+30% not flagged at 25% threshold")
	}
	if !reflect.DeepEqual(rep.OnlyInBase, []string{"BenchmarkGone"}) {
		t.Errorf("OnlyInBase = %v", rep.OnlyInBase)
	}
	if !reflect.DeepEqual(rep.OnlyInCurrent, []string{"BenchmarkNew"}) {
		t.Errorf("OnlyInCurrent = %v", rep.OnlyInCurrent)
	}
	var out bytes.Buffer
	rep.Format(&out)
	if !strings.Contains(out.String(), "FAIL: 1 benchmark(s) regressed") {
		t.Errorf("report missing failure line:\n%s", out.String())
	}
}

func TestCompareAveragesRepeatedEntries(t *testing.T) {
	// -count 3 style repetition: the middle spike averages away.
	base := snapshotOf(Benchmark{Name: "BenchmarkX", NsPerOp: 100})
	cur := snapshotOf(
		Benchmark{Name: "BenchmarkX", NsPerOp: 90, Iterations: 10},
		Benchmark{Name: "BenchmarkX", NsPerOp: 150, Iterations: 10},
		Benchmark{Name: "BenchmarkX", NsPerOp: 90, Iterations: 10},
	)
	rep := Compare(base, cur, 0.25)
	if len(rep.Deltas) != 1 {
		t.Fatalf("got %d deltas, want 1", len(rep.Deltas))
	}
	if d := rep.Deltas[0]; d.Regressed || d.CurNs < 109 || d.CurNs > 111 {
		t.Fatalf("averaged delta wrong: %+v", d)
	}
}

func TestByNameAveragesMetricsWithoutMutation(t *testing.T) {
	snap := snapshotOf(
		Benchmark{Name: "BenchmarkM", NsPerOp: 100, Iterations: 10,
			Metrics: map[string]float64{"IPC": 1.0}},
		Benchmark{Name: "BenchmarkM", NsPerOp: 200, Iterations: 30,
			Metrics: map[string]float64{"IPC": 2.0}},
	)
	merged := snap.byName()["BenchmarkM"]
	if merged.Metrics["IPC"] != 1.5 {
		t.Errorf("metric IPC = %v, want the 1.5 mean", merged.Metrics["IPC"])
	}
	if merged.NsPerOp != 150 || merged.Iterations != 40 {
		t.Errorf("merged = %+v, want ns/op mean 150 and iteration total 40", merged)
	}
	if snap.Benchmarks[0].Metrics["IPC"] != 1.0 {
		t.Error("merging mutated the snapshot's own metrics map")
	}
}

func TestCompareImprovementNeverFails(t *testing.T) {
	base := snapshotOf(Benchmark{Name: "BenchmarkY", NsPerOp: 1000})
	cur := snapshotOf(Benchmark{Name: "BenchmarkY", NsPerOp: 100})
	if rep := Compare(base, cur, 0.25); rep.Failed() {
		t.Error("a 10x improvement failed the gate")
	}
}

func TestCompareGatesOnAllocs(t *testing.T) {
	// The alloc rule is cur > base*(1+threshold)+0.5: a zero-alloc
	// baseline tolerates averaging dust below half an alloc but fails on
	// a genuine new allocation, and a nonzero baseline gates relatively.
	base := snapshotOf(
		Benchmark{Name: "BenchmarkZeroAlloc", NsPerOp: 100, AllocsPerOp: 0},
		Benchmark{Name: "BenchmarkDust", NsPerOp: 100, AllocsPerOp: 0},
		Benchmark{Name: "BenchmarkMany", NsPerOp: 100, AllocsPerOp: 100},
		Benchmark{Name: "BenchmarkManyOK", NsPerOp: 100, AllocsPerOp: 100},
	)
	cur := snapshotOf(
		Benchmark{Name: "BenchmarkZeroAlloc", NsPerOp: 100, AllocsPerOp: 1}, // new alloc: fails
		Benchmark{Name: "BenchmarkDust", NsPerOp: 100, AllocsPerOp: 0.3},    // averaging dust: ok
		Benchmark{Name: "BenchmarkMany", NsPerOp: 100, AllocsPerOp: 130},    // +30%: fails at 25%
		Benchmark{Name: "BenchmarkManyOK", NsPerOp: 100, AllocsPerOp: 125},  // exactly at the bar + 0.5 slack: ok
	)
	rep := Compare(base, cur, 0.25)
	byName := map[string]Delta{}
	for _, d := range rep.Deltas {
		byName[d.Name] = d
	}
	if !byName["BenchmarkZeroAlloc"].AllocsRegressed {
		t.Error("0 -> 1 allocs/op not flagged")
	}
	if byName["BenchmarkZeroAlloc"].Regressed {
		t.Error("alloc regression leaked into the ns/op flag")
	}
	if byName["BenchmarkDust"].AllocsRegressed {
		t.Error("0 -> 0.3 allocs/op flagged despite the 0.5 slack")
	}
	if !byName["BenchmarkMany"].AllocsRegressed {
		t.Error("100 -> 130 allocs/op not flagged at 25%")
	}
	if byName["BenchmarkManyOK"].AllocsRegressed {
		t.Error("100 -> 125 allocs/op flagged (125 = 100*1.25 <= bar+slack)")
	}
	if rep.Regressions != 2 || !rep.Failed() {
		t.Fatalf("want 2 regressions, got %d (failed=%v)", rep.Regressions, rep.Failed())
	}
	var out bytes.Buffer
	rep.Format(&out)
	if !strings.Contains(out.String(), "allocs/op") {
		t.Errorf("report table missing alloc columns:\n%s", out.String())
	}
}

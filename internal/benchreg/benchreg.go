// Package benchreg is the benchmark-regression subsystem: it parses `go
// test -bench` output into machine-readable snapshots (BENCH_<n>.json),
// numbers them, and compares a fresh run against a recorded baseline with
// a relative ns/op threshold. cmd/vccmin-bench is the CLI face; CI runs
// it at smoke scale and fails the build when a hot path regresses past
// the threshold against the checked-in baseline.
//
// Snapshots are plain JSON with a schema version, stable field order and
// a trailing newline, so they diff cleanly in review and round-trip
// byte-identically (the golden bench_schema.json fixture pins the
// format).
package benchreg

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// SchemaVersion tags the snapshot format; Decode rejects files written by
// an incompatible future format.
const SchemaVersion = 1

// Benchmark is one benchmark's measurements. Name has the -<procs>
// GOMAXPROCS suffix stripped (it varies by machine and must not break
// baseline matching); sub-benchmark paths are kept verbatim.
type Benchmark struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"` // custom b.ReportMetric units
}

// Snapshot is one recorded benchmark run.
type Snapshot struct {
	SchemaVersion int         `json:"schema_version"`
	CreatedAt     string      `json:"created_at"` // RFC3339 UTC
	GoVersion     string      `json:"go_version"`
	GOOS          string      `json:"goos"`
	GOARCH        string      `json:"goarch"`
	Command       string      `json:"command,omitempty"` // the go test invocation
	Benchmarks    []Benchmark `json:"benchmarks"`
}

// Encode writes the snapshot as indented JSON with a trailing newline —
// the exact on-disk BENCH_<n>.json form.
func (s *Snapshot) Encode(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// Decode reads a snapshot written by Encode, validating the schema
// version and sanity-checking the entries.
func Decode(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("benchreg: decode: %w", err)
	}
	if s.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("benchreg: unsupported schema version %d (want %d)", s.SchemaVersion, SchemaVersion)
	}
	for i, b := range s.Benchmarks {
		if b.Name == "" {
			return nil, fmt.Errorf("benchreg: benchmark %d has no name", i)
		}
		if b.NsPerOp < 0 || b.Iterations < 0 {
			return nil, fmt.Errorf("benchreg: benchmark %q has negative measurements", b.Name)
		}
	}
	return &s, nil
}

// ReadFile loads a snapshot from disk.
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// WriteFile writes the snapshot to disk in Encode form.
func (s *Snapshot) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchFileRe matches the numbered snapshot files.
var benchFileRe = regexp.MustCompile(`^BENCH_([0-9]+)\.json$`)

// LatestFile returns the highest-numbered BENCH_<n>.json in dir, or
// ("", 0, nil) when the directory holds none.
func LatestFile(dir string) (path string, n int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, err
	}
	for _, e := range entries {
		m := benchFileRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if v, err := strconv.Atoi(m[1]); err == nil && v > n {
			n, path = v, filepath.Join(dir, e.Name())
		}
	}
	return path, n, nil
}

// NextFile returns the path of the next snapshot in dir's numbering
// (BENCH_<latest+1>.json; BENCH_1.json for an empty directory).
func NextFile(dir string) (string, error) {
	_, n, err := LatestFile(dir)
	if err != nil {
		return "", err
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n+1)), nil
}

// byName returns the snapshot's benchmarks keyed by name, merging
// repeated entries (e.g. from -count > 1): every per-op value — ns/op,
// B/op, allocs/op and each custom metric — is the mean over ALL of the
// name's repetitions (a metric a repetition did not report contributes
// zero, exactly like the dedicated per-op fields), while Iterations is
// the total across them. Summing first and dividing once at the end
// keeps the result independent of repetition order.
func (s *Snapshot) byName() map[string]Benchmark {
	sums := make(map[string]*Benchmark, len(s.Benchmarks))
	counts := make(map[string]int, len(s.Benchmarks))
	for _, b := range s.Benchmarks {
		acc := sums[b.Name]
		if acc == nil {
			acc = &Benchmark{Name: b.Name, Procs: b.Procs}
			sums[b.Name] = acc
		}
		acc.Iterations += b.Iterations
		acc.NsPerOp += b.NsPerOp
		acc.BytesPerOp += b.BytesPerOp
		acc.AllocsPerOp += b.AllocsPerOp
		for k, v := range b.Metrics {
			if acc.Metrics == nil {
				acc.Metrics = map[string]float64{}
			}
			acc.Metrics[k] += v
		}
		counts[b.Name]++
	}
	out := make(map[string]Benchmark, len(sums))
	for name, acc := range sums {
		n := float64(counts[name])
		acc.NsPerOp /= n
		acc.BytesPerOp /= n
		acc.AllocsPerOp /= n
		for k := range acc.Metrics {
			acc.Metrics[k] /= n
		}
		out[name] = *acc
	}
	return out
}

// sortedNames returns m's keys in lexical order.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

package workload

import (
	"fmt"
	"sort"
)

// The profile table below encodes the qualitative behaviour of the 26 SPEC
// CPU 2000 benchmarks the paper simulates, in the terms our generator
// understands. Working-set components are in 64-byte blocks (the reference
// L1 holds 512, the L2 32768):
//
//   - components up to ~512 blocks occupy the L1; components between 256
//     and 512 blocks are the capacity-sensitive band where halving the
//     cache (word-disable) or losing ~42% of blocks (block-disable at
//     pfail=1e-3) hurts;
//   - components with HotSets > 0 are conflict components: ~6 blocks per
//     hot set, which an 8-way set holds comfortably but a 4-way
//     (word-disable) or fault-thinned (block-disable) set thrashes; the
//     16-entry victim cache absorbs most of that overflow. These model
//     the benchmarks whose worst fault maps hurt block-disabling in
//     Fig. 8 (mesa, wupwise, gap, gzip, perlbmk) and the ones a victim
//     cache helps even at high voltage in Fig. 11 (apsi, fma3d, crafty);
//   - components of thousands of blocks live in the L2; larger ones and
//     the cold fraction stream from memory.
//
// TargetBias concentrates branch targets in a hot front of the code
// footprint, giving the large-code benchmarks (crafty, gcc, perlbmk,
// vortex, fma3d) instruction working sets that fit a 32 KB I-cache but
// thrash a 16 KB one. Dependence distance sets ILP: streaming FP codes
// tolerate latency, pointer chasers (mcf) do not.

// Profiles returns the 26 benchmark profiles in the paper's Fig. 8 order
// (SPECfp alphabetical, then SPECint alphabetical).
func Profiles() []Profile {
	return []Profile{
		// ---- SPECfp ----
		{Name: "ammp", Suite: "fp", LoadFrac: 0.27, StoreFrac: 0.09, BranchFrac: 0.05, FPFrac: 0.55, MultFrac: 0.25, ColdFrac: 0.03,
			Reuse:            []ReuseComponent{{Weight: 0.55, Blocks: 48}, {Weight: 0.049, Blocks: 50, HotSets: 10}, {Weight: 0.0275, Blocks: 300}, {Weight: 0.09, Blocks: 8000}, {Weight: 0.048, Blocks: 48000}},
			IFootprintBlocks: 220, StaticBranches: 700, RandomBranchFrac: 0.08, MeanDepDist: 4.5, LoadChainFrac: 0.45},
		{Name: "applu", Suite: "fp", LoadFrac: 0.30, StoreFrac: 0.10, BranchFrac: 0.03, FPFrac: 0.65, MultFrac: 0.30, ColdFrac: 0.3,
			Reuse:            []ReuseComponent{{Weight: 0.5, Blocks: 64}, {Weight: 0.042, Blocks: 50, HotSets: 10}, {Weight: 0.35, Blocks: 200}, {Weight: 0.09, Blocks: 24000}},
			IFootprintBlocks: 260, StaticBranches: 500, RandomBranchFrac: 0.03, MeanDepDist: 8, LoadChainFrac: 0.12},
		{Name: "apsi", Suite: "fp", LoadFrac: 0.28, StoreFrac: 0.10, BranchFrac: 0.06, FPFrac: 0.60, MultFrac: 0.25, ColdFrac: 0.06,
			Reuse:            []ReuseComponent{{Weight: 0.42, Blocks: 48}, {Weight: 0.1, Blocks: 96, HotSets: 16}, {Weight: 0.035, Blocks: 400}, {Weight: 0.09, Blocks: 2200}, {Weight: 0.03, Blocks: 28000}},
			IFootprintBlocks: 380, StaticBranches: 900, RandomBranchFrac: 0.06, MeanDepDist: 6, LoadChainFrac: 0.25, TargetBias: 1.5},
		{Name: "art", Suite: "fp", LoadFrac: 0.32, StoreFrac: 0.07, BranchFrac: 0.06, FPFrac: 0.50, MultFrac: 0.30, ColdFrac: 0.02,
			Reuse:            []ReuseComponent{{Weight: 0.3, Blocks: 64}, {Weight: 0.042, Blocks: 60, HotSets: 12}, {Weight: 0.25, Blocks: 150}, {Weight: 0.27, Blocks: 56000}},
			IFootprintBlocks: 120, StaticBranches: 300, RandomBranchFrac: 0.05, MeanDepDist: 5, LoadChainFrac: 0.35},
		{Name: "equake", Suite: "fp", LoadFrac: 0.34, StoreFrac: 0.08, BranchFrac: 0.06, FPFrac: 0.55, MultFrac: 0.30, ColdFrac: 0.05,
			Reuse:            []ReuseComponent{{Weight: 0.45, Blocks: 56}, {Weight: 0.049, Blocks: 50, HotSets: 10}, {Weight: 0.0312, Blocks: 260}, {Weight: 0.12, Blocks: 4200}, {Weight: 0.06, Blocks: 50000}},
			IFootprintBlocks: 200, StaticBranches: 450, RandomBranchFrac: 0.05, MeanDepDist: 4.5, LoadChainFrac: 0.35},
		{Name: "facerec", Suite: "fp", LoadFrac: 0.29, StoreFrac: 0.08, BranchFrac: 0.05, FPFrac: 0.60, MultFrac: 0.30, ColdFrac: 0.1,
			Reuse:            []ReuseComponent{{Weight: 0.45, Blocks: 64}, {Weight: 0.042, Blocks: 50, HotSets: 10}, {Weight: 0.0375, Blocks: 340}, {Weight: 0.102, Blocks: 6000}, {Weight: 0.048, Blocks: 40000}},
			IFootprintBlocks: 240, StaticBranches: 600, RandomBranchFrac: 0.05, MeanDepDist: 6.5, LoadChainFrac: 0.2},
		{Name: "fma3d", Suite: "fp", LoadFrac: 0.28, StoreFrac: 0.11, BranchFrac: 0.07, FPFrac: 0.55, MultFrac: 0.25, ColdFrac: 0.06,
			Reuse:            []ReuseComponent{{Weight: 0.32, Blocks: 56}, {Weight: 0.12, Blocks: 120, HotSets: 20}, {Weight: 0.1213, Blocks: 440}, {Weight: 0.09, Blocks: 5000}, {Weight: 0.03, Blocks: 30000}},
			IFootprintBlocks: 560, StaticBranches: 1400, RandomBranchFrac: 0.07, MeanDepDist: 5, LoadChainFrac: 0.3, TargetBias: 1.8},
		{Name: "galgel", Suite: "fp", LoadFrac: 0.30, StoreFrac: 0.07, BranchFrac: 0.05, FPFrac: 0.65, MultFrac: 0.35, ColdFrac: 0.04,
			Reuse:            []ReuseComponent{{Weight: 0.4, Blocks: 64}, {Weight: 0.049, Blocks: 60, HotSets: 12}, {Weight: 0.0475, Blocks: 380}, {Weight: 0.12, Blocks: 9000}},
			IFootprintBlocks: 200, StaticBranches: 450, RandomBranchFrac: 0.04, MeanDepDist: 7, LoadChainFrac: 0.15},
		{Name: "lucas", Suite: "fp", LoadFrac: 0.27, StoreFrac: 0.09, BranchFrac: 0.02, FPFrac: 0.70, MultFrac: 0.40, ColdFrac: 0.28,
			Reuse:            []ReuseComponent{{Weight: 0.4, Blocks: 48}, {Weight: 0.035, Blocks: 50, HotSets: 10}, {Weight: 0.4, Blocks: 160}, {Weight: 0.12, Blocks: 26000}},
			IFootprintBlocks: 140, StaticBranches: 250, RandomBranchFrac: 0.03, MeanDepDist: 9, LoadChainFrac: 0.1},
		{Name: "mesa", Suite: "fp", LoadFrac: 0.26, StoreFrac: 0.11, BranchFrac: 0.08, FPFrac: 0.45, MultFrac: 0.25, ColdFrac: 0.02,
			Reuse:            []ReuseComponent{{Weight: 0.32, Blocks: 48}, {Weight: 0.13, Blocks: 84, HotSets: 14}, {Weight: 0.1396, Blocks: 420}, {Weight: 0.072, Blocks: 3000}, {Weight: 0.018, Blocks: 20000}},
			IFootprintBlocks: 420, StaticBranches: 1100, RandomBranchFrac: 0.07, MeanDepDist: 4, LoadChainFrac: 0.35, TargetBias: 1.6},
		{Name: "mgrid", Suite: "fp", LoadFrac: 0.33, StoreFrac: 0.07, BranchFrac: 0.02, FPFrac: 0.70, MultFrac: 0.35, ColdFrac: 0.28,
			Reuse:            []ReuseComponent{{Weight: 0.4, Blocks: 56}, {Weight: 0.035, Blocks: 50, HotSets: 10}, {Weight: 0.4, Blocks: 210}, {Weight: 0.12, Blocks: 30000}},
			IFootprintBlocks: 130, StaticBranches: 220, RandomBranchFrac: 0.02, MeanDepDist: 8.5, LoadChainFrac: 0.1},
		{Name: "sixtrack", Suite: "fp", LoadFrac: 0.24, StoreFrac: 0.08, BranchFrac: 0.07, FPFrac: 0.60, MultFrac: 0.30, ColdFrac: 0.01,
			Reuse:            []ReuseComponent{{Weight: 0.5, Blocks: 64}, {Weight: 0.049, Blocks: 70, HotSets: 14}, {Weight: 0.4, Blocks: 180}, {Weight: 0.06, Blocks: 2000}},
			IFootprintBlocks: 480, StaticBranches: 1200, RandomBranchFrac: 0.05, MeanDepDist: 6, LoadChainFrac: 0.2, TargetBias: 2.4},
		{Name: "swim", Suite: "fp", LoadFrac: 0.32, StoreFrac: 0.09, BranchFrac: 0.02, FPFrac: 0.70, MultFrac: 0.30, ColdFrac: 0.35,
			Reuse:            []ReuseComponent{{Weight: 0.4, Blocks: 48}, {Weight: 0.035, Blocks: 50, HotSets: 10}, {Weight: 0.4, Blocks: 150}, {Weight: 0.12, Blocks: 40000}},
			IFootprintBlocks: 110, StaticBranches: 200, RandomBranchFrac: 0.02, MeanDepDist: 9, LoadChainFrac: 0.1},
		{Name: "wupwise", Suite: "fp", LoadFrac: 0.28, StoreFrac: 0.09, BranchFrac: 0.05, FPFrac: 0.60, MultFrac: 0.35, ColdFrac: 0.03,
			Reuse:            []ReuseComponent{{Weight: 0.32, Blocks: 56}, {Weight: 0.12, Blocks: 132, HotSets: 22}, {Weight: 0.045, Blocks: 400}, {Weight: 0.084, Blocks: 6000}, {Weight: 0.018, Blocks: 40000}},
			IFootprintBlocks: 260, StaticBranches: 650, RandomBranchFrac: 0.05, MeanDepDist: 6, LoadChainFrac: 0.25},

		// ---- SPECint ----
		{Name: "bzip", Suite: "int", LoadFrac: 0.26, StoreFrac: 0.10, BranchFrac: 0.11, FPFrac: 0, MultFrac: 0.04, ColdFrac: 0.04,
			Reuse:            []ReuseComponent{{Weight: 0.4, Blocks: 48}, {Weight: 0.056, Blocks: 60, HotSets: 12}, {Weight: 0.0375, Blocks: 300}, {Weight: 0.12, Blocks: 4200}, {Weight: 0.03, Blocks: 20000}},
			IFootprintBlocks: 130, StaticBranches: 500, RandomBranchFrac: 0.14, MeanDepDist: 3, LoadChainFrac: 0.35},
		{Name: "crafty", Suite: "int", LoadFrac: 0.28, StoreFrac: 0.08, BranchFrac: 0.13, FPFrac: 0, MultFrac: 0.03, ColdFrac: 0.01,
			Reuse:            []ReuseComponent{{Weight: 0.3, Blocks: 48}, {Weight: 0.15, Blocks: 126, HotSets: 18}, {Weight: 0.45, Blocks: 460}, {Weight: 0.06, Blocks: 1500}},
			IFootprintBlocks: 680, StaticBranches: 2200, RandomBranchFrac: 0.10, MeanDepDist: 2.2, LoadChainFrac: 0.5, TargetBias: 2.5},
		{Name: "eon", Suite: "int", LoadFrac: 0.26, StoreFrac: 0.12, BranchFrac: 0.11, FPFrac: 0.15, MultFrac: 0.08, ColdFrac: 0.01,
			Reuse:            []ReuseComponent{{Weight: 0.5, Blocks: 48}, {Weight: 0.035, Blocks: 50, HotSets: 10}, {Weight: 0.4, Blocks: 120}, {Weight: 0.06, Blocks: 3000}},
			IFootprintBlocks: 320, StaticBranches: 1300, RandomBranchFrac: 0.06, MeanDepDist: 2.8, LoadChainFrac: 0.2, TargetBias: 2.0},
		{Name: "gap", Suite: "int", LoadFrac: 0.27, StoreFrac: 0.09, BranchFrac: 0.10, FPFrac: 0, MultFrac: 0.05, ColdFrac: 0.02,
			Reuse:            []ReuseComponent{{Weight: 0.36, Blocks: 48}, {Weight: 0.11, Blocks: 96, HotSets: 16}, {Weight: 0.0413, Blocks: 420}, {Weight: 0.06, Blocks: 5200}, {Weight: 0.03, Blocks: 24000}},
			IFootprintBlocks: 430, StaticBranches: 1400, RandomBranchFrac: 0.09, MeanDepDist: 2.6, LoadChainFrac: 0.4, TargetBias: 1.8},
		{Name: "gcc", Suite: "int", LoadFrac: 0.26, StoreFrac: 0.12, BranchFrac: 0.15, FPFrac: 0, MultFrac: 0.02, ColdFrac: 0.03,
			Reuse:            []ReuseComponent{{Weight: 0.3, Blocks: 56}, {Weight: 0.063, Blocks: 80, HotSets: 16}, {Weight: 0.147, Blocks: 450}, {Weight: 0.09, Blocks: 3200}, {Weight: 0.03, Blocks: 15000}},
			IFootprintBlocks: 850, StaticBranches: 3000, RandomBranchFrac: 0.12, MeanDepDist: 2.4, LoadChainFrac: 0.4, TargetBias: 2.0},
		{Name: "gzip", Suite: "int", LoadFrac: 0.25, StoreFrac: 0.09, BranchFrac: 0.12, FPFrac: 0, MultFrac: 0.03, ColdFrac: 0.02,
			Reuse:            []ReuseComponent{{Weight: 0.4, Blocks: 40}, {Weight: 0.06, Blocks: 72, HotSets: 12}, {Weight: 0.0262, Blocks: 350}, {Weight: 0.072, Blocks: 1200}, {Weight: 0.018, Blocks: 8000}},
			IFootprintBlocks: 110, StaticBranches: 420, RandomBranchFrac: 0.13, MeanDepDist: 2.8, LoadChainFrac: 0.35},
		{Name: "mcf", Suite: "int", LoadFrac: 0.35, StoreFrac: 0.09, BranchFrac: 0.12, FPFrac: 0, MultFrac: 0.02, ColdFrac: 0.02,
			Reuse:            []ReuseComponent{{Weight: 0.25, Blocks: 48}, {Weight: 0.042, Blocks: 50, HotSets: 10}, {Weight: 0.2, Blocks: 120}, {Weight: 0.33, Blocks: 100000}},
			IFootprintBlocks: 100, StaticBranches: 300, RandomBranchFrac: 0.16, MeanDepDist: 1.6, LoadChainFrac: 0.8},
		{Name: "parser", Suite: "int", LoadFrac: 0.26, StoreFrac: 0.10, BranchFrac: 0.13, FPFrac: 0, MultFrac: 0.02, ColdFrac: 0.02,
			Reuse:            []ReuseComponent{{Weight: 0.36, Blocks: 48}, {Weight: 0.056, Blocks: 60, HotSets: 12}, {Weight: 0.04, Blocks: 310}, {Weight: 0.12, Blocks: 8000}, {Weight: 0.048, Blocks: 40000}},
			IFootprintBlocks: 330, StaticBranches: 1100, RandomBranchFrac: 0.12, MeanDepDist: 2.3, LoadChainFrac: 0.5},
		{Name: "perlbmk", Suite: "int", LoadFrac: 0.27, StoreFrac: 0.11, BranchFrac: 0.14, FPFrac: 0, MultFrac: 0.02, ColdFrac: 0.01,
			Reuse:            []ReuseComponent{{Weight: 0.32, Blocks: 48}, {Weight: 0.12, Blocks: 96, HotSets: 16}, {Weight: 0.1396, Blocks: 380}, {Weight: 0.072, Blocks: 2600}, {Weight: 0.018, Blocks: 12000}},
			IFootprintBlocks: 760, StaticBranches: 2600, RandomBranchFrac: 0.08, MeanDepDist: 2.5, LoadChainFrac: 0.4, TargetBias: 2.2},
		{Name: "twolf", Suite: "int", LoadFrac: 0.27, StoreFrac: 0.08, BranchFrac: 0.12, FPFrac: 0.05, MultFrac: 0.04, ColdFrac: 0.01,
			Reuse:            []ReuseComponent{{Weight: 0.37, Blocks: 48}, {Weight: 0.063, Blocks: 70, HotSets: 14}, {Weight: 0.0475, Blocks: 350}, {Weight: 0.102, Blocks: 2600}, {Weight: 0.03, Blocks: 10000}},
			IFootprintBlocks: 290, StaticBranches: 900, RandomBranchFrac: 0.12, MeanDepDist: 2.5, LoadChainFrac: 0.45},
		{Name: "vortex", Suite: "int", LoadFrac: 0.28, StoreFrac: 0.13, BranchFrac: 0.13, FPFrac: 0, MultFrac: 0.02, ColdFrac: 0.02,
			Reuse:            []ReuseComponent{{Weight: 0.3, Blocks: 56}, {Weight: 0.063, Blocks: 80, HotSets: 16}, {Weight: 0.1581, Blocks: 440}, {Weight: 0.108, Blocks: 4200}, {Weight: 0.042, Blocks: 20000}},
			IFootprintBlocks: 700, StaticBranches: 2400, RandomBranchFrac: 0.06, MeanDepDist: 2.6, LoadChainFrac: 0.4, TargetBias: 2.0},
		{Name: "vpr", Suite: "int", LoadFrac: 0.28, StoreFrac: 0.09, BranchFrac: 0.11, FPFrac: 0.10, MultFrac: 0.04, ColdFrac: 0.01,
			Reuse:            []ReuseComponent{{Weight: 0.39, Blocks: 48}, {Weight: 0.056, Blocks: 60, HotSets: 12}, {Weight: 0.0475, Blocks: 330}, {Weight: 0.09, Blocks: 2200}, {Weight: 0.03, Blocks: 9000}},
			IFootprintBlocks: 240, StaticBranches: 800, RandomBranchFrac: 0.10, MeanDepDist: 2.6, LoadChainFrac: 0.45},
	}
}

// ByName returns the profile with the given name.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names returns all benchmark names in Fig. 8 order.
func Names() []string {
	ps := Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// NamesSorted returns all benchmark names alphabetically.
func NamesSorted() []string {
	n := Names()
	sort.Strings(n)
	return n
}

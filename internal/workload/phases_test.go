package workload

import "testing"

func TestBuiltinMultiPhaseWorkloadsAreValid(t *testing.T) {
	ms := MultiPhaseProfiles()
	if len(ms) < 3 {
		t.Fatalf("only %d builtin multi-phase workloads, want at least 3", len(ms))
	}
	seen := map[string]bool{}
	for _, m := range ms {
		if err := m.Check(); err != nil {
			t.Errorf("builtin %s invalid: %v", m.Name, err)
		}
		if seen[m.Name] {
			t.Errorf("duplicate builtin name %s", m.Name)
		}
		seen[m.Name] = true
		if m.TotalInstructions() <= 0 {
			t.Errorf("builtin %s has no instructions", m.Name)
		}
	}
}

func TestMultiPhaseByName(t *testing.T) {
	for _, name := range MultiPhaseNames() {
		m, err := MultiPhaseByName(name)
		if err != nil {
			t.Fatalf("MultiPhaseByName(%q): %v", name, err)
		}
		if m.Name != name {
			t.Fatalf("MultiPhaseByName(%q) returned %q", name, m.Name)
		}
	}
	if _, err := MultiPhaseByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if got, want := len(MultiPhaseNamesSorted()), len(MultiPhaseNames()); got != want {
		t.Fatalf("sorted names length %d != %d", got, want)
	}
}

func TestMultiPhaseCheckErrors(t *testing.T) {
	valid := MultiPhase{Name: "w", Phases: []Phase{{Benchmark: "eon", Instructions: 10}}}
	if err := valid.Check(); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	cases := map[string]MultiPhase{
		"no name":           {Phases: []Phase{{Benchmark: "eon", Instructions: 10}}},
		"no phases":         {Name: "w"},
		"zero instructions": {Name: "w", Phases: []Phase{{Benchmark: "eon"}}},
		"unknown benchmark": {Name: "w", Phases: []Phase{{Benchmark: "nope", Instructions: 10}}},
	}
	for name, m := range cases {
		if err := m.Check(); err == nil {
			t.Errorf("%s: Check accepted an invalid workload", name)
		}
	}
}

func TestMultiPhaseScaled(t *testing.T) {
	m := MultiPhase{Name: "w", Phases: []Phase{
		{Benchmark: "eon", Instructions: 3000},
		{Benchmark: "mcf", Instructions: 1000},
	}}
	s := m.Scaled(2000)
	if s.Phases[0].Instructions != 1500 || s.Phases[1].Instructions != 500 {
		t.Fatalf("scaled phases = %+v, want 1500/500", s.Phases)
	}
	if got := m.Scaled(0); !equalPhases(got.Phases, m.Phases) {
		t.Fatal("Scaled(0) must be a no-op")
	}
	// Tiny targets keep every phase alive.
	tiny := m.Scaled(1)
	for i, ph := range tiny.Phases {
		if ph.Instructions < 1 {
			t.Fatalf("phase %d scaled to %d instructions", i, ph.Instructions)
		}
	}
}

func equalPhases(a, b []Phase) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package workload

import (
	"fmt"
	"sort"
)

// A MultiPhase workload is a piecewise sequence of the single-benchmark
// Profiles: each Phase runs one profile for a dynamic instruction budget,
// then execution moves to the next phase. Real programs alternate between
// compute-bound, memory-bound and cache-capacity-sensitive regions; the
// phase sequence is exactly the structure a dual-mode (high/low voltage)
// scheduler exploits, because the profitable operating mode differs per
// phase. The builtin multi-phase workloads below compose the 26 SPEC
// profiles into the alternation patterns the dvfs package schedules over.

// Phase is one segment of a multi-phase workload: a benchmark profile and
// the number of dynamic instructions it runs for at reference scale.
type Phase struct {
	Benchmark    string // a Profiles() name
	Instructions int    // dynamic length at reference scale
}

// MultiPhase is a named piecewise workload.
type MultiPhase struct {
	Name   string
	Phases []Phase
}

// Check validates the workload: every phase must name a known profile and
// carry a positive instruction budget.
func (m MultiPhase) Check() error {
	if m.Name == "" {
		return fmt.Errorf("workload: multi-phase workload needs a name")
	}
	if len(m.Phases) == 0 {
		return fmt.Errorf("workload %s: needs at least one phase", m.Name)
	}
	for i, ph := range m.Phases {
		if ph.Instructions <= 0 {
			return fmt.Errorf("workload %s: phase %d instructions %d must be positive", m.Name, i, ph.Instructions)
		}
		if _, err := ByName(ph.Benchmark); err != nil {
			return fmt.Errorf("workload %s: phase %d: %w", m.Name, i, err)
		}
	}
	return nil
}

// TotalInstructions sums the phase budgets.
func (m MultiPhase) TotalInstructions() int {
	n := 0
	for _, ph := range m.Phases {
		n += ph.Instructions
	}
	return n
}

// Scaled returns a copy whose phase budgets are rescaled proportionally so
// the total is approximately total (each phase keeps at least one
// instruction). The scaling is pure integer arithmetic on the phase
// ratios, so a given (workload, total) pair always yields the identical
// phase schedule.
func (m MultiPhase) Scaled(total int) MultiPhase {
	cur := m.TotalInstructions()
	if total <= 0 || cur == 0 || cur == total {
		return m
	}
	out := MultiPhase{Name: m.Name, Phases: make([]Phase, len(m.Phases))}
	for i, ph := range m.Phases {
		n := ph.Instructions * total / cur
		if n < 1 {
			n = 1
		}
		out.Phases[i] = Phase{Benchmark: ph.Benchmark, Instructions: n}
	}
	return out
}

// MultiPhaseProfiles returns the builtin multi-phase workloads. Each
// encodes a scheduling scenario the paper's dual-mode system faces:
//
//   - compute-memory-swing: a compute-bound kernel (eon) alternating with
//     a pointer-chasing memory-bound region (mcf) — the canonical case
//     where the oracle runs compute phases at high voltage and memory
//     phases below Vcc-min.
//   - bursty-server: short compute bursts (gzip) between long
//     memory-dominated scans (art), the request/scan rhythm of a server.
//   - cache-pressure-ramp: capacity-sensitive phases of growing working
//     set (gzip → vpr → crafty → gcc) ending memory-bound (swim) — mode
//     choice interacts with how much cache the low-voltage scheme keeps.
//   - steady-compute: sixtrack then eon, compute-bound throughout — the
//     control case where phase-aware scheduling should discover that
//     staying at one operating point is optimal.
func MultiPhaseProfiles() []MultiPhase {
	const u = 10_000 // reference phase unit
	return []MultiPhase{
		{Name: "compute-memory-swing", Phases: []Phase{
			{Benchmark: "eon", Instructions: 2 * u},
			{Benchmark: "mcf", Instructions: 2 * u},
			{Benchmark: "eon", Instructions: 2 * u},
			{Benchmark: "mcf", Instructions: 2 * u},
			{Benchmark: "eon", Instructions: 2 * u},
			{Benchmark: "mcf", Instructions: 2 * u},
		}},
		{Name: "bursty-server", Phases: []Phase{
			{Benchmark: "gzip", Instructions: u},
			{Benchmark: "art", Instructions: 3 * u},
			{Benchmark: "gzip", Instructions: u},
			{Benchmark: "art", Instructions: 3 * u},
			{Benchmark: "gzip", Instructions: u},
			{Benchmark: "art", Instructions: 3 * u},
		}},
		{Name: "cache-pressure-ramp", Phases: []Phase{
			{Benchmark: "gzip", Instructions: 2 * u},
			{Benchmark: "vpr", Instructions: 2 * u},
			{Benchmark: "crafty", Instructions: 3 * u},
			{Benchmark: "gcc", Instructions: 3 * u},
			{Benchmark: "swim", Instructions: 2 * u},
		}},
		{Name: "steady-compute", Phases: []Phase{
			{Benchmark: "sixtrack", Instructions: 3 * u},
			{Benchmark: "eon", Instructions: 3 * u},
			{Benchmark: "sixtrack", Instructions: 3 * u},
			{Benchmark: "eon", Instructions: 3 * u},
		}},
	}
}

// MultiPhaseByName returns the builtin multi-phase workload with the
// given name.
func MultiPhaseByName(name string) (MultiPhase, error) {
	for _, m := range MultiPhaseProfiles() {
		if m.Name == name {
			return m, nil
		}
	}
	return MultiPhase{}, fmt.Errorf("workload: unknown multi-phase workload %q", name)
}

// MultiPhaseNames returns the builtin multi-phase workload names in
// definition order.
func MultiPhaseNames() []string {
	ms := MultiPhaseProfiles()
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Name
	}
	return names
}

// MultiPhaseNamesSorted returns the builtin names alphabetically.
func MultiPhaseNamesSorted() []string {
	n := MultiPhaseNames()
	sort.Strings(n)
	return n
}

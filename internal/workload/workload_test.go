package workload

import (
	"math"
	"strings"
	"testing"

	"vccmin/internal/trace"
)

func TestAllProfilesValid(t *testing.T) {
	ps := Profiles()
	if len(ps) != 26 {
		t.Fatalf("got %d profiles, want 26 (the SPEC CPU 2000 suite)", len(ps))
	}
	seen := map[string]bool{}
	nfp, nint := 0, 0
	for _, p := range ps {
		if err := p.Check(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
		switch p.Suite {
		case "fp":
			nfp++
		case "int":
			nint++
		default:
			t.Errorf("profile %s has unknown suite %q", p.Name, p.Suite)
		}
	}
	if nfp != 14 || nint != 12 {
		t.Errorf("suite split = %d fp, %d int; want 14/12", nfp, nint)
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("crafty")
	if err != nil || p.Name != "crafty" {
		t.Errorf("ByName(crafty) = %v, %v", p.Name, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("ByName accepted unknown benchmark")
	}
	if len(Names()) != 26 || len(NamesSorted()) != 26 {
		t.Error("name lists wrong length")
	}
}

// TestProfileCheckRejects drives every error branch of Profile.Check and
// pins that the message names what went wrong — a profile author sees
// the failing field, not a generic rejection.
func TestProfileCheckRejects(t *testing.T) {
	good, _ := ByName("gzip")
	cases := []struct {
		name    string
		wantErr string // substring the error must carry
		mutate  func(*Profile)
	}{
		{"empty name", "needs a name",
			func(p *Profile) { p.Name = "" }},
		{"mix above bound", "out of [0, 0.95]",
			func(p *Profile) { p.LoadFrac = 0.9; p.StoreFrac = 0.4 }},
		{"negative mix", "out of [0, 0.95]",
			func(p *Profile) { p.LoadFrac = -0.5; p.StoreFrac = 0.1; p.BranchFrac = 0.1 }},
		{"fp fraction above one", "FP/mult fractions",
			func(p *Profile) { p.FPFrac = 1.5 }},
		{"mult fraction negative", "FP/mult fractions",
			func(p *Profile) { p.MultFrac = -0.1 }},
		{"cold fraction negative", "cold fraction",
			func(p *Profile) { p.ColdFrac = -0.1 }},
		{"cold fraction above one", "cold fraction",
			func(p *Profile) { p.ColdFrac = 1.1 }},
		{"memory without reuse", "need reuse components",
			func(p *Profile) { p.Reuse = nil; p.ColdFrac = 0.5 }},
		{"no instruction footprint", "instruction footprint",
			func(p *Profile) { p.IFootprintBlocks = 0 }},
		{"no static branches", "static branches",
			func(p *Profile) { p.StaticBranches = 0 }},
		{"random branch fraction", "random branch fraction",
			func(p *Profile) { p.RandomBranchFrac = 2 }},
		{"dependence distance below one", "must be >= 1",
			func(p *Profile) { p.MeanDepDist = 0.5 }},
		{"negative target bias", "target bias",
			func(p *Profile) { p.TargetBias = -1 }},
		{"load chain fraction", "load chain fraction",
			func(p *Profile) { p.LoadChainFrac = 1.5 }},
		{"reuse weight", "reuse component",
			func(p *Profile) { p.Reuse = []ReuseComponent{{Weight: -1, Blocks: 10}} }},
		{"reuse blocks", "reuse component",
			func(p *Profile) { p.Reuse = []ReuseComponent{{Weight: 1, Blocks: 0}} }},
		{"negative hot sets", "negative hot sets",
			func(p *Profile) { p.Reuse = []ReuseComponent{{Weight: 1, Blocks: 10, HotSets: -2}} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := good
			p.Reuse = append([]ReuseComponent(nil), good.Reuse...)
			tc.mutate(&p)
			err := p.Check()
			if err == nil {
				t.Fatal("Check accepted an invalid profile")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	p, _ := ByName("gcc")
	a := trace.Collect(MustNewGenerator(p, 7), 5000)
	b := trace.Collect(MustNewGenerator(p, 7), 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instr %d differs between identical generators", i)
		}
	}
	c := trace.Collect(MustNewGenerator(p, 8), 5000)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical traces")
	}
}

func TestInstructionMixMatchesProfile(t *testing.T) {
	for _, name := range []string{"crafty", "swim", "mcf"} {
		p, _ := ByName(name)
		g := MustNewGenerator(p, 1)
		const n = 200000
		counts := make(map[trace.Class]int)
		var ins trace.Instr
		for i := 0; i < n; i++ {
			g.Next(&ins)
			counts[ins.Class]++
		}
		// Classes are fixed per PC, so the realized dynamic mix is the
		// configured mix reweighted by code-region heat — approximate by
		// design, like a real binary's dynamic profile.
		checkFrac := func(what string, got int, want float64) {
			t.Helper()
			f := float64(got) / n
			if math.Abs(f-want) > 0.05 {
				t.Errorf("%s %s fraction = %v, want ≈%v", name, what, f, want)
			}
		}
		checkFrac("load", counts[trace.Load], p.LoadFrac)
		checkFrac("store", counts[trace.Store], p.StoreFrac)
		checkFrac("branch", counts[trace.Branch], p.BranchFrac)
	}
}

func TestMemOpsCarryAddresses(t *testing.T) {
	p, _ := ByName("ammp")
	g := MustNewGenerator(p, 2)
	var ins trace.Instr
	for i := 0; i < 50000; i++ {
		g.Next(&ins)
		if ins.Class.IsMem() && ins.Addr == 0 {
			t.Fatal("memory op without address")
		}
		if !ins.Class.IsMem() && ins.Addr != 0 {
			t.Fatal("non-memory op with address")
		}
	}
}

func TestBranchTargetsConsistentPerSite(t *testing.T) {
	// The same branch PC must always jump to the same target (so the BTB
	// can learn it).
	p, _ := ByName("vpr")
	g := MustNewGenerator(p, 3)
	targets := map[uint64]uint64{}
	var ins trace.Instr
	for i := 0; i < 300000; i++ {
		g.Next(&ins)
		if ins.Class != trace.Branch {
			continue
		}
		if prev, ok := targets[ins.PC]; ok && prev != ins.Target {
			t.Fatalf("branch at %#x changed target %#x -> %#x", ins.PC, prev, ins.Target)
		}
		targets[ins.PC] = ins.Target
	}
	if len(targets) < 10 {
		t.Errorf("only %d distinct branch sites observed", len(targets))
	}
}

func TestPCStaysInFootprint(t *testing.T) {
	p, _ := ByName("eon")
	g := MustNewGenerator(p, 4)
	limit := codeBase + uint64(p.IFootprintBlocks)*blockSize
	var ins trace.Instr
	for i := 0; i < 100000; i++ {
		g.Next(&ins)
		if ins.PC < codeBase || ins.PC >= limit {
			t.Fatalf("PC %#x outside footprint [%#x, %#x)", ins.PC, codeBase, limit)
		}
		if ins.Class == trace.Branch && ins.Taken {
			if ins.Target < codeBase || ins.Target >= limit {
				t.Fatalf("branch target %#x outside footprint", ins.Target)
			}
		}
	}
}

func TestDataFootprintMatchesComponents(t *testing.T) {
	// All reuse addresses must land inside their component's region, and
	// the number of distinct blocks per component must approximate the
	// configured working set.
	p := Profile{
		Name: "synthetic", Suite: "int",
		LoadFrac: 0.5, BranchFrac: 0.05,
		Reuse:            []ReuseComponent{{Weight: 1, Blocks: 256}},
		IFootprintBlocks: 16, StaticBranches: 32, MeanDepDist: 3,
	}
	g := MustNewGenerator(p, 5)
	blocks := map[uint64]bool{}
	var ins trace.Instr
	for i := 0; i < 200000; i++ {
		g.Next(&ins)
		if ins.Class != trace.Load {
			continue
		}
		if ins.Addr < reuseBase || ins.Addr >= reuseBase+reuseStep {
			t.Fatalf("reuse address %#x outside component region", ins.Addr)
		}
		blocks[ins.Addr/blockSize] = true
	}
	if len(blocks) != 256 {
		t.Errorf("distinct blocks = %d, want 256", len(blocks))
	}
}

func TestHotSetsConcentrate(t *testing.T) {
	p := Profile{
		Name: "hot", Suite: "int",
		LoadFrac: 0.5, BranchFrac: 0.05,
		Reuse:            []ReuseComponent{{Weight: 1, Blocks: 256, HotSets: 8}},
		IFootprintBlocks: 16, StaticBranches: 32, MeanDepDist: 3,
	}
	g := MustNewGenerator(p, 6)
	sets := map[uint64]bool{}
	var ins trace.Instr
	for i := 0; i < 100000; i++ {
		g.Next(&ins)
		if ins.Class == trace.Load {
			sets[(ins.Addr/blockSize)%l1Sets] = true
		}
	}
	if len(sets) != 8 {
		t.Errorf("hot component touched %d sets, want exactly 8", len(sets))
	}
}

func TestColdStreamIsFresh(t *testing.T) {
	p := Profile{
		Name: "stream", Suite: "fp",
		LoadFrac: 0.6, BranchFrac: 0.02, ColdFrac: 1,
		Reuse:            []ReuseComponent{{Weight: 1, Blocks: 64}},
		IFootprintBlocks: 16, StaticBranches: 32, MeanDepDist: 8,
	}
	g := MustNewGenerator(p, 7)
	var ins trace.Instr
	prev := uint64(0)
	for i := 0; i < 50000; i++ {
		g.Next(&ins)
		if ins.Class != trace.Load {
			continue
		}
		if ins.Addr <= prev {
			t.Fatal("cold stream must walk forward monotonically")
		}
		prev = ins.Addr
	}
}

func TestDependenceDistanceMean(t *testing.T) {
	for _, name := range []string{"mcf", "swim"} {
		p, _ := ByName(name)
		g := MustNewGenerator(p, 8)
		var ins trace.Instr
		sum, n := 0.0, 0
		for i := 0; i < 100000; i++ {
			g.Next(&ins)
			sum += float64(ins.Dep1)
			n++
			if ins.Dep1 < 1 || ins.Dep1 > 64 {
				t.Fatalf("dep distance %d out of [1,64]", ins.Dep1)
			}
		}
		mean := sum / float64(n)
		if math.Abs(mean-p.MeanDepDist) > 0.25*p.MeanDepDist {
			t.Errorf("%s mean dep distance = %v, want ≈%v", name, mean, p.MeanDepDist)
		}
	}
}

func TestTakenFractionReasonable(t *testing.T) {
	// Biased sites are 70% taken-biased: overall taken rate should be
	// substantial but not extreme.
	p, _ := ByName("gcc")
	g := MustNewGenerator(p, 9)
	var ins trace.Instr
	taken, branches := 0, 0
	for i := 0; i < 300000; i++ {
		g.Next(&ins)
		if ins.Class == trace.Branch {
			branches++
			if ins.Taken {
				taken++
			}
		}
	}
	rate := float64(taken) / float64(branches)
	if rate < 0.4 || rate > 0.9 {
		t.Errorf("taken rate = %v, want in [0.4, 0.9]", rate)
	}
}

// Package workload synthesizes instruction traces that stand in for the 26
// SPEC CPU 2000 benchmarks of the paper's evaluation (we have no SPEC
// binaries or SimPoint traces; see DESIGN.md).
//
// Each benchmark is a Profile: an instruction mix, a data-reuse mixture
// (components with a working-set size in cache blocks, optionally
// concentrated in a few cache sets), an instruction footprint, a static
// branch population with per-site bias, and a register-dependence-distance
// distribution that sets the available ILP. The generator draws a dynamic
// stream from the profile with a deterministic PRNG, so every run of a
// given (profile, seed) yields the identical trace.
//
// The components give direct control over the property the paper's
// experiments stress: how the miss ratio responds to losing cache capacity
// (word-disabling halves it; block-disabling removes a random ~42%) and
// associativity, which is exactly what distinguishes capacity-sensitive
// (crafty, vortex, gcc), memory-bound (mcf, art, swim) and compute-bound
// (eon, sixtrack) benchmarks.
package workload

import (
	"fmt"
	"math"

	"vccmin/internal/lfrand"
	"vccmin/internal/trace"
)

// ReuseComponent is one level of a benchmark's data working set.
type ReuseComponent struct {
	Weight  float64 // share of reused (non-streaming) accesses
	Blocks  int     // working-set size in 64-byte blocks
	HotSets int     // >0: concentrate the component on this many cache sets
}

// Profile characterizes one benchmark.
type Profile struct {
	Name  string
	Suite string // "int" or "fp"

	// Instruction mix; the remainder is ALU work.
	LoadFrac, StoreFrac, BranchFrac float64
	FPFrac                          float64 // share of ALU ops that are floating point
	MultFrac                        float64 // share of ALU ops that are multiplies/divides

	// Data side.
	ColdFrac float64 // share of data accesses streaming through new blocks
	Reuse    []ReuseComponent

	// Instruction side.
	IFootprintBlocks int // static code size in 64-byte blocks

	// Control flow.
	StaticBranches   int
	RandomBranchFrac float64 // share of branch sites with 50/50 outcomes

	// TargetBias skews branch targets toward the front of the code
	// footprint: a site's target block is floor(N * u^TargetBias) for a
	// per-site uniform u. 1 (or 0) = uniform targets; larger values
	// concentrate execution in a hot code region, so a cache that holds
	// the hot region performs well while a halved cache thrashes — the
	// instruction-side locality of large-footprint benchmarks (crafty,
	// gcc, perlbmk, vortex).
	TargetBias float64

	// Mean register dependence distance (instructions); larger = more ILP.
	MeanDepDist float64

	// LoadChainFrac is the probability that a load's first source is the
	// most recent earlier load — a pointer-chase dependence that
	// serializes misses and exposes their full latency. Array codes sit
	// near 0.15 (addresses come from induction variables); pointer codes
	// like mcf approach 0.8.
	LoadChainFrac float64
}

// Check validates the profile.
func (p Profile) Check() error {
	frac := p.LoadFrac + p.StoreFrac + p.BranchFrac
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile needs a name")
	case frac < 0 || frac > 0.95:
		return fmt.Errorf("workload %s: load+store+branch = %v out of [0, 0.95]", p.Name, frac)
	case p.FPFrac < 0 || p.FPFrac > 1 || p.MultFrac < 0 || p.MultFrac > 1:
		return fmt.Errorf("workload %s: FP/mult fractions out of range", p.Name)
	case p.ColdFrac < 0 || p.ColdFrac > 1:
		return fmt.Errorf("workload %s: cold fraction %v out of range", p.Name, p.ColdFrac)
	case len(p.Reuse) == 0 && p.ColdFrac < 1 && p.LoadFrac+p.StoreFrac > 0:
		return fmt.Errorf("workload %s: memory accesses need reuse components", p.Name)
	case p.IFootprintBlocks <= 0:
		return fmt.Errorf("workload %s: instruction footprint must be positive", p.Name)
	case p.StaticBranches <= 0:
		return fmt.Errorf("workload %s: needs static branches", p.Name)
	case p.RandomBranchFrac < 0 || p.RandomBranchFrac > 1:
		return fmt.Errorf("workload %s: random branch fraction out of range", p.Name)
	case p.MeanDepDist < 1:
		return fmt.Errorf("workload %s: mean dependence distance %v must be >= 1", p.Name, p.MeanDepDist)
	case p.TargetBias < 0:
		return fmt.Errorf("workload %s: target bias %v must be non-negative", p.Name, p.TargetBias)
	case p.LoadChainFrac < 0 || p.LoadChainFrac > 1:
		return fmt.Errorf("workload %s: load chain fraction %v out of [0,1]", p.Name, p.LoadChainFrac)
	}
	for _, c := range p.Reuse {
		if c.Weight <= 0 || c.Blocks <= 0 {
			return fmt.Errorf("workload %s: reuse component %+v invalid", p.Name, c)
		}
		if c.HotSets < 0 {
			return fmt.Errorf("workload %s: negative hot sets", p.Name)
		}
	}
	return nil
}

// Address-space layout of the synthetic process image. Regions are spaced
// far apart so components never alias.
const (
	codeBase  = uint64(0x0000_4000_0000) >> 0 // instruction region
	coldBase  = uint64(0x1_0000_0000)         // streaming region
	reuseBase = uint64(0x2_0000_0000)         // first reuse component
	reuseStep = uint64(0x1_0000_0000)         // spacing between components
	blockSize = 64
	instrSize = 4
	l1Sets    = 64 // reference L1 set count, used by hot-set placement
)

// Generator draws the dynamic stream of a profile. Its PRNG is an
// lfrand.Source — byte-identical to the math/rand stream the package
// has always used, but a concrete inlinable value with allocation-free
// reseeding — and its per-site branch state lives in a slice sized to
// the profile's static branch population, so steady-state generation
// (and Reset) never touches the heap.
type Generator struct {
	prof Profile
	rng  lfrand.Source

	pc        uint64
	coldNext  uint64
	cumReuse  []float64 // cumulative component weights
	depP      float64   // geometric parameter for dependence distances
	logQdep   float64   // ln(1-depP), hoisted out of depDist
	footBytes uint64
	sinceLoad int         // instructions since the last load (for load chains)
	sites     []siteState // indexed by site id; period 0 = not yet visited
}

// siteState tracks a static branch's position in its outcome pattern.
// Biased sites emit deterministic periodic patterns (a loop that runs L
// iterations then exits, or a guard that fires every L-th time), which is
// what real control flow looks like and what history-based predictors
// learn; random sites flip a fair coin every visit.
type siteState struct {
	kind   siteKind
	period uint32
	pos    uint32
}

type siteKind uint8

const (
	siteRandom siteKind = iota
	siteLoop            // taken except once per period
	siteGuard           // not taken except once per period
)

// NewGenerator builds a generator for prof seeded with seed.
func NewGenerator(prof Profile, seed int64) (*Generator, error) {
	if err := prof.Check(); err != nil {
		return nil, err
	}
	g := &Generator{
		prof:      prof,
		pc:        codeBase,
		coldNext:  coldBase,
		depP:      1 / prof.MeanDepDist,
		footBytes: uint64(prof.IFootprintBlocks) * blockSize,
		sites:     make([]siteState, prof.StaticBranches),
	}
	g.rng.Seed(seed ^ int64(hash64(prof.Name)))
	g.logQdep = math.Log(1 - g.depP)
	total := 0.0
	for _, c := range prof.Reuse {
		total += c.Weight
	}
	cum := 0.0
	for _, c := range prof.Reuse {
		cum += c.Weight / total
		g.cumReuse = append(g.cumReuse, cum)
	}
	return g, nil
}

// Reset rewinds the generator to the state NewGenerator(prof, seed)
// would construct, reusing every buffer: after Reset the generator
// emits the identical stream a fresh generator for the same (profile,
// seed) would. It allocates nothing, which is what lets the dvfs
// scheduler's chunk loop re-run a workload without touching the heap.
func (g *Generator) Reset(seed int64) {
	g.rng.Seed(seed ^ int64(hash64(g.prof.Name)))
	g.pc = codeBase
	g.coldNext = coldBase
	g.sinceLoad = 0
	for i := range g.sites {
		g.sites[i] = siteState{}
	}
}

// MustNewGenerator is NewGenerator but panics on error.
func MustNewGenerator(prof Profile, seed int64) *Generator {
	g, err := NewGenerator(prof, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// Next implements trace.Generator.
func (g *Generator) Next(out *trace.Instr) {
	*out = trace.Instr{PC: g.pc}
	// The instruction at a PC is fixed, as in real code: the class comes
	// from a hash of the PC, not a per-visit draw. This keeps branch PCs
	// a stable subset of the footprint (so the BTB can hold them) and
	// makes the dynamic branch-history sequence repeat (so gshare can
	// learn it).
	r := float64(hash64Mix(g.pc^0xC1A55)) / float64(math.MaxUint64)
	p := g.prof
	switch {
	case r < p.BranchFrac:
		out.Class = trace.Branch
		g.genBranch(out)
	case r < p.BranchFrac+p.LoadFrac:
		out.Class = trace.Load
		out.Addr = g.dataAddr()
	case r < p.BranchFrac+p.LoadFrac+p.StoreFrac:
		out.Class = trace.Store
		out.Addr = g.dataAddr()
	default:
		out.Class = g.aluClass(g.pc)
	}
	out.Dep1 = g.depDist()
	if out.Class == trace.Load && g.sinceLoad > 0 && g.sinceLoad <= 64 &&
		g.rng.Float64() < p.LoadChainFrac {
		// Pointer chase: the address depends on the previous load's value.
		out.Dep1 = int32(g.sinceLoad)
	}
	if g.rng.Float64() < 0.5 {
		out.Dep2 = g.depDist()
	}
	if out.Class == trace.Load {
		g.sinceLoad = 1
	} else if g.sinceLoad > 0 {
		g.sinceLoad++
	}
	if out.Class != trace.Branch || !out.Taken {
		g.pc = g.advance(g.pc)
	} else {
		g.pc = out.Target
	}
}

// advance steps the PC to the next instruction, wrapping at the footprint.
func (g *Generator) advance(pc uint64) uint64 {
	pc += instrSize
	if pc >= codeBase+g.footBytes {
		pc = codeBase
	}
	return pc
}

func (g *Generator) aluClass(pc uint64) trace.Class {
	fp := float64(hash64Mix(pc^0xF9))/float64(math.MaxUint64) < g.prof.FPFrac
	mult := float64(hash64Mix(pc^0x3333))/float64(math.MaxUint64) < g.prof.MultFrac
	switch {
	case fp && mult:
		return trace.FPMult
	case fp:
		return trace.FPALU
	case mult:
		return trace.IntMult
	default:
		return trace.IntALU
	}
}

// genBranch resolves the branch at the current PC: its site identity,
// outcome and target. Sites have fixed targets (BTB-friendly) and
// deterministic periodic outcome patterns (which gshare learns), except
// for the RandomBranchFrac of sites that are data-dependent coin flips.
func (g *Generator) genBranch(out *trace.Instr) {
	site := hash64Mix(out.PC) % uint64(g.prof.StaticBranches)
	st := &g.sites[site]
	if st.period == 0 {
		// First visit: derive the site's fixed character. Everything here
		// comes from hash mixes, never the rng, so lazily initializing a
		// site does not perturb the draw stream (Reset relies on this).
		siteRand := float64(hash64Mix(site+0x9E3779B9)) / float64(math.MaxUint64)
		st.period = 3 + uint32(hash64Mix(site+0xABCD)%29)
		switch {
		case siteRand < g.prof.RandomBranchFrac:
			st.kind = siteRandom
		case siteRand < g.prof.RandomBranchFrac+(1-g.prof.RandomBranchFrac)*0.7:
			st.kind = siteLoop
		default:
			st.kind = siteGuard
		}
	}
	switch st.kind {
	case siteRandom:
		// Data-dependent branch: a coin flip every visit, unlearnable.
		out.Taken = g.rng.Intn(2) == 0
	case siteLoop:
		// Loop back-edge: strongly taken. The per-site bias survives the
		// history noise of interleaved branches, which is what lets a
		// global-history predictor reach its realistic accuracy here.
		out.Taken = g.rng.Float64() < 0.99
	case siteGuard:
		// Error/guard test: strongly not taken.
		out.Taken = g.rng.Float64() < 0.01
	}
	st.pos++
	// Fixed per-site target: a block start inside the footprint, biased
	// toward the hot front of the code when TargetBias > 1.
	u := float64(hash64Mix(site+0x5151_5151)) / float64(math.MaxUint64)
	if g.prof.TargetBias > 1 {
		u = math.Pow(u, g.prof.TargetBias)
	}
	tgtBlock := uint64(u * float64(g.prof.IFootprintBlocks))
	if tgtBlock >= uint64(g.prof.IFootprintBlocks) {
		tgtBlock = uint64(g.prof.IFootprintBlocks) - 1
	}
	out.Target = codeBase + tgtBlock*blockSize
}

// dataAddr draws the effective address of a load or store.
func (g *Generator) dataAddr() uint64 {
	p := g.prof
	if len(p.Reuse) == 0 || g.rng.Float64() < p.ColdFrac {
		// Streaming: walk forward one word at a time through fresh memory.
		a := g.coldNext
		g.coldNext += 8
		return a
	}
	r := g.rng.Float64()
	ci := 0
	for ci < len(g.cumReuse)-1 && r > g.cumReuse[ci] {
		ci++
	}
	c := p.Reuse[ci]
	u := g.rng.Intn(c.Blocks)
	blockIdx := uint64(u)
	if c.HotSets > 0 {
		// Fold the component onto a narrow band of cache sets: set index
		// becomes u mod HotSets.
		blockIdx = uint64(u/c.HotSets)*l1Sets + uint64(u%c.HotSets)
	}
	base := reuseBase + uint64(ci)*reuseStep
	return base + blockIdx*blockSize + uint64(g.rng.Intn(blockSize/8))*8
}

// depDist draws a register dependence distance >= 1 from a geometric
// distribution with the profile's mean, capped at 64 (beyond any
// realistic scheduling window effect).
func (g *Generator) depDist() int32 {
	u := g.rng.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	d := 1 + int32(math.Log(u)/g.logQdep)
	if d > 64 {
		d = 64
	}
	if d < 1 {
		d = 1
	}
	return d
}

// hash64 hashes a string (FNV-1a).
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// hash64Mix is a splitmix64-style integer mixer.
func hash64Mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

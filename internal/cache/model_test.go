package cache

// Model-based testing: drive the production cache and an obviously-correct
// reference implementation (map + explicit recency list, no packing or
// masking tricks) with the same random access streams and require
// identical hit/miss behaviour, including disabled ways and the victim
// cache swap protocol.

import (
	"math/rand"
	"testing"

	"vccmin/internal/core"
	"vccmin/internal/geom"
)

// refCache is the executable specification: LRU per set over enabled ways,
// optional fully-associative LRU victim buffer with remove-on-hit.
type refCache struct {
	g      geom.Geometry
	enable *core.BlockDisableMap
	sets   []map[uint64]int // tag -> recency stamp
	victim map[geom.Addr]int
	vcap   int
	stamp  int
}

func newRefCache(g geom.Geometry, enable *core.BlockDisableMap, victimEntries int) *refCache {
	r := &refCache{g: g, enable: enable, sets: make([]map[uint64]int, g.Sets()), vcap: victimEntries}
	for i := range r.sets {
		r.sets[i] = make(map[uint64]int)
	}
	if victimEntries > 0 {
		r.victim = make(map[geom.Addr]int)
	}
	return r
}

func (r *refCache) ways(set int) int {
	if r.enable == nil {
		return r.g.Ways
	}
	return r.enable.Sets[set].Count()
}

// access returns (hit, victimHit).
func (r *refCache) access(a geom.Addr) (bool, bool) {
	r.stamp++
	set := r.g.SetOf(a)
	tag := r.g.TagOf(a)
	if _, ok := r.sets[set][tag]; ok {
		r.sets[set][tag] = r.stamp
		return true, false
	}
	block := r.g.BlockAddr(a)
	victimHit := false
	if r.victim != nil {
		if _, ok := r.victim[block]; ok {
			victimHit = true
			delete(r.victim, block)
		}
	}
	r.insert(set, tag, block)
	return false, victimHit
}

func (r *refCache) insert(set int, tag uint64, block geom.Addr) {
	capacity := r.ways(set)
	if capacity == 0 {
		if r.victim != nil {
			r.vinsert(block)
		}
		return
	}
	if len(r.sets[set]) >= capacity {
		// Evict LRU.
		var lruTag uint64
		lru := int(^uint(0) >> 1)
		for t, s := range r.sets[set] {
			if s < lru {
				lru, lruTag = s, t
			}
		}
		delete(r.sets[set], lruTag)
		if r.victim != nil {
			evicted := geom.Addr(lruTag)<<uint(r.g.IndexBits()+r.g.OffsetBits()) |
				geom.Addr(set)<<uint(r.g.OffsetBits())
			r.vinsert(evicted)
		}
	}
	r.sets[set][tag] = r.stamp
}

func (r *refCache) vinsert(block geom.Addr) {
	if r.vcap == 0 {
		return
	}
	if _, ok := r.victim[block]; ok {
		r.victim[block] = r.stamp
		return
	}
	if len(r.victim) >= r.vcap {
		var lruA geom.Addr
		lru := int(^uint(0) >> 1)
		for a, s := range r.victim {
			if s < lru {
				lru, lruA = s, a
			}
		}
		delete(r.victim, lruA)
	}
	r.victim[block] = r.stamp
}

// runModelComparison drives both implementations over n random accesses.
func runModelComparison(t *testing.T, g geom.Geometry, enable *core.BlockDisableMap, victimEntries, n int, seed int64) {
	t.Helper()
	mem := &Memory{Latency: 10}
	c := MustNew("L1", g, 3, mem)
	c.Enable = enable
	if victimEntries > 0 {
		c.Victim = MustNewVictim(victimEntries, 1, g.BlockBytes)
	}
	ref := newRefCache(g, enable, victimEntries)
	rng := rand.New(rand.NewSource(seed))
	addrSpace := uint64(g.SizeBytes * 8) // 8x the cache: plenty of conflict
	for i := 0; i < n; i++ {
		a := geom.Addr(rng.Uint64() % addrSpace)
		wantHit, wantVHit := ref.access(a)
		before := c.Stats
		c.Access(a, Read)
		gotHit := c.Stats.Hits == before.Hits+1
		gotVHit := c.Stats.VictimHits == before.VictimHits+1
		if gotHit != wantHit || gotVHit != wantVHit {
			t.Fatalf("access %d (%#x): got hit=%v victimHit=%v, reference says %v/%v",
				i, a, gotHit, gotVHit, wantHit, wantVHit)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestModelPlainCache(t *testing.T) {
	runModelComparison(t, geom.MustNew(4*1024, 4, 64), nil, 0, 30000, 1)
}

func TestModelVictimCache(t *testing.T) {
	runModelComparison(t, geom.MustNew(4*1024, 4, 64), nil, 8, 30000, 2)
}

func TestModelDisabledWays(t *testing.T) {
	g := geom.MustNew(4*1024, 4, 64)
	// A mask with varied per-set associativity, including a dead set.
	d := &core.BlockDisableMap{Geom: g, Sets: make([]core.WayMask, g.Sets())}
	rng := rand.New(rand.NewSource(3))
	for i := range d.Sets {
		d.Sets[i] = core.WayMask(rng.Intn(1 << g.Ways)) // any subset, 0..15
	}
	d.Sets[0] = 0 // force one dead set
	runModelComparison(t, g, d, 0, 30000, 4)
}

func TestModelDisabledWaysWithVictim(t *testing.T) {
	g := geom.MustNew(4*1024, 4, 64)
	d := &core.BlockDisableMap{Geom: g, Sets: make([]core.WayMask, g.Sets())}
	rng := rand.New(rand.NewSource(5))
	for i := range d.Sets {
		d.Sets[i] = core.WayMask(rng.Intn(1 << g.Ways))
	}
	d.Sets[1] = 0
	runModelComparison(t, g, d, 8, 30000, 6)
}

func TestModelReferenceGeometry(t *testing.T) {
	if testing.Short() {
		t.Skip("large model comparison")
	}
	g := geom.MustNew(32*1024, 8, 64)
	runModelComparison(t, g, nil, 16, 60000, 7)
}

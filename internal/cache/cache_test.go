package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vccmin/internal/core"
	"vccmin/internal/faults"
	"vccmin/internal/geom"
)

var refGeom = geom.MustNew(32*1024, 8, 64)

// tiny geometry keeps eviction tests readable: 2 sets, 2 ways, 64B blocks.
var tinyGeom = geom.MustNew(256, 2, 64)

func newL1(t *testing.T, g geom.Geometry, next Level) *Cache {
	t.Helper()
	c, err := New("L1", g, 3, next)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestColdMissThenHit(t *testing.T) {
	mem := &Memory{Latency: 51}
	c := newL1(t, refGeom, mem)
	if lat := c.Access(0x1000, Read); lat != 3+51 {
		t.Errorf("cold miss latency = %d, want 54", lat)
	}
	if lat := c.Access(0x1000, Read); lat != 3 {
		t.Errorf("hit latency = %d, want 3", lat)
	}
	if lat := c.Access(0x1020, Read); lat != 3 {
		t.Errorf("same-block hit latency = %d, want 3", lat)
	}
	if c.Stats.Hits != 2 || c.Stats.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
	if mem.Accesses != 1 {
		t.Errorf("memory accesses = %d, want 1", mem.Accesses)
	}
}

func TestLRUEviction(t *testing.T) {
	mem := &Memory{Latency: 10}
	c := newL1(t, tinyGeom, mem)
	// tiny: 2 sets, 2 ways. Fill set 0 with blocks A, B, touch A, then C
	// must evict B.
	const (
		A = geom.Addr(0x0000) // set 0
		B = geom.Addr(0x0080) // set 0 (2 sets * 64B stride)
		C = geom.Addr(0x0100) // set 0
	)
	c.Access(A, Read)
	c.Access(B, Read)
	c.Access(A, Read) // A most recently used
	c.Access(C, Read) // evicts B
	if !c.Contains(A) || !c.Contains(C) {
		t.Error("A and C should be resident")
	}
	if c.Contains(B) {
		t.Error("B should have been LRU-evicted")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestMultiLevelLatency(t *testing.T) {
	mem := &Memory{Latency: 255}
	l2 := MustNew("L2", geom.MustNew(2*1024*1024, 8, 64), 20, mem)
	l1 := newL1(t, refGeom, l2)
	// Cold: L1 miss + L2 miss + memory.
	if lat := l1.Access(0x4000, Read); lat != 3+20+255 {
		t.Errorf("cold access latency = %d, want 278", lat)
	}
	// L1 hit.
	if lat := l1.Access(0x4000, Read); lat != 3 {
		t.Errorf("L1 hit latency = %d, want 3", lat)
	}
	// Evict from L1 by filling the set, then re-access: L2 hit.
	a := geom.Addr(0x4000)
	for i := 1; i <= refGeom.Ways; i++ {
		l1.Access(a+geom.Addr(i*refGeom.SizeBytes/refGeom.Ways), Read)
	}
	if l1.Contains(a) {
		t.Fatal("fill pattern failed to evict the target block")
	}
	if lat := l1.Access(a, Read); lat != 3+20 {
		t.Errorf("L2 hit latency = %d, want 23", lat)
	}
}

func TestWriteDirtyWriteback(t *testing.T) {
	mem := &Memory{Latency: 10}
	c := newL1(t, tinyGeom, mem)
	c.Access(0x0000, Write) // miss, allocate dirty
	c.Access(0x0080, Read)
	c.Access(0x0100, Read) // evicts 0x0000 (dirty) -> writeback
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
	// A write hit marks dirty.
	c.Access(0x0080, Write)
	c.Access(0x0180, Read) // may evict 0x0080 or 0x0100; 0x0080 is dirty LRU? order: 0x0080 used @write (newer), 0x0100 older -> evicts 0x0100 clean
	if c.Stats.Writebacks != 1 {
		t.Errorf("clean eviction should not write back (writebacks=%d)", c.Stats.Writebacks)
	}
}

func TestDisabledWaysNeverAllocate(t *testing.T) {
	mem := &Memory{Latency: 10}
	c := newL1(t, refGeom, mem)
	fm := faults.Generate(refGeom, 32, 0.002, rand.New(rand.NewSource(4)))
	c.Enable = core.BuildBlockDisable(fm)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20000; i++ {
		c.Access(geom.Addr(rng.Uint64()&(1<<20-1)), Read)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c.ValidLines() > c.Enable.EnabledBlocks() {
		t.Errorf("valid lines %d exceed enabled blocks %d", c.ValidLines(), c.Enable.EnabledBlocks())
	}
}

func TestZeroWaySetBypass(t *testing.T) {
	mem := &Memory{Latency: 10}
	c := newL1(t, tinyGeom, mem)
	c.Enable = &core.BlockDisableMap{Geom: tinyGeom, Sets: []core.WayMask{0, core.AllWays(2)}}
	// Set 0 has no enabled ways: every access misses and bypasses.
	for i := 0; i < 3; i++ {
		if lat := c.Access(0x0000, Read); lat != 3+10 {
			t.Errorf("bypass access latency = %d, want 13", lat)
		}
	}
	if c.Stats.Hits != 0 {
		t.Errorf("zero-way set should never hit, got %d", c.Stats.Hits)
	}
	if c.Stats.Bypasses != 3 {
		t.Errorf("bypasses = %d, want 3", c.Stats.Bypasses)
	}
	// Set 1 (odd block index) still works.
	c.Access(0x0040, Read)
	if lat := c.Access(0x0040, Read); lat != 3 {
		t.Errorf("enabled set hit latency = %d, want 3", lat)
	}
}

func TestVariableAssociativityLRU(t *testing.T) {
	// With one way disabled the set behaves as a 1-way cache.
	mem := &Memory{Latency: 10}
	c := newL1(t, tinyGeom, mem)
	c.Enable = &core.BlockDisableMap{Geom: tinyGeom, Sets: []core.WayMask{0b01, core.AllWays(2)}}
	c.Access(0x0000, Read)
	c.Access(0x0080, Read) // must evict 0x0000: only one usable way
	if c.Contains(0x0000) {
		t.Error("single-way set kept two blocks")
	}
	if !c.Contains(0x0080) {
		t.Error("newest block missing")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestVictimCacheSwap(t *testing.T) {
	mem := &Memory{Latency: 100}
	c := newL1(t, tinyGeom, mem)
	c.Victim = MustNewVictim(4, 1, tinyGeom.BlockBytes)
	c.Access(0x0000, Read)
	c.Access(0x0080, Read)
	c.Access(0x0100, Read) // evicts 0x0000 into V$
	if c.Contains(0x0000) {
		t.Fatal("expected 0x0000 evicted")
	}
	// Access 0x0000: V$ hit, swap back, much faster than memory.
	lat := c.Access(0x0000, Read)
	if lat != 3+1 {
		t.Errorf("victim hit latency = %d, want 4", lat)
	}
	if !c.Contains(0x0000) {
		t.Error("victim hit should reinstall the block in L1")
	}
	if c.Stats.VictimHits != 1 {
		t.Errorf("victim hits = %d, want 1", c.Stats.VictimHits)
	}
	if got := mem.Accesses; got != 3 {
		t.Errorf("memory accesses = %d, want 3 (victim hit must not go to memory)", got)
	}
}

func TestVictimRescuesZeroWaySet(t *testing.T) {
	// The paper's fail-safe: a set with no enabled ways still gets
	// short-latency service from the victim cache.
	mem := &Memory{Latency: 100}
	c := newL1(t, tinyGeom, mem)
	c.Enable = &core.BlockDisableMap{Geom: tinyGeom, Sets: []core.WayMask{0, core.AllWays(2)}}
	c.Victim = MustNewVictim(4, 1, tinyGeom.BlockBytes)
	c.Access(0x0000, Read) // bypass: allocated into V$
	lat := c.Access(0x0000, Read)
	if lat != 3+1 {
		t.Errorf("second access latency = %d, want 4 (victim hit)", lat)
	}
	if mem.Accesses != 1 {
		t.Errorf("memory accesses = %d, want 1", mem.Accesses)
	}
}

func TestVictimCapacityEviction(t *testing.T) {
	v := MustNewVictim(2, 1, 64)
	v.Insert(0x000, false)
	v.Insert(0x040, true)
	v.Insert(0x080, false) // evicts 0x000 (LRU)
	if v.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", v.Evictions)
	}
	if _, ok := v.Probe(0x000); ok {
		t.Error("LRU entry should be gone")
	}
	if _, ok := v.Probe(0x040); !ok {
		t.Error("0x040 should be present")
	}
	// Probe removed it.
	if _, ok := v.Probe(0x040); ok {
		t.Error("probe must remove the entry")
	}
	if v.Valid() != 1 {
		t.Errorf("valid = %d, want 1 (just 0x080)", v.Valid())
	}
}

func TestVictimDirtyWritebackOnEvict(t *testing.T) {
	v := MustNewVictim(1, 1, 64)
	v.Insert(0x000, true)
	v.Insert(0x040, false) // evicts dirty 0x000
	if v.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", v.Writebacks)
	}
}

func TestVictimZeroEntries(t *testing.T) {
	v := MustNewVictim(0, 1, 64)
	v.Insert(0x000, true)
	if _, ok := v.Probe(0x000); ok {
		t.Error("zero-entry victim cache can not hit")
	}
	if v.Writebacks != 1 {
		t.Error("dirty insert into zero-entry V$ must write back")
	}
}

func TestVictimDuplicateInsert(t *testing.T) {
	v := MustNewVictim(4, 1, 64)
	v.Insert(0x000, false)
	v.Insert(0x000, true)
	if v.Valid() != 1 {
		t.Errorf("duplicate insert should refresh, valid = %d", v.Valid())
	}
	l, ok := v.Probe(0x000)
	if !ok || !l.dirty {
		t.Error("refreshed entry should be dirty")
	}
}

func TestPrefetchNextLine(t *testing.T) {
	mem := &Memory{Latency: 50}
	c := newL1(t, refGeom, mem)
	c.PrefetchNextLine = true
	c.Access(0x0000, Read) // miss; prefetches 0x0040
	if !c.Contains(0x0040) {
		t.Fatal("next line not prefetched")
	}
	if lat := c.Access(0x0040, Read); lat != 3 {
		t.Errorf("prefetched line access latency = %d, want 3", lat)
	}
	if c.Stats.Prefetches != 1 || c.Stats.PrefetchHits != 1 {
		t.Errorf("prefetch stats = %+v", c.Stats)
	}
}

func TestResetClearsEverything(t *testing.T) {
	mem := &Memory{Latency: 10}
	c := newL1(t, tinyGeom, mem)
	c.Victim = MustNewVictim(2, 1, tinyGeom.BlockBytes)
	c.Access(0x0000, Write)
	c.Access(0x0080, Read)
	c.Access(0x0100, Read)
	c.Reset()
	if c.ValidLines() != 0 || c.Stats.Accesses != 0 || c.Victim.Valid() != 0 {
		t.Error("reset left state behind")
	}
	if lat := c.Access(0x0000, Read); lat != 3+10 {
		t.Errorf("post-reset access latency = %d, want cold miss", lat)
	}
}

func TestConstructorValidation(t *testing.T) {
	mem := &Memory{Latency: 1}
	if _, err := New("x", geom.Geometry{}, 3, mem); err == nil {
		t.Error("accepted invalid geometry")
	}
	if _, err := New("x", tinyGeom, 0, mem); err == nil {
		t.Error("accepted zero latency")
	}
	if _, err := New("x", tinyGeom, 3, nil); err == nil {
		t.Error("accepted nil next level")
	}
	if _, err := NewVictim(-1, 1, 64); err == nil {
		t.Error("accepted negative victim entries")
	}
	if _, err := NewVictim(4, 0, 64); err == nil {
		t.Error("accepted zero victim latency")
	}
	if _, err := NewVictim(4, 1, 60); err == nil {
		t.Error("accepted non-power-of-two block")
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" || Fetch.String() != "fetch" {
		t.Error("kind names wrong")
	}
	if Kind(7).String() != "Kind(7)" {
		t.Error("unknown kind name wrong")
	}
}

// TestFullyEnabledMatchesNilMask: a block-disable map with every way
// enabled must behave identically to no mask at all.
func TestFullyEnabledMatchesNilMask(t *testing.T) {
	memA, memB := &Memory{Latency: 17}, &Memory{Latency: 17}
	a := newL1(t, refGeom, memA)
	b := newL1(t, refGeom, memB)
	b.Enable = core.FullyEnabled(refGeom)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 30000; i++ {
		addr := geom.Addr(rng.Uint64() & (1<<22 - 1))
		k := Read
		if rng.Intn(4) == 0 {
			k = Write
		}
		la, lb := a.Access(addr, k), b.Access(addr, k)
		if la != lb {
			t.Fatalf("access %d: latency diverged %d vs %d", i, la, lb)
		}
	}
	if a.Stats != b.Stats {
		t.Errorf("stats diverged: %+v vs %+v", a.Stats, b.Stats)
	}
}

// Property: hits + misses == accesses, and miss rate in [0,1].
func TestStatsConservation(t *testing.T) {
	f := func(seed int64) bool {
		mem := &Memory{Latency: 9}
		c := MustNew("L1", tinyGeom, 2, mem)
		c.Victim = MustNewVictim(2, 1, tinyGeom.BlockBytes)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			c.Access(geom.Addr(rng.Uint64()&0xFFF), Kind(rng.Intn(2)))
		}
		s := c.Stats
		return s.Hits+s.Misses == s.Accesses &&
			s.MissRate() >= 0 && s.MissRate() <= 1 &&
			c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: smaller cache never has fewer misses on the same stream
// (LRU inclusion property holds per set for same block size/sets... we use
// same geometry but halved ways, the word-disable situation).
func TestHalvedWaysNeverFewerMisses(t *testing.T) {
	full := MustNew("L1", geom.MustNew(32*1024, 8, 64), 3, &Memory{Latency: 1})
	half := MustNew("L1h", geom.MustNew(16*1024, 4, 64), 3, &Memory{Latency: 1})
	rng := rand.New(rand.NewSource(77))
	// Loop over a working set that fits the big one but not the small one.
	base := geom.Addr(0)
	for i := 0; i < 60000; i++ {
		off := geom.Addr(rng.Intn(24 * 1024))
		full.Access(base+off, Read)
		half.Access(base+off, Read)
	}
	if half.Stats.Misses < full.Stats.Misses {
		t.Errorf("halved cache missed less: %d vs %d", half.Stats.Misses, full.Stats.Misses)
	}
	if half.Stats.MissRate() <= full.Stats.MissRate() {
		t.Errorf("halved cache should have strictly higher miss rate on a 24KB working set: %v vs %v",
			half.Stats.MissRate(), full.Stats.MissRate())
	}
}

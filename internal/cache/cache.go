// Package cache implements the memory-hierarchy substrate of the
// evaluation: set-associative write-back caches with true-LRU replacement,
// per-set way-enable masks (block-disabling's variable associativity), an
// optional fully-associative victim cache, an optional next-line
// prefetcher, and a fixed-latency memory backing the chain.
//
// Timing model: Access returns the number of cycles until the requested
// data is available, accumulated down the hierarchy (L1 hit latency + L2
// latency on an L1 miss, and so on). Bandwidth and MSHR contention are not
// modeled; the out-of-order core overlaps access latencies itself.
package cache

import (
	"fmt"

	"vccmin/internal/core"
	"vccmin/internal/geom"
)

// Kind distinguishes access types for statistics.
type Kind int

const (
	Read Kind = iota
	Write
	Fetch
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Fetch:
		return "fetch"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Level is anything that can serve a block-granularity access and report
// its latency in cycles.
type Level interface {
	Access(a geom.Addr, k Kind) int
}

// Memory is the fixed-latency end of the hierarchy.
type Memory struct {
	Latency  int
	Accesses uint64
}

// Access implements Level.
func (m *Memory) Access(a geom.Addr, k Kind) int {
	m.Accesses++
	return m.Latency
}

// Stats counts cache events.
type Stats struct {
	Accesses     uint64
	Hits         uint64
	Misses       uint64
	VictimHits   uint64 // misses served by the victim cache
	Bypasses     uint64 // accesses to sets with zero enabled ways
	Evictions    uint64
	Writebacks   uint64
	Prefetches   uint64
	PrefetchHits uint64 // demand hits on prefetched-but-unused lines
}

// MissRate returns misses/accesses (victim hits count as misses of the
// main array but do not propagate downstream).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag        uint64
	valid      bool
	dirty      bool
	prefetched bool // filled by prefetch, not yet demanded
	stamp      uint64
}

// Cache is one set-associative level.
type Cache struct {
	Name       string
	Geom       geom.Geometry
	HitLatency int
	Next       Level

	// Enable is the per-set way mask from block-disabling; nil means all
	// ways enabled (high voltage, or a fault-free array).
	Enable *core.BlockDisableMap

	// Victim, when non-nil, is probed on a miss and receives evictions.
	Victim *VictimCache

	// PrefetchNextLine fetches block+1 on every demand miss (the paper's
	// future-work interaction for small block sizes).
	PrefetchNextLine bool

	Stats Stats

	sets  [][]line
	clock uint64
}

// New builds a cache level. next must not be nil.
func New(name string, g geom.Geometry, hitLatency int, next Level) (*Cache, error) {
	if err := g.Check(); err != nil {
		return nil, fmt.Errorf("cache %s: %w", name, err)
	}
	if hitLatency <= 0 {
		return nil, fmt.Errorf("cache %s: hit latency %d must be positive", name, hitLatency)
	}
	if next == nil {
		return nil, fmt.Errorf("cache %s: next level must not be nil", name)
	}
	c := &Cache{Name: name, Geom: g, HitLatency: hitLatency, Next: next}
	c.sets = make([][]line, g.Sets())
	store := make([]line, g.Sets()*g.Ways)
	for i := range c.sets {
		c.sets[i], store = store[:g.Ways], store[g.Ways:]
	}
	return c, nil
}

// MustNew is New but panics on error; for tests and fixed configurations.
func MustNew(name string, g geom.Geometry, hitLatency int, next Level) *Cache {
	c, err := New(name, g, hitLatency, next)
	if err != nil {
		panic(err)
	}
	return c
}

// enabled reports whether (set, way) may hold data.
func (c *Cache) enabled(set, way int) bool {
	return c.Enable == nil || c.Enable.Enabled(set, way)
}

// enabledWays returns the number of allocatable ways in set.
func (c *Cache) enabledWays(set int) int {
	if c.Enable == nil {
		return c.Geom.Ways
	}
	return c.Enable.Sets[set].Count()
}

// Access implements Level: it returns the cycles until data for a is
// available, recursing into the victim cache and the next level on a miss.
func (c *Cache) Access(a geom.Addr, k Kind) int {
	c.Stats.Accesses++
	c.clock++
	set := c.Geom.SetOf(a)
	tag := c.Geom.TagOf(a)
	ways := c.sets[set]

	// Probe the enabled ways.
	for w := range ways {
		l := &ways[w]
		if l.valid && l.tag == tag && c.enabled(set, w) {
			c.Stats.Hits++
			if l.prefetched {
				c.Stats.PrefetchHits++
				l.prefetched = false
			}
			l.stamp = c.clock
			if k == Write {
				l.dirty = true
			}
			return c.HitLatency
		}
	}

	// Miss in the main array: try the victim cache.
	c.Stats.Misses++
	if c.Victim != nil {
		if vl, ok := c.Victim.Probe(a); ok {
			c.Stats.VictimHits++
			// Swap: the victim line returns to the main array (if the set
			// has an enabled frame), displacing a line into the V$.
			c.insert(set, tag, vl.dirty || k == Write, false)
			return c.HitLatency + c.Victim.Latency
		}
	}

	// Fetch from the next level.
	latency := c.HitLatency + c.Next.Access(a, missKind(k))
	c.insert(set, tag, k == Write, false)

	if c.PrefetchNextLine {
		c.prefetch(a + geom.Addr(c.Geom.BlockBytes))
	}
	return latency
}

// missKind maps the access kind propagated downstream on a miss: a write
// miss allocates with a read-for-ownership.
func missKind(k Kind) Kind {
	if k == Write {
		return Read
	}
	return k
}

// prefetch brings addr's block into the cache without charging latency to
// the triggering access. The downstream access is still counted there.
func (c *Cache) prefetch(a geom.Addr) {
	set := c.Geom.SetOf(a)
	tag := c.Geom.TagOf(a)
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if l.valid && l.tag == tag && c.enabled(set, w) {
			return // already present
		}
	}
	c.Stats.Prefetches++
	c.Next.Access(a, Read)
	c.insert(set, tag, false, true)
}

// insert places a block into set, evicting as needed. If the set has no
// enabled ways, the block goes straight to the victim cache when present,
// and is dropped otherwise (bypass).
func (c *Cache) insert(set int, tag uint64, dirty, prefetched bool) {
	if c.enabledWays(set) == 0 {
		c.Stats.Bypasses++
		if c.Victim != nil {
			c.Victim.Insert(c.rebuildAddr(set, tag), dirty)
		}
		return
	}
	ways := c.sets[set]
	victim := -1
	var oldest uint64
	for w := range ways {
		if !c.enabled(set, w) {
			continue
		}
		l := &ways[w]
		if !l.valid {
			victim = w
			break
		}
		if victim == -1 || l.stamp < oldest {
			victim, oldest = w, l.stamp
		}
	}
	l := &ways[victim]
	if l.valid {
		c.Stats.Evictions++
		if c.Victim != nil {
			c.Victim.Insert(c.rebuildAddr(set, l.tag), l.dirty)
		} else if l.dirty {
			c.Stats.Writebacks++
		}
	}
	*l = line{tag: tag, valid: true, dirty: dirty, prefetched: prefetched, stamp: c.clock}
}

// rebuildAddr reconstructs a block address from its set and tag.
func (c *Cache) rebuildAddr(set int, tag uint64) geom.Addr {
	return geom.Addr(tag)<<uint(c.Geom.IndexBits()+c.Geom.OffsetBits()) |
		geom.Addr(set)<<uint(c.Geom.OffsetBits())
}

// Contains reports whether addr's block is present in an enabled way —
// used by tests and invariant checks, not the access path.
func (c *Cache) Contains(a geom.Addr) bool {
	set := c.Geom.SetOf(a)
	tag := c.Geom.TagOf(a)
	for w, l := range c.sets[set] {
		if l.valid && l.tag == tag && c.enabled(set, w) {
			return true
		}
	}
	return false
}

// ValidLines returns the number of valid lines in enabled ways.
func (c *Cache) ValidLines() int {
	n := 0
	for set := range c.sets {
		for w, l := range c.sets[set] {
			if l.valid && c.enabled(set, w) {
				n++
			}
		}
	}
	return n
}

// ResetStats clears the counters while keeping cache contents — used at
// the end of a warmup phase.
func (c *Cache) ResetStats() {
	c.Stats = Stats{}
	if c.Victim != nil {
		c.Victim.ResetStats()
	}
}

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for set := range c.sets {
		for w := range c.sets[set] {
			c.sets[set][w] = line{}
		}
	}
	c.Stats = Stats{}
	c.clock = 0
	if c.Victim != nil {
		c.Victim.Reset()
	}
}

// CheckInvariants verifies structural invariants: no duplicate tags within
// a set's enabled ways, and no valid data in disabled ways. Tests call it.
func (c *Cache) CheckInvariants() error {
	for set := range c.sets {
		seen := map[uint64]bool{}
		for w, l := range c.sets[set] {
			if !l.valid {
				continue
			}
			if !c.enabled(set, w) {
				return fmt.Errorf("cache %s: set %d way %d disabled but valid", c.Name, set, w)
			}
			if seen[l.tag] {
				return fmt.Errorf("cache %s: set %d holds tag %#x twice", c.Name, set, l.tag)
			}
			seen[l.tag] = true
		}
	}
	return nil
}

package cache

import (
	"fmt"

	"vccmin/internal/geom"
)

// VictimCache is the small fully-associative buffer of Jouppi that catches
// blocks evicted from the L1. The paper attaches a 16-entry, 1-cycle
// victim cache to the data cache; built from 10T cells it keeps all
// entries at low voltage, built from 6T cells only the fault-free ones
// (conservatively half, per Section V).
type VictimCache struct {
	Entries int // usable entries at the current operating point
	Latency int

	Probes     uint64
	HitCount   uint64
	Inserts    uint64
	Evictions  uint64
	Writebacks uint64

	lines []vline
	clock uint64
	block int // block size used to align addresses
}

type vline struct {
	addr  geom.Addr // block-aligned
	valid bool
	dirty bool
	stamp uint64
}

// NewVictim builds a victim cache with the given usable entries.
func NewVictim(entries, latency, blockBytes int) (*VictimCache, error) {
	if entries < 0 {
		return nil, fmt.Errorf("victim cache: entries %d must be non-negative", entries)
	}
	if latency <= 0 {
		return nil, fmt.Errorf("victim cache: latency %d must be positive", latency)
	}
	if blockBytes <= 0 || blockBytes&(blockBytes-1) != 0 {
		return nil, fmt.Errorf("victim cache: block size %d must be a positive power of two", blockBytes)
	}
	return &VictimCache{Entries: entries, Latency: latency, lines: make([]vline, entries), block: blockBytes}, nil
}

// MustNewVictim is NewVictim but panics on error.
func MustNewVictim(entries, latency, blockBytes int) *VictimCache {
	v, err := NewVictim(entries, latency, blockBytes)
	if err != nil {
		panic(err)
	}
	return v
}

func (v *VictimCache) align(a geom.Addr) geom.Addr { return a &^ geom.Addr(v.block-1) }

// Probe looks up addr's block; on a hit the entry is removed (it moves
// back into the main cache) and returned.
func (v *VictimCache) Probe(a geom.Addr) (vline, bool) {
	v.Probes++
	if v.Entries == 0 {
		return vline{}, false
	}
	a = v.align(a)
	for i := range v.lines {
		l := &v.lines[i]
		if l.valid && l.addr == a {
			v.HitCount++
			out := *l
			l.valid = false
			return out, true
		}
	}
	return vline{}, false
}

// Insert stores an evicted block, displacing the LRU entry if full.
func (v *VictimCache) Insert(a geom.Addr, dirty bool) {
	if v.Entries == 0 {
		if dirty {
			v.Writebacks++
		}
		return
	}
	v.Inserts++
	v.clock++
	a = v.align(a)
	// If the block is already present just refresh it.
	for i := range v.lines {
		l := &v.lines[i]
		if l.valid && l.addr == a {
			l.dirty = l.dirty || dirty
			l.stamp = v.clock
			return
		}
	}
	victim := -1
	var oldest uint64
	for i := range v.lines {
		l := &v.lines[i]
		if !l.valid {
			victim = i
			break
		}
		if victim == -1 || l.stamp < oldest {
			victim, oldest = i, l.stamp
		}
	}
	if v.lines[victim].valid {
		v.Evictions++
		if v.lines[victim].dirty {
			v.Writebacks++
		}
	}
	v.lines[victim] = vline{addr: a, valid: true, dirty: dirty, stamp: v.clock}
}

// Valid returns the number of valid entries.
func (v *VictimCache) Valid() int {
	n := 0
	for _, l := range v.lines {
		if l.valid {
			n++
		}
	}
	return n
}

// HitRate returns hits/probes.
func (v *VictimCache) HitRate() float64 {
	if v.Probes == 0 {
		return 0
	}
	return float64(v.HitCount) / float64(v.Probes)
}

// ResetStats clears the counters while keeping contents.
func (v *VictimCache) ResetStats() {
	v.Probes, v.HitCount, v.Inserts, v.Evictions, v.Writebacks = 0, 0, 0, 0, 0
}

// Reset invalidates all entries and clears statistics.
func (v *VictimCache) Reset() {
	for i := range v.lines {
		v.lines[i] = vline{}
	}
	v.Probes, v.HitCount, v.Inserts, v.Evictions, v.Writebacks, v.clock = 0, 0, 0, 0, 0, 0
}

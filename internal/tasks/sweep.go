package tasks

import (
	"context"
	"fmt"

	"vccmin/internal/dvfs"
	"vccmin/internal/geom"
	"vccmin/internal/prob"
	"vccmin/internal/sim"
	"vccmin/internal/sweep"
)

// SweepRequest is the JSON form of a sweep.Spec grid (the POST
// /v1/sweeps body and the sweep task parameters): the enum axes spelled
// as CLI-style strings. Empty axes take the engine's reference defaults.
type SweepRequest struct {
	Pfails        []float64 `json:"pfails"`
	Geometries    []string  `json:"geometries"`
	Schemes       []string  `json:"schemes"`
	Victims       []string  `json:"victims"`
	Granularities []string  `json:"granularities"`
	Policies      []string  `json:"policies"`
	DVFSWorkloads []string  `json:"dvfs_workloads"`
	Benchmarks    []string  `json:"benchmarks"`
	Trials        int       `json:"trials"`
	Instructions  int       `json:"instructions"`
	BaseSeed      int64     `json:"base_seed"`
	Workers       int       `json:"workers"`
	ShardIndex    int       `json:"shard_index,omitempty"`
	ShardCount    int       `json:"shard_count,omitempty"`
}

// Spec converts the request into the sweep engine's spec form.
func (r SweepRequest) Spec() (sweep.Spec, error) {
	spec := sweep.Spec{
		Pfails:        r.Pfails,
		DVFSWorkloads: r.DVFSWorkloads,
		Benchmarks:    r.Benchmarks,
		Trials:        r.Trials,
		Instructions:  r.Instructions,
		BaseSeed:      r.BaseSeed,
		Workers:       r.Workers,
		ShardIndex:    r.ShardIndex,
		ShardCount:    r.ShardCount,
	}
	for _, g := range r.Geometries {
		gg, err := geom.Parse(g)
		if err != nil {
			return spec, err
		}
		spec.Geometries = append(spec.Geometries, gg)
	}
	for _, v := range r.Schemes {
		sc, err := sim.ParseScheme(v)
		if err != nil {
			return spec, err
		}
		spec.Schemes = append(spec.Schemes, sc)
	}
	for _, v := range r.Victims {
		vk, err := sim.ParseVictim(v)
		if err != nil {
			return spec, err
		}
		spec.Victims = append(spec.Victims, vk)
	}
	for _, v := range r.Granularities {
		gr, err := prob.ParseGranularity(v)
		if err != nil {
			return spec, err
		}
		spec.Granularities = append(spec.Granularities, gr)
	}
	for _, v := range r.Policies {
		p, err := dvfs.ParsePolicy(v)
		if err != nil {
			return spec, err
		}
		spec.Policies = append(spec.Policies, p)
	}
	return spec, nil
}

// SweepRunResponse is a whole sweep execution's result: the rows this
// spec's shard owns, in cell order, plus the per-axis summary.
type SweepRunResponse struct {
	Hash       string              `json:"hash"`
	Stream     string              `json:"stream"`
	TotalCells int                 `json:"total_cells"`
	ShardCells int                 `json:"shard_cells"`
	Computed   int                 `json:"computed"`
	Rows       []sweep.Row         `json:"rows"`
	Summary    []sweep.AxisSummary `json:"summary"`
}

// SweepRunTask evaluates a full sweep grid (or its shard's slice)
// synchronously. The async job path keeps its own streaming
// checkpoint/resume machinery; this task is the engine-store form the
// CLIs and POST /v1/batch share.
type SweepRunTask struct {
	Spec sweep.Spec // defaulted and checked by the constructor
}

// NewSweepRunTask validates the request into a runnable task.
func NewSweepRunTask(req SweepRequest) (SweepRunTask, error) {
	spec, err := req.Spec()
	if err != nil {
		return SweepRunTask{}, err
	}
	spec = spec.WithDefaults()
	if err := spec.Check(); err != nil {
		return SweepRunTask{}, err
	}
	return SweepRunTask{Spec: spec}, nil
}

// Kind implements engine.Task.
func (t SweepRunTask) Kind() string { return KindSweep }

// CanonicalHash is the sweep spec's own canonical hash — the same
// identity the async job manager dedups on.
func (t SweepRunTask) CanonicalHash() string { return t.Spec.CanonicalHash() }

// GridCells reports the full grid size, for request gates.
func (t SweepRunTask) GridCells() int { return len(t.Spec.Cells()) }

// Run implements engine.Task.
func (t SweepRunTask) Run(ctx context.Context) (any, error) {
	res, err := sweep.Run(t.Spec, sweep.RunOptions{Context: ctx})
	if err != nil {
		return nil, err
	}
	rows := res.Rows
	if rows == nil {
		rows = []sweep.Row{}
	}
	return SweepRunResponse{
		Hash:       t.Spec.CanonicalHash(),
		Stream:     sweep.StreamVersion,
		TotalCells: res.TotalCells,
		ShardCells: res.ShardCells,
		Computed:   res.Computed,
		Rows:       rows,
		Summary:    res.Summary,
	}, nil
}

// SweepCellRequest addresses one cell of a sweep grid by its
// shard-independent index.
type SweepCellRequest struct {
	SweepRequest
	Index int `json:"index"`
}

// SweepCellTask evaluates exactly one grid cell; the row is
// byte-identical to the same cell's line in a full sweep.
type SweepCellTask struct {
	Spec  sweep.Spec
	Cell  sweep.Cell
	index int
}

// NewSweepCellTask validates the request into a runnable task.
func NewSweepCellTask(req SweepCellRequest) (SweepCellTask, error) {
	spec, err := req.SweepRequest.Spec()
	if err != nil {
		return SweepCellTask{}, err
	}
	spec = spec.WithDefaults()
	if err := spec.Check(); err != nil {
		return SweepCellTask{}, err
	}
	cells := spec.Cells()
	if req.Index < 0 || req.Index >= len(cells) {
		return SweepCellTask{}, fmt.Errorf("cell index %d out of the grid's [0,%d)", req.Index, len(cells))
	}
	return SweepCellTask{Spec: spec, Cell: cells[req.Index], index: req.Index}, nil
}

// Kind implements engine.Task.
func (t SweepCellTask) Kind() string { return KindSweepCell }

// CanonicalHash scopes the cell under its spec's identity: the same
// coordinates in a different grid are a different result (trials,
// benchmarks and the base seed all flow into the row).
func (t SweepCellTask) CanonicalHash() string {
	return hashJSON(KindSweepCell, struct {
		Spec  string `json:"spec"`
		Index int    `json:"index"`
	}{Spec: t.Spec.CanonicalHash(), Index: t.index})
}

// GridCells reports the full grid size, for request gates.
func (t SweepCellTask) GridCells() int { return len(t.Spec.Cells()) }

// Run implements engine.Task.
func (t SweepCellTask) Run(ctx context.Context) (any, error) {
	return t.Spec.EvaluateCell(t.Cell)
}

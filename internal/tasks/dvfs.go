package tasks

import (
	"context"
	"fmt"

	"vccmin/internal/dvfs"
	"vccmin/internal/geom"
	"vccmin/internal/sim"
	"vccmin/internal/workload"
)

// DVFSExploreRequest is the Pareto explorer's grid (the GET /v1/dvfs
// parameters): comma axes spelled as string lists, plus the switch
// economics. Empty axes take the explorer defaults. Scale 0 means the
// workloads' reference instruction budgets.
type DVFSExploreRequest struct {
	Workloads     []string `json:"workloads,omitempty"`
	Schemes       []string `json:"schemes,omitempty"`
	Policies      []string `json:"policies,omitempty"`
	Victim        string   `json:"victim,omitempty"`
	Pfail         *float64 `json:"pfail,omitempty"` // default 0.001
	Seed          int64    `json:"seed,omitempty"`  // default 1
	Scale         int      `json:"scale,omitempty"`
	SwitchPenalty int      `json:"penalty,omitempty"`
	Interval      int      `json:"interval,omitempty"`
	IPCThreshold  float64  `json:"ipc_threshold,omitempty"`

	// IncludeRuns adds the full per-run phase accounting to the
	// response. It changes the stored bytes, so it is part of the task's
	// canonical hash (but not of the response's spec hash).
	IncludeRuns bool `json:"runs,omitempty"`
}

// ExploreSpec converts the request into the explorer's spec form,
// validating every axis value.
func (r DVFSExploreRequest) ExploreSpec() (dvfs.ExploreSpec, error) {
	var spec dvfs.ExploreSpec
	for _, w := range r.Workloads {
		if _, err := workload.MultiPhaseByName(w); err != nil {
			return spec, err
		}
		spec.Workloads = append(spec.Workloads, w)
	}
	for _, s := range r.Schemes {
		sc, err := sim.ParseScheme(s)
		if err != nil {
			return spec, err
		}
		spec.Schemes = append(spec.Schemes, sc)
	}
	for _, p := range r.Policies {
		pk, err := dvfs.ParsePolicy(p)
		if err != nil {
			return spec, err
		}
		if pk == dvfs.PolicyNone {
			return spec, fmt.Errorf("policy %q is not schedulable", p)
		}
		spec.Policies = append(spec.Policies, pk)
	}
	if r.Victim != "" {
		v, err := sim.ParseVictim(r.Victim)
		if err != nil {
			return spec, err
		}
		spec.Victim = v
	}
	pfail := 0.001
	if r.Pfail != nil {
		pfail = *r.Pfail
	}
	if pfail < 0 || pfail >= 1 {
		return spec, fmt.Errorf("pfail %v out of [0,1)", pfail)
	}
	spec.Pfail = pfail
	spec.Seed = r.Seed
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	if r.Scale < 0 {
		return spec, fmt.Errorf("scale %d negative", r.Scale)
	}
	spec.Scale = r.Scale
	spec.SwitchPenalty = r.SwitchPenalty
	spec.Interval = r.Interval
	spec.IPCThreshold = r.IPCThreshold
	return spec, nil
}

// DVFSResponse is the explorer's answer: every explored operating point
// (frontier membership marked) plus the frontier subset, in grid order.
// Hash is the explorer spec's canonical hash — the identity /v1/dvfs
// has always reported.
type DVFSResponse struct {
	Hash      string        `json:"hash"`
	Pfail     float64       `json:"pfail"`
	Seed      int64         `json:"seed"`
	Scale     int           `json:"scale,omitempty"`
	Workloads []string      `json:"workloads"`
	Points    []dvfs.Point  `json:"points"`
	Frontier  []dvfs.Point  `json:"frontier"`
	Runs      []dvfs.Result `json:"runs,omitempty"`
}

// DVFSExploreTask runs the (workload × scheme × policy) grid and marks
// each workload's Pareto frontier.
type DVFSExploreTask struct {
	Spec        dvfs.ExploreSpec // defaulted by the constructor
	IncludeRuns bool
}

// NewDVFSExploreTask validates the request into a runnable task.
func NewDVFSExploreTask(req DVFSExploreRequest) (DVFSExploreTask, error) {
	spec, err := req.ExploreSpec()
	if err != nil {
		return DVFSExploreTask{}, err
	}
	return DVFSExploreTask{Spec: spec.WithDefaults(), IncludeRuns: req.IncludeRuns}, nil
}

// Kind implements engine.Task.
func (t DVFSExploreTask) Kind() string { return KindDVFSExplore }

// CanonicalHash is the explorer spec's hash, extended when the full
// per-run accounting is included (different stored bytes, different
// identity).
func (t DVFSExploreTask) CanonicalHash() string {
	h := t.Spec.CanonicalHash()
	if t.IncludeRuns {
		return hashJSON(KindDVFSExplore, struct {
			Spec string `json:"spec"`
			Runs bool   `json:"runs"`
		}{Spec: h, Runs: true})
	}
	return h
}

// GridCells reports the grid size after defaults, for request gates.
func (t DVFSExploreTask) GridCells() int {
	return len(t.Spec.Workloads) * len(t.Spec.Schemes) * len(t.Spec.Policies)
}

// Run implements engine.Task.
func (t DVFSExploreTask) Run(ctx context.Context) (any, error) {
	res, err := dvfs.Explore(t.Spec)
	if err != nil {
		return nil, err
	}
	resp := DVFSResponse{
		Hash:      t.Spec.CanonicalHash(),
		Pfail:     t.Spec.Pfail,
		Seed:      t.Spec.Seed,
		Scale:     t.Spec.Scale,
		Workloads: t.Spec.Workloads,
		Points:    res.Points,
		Frontier:  res.ParetoPoints(),
	}
	if t.IncludeRuns {
		resp.Runs = res.Runs
	}
	return resp, nil
}

// DVFSRunRequest is one scheduled dual-mode run: a builtin multi-phase
// workload driven across the two voltage domains by one policy.
type DVFSRunRequest struct {
	Workload      string   `json:"workload"`
	Scheme        string   `json:"scheme,omitempty"`
	Victim        string   `json:"victim,omitempty"`
	Policy        string   `json:"policy"`
	Geometry      string   `json:"geom,omitempty"`
	Pfail         *float64 `json:"pfail,omitempty"` // default 0.001
	Seed          int64    `json:"seed,omitempty"`  // default 1
	Scale         int      `json:"scale,omitempty"`
	SwitchPenalty int      `json:"penalty,omitempty"`
	Interval      int      `json:"interval,omitempty"`
	IPCThreshold  float64  `json:"ipc_threshold,omitempty"`
}

// normalized applies the scalar defaults — the form the hash digests.
func (r DVFSRunRequest) normalized() DVFSRunRequest {
	if r.Pfail == nil {
		v := 0.001
		r.Pfail = &v
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	return r
}

// DVFSRunTask executes one scheduled run and stores its full
// dvfs.Result accounting.
type DVFSRunTask struct {
	Req DVFSRunRequest
}

// NewDVFSRunTask validates the request into a runnable task.
func NewDVFSRunTask(req DVFSRunRequest) (DVFSRunTask, error) {
	if _, err := req.config(); err != nil {
		return DVFSRunTask{}, err
	}
	return DVFSRunTask{Req: req}, nil
}

// config builds the scheduler Config, validating every field.
func (r DVFSRunRequest) config() (dvfs.Config, error) {
	r = r.normalized()
	var cfg dvfs.Config
	mp, err := workload.MultiPhaseByName(r.Workload)
	if err != nil {
		return cfg, err
	}
	if r.Scale > 0 {
		mp = mp.Scaled(r.Scale)
	}
	cfg.Workload = mp
	if r.Scheme != "" {
		if cfg.Scheme, err = sim.ParseScheme(r.Scheme); err != nil {
			return cfg, err
		}
	}
	if r.Victim != "" {
		if cfg.Victim, err = sim.ParseVictim(r.Victim); err != nil {
			return cfg, err
		}
	}
	if r.Geometry != "" {
		if cfg.Geometry, err = geom.Parse(r.Geometry); err != nil {
			return cfg, err
		}
	}
	if *r.Pfail < 0 || *r.Pfail >= 1 {
		return cfg, fmt.Errorf("pfail %v out of [0,1)", *r.Pfail)
	}
	cfg.Pfail = *r.Pfail
	pk, err := dvfs.ParsePolicy(r.Policy)
	if err != nil {
		return cfg, err
	}
	if pk == dvfs.PolicyNone {
		return cfg, fmt.Errorf("policy %q is not schedulable", r.Policy)
	}
	cfg.Policy = pk
	cfg.Seed = r.Seed
	cfg.SwitchPenalty = r.SwitchPenalty
	cfg.Interval = r.Interval
	cfg.IPCThreshold = r.IPCThreshold
	return cfg, nil
}

// Kind implements engine.Task.
func (t DVFSRunTask) Kind() string { return KindDVFSRun }

// CanonicalHash digests the defaulted request.
func (t DVFSRunTask) CanonicalHash() string { return hashJSON(KindDVFSRun, t.Req.normalized()) }

// Run implements engine.Task.
func (t DVFSRunTask) Run(ctx context.Context) (any, error) {
	cfg, err := t.Req.config()
	if err != nil {
		return nil, err
	}
	return dvfs.Run(cfg)
}

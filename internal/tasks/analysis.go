package tasks

import (
	"context"
	"fmt"
	"runtime"

	"vccmin/internal/experiments"
	"vccmin/internal/geom"
	"vccmin/internal/power"
	"vccmin/internal/prob"
)

// ---- capacity ----

// CapacityRequest asks for the Section IV closed forms at one (geometry,
// pfail, granularity) point, with an optional Monte Carlo cross-check.
// Field names match the GET /v1/capacity query parameters. Workers only
// changes Monte Carlo scheduling, never the estimate, so it is excluded
// from the canonical hash.
type CapacityRequest struct {
	Pfail       *float64 `json:"pfail,omitempty"` // default 0.001
	Geometry    string   `json:"geom,omitempty"`  // SIZExWAYSxBLOCK; default reference L1
	Granularity string   `json:"gran,omitempty"`  // block|set|way; default block
	Trials      int      `json:"trials,omitempty"`
	Seed        int64    `json:"seed,omitempty"` // default 1
	Workers     int      `json:"workers,omitempty"`
}

// normalized applies the defaults and strips the scheduling knob — the
// form the canonical hash digests.
func (r CapacityRequest) normalized() CapacityRequest {
	if r.Pfail == nil {
		v := 0.001
		r.Pfail = &v
	}
	if r.Granularity == "" {
		r.Granularity = "block"
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	r.Workers = 0
	return r
}

// CapacityResponse carries the Section IV closed forms at one (geometry,
// pfail, granularity) point, plus an optional Monte Carlo cross-check.
type CapacityResponse struct {
	Pfail       float64 `json:"pfail"`
	Geometry    string  `json:"geometry"`
	Granularity string  `json:"granularity"`

	ExpectedCapacity        float64 `json:"expected_capacity"`          // Eq. 2 at the granularity
	MeanFaultyBlockFraction float64 `json:"mean_faulty_block_fraction"` // 1 - Eq. 2 per block
	WordDisableFailProb     float64 `json:"word_disable_fail_prob"`     // Eqs. 4-5
	IncrementalWDCapacity   float64 `json:"incremental_wd_capacity"`    // Eq. 6
	BitFixFailProb          float64 `json:"bitfix_fail_prob"`           // extension

	// Monte Carlo cross-check, present when trials > 0 is requested.
	MeasuredCapacity *float64 `json:"measured_capacity,omitempty"`
	Trials           int      `json:"trials,omitempty"`
}

// CapacityTask computes a CapacityResponse.
type CapacityTask struct {
	Req CapacityRequest
}

// NewCapacityTask validates the request into a runnable task.
func NewCapacityTask(req CapacityRequest) (CapacityTask, error) {
	n := req.normalized()
	if p := *n.Pfail; p < 0 || p >= 1 {
		return CapacityTask{}, fmt.Errorf("pfail %v out of [0,1)", p)
	}
	if n.Geometry != "" {
		if _, err := geom.Parse(n.Geometry); err != nil {
			return CapacityTask{}, err
		}
	}
	if _, err := prob.ParseGranularity(n.Granularity); err != nil {
		return CapacityTask{}, err
	}
	if n.Trials > 10_000 {
		return CapacityTask{}, fmt.Errorf("trials %d too large (max 10000)", n.Trials)
	}
	return CapacityTask{Req: req}, nil
}

// Kind implements engine.Task.
func (t CapacityTask) Kind() string { return KindCapacity }

// CanonicalHash digests the defaulted request minus the worker knob.
func (t CapacityTask) CanonicalHash() string { return hashJSON(KindCapacity, t.Req.normalized()) }

// Run implements engine.Task.
func (t CapacityTask) Run(ctx context.Context) (any, error) {
	r := t.Req.normalized()
	pfail := *r.Pfail
	g := experiments.ReferenceGeometry()
	if r.Geometry != "" {
		var err error
		if g, err = geom.Parse(r.Geometry); err != nil {
			return nil, err
		}
	}
	gran, err := prob.ParseGranularity(r.Granularity)
	if err != nil {
		return nil, err
	}
	resp := CapacityResponse{
		Pfail:                   pfail,
		Geometry:                fmt.Sprintf("%dx%dx%d", g.SizeBytes, g.Ways, g.BlockBytes),
		Granularity:             gran.String(),
		ExpectedCapacity:        prob.GranularityCapacity(g, gran, pfail),
		MeanFaultyBlockFraction: prob.MeanFaultyBlockFraction(g.CellsPerBlock(), pfail),
		WordDisableFailProb:     prob.WordDisableWholeCacheFailProb(g.Blocks(), g.BlockBytes, 32, 8, pfail),
		IncrementalWDCapacity:   prob.IncrementalWDCapacity(g.DataBits(), 8, 32, pfail),
		BitFixFailProb:          prob.BitFixWholeCacheFailProb(g.Blocks(), g.DataBits(), 8, 1, pfail),
	}
	if r.Trials > 0 {
		if r.Trials > 10_000 {
			return nil, fmt.Errorf("trials %d too large (max 10000)", r.Trials)
		}
		// The worker knob bounds the Monte Carlo pool (0 = all CPUs),
		// clamped so an unauthenticated request cannot multiply sampler
		// buffers; the estimate itself is identical at every setting.
		workers := t.Req.Workers
		if max := runtime.GOMAXPROCS(0); workers > max {
			workers = max
		}
		mc := experiments.MeasuredBlockDisableCapacityWorkers(g, pfail, r.Trials, r.Seed, workers)
		resp.MeasuredCapacity = &mc
		resp.Trials = r.Trials
	}
	return resp, nil
}

// ---- operating-point ----

// OperatingPointRequest asks the Fig. 1 model either for the point a
// pfail implies or for the cheapest point delivering a performance
// floor. Setting MinPerformance selects the second mode and makes Pfail
// irrelevant.
type OperatingPointRequest struct {
	Pfail          *float64 `json:"pfail,omitempty"` // default 0.001
	MinPerformance *float64 `json:"min_performance,omitempty"`
}

func (r OperatingPointRequest) normalized() OperatingPointRequest {
	if r.MinPerformance != nil {
		r.Pfail = nil // ignored in performance-floor mode
		return r
	}
	if r.Pfail == nil {
		v := 0.001
		r.Pfail = &v
	}
	return r
}

// OperatingPointResponse is the Fig. 1 model's answer at one query point.
type OperatingPointResponse struct {
	Pfail          float64 `json:"pfail,omitempty"`
	MinPerformance float64 `json:"min_performance,omitempty"`

	Voltage              float64 `json:"voltage"`
	Frequency            float64 `json:"frequency"`
	Power                float64 `json:"power"`
	Performance          float64 `json:"performance"`
	Zone                 string  `json:"zone"`
	EnergyPerInstruction float64 `json:"energy_per_instruction"`
}

// OperatingPointTask computes an OperatingPointResponse.
type OperatingPointTask struct {
	Req OperatingPointRequest
}

// NewOperatingPointTask validates the request into a runnable task.
func NewOperatingPointTask(req OperatingPointRequest) (OperatingPointTask, error) {
	n := req.normalized()
	if n.MinPerformance == nil {
		if p := *n.Pfail; p <= 0 || p >= 1 {
			return OperatingPointTask{}, fmt.Errorf("pfail %v out of (0,1)", p)
		}
	}
	return OperatingPointTask{Req: req}, nil
}

// Kind implements engine.Task.
func (t OperatingPointTask) Kind() string { return KindOperatingPoint }

// CanonicalHash digests the defaulted request.
func (t OperatingPointTask) CanonicalHash() string {
	return hashJSON(KindOperatingPoint, t.Req.normalized())
}

// Run implements engine.Task.
func (t OperatingPointTask) Run(ctx context.Context) (any, error) {
	r := t.Req.normalized()
	m := power.Default()
	if r.MinPerformance != nil {
		minPerf := *r.MinPerformance
		choice, ok := m.MostEfficientPoint(minPerf, 400)
		if !ok {
			return nil, fmt.Errorf("no operating point delivers performance >= %v", minPerf)
		}
		return OperatingPointResponse{
			MinPerformance:       minPerf,
			Voltage:              choice.Point.Voltage,
			Frequency:            choice.Point.Freq,
			Power:                choice.Point.Power,
			Performance:          choice.Point.Performance,
			Zone:                 choice.Point.Zone.String(),
			EnergyPerInstruction: choice.EnergyPerWork,
		}, nil
	}
	pfail := *r.Pfail
	if pfail <= 0 || pfail >= 1 {
		return nil, fmt.Errorf("pfail %v out of (0,1)", pfail)
	}
	p := m.OperatingPointForPfail(pfail)
	return OperatingPointResponse{
		Pfail:                pfail,
		Voltage:              p.Voltage,
		Frequency:            p.Freq,
		Power:                p.Power,
		Performance:          p.Performance,
		Zone:                 p.Zone.String(),
		EnergyPerInstruction: power.EnergyPerWork(p),
	}, nil
}

// ---- overhead ----

// OverheadRow is one Table I row with the scheme spelled out.
type OverheadRow struct {
	Scheme             string `json:"scheme"`
	TagTransistors     int    `json:"tag_transistors"`
	DisableTransistors int    `json:"disable_transistors"`
	VictimTransistors  int    `json:"victim_transistors"`
	AlignmentNetwork   bool   `json:"alignment_network"`
	Total              int    `json:"total"`
}

// OverheadResponse is the Table I accounting for the reference
// configuration.
type OverheadResponse struct {
	Rows []OverheadRow `json:"rows"`
}

// OverheadTask computes the Table I transistor-overhead comparison. It
// has no parameters: there is exactly one reference table.
type OverheadTask struct{}

// Kind implements engine.Task.
func (OverheadTask) Kind() string { return KindOverhead }

// CanonicalHash implements engine.Task; the table has a single identity.
func (OverheadTask) CanonicalHash() string { return hashJSON(KindOverhead, struct{}{}) }

// Run implements engine.Task.
func (OverheadTask) Run(ctx context.Context) (any, error) {
	rows := experiments.TableI()
	out := make([]OverheadRow, 0, len(rows))
	for _, row := range rows {
		out = append(out, OverheadRow{
			Scheme:             row.Scheme.String(),
			TagTransistors:     row.TagTransistors,
			DisableTransistors: row.DisableTransistors,
			VictimTransistors:  row.VictimTransistors,
			AlignmentNetwork:   row.AlignmentNetwork,
			Total:              row.Total,
		})
	}
	return OverheadResponse{Rows: out}, nil
}

// Package tasks defines the concrete compute kinds of the repository as
// engine tasks: the Section IV capacity analysis, the Fig. 1
// operating-point model, the Table I overhead accounting, single
// simulations, sweep runs and individual sweep cells, the phase-aware
// DVFS scheduler (single runs and Pareto explorations), the
// fleet-scale population layer (fleet sweeps and Vcc-min prediction
// studies), and colstore aggregation queries over sweep result sets.
//
// Each kind is a request struct (the JSON shape shared by the HTTP
// handlers, POST /v1/batch and the CLIs), a constructor that validates
// it into a Task, and a response struct whose marshalled bytes are the
// engine's stored representation. Because every surface constructs the
// same task types, a result computed through any entrypoint — server,
// CLI or batch — is byte-identical and reusable by all of them.
//
// The package registers every kind with the engine registry at init
// time, so importing it is what makes engine.DecodeTask and
// engine.RunBatch able to answer heterogeneous requests.
package tasks

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"vccmin/internal/engine"
)

// Task kinds, as spelled in batch requests and the stats.
const (
	KindCapacity       = "capacity"
	KindOperatingPoint = "operating-point"
	KindOverhead       = "overhead"
	KindSim            = "sim"
	KindSweep          = "sweep"
	KindSweepCell      = "sweep-cell"
	KindDVFSRun        = "dvfs-run"
	KindDVFSExplore    = "dvfs-explore"
	KindFleetSweep     = "fleet-sweep"
	KindVccminPredict  = "vccmin-predict"
	KindQuery          = "query"
)

func init() {
	engine.RegisterKind(KindCapacity, decodeInto(func(r CapacityRequest) (engine.Task, error) {
		return NewCapacityTask(r)
	}))
	engine.RegisterKind(KindOperatingPoint, decodeInto(func(r OperatingPointRequest) (engine.Task, error) {
		return NewOperatingPointTask(r)
	}))
	engine.RegisterKind(KindOverhead, decodeInto(func(struct{}) (engine.Task, error) {
		return OverheadTask{}, nil
	}))
	engine.RegisterKind(KindSim, decodeInto(func(r SimRequest) (engine.Task, error) {
		return NewSimTask(r)
	}))
	engine.RegisterKind(KindSweep, decodeInto(func(r SweepRequest) (engine.Task, error) {
		return NewSweepRunTask(r)
	}))
	engine.RegisterKind(KindSweepCell, decodeInto(func(r SweepCellRequest) (engine.Task, error) {
		return NewSweepCellTask(r)
	}))
	engine.RegisterKind(KindDVFSRun, decodeInto(func(r DVFSRunRequest) (engine.Task, error) {
		return NewDVFSRunTask(r)
	}))
	engine.RegisterKind(KindDVFSExplore, decodeInto(func(r DVFSExploreRequest) (engine.Task, error) {
		return NewDVFSExploreTask(r)
	}))
	engine.RegisterKind(KindFleetSweep, decodeInto(func(r FleetRequest) (engine.Task, error) {
		return NewFleetTask(r)
	}))
	engine.RegisterKind(KindVccminPredict, decodeInto(func(r PredictRequest) (engine.Task, error) {
		return NewPredictTask(r)
	}))
	engine.RegisterKind(KindQuery, decodeInto(func(r QueryRequest) (engine.Task, error) {
		return NewQueryTask(r)
	}))
}

// decodeInto adapts a typed request constructor into a registry
// Decoder, rejecting unknown fields so a mistyped batch parameter fails
// loudly instead of silently taking a default.
func decodeInto[R any](build func(R) (engine.Task, error)) engine.Decoder {
	return func(params json.RawMessage) (engine.Task, error) {
		var r R
		dec := json.NewDecoder(bytes.NewReader(params))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&r); err != nil {
			return nil, fmt.Errorf("bad parameters: %w", err)
		}
		return build(r)
	}
}

// hashJSON digests a kind-prefixed canonical (defaulted, scheduling
// knobs zeroed) request into the content address its results live
// under. Requests that normalize equal share bytes in every tier.
func hashJSON(kind string, v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// Request structs are plain data; a marshal failure is a
		// programming error, not an input error.
		panic(fmt.Sprintf("tasks: hashing %s request: %v", kind, err))
	}
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{'|'})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)[:12])
}

package tasks

import (
	"context"
	"fmt"

	"vccmin/internal/colstore"
	"vccmin/internal/sweep"
)

// QueryRequest is the POST /v1/query body and the query task's
// parameters: a sweep grid (the result set to aggregate over) plus a
// colstore aggregation spec. The sweep axes name the same grid POST
// /v1/sweeps takes — if that sweep has already run as a job, the query
// folds its checkpoint and answers without simulating; otherwise the
// query computes the sweep inline (batch-shaped work).
type QueryRequest struct {
	Sweep    SweepRequest      `json:"sweep"`
	GroupBy  []string          `json:"group_by,omitempty"`
	Metrics  []string          `json:"metrics,omitempty"` // empty = DefaultQueryMetrics
	Where    map[string]string `json:"where,omitempty"`
	PfailMin *float64          `json:"pfail_min,omitempty"`
	PfailMax *float64          `json:"pfail_max,omitempty"`
}

// DefaultQueryMetrics are aggregated when the request names none: the
// three summary columns the sweep's own per-axis summary reports.
var DefaultQueryMetrics = []string{"expected_capacity", "ipc_degradation", "energy_per_instruction"}

// QueryResponse is the query's answer: the resolved question (hash,
// grid identity, group-by, metrics, filters) plus the groups.
type QueryResponse struct {
	Hash      string            `json:"hash"`
	SweepHash string            `json:"sweep_hash"`
	Stream    string            `json:"stream"`
	GroupBy   []string          `json:"group_by,omitempty"`
	Metrics   []string          `json:"metrics"`
	Where     map[string]string `json:"where,omitempty"`
	PfailMin  *float64          `json:"pfail_min,omitempty"`
	PfailMax  *float64          `json:"pfail_max,omitempty"`
	Rows      int               `json:"rows"`
	Matched   int               `json:"matched"`
	Groups    []colstore.Group  `json:"groups"`
}

// QueryTask aggregates a sweep's result set through the colstore query
// layer. Its canonical hash digests the sweep's canonical hash plus the
// normalized question — never the source: a query answered from a
// folded checkpoint and the same query computed inline store
// byte-identical bytes under the same address, which only holds because
// colstore.Query is row-order independent (a resumed checkpoint and a
// fresh run order rows differently).
type QueryTask struct {
	Req   QueryRequest
	Spec  sweep.Spec    // the defaulted, checked sweep grid
	Query colstore.Spec // the defaulted, checked aggregation question

	// source, when set, answers the query without running the sweep.
	// Callers must only attach a source holding exactly the Spec's
	// result set (WithRows validates; the service derives the source
	// from a job keyed by the spec's own hash).
	source colstore.Source
}

// NewQueryTask validates the request into a runnable task.
func NewQueryTask(req QueryRequest) (QueryTask, error) {
	spec, err := req.Sweep.Spec()
	if err != nil {
		return QueryTask{}, err
	}
	spec = spec.WithDefaults()
	if err := spec.Check(); err != nil {
		return QueryTask{}, err
	}
	metrics := req.Metrics
	if len(metrics) == 0 {
		metrics = DefaultQueryMetrics
	}
	q := colstore.Spec{
		GroupBy:  req.GroupBy,
		Metrics:  metrics,
		Where:    req.Where,
		PfailMin: req.PfailMin,
		PfailMax: req.PfailMax,
	}
	if err := q.Check(); err != nil {
		return QueryTask{}, err
	}
	return QueryTask{Req: req, Spec: spec, Query: q}, nil
}

// Kind implements engine.Task.
func (t QueryTask) Kind() string { return KindQuery }

// CanonicalHash digests the sweep grid's identity plus the normalized
// question. Workers never enters (it is excluded from the sweep hash),
// and the Where map marshals with sorted keys, so equal questions hash
// equal however they were spelled.
func (t QueryTask) CanonicalHash() string {
	return hashJSON(KindQuery, struct {
		Sweep    string            `json:"sweep"`
		GroupBy  []string          `json:"group_by,omitempty"`
		Metrics  []string          `json:"metrics"`
		Where    map[string]string `json:"where,omitempty"`
		PfailMin *float64          `json:"pfail_min,omitempty"`
		PfailMax *float64          `json:"pfail_max,omitempty"`
	}{
		Sweep:    t.Spec.CanonicalHash(),
		GroupBy:  t.Query.GroupBy,
		Metrics:  t.Query.Metrics,
		Where:    t.Query.Where,
		PfailMin: t.Query.PfailMin,
		PfailMax: t.Query.PfailMax,
	})
}

// GridCells reports the full grid size, for request gates.
func (t QueryTask) GridCells() int { return len(t.Spec.Cells()) }

// SweepHash is the underlying grid's canonical hash — the job id a
// finished checkpoint for this result set would live under.
func (t QueryTask) SweepHash() string { return t.Spec.CanonicalHash() }

// WithSource returns the task answering from src instead of running the
// sweep. The caller vouches that src holds exactly the task's result
// set (e.g. a fold of the job checkpoint keyed by SweepHash).
func (t QueryTask) WithSource(src colstore.Source) QueryTask {
	t.source = src
	return t
}

// WithRows attaches precomputed rows (e.g. a checkpoint file) as the
// source, after verifying they are exactly the spec's owned result set:
// same stream version, every owned cell key present exactly once,
// nothing extra. Row order is preserved — the query's answer does not
// depend on it.
func (t QueryTask) WithRows(rows []sweep.Row) (QueryTask, error) {
	want := make(map[string]bool)
	for _, c := range t.Spec.Cells() {
		if c.Index%t.Spec.ShardCount == t.Spec.ShardIndex {
			want[c.Key()] = false
		}
	}
	if len(rows) != len(want) {
		return QueryTask{}, fmt.Errorf("query: %d rows for a grid whose shard owns %d cells", len(rows), len(want))
	}
	for i, r := range rows {
		if r.Stream != sweep.StreamVersion {
			return QueryTask{}, fmt.Errorf("query: row %d has stream %q, engine speaks %q — rerun the sweep",
				i, r.Stream, sweep.StreamVersion)
		}
		seen, ok := want[r.Key]
		if !ok {
			return QueryTask{}, fmt.Errorf("query: row %d key %q is not in the spec's grid", i, r.Key)
		}
		if seen {
			return QueryTask{}, fmt.Errorf("query: duplicate row for cell %q", r.Key)
		}
		want[r.Key] = true
	}
	src, err := colstore.ShardsOf(rows, colstore.DefaultShardRows)
	if err != nil {
		return QueryTask{}, err
	}
	t.source = src
	return t, nil
}

// Run implements engine.Task: fold (or compute) the result set, then
// aggregate. The response is byte-identical whichever path ran.
func (t QueryTask) Run(ctx context.Context) (any, error) {
	src := t.source
	if src == nil {
		res, err := sweep.Run(t.Spec, sweep.RunOptions{Context: ctx})
		if err != nil {
			return nil, err
		}
		if src, err = colstore.ShardsOf(res.Rows, colstore.DefaultShardRows); err != nil {
			return nil, err
		}
	}
	qr, err := colstore.Query(src, t.Query)
	if err != nil {
		return nil, err
	}
	return QueryResponse{
		Hash:      t.CanonicalHash(),
		SweepHash: t.SweepHash(),
		Stream:    sweep.StreamVersion,
		GroupBy:   t.Query.GroupBy,
		Metrics:   t.Query.Metrics,
		Where:     t.Query.Where,
		PfailMin:  t.Query.PfailMin,
		PfailMax:  t.Query.PfailMax,
		Rows:      qr.Rows,
		Matched:   qr.Matched,
		Groups:    qr.Groups,
	}, nil
}

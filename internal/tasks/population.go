package tasks

import (
	"context"
	"fmt"

	"vccmin/internal/geom"
	"vccmin/internal/population"
	"vccmin/internal/sim"
)

// FleetRequest is the fleet sweep's JSON shape (the GET/POST /v1/fleet
// parameters): the die population, the variation model, the schemes to
// certify under and the voltage grid. Zero fields take the population
// defaults; note that, as everywhere in this package, an explicit zero
// selects the default (use a tiny sigma to approximate "no variation").
type FleetRequest struct {
	Dies          int      `json:"dies,omitempty"`           // default 1000
	DiesPerWafer  int      `json:"dies_per_wafer,omitempty"` // default 64
	Schemes       []string `json:"schemes,omitempty"`        // default block,word
	WaferSigma    *float64 `json:"wafer_sigma,omitempty"`    // default 0.25
	Gradient      *float64 `json:"gradient,omitempty"`       // default 0.4
	DieSigma      *float64 `json:"die_sigma,omitempty"`      // default 0.15
	CapacityFloor *float64 `json:"capacity_floor,omitempty"` // default 0.75
	VSteps        int      `json:"vsteps,omitempty"`         // default 33
	Geometry      string   `json:"geom,omitempty"`           // default 32768x8x64
	Seed          int64    `json:"seed,omitempty"`           // default 1

	// IncludeDies adds the per-die rows to the response. Like the DVFS
	// explorer's runs flag it changes the stored bytes, so it is part
	// of the canonical hash.
	IncludeDies bool `json:"include_dies,omitempty"`

	// Workers bounds the fan-out goroutines. Scheduling only — results
	// are bit-identical at every value — so it is zeroed before
	// hashing.
	Workers int `json:"workers,omitempty"`
}

// normalized applies the scalar defaults and strips the scheduling
// knob — the form the hash digests.
func (r FleetRequest) normalized() FleetRequest {
	if r.Dies == 0 {
		r.Dies = 1000
	}
	if r.DiesPerWafer == 0 {
		r.DiesPerWafer = population.DefaultDiesPerWafer
	}
	if len(r.Schemes) == 0 {
		r.Schemes = []string{"block", "word"}
	}
	r.WaferSigma = defaultPtr(r.WaferSigma, population.DefaultWaferSigma)
	r.Gradient = defaultPtr(r.Gradient, population.DefaultGradient)
	r.DieSigma = defaultPtr(r.DieSigma, population.DefaultDieSigma)
	r.CapacityFloor = defaultPtr(r.CapacityFloor, population.DefaultCapacityFloor)
	if r.VSteps == 0 {
		r.VSteps = population.DefaultVSteps
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	r.Workers = 0
	return r
}

func defaultPtr(p *float64, def float64) *float64 {
	if p == nil || *p == 0 {
		return &def
	}
	return p
}

// FleetSpec converts the request into the population layer's spec,
// validating every field.
func (r FleetRequest) FleetSpec() (population.FleetSpec, error) {
	n := r.normalized()
	spec := population.FleetSpec{
		Dies:          n.Dies,
		DiesPerWafer:  n.DiesPerWafer,
		Variation:     population.Variation{WaferSigma: *n.WaferSigma, Gradient: *n.Gradient, DieSigma: *n.DieSigma},
		VSteps:        n.VSteps,
		CapacityFloor: *n.CapacityFloor,
		Seed:          n.Seed,
		Workers:       r.Workers,
	}
	for _, s := range n.Schemes {
		sc, err := sim.ParseScheme(s)
		if err != nil {
			return spec, err
		}
		spec.Schemes = append(spec.Schemes, sc)
	}
	if n.Geometry != "" {
		g, err := geom.Parse(n.Geometry)
		if err != nil {
			return spec, err
		}
		spec.Geom = g
	}
	spec = spec.WithDefaults()
	return spec, spec.Check()
}

// FleetResponse is the fleet sweep's answer: the resolved population
// parameters, the voltage grid and the per-scheme Vcc-min
// distributions; per-die rows only when requested.
type FleetResponse struct {
	Hash          string                   `json:"hash"`
	Dies          int                      `json:"dies"`
	DiesPerWafer  int                      `json:"dies_per_wafer"`
	Wafers        int                      `json:"wafers"`
	Seed          int64                    `json:"seed"`
	Geometry      string                   `json:"geom"`
	Variation     population.Variation     `json:"variation"`
	CapacityFloor float64                  `json:"capacity_floor"`
	Grid          []float64                `json:"grid"`
	Schemes       []population.SchemeYield `json:"schemes"`
	DieRows       []population.DieResult   `json:"die_rows,omitempty"`
}

// FleetTask sweeps a simulated fleet and reports its Vcc-min
// distribution and yield curves.
type FleetTask struct {
	Req  FleetRequest
	Spec population.FleetSpec
}

// NewFleetTask validates the request into a runnable task.
func NewFleetTask(req FleetRequest) (FleetTask, error) {
	spec, err := req.FleetSpec()
	if err != nil {
		return FleetTask{}, err
	}
	return FleetTask{Req: req, Spec: spec}, nil
}

// Kind implements engine.Task.
func (t FleetTask) Kind() string { return KindFleetSweep }

// CanonicalHash digests the defaulted request with the workers knob
// stripped.
func (t FleetTask) CanonicalHash() string { return hashJSON(KindFleetSweep, t.Req.normalized()) }

// DieCount reports the fleet size after defaults, for request gates.
func (t FleetTask) DieCount() int { return t.Spec.Dies }

// Run implements engine.Task.
func (t FleetTask) Run(ctx context.Context) (any, error) {
	res, err := population.RunFleet(t.Spec)
	if err != nil {
		return nil, err
	}
	resp := FleetResponse{
		Hash:          t.CanonicalHash(),
		Dies:          t.Spec.Dies,
		DiesPerWafer:  t.Spec.DiesPerWafer,
		Wafers:        t.Spec.Wafers(),
		Seed:          t.Spec.Seed,
		Geometry:      geomString(t.Spec.Geom),
		Variation:     t.Spec.Variation,
		CapacityFloor: t.Spec.CapacityFloor,
		Grid:          res.Grid,
		Schemes:       res.Schemes,
	}
	if t.Req.IncludeDies {
		resp.DieRows = res.Dies
	}
	return resp, nil
}

func geomString(g geom.Geometry) string {
	return fmt.Sprintf("%dx%dx%d", g.SizeBytes, g.Ways, g.BlockBytes)
}

// PredictRequest is the data-efficient Vcc-min prediction study's JSON
// shape: the same population parameters as a fleet sweep, one scheme,
// the per-die measurement budget K and the sample size.
type PredictRequest struct {
	Dies          int      `json:"dies,omitempty"`           // default 1000
	DiesPerWafer  int      `json:"dies_per_wafer,omitempty"` // default 64
	Scheme        string   `json:"scheme,omitempty"`         // default block
	WaferSigma    *float64 `json:"wafer_sigma,omitempty"`    // default 0.25
	Gradient      *float64 `json:"gradient,omitempty"`       // default 0.4
	DieSigma      *float64 `json:"die_sigma,omitempty"`      // default 0.15
	CapacityFloor *float64 `json:"capacity_floor,omitempty"` // default 0.75
	Geometry      string   `json:"geom,omitempty"`           // default 32768x8x64
	Seed          int64    `json:"seed,omitempty"`           // default 1
	K             int      `json:"k,omitempty"`              // default 6
	Sample        int      `json:"sample,omitempty"`         // default 128

	// Workers is scheduling only; zeroed before hashing.
	Workers int `json:"workers,omitempty"`
}

// normalized applies the scalar defaults and strips the scheduling
// knob — the form the hash digests.
func (r PredictRequest) normalized() PredictRequest {
	if r.Dies == 0 {
		r.Dies = 1000
	}
	if r.DiesPerWafer == 0 {
		r.DiesPerWafer = population.DefaultDiesPerWafer
	}
	if r.Scheme == "" {
		r.Scheme = "block"
	}
	r.WaferSigma = defaultPtr(r.WaferSigma, population.DefaultWaferSigma)
	r.Gradient = defaultPtr(r.Gradient, population.DefaultGradient)
	r.DieSigma = defaultPtr(r.DieSigma, population.DefaultDieSigma)
	r.CapacityFloor = defaultPtr(r.CapacityFloor, population.DefaultCapacityFloor)
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.K == 0 {
		r.K = population.DefaultPredictK
	}
	if r.Sample == 0 {
		r.Sample = population.DefaultPredictSample
	}
	r.Workers = 0
	return r
}

// PredictSpec converts the request into the population layer's spec,
// validating every field.
func (r PredictRequest) PredictSpec() (population.PredictSpec, error) {
	n := r.normalized()
	fleet := FleetRequest{
		Dies:          n.Dies,
		DiesPerWafer:  n.DiesPerWafer,
		Schemes:       []string{n.Scheme},
		WaferSigma:    n.WaferSigma,
		Gradient:      n.Gradient,
		DieSigma:      n.DieSigma,
		CapacityFloor: n.CapacityFloor,
		Geometry:      n.Geometry,
		Seed:          n.Seed,
		Workers:       r.Workers,
	}
	fspec, err := fleet.FleetSpec()
	if err != nil {
		return population.PredictSpec{}, err
	}
	spec := population.PredictSpec{
		Fleet:  fspec,
		Scheme: fspec.Schemes[0],
		K:      n.K,
		Sample: n.Sample,
	}
	spec = spec.WithDefaults()
	return spec, spec.Check()
}

// PredictResponse is the study's answer: the resolved parameters plus
// the |estimate - truth| error distribution in volts.
type PredictResponse struct {
	Hash         string  `json:"hash"`
	Scheme       string  `json:"scheme"`
	K            int     `json:"k"`
	Sample       int     `json:"sample"`
	Dies         int     `json:"dies"`
	Seed         int64   `json:"seed"`
	MeanAbsError float64 `json:"mean_abs_error"`
	P50          float64 `json:"p50"`
	P90          float64 `json:"p90"`
	P99          float64 `json:"p99"`
	Max          float64 `json:"max"`
	BracketBound float64 `json:"bracket_bound"`
}

// PredictTask estimates sampled dies' minimum operating voltages from
// K measurements each and reports error quantiles against ground
// truth.
type PredictTask struct {
	Req  PredictRequest
	Spec population.PredictSpec
}

// NewPredictTask validates the request into a runnable task.
func NewPredictTask(req PredictRequest) (PredictTask, error) {
	spec, err := req.PredictSpec()
	if err != nil {
		return PredictTask{}, err
	}
	return PredictTask{Req: req, Spec: spec}, nil
}

// Kind implements engine.Task.
func (t PredictTask) Kind() string { return KindVccminPredict }

// CanonicalHash digests the defaulted request with the workers knob
// stripped.
func (t PredictTask) CanonicalHash() string { return hashJSON(KindVccminPredict, t.Req.normalized()) }

// SampleCount reports the number of dies measured, for request gates.
func (t PredictTask) SampleCount() int { return t.Spec.Sample }

// Run implements engine.Task.
func (t PredictTask) Run(ctx context.Context) (any, error) {
	res, err := population.RunPredict(t.Spec)
	if err != nil {
		return nil, err
	}
	return PredictResponse{
		Hash:         t.CanonicalHash(),
		Scheme:       t.Spec.Scheme.String(),
		K:            t.Spec.K,
		Sample:       t.Spec.Sample,
		Dies:         t.Spec.Fleet.Dies,
		Seed:         t.Spec.Fleet.Seed,
		MeanAbsError: res.MeanAbsError,
		P50:          res.P50,
		P90:          res.P90,
		P99:          res.P99,
		Max:          res.Max,
		BracketBound: res.BracketBound,
	}, nil
}

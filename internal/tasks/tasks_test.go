package tasks

import (
	"context"
	"encoding/json"
	"testing"

	"vccmin/internal/engine"
	"vccmin/internal/sweep"
)

func mustRun(t *testing.T, task engine.Task) []byte {
	t.Helper()
	v, err := task.Run(context.Background())
	if err != nil {
		t.Fatalf("%s: %v", task.Kind(), err)
	}
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCapacityTaskDefaultsAndHash(t *testing.T) {
	// An empty request and its spelled-out default form must share one
	// content address...
	empty, err := NewCapacityTask(CapacityRequest{})
	if err != nil {
		t.Fatal(err)
	}
	p := 0.001
	spelled, err := NewCapacityTask(CapacityRequest{Pfail: &p, Granularity: "block", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if empty.CanonicalHash() != spelled.CanonicalHash() {
		t.Fatal("defaulted and spelled-out requests must hash equal")
	}
	// ...and the worker knob must not change it (scheduling, not results).
	workers, _ := NewCapacityTask(CapacityRequest{Workers: 7})
	if workers.CanonicalHash() != empty.CanonicalHash() {
		t.Fatal("workers must be excluded from the canonical hash")
	}
	other := 0.002
	diff, _ := NewCapacityTask(CapacityRequest{Pfail: &other})
	if diff.CanonicalHash() == empty.CanonicalHash() {
		t.Fatal("pfail must change the canonical hash")
	}

	var resp CapacityResponse
	if err := json.Unmarshal(mustRun(t, empty), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Pfail != 0.001 || resp.Geometry != "32768x8x64" || resp.Granularity != "block" {
		t.Fatalf("defaults not applied: %+v", resp)
	}
	if resp.ExpectedCapacity <= 0 || resp.ExpectedCapacity >= 1 {
		t.Fatalf("expected capacity %v out of (0,1)", resp.ExpectedCapacity)
	}
}

func TestCapacityTaskValidation(t *testing.T) {
	bad := 2.0
	for name, req := range map[string]CapacityRequest{
		"pfail":  {Pfail: &bad},
		"geom":   {Geometry: "banana"},
		"gran":   {Granularity: "nope"},
		"trials": {Trials: 100_000},
	} {
		if _, err := NewCapacityTask(req); err == nil {
			t.Errorf("%s: bad request accepted", name)
		}
	}
}

func TestOperatingPointTaskModes(t *testing.T) {
	minPerf := 0.5
	perf, err := NewOperatingPointTask(OperatingPointRequest{MinPerformance: &minPerf})
	if err != nil {
		t.Fatal(err)
	}
	var resp OperatingPointResponse
	if err := json.Unmarshal(mustRun(t, perf), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Performance < 0.5 || resp.MinPerformance != 0.5 {
		t.Fatalf("floor mode response %+v", resp)
	}

	// In floor mode, pfail is irrelevant and must not split the cache.
	p := 0.005
	withPfail, _ := NewOperatingPointTask(OperatingPointRequest{MinPerformance: &minPerf, Pfail: &p})
	if withPfail.CanonicalHash() != perf.CanonicalHash() {
		t.Fatal("pfail must be ignored in performance-floor mode")
	}

	zero := 0.0
	if _, err := NewOperatingPointTask(OperatingPointRequest{Pfail: &zero}); err == nil {
		t.Fatal("pfail 0 must be rejected in pfail mode")
	}
}

func TestOverheadTask(t *testing.T) {
	var resp OverheadResponse
	if err := json.Unmarshal(mustRun(t, OverheadTask{}), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 6 || resp.Rows[0].Scheme != "Baseline" {
		t.Fatalf("Table I rows %+v", resp.Rows)
	}
}

func TestSimTaskMatchesDirectRun(t *testing.T) {
	req := SimRequest{Benchmark: "crafty", Scheme: "block", Pfail: 0.001, Instructions: 3000}
	task, err := NewSimTask(req)
	if err != nil {
		t.Fatal(err)
	}
	var resp SimResponse
	if err := json.Unmarshal(mustRun(t, task), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.IPC <= 0 || resp.Scheme != "block-disable" || resp.Mode != "low-voltage" {
		t.Fatalf("sim response %+v", resp)
	}
	// Identical requests share an identity; different seeds do not.
	same, _ := NewSimTask(req)
	if same.CanonicalHash() != task.CanonicalHash() {
		t.Fatal("identical sim requests must hash equal")
	}
	req.Seed = 9
	seeded, _ := NewSimTask(req)
	if seeded.CanonicalHash() == task.CanonicalHash() {
		t.Fatal("seed must change the sim hash")
	}
	if _, err := NewSimTask(SimRequest{}); err == nil {
		t.Fatal("missing benchmark must be rejected")
	}
}

func tinySweepRequest() SweepRequest {
	return SweepRequest{
		Pfails:       []float64{0.001, 0.005},
		Schemes:      []string{"baseline", "block"},
		Benchmarks:   []string{"crafty"},
		Trials:       2,
		Instructions: 2000,
		BaseSeed:     7,
	}
}

// TestSweepTasksMatchStreamingRun is the refactor's core invariant: the
// engine-task forms of a sweep (whole run, single cell) must reproduce
// the streaming path's rows exactly.
func TestSweepTasksMatchStreamingRun(t *testing.T) {
	req := tinySweepRequest()
	spec, err := req.Spec()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sweep.Run(spec, sweep.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	runTask, err := NewSweepRunTask(req)
	if err != nil {
		t.Fatal(err)
	}
	if runTask.CanonicalHash() != spec.CanonicalHash() {
		t.Fatal("sweep task hash must equal the spec's canonical hash")
	}
	if runTask.GridCells() != 4 {
		t.Fatalf("grid cells %d, want 4", runTask.GridCells())
	}
	var resp SweepRunResponse
	if err := json.Unmarshal(mustRun(t, runTask), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Computed != 4 || len(resp.Rows) != 4 || resp.Stream != sweep.StreamVersion {
		t.Fatalf("sweep response %+v", resp)
	}
	directBytes, _ := json.Marshal(direct.Rows)
	taskBytes, _ := json.Marshal(resp.Rows)
	if string(directBytes) != string(taskBytes) {
		t.Fatal("task rows differ from the streaming run's rows")
	}

	// Each single-cell task must reproduce its row in isolation.
	for i, want := range direct.Rows {
		cellTask, err := NewSweepCellTask(SweepCellRequest{SweepRequest: req, Index: i})
		if err != nil {
			t.Fatal(err)
		}
		var row sweep.Row
		if err := json.Unmarshal(mustRun(t, cellTask), &row); err != nil {
			t.Fatal(err)
		}
		wantB, _ := json.Marshal(want)
		gotB, _ := json.Marshal(row)
		if string(wantB) != string(gotB) {
			t.Fatalf("cell %d row differs from the full run's", i)
		}
	}

	if _, err := NewSweepCellTask(SweepCellRequest{SweepRequest: req, Index: 99}); err == nil {
		t.Fatal("out-of-grid cell index must be rejected")
	}
	if _, err := NewSweepRunTask(SweepRequest{Schemes: []string{"nope"}}); err == nil {
		t.Fatal("bad scheme must be rejected")
	}
}

func TestDVFSExploreTask(t *testing.T) {
	req := DVFSExploreRequest{
		Workloads: []string{"compute-memory-swing"},
		Schemes:   []string{"block"},
		Policies:  []string{"static-high", "static-low", "oracle"},
		Seed:      5,
		Scale:     8000,
	}
	task, err := NewDVFSExploreTask(req)
	if err != nil {
		t.Fatal(err)
	}
	if task.GridCells() != 3 {
		t.Fatalf("grid cells %d, want 3", task.GridCells())
	}
	var resp DVFSResponse
	if err := json.Unmarshal(mustRun(t, task), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 3 || len(resp.Frontier) == 0 || resp.Hash == "" || resp.Runs != nil {
		t.Fatalf("explore response %+v", resp)
	}

	// IncludeRuns changes the stored bytes, so it must change the task
	// identity — but not the reported spec hash.
	req.IncludeRuns = true
	withRuns, err := NewDVFSExploreTask(req)
	if err != nil {
		t.Fatal(err)
	}
	if withRuns.CanonicalHash() == task.CanonicalHash() {
		t.Fatal("runs flag must change the task hash")
	}
	var respRuns DVFSResponse
	if err := json.Unmarshal(mustRun(t, withRuns), &respRuns); err != nil {
		t.Fatal(err)
	}
	if len(respRuns.Runs) != 3 || respRuns.Hash != resp.Hash {
		t.Fatalf("runs response: %d runs, hash %s vs %s", len(respRuns.Runs), respRuns.Hash, resp.Hash)
	}

	for name, bad := range map[string]DVFSExploreRequest{
		"workload": {Workloads: []string{"nope"}},
		"scheme":   {Schemes: []string{"nope"}},
		"policy":   {Policies: []string{"warp"}},
		"none":     {Policies: []string{"none"}},
	} {
		if _, err := NewDVFSExploreTask(bad); err == nil {
			t.Errorf("%s: bad request accepted", name)
		}
	}
}

func TestDVFSRunTask(t *testing.T) {
	task, err := NewDVFSRunTask(DVFSRunRequest{
		Workload: "bursty-server", Scheme: "block", Policy: "oracle", Scale: 6000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var resp map[string]any
	if err := json.Unmarshal(mustRun(t, task), &resp); err != nil {
		t.Fatal(err)
	}
	if resp["workload"] != "bursty-server" || resp["policy"] != "oracle" {
		t.Fatalf("run response %+v", resp)
	}
	if _, err := NewDVFSRunTask(DVFSRunRequest{Workload: "bursty-server", Policy: "none"}); err == nil {
		t.Fatal("policy none must be rejected")
	}
	if _, err := NewDVFSRunTask(DVFSRunRequest{Workload: "nope", Policy: "oracle"}); err == nil {
		t.Fatal("unknown workload must be rejected")
	}
}

// TestRegistryDecodesEveryKind proves each registered kind decodes its
// JSON form into the same identity the typed constructors build.
func TestRegistryDecodesEveryKind(t *testing.T) {
	cases := map[string]string{
		KindCapacity:       `{"pfail":0.001,"trials":5}`,
		KindOperatingPoint: `{"min_performance":0.5}`,
		KindOverhead:       `{}`,
		KindSim:            `{"benchmark":"crafty","scheme":"block","pfail":0.001,"instructions":2000}`,
		KindSweep:          `{"pfails":[0.001],"schemes":["baseline"],"benchmarks":["crafty"],"trials":1,"instructions":1000}`,
		KindSweepCell:      `{"pfails":[0.001],"schemes":["baseline"],"benchmarks":["crafty"],"trials":1,"instructions":1000,"index":0}`,
		KindDVFSRun:        `{"workload":"bursty-server","policy":"oracle","scale":4000}`,
		KindDVFSExplore:    `{"workloads":["bursty-server"],"schemes":["block"],"policies":["oracle"],"scale":4000}`,
		KindFleetSweep:     `{"dies":50,"schemes":["block","word"],"seed":7}`,
		KindVccminPredict:  `{"dies":50,"scheme":"block","k":4,"sample":8,"seed":7}`,
	}
	for kind, params := range cases {
		task, err := engine.DecodeTask(kind, json.RawMessage(params))
		if err != nil {
			t.Errorf("%s: decode: %v", kind, err)
			continue
		}
		if task.Kind() != kind {
			t.Errorf("%s: decoded kind %q", kind, task.Kind())
		}
		if task.CanonicalHash() == "" {
			t.Errorf("%s: empty canonical hash", kind)
		}
	}
	if _, err := engine.DecodeTask(KindSim, json.RawMessage(`{"bogus":1}`)); err == nil {
		t.Error("unknown field must be rejected")
	}
}

// TestFleetHashIgnoresWorkers pins that the scheduling knob is outside
// the content address, while the dies-rows flag is inside it.
func TestFleetHashIgnoresWorkers(t *testing.T) {
	base, err := NewFleetTask(FleetRequest{Dies: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewFleetTask(FleetRequest{Dies: 100, Seed: 3, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if base.CanonicalHash() != parallel.CanonicalHash() {
		t.Error("workers changed the fleet hash")
	}
	withRows, err := NewFleetTask(FleetRequest{Dies: 100, Seed: 3, IncludeDies: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.CanonicalHash() == withRows.CanonicalHash() {
		t.Error("include_dies must change the stored identity")
	}
	defaulted, err := NewFleetTask(FleetRequest{Dies: 100, Seed: 3, VSteps: 33})
	if err != nil {
		t.Fatal(err)
	}
	if base.CanonicalHash() != defaulted.CanonicalHash() {
		t.Error("explicit default must hash like the omitted field")
	}

	p1, err := NewPredictTask(PredictRequest{Dies: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPredictTask(PredictRequest{Dies: 100, Seed: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p1.CanonicalHash() != p2.CanonicalHash() {
		t.Error("workers changed the predict hash")
	}
	if p1.CanonicalHash() == base.CanonicalHash() {
		t.Error("distinct kinds must not collide")
	}
}

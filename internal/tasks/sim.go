package tasks

import (
	"context"
	"fmt"

	"vccmin/internal/experiments"
	"vccmin/internal/faults"
	"vccmin/internal/geom"
	"vccmin/internal/sim"
)

// SimRequest is one simulation run's parameters (the POST /v1/sim body).
// String fields use the CLI forms (scheme "block", victim "10t", mode
// "low"); zero values take the reference defaults.
type SimRequest struct {
	Benchmark    string  `json:"benchmark"`
	Mode         string  `json:"mode"`
	Scheme       string  `json:"scheme"`
	Victim       string  `json:"victim"`
	Geometry     string  `json:"geometry"`
	Pfail        float64 `json:"pfail"`
	Seed         int64   `json:"seed"`
	Instructions int     `json:"instructions"`
}

// Options converts the request into the simulator's option form,
// drawing the deterministic fault-map pair fault-dependent schemes need
// at low voltage.
func (req SimRequest) Options() (sim.Options, error) {
	opts := sim.Options{Benchmark: req.Benchmark, Seed: req.Seed, Instructions: req.Instructions}
	if opts.Benchmark == "" {
		return opts, fmt.Errorf("benchmark is required")
	}
	switch req.Mode {
	case "", "low", "low-voltage":
		opts.Mode = sim.LowVoltage
	case "high", "high-voltage":
		opts.Mode = sim.HighVoltage
	default:
		return opts, fmt.Errorf("bad mode %q (want low or high)", req.Mode)
	}
	var err error
	if req.Scheme != "" {
		if opts.Scheme, err = sim.ParseScheme(req.Scheme); err != nil {
			return opts, err
		}
	}
	if req.Victim != "" {
		if opts.Victim, err = sim.ParseVictim(req.Victim); err != nil {
			return opts, err
		}
	}
	g := experiments.ReferenceGeometry()
	if req.Geometry != "" {
		if g, err = geom.Parse(req.Geometry); err != nil {
			return opts, err
		}
		machine := sim.Reference(opts.Mode)
		machine.L1Size, machine.L1Ways, machine.L1BlockBytes = g.SizeBytes, g.Ways, g.BlockBytes
		opts.Machine = &machine
	}
	if req.Pfail < 0 || req.Pfail >= 1 {
		return opts, fmt.Errorf("pfail %v out of [0,1)", req.Pfail)
	}
	// Fault-dependent schemes at low voltage need a fault-map pair; draw
	// it deterministically from the request's pfail and seed on the
	// sparse fast path.
	if opts.Mode == sim.LowVoltage && (opts.Scheme == sim.BlockDisable ||
		opts.Scheme == sim.IncrementalWordDisable || opts.Scheme == sim.BitFix) {
		pair := faults.GeneratePairSparse(g, g, 32, req.Pfail, faults.DeriveSeed(req.Seed, "serve-sim-pair"))
		opts.Pair = &pair
	}
	return opts, nil
}

// SimResponse summarizes one simulation run.
type SimResponse struct {
	Benchmark     string  `json:"benchmark"`
	Mode          string  `json:"mode"`
	Scheme        string  `json:"scheme"`
	Victim        string  `json:"victim"`
	Pfail         float64 `json:"pfail"`
	Seed          int64   `json:"seed"`
	Instructions  int     `json:"instructions"`
	IPC           float64 `json:"ipc"`
	ICapacity     float64 `json:"i_capacity"`
	DCapacity     float64 `json:"d_capacity"`
	VictimHitRate float64 `json:"victim_hit_rate"`
}

// SimTask runs one simulation.
type SimTask struct {
	Req SimRequest
}

// NewSimTask validates the request into a runnable task.
func NewSimTask(req SimRequest) (SimTask, error) {
	if _, err := req.Options(); err != nil {
		return SimTask{}, err
	}
	return SimTask{Req: req}, nil
}

// Kind implements engine.Task.
func (t SimTask) Kind() string { return KindSim }

// CanonicalHash digests the request verbatim: every field is
// result-defining (zero values are the reference defaults).
func (t SimTask) CanonicalHash() string { return hashJSON(KindSim, t.Req) }

// Run implements engine.Task.
func (t SimTask) Run(ctx context.Context) (any, error) {
	opts, err := t.Req.Options()
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(opts)
	if err != nil {
		return nil, err
	}
	return SimResponse{
		Benchmark:     t.Req.Benchmark,
		Mode:          opts.Mode.String(),
		Scheme:        opts.Scheme.String(),
		Victim:        opts.Victim.String(),
		Pfail:         t.Req.Pfail,
		Seed:          t.Req.Seed,
		Instructions:  opts.Instructions,
		IPC:           res.IPC,
		ICapacity:     res.ICapacity,
		DCapacity:     res.DCapacity,
		VictimHitRate: res.VictimHitRate,
	}, nil
}

//go:build !race

package colstore

// raceEnabled scales the differential population down under the race
// detector (see oracleRowCount).
const raceEnabled = false

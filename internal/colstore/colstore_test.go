package colstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"vccmin/internal/sweep"
)

// testKey mirrors sweep.Cell.Key's canonical spelling independently of
// cellKey, so a drift in either implementation fails a test instead of
// cancelling out.
func testKey(r sweep.Row) string {
	key := fmt.Sprintf("pfail=%s;geom=%dx%dx%d;scheme=%s;victim=%s;gran=%s",
		strconv.FormatFloat(r.Pfail, 'g', -1, 64), r.GeomSize, r.GeomWays, r.GeomBlock,
		r.Scheme, r.Victim, r.Granularity)
	if r.Policy != "" {
		key += ";policy=" + r.Policy
	}
	return key
}

// genRows builds n synthetic sweep rows with canonical keys: a few
// distinct values per axis (so the dictionary and adaptive-float paths
// engage), full-entropy measurement columns (so the raw-float path
// engages), and, when withDVFS is set, a mix of classic and scheduled
// rows (so the optional columns carry a real presence pattern).
func genRows(n int, seed int64, withDVFS bool) []sweep.Row {
	rng := rand.New(rand.NewSource(seed))
	pfails := []float64{1e-4, 2.5e-4, 1e-3, 5e-3}
	geoms := [][3]int{{32768, 8, 64}, {16384, 4, 64}, {65536, 16, 128}}
	schemes := []string{"baseline", "word", "block"}
	victims := []string{"none", "10t"}
	grans := []string{"block", "way"}
	policies := []string{"", "oracle", "reactive"}
	rows := make([]sweep.Row, n)
	for i := range rows {
		g := geoms[rng.Intn(len(geoms))]
		r := sweep.Row{
			Index:  i,
			Stream: sweep.StreamVersion,
			Pfail:  pfails[rng.Intn(len(pfails))],

			GeomSize: g[0], GeomWays: g[1], GeomBlock: g[2],
			Scheme:      schemes[rng.Intn(len(schemes))],
			Victim:      victims[rng.Intn(len(victims))],
			Granularity: grans[rng.Intn(len(grans))],
			Seed:        rng.Int63(),

			ExpectedCapacity:   rng.Float64(),
			WholeCacheFailProb: rng.Float64() / 100,
			MeanIPC:            2 * rng.Float64(),
			BaselineIPC:        2.5, // constant: single-entry float dictionary
			IPCDegradation:     rng.Float64() / 10,
			MeasuredCapacity:   rng.Float64(),
			UnfitTrials:        rng.Intn(4),
			Voltage:            0.7 + rng.Float64()/10,
			Frequency:          0.5 + rng.Float64()/2,

			EnergyPerInstruction: rng.Float64(),
			Trials:               3,
			Benchmarks:           3,
		}
		if withDVFS {
			r.Policy = policies[rng.Intn(len(policies))]
		}
		if r.Policy != "" {
			r.DVFSPerformance = rng.Float64()
			r.DVFSEnergyPerInst = rng.Float64()
			sw := float64(rng.Intn(10))
			ls := rng.Float64()
			r.DVFSSwitches = &sw
			r.DVFSLowShare = &ls
		}
		r.Key = testKey(r)
		rows[i] = r
	}
	return rows
}

func mustShard(t testing.TB, rows []sweep.Row) *Shard {
	t.Helper()
	s, err := NewShard(rows)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRoundTrip proves the core lossless contract on a mixed
// classic/scheduled population: encode → decode → re-encode is
// byte-identical and the materialized rows are deep-equal to the input,
// reconstructed keys included.
func TestRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name     string
		rows     []sweep.Row
		withDVFS bool
	}{
		{"empty", nil, false},
		{"single", genRows(1, 1, false), false},
		{"classic", genRows(500, 2, false), false},
		{"mixed_dvfs", genRows(1000, 3, true), true},
		{"bitmap_odd_tail", genRows(257, 4, true), true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := mustShard(t, tc.rows)
			enc := s.EncodeBytes()
			back, err := Decode(enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if re := back.EncodeBytes(); !bytes.Equal(re, enc) {
				t.Fatalf("re-encode differs: %d vs %d bytes", len(re), len(enc))
			}
			rows := back.Rows()
			if len(tc.rows) == 0 {
				if len(rows) != 0 {
					t.Fatalf("empty shard materialized %d rows", len(rows))
				}
				return
			}
			if !reflect.DeepEqual(rows, tc.rows) {
				t.Fatal("materialized rows differ from the input")
			}
		})
	}
}

// TestRoundTripJSONEquivalence proves the columnar form is lossless at
// the serialization contract level too: the JSONL a checkpoint would
// hold and the JSONL of the decoded rows are byte-identical.
func TestRoundTripJSONEquivalence(t *testing.T) {
	rows := genRows(200, 9, true)
	back, err := Decode(mustShard(t, rows).EncodeBytes())
	if err != nil {
		t.Fatal(err)
	}
	want, got := jsonl(t, rows), jsonl(t, back.Rows())
	if !bytes.Equal(want, got) {
		t.Fatal("decoded rows serialize differently from the input rows")
	}
}

func jsonl(t *testing.T, rows []sweep.Row) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range rows {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestNewShardRejectsNonCanonicalKey: the format does not store keys,
// so a row whose key is not the canonical spelling of its coordinates
// could not round-trip and must be refused.
func TestNewShardRejectsNonCanonicalKey(t *testing.T) {
	rows := genRows(3, 5, false)
	rows[1].Key = rows[1].Key + "x"
	if _, err := NewShard(rows); err == nil {
		t.Fatal("NewShard accepted a non-canonical key")
	}
	rows = genRows(3, 5, false)
	rows[2].Key = ""
	if _, err := NewShard(rows); err == nil {
		t.Fatal("NewShard accepted an empty key")
	}
}

// TestDecodeRejectsCorruption walks every byte of a real shard, flips
// it, and requires the mutation to either fail cleanly or decode to a
// shard that re-encodes to exactly the mutated bytes (the canonical-form
// contract: Decode accepts nothing the encoder could not have written).
// Truncations at every length are held to the same standard.
func TestDecodeRejectsCorruption(t *testing.T) {
	enc := mustShard(t, genRows(20, 6, true)).EncodeBytes()
	if _, err := Decode(enc); err != nil {
		t.Fatalf("pristine shard: %v", err)
	}
	for i := range enc {
		mut := append([]byte{}, enc...)
		mut[i] ^= 0x41
		s, err := Decode(mut)
		if err != nil {
			continue
		}
		if re := s.EncodeBytes(); !bytes.Equal(re, mut) {
			t.Fatalf("byte %d flipped: decode accepted non-canonical bytes", i)
		}
	}
	for n := 0; n < len(enc); n++ {
		if _, err := Decode(enc[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
}

// TestDecodeRejectsBadMagic pins the versioned stream break: a colv2
// header (or arbitrary bytes) fails with ErrBadMagic, the refusable
// sentinel callers branch on.
func TestDecodeRejectsBadMagic(t *testing.T) {
	enc := mustShard(t, genRows(4, 7, false)).EncodeBytes()
	mut := append([]byte{}, enc...)
	copy(mut, "colv2\x00")
	_, err := Decode(mut)
	if err == nil || !strings.Contains(err.Error(), "not a colv1 shard") {
		t.Fatalf("colv2 header: got %v, want ErrBadMagic", err)
	}
}

// TestShardsOf checks the fold chunking: order preserved, chunk sizes
// exact, concatenated rows identical to the input.
func TestShardsOf(t *testing.T) {
	rows := genRows(25, 8, true)
	src, err := ShardsOf(rows, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(src) != 4 {
		t.Fatalf("25 rows in 7-row shards: %d shards, want 4", len(src))
	}
	for i, want := range []int{7, 7, 7, 4} {
		if src[i].NumRows() != want {
			t.Fatalf("shard %d has %d rows, want %d", i, src[i].NumRows(), want)
		}
	}
	back, err := Rows(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rows) {
		t.Fatal("concatenated shard rows differ from the input")
	}
}

// TestWriteDirFold covers the on-disk fold: JSONL → shard directory →
// Dir source, order preserved (including a deliberately shuffled,
// resume-like checkpoint order), idempotent re-fold.
func TestWriteDirFold(t *testing.T) {
	rows := genRows(100, 11, true)
	// A resume-like checkpoint is not in cell-index order; the fold must
	// preserve whatever order the file has.
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })

	dir := t.TempDir()
	src := filepath.Join(dir, "rows.jsonl")
	if err := os.WriteFile(src, jsonl(t, rows), 0o644); err != nil {
		t.Fatal(err)
	}
	shardDir := filepath.Join(dir, "colstore")
	n, err := FoldJSONL(src, shardDir, 32)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(rows) {
		t.Fatalf("fold reported %d rows, want %d", n, len(rows))
	}
	d, err := OpenDir(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.files) != 4 {
		t.Fatalf("100 rows in 32-row shards: %d files, want 4", len(d.files))
	}
	back, err := Rows(d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rows) {
		t.Fatal("folded rows differ from the checkpoint (order must be preserved)")
	}

	// Idempotent: a second fold over different rows is a no-op because
	// the directory exists — first writer wins, bytes are deterministic.
	before, err := os.ReadFile(filepath.Join(shardDir, d.files[0]))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteDir(shardDir, genRows(5, 99, false), 32); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(filepath.Join(shardDir, d.files[0]))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("re-fold of an existing directory rewrote shard bytes")
	}
}

// TestOpenDirEmpty: a directory with no shards is a valid empty result
// set, and querying it answers with zero rows.
func TestOpenDirEmpty(t *testing.T) {
	d, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Query(d, Spec{Metrics: []string{"mean_ipc"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 0 || res.Matched != 0 || len(res.Groups) != 0 {
		t.Fatalf("empty dir query: %+v", res)
	}
}

// TestDirRejectsCorruptShard: a damaged shard file surfaces as a named
// decode error, never a partial answer.
func TestDirRejectsCorruptShard(t *testing.T) {
	dir := t.TempDir()
	enc := mustShard(t, genRows(10, 13, false)).EncodeBytes()
	if err := os.WriteFile(filepath.Join(dir, "000000.colv1"), enc[:len(enc)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Query(d, Spec{Metrics: []string{"mean_ipc"}}); err == nil {
		t.Fatal("query over a truncated shard file succeeded")
	}
}

// TestSpecCheck pins the validation surface of the query spec.
func TestSpecCheck(t *testing.T) {
	lo, hi := 1e-3, 1e-4
	bad := []Spec{
		{Metrics: nil},
		{Metrics: []string{"no_such_metric"}},
		{Metrics: []string{"mean_ipc", "mean_ipc"}},
		{GroupBy: []string{"no_such_axis"}, Metrics: []string{"mean_ipc"}},
		{GroupBy: []string{"scheme", "scheme"}, Metrics: []string{"mean_ipc"}},
		{GroupBy: []string{"pfail", "geometry", "scheme", "victim", "granularity"}, Metrics: []string{"mean_ipc"}},
		{Where: map[string]string{"bogus": "x"}, Metrics: []string{"mean_ipc"}},
		{PfailMin: &lo, PfailMax: &hi, Metrics: []string{"mean_ipc"}},
	}
	for i, q := range bad {
		if err := q.Check(); err == nil {
			t.Errorf("spec %d passed Check: %+v", i, q)
		}
	}
	ok := Spec{GroupBy: []string{"pfail", "scheme"}, Metrics: []string{"mean_ipc"},
		Where: map[string]string{"victim": "none"}, PfailMin: &hi, PfailMax: &lo}
	if err := ok.Check(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestQuerySemantics hand-checks the aggregation on a tiny fixed result
// set: grouping, the "all" group, where filters, the pfail range, the
// policy "none" rendering, and the optional metric's smaller count.
func TestQuerySemantics(t *testing.T) {
	rows := genRows(200, 17, true)
	src, err := ShardsOf(rows, 64)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("all_group", func(t *testing.T) {
		res, err := Query(src, Spec{Metrics: []string{"mean_ipc", "dvfs_switches"}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows != 200 || res.Matched != 200 {
			t.Fatalf("rows/matched = %d/%d, want 200/200", res.Rows, res.Matched)
		}
		if len(res.Groups) != 1 || res.Groups[0].Key != "all" {
			t.Fatalf("groups = %+v, want one group 'all'", res.Groups)
		}
		g := res.Groups[0]
		if g.Cells != 200 || g.Aggregates[0].Count != 200 {
			t.Fatalf("all group cells/count = %d/%d", g.Cells, g.Aggregates[0].Count)
		}
		// dvfs_switches only exists on scheduled rows.
		scheduled := 0
		for _, r := range rows {
			if r.DVFSSwitches != nil {
				scheduled++
			}
		}
		if g.Aggregates[1].Count != scheduled {
			t.Fatalf("dvfs_switches count = %d, want %d scheduled rows", g.Aggregates[1].Count, scheduled)
		}
	})

	t.Run("group_by_policy_renders_none", func(t *testing.T) {
		res, err := Query(src, Spec{GroupBy: []string{"policy"}, Metrics: []string{"mean_ipc"}})
		if err != nil {
			t.Fatal(err)
		}
		keys := map[string]bool{}
		for _, g := range res.Groups {
			keys[g.Key] = true
		}
		if !keys["policy=none"] {
			t.Fatalf("classic rows missing from policy axis: groups %v", keys)
		}
		if keys["policy="] {
			t.Fatal("empty policy leaked as an invisible axis value")
		}
	})

	t.Run("where_and_range", func(t *testing.T) {
		min := 2e-4
		res, err := Query(src, Spec{
			GroupBy:  []string{"pfail"},
			Metrics:  []string{"expected_capacity"},
			Where:    map[string]string{"scheme": "block"},
			PfailMin: &min,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, r := range rows {
			if r.Scheme == "block" && r.Pfail >= min {
				want++
			}
		}
		if res.Matched != want {
			t.Fatalf("matched %d, want %d", res.Matched, want)
		}
		for _, g := range res.Groups {
			v, err := strconv.ParseFloat(strings.TrimPrefix(g.Key, "pfail="), 64)
			if err != nil || v < min {
				t.Fatalf("group %q escaped the pfail range", g.Key)
			}
		}
	})

	t.Run("numeric_group_order", func(t *testing.T) {
		res, err := Query(src, Spec{GroupBy: []string{"pfail"}, Metrics: []string{"mean_ipc"}})
		if err != nil {
			t.Fatal(err)
		}
		var prev float64
		for i, g := range res.Groups {
			v, err := strconv.ParseFloat(strings.TrimPrefix(g.Key, "pfail="), 64)
			if err != nil {
				t.Fatal(err)
			}
			if i > 0 && v <= prev {
				t.Fatalf("pfail groups not in numeric order: %v", res.Groups)
			}
			prev = v
		}
	})
}

// TestQueryOrderIndependence is the cache-identity invariant: the same
// result set in any row order and any shard layout answers with
// byte-identical JSON — what lets a checkpoint-backed query and an
// inline-computed one share one content address.
func TestQueryOrderIndependence(t *testing.T) {
	rows := genRows(300, 23, true)
	q := Spec{GroupBy: []string{"scheme", "pfail"}, Metrics: []string{"mean_ipc", "dvfs_low_share", "unfit_trials"}}

	marshal := func(rows []sweep.Row, shardRows int) []byte {
		src, err := ShardsOf(rows, shardRows)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Query(src, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	want := marshal(rows, 64)
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]sweep.Row{}, rows...)
		rng := rand.New(rand.NewSource(int64(trial)))
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		shardRows := 1 + rng.Intn(300)
		if got := marshal(shuffled, shardRows); !bytes.Equal(got, want) {
			t.Fatalf("trial %d (shardRows=%d): answer depends on row order or shard layout", trial, shardRows)
		}
	}
}

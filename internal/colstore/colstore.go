// Package colstore is the compact columnar shard format for finished
// sweep results and the aggregation layer on top of it. A sweep's JSONL
// checkpoint stores every row as a self-describing JSON object —
// perfect for streaming and resume, roughly 10x too large and entirely
// the wrong shape for fleet-scale slicing ("p99 IPC degradation by
// scheme over a million cells"). A colstore shard stores the same rows
// as columns: dictionary-compressed strings for the axis coordinates,
// zigzag-delta varints for the integers, raw little-endian bits (or an
// adaptive dictionary) for the floats, and a presence bitmap for the
// optional DVFS pointers — losslessly, because sweep.Row is a pure
// function of its cell coordinates and the canonical cell key can be
// reconstructed from the axis columns instead of being stored.
//
// Format contract (colv1). A shard file is
//
//	magic "colv1\x00"
//	column payloads, concatenated in schema order
//	footer: row count, then per column name/kind/offset/length
//	8-byte little-endian absolute footer offset
//
// and every encoding decision is a deterministic pure function of the
// row values, so encode → decode → re-encode is byte-identical and a
// shard's bytes never depend on worker count, shard layout or which
// entrypoint folded it. The magic is a versioned stream break exactly
// like the sweep engine's sparse-v1: a future layout change bumps it to
// colv2 and old shards are refused, never half-read.
//
// The decoder is adversarial-input safe: every allocation is bounded by
// the input length, varints must be minimally encoded, columns must
// tile the body exactly, and dictionaries must be in canonical
// first-appearance order with every entry used — arbitrary bytes either
// decode into a shard that re-encodes to the very same bytes, or fail
// cleanly.
package colstore

import (
	"fmt"
	"strconv"

	"vccmin/internal/sweep"
)

// DefaultShardRows is the fold chunk size: rows per shard file. Large
// enough that dictionaries and the footer amortize to noise, small
// enough that one shard's materialized columns stay cache-friendly.
const DefaultShardRows = 65536

// colClass is a column's logical type in the fixed colv1 schema.
type colClass uint8

const (
	classInt   colClass = iota // int64, zigzag-delta varints
	classStr                   // string, dictionary + indices
	classFloat                 // float64, raw bits or adaptive dictionary
	classOpt                   // optional float64, presence bitmap + raw bits
)

// colDef names one column of the fixed colv1 schema. The schema — the
// names, classes and order below — is part of the format: a decoder
// refuses any footer that does not spell it exactly, and changing it
// means a colv2 stream break.
type colDef struct {
	name  string
	class colClass
}

// schema mirrors sweep.Row field for field (JSON names), minus Key —
// the canonical cell key is reconstructed from the axis columns, which
// is both the biggest size win and a lossless-by-construction check:
// NewShard refuses any row whose stored key is not the canonical
// spelling of its coordinates.
var schema = []colDef{
	{"index", classInt},
	{"stream", classStr},
	{"pfail", classFloat},
	{"geom_size", classInt},
	{"geom_ways", classInt},
	{"geom_block", classInt},
	{"scheme", classStr},
	{"victim", classStr},
	{"granularity", classStr},
	{"seed", classInt},
	{"expected_capacity", classFloat},
	{"whole_cache_fail_prob", classFloat},
	{"mean_ipc", classFloat},
	{"baseline_ipc", classFloat},
	{"ipc_degradation", classFloat},
	{"measured_capacity", classFloat},
	{"unfit_trials", classInt},
	{"voltage", classFloat},
	{"frequency", classFloat},
	{"energy_per_instruction", classFloat},
	{"trials", classInt},
	{"benchmarks", classInt},
	{"policy", classStr},
	{"dvfs_performance", classFloat},
	{"dvfs_energy_per_instruction", classFloat},
	{"dvfs_switches", classOpt},
	{"dvfs_low_share", classOpt},
}

// strCol keeps a dictionary column in its encoded shape: the distinct
// values in first-appearance order plus one dictionary index per row.
// Queries group and filter on the indices without touching strings.
type strCol struct {
	dict []string
	idx  []uint32
}

func (c strCol) value(r int) string { return c.dict[c.idx[r]] }

// optCol is an optional float column: present[r] says whether row r
// carries a value, vals[r] is meaningful only when it does.
type optCol struct {
	present []bool
	vals    []float64
}

// Shard holds one chunk of sweep rows column-wise, in checkpoint order.
// It is the in-memory form both of the encoder's input and the
// decoder's output, and the unit the query layer scans.
type Shard struct {
	rows   int
	ints   map[string][]int64
	strs   map[string]strCol
	floats map[string][]float64
	opts   map[string]optCol
}

// NumRows returns the shard's row count.
func (s *Shard) NumRows() int { return s.rows }

// cellKey reconstructs the canonical cell key from axis values — the
// exact sweep.Cell.Key spelling, which is part of the on-disk contract
// there and therefore here too.
func cellKey(pfail float64, size, ways, block int64, scheme, victim, gran, policy string) string {
	key := fmt.Sprintf("pfail=%s;geom=%dx%dx%d;scheme=%s;victim=%s;gran=%s",
		strconv.FormatFloat(pfail, 'g', -1, 64),
		size, ways, block, scheme, victim, gran)
	if policy != "" {
		key += ";policy=" + policy
	}
	return key
}

// NewShard builds a shard from rows, preserving their order. It errors
// if any row's Key is not the canonical spelling of its coordinates:
// the format does not store keys, so a non-canonical key is the one
// thing a shard could not round-trip.
func NewShard(rows []sweep.Row) (*Shard, error) {
	s := &Shard{
		rows:   len(rows),
		ints:   make(map[string][]int64),
		strs:   make(map[string]strCol),
		floats: make(map[string][]float64),
		opts:   make(map[string]optCol),
	}
	n := len(rows)
	intVals := func(get func(sweep.Row) int64) []int64 {
		out := make([]int64, n)
		for i, r := range rows {
			out[i] = get(r)
		}
		return out
	}
	floatVals := func(get func(sweep.Row) float64) []float64 {
		out := make([]float64, n)
		for i, r := range rows {
			out[i] = get(r)
		}
		return out
	}
	strVals := func(get func(sweep.Row) string) strCol {
		c := strCol{idx: make([]uint32, n)}
		ids := make(map[string]uint32)
		for i, r := range rows {
			v := get(r)
			id, ok := ids[v]
			if !ok {
				id = uint32(len(c.dict))
				ids[v] = id
				c.dict = append(c.dict, v)
			}
			c.idx[i] = id
		}
		return c
	}
	optVals := func(get func(sweep.Row) *float64) optCol {
		c := optCol{present: make([]bool, n), vals: make([]float64, n)}
		for i, r := range rows {
			if p := get(r); p != nil {
				c.present[i] = true
				c.vals[i] = *p
			}
		}
		return c
	}

	for i, r := range rows {
		want := cellKey(r.Pfail, int64(r.GeomSize), int64(r.GeomWays), int64(r.GeomBlock),
			r.Scheme, r.Victim, r.Granularity, r.Policy)
		if r.Key != want {
			return nil, fmt.Errorf("colstore: row %d key %q is not the canonical cell key %q", i, r.Key, want)
		}
	}

	s.ints["index"] = intVals(func(r sweep.Row) int64 { return int64(r.Index) })
	s.strs["stream"] = strVals(func(r sweep.Row) string { return r.Stream })
	s.floats["pfail"] = floatVals(func(r sweep.Row) float64 { return r.Pfail })
	s.ints["geom_size"] = intVals(func(r sweep.Row) int64 { return int64(r.GeomSize) })
	s.ints["geom_ways"] = intVals(func(r sweep.Row) int64 { return int64(r.GeomWays) })
	s.ints["geom_block"] = intVals(func(r sweep.Row) int64 { return int64(r.GeomBlock) })
	s.strs["scheme"] = strVals(func(r sweep.Row) string { return r.Scheme })
	s.strs["victim"] = strVals(func(r sweep.Row) string { return r.Victim })
	s.strs["granularity"] = strVals(func(r sweep.Row) string { return r.Granularity })
	s.ints["seed"] = intVals(func(r sweep.Row) int64 { return r.Seed })
	s.floats["expected_capacity"] = floatVals(func(r sweep.Row) float64 { return r.ExpectedCapacity })
	s.floats["whole_cache_fail_prob"] = floatVals(func(r sweep.Row) float64 { return r.WholeCacheFailProb })
	s.floats["mean_ipc"] = floatVals(func(r sweep.Row) float64 { return r.MeanIPC })
	s.floats["baseline_ipc"] = floatVals(func(r sweep.Row) float64 { return r.BaselineIPC })
	s.floats["ipc_degradation"] = floatVals(func(r sweep.Row) float64 { return r.IPCDegradation })
	s.floats["measured_capacity"] = floatVals(func(r sweep.Row) float64 { return r.MeasuredCapacity })
	s.ints["unfit_trials"] = intVals(func(r sweep.Row) int64 { return int64(r.UnfitTrials) })
	s.floats["voltage"] = floatVals(func(r sweep.Row) float64 { return r.Voltage })
	s.floats["frequency"] = floatVals(func(r sweep.Row) float64 { return r.Frequency })
	s.floats["energy_per_instruction"] = floatVals(func(r sweep.Row) float64 { return r.EnergyPerInstruction })
	s.ints["trials"] = intVals(func(r sweep.Row) int64 { return int64(r.Trials) })
	s.ints["benchmarks"] = intVals(func(r sweep.Row) int64 { return int64(r.Benchmarks) })
	s.strs["policy"] = strVals(func(r sweep.Row) string { return r.Policy })
	s.floats["dvfs_performance"] = floatVals(func(r sweep.Row) float64 { return r.DVFSPerformance })
	s.floats["dvfs_energy_per_instruction"] = floatVals(func(r sweep.Row) float64 { return r.DVFSEnergyPerInst })
	s.opts["dvfs_switches"] = optVals(func(r sweep.Row) *float64 { return r.DVFSSwitches })
	s.opts["dvfs_low_share"] = optVals(func(r sweep.Row) *float64 { return r.DVFSLowShare })
	return s, nil
}

// Rows materializes the shard back into sweep rows, in stored order,
// with every Key reconstructed from the axis columns. For shards built
// by NewShard (directly or through a fold) the result is deep-equal to
// the input rows.
func (s *Shard) Rows() []sweep.Row {
	out := make([]sweep.Row, s.rows)
	for i := range out {
		r := &out[i]
		r.Index = int(s.ints["index"][i])
		r.Stream = s.strs["stream"].value(i)
		r.Pfail = s.floats["pfail"][i]
		r.GeomSize = int(s.ints["geom_size"][i])
		r.GeomWays = int(s.ints["geom_ways"][i])
		r.GeomBlock = int(s.ints["geom_block"][i])
		r.Scheme = s.strs["scheme"].value(i)
		r.Victim = s.strs["victim"].value(i)
		r.Granularity = s.strs["granularity"].value(i)
		r.Seed = s.ints["seed"][i]
		r.ExpectedCapacity = s.floats["expected_capacity"][i]
		r.WholeCacheFailProb = s.floats["whole_cache_fail_prob"][i]
		r.MeanIPC = s.floats["mean_ipc"][i]
		r.BaselineIPC = s.floats["baseline_ipc"][i]
		r.IPCDegradation = s.floats["ipc_degradation"][i]
		r.MeasuredCapacity = s.floats["measured_capacity"][i]
		r.UnfitTrials = int(s.ints["unfit_trials"][i])
		r.Voltage = s.floats["voltage"][i]
		r.Frequency = s.floats["frequency"][i]
		r.EnergyPerInstruction = s.floats["energy_per_instruction"][i]
		r.Trials = int(s.ints["trials"][i])
		r.Benchmarks = int(s.ints["benchmarks"][i])
		r.Policy = s.strs["policy"].value(i)
		r.DVFSPerformance = s.floats["dvfs_performance"][i]
		r.DVFSEnergyPerInst = s.floats["dvfs_energy_per_instruction"][i]
		if c := s.opts["dvfs_switches"]; c.present[i] {
			v := c.vals[i]
			r.DVFSSwitches = &v
		}
		if c := s.opts["dvfs_low_share"]; c.present[i] {
			v := c.vals[i]
			r.DVFSLowShare = &v
		}
		r.Key = cellKey(r.Pfail, int64(r.GeomSize), int64(r.GeomWays), int64(r.GeomBlock),
			r.Scheme, r.Victim, r.Granularity, r.Policy)
	}
	return out
}

package colstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"testing"

	"vccmin/internal/sweep"
)

// This file is the differential oracle for the query layer, in the
// spirit of the faults/dvfs equivalence suites `make diff-race` runs: a
// second, naive implementation of the exact query semantics — row
// structs, string maps, no columns — held byte-identical to the real
// columnar path over large inputs. Every float in both implementations
// is computed by the same pinned recipe (sort, sum the sorted sample,
// nearest-rank quantiles), so the comparison is exact equality, not
// tolerance.

// oracleAxis renders one axis of one row plus its sort key, mirroring
// the spec prose rather than the axisReader code.
func oracleAxis(r sweep.Row, axis string) (str string, nums []float64, numeric bool) {
	switch axis {
	case "pfail":
		return strconv.FormatFloat(r.Pfail, 'g', -1, 64), []float64{r.Pfail}, true
	case "geometry":
		return fmt.Sprintf("%dx%dx%d", r.GeomSize, r.GeomWays, r.GeomBlock),
			[]float64{float64(r.GeomSize), float64(r.GeomWays), float64(r.GeomBlock)}, true
	case "scheme":
		return r.Scheme, nil, false
	case "victim":
		return r.Victim, nil, false
	case "granularity":
		return r.Granularity, nil, false
	case "policy":
		if r.Policy == "" {
			return "none", nil, false
		}
		return r.Policy, nil, false
	case "stream":
		return r.Stream, nil, false
	}
	panic("unknown axis " + axis)
}

// oracleMetric reads one metric of one row; ok=false when the row does
// not carry it (optional DVFS columns on classic rows).
func oracleMetric(r sweep.Row, m string) (float64, bool) {
	switch m {
	case "expected_capacity":
		return r.ExpectedCapacity, true
	case "whole_cache_fail_prob":
		return r.WholeCacheFailProb, true
	case "mean_ipc":
		return r.MeanIPC, true
	case "baseline_ipc":
		return r.BaselineIPC, true
	case "ipc_degradation":
		return r.IPCDegradation, true
	case "measured_capacity":
		return r.MeasuredCapacity, true
	case "unfit_trials":
		return float64(r.UnfitTrials), true
	case "voltage":
		return r.Voltage, true
	case "frequency":
		return r.Frequency, true
	case "energy_per_instruction":
		return r.EnergyPerInstruction, true
	case "trials":
		return float64(r.Trials), true
	case "benchmarks":
		return float64(r.Benchmarks), true
	case "dvfs_performance":
		return r.DVFSPerformance, true
	case "dvfs_energy_per_instruction":
		return r.DVFSEnergyPerInst, true
	case "dvfs_switches":
		if r.DVFSSwitches != nil {
			return *r.DVFSSwitches, true
		}
		return 0, false
	case "dvfs_low_share":
		if r.DVFSLowShare != nil {
			return *r.DVFSLowShare, true
		}
		return 0, false
	}
	panic("unknown metric " + m)
}

// oracleQuantile is the nearest-rank order statistic, written out
// independently of stats.QuantileSorted.
func oracleQuantile(sorted []float64, q float64) float64 {
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

type oracleGroup struct {
	key     string
	parts   [][]float64 // numeric sort keys, nil entry = lexical axis
	strs    []string
	cells   int
	samples [][]float64
}

// oracleQuery evaluates the spec naively over materialized rows.
func oracleQuery(rows []sweep.Row, q Spec) *Result {
	groups := map[string]*oracleGroup{}
	res := &Result{Rows: len(rows)}
	for _, r := range rows {
		matched := true
		for axis, want := range q.Where {
			if str, _, _ := oracleAxis(r, axis); str != want {
				matched = false
				break
			}
		}
		if q.PfailMin != nil && r.Pfail < *q.PfailMin {
			matched = false
		}
		if q.PfailMax != nil && r.Pfail > *q.PfailMax {
			matched = false
		}
		if !matched {
			continue
		}
		res.Matched++

		key := "all"
		var parts [][]float64
		var strs []string
		if len(q.GroupBy) > 0 {
			key = ""
			for i, axis := range q.GroupBy {
				str, nums, _ := oracleAxis(r, axis)
				if i > 0 {
					key += ";"
				}
				key += axis + "=" + str
				parts = append(parts, nums)
				strs = append(strs, str)
			}
		}
		g, ok := groups[key]
		if !ok {
			g = &oracleGroup{key: key, parts: parts, strs: strs, samples: make([][]float64, len(q.Metrics))}
			groups[key] = g
		}
		g.cells++
		for i, m := range q.Metrics {
			if v, ok := oracleMetric(r, m); ok {
				g.samples[i] = append(g.samples[i], v)
			}
		}
	}

	res.Groups = make([]Group, 0, len(groups))
	ordered := make([]*oracleGroup, 0, len(groups))
	for _, g := range groups {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		for k := range a.parts {
			if a.parts[k] != nil && b.parts[k] != nil {
				for x := range a.parts[k] {
					if a.parts[k][x] != b.parts[k][x] {
						return a.parts[k][x] < b.parts[k][x]
					}
				}
				continue
			}
			if a.strs[k] != b.strs[k] {
				return a.strs[k] < b.strs[k]
			}
		}
		return false
	})

	for _, g := range ordered {
		out := Group{Key: g.key, Cells: g.cells, Aggregates: make([]Aggregate, len(q.Metrics))}
		for i, m := range q.Metrics {
			vals := g.samples[i]
			a := Aggregate{Metric: m, Count: len(vals)}
			if len(vals) > 0 {
				sort.Float64s(vals)
				sum := 0.0
				for _, v := range vals {
					sum += v
				}
				a.Mean = sum / float64(len(vals))
				a.Min = vals[0]
				a.Max = vals[len(vals)-1]
				a.P50 = oracleQuantile(vals, 0.50)
				a.P90 = oracleQuantile(vals, 0.90)
				a.P99 = oracleQuantile(vals, 0.99)
			}
			out.Aggregates[i] = a
		}
		res.Groups = append(res.Groups, out)
	}
	return res
}

// oracleRowCount scales the differential population: a full
// million-cell pass in the plain suite, a smaller one under the race
// detector (make diff-race) or -short, where the 5-20x slowdown would
// dominate the suite for no extra coverage of the comparison itself.
func oracleRowCount() int {
	if raceEnabled || testing.Short() {
		return 50_000
	}
	return 1 << 20
}

// TestDifferentialQueryOracle runs a battery of specs over a large
// synthetic population through both implementations and requires
// byte-identical JSON, including a pass where the columnar side reads
// shuffled rows in a different shard layout — the oracle never sees the
// shuffle, so agreement also re-proves order independence at scale.
func TestDifferentialQueryOracle(t *testing.T) {
	n := oracleRowCount()
	rows := genRows(n, 1234, true)
	src, err := ShardsOf(rows, DefaultShardRows)
	if err != nil {
		t.Fatal(err)
	}

	lo, hi := 2e-4, 2e-3
	specs := []Spec{
		{Metrics: Metrics}, // every metric, one "all" group
		{GroupBy: []string{"scheme"}, Metrics: []string{"expected_capacity", "ipc_degradation", "energy_per_instruction"}},
		{GroupBy: []string{"pfail", "scheme"}, Metrics: []string{"mean_ipc", "dvfs_switches"},
			Where: map[string]string{"victim": "none"}},
		{GroupBy: []string{"geometry", "policy"}, Metrics: []string{"dvfs_performance", "dvfs_low_share", "unfit_trials"},
			PfailMin: &lo, PfailMax: &hi},
		{GroupBy: []string{"pfail", "geometry", "scheme", "granularity"}, Metrics: []string{"voltage"},
			Where: map[string]string{"policy": "oracle"}},
		{Metrics: []string{"mean_ipc"}, Where: map[string]string{"scheme": "no-such-scheme"}}, // zero matches
	}
	for i, q := range specs {
		got, err := Query(src, q)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		gotB, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		wantB, err := json.Marshal(oracleQuery(rows, q))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotB, wantB) {
			t.Errorf("spec %d: columnar and oracle answers differ\ncolumnar: %.400s\noracle:   %.400s", i, gotB, wantB)
		}
	}
}

// TestDifferentialQueryShuffledLayout re-asks one spec over the same
// population in a shuffled order and a prime shard size; the oracle
// answer over the original rows must still match exactly.
func TestDifferentialQueryShuffledLayout(t *testing.T) {
	rows := genRows(30_000, 77, true)
	q := Spec{GroupBy: []string{"scheme", "victim"}, Metrics: []string{"measured_capacity", "dvfs_energy_per_instruction"}}
	want, err := json.Marshal(oracleQuery(rows, q))
	if err != nil {
		t.Fatal(err)
	}

	shuffled := append([]sweep.Row{}, rows...)
	for i := len(shuffled) - 1; i > 0; i-- {
		j := (i * 7919) % (i + 1) // deterministic permutation
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	src, err := ShardsOf(shuffled, 4093)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Query(src, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("shuffled columnar answer differs from the oracle over ordered rows")
	}
}

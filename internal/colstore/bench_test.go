package colstore

import (
	"testing"
)

// benchSink keeps the compiler from eliding the encode.
var benchSink int

// BenchmarkShardEncode measures encoding one full default-size shard
// (64k mixed classic/DVFS rows) to canonical colv1 bytes — the fold's
// hot loop.
func BenchmarkShardEncode(b *testing.B) {
	s, err := NewShard(genRows(DefaultShardRows, 7, true))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = len(s.EncodeBytes())
	}
}

// BenchmarkShardDecode measures the reverse path: canonical bytes back
// into a queryable shard, with all canonical-form checks on.
func BenchmarkShardDecode(b *testing.B) {
	s, err := NewShard(genRows(DefaultShardRows, 7, true))
	if err != nil {
		b.Fatal(err)
	}
	enc := s.EncodeBytes()
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryGroupBy1M measures a two-axis group-by with two metrics
// over a million-row result set in default-size shards — the
// interactive-tier serving shape POST /v1/query pays after the fold.
func BenchmarkQueryGroupBy1M(b *testing.B) {
	src, err := ShardsOf(genRows(1<<20, 7, true), DefaultShardRows)
	if err != nil {
		b.Fatal(err)
	}
	q := Spec{
		GroupBy: []string{"pfail", "scheme"},
		Metrics: []string{"ipc_degradation", "energy_per_instruction"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Query(src, q)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = res.Matched
	}
}

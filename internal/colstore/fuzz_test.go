package colstore

import (
	"bytes"
	"encoding/binary"
	"testing"

	"vccmin/internal/sweep"
)

// FuzzShardDecode drives Decode with arbitrary bytes. The contract
// under fuzz is total: any input either fails with an error or decodes
// into a shard whose re-encoding is byte-identical to the input — the
// canonical-form property that makes shard bytes content-addressable.
// Decode never panics, and its allocations are bounded by the input
// length, so hostile inputs cannot OOM the process either. The corpus
// seeds from real encoded shards across the format's shapes: empty,
// classic, DVFS-bearing, and a row count exercising the bitmap's
// partial final byte.
func FuzzShardDecode(f *testing.F) {
	for _, rows := range [][]sweep.Row{
		nil,
		genRows(1, 1, false),
		genRows(64, 2, true),
		genRows(257, 3, false),
		genRows(100, 4, true),
	} {
		s, err := NewShard(rows)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(s.EncodeBytes())
	}
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(append([]byte(magic), make([]byte, 16)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		if re := s.EncodeBytes(); !bytes.Equal(re, data) {
			t.Fatalf("decode accepted non-canonical bytes: re-encode is %d bytes, input %d", len(re), len(data))
		}
		// A decodable shard must also materialize and re-shard cleanly:
		// Rows reconstructs canonical keys by construction.
		if rows := s.Rows(); len(rows) != s.NumRows() {
			t.Fatalf("materialized %d rows from a %d-row shard", len(rows), s.NumRows())
		}
	})
}

// FuzzVarintColumn round-trips the zigzag-delta integer column codec in
// both directions: any int64 sequence encodes to a payload that decodes
// back exactly, and any payload decodeIntCol accepts re-encodes to the
// very same bytes (minimal varints, exact consumption).
func FuzzVarintColumn(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0x80, 0x01}, uint16(5))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, uint16(1))
	f.Add([]byte{}, uint16(0))

	encode := func(vals []int64) []byte {
		var buf []byte
		prev := int64(0)
		for _, v := range vals {
			buf = binary.AppendUvarint(buf, zigzag(v-prev))
			prev = v
		}
		return buf
	}

	f.Fuzz(func(t *testing.T, data []byte, n uint16) {
		// Decode direction: accepted payloads are canonical.
		if col, err := decodeIntCol(data, int(n)); err == nil {
			if re := encode(col); !bytes.Equal(re, data) {
				t.Fatalf("decodeIntCol accepted a non-canonical payload (%d vs %d bytes)", len(re), len(data))
			}
		}
		// Encode direction: arbitrary values (including delta overflow
		// wrap-around) survive the round trip.
		vals := make([]int64, 0, len(data)/8)
		for i := 0; i+8 <= len(data); i += 8 {
			vals = append(vals, int64(binary.LittleEndian.Uint64(data[i:])))
		}
		back, err := decodeIntCol(encode(vals), len(vals))
		if err != nil {
			t.Fatalf("canonical int column rejected: %v", err)
		}
		for i := range vals {
			if back[i] != vals[i] {
				t.Fatalf("value %d: %d decoded as %d", i, vals[i], back[i])
			}
		}
	})
}

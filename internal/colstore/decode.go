package colstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrBadMagic reports a shard whose header is not colv1 — a future
// stream break or a file that is not a colstore shard at all. Callers
// branch on it the way the sweep engine branches on a stream-version
// mismatch: refuse and re-fold, never half-read.
var ErrBadMagic = errors.New("colstore: not a colv1 shard")

// Decode parses canonical colv1 bytes back into a shard. It accepts
// exactly the encoder's output: every varint must be minimal, columns
// must tile the body contiguously in schema order, dictionaries must be
// in first-appearance order with distinct, fully-used entries, and the
// adaptive float rule must match — so a successful decode re-encodes to
// the very same bytes. Arbitrary input fails with an error; it never
// panics, and every allocation is bounded by the input length.
func Decode(data []byte) (*Shard, error) {
	return DecodeColumns(data, nil)
}

// DecodeColumns parses canonical colv1 bytes, materializing only the
// columns named in need (nil means every column — identical to
// Decode). The header, footer, schema, kinds and body tiling are
// validated exactly as Decode validates them; only the payload decode
// of unneeded columns is skipped. A pruned decode therefore accepts
// bytes whose skipped payloads are non-canonical — callers that need
// the full round-trip guarantee (fold, fuzz, re-encode) use Decode;
// the query layer, which never re-encodes, uses this to pay only for
// the columns a spec references.
func DecodeColumns(data []byte, need map[string]bool) (*Shard, error) {
	if len(data) < len(magic)+8 {
		return nil, fmt.Errorf("colstore: %d-byte input shorter than header+trailer", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w (header %q)", ErrBadMagic, data[:len(magic)])
	}
	trailer := binary.LittleEndian.Uint64(data[len(data)-8:])
	if trailer < uint64(len(magic)) || trailer > uint64(len(data)-8) {
		return nil, fmt.Errorf("colstore: footer offset %d outside [%d,%d]", trailer, len(magic), len(data)-8)
	}
	body := data[len(magic):trailer]
	fr := &reader{data: data[trailer : len(data)-8]}

	rowsU, err := fr.uvarint()
	if err != nil {
		return nil, fmt.Errorf("colstore: footer row count: %w", err)
	}
	// Every shard has an int column, which costs at least one byte per
	// row, so a row count beyond the body size cannot be satisfied; the
	// early bound keeps later per-column allocations input-bounded.
	if rowsU > uint64(len(body)) {
		return nil, fmt.Errorf("colstore: row count %d exceeds %d-byte body", rowsU, len(body))
	}
	rows := int(rowsU)
	colsU, err := fr.uvarint()
	if err != nil {
		return nil, fmt.Errorf("colstore: footer column count: %w", err)
	}
	if colsU != uint64(len(schema)) {
		return nil, fmt.Errorf("colstore: %d columns, colv1 schema has %d", colsU, len(schema))
	}

	s := &Shard{
		rows:   rows,
		ints:   make(map[string][]int64, len(schema)),
		strs:   make(map[string]strCol, len(schema)),
		floats: make(map[string][]float64, len(schema)),
		opts:   make(map[string]optCol, len(schema)),
	}
	bodyOff := uint64(0)
	for _, def := range schema {
		nameLen, err := fr.uvarint()
		if err != nil {
			return nil, fmt.Errorf("colstore: column %s: name length: %w", def.name, err)
		}
		name, err := fr.take(nameLen)
		if err != nil || string(name) != def.name {
			return nil, fmt.Errorf("colstore: footer names column %q where the colv1 schema has %q", name, def.name)
		}
		kind, err := fr.byte()
		if err != nil {
			return nil, fmt.Errorf("colstore: column %s: kind: %w", def.name, err)
		}
		off, err1 := fr.uvarint()
		length, err2 := fr.uvarint()
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("colstore: column %s: truncated extent", def.name)
		}
		// Columns tile the body exactly, in schema order: no gaps, no
		// overlaps, no room for bytes the encoder would not have written.
		if off != bodyOff || length > uint64(len(body))-off {
			return nil, fmt.Errorf("colstore: column %s extent [%d,+%d) does not tile the %d-byte body at %d",
				def.name, off, length, len(body), bodyOff)
		}
		bodyOff = off + length
		payload := body[off : off+length]

		if need != nil && !need[def.name] {
			// Still refuse a kind byte that does not encode the schema
			// class — the footer stays fully validated either way.
			ok := false
			switch def.class {
			case classInt:
				ok = kind == kindInt
			case classStr:
				ok = kind == kindStr
			case classFloat:
				ok = kind == kindFloatRaw || kind == kindFloatDict
			case classOpt:
				ok = kind == kindOpt
			}
			if !ok {
				return nil, fmt.Errorf("colstore: column %s: kind %q does not encode its schema class", def.name, kind)
			}
			continue
		}

		switch {
		case def.class == classInt && kind == kindInt:
			col, err := decodeIntCol(payload, rows)
			if err != nil {
				return nil, fmt.Errorf("colstore: column %s: %w", def.name, err)
			}
			s.ints[def.name] = col
		case def.class == classStr && kind == kindStr:
			col, err := decodeStrCol(payload, rows)
			if err != nil {
				return nil, fmt.Errorf("colstore: column %s: %w", def.name, err)
			}
			s.strs[def.name] = col
		case def.class == classFloat && (kind == kindFloatRaw || kind == kindFloatDict):
			col, err := decodeFloatCol(payload, rows, kind)
			if err != nil {
				return nil, fmt.Errorf("colstore: column %s: %w", def.name, err)
			}
			s.floats[def.name] = col
		case def.class == classOpt && kind == kindOpt:
			col, err := decodeOptCol(payload, rows)
			if err != nil {
				return nil, fmt.Errorf("colstore: column %s: %w", def.name, err)
			}
			s.opts[def.name] = col
		default:
			return nil, fmt.Errorf("colstore: column %s: kind %q does not encode its schema class", def.name, kind)
		}
	}
	if bodyOff != uint64(len(body)) {
		return nil, fmt.Errorf("colstore: columns cover %d of %d body bytes", bodyOff, len(body))
	}
	if fr.off != len(fr.data) {
		return nil, fmt.Errorf("colstore: %d trailing footer bytes", len(fr.data)-fr.off)
	}
	return s, nil
}

// reader walks a byte region with bounds and minimal-varint checking.
type reader struct {
	data []byte
	off  int
}

var (
	errTruncated  = errors.New("truncated")
	errNonMinimal = errors.New("non-minimal varint")
)

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		if n == 0 {
			return 0, errTruncated
		}
		return 0, errors.New("varint overflows 64 bits")
	}
	// Canonical form: the final byte of a multi-byte varint must be
	// non-zero, else the same value has a shorter encoding and decode →
	// re-encode would not be byte-identical.
	if n > 1 && r.data[r.off+n-1] == 0 {
		return 0, errNonMinimal
	}
	r.off += n
	return v, nil
}

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.data) {
		return 0, errTruncated
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *reader) take(n uint64) ([]byte, error) {
	if n > uint64(len(r.data)-r.off) {
		return nil, errTruncated
	}
	b := r.data[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

func decodeIntCol(payload []byte, rows int) ([]int64, error) {
	if len(payload) < rows { // every varint is at least one byte
		return nil, fmt.Errorf("%d bytes for %d values: %w", len(payload), rows, errTruncated)
	}
	r := &reader{data: payload}
	out := make([]int64, rows)
	prev := int64(0)
	for i := range out {
		u, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		prev += unzigzag(u)
		out[i] = prev
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("%d trailing bytes", len(payload)-r.off)
	}
	return out, nil
}

// decodeStrCol parses a dictionary column, enforcing the canonical
// form: entries distinct, listed in first-appearance order and all
// referenced (an index may never skip ahead of the entries seen so
// far, and the last entry must be reached).
func decodeStrCol(payload []byte, rows int) (strCol, error) {
	r := &reader{data: payload}
	dictN, err := r.uvarint()
	if err != nil {
		return strCol{}, fmt.Errorf("dictionary size: %w", err)
	}
	if dictN > uint64(rows) {
		return strCol{}, fmt.Errorf("%d dictionary entries for %d rows", dictN, rows)
	}
	col := strCol{dict: make([]string, 0, dictN)}
	seen := make(map[string]bool, dictN)
	for i := uint64(0); i < dictN; i++ {
		n, err := r.uvarint()
		if err != nil {
			return strCol{}, fmt.Errorf("entry %d length: %w", i, err)
		}
		b, err := r.take(n)
		if err != nil {
			return strCol{}, fmt.Errorf("entry %d: %w", i, err)
		}
		v := string(b)
		if seen[v] {
			return strCol{}, fmt.Errorf("duplicate dictionary entry %q", v)
		}
		seen[v] = true
		col.dict = append(col.dict, v)
	}
	idx, err := decodeDictIndices(r, rows, uint64(len(col.dict)))
	if err != nil {
		return strCol{}, err
	}
	col.idx = idx
	return col, nil
}

// decodeDictIndices reads rows dictionary indices and checks canonical
// first-appearance order: index i may appear only after every index
// below i has, and every entry must be used.
func decodeDictIndices(r *reader, rows int, dictN uint64) ([]uint32, error) {
	idx := make([]uint32, rows)
	nextNew := uint64(0)
	for i := range idx {
		u, err := r.uvarint()
		if err != nil {
			return nil, fmt.Errorf("index %d: %w", i, err)
		}
		if u > nextNew {
			return nil, fmt.Errorf("index %d references entry %d before entry %d appeared", i, u, nextNew)
		}
		if u == nextNew {
			nextNew++
		}
		idx[i] = uint32(u)
	}
	if nextNew != dictN {
		return nil, fmt.Errorf("%d of %d dictionary entries unused", dictN-nextNew, dictN)
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("%d trailing bytes", len(r.data)-r.off)
	}
	return idx, nil
}

func decodeFloatCol(payload []byte, rows int, kind byte) ([]float64, error) {
	if kind == kindFloatRaw {
		if len(payload) != 8*rows {
			return nil, fmt.Errorf("%d bytes for %d raw float64s", len(payload), rows)
		}
		out := make([]float64, rows)
		distinct := make(map[uint64]bool, maxFloatDict+1)
		for i := range out {
			bits := binary.LittleEndian.Uint64(payload[8*i:])
			out[i] = math.Float64frombits(bits)
			if len(distinct) <= maxFloatDict {
				distinct[bits] = true
			}
		}
		// The adaptive rule is part of the canonical form: values the
		// encoder would have dictionary-encoded may not arrive raw.
		if useFloatDict(len(distinct), rows) {
			return nil, fmt.Errorf("%d distinct values over %d rows must be dictionary-encoded", len(distinct), rows)
		}
		return out, nil
	}
	r := &reader{data: payload}
	dictN, err := r.uvarint()
	if err != nil {
		return nil, fmt.Errorf("dictionary size: %w", err)
	}
	if dictN > maxFloatDict {
		return nil, fmt.Errorf("float dictionary has %d entries, limit %d", dictN, maxFloatDict)
	}
	if !useFloatDict(int(dictN), rows) || dictN == 0 && rows > 0 {
		return nil, fmt.Errorf("%d-entry float dictionary over %d rows violates the adaptive rule", dictN, rows)
	}
	dictBytes, err := r.take(8 * dictN)
	if err != nil {
		return nil, fmt.Errorf("dictionary: %w", err)
	}
	dict := make([]uint64, dictN)
	seen := make(map[uint64]bool, dictN)
	for i := range dict {
		dict[i] = binary.LittleEndian.Uint64(dictBytes[8*i:])
		if seen[dict[i]] {
			return nil, fmt.Errorf("duplicate float dictionary entry %#x", dict[i])
		}
		seen[dict[i]] = true
	}
	idx, err := decodeDictIndices(r, rows, dictN)
	if err != nil {
		return nil, err
	}
	out := make([]float64, rows)
	for i, id := range idx {
		out[i] = math.Float64frombits(dict[id])
	}
	return out, nil
}

func decodeOptCol(payload []byte, rows int) (optCol, error) {
	bitmapLen := (rows + 7) / 8
	if len(payload) < bitmapLen {
		return optCol{}, fmt.Errorf("%d bytes for a %d-byte presence bitmap: %w", len(payload), bitmapLen, errTruncated)
	}
	bitmap := payload[:bitmapLen]
	col := optCol{present: make([]bool, rows), vals: make([]float64, rows)}
	present := 0
	for i := range col.present {
		if bitmap[i/8]&(1<<(i%8)) != 0 {
			col.present[i] = true
			present++
		}
	}
	// Trailing bits past the last row must be zero — they are the only
	// degrees of freedom the bitmap has, and canonical bytes have none.
	if rows%8 != 0 && bitmap[bitmapLen-1]>>(rows%8) != 0 {
		return optCol{}, errors.New("non-zero trailing presence bits")
	}
	vals := payload[bitmapLen:]
	if len(vals) != 8*present {
		return optCol{}, fmt.Errorf("%d bytes for %d present float64s", len(vals), present)
	}
	vi := 0
	for i := range col.present {
		if col.present[i] {
			col.vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(vals[8*vi:]))
			vi++
		}
	}
	return col, nil
}

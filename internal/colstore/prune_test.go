package colstore

// Column pruning and the radix aggregation sort: a pruned decode must
// reproduce the needed columns bit-for-bit and keep all structural
// validation; a Dir-backed query must answer byte-identically whether
// it decodes 27 columns or 3; and sortFloats must match sort.Float64s
// exactly, including the NaN and negative-zero fallbacks.

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestDecodeColumnsPruned(t *testing.T) {
	s, err := NewShard(genRows(3000, 5, true))
	if err != nil {
		t.Fatal(err)
	}
	enc := s.EncodeBytes()

	need := map[string]bool{
		"pfail": true, "scheme": true, "ipc_degradation": true,
		"seed": true, "dvfs_switches": true,
	}
	pruned, err := DecodeColumns(enc, need)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.NumRows() != s.NumRows() {
		t.Fatalf("pruned shard has %d rows, want %d", pruned.NumRows(), s.NumRows())
	}
	if !reflect.DeepEqual(pruned.floats["pfail"], s.floats["pfail"]) {
		t.Error("pruned pfail column differs from the full decode")
	}
	if !reflect.DeepEqual(pruned.strs["scheme"], s.strs["scheme"]) {
		t.Error("pruned scheme column differs from the full decode")
	}
	if !reflect.DeepEqual(pruned.ints["seed"], s.ints["seed"]) {
		t.Error("pruned seed column differs from the full decode")
	}
	if !reflect.DeepEqual(pruned.opts["dvfs_switches"], s.opts["dvfs_switches"]) {
		t.Error("pruned dvfs_switches column differs from the full decode")
	}
	if pruned.ints["trials"] != nil || pruned.strs["victim"].idx != nil || pruned.floats["voltage"] != nil {
		t.Error("pruned decode materialized columns outside the need set")
	}

	// nil need is the full decode: the shard round-trips.
	full, err := DecodeColumns(enc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full.EncodeBytes(), enc) {
		t.Error("DecodeColumns(nil) does not round-trip to the original bytes")
	}
}

// TestDecodeColumnsKeepsStructuralChecks corrupts bytes outside the
// needed columns' payloads — the footer and the body tiling — and
// requires the pruned decode to still refuse them.
func TestDecodeColumnsKeepsStructuralChecks(t *testing.T) {
	s, err := NewShard(genRows(200, 9, false))
	if err != nil {
		t.Fatal(err)
	}
	enc := s.EncodeBytes()
	need := map[string]bool{"pfail": true}

	truncated := enc[:len(enc)-9] // drop the trailer
	if _, err := DecodeColumns(truncated, need); err == nil {
		t.Error("pruned decode accepted a shard with no trailer")
	}
	badMagic := append([]byte("colv2\x00"), enc[6:]...)
	if _, err := DecodeColumns(badMagic, need); err == nil {
		t.Error("pruned decode accepted a colv2 magic")
	}
}

func TestDirQueryPruned(t *testing.T) {
	rows := genRows(10_000, 21, true)
	dir := t.TempDir() + "/shards"
	if err := WriteDir(dir, rows, 4096); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := ShardsOf(rows, 4096)
	if err != nil {
		t.Fatal(err)
	}
	lo := 2e-4
	specs := []Spec{
		{GroupBy: []string{"pfail", "scheme"}, Metrics: []string{"ipc_degradation", "energy_per_instruction"}},
		{GroupBy: []string{"geometry"}, Metrics: []string{"mean_ipc", "dvfs_low_share"},
			Where: map[string]string{"policy": "none"}, PfailMin: &lo},
		{Metrics: []string{"voltage"}},
	}
	for i, q := range specs {
		fromDir, err := Query(d, q)
		if err != nil {
			t.Fatalf("spec %d over Dir: %v", i, err)
		}
		fromMem, err := Query(mem, q)
		if err != nil {
			t.Fatalf("spec %d over Mem: %v", i, err)
		}
		dj, _ := json.Marshal(fromDir)
		mj, _ := json.Marshal(fromMem)
		if !bytes.Equal(dj, mj) {
			t.Errorf("spec %d: pruned Dir answer differs from the full Mem answer\ndir: %.300s\nmem: %.300s", i, dj, mj)
		}
	}
}

func TestSortFloatsMatchesSortFloat64s(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cases := [][]float64{}
	// Random large samples with duplicates, negatives and infinities —
	// the radix path.
	for trial := 0; trial < 4; trial++ {
		n := 128 + rng.Intn(5000)
		vals := make([]float64, n)
		for i := range vals {
			switch rng.Intn(10) {
			case 0:
				vals[i] = float64(rng.Intn(4)) // duplicates
			case 1:
				vals[i] = -rng.Float64() * 1e300
			case 2:
				vals[i] = math.Inf(1 - 2*rng.Intn(2))
			default:
				vals[i] = (rng.Float64() - 0.5) * math.Exp(float64(rng.Intn(600)-300))
			}
		}
		cases = append(cases, vals)
	}
	// Fallback paths: tiny, NaN-bearing, negative-zero-bearing.
	cases = append(cases, []float64{3, 1, 2})
	nan := make([]float64, 300)
	negz := make([]float64, 300)
	for i := range nan {
		nan[i] = rng.NormFloat64()
		negz[i] = rng.NormFloat64()
	}
	nan[137] = math.NaN()
	negz[59] = math.Copysign(0, -1)
	negz[60] = 0
	cases = append(cases, nan, negz)

	var sc sortScratch
	for ci, vals := range cases {
		want := append([]float64{}, vals...)
		sort.Float64s(want)
		sc.sortFloats(vals)
		for i := range vals {
			w, g := want[i], vals[i]
			if math.Float64bits(w) != math.Float64bits(g) && !(math.IsNaN(w) && math.IsNaN(g)) {
				t.Fatalf("case %d index %d: sortFloats %v (%#x), sort.Float64s %v (%#x)",
					ci, i, g, math.Float64bits(g), w, math.Float64bits(w))
			}
		}
	}
}

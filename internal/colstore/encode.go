package colstore

import (
	"encoding/binary"
	"io"
	"math"
)

// magic is the colv1 stream-version header. Any layout change bumps it
// and old shards become refusable, exactly like the sweep engine's
// sparse-v1 row stream.
const magic = "colv1\x00"

// Column payload kinds, one byte each in the footer. classFloat columns
// carry kindFloatRaw or kindFloatDict depending on the adaptive rule;
// every other class maps to exactly one kind.
const (
	kindInt       byte = 'i' // zigzag-delta varints
	kindStr       byte = 's' // dictionary + varint indices
	kindFloatRaw  byte = 'f' // 8 bytes of IEEE-754 bits per row, little-endian
	kindFloatDict byte = 'd' // float dictionary + varint indices
	kindOpt       byte = 'o' // presence bitmap + raw bits for present rows
)

// maxFloatDict bounds the adaptive float dictionary. Axis-like float
// columns (pfail, voltage, frequency) have a handful of distinct values
// per shard; measurement columns have ~rows of them and stay raw.
const maxFloatDict = 255

// useFloatDict is the adaptive encoding rule: dictionary-encode when the
// distinct count is small and the dictionary (8 bytes per entry plus
// one index byte per row) beats raw bits (8 bytes per row). It is a
// pure function of the values, which is what makes re-encoding a
// decoded shard byte-identical; the decoder enforces the same rule in
// reverse, refusing a shard whose representation the encoder would not
// have chosen.
func useFloatDict(distinct, rows int) bool {
	return distinct <= maxFloatDict && 8*distinct < 7*rows
}

// zigzag maps signed to unsigned so small-magnitude deltas of either
// sign stay short varints.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// EncodeBytes serializes the shard into its canonical colv1 bytes.
// Encoding is deterministic: the same rows always produce the same
// bytes, no matter which entrypoint, worker count or shard layout
// produced the rows.
func (s *Shard) EncodeBytes() []byte {
	buf := []byte(magic)
	type colMeta struct {
		kind        byte
		off, length uint64
	}
	metas := make([]colMeta, len(schema))
	body := func(i int, kind byte, payload func([]byte) []byte) {
		start := uint64(len(buf) - len(magic))
		buf = payload(buf)
		metas[i] = colMeta{kind: kind, off: start, length: uint64(len(buf)-len(magic)) - start}
	}

	for i, def := range schema {
		switch def.class {
		case classInt:
			vals := s.ints[def.name]
			body(i, kindInt, func(b []byte) []byte {
				prev := int64(0)
				for _, v := range vals {
					b = binary.AppendUvarint(b, zigzag(v-prev))
					prev = v
				}
				return b
			})
		case classStr:
			col := s.strs[def.name]
			body(i, kindStr, func(b []byte) []byte {
				b = binary.AppendUvarint(b, uint64(len(col.dict)))
				for _, v := range col.dict {
					b = binary.AppendUvarint(b, uint64(len(v)))
					b = append(b, v...)
				}
				for _, id := range col.idx {
					b = binary.AppendUvarint(b, uint64(id))
				}
				return b
			})
		case classFloat:
			vals := s.floats[def.name]
			dict, idx, ok := floatDict(vals)
			if ok && useFloatDict(len(dict), len(vals)) {
				body(i, kindFloatDict, func(b []byte) []byte {
					b = binary.AppendUvarint(b, uint64(len(dict)))
					for _, v := range dict {
						b = binary.LittleEndian.AppendUint64(b, v)
					}
					for _, id := range idx {
						b = binary.AppendUvarint(b, uint64(id))
					}
					return b
				})
			} else {
				body(i, kindFloatRaw, func(b []byte) []byte {
					for _, v := range vals {
						b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
					}
					return b
				})
			}
		case classOpt:
			col := s.opts[def.name]
			body(i, kindOpt, func(b []byte) []byte {
				bitmap := make([]byte, (s.rows+7)/8)
				for r, p := range col.present {
					if p {
						bitmap[r/8] |= 1 << (r % 8)
					}
				}
				b = append(b, bitmap...)
				for r, p := range col.present {
					if p {
						b = binary.LittleEndian.AppendUint64(b, math.Float64bits(col.vals[r]))
					}
				}
				return b
			})
		}
	}

	footerStart := uint64(len(buf))
	buf = binary.AppendUvarint(buf, uint64(s.rows))
	buf = binary.AppendUvarint(buf, uint64(len(schema)))
	for i, def := range schema {
		buf = binary.AppendUvarint(buf, uint64(len(def.name)))
		buf = append(buf, def.name...)
		buf = append(buf, metas[i].kind)
		buf = binary.AppendUvarint(buf, metas[i].off)
		buf = binary.AppendUvarint(buf, metas[i].length)
	}
	return binary.LittleEndian.AppendUint64(buf, footerStart)
}

// Encode writes the canonical bytes to w.
func (s *Shard) Encode(w io.Writer) error {
	_, err := w.Write(s.EncodeBytes())
	return err
}

// floatDict builds a first-appearance dictionary over the values' bit
// patterns (bits, not float equality: -0 and 0 stay distinct and NaN
// payloads survive), returning the dictionary and per-row indices. It
// bails out (ok=false) as soon as the distinct count exceeds
// maxFloatDict — measurement columns have ~rows distinct values and
// must not pay for a full dictionary pass they will never use.
func floatDict(vals []float64) (dict []uint64, idx []uint32, ok bool) {
	dict = make([]uint64, 0, 16)
	idx = make([]uint32, len(vals))
	ids := make(map[uint64]uint32, 16)
	for i, v := range vals {
		bits := math.Float64bits(v)
		id, seen := ids[bits]
		if !seen {
			if len(dict) == maxFloatDict {
				return nil, nil, false
			}
			id = uint32(len(dict))
			ids[bits] = id
			dict = append(dict, bits)
		}
		idx[i] = id
	}
	return dict, idx, true
}

package colstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"vccmin/internal/sweep"
)

// Source yields a result set shard by shard — the query layer's input.
// Shards arrive in row order: concatenating their rows reproduces the
// original result set exactly (for a fold, the checkpoint order).
type Source interface {
	Shards(fn func(*Shard) error) error
}

// ColumnSource is an optional Source extension for sources that can
// deliver shards with only some columns materialized. Query probes for
// it and passes the set of columns the spec actually references, so a
// disk-backed source decodes 3 columns instead of 27 for a typical
// group-by. The yielded shards are partial: columns outside need hold
// zero values, and Rows must not be called on them.
type ColumnSource interface {
	Source
	// ShardsColumns is Shards restricted to the named columns; nil
	// means all (identical to Shards).
	ShardsColumns(need map[string]bool, fn func(*Shard) error) error
}

// Mem is an in-memory Source: a slice of shards in row order.
type Mem []*Shard

// Shards implements Source.
func (m Mem) Shards(fn func(*Shard) error) error {
	for _, s := range m {
		if err := fn(s); err != nil {
			return err
		}
	}
	return nil
}

// ShardsOf chunks rows into shards of shardRows each (0 =
// DefaultShardRows), preserving order.
func ShardsOf(rows []sweep.Row, shardRows int) (Mem, error) {
	if shardRows <= 0 {
		shardRows = DefaultShardRows
	}
	var out Mem
	for len(rows) > 0 {
		n := shardRows
		if n > len(rows) {
			n = len(rows)
		}
		s, err := NewShard(rows[:n])
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		rows = rows[n:]
	}
	return out, nil
}

// shardFileName numbers shard files so a lexical directory listing is
// row order: 000000.colv1, 000001.colv1, ...
func shardFileName(i int) string { return fmt.Sprintf("%06d.colv1", i) }

// WriteDir folds rows into a shard directory, atomically: shards are
// written into a temp directory that is renamed into place, so a
// concurrent reader never sees a half-folded directory. If dir already
// exists the fold is a no-op — shard bytes are a deterministic function
// of the rows, so whoever got there first wrote the same bytes.
func WriteDir(dir string, rows []sweep.Row, shardRows int) error {
	if _, err := os.Stat(dir); err == nil {
		return nil
	}
	shards, err := ShardsOf(rows, shardRows)
	if err != nil {
		return err
	}
	parent := filepath.Dir(dir)
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return err
	}
	tmp, err := os.MkdirTemp(parent, ".fold-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	for i, s := range shards {
		if err := os.WriteFile(filepath.Join(tmp, shardFileName(i)), s.EncodeBytes(), 0o644); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, dir); err != nil {
		// A concurrent fold won the rename; its bytes are ours.
		if _, serr := os.Stat(dir); serr == nil {
			return nil
		}
		return err
	}
	return nil
}

// FoldJSONL folds a completed sweep's JSONL checkpoint into a shard
// directory, preserving checkpoint order (the order GET
// /v1/sweeps/{id}/rows pages in — a resumed job's checkpoint is not in
// cell-index order, and the fold must not reorder it). Returns the row
// count.
func FoldJSONL(src, dir string, shardRows int) (int, error) {
	f, err := os.Open(src)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	rows, err := sweep.ReadRows(f)
	if err != nil {
		return 0, err
	}
	if err := WriteDir(dir, rows, shardRows); err != nil {
		return 0, err
	}
	return len(rows), nil
}

// Dir is an on-disk Source: a directory of *.colv1 shard files read in
// lexical (= row) order.
type Dir struct {
	path  string
	files []string
}

// OpenDir lists dir's shard files. A directory with none is valid (an
// empty result set folds to zero shards).
func OpenDir(path string) (*Dir, error) {
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	d := &Dir{path: path}
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".colv1" {
			d.files = append(d.files, e.Name())
		}
	}
	sort.Strings(d.files)
	return d, nil
}

// Shards implements Source, decoding each file in turn.
func (d *Dir) Shards(fn func(*Shard) error) error {
	return d.ShardsColumns(nil, fn)
}

// ShardsColumns implements ColumnSource: each file's footer and tiling
// are validated in full, but only the needed columns' payloads are
// decoded.
func (d *Dir) ShardsColumns(need map[string]bool, fn func(*Shard) error) error {
	for _, name := range d.files {
		b, err := os.ReadFile(filepath.Join(d.path, name))
		if err != nil {
			return err
		}
		s, err := DecodeColumns(b, need)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := fn(s); err != nil {
			return err
		}
	}
	return nil
}

// Rows materializes every shard's rows in order — the cross-check and
// CLI convenience path, not the query path (Query never calls it).
func Rows(src Source) ([]sweep.Row, error) {
	var out []sweep.Row
	err := src.Shards(func(s *Shard) error {
		out = append(out, s.Rows()...)
		return nil
	})
	return out, err
}

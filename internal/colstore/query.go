package colstore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"vccmin/internal/stats"
)

// Axes are the groupable/filterable coordinates. "geometry" is the
// composite SIZExWAYSxBLOCK rendering of the three geom_* columns;
// "policy" renders the classic cells' empty policy as "none" (the
// dvfs.PolicyNone spelling), so the axis has no invisible value.
var Axes = []string{"pfail", "geometry", "scheme", "victim", "granularity", "policy", "stream"}

// Metrics are the aggregatable numeric columns. Integer columns
// aggregate as floats; the optional DVFS columns aggregate over the
// rows that carry them (scheduled cells), so their count can be smaller
// than the group's cell count.
var Metrics = []string{
	"expected_capacity", "whole_cache_fail_prob",
	"mean_ipc", "baseline_ipc", "ipc_degradation", "measured_capacity",
	"unfit_trials", "voltage", "frequency", "energy_per_instruction",
	"trials", "benchmarks",
	"dvfs_performance", "dvfs_energy_per_instruction", "dvfs_switches", "dvfs_low_share",
}

// maxGroupBy bounds the group-by depth. Seven axes exist but grouping
// by more than a few re-enumerates the grid; four covers every sensible
// slice and keeps the per-row group signature a fixed-size array.
const maxGroupBy = 4

// Spec is one aggregation question over a result set: filter rows,
// group them by axes, aggregate metrics within each group.
type Spec struct {
	// GroupBy lists up to four axes; empty aggregates everything into
	// the single group "all".
	GroupBy []string `json:"group_by,omitempty"`
	// Metrics lists the columns to aggregate; at least one.
	Metrics []string `json:"metrics"`
	// Where keeps only rows whose axis renders exactly to the given
	// value (e.g. {"scheme": "block-disable"}, {"pfail": "0.001"}).
	Where map[string]string `json:"where,omitempty"`
	// PfailMin/PfailMax keep only rows with pfail in the closed range.
	PfailMin *float64 `json:"pfail_min,omitempty"`
	PfailMax *float64 `json:"pfail_max,omitempty"`
}

// Check validates the spec against the axis and metric whitelists.
func (q Spec) Check() error {
	if len(q.GroupBy) > maxGroupBy {
		return fmt.Errorf("colstore: %d group-by axes, limit %d", len(q.GroupBy), maxGroupBy)
	}
	seen := map[string]bool{}
	for _, a := range q.GroupBy {
		if !contains(Axes, a) {
			return fmt.Errorf("colstore: unknown group-by axis %q (axes: %s)", a, strings.Join(Axes, ", "))
		}
		if seen[a] {
			return fmt.Errorf("colstore: duplicate group-by axis %q", a)
		}
		seen[a] = true
	}
	if len(q.Metrics) == 0 {
		return fmt.Errorf("colstore: at least one metric required (metrics: %s)", strings.Join(Metrics, ", "))
	}
	seenM := map[string]bool{}
	for _, m := range q.Metrics {
		if !contains(Metrics, m) {
			return fmt.Errorf("colstore: unknown metric %q (metrics: %s)", m, strings.Join(Metrics, ", "))
		}
		if seenM[m] {
			return fmt.Errorf("colstore: duplicate metric %q", m)
		}
		seenM[m] = true
	}
	for a := range q.Where {
		if !contains(Axes, a) {
			return fmt.Errorf("colstore: unknown where axis %q (axes: %s)", a, strings.Join(Axes, ", "))
		}
	}
	if q.PfailMin != nil && q.PfailMax != nil && *q.PfailMin > *q.PfailMax {
		return fmt.Errorf("colstore: pfail range [%v,%v] is empty", *q.PfailMin, *q.PfailMax)
	}
	return nil
}

func contains(list []string, v string) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

// Aggregate is one metric's summary within one group. Quantiles are
// stats.QuantileSorted nearest-rank order statistics — the same
// definition the population layer's Vcc-min quantiles use. A metric
// with no carrying rows (count 0) reports zeros, never NaN.
type Aggregate struct {
	Metric string  `json:"metric"`
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
}

// Group is one group-by bucket: its canonical key ("axis=value;..." in
// GroupBy order, or "all"), the matched row count, and one Aggregate
// per requested metric, in request order.
type Group struct {
	Key        string      `json:"key"`
	Cells      int         `json:"cells"`
	Aggregates []Aggregate `json:"aggregates"`
}

// Result is a query's answer.
type Result struct {
	// Rows is the total row count scanned; Matched the rows that passed
	// the filters.
	Rows    int     `json:"rows"`
	Matched int     `json:"matched"`
	Groups  []Group `json:"groups"`
}

// Query evaluates the spec over the source without materializing rows:
// it scans columns shard by shard, collects each group×metric sample,
// and aggregates over the sorted sample. Sorting before aggregating is
// what makes the answer independent of row order — a fresh run's
// cell-order checkpoint and a resumed run's appended-tail checkpoint
// hold the same rows in different orders and must produce byte-identical
// aggregates, since the query's cache identity does not include the
// source's history.
func Query(src Source, q Spec) (*Result, error) {
	if err := q.Check(); err != nil {
		return nil, err
	}
	st := &queryState{spec: q, groups: map[string]*groupAcc{}}
	err := src.Shards(func(s *Shard) error { return st.scan(s) })
	if err != nil {
		return nil, err
	}
	return st.finalize(), nil
}

// groupAcc accumulates one group across shards.
type groupAcc struct {
	key   string
	parts []axisValue // one per GroupBy axis, for canonical ordering
	cells int
	vals  [][]float64 // per metric, scan order (sorted at finalize)
}

// axisValue is one axis coordinate of a group: its rendering plus a
// numeric sort key for the numeric axes (pfail sorts by value,
// geometry by size/ways/block — lexical order would put 8192 after
// 32768).
type axisValue struct {
	str     string
	nums    []float64
	numeric bool
}

type queryState struct {
	spec    Spec
	groups  map[string]*groupAcc
	rows    int
	matched int
}

// scan processes one shard: per-row filter, group signature, metric
// appends. Group identity within the shard is a fixed array of per-axis
// dictionary ids; the id→group pointer map makes the per-row cost a
// couple of array reads and one map probe.
func (st *queryState) scan(s *Shard) error {
	st.rows += s.rows
	match := st.rowFilter(s)
	axes := make([]axisReader, len(st.spec.GroupBy))
	for i, a := range st.spec.GroupBy {
		axes[i] = newAxisReader(s, a)
	}
	metrics := make([]func(r int) (float64, bool), len(st.spec.Metrics))
	for i, m := range st.spec.Metrics {
		metrics[i] = metricReader(s, m)
	}
	local := map[[maxGroupBy]uint32]*groupAcc{}
	for r := 0; r < s.rows; r++ {
		if !match(r) {
			continue
		}
		st.matched++
		var sig [maxGroupBy]uint32
		for i, ax := range axes {
			sig[i] = ax.id(r)
		}
		acc, ok := local[sig]
		if !ok {
			acc = st.globalGroup(axes, r)
			local[sig] = acc
		}
		acc.cells++
		for i, mr := range metrics {
			if v, ok := mr(r); ok {
				acc.vals[i] = append(acc.vals[i], v)
			}
		}
	}
	return nil
}

// globalGroup resolves a shard-local signature to the cross-shard
// group, creating it on first sight. Keyed by the canonical key string:
// shard-local dictionary ids differ across shards, renderings do not.
func (st *queryState) globalGroup(axes []axisReader, r int) *groupAcc {
	parts := make([]axisValue, len(axes))
	for i, ax := range axes {
		parts[i] = ax.value(r)
	}
	key := "all"
	if len(axes) > 0 {
		var b strings.Builder
		for i, p := range parts {
			if i > 0 {
				b.WriteByte(';')
			}
			b.WriteString(st.spec.GroupBy[i])
			b.WriteByte('=')
			b.WriteString(p.str)
		}
		key = b.String()
	}
	acc, ok := st.groups[key]
	if !ok {
		acc = &groupAcc{key: key, parts: parts, vals: make([][]float64, len(st.spec.Metrics))}
		st.groups[key] = acc
	}
	return acc
}

// rowFilter compiles the Where clauses and pfail range into one
// predicate over the shard.
func (st *queryState) rowFilter(s *Shard) func(r int) bool {
	var preds []func(r int) bool
	for _, a := range Axes {
		want, ok := st.spec.Where[a]
		if !ok {
			continue
		}
		ax := newAxisReader(s, a)
		preds = append(preds, func(r int) bool { return ax.value(r).str == want })
	}
	if st.spec.PfailMin != nil || st.spec.PfailMax != nil {
		pf := s.floats["pfail"]
		min, max := st.spec.PfailMin, st.spec.PfailMax
		preds = append(preds, func(r int) bool {
			return (min == nil || pf[r] >= *min) && (max == nil || pf[r] <= *max)
		})
	}
	return func(r int) bool {
		for _, p := range preds {
			if !p(r) {
				return false
			}
		}
		return true
	}
}

// axisReader reads one axis of one shard: a shard-local dense id for
// group signatures and the rendered value for keys and filters.
type axisReader struct {
	id    func(r int) uint32
	value func(r int) axisValue
}

func newAxisReader(s *Shard, axis string) axisReader {
	switch axis {
	case "pfail":
		col := s.floats["pfail"]
		ids := map[float64]uint32{}
		rendered := []axisValue{}
		return axisReader{
			id: func(r int) uint32 {
				v := col[r]
				id, ok := ids[v]
				if !ok {
					id = uint32(len(rendered))
					ids[v] = id
					rendered = append(rendered, axisValue{
						str:     strconv.FormatFloat(v, 'g', -1, 64),
						nums:    []float64{v},
						numeric: true,
					})
				}
				return id
			},
			value: func(r int) axisValue {
				v := col[r]
				return axisValue{str: strconv.FormatFloat(v, 'g', -1, 64), nums: []float64{v}, numeric: true}
			},
		}
	case "geometry":
		size, ways, block := s.ints["geom_size"], s.ints["geom_ways"], s.ints["geom_block"]
		ids := map[[3]int64]uint32{}
		var count uint32
		return axisReader{
			id: func(r int) uint32 {
				k := [3]int64{size[r], ways[r], block[r]}
				id, ok := ids[k]
				if !ok {
					id = count
					ids[k] = id
					count++
				}
				return id
			},
			value: func(r int) axisValue {
				return axisValue{
					str:     fmt.Sprintf("%dx%dx%d", size[r], ways[r], block[r]),
					nums:    []float64{float64(size[r]), float64(ways[r]), float64(block[r])},
					numeric: true,
				}
			},
		}
	default: // dictionary axes: scheme, victim, granularity, policy, stream
		col := s.strs[axis]
		render := func(v string) string {
			if axis == "policy" && v == "" {
				return "none"
			}
			return v
		}
		return axisReader{
			id: func(r int) uint32 { return col.idx[r] },
			value: func(r int) axisValue {
				return axisValue{str: render(col.value(r))}
			},
		}
	}
}

// metricReader reads one metric column; ok=false means the row does not
// carry the metric (optional DVFS columns on classic rows).
func metricReader(s *Shard, metric string) func(r int) (float64, bool) {
	if col, ok := s.floats[metric]; ok {
		return func(r int) (float64, bool) { return col[r], true }
	}
	if col, ok := s.ints[metric]; ok {
		return func(r int) (float64, bool) { return float64(col[r]), true }
	}
	col := s.opts[metric]
	return func(r int) (float64, bool) { return col.vals[r], col.present[r] }
}

// finalize orders the groups canonically and aggregates each sorted
// sample.
func (st *queryState) finalize() *Result {
	groups := make([]*groupAcc, 0, len(st.groups))
	for _, g := range st.groups {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return lessParts(groups[i].parts, groups[j].parts) })
	res := &Result{Rows: st.rows, Matched: st.matched, Groups: make([]Group, len(groups))}
	for gi, g := range groups {
		out := Group{Key: g.key, Cells: g.cells, Aggregates: make([]Aggregate, len(st.spec.Metrics))}
		for mi, name := range st.spec.Metrics {
			out.Aggregates[mi] = aggregate(name, g.vals[mi])
		}
		res.Groups[gi] = out
	}
	return res
}

// aggregate summarizes one sorted sample. Summing the sorted sample
// (not the scan-order one) is what pins the mean's float rounding to a
// row-order-independent value.
func aggregate(metric string, vals []float64) Aggregate {
	a := Aggregate{Metric: metric, Count: len(vals)}
	if len(vals) == 0 {
		return a
	}
	sort.Float64s(vals)
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	a.Mean = sum / float64(len(vals))
	a.Min = vals[0]
	a.Max = vals[len(vals)-1]
	a.P50 = stats.QuantileSorted(vals, 0.50)
	a.P90 = stats.QuantileSorted(vals, 0.90)
	a.P99 = stats.QuantileSorted(vals, 0.99)
	return a
}

// lessParts compares group coordinates axis by axis: numeric axes by
// value, the rest lexically.
func lessParts(a, b []axisValue) bool {
	for i := range a {
		av, bv := a[i], b[i]
		if av.numeric && bv.numeric {
			for k := range av.nums {
				if k >= len(bv.nums) {
					break
				}
				if av.nums[k] != bv.nums[k] {
					return av.nums[k] < bv.nums[k]
				}
			}
			continue
		}
		if av.str != bv.str {
			return av.str < bv.str
		}
	}
	return false
}

package colstore

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"vccmin/internal/stats"
)

// Axes are the groupable/filterable coordinates. "geometry" is the
// composite SIZExWAYSxBLOCK rendering of the three geom_* columns;
// "policy" renders the classic cells' empty policy as "none" (the
// dvfs.PolicyNone spelling), so the axis has no invisible value.
var Axes = []string{"pfail", "geometry", "scheme", "victim", "granularity", "policy", "stream"}

// Metrics are the aggregatable numeric columns. Integer columns
// aggregate as floats; the optional DVFS columns aggregate over the
// rows that carry them (scheduled cells), so their count can be smaller
// than the group's cell count.
var Metrics = []string{
	"expected_capacity", "whole_cache_fail_prob",
	"mean_ipc", "baseline_ipc", "ipc_degradation", "measured_capacity",
	"unfit_trials", "voltage", "frequency", "energy_per_instruction",
	"trials", "benchmarks",
	"dvfs_performance", "dvfs_energy_per_instruction", "dvfs_switches", "dvfs_low_share",
}

// maxGroupBy bounds the group-by depth. Seven axes exist but grouping
// by more than a few re-enumerates the grid; four covers every sensible
// slice and keeps the per-row group signature a fixed-size array.
const maxGroupBy = 4

// Spec is one aggregation question over a result set: filter rows,
// group them by axes, aggregate metrics within each group.
type Spec struct {
	// GroupBy lists up to four axes; empty aggregates everything into
	// the single group "all".
	GroupBy []string `json:"group_by,omitempty"`
	// Metrics lists the columns to aggregate; at least one.
	Metrics []string `json:"metrics"`
	// Where keeps only rows whose axis renders exactly to the given
	// value (e.g. {"scheme": "block-disable"}, {"pfail": "0.001"}).
	Where map[string]string `json:"where,omitempty"`
	// PfailMin/PfailMax keep only rows with pfail in the closed range.
	PfailMin *float64 `json:"pfail_min,omitempty"`
	PfailMax *float64 `json:"pfail_max,omitempty"`
}

// Check validates the spec against the axis and metric whitelists.
func (q Spec) Check() error {
	if len(q.GroupBy) > maxGroupBy {
		return fmt.Errorf("colstore: %d group-by axes, limit %d", len(q.GroupBy), maxGroupBy)
	}
	seen := map[string]bool{}
	for _, a := range q.GroupBy {
		if !contains(Axes, a) {
			return fmt.Errorf("colstore: unknown group-by axis %q (axes: %s)", a, strings.Join(Axes, ", "))
		}
		if seen[a] {
			return fmt.Errorf("colstore: duplicate group-by axis %q", a)
		}
		seen[a] = true
	}
	if len(q.Metrics) == 0 {
		return fmt.Errorf("colstore: at least one metric required (metrics: %s)", strings.Join(Metrics, ", "))
	}
	seenM := map[string]bool{}
	for _, m := range q.Metrics {
		if !contains(Metrics, m) {
			return fmt.Errorf("colstore: unknown metric %q (metrics: %s)", m, strings.Join(Metrics, ", "))
		}
		if seenM[m] {
			return fmt.Errorf("colstore: duplicate metric %q", m)
		}
		seenM[m] = true
	}
	for a := range q.Where {
		if !contains(Axes, a) {
			return fmt.Errorf("colstore: unknown where axis %q (axes: %s)", a, strings.Join(Axes, ", "))
		}
	}
	if q.PfailMin != nil && q.PfailMax != nil && *q.PfailMin > *q.PfailMax {
		return fmt.Errorf("colstore: pfail range [%v,%v] is empty", *q.PfailMin, *q.PfailMax)
	}
	return nil
}

func contains(list []string, v string) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

// axisColumns lists the underlying shard columns one axis reads: the
// composite geometry axis spans three, every other axis is its own
// column.
func axisColumns(axis string) []string {
	if axis == "geometry" {
		return []string{"geom_size", "geom_ways", "geom_block"}
	}
	return []string{axis}
}

// columns is the set of shard columns the spec touches — what Query
// asks a ColumnSource to decode. Metrics are columns by name; group-by
// and where axes expand through axisColumns; the pfail range reads the
// pfail column.
func (q Spec) columns() map[string]bool {
	need := map[string]bool{}
	for _, a := range q.GroupBy {
		for _, c := range axisColumns(a) {
			need[c] = true
		}
	}
	for a := range q.Where {
		for _, c := range axisColumns(a) {
			need[c] = true
		}
	}
	if q.PfailMin != nil || q.PfailMax != nil {
		need["pfail"] = true
	}
	for _, m := range q.Metrics {
		need[m] = true
	}
	return need
}

// Aggregate is one metric's summary within one group. Quantiles are
// stats.QuantileSorted nearest-rank order statistics — the same
// definition the population layer's Vcc-min quantiles use. A metric
// with no carrying rows (count 0) reports zeros, never NaN.
type Aggregate struct {
	Metric string  `json:"metric"`
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
}

// Group is one group-by bucket: its canonical key ("axis=value;..." in
// GroupBy order, or "all"), the matched row count, and one Aggregate
// per requested metric, in request order.
type Group struct {
	Key        string      `json:"key"`
	Cells      int         `json:"cells"`
	Aggregates []Aggregate `json:"aggregates"`
}

// Result is a query's answer.
type Result struct {
	// Rows is the total row count scanned; Matched the rows that passed
	// the filters.
	Rows    int     `json:"rows"`
	Matched int     `json:"matched"`
	Groups  []Group `json:"groups"`
}

// Query evaluates the spec over the source without materializing rows:
// it scans columns shard by shard, collects each group×metric sample,
// and aggregates over the sorted sample. Sorting before aggregating is
// what makes the answer independent of row order — a fresh run's
// cell-order checkpoint and a resumed run's appended-tail checkpoint
// hold the same rows in different orders and must produce byte-identical
// aggregates, since the query's cache identity does not include the
// source's history.
func Query(src Source, q Spec) (*Result, error) {
	if err := q.Check(); err != nil {
		return nil, err
	}
	st := &queryState{spec: q, groups: map[string]*groupAcc{}}
	scan := func(s *Shard) error { return st.scan(s) }
	var err error
	if cs, ok := src.(ColumnSource); ok {
		err = cs.ShardsColumns(q.columns(), scan)
	} else {
		err = src.Shards(scan)
	}
	if err != nil {
		return nil, err
	}
	return st.finalize(), nil
}

// groupAcc accumulates one group across shards.
type groupAcc struct {
	key   string
	parts []axisValue // one per GroupBy axis, for canonical ordering
	cells int
	vals  [][]float64 // per metric, scan order (sorted at finalize)
}

// axisValue is one axis coordinate of a group: its rendering plus a
// numeric sort key for the numeric axes (pfail sorts by value,
// geometry by size/ways/block — lexical order would put 8192 after
// 32768).
type axisValue struct {
	str     string
	nums    []float64
	numeric bool
}

type queryState struct {
	spec    Spec
	groups  map[string]*groupAcc
	rows    int
	matched int
}

// scan processes one shard: per-row filter, group signature, metric
// appends. Group identity within the shard is a fixed array of per-axis
// dense ids, precomputed column-at-a-time; because checkpoints hold
// long runs of rows sharing their group, a last-signature cache
// resolves most rows without even the id→group map probe.
func (st *queryState) scan(s *Shard) error {
	st.rows += s.rows
	match := st.rowFilter(s)
	axes := make([]axisReader, len(st.spec.GroupBy))
	for i, a := range st.spec.GroupBy {
		axes[i] = newAxisReader(s, a)
	}
	metrics := make([]func(r int) (float64, bool), len(st.spec.Metrics))
	for i, m := range st.spec.Metrics {
		metrics[i] = metricReader(s, m)
	}
	local := map[[maxGroupBy]uint32]*groupAcc{}
	var lastSig [maxGroupBy]uint32
	var lastAcc *groupAcc
	for r := 0; r < s.rows; r++ {
		if match != nil && !match(r) {
			continue
		}
		st.matched++
		var sig [maxGroupBy]uint32
		for i := range axes {
			sig[i] = axes[i].ids[r]
		}
		acc := lastAcc
		if acc == nil || sig != lastSig {
			var ok bool
			acc, ok = local[sig]
			if !ok {
				acc = st.globalGroup(axes, r)
				local[sig] = acc
			}
			lastSig, lastAcc = sig, acc
		}
		acc.cells++
		for i, mr := range metrics {
			if v, ok := mr(r); ok {
				acc.vals[i] = append(acc.vals[i], v)
			}
		}
	}
	return nil
}

// globalGroup resolves a shard-local signature to the cross-shard
// group, creating it on first sight. Keyed by the canonical key string:
// shard-local dictionary ids differ across shards, renderings do not.
func (st *queryState) globalGroup(axes []axisReader, r int) *groupAcc {
	parts := make([]axisValue, len(axes))
	for i, ax := range axes {
		parts[i] = ax.value(r)
	}
	key := "all"
	if len(axes) > 0 {
		var b strings.Builder
		for i, p := range parts {
			if i > 0 {
				b.WriteByte(';')
			}
			b.WriteString(st.spec.GroupBy[i])
			b.WriteByte('=')
			b.WriteString(p.str)
		}
		key = b.String()
	}
	acc, ok := st.groups[key]
	if !ok {
		acc = &groupAcc{key: key, parts: parts, vals: make([][]float64, len(st.spec.Metrics))}
		st.groups[key] = acc
	}
	return acc
}

// rowFilter compiles the Where clauses and pfail range into one
// predicate over the shard; nil means every row matches.
func (st *queryState) rowFilter(s *Shard) func(r int) bool {
	var preds []func(r int) bool
	for _, a := range Axes {
		want, ok := st.spec.Where[a]
		if !ok {
			continue
		}
		value := axisValueFn(s, a)
		preds = append(preds, func(r int) bool { return value(r).str == want })
	}
	if st.spec.PfailMin != nil || st.spec.PfailMax != nil {
		pf := s.floats["pfail"]
		min, max := st.spec.PfailMin, st.spec.PfailMax
		preds = append(preds, func(r int) bool {
			return (min == nil || pf[r] >= *min) && (max == nil || pf[r] <= *max)
		})
	}
	if len(preds) == 0 {
		return nil
	}
	if len(preds) == 1 {
		return preds[0]
	}
	return func(r int) bool {
		for _, p := range preds {
			if !p(r) {
				return false
			}
		}
		return true
	}
}

// axisReader reads one axis of one shard: a shard-local dense id per
// row for group signatures and the rendered value for keys and
// filters. The ids are materialized up front, column at a time — for
// the dictionary axes they are the dictionary indices as stored, and
// for the numeric axes a run cache makes the id assignment one map
// probe per value run instead of one per row.
type axisReader struct {
	ids   []uint32
	value func(r int) axisValue
}

func newAxisReader(s *Shard, axis string) axisReader {
	switch axis {
	case "pfail":
		col := s.floats["pfail"]
		ids := make([]uint32, len(col))
		seen := map[uint64]uint32{}
		var lastBits uint64
		var lastID uint32
		for r, v := range col {
			bits := math.Float64bits(v)
			if r == 0 || bits != lastBits {
				id, ok := seen[bits]
				if !ok {
					id = uint32(len(seen))
					seen[bits] = id
				}
				lastBits, lastID = bits, id
			}
			ids[r] = lastID
		}
		return axisReader{ids: ids, value: axisValueFn(s, axis)}
	case "geometry":
		size, ways, block := s.ints["geom_size"], s.ints["geom_ways"], s.ints["geom_block"]
		ids := make([]uint32, len(size))
		seen := map[[3]int64]uint32{}
		var lastKey [3]int64
		var lastID uint32
		for r := range ids {
			k := [3]int64{size[r], ways[r], block[r]}
			if r == 0 || k != lastKey {
				id, ok := seen[k]
				if !ok {
					id = uint32(len(seen))
					seen[k] = id
				}
				lastKey, lastID = k, id
			}
			ids[r] = lastID
		}
		return axisReader{ids: ids, value: axisValueFn(s, axis)}
	default: // dictionary axes: scheme, victim, granularity, policy, stream
		return axisReader{ids: s.strs[axis].idx, value: axisValueFn(s, axis)}
	}
}

// axisValueFn renders one axis of one shard row — the slow path, hit
// once per new group and per Where comparison, never per grouped row.
func axisValueFn(s *Shard, axis string) func(r int) axisValue {
	switch axis {
	case "pfail":
		col := s.floats["pfail"]
		return func(r int) axisValue {
			v := col[r]
			return axisValue{str: strconv.FormatFloat(v, 'g', -1, 64), nums: []float64{v}, numeric: true}
		}
	case "geometry":
		size, ways, block := s.ints["geom_size"], s.ints["geom_ways"], s.ints["geom_block"]
		return func(r int) axisValue {
			return axisValue{
				str:     fmt.Sprintf("%dx%dx%d", size[r], ways[r], block[r]),
				nums:    []float64{float64(size[r]), float64(ways[r]), float64(block[r])},
				numeric: true,
			}
		}
	default:
		col := s.strs[axis]
		return func(r int) axisValue {
			v := col.value(r)
			if axis == "policy" && v == "" {
				v = "none"
			}
			return axisValue{str: v}
		}
	}
}

// metricReader reads one metric column; ok=false means the row does not
// carry the metric (optional DVFS columns on classic rows).
func metricReader(s *Shard, metric string) func(r int) (float64, bool) {
	if col, ok := s.floats[metric]; ok {
		return func(r int) (float64, bool) { return col[r], true }
	}
	if col, ok := s.ints[metric]; ok {
		return func(r int) (float64, bool) { return float64(col[r]), true }
	}
	col := s.opts[metric]
	return func(r int) (float64, bool) { return col.vals[r], col.present[r] }
}

// finalize orders the groups canonically and aggregates each sorted
// sample.
func (st *queryState) finalize() *Result {
	groups := make([]*groupAcc, 0, len(st.groups))
	for _, g := range st.groups {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return lessParts(groups[i].parts, groups[j].parts) })
	res := &Result{Rows: st.rows, Matched: st.matched, Groups: make([]Group, len(groups))}
	var sc sortScratch
	for gi, g := range groups {
		out := Group{Key: g.key, Cells: g.cells, Aggregates: make([]Aggregate, len(st.spec.Metrics))}
		for mi, name := range st.spec.Metrics {
			out.Aggregates[mi] = aggregate(name, g.vals[mi], &sc)
		}
		res.Groups[gi] = out
	}
	return res
}

// aggregate summarizes one sorted sample. Summing the sorted sample
// (not the scan-order one) is what pins the mean's float rounding to a
// row-order-independent value.
func aggregate(metric string, vals []float64, sc *sortScratch) Aggregate {
	a := Aggregate{Metric: metric, Count: len(vals)}
	if len(vals) == 0 {
		return a
	}
	sc.sortFloats(vals)
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	a.Mean = sum / float64(len(vals))
	a.Min = vals[0]
	a.Max = vals[len(vals)-1]
	a.P50 = stats.QuantileSorted(vals, 0.50)
	a.P90 = stats.QuantileSorted(vals, 0.90)
	a.P99 = stats.QuantileSorted(vals, 0.99)
	return a
}

// sortScratch holds the radix buffers finalize reuses across every
// group×metric sample it aggregates.
type sortScratch struct {
	keys, buf []uint64
}

// sortFloats sorts vals ascending with exactly sort.Float64s's result.
// The hot path is an LSD radix sort over the monotone uint64 image of
// float64 — linear instead of comparison-bound on the large samples a
// million-row group-by produces, and passes whose byte is constant
// across the sample (most of them, for metrics confined to a narrow
// range) are skipped outright. NaN (ordered first by sort.Float64s,
// split around the numbers by the radix image) and negative zero
// (interchangeable with +0 under comparison, a distinct bit pattern
// under radix) would not reproduce sort.Float64s bit-for-bit, so any
// occurrence falls back to it; tiny samples do too, where the
// transform overhead exceeds what linearity saves.
func (sc *sortScratch) sortFloats(vals []float64) {
	if len(vals) < 128 {
		sort.Float64s(vals)
		return
	}
	for _, v := range vals {
		if math.IsNaN(v) || (v == 0 && math.Signbit(v)) {
			sort.Float64s(vals)
			return
		}
	}
	if cap(sc.keys) < len(vals) {
		sc.keys = make([]uint64, len(vals))
		sc.buf = make([]uint64, len(vals))
	}
	keys, buf := sc.keys[:len(vals)], sc.buf[:len(vals)]
	for i, v := range vals {
		b := math.Float64bits(v)
		if b>>63 != 0 {
			b = ^b
		} else {
			b |= 1 << 63
		}
		keys[i] = b
	}
	var count [256]int
	for shift := uint(0); shift < 64; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, k := range keys {
			count[byte(k>>shift)]++
		}
		if count[byte(keys[0]>>shift)] == len(keys) {
			continue // every key shares this byte
		}
		pos := 0
		for i, c := range count {
			count[i] = pos
			pos += c
		}
		for _, k := range keys {
			c := byte(k >> shift)
			buf[count[c]] = k
			count[c]++
		}
		keys, buf = buf, keys
	}
	for i, k := range keys {
		if k>>63 != 0 {
			k &^= 1 << 63
		} else {
			k = ^k
		}
		vals[i] = math.Float64frombits(k)
	}
}

// lessParts compares group coordinates axis by axis: numeric axes by
// value, the rest lexically.
func lessParts(a, b []axisValue) bool {
	for i := range a {
		av, bv := a[i], b[i]
		if av.numeric && bv.numeric {
			for k := range av.nums {
				if k >= len(bv.nums) {
					break
				}
				if av.nums[k] != bv.nums[k] {
					return av.nums[k] < bv.nums[k]
				}
			}
			continue
		}
		if av.str != bv.str {
			return av.str < bv.str
		}
	}
	return false
}

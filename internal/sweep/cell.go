package sweep

import (
	"vccmin/internal/core"
	"vccmin/internal/dvfs"
	"vccmin/internal/experiments"
	"vccmin/internal/faults"
	"vccmin/internal/power"
	"vccmin/internal/prob"
	"vccmin/internal/sim"
	"vccmin/internal/stats"
	"vccmin/internal/workload"
)

// StreamVersion identifies the random-stream family the engine draws
// from. It is stamped into every row and enforced by LoadCompleted, so a
// resume can never silently stitch rows produced by incompatible RNG
// streams into one checkpoint (the PR-3 sparse fast path changed the
// stream; pre-break checkpoints must be rerun, not resumed).
const StreamVersion = "sparse-v1"

// Row is one cell's result, streamed as a JSON line. Field order is fixed:
// rows are compared byte-for-byte across shard layouts, so every value in
// a Row must depend only on the cell coordinates and the base seed — never
// on shard layout, worker scheduling or wall-clock state.
type Row struct {
	Key    string `json:"key"`
	Index  int    `json:"index"`
	Stream string `json:"stream"` // StreamVersion of the run that wrote the row

	Pfail       float64 `json:"pfail"`
	GeomSize    int     `json:"geom_size"`
	GeomWays    int     `json:"geom_ways"`
	GeomBlock   int     `json:"geom_block"`
	Scheme      string  `json:"scheme"`
	Victim      string  `json:"victim"`
	Granularity string  `json:"granularity"`
	Seed        int64   `json:"seed"`

	// Section IV analytics at this cell.
	ExpectedCapacity   float64 `json:"expected_capacity"`
	WholeCacheFailProb float64 `json:"whole_cache_fail_prob,omitempty"`

	// Monte Carlo simulation estimates (mean over benchmarks × trials).
	MeanIPC          float64 `json:"mean_ipc"`
	BaselineIPC      float64 `json:"baseline_ipc"`
	IPCDegradation   float64 `json:"ipc_degradation"`
	MeasuredCapacity float64 `json:"measured_capacity"`
	UnfitTrials      int     `json:"unfit_trials"`

	// Fig. 1 model at the voltage this pfail implies.
	Voltage              float64 `json:"voltage"`
	Frequency            float64 `json:"frequency"`
	EnergyPerInstruction float64 `json:"energy_per_instruction"`

	Trials     int `json:"trials"`
	Benchmarks int `json:"benchmarks"`

	// Phase-aware DVFS fields, present only on scheduled (policy != none)
	// cells: means over the spec's DVFSWorkloads. Omitted on classic
	// rows so they stay byte-identical to pre-axis sweeps; the switch
	// and low-share means are pointers because zero is a legitimate
	// value there (static policies never switch) that plain omitempty
	// would silently drop.
	Policy            string   `json:"policy,omitempty"`
	DVFSPerformance   float64  `json:"dvfs_performance,omitempty"`
	DVFSEnergyPerInst float64  `json:"dvfs_energy_per_instruction,omitempty"`
	DVFSSwitches      *float64 `json:"dvfs_switches,omitempty"`
	DVFSLowShare      *float64 `json:"dvfs_low_share,omitempty"`
}

// faultDependent reports whether the scheme's simulated IPC varies with
// the drawn fault map (if not, one trial per benchmark suffices).
func faultDependent(s sim.Scheme) bool {
	return s == sim.BlockDisable || s == sim.IncrementalWordDisable
}

// EvaluateCell computes one cell of the spec's grid in isolation — the
// single-cell entry point the engine task layer uses. The row is
// byte-identical to the same cell's line in a full sweep: all randomness
// descends from the cell seed, which descends from the cell key and the
// base seed, never from which caller, shard or worker runs it.
func (s Spec) EvaluateCell(c Cell) (Row, error) {
	return s.withDefaults().evaluate(c)
}

// evaluate computes one cell. All randomness descends from the cell seed,
// which descends from the cell key, so the result is independent of which
// shard or worker runs it.
func (s Spec) evaluate(c Cell) (Row, error) {
	key := c.Key()
	seed := faults.DeriveSeed(s.BaseSeed, key)
	row := Row{
		Key:    key,
		Index:  c.Index,
		Stream: StreamVersion,

		Pfail:       c.Pfail,
		GeomSize:    c.Geometry.SizeBytes,
		GeomWays:    c.Geometry.Ways,
		GeomBlock:   c.Geometry.BlockBytes,
		Scheme:      c.Scheme.String(),
		Victim:      c.Victim.String(),
		Granularity: c.Granularity.String(),
		Seed:        seed,

		Benchmarks: len(s.Benchmarks),
	}

	// Analytics: Eq. 2 capacity at the cell's disabling granularity, and
	// the Eq. 4-5 whole-cache-failure probability for word-disabling.
	row.ExpectedCapacity = prob.GranularityCapacity(c.Geometry, c.Granularity, c.Pfail)
	if c.Scheme == sim.WordDisable {
		row.WholeCacheFailProb = prob.WordDisableWholeCacheFailProb(
			c.Geometry.Blocks(), c.Geometry.BlockBytes, 32, 8, c.Pfail)
	}

	// Fig. 1 model: the operating point at the voltage where the failure
	// model reaches this cell's pfail.
	op := power.Default().OperatingPointForPfail(c.Pfail)
	row.Voltage = op.Voltage
	row.Frequency = op.Freq
	row.EnergyPerInstruction = power.EnergyPerWork(op)

	// Scheduled cells run the dvfs engine over the multi-phase workloads
	// instead of the fixed-mode Monte Carlo below; the Section IV
	// analytics and Fig. 1 operating point above still apply.
	if c.Policy != dvfs.PolicyNone {
		return s.evaluateDVFS(c, row, seed)
	}

	machine := sim.Reference(sim.LowVoltage)
	machine.L1Size = c.Geometry.SizeBytes
	machine.L1Ways = c.Geometry.Ways
	machine.L1BlockBytes = c.Geometry.BlockBytes

	// simTrials is the number of simulated trials per benchmark: schemes
	// whose IPC is fault-independent need only one. pairTrials is the
	// number of fault-map pairs drawn; word-disabling still draws the
	// full sample for its whole-cache-fitness statistic. Row.Trials
	// reports the larger — the cell's actual Monte Carlo sample size.
	simTrials, pairTrials := 1, 0
	if faultDependent(c.Scheme) {
		simTrials, pairTrials = s.Trials, s.Trials
	} else if c.Scheme == sim.WordDisable {
		pairTrials = s.Trials
	}
	row.Trials = simTrials
	if pairTrials > row.Trials {
		row.Trials = pairTrials
	}

	// Trial fault maps are shared across benchmarks (the paper's design:
	// every configuration sees identical fault patterns), drawn on the
	// sparse fast path.
	pairs := make([]faults.Pair, pairTrials)
	wdCfg := core.ReferenceWordDisable()
	for t := range pairs {
		pairSeed := faults.DeriveSeed(seed, "pair", itoa(t))
		pairs[t] = faults.GeneratePairSparse(c.Geometry, c.Geometry, 32, c.Pfail, pairSeed)
		if c.Scheme == sim.WordDisable {
			if !core.EvaluateWordDisable(pairs[t].I, wdCfg).Fit ||
				!core.EvaluateWordDisable(pairs[t].D, wdCfg).Fit {
				row.UnfitTrials++
			}
		}
	}

	var ipcs, baseIPCs, caps []float64
	for _, bench := range s.Benchmarks {
		workSeed := faults.DeriveSeed(seed, "workload", bench)
		base := sim.Options{
			Benchmark:    bench,
			Mode:         sim.LowVoltage,
			Instructions: s.Instructions,
			Seed:         workSeed,
			Machine:      &machine,
		}
		baseIPC, err := experiments.RunIPC(base)
		if err != nil {
			return Row{}, err
		}
		baseIPCs = append(baseIPCs, baseIPC)

		for t := 0; t < simTrials; t++ {
			opts := base
			opts.Scheme = c.Scheme
			opts.Victim = c.Victim
			if faultDependent(c.Scheme) {
				opts.Pair = &pairs[t]
			}
			r, err := sim.Run(opts)
			if err != nil {
				return Row{}, wrapCellErr(key, err)
			}
			ipcs = append(ipcs, r.IPC)
			caps = append(caps, (r.ICapacity+r.DCapacity)/2)
		}
	}
	row.MeanIPC = stats.Mean(ipcs)
	row.BaselineIPC = stats.Mean(baseIPCs)
	if row.BaselineIPC > 0 {
		row.IPCDegradation = 1 - row.MeanIPC/row.BaselineIPC
	}
	row.MeasuredCapacity = stats.Mean(caps)
	return row, nil
}

// evaluateDVFS computes a scheduled (policy != none) cell: one dual-mode
// run per DVFS workload, rescaled to the spec's instruction budget, with
// the row reporting workload means. The cell seed roots every run, so
// the row stays a pure function of (key, base seed) like every other.
func (s Spec) evaluateDVFS(c Cell, row Row, seed int64) (Row, error) {
	row.Policy = c.Policy.String()
	row.Trials = 1
	row.Benchmarks = len(s.DVFSWorkloads)

	var perfs, epis, switches, lowShares []float64
	for _, name := range s.DVFSWorkloads {
		mp, err := workload.MultiPhaseByName(name)
		if err != nil {
			return Row{}, wrapCellErr(row.Key, err)
		}
		res, err := dvfs.Run(dvfs.Config{
			Workload: mp.Scaled(s.Instructions),
			Scheme:   c.Scheme,
			Victim:   c.Victim,
			Geometry: c.Geometry,
			Pfail:    c.Pfail,
			Policy:   c.Policy,
			Seed:     faults.DeriveSeed(seed, "dvfs", name),
		})
		if err != nil {
			return Row{}, wrapCellErr(row.Key, err)
		}
		perfs = append(perfs, res.Performance)
		epis = append(epis, res.EnergyPerInstruction)
		switches = append(switches, float64(res.Switches))
		if res.TotalInstructions > 0 {
			lowShares = append(lowShares, float64(res.LowInstructions)/float64(res.TotalInstructions))
		}
	}
	row.DVFSPerformance = stats.Mean(perfs)
	row.DVFSEnergyPerInst = stats.Mean(epis)
	meanSwitches, meanLowShare := stats.Mean(switches), stats.Mean(lowShares)
	row.DVFSSwitches = &meanSwitches
	row.DVFSLowShare = &meanLowShare
	return row, nil
}

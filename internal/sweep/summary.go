package sweep

import (
	"fmt"
	"sort"
	"strconv"
)

// AxisSummary aggregates the rows sharing one value of one sweep axis:
// the marginal view of the grid along that axis.
type AxisSummary struct {
	Axis  string `json:"axis"`
	Value string `json:"value"`
	Cells int    `json:"cells"`

	MeanExpectedCapacity     float64 `json:"mean_expected_capacity"`
	MeanIPCDegradation       float64 `json:"mean_ipc_degradation"`
	MeanEnergyPerInstruction float64 `json:"mean_energy_per_instruction"`
}

// Summarize groups rows by each axis value and averages the three headline
// metrics. Output order is deterministic: axes in grid order, values in
// ascending cell-index order of first appearance.
func Summarize(rows []Row) []AxisSummary {
	sorted := make([]Row, len(rows))
	copy(sorted, rows)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })

	axes := []struct {
		name string
		key  func(Row) string
	}{
		{"pfail", func(r Row) string { return strconv.FormatFloat(r.Pfail, 'g', -1, 64) }},
		{"geometry", func(r Row) string {
			return fmt.Sprintf("%dx%dx%d", r.GeomSize, r.GeomWays, r.GeomBlock)
		}},
		{"scheme", func(r Row) string { return r.Scheme }},
		{"victim", func(r Row) string { return r.Victim }},
		{"granularity", func(r Row) string { return r.Granularity }},
	}

	var out []AxisSummary
	for _, ax := range axes {
		idx := map[string]int{}
		var groups []AxisSummary
		for _, r := range sorted {
			v := ax.key(r)
			i, ok := idx[v]
			if !ok {
				i = len(groups)
				idx[v] = i
				groups = append(groups, AxisSummary{Axis: ax.name, Value: v})
			}
			g := &groups[i]
			g.Cells++
			g.MeanExpectedCapacity += r.ExpectedCapacity
			g.MeanIPCDegradation += r.IPCDegradation
			g.MeanEnergyPerInstruction += r.EnergyPerInstruction
		}
		for i := range groups {
			n := float64(groups[i].Cells)
			groups[i].MeanExpectedCapacity /= n
			groups[i].MeanIPCDegradation /= n
			groups[i].MeanEnergyPerInstruction /= n
		}
		out = append(out, groups...)
	}
	return out
}

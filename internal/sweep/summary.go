package sweep

import (
	"fmt"
	"sort"
	"strconv"
)

// AxisSummary aggregates the rows sharing one value of one sweep axis:
// the marginal view of the grid along that axis.
type AxisSummary struct {
	Axis  string `json:"axis"`
	Value string `json:"value"`
	Cells int    `json:"cells"`

	MeanExpectedCapacity     float64 `json:"mean_expected_capacity"`
	MeanIPCDegradation       float64 `json:"mean_ipc_degradation"`
	MeanEnergyPerInstruction float64 `json:"mean_energy_per_instruction"`

	// Scheduled-cell metrics, set only on the "policy" axis (omitempty
	// keeps classic summaries byte-identical to pre-axis outputs).
	MeanDVFSPerformance          float64 `json:"mean_dvfs_performance,omitempty"`
	MeanDVFSEnergyPerInstruction float64 `json:"mean_dvfs_energy_per_instruction,omitempty"`
}

// Summarize groups rows by each axis value and averages the headline
// metrics. Classic (fixed-mode Monte Carlo) rows feed the five classic
// axes; scheduled (policy != none) rows feed a separate "policy" axis
// with the dvfs metrics — mixing the two would average the scheduled
// rows' always-zero IPC degradation into the classic marginals. Output
// order is deterministic: axes in grid order, values in ascending
// cell-index order of first appearance.
func Summarize(rows []Row) []AxisSummary {
	sorted := make([]Row, len(rows))
	copy(sorted, rows)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })

	var classic, scheduled []Row
	for _, r := range sorted {
		if r.Policy == "" {
			classic = append(classic, r)
		} else {
			scheduled = append(scheduled, r)
		}
	}

	axes := []struct {
		name string
		key  func(Row) string
	}{
		{"pfail", func(r Row) string { return strconv.FormatFloat(r.Pfail, 'g', -1, 64) }},
		{"geometry", func(r Row) string {
			return fmt.Sprintf("%dx%dx%d", r.GeomSize, r.GeomWays, r.GeomBlock)
		}},
		{"scheme", func(r Row) string { return r.Scheme }},
		{"victim", func(r Row) string { return r.Victim }},
		{"granularity", func(r Row) string { return r.Granularity }},
	}

	var out []AxisSummary
	for _, ax := range axes {
		idx := map[string]int{}
		var groups []AxisSummary
		for _, r := range classic {
			v := ax.key(r)
			i, ok := idx[v]
			if !ok {
				i = len(groups)
				idx[v] = i
				groups = append(groups, AxisSummary{Axis: ax.name, Value: v})
			}
			g := &groups[i]
			g.Cells++
			g.MeanExpectedCapacity += r.ExpectedCapacity
			g.MeanIPCDegradation += r.IPCDegradation
			g.MeanEnergyPerInstruction += r.EnergyPerInstruction
		}
		for i := range groups {
			n := float64(groups[i].Cells)
			groups[i].MeanExpectedCapacity /= n
			groups[i].MeanIPCDegradation /= n
			groups[i].MeanEnergyPerInstruction /= n
		}
		out = append(out, groups...)
	}

	idx := map[string]int{}
	var groups []AxisSummary
	for _, r := range scheduled {
		i, ok := idx[r.Policy]
		if !ok {
			i = len(groups)
			idx[r.Policy] = i
			groups = append(groups, AxisSummary{Axis: "policy", Value: r.Policy})
		}
		g := &groups[i]
		g.Cells++
		g.MeanExpectedCapacity += r.ExpectedCapacity
		g.MeanEnergyPerInstruction += r.EnergyPerInstruction
		g.MeanDVFSPerformance += r.DVFSPerformance
		g.MeanDVFSEnergyPerInstruction += r.DVFSEnergyPerInst
	}
	for i := range groups {
		n := float64(groups[i].Cells)
		groups[i].MeanExpectedCapacity /= n
		groups[i].MeanEnergyPerInstruction /= n
		groups[i].MeanDVFSPerformance /= n
		groups[i].MeanDVFSEnergyPerInstruction /= n
	}
	return append(out, groups...)
}

// Package sweep is a deterministic, sharded Monte Carlo parameter-sweep
// engine over the paper's design space. A Spec names value lists for five
// sweep axes — per-cell failure probability, cache geometry, disabling
// scheme, victim-cache kind and disabling granularity — and the engine
// evaluates every cell of the cartesian grid: the Section IV analytic
// capacity at that cell, a Monte Carlo simulation estimate of its IPC and
// IPC degradation versus the fault-free baseline, and the Fig. 1 energy
// per instruction at the voltage that pfail implies.
//
// Determinism and sharding are the point. Every cell derives its own seed
// stream from the hash of its coordinate key plus the spec's base seed
// (faults.DeriveSeed), so a cell's result is byte-identical whether it is
// computed alone, in a full sweep, or by shard 2 of 4 — shards partition
// the grid by cell index modulo shard count and can run anywhere, in any
// order. Results stream out as JSON lines in cell order; a resumed run
// skips cells whose keys already appear in the output.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"strconv"

	"vccmin/internal/dvfs"
	"vccmin/internal/geom"
	"vccmin/internal/prob"
	"vccmin/internal/sim"
	"vccmin/internal/workload"
)

// Spec describes a sweep: the grid axes plus per-cell Monte Carlo and
// execution parameters. Zero-valued fields take defaults (withDefaults).
type Spec struct {
	// Grid axes. Empty axes default to a single reference value.
	Pfails        []float64
	Geometries    []geom.Geometry
	Schemes       []sim.Scheme
	Victims       []sim.VictimKind
	Granularities []prob.Granularity

	// Policies is the phase-aware DVFS scheduling axis. The default is
	// the single value dvfs.PolicyNone, which evaluates cells the classic
	// way (Monte Carlo IPC at a fixed mode) and — deliberately — leaves
	// their keys, seeds and rows byte-identical to pre-axis sweeps. Any
	// other policy turns the cell into a scheduled dual-mode run over the
	// DVFSWorkloads and fills the row's dvfs_* fields instead of the
	// fixed-mode Monte Carlo ones.
	Policies []dvfs.PolicyKind

	// DVFSWorkloads are the multi-phase workloads averaged within each
	// scheduled (policy != none) cell. Default: compute-memory-swing.
	DVFSWorkloads []string

	// Per-cell Monte Carlo parameters.
	Benchmarks   []string // workloads averaged within each cell
	Trials       int      // fault-map pairs per cell (fault-dependent schemes)
	Instructions int      // simulated instructions per run

	// BaseSeed roots every cell's seed stream.
	BaseSeed int64

	// Workers bounds concurrent cell evaluations; 0 = GOMAXPROCS.
	// RunOptions.Workers overrides it per execution. Either knob only
	// changes scheduling, never results (and is excluded from
	// CanonicalHash).
	Workers int

	// ShardIndex/ShardCount select the cells this run owns: cell i belongs
	// to shard i % ShardCount. Zero ShardCount means 1 (unsharded).
	ShardIndex int
	ShardCount int
}

// WithDefaults returns the spec with every zero-valued field replaced by
// its reference default — the form Check, Cells and CanonicalHash reason
// about. Run applies it internally; callers that need to validate or size
// a grid before running (e.g. the service's request gate) apply it first.
func (s Spec) WithDefaults() Spec { return s.withDefaults() }

func (s Spec) withDefaults() Spec {
	if len(s.Pfails) == 0 {
		s.Pfails = []float64{0.001}
	}
	if len(s.Geometries) == 0 {
		s.Geometries = []geom.Geometry{geom.MustNew(32*1024, 8, 64)}
	}
	if len(s.Schemes) == 0 {
		s.Schemes = []sim.Scheme{sim.BlockDisable}
	}
	if len(s.Victims) == 0 {
		s.Victims = []sim.VictimKind{sim.NoVictim}
	}
	if len(s.Granularities) == 0 {
		s.Granularities = []prob.Granularity{prob.GranularityBlock}
	}
	if len(s.Policies) == 0 {
		s.Policies = []dvfs.PolicyKind{dvfs.PolicyNone}
	}
	if len(s.DVFSWorkloads) == 0 {
		s.DVFSWorkloads = []string{"compute-memory-swing"}
	}
	if len(s.Benchmarks) == 0 {
		s.Benchmarks = []string{"crafty", "mcf", "gzip"}
	}
	if s.Trials <= 0 {
		s.Trials = 3
	}
	if s.Instructions <= 0 {
		s.Instructions = 50_000
	}
	if s.BaseSeed == 0 {
		s.BaseSeed = 1
	}
	if s.Workers <= 0 {
		s.Workers = runtime.GOMAXPROCS(0)
	}
	if s.ShardCount <= 0 {
		s.ShardCount = 1
	}
	return s
}

// Check validates a defaulted spec.
func (s Spec) Check() error {
	if s.ShardIndex < 0 || s.ShardIndex >= s.ShardCount {
		return fmt.Errorf("sweep: shard index %d out of range [0,%d)", s.ShardIndex, s.ShardCount)
	}
	for _, p := range s.Pfails {
		if p < 0 || p >= 1 {
			return fmt.Errorf("sweep: pfail %v out of [0,1)", p)
		}
	}
	for _, g := range s.Geometries {
		if err := g.Check(); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	if s.hasScheduledPolicy() {
		for _, w := range s.DVFSWorkloads {
			if _, err := workload.MultiPhaseByName(w); err != nil {
				return fmt.Errorf("sweep: %w", err)
			}
		}
	}
	return nil
}

// Cell is one point of the cartesian grid.
type Cell struct {
	Index       int // position in the full grid, shard-independent
	Pfail       float64
	Geometry    geom.Geometry
	Scheme      sim.Scheme
	Victim      sim.VictimKind
	Granularity prob.Granularity
	Policy      dvfs.PolicyKind
}

// Key returns the cell's canonical coordinate string. It identifies the
// cell across runs — the resume logic matches on it — and roots the
// cell's seed stream, so its format is part of the on-disk contract.
// The policy coordinate appears only when the cell is a scheduled
// (policy != none) one: classic cells keep the exact pre-axis key, so
// old checkpoints resume and old canonical hashes survive.
func (c Cell) Key() string {
	key := fmt.Sprintf("pfail=%s;geom=%dx%dx%d;scheme=%s;victim=%s;gran=%s",
		strconv.FormatFloat(c.Pfail, 'g', -1, 64),
		c.Geometry.SizeBytes, c.Geometry.Ways, c.Geometry.BlockBytes,
		c.Scheme, c.Victim, c.Granularity)
	if c.Policy != dvfs.PolicyNone {
		key += ";policy=" + c.Policy.String()
	}
	return key
}

// Cells enumerates the full grid in canonical order (pfail outermost,
// granularity innermost). The order defines cell indices and therefore
// shard ownership; it must not change across versions.
func (s Spec) Cells() []Cell {
	var out []Cell
	i := 0
	for _, p := range s.Pfails {
		for _, g := range s.Geometries {
			for _, sc := range s.Schemes {
				for _, v := range s.Victims {
					for gi, gr := range s.Granularities {
						for _, pol := range s.Policies {
							// Disabling granularity only enters the
							// analytic capacity, which scheduled runs do
							// not consume — enumerating a scheduled cell
							// per granularity value would repeat the
							// grid's most expensive simulation to produce
							// rows differing only by seed noise dressed
							// up as granularity sensitivity.
							if pol != dvfs.PolicyNone && gi > 0 {
								continue
							}
							out = append(out, Cell{
								Index: i, Pfail: p, Geometry: g,
								Scheme: sc, Victim: v, Granularity: gr,
								Policy: pol,
							})
							i++
						}
					}
				}
			}
		}
	}
	return out
}

// owns reports whether this spec's shard computes the cell.
func (s Spec) owns(c Cell) bool { return c.Index%s.ShardCount == s.ShardIndex }

// CanonicalHash digests the defaulted spec's result-defining parameters:
// the engine's random-stream version, every cell key of the grid, the
// Monte Carlo sample sizes, the benchmark list, the base seed and the
// shard selection. Workers is excluded — it changes scheduling, never
// results. Two specs with equal hashes produce byte-identical row
// streams, which makes the hash a safe cache and deduplication key for
// sweep executions; digesting StreamVersion keeps that invariant across
// RNG-stream breaks (a completed pre-break job gets a different id, so
// the serve layer can never dedup a new request onto its stale rows).
func (s Spec) CanonicalHash() string {
	s = s.withDefaults()
	h := sha256.New()
	fmt.Fprintf(h, "sweep-v1|stream=%s|seed=%d|trials=%d|instructions=%d|shard=%d/%d\n",
		StreamVersion, s.BaseSeed, s.Trials, s.Instructions, s.ShardIndex, s.ShardCount)
	// Benchmarks are length-prefixed individually: a plain join would make
	// ["a,b"] and ["a","b"] collide, and the hash is a dedup key.
	for _, b := range s.Benchmarks {
		fmt.Fprintf(h, "benchmark=%d:%s\n", len(b), b)
	}
	// The DVFS workload list is result-defining only when a scheduled
	// policy is on the grid; digesting it conditionally keeps every
	// pre-axis spec's hash (and therefore the serve layer's job identity
	// and dedup behaviour) exactly what it was.
	if s.hasScheduledPolicy() {
		for _, w := range s.DVFSWorkloads {
			fmt.Fprintf(h, "dvfs-workload=%d:%s\n", len(w), w)
		}
	}
	for _, c := range s.Cells() {
		fmt.Fprintf(h, "%d:%s\n", c.Index, c.Key())
	}
	return hex.EncodeToString(h.Sum(nil)[:12])
}

// hasScheduledPolicy reports whether any grid cell runs the dvfs
// scheduler (a policy other than PolicyNone).
func (s Spec) hasScheduledPolicy() bool {
	for _, p := range s.Policies {
		if p != dvfs.PolicyNone {
			return true
		}
	}
	return false
}
